// Package repro is the public face of the reproduction of "Passive NFS
// Tracing of Email and Research Workloads" (Ellard, Ledlie, Malkani,
// Seltzer; FAST 2003).
//
// It wires together the internal substrates — wire-format codecs, the
// sniffer, the anonymizer, the client/server simulators, and the CAMPUS
// and EECS workload generators — into three things a user needs:
//
//   - Trace generation: GenerateCampus and GenerateEECS produce joined
//     operation streams (and optionally raw records or pcap files) for
//     the two systems the paper studied, at a configurable scale.
//   - Trace processing: Sniff decodes packets into records, Anonymize
//     rewrites records, and the core text format reads/writes traces.
//   - Experiments: Table1–Table5 and Figure1–Figure5 regenerate every
//     table and figure of the paper's evaluation, plus the §4.1.4,
//     §4.1.5, §6.3, and §6.4 side experiments.
//
// The tables and figures run on the internal/pipeline engine: each
// trace is streamed once per experiment through sharded per-file
// reducers whose merged results are byte-identical at any worker count.
// Set Trace.Pipeline to control the sharding; the zero value uses one
// worker per CPU.
package repro

import (
	"io"

	"repro/internal/anon"
	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/pcap"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Trace is a generated or captured operation stream with its metadata.
type Trace struct {
	// Name identifies the system ("CAMPUS" or "EECS").
	Name string
	// Ops is the joined call/reply stream in time order.
	Ops []*core.Op
	// Days is the window length.
	Days float64
	// Join reports call/reply matching statistics (loss estimation).
	Join core.JoinStats
	// ReorderWindowMS is the §4.2 sorting window appropriate for this
	// system (5 for EECS, 10 for CAMPUS).
	ReorderWindowMS float64
	// Pipeline configures the sharded analysis engine the tables and
	// figures run on. The zero value uses one worker per CPU; every
	// worker count produces byte-identical output.
	Pipeline pipeline.Config
	// Pieces > 1 runs every analysis as a chain of that many serialized
	// partial states (pipeline.RunPartitioned) instead of one pass —
	// output is byte-identical at any piece count, which the state
	// equivalence tests pin down against this knob.
	Pieces int
}

// analyze streams the trace's operations through the sharded pipeline,
// feeding every analyzer in one pass — or, when Pieces > 1, as a
// resume chain of serialized partial states.
func (tr *Trace) analyze(analyzers ...pipeline.Analyzer) {
	if tr.Pieces > 1 {
		_, err := pipeline.RunPartitioned(tr.Pipeline, splitOps(tr.Ops, tr.Pieces), analyzers...)
		if err != nil {
			// Every analyzer this package registers supports partial
			// state; a failure here is a programming error.
			panic(err)
		}
		return
	}
	pipeline.RunSlice(tr.Pipeline, tr.Ops, analyzers...)
}

// splitOps cuts ops into n contiguous pieces of near-equal length.
func splitOps(ops []*core.Op, n int) [][]*core.Op {
	if n > len(ops) {
		n = len(ops)
	}
	if n < 1 {
		n = 1
	}
	pieces := make([][]*core.Op, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(ops) / n
		hi := (i + 1) * len(ops) / n
		pieces = append(pieces, ops[lo:hi])
	}
	return pieces
}

// Scale selects the simulated population size. The real systems were
// far larger (CAMPUS: ~700 accounts on the traced array; EECS: a
// department of workstations); ratios and shapes are scale-invariant.
type Scale struct {
	// CampusUsers is the simulated CAMPUS account count.
	CampusUsers int
	// EECSClients is the simulated workstation count.
	EECSClients int
	// Days is the trace window (7 = the paper's Sunday–Saturday week).
	Days float64
	// Seed makes everything reproducible.
	Seed int64
}

// DefaultScale is a laptop-friendly full week (~1.5M operations).
func DefaultScale() Scale {
	return Scale{CampusUsers: 12, EECSClients: 4, Days: 7, Seed: 20011021}
}

// SmallScale is a quick single-day configuration for tests and benches.
func SmallScale() Scale {
	return Scale{CampusUsers: 3, EECSClients: 2, Days: 1, Seed: 20011021}
}

// GenerateCampus produces the CAMPUS email workload trace.
func GenerateCampus(s Scale) *Trace {
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	gen := workload.NewCampus(workload.DefaultCampusConfig(s.CampusUsers, s.Days, s.Seed), sorter)
	gen.Run()
	sorter.Flush()
	ops, join := core.Join(sink.Records)
	return &Trace{Name: "CAMPUS", Ops: ops, Days: s.Days, Join: join, ReorderWindowMS: 10}
}

// GenerateEECS produces the EECS research workload trace.
func GenerateEECS(s Scale) *Trace {
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	gen := workload.NewEECS(workload.DefaultEECSConfig(s.EECSClients, s.Days, s.Seed), sorter)
	gen.Run()
	sorter.Flush()
	ops, join := core.Join(sink.Records)
	return &Trace{Name: "EECS", Ops: ops, Days: s.Days, Join: join, ReorderWindowMS: 5}
}

// GenerateCampusLossy produces a CAMPUS trace observed through an
// overloaded mirror port (§4.1.4): some records never reach the tracer,
// so calls lose replies and replies lose calls.
func GenerateCampusLossy(s Scale, portRate float64) (*Trace, *netem.MirrorPort) {
	sink := &client.SliceSink{}
	port := netem.NewMirrorPort()
	if portRate > 0 {
		port.Rate = portRate
	}
	lossy := &client.LossySink{Next: client.NewSortingSink(sink), Port: port}
	gen := workload.NewCampus(workload.DefaultCampusConfig(s.CampusUsers, s.Days, s.Seed), lossy)
	gen.Run()
	lossy.Next.(*client.SortingSink).Flush()
	ops, join := core.Join(sink.Records)
	return &Trace{Name: "CAMPUS(lossy)", Ops: ops, Days: s.Days, Join: join, ReorderWindowMS: 10}, port
}

// GenerateCampusRecords returns raw (unjoined) records, for the
// anonymizer and trace-file tools.
func GenerateCampusRecords(s Scale) []*core.Record {
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	gen := workload.NewCampus(workload.DefaultCampusConfig(s.CampusUsers, s.Days, s.Seed), sorter)
	gen.Run()
	sorter.Flush()
	return sink.Records
}

// GenerateEECSRecords returns raw (unjoined) EECS records, mirroring
// GenerateCampusRecords for the anonymizer and trace-file tools.
func GenerateEECSRecords(s Scale) []*core.Record {
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	gen := workload.NewEECS(workload.DefaultEECSConfig(s.EECSClients, s.Days, s.Seed), sorter)
	gen.Run()
	sorter.Flush()
	return sink.Records
}

// WriteTrace writes records in the text trace format.
func WriteTrace(w io.Writer, records []*core.Record) error {
	return core.WriteAll(w, records)
}

// ReadTrace reads a text trace and joins it into operations.
func ReadTrace(r io.Reader) (*Trace, error) {
	records, err := core.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ops, join := core.Join(records)
	days := 0.0
	if len(ops) > 0 {
		days = (ops[len(ops)-1].T - ops[0].T) / workload.Day
	}
	return &Trace{Name: "trace", Ops: ops, Days: days, Join: join, ReorderWindowMS: 10}, nil
}

// Sniff decodes a pcap stream into trace records, optionally
// anonymizing with the given anonymizer (nil = raw).
func Sniff(r io.Reader, anonymizer *anon.Anonymizer) ([]*core.Record, capture.Stats, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, capture.Stats{}, err
	}
	var records []*core.Record
	sn := capture.NewSniffer(func(rec *core.Record) { records = append(records, rec) })
	sn.Anon = anonymizer
	if err := sn.ReadPcap(pr); err != nil {
		return records, sn.Stats, err
	}
	return records, sn.Stats, nil
}

// Anonymize rewrites records in place with a default-configured
// anonymizer and returns it (so its tables can be saved).
func Anonymize(records []*core.Record, seed int64) *anon.Anonymizer {
	a := anon.New(anon.DefaultConfig(seed))
	for _, r := range records {
		a.Record(r)
	}
	return a
}
