package repro

import (
	"testing"

	"repro/internal/pipeline"
)

// TestTablesByteIdenticalAcrossWorkers is the end-to-end determinism
// guarantee for the sharded pipeline: every table and figure renders
// byte-identically whether the analyses run on one worker (the
// sequential reference) or many.
func TestTablesByteIdenticalAcrossWorkers(t *testing.T) {
	scale := SmallScale()
	campus := GenerateCampus(scale)
	eecs := GenerateEECS(scale)

	experiments := map[string]func(*Trace, *Trace) string{
		"Table1": Table1, "Table2": Table2, "Table3": Table3,
		"Table4": Table4, "Table5": Table5,
		"Figure1": Figure1, "Figure2": Figure2, "Figure3": Figure3,
		"Figure4": Figure4, "Figure5": Figure5,
	}

	render := func(workers int) map[string]string {
		campus.Pipeline = pipeline.Config{Workers: workers}
		eecs.Pipeline = pipeline.Config{Workers: workers}
		out := make(map[string]string, len(experiments)+1)
		for name, fn := range experiments {
			out[name] = fn(campus, eecs)
		}
		out["ExpHierarchy"] = ExpHierarchy(campus)
		return out
	}

	want := render(1)
	for _, workers := range []int{2, 8} {
		got := render(workers)
		for name := range experiments {
			if got[name] != want[name] {
				t.Errorf("%s differs between 1 and %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
					name, workers, want[name], workers, got[name])
			}
		}
		if got["ExpHierarchy"] != want["ExpHierarchy"] {
			t.Errorf("ExpHierarchy differs between 1 and %d workers", workers)
		}
	}
}

// TestPipelineDefaultConfig checks that the zero-value Trace runs the
// tables without explicit pipeline configuration.
func TestPipelineDefaultConfig(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	campus := GenerateCampus(scale)
	eecs := GenerateEECS(scale)
	for i, fn := range []func(*Trace, *Trace) string{Table2, Table5} {
		if out := fn(campus, eecs); len(out) == 0 {
			t.Errorf("experiment %d: empty output with default pipeline config", i)
		}
	}
	if campus.Pipeline != (pipeline.Config{}) {
		t.Errorf("running tables mutated the trace's pipeline config: %+v", campus.Pipeline)
	}
}

// TestPipelineWorkerSweepSmoke exercises odd worker counts end to end.
func TestPipelineWorkerSweepSmoke(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	campus := GenerateCampus(scale)
	eecs := GenerateEECS(scale)
	var want string
	for i, workers := range []int{1, 3, 5, 16} {
		campus.Pipeline.Workers = workers
		eecs.Pipeline.Workers = workers
		got := Table3(campus, eecs)
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("Table3 at %d workers differs from 1 worker", workers)
		}
	}
}
