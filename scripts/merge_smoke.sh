#!/usr/bin/env bash
# merge_smoke.sh — end-to-end smoke test of the distributed analysis
# path, with no checked-in traces: nfsgen generates a CAMPUS trace,
# tracesplit cuts it into gzip pieces at quiescent boundaries, and the
# same analyses then run three ways — single process over the original
# file, -partial per piece + -merge, and -coordinator -workers 8 over
# the piece set. All three renderings must be byte-identical, and the
# coordinator must actually have fanned out (worker count asserted from
# its stderr banner).
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building binaries"
go build -o "$workdir" ./cmd/nfsanalyze ./cmd/nfsgen ./tools/tracesplit

echo "== generating trace"
"$workdir/nfsgen" -system campus -users 3 -days 1 -o "$workdir/campus.trace"

echo "== splitting into 8 gzip pieces at quiescent boundaries"
"$workdir/tracesplit" -n 8 -gzip -o "$workdir/piece" "$workdir/campus.trace"
pieces=("$workdir"/piece-*.trace.gz)
echo "   ${#pieces[@]} pieces"
if [ "${#pieces[@]}" -lt 2 ]; then
    echo "FAIL: expected at least 2 pieces"; exit 1
fi

# summary and runs merge independent states; names requires a -resume
# chain — together they cover both composition modes.
for analysis in summary runs names; do
    echo "== analysis: $analysis"
    "$workdir/nfsanalyze" -analysis "$analysis" -i "$workdir/campus.trace" \
        >"$workdir/single.$analysis" 2>/dev/null

    # Map phase: one -partial state per piece (chained for names).
    states=()
    prev=""
    for piece in "${pieces[@]}"; do
        state="$workdir/$(basename "$piece").$analysis.state"
        resume=()
        if [ "$analysis" = names ] && [ -n "$prev" ]; then
            resume=(-resume "$prev")
        fi
        "$workdir/nfsanalyze" -analysis "$analysis" -i "$piece" \
            -partial "$state" "${resume[@]}" 2>/dev/null
        states+=("$state")
        prev="$state"
    done

    # Merge phase renders the tables from the states alone.
    "$workdir/nfsanalyze" -analysis "$analysis" -merge "${states[@]}" \
        >"$workdir/merged.$analysis" 2>/dev/null
    if ! cmp -s "$workdir/single.$analysis" "$workdir/merged.$analysis"; then
        echo "FAIL: partial+merge output differs from single process for $analysis"
        diff "$workdir/single.$analysis" "$workdir/merged.$analysis" || true
        exit 1
    fi
    echo "   partial+merge: byte-identical"

    # Coordinator mode does the same fan-out in one command.
    "$workdir/nfsanalyze" -analysis "$analysis" -coordinator -workers 8 \
        "$workdir"/piece-*.trace.gz \
        >"$workdir/coord.$analysis" 2>"$workdir/coord.$analysis.err"
    if ! cmp -s "$workdir/single.$analysis" "$workdir/coord.$analysis"; then
        echo "FAIL: coordinator output differs from single process for $analysis"
        diff "$workdir/single.$analysis" "$workdir/coord.$analysis" || true
        exit 1
    fi
    workers=$(sed -n 's/^nfsanalyze: coordinator: \([0-9]*\) workers.*/\1/p' \
        "$workdir/coord.$analysis.err")
    if [ -z "$workers" ] || [ "$workers" -lt 2 ]; then
        echo "FAIL: coordinator did not fan out (banner: $(cat "$workdir/coord.$analysis.err"))"
        exit 1
    fi
    echo "   coordinator: byte-identical across $workers workers"
done

echo "PASS: distributed analysis is byte-identical to single-process"
