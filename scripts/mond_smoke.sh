#!/usr/bin/env bash
# mond_smoke.sh — end-to-end smoke test of the live-monitoring path:
# nfsbench serves real NFS traffic over loopback TCP with its passive
# trace tap writing a growing trace file; nfsmond tails that file and
# is scraped while the load runs. Asserts that op counters increase
# monotonically under load, the window-lag gauge stays bounded by the
# window width, the JSON summary is coherent, and shutdown is clean.
set -euo pipefail

PORT="${MOND_PORT:-19917}"
WINDOW=30

workdir=$(mktemp -d)
trap 'kill $MOND_PID $BENCH_PID 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== building binaries"
go build -o "$workdir" ./cmd/nfsmond ./cmd/nfsbench

fetch() { curl -fsS "http://127.0.0.1:$PORT$1"; }

metric() { echo "$1" | awk -v m="$2" '$1 == m { print $2 }'; }

echo "== starting nfsmond (tailing $workdir/live.trace)"
"$workdir/nfsmond" -i "$workdir/live.trace" -follow -poll 20ms \
    -listen "127.0.0.1:$PORT" -window $WINDOW -keep 20 \
    >"$workdir/mond.out" 2>"$workdir/mond.err" &
MOND_PID=$!

for i in $(seq 1 100); do
    if fetch /healthz >/dev/null 2>&1; then break; fi
    if [ "$i" = 100 ]; then echo "nfsmond never came up"; cat "$workdir/mond.err"; exit 1; fi
    sleep 0.1
done

echo "== starting nfsbench load (open loop, traced)"
"$workdir/nfsbench" -T 2 -c 2 -rate 1500 -n 9000 -files 64 -seed 1 \
    -interval 0 -json /dev/null -trace "$workdir/live.trace" \
    >/dev/null 2>&1 &
BENCH_PID=$!

sleep 2
m1=$(fetch /metrics)
ops1=$(metric "$m1" nfsmond_ops_total)
lag1=$(metric "$m1" nfsmond_window_lag_seconds)
echo "   scrape 1: ops_total=$ops1 lag=${lag1}s"

sleep 2
m2=$(fetch /metrics)
ops2=$(metric "$m2" nfsmond_ops_total)
lag2=$(metric "$m2" nfsmond_window_lag_seconds)
matched=$(metric "$m2" nfsmond_join_matched_total)
echo "   scrape 2: ops_total=$ops2 lag=${lag2}s matched=$matched"

awk -v a="$ops1" -v b="$ops2" 'BEGIN { exit !(b > a && a > 0) }' \
    || { echo "FAIL: op counter not monotonically increasing under load ($ops1 -> $ops2)"; exit 1; }
for lag in "$lag1" "$lag2"; do
    awk -v l="$lag" -v w=$WINDOW 'BEGIN { exit !(l >= 0 && l < w) }' \
        || { echo "FAIL: window lag $lag outside [0, $WINDOW)"; exit 1; }
done
awk -v m="$matched" 'BEGIN { exit !(m > 0) }' \
    || { echo "FAIL: joiner matched nothing"; exit 1; }
echo "$m2" | grep -q 'nfsmond_proc_ops_total{proc="read"}' \
    || { echo "FAIL: per-proc counters missing"; exit 1; }

echo "== checking JSON summary endpoint"
summary=$(fetch /api/summary)
echo "$summary" | grep -q '"total_ops"' || { echo "FAIL: summary JSON malformed: $summary"; exit 1; }
total=$(echo "$summary" | sed -n 's/.*"total_ops": \([0-9]*\).*/\1/p' | head -1)
awk -v t="${total:-0}" -v o="$ops1" 'BEGIN { exit !(t >= o) }' \
    || { echo "FAIL: snapshot total_ops=$total below earlier live count $ops1"; exit 1; }

wait $BENCH_PID || { echo "FAIL: nfsbench exited nonzero"; exit 1; }

echo "== shutting down nfsmond"
kill -TERM $MOND_PID
for i in $(seq 1 100); do
    if ! kill -0 $MOND_PID 2>/dev/null; then break; fi
    if [ "$i" = 100 ]; then echo "FAIL: nfsmond did not exit"; exit 1; fi
    sleep 0.1
done
wait $MOND_PID || { echo "FAIL: nfsmond exited nonzero"; cat "$workdir/mond.err"; exit 1; }
grep -q '^join: ' "$workdir/mond.out" \
    || { echo "FAIL: final report missing join line"; cat "$workdir/mond.out"; exit 1; }

echo "== mond-smoke OK: final report:"
cat "$workdir/mond.out"
