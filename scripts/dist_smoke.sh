#!/usr/bin/env bash
# dist_smoke.sh — end-to-end smoke test of fault-tolerant network
# dispatch, with no checked-in traces: nfsgen generates a CAMPUS trace,
# tracesplit cuts it into gzip pieces, and three real nfsworker daemons
# serve an `nfsanalyze -coordinator -remote` run over loopback TCP —
# one healthy, one that crashes mid-result-stream on its first
# assignment (the process dies; the coordinator must re-dispatch), and
# one that hangs past the per-assignment deadline without heartbeating.
# The rendered tables must be byte-identical to the single-process run,
# and the re-dispatch machinery must be visible in the coordinator log.
set -euo pipefail

workdir=$(mktemp -d)
cleanup() {
    if [ -f "$workdir/pids" ]; then
        while read -r pid; do
            kill -9 "$pid" 2>/dev/null || true
        done <"$workdir/pids"
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir" ./cmd/nfsanalyze ./cmd/nfsworker ./cmd/nfsgen ./tools/tracesplit

echo "== generating trace"
"$workdir/nfsgen" -system campus -users 3 -days 1 -o "$workdir/campus.trace"

echo "== splitting into 6 gzip pieces at quiescent boundaries"
"$workdir/tracesplit" -n 6 -gzip -o "$workdir/piece" "$workdir/campus.trace"
pieces=("$workdir"/piece-*.trace.gz)
echo "   ${#pieces[@]} pieces"
if [ "${#pieces[@]}" -lt 2 ]; then
    echo "FAIL: expected at least 2 pieces"; exit 1
fi

# start_worker <logfile> [extra flags...] — boots an nfsworker on an
# ephemeral port and echoes the scraped address. Runs under $(...), so
# stdio must be fully detached or the substitution would block on the
# daemon's inherited pipe; pids go through a file for the same reason.
start_worker() {
    local log=$1; shift
    "$workdir/nfsworker" -listen 127.0.0.1:0 "$@" </dev/null >/dev/null 2>"$log" &
    echo $! >>"$workdir/pids"
    local addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -n1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: worker never reported its address (log: $(cat "$log"))" >&2
        exit 1
    fi
    echo "$addr"
}

echo "== starting 3 workers: healthy, crash-on-first, hang-on-first"
w_ok=$(start_worker "$workdir/worker-ok.log")
w_crash=$(start_worker "$workdir/worker-crash.log" -flaky crash:1)
w_hang=$(start_worker "$workdir/worker-hang.log" -flaky hang:1)
echo "   $w_ok (healthy) $w_crash (crash:1) $w_hang (hang:1)"

# summary merges independent states; names runs as a resume chain —
# both must survive the faulty pool byte-identically.
for analysis in summary names; do
    echo "== analysis: $analysis"
    "$workdir/nfsanalyze" -analysis "$analysis" -i "$workdir/campus.trace" \
        >"$workdir/single.$analysis" 2>/dev/null

    "$workdir/nfsanalyze" -analysis "$analysis" -coordinator \
        -remote "$w_ok,$w_crash,$w_hang" -worker-timeout 15s \
        "${pieces[@]}" \
        >"$workdir/remote.$analysis" 2>"$workdir/remote.$analysis.err"

    if ! cmp -s "$workdir/single.$analysis" "$workdir/remote.$analysis"; then
        echo "FAIL: remote output differs from single process for $analysis"
        diff "$workdir/single.$analysis" "$workdir/remote.$analysis" || true
        exit 1
    fi
    echo "   remote dispatch: byte-identical"
done

# The injected faults must actually have fired and been supervised:
# a crash-on-first worker that never got an assignment proves nothing.
log_all() { cat "$workdir"/remote.*.err; }
if ! grep -q "FAULT crashing" "$workdir/worker-crash.log"; then
    echo "FAIL: crash fault never fired (worker log: $(cat "$workdir/worker-crash.log"))"
    exit 1
fi
if ! grep -q "FAULT hang" "$workdir/worker-hang.log"; then
    echo "FAIL: hang fault never fired (worker log: $(cat "$workdir/worker-hang.log"))"
    exit 1
fi
if ! log_all | grep -q "re-dispatching"; then
    echo "FAIL: coordinator never re-dispatched a failed piece"
    log_all
    exit 1
fi
if ! log_all | grep -Eq "connection lost mid-assignment|heartbeat: worker silent|deadline:"; then
    echo "FAIL: no supervision event (connection loss / watchdog / deadline) in coordinator log"
    log_all
    exit 1
fi
echo "   faults fired and were re-dispatched"

echo "PASS: remote dispatch with crash and hang faults is byte-identical to single-process"
