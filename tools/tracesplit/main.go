// tracesplit cuts one trace file into N pieces at quiescent record
// boundaries: a cut is only taken where no call is awaiting its reply,
// so every call/reply pair lands whole in one piece. Pieces produced
// this way analyze independently (nfsanalyze -partial per piece, then
// -merge, or -coordinator over the piece set) with join statistics —
// and therefore all tables — byte-identical to one pass over the
// original file.
//
// Input may be text or binary format, gzip-transparent; pieces are
// written in the text format (gzip-compressed with -gzip). Piece
// boundaries target equal record counts but slide forward to the next
// quiescent point, so pieces are near-equal, not exact. A trace that
// never goes quiescent (heavy loss, interleaved retransmissions)
// yields fewer pieces than requested; tracesplit reports the count.
//
// Usage:
//
//	tracesplit -n 8 -o pieces/day campus.trace
//	  → pieces/day-000.trace ... pieces/day-007.trace
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracesplit:", err)
		os.Exit(1)
	}
}

// pendingKey identifies an outstanding call awaiting its reply, the
// same (client, port, xid) key the joiner matches on.
type pendingKey struct {
	client uint32
	port   uint16
	xid    uint32
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracesplit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 2, "number of pieces")
	prefix := fs.String("o", "piece", "output path prefix")
	gz := fs.Bool("gzip", false, "gzip-compress the pieces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("-n must be at least 1")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one input trace file")
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	src, err := core.DetectSource(in)
	if err != nil {
		return err
	}

	// Pass 1 cost avoidance: slurp the records once; trace files that
	// fit the analyses fit memory here too, and counting first lets the
	// cuts target equal record counts.
	var records []*core.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		return fmt.Errorf("%s: no records", fs.Arg(0))
	}

	ext := ".trace"
	if *gz {
		ext += ".gz"
	}
	var (
		piece   = 0
		out     *os.File
		zw      *gzip.Writer
		tw      core.RecordWriter
		pending = make(map[pendingKey]int)
	)
	open := func() error {
		path := fmt.Sprintf("%s-%03d%s", *prefix, piece, ext)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		out = f
		var w io.Writer = f
		if *gz {
			zw = gzip.NewWriter(f)
			w = zw
		}
		tw = core.NewWriter(w)
		return nil
	}
	closePiece := func() error {
		if err := tw.Flush(); err != nil {
			return err
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				return err
			}
			zw = nil
		}
		return out.Close()
	}
	if err := open(); err != nil {
		return err
	}
	for i, rec := range records {
		if err := tw.Write(rec); err != nil {
			return err
		}
		k := pendingKey{rec.Client, rec.Port, rec.XID}
		switch rec.Kind {
		case core.KindCall:
			pending[k]++
		case core.KindReply:
			if pending[k] > 0 {
				pending[k]--
				if pending[k] == 0 {
					delete(pending, k)
				}
			}
		}
		// Rotate at the next quiescent point past the equal-count target.
		last := i == len(records)-1
		if !last && piece < *n-1 && len(pending) == 0 &&
			int64(i+1) >= int64(piece+1)*int64(len(records))/int64(*n) {
			if err := closePiece(); err != nil {
				return err
			}
			piece++
			if err := open(); err != nil {
				return err
			}
		}
	}
	if err := closePiece(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "tracesplit: %d records into %d pieces (%s-000%s ...)\n",
		len(records), piece+1, *prefix, ext)
	return nil
}
