// covercheck enforces the committed coverage floor. It parses a Go
// coverage profile, computes statement coverage per package and in
// total, prints the delta against the baseline, and exits nonzero if
// any floored package (or the total) fell below its floor.
//
// The baseline file holds one "import/path floor%" line per package
// plus a "total" line; packages absent from the baseline are reported
// but not gated, so new packages don't fail CI until a floor is
// committed for them. Regenerate with -write after a deliberate
// coverage change:
//
//	go test -coverprofile=cover.out ./...
//	go run ./tools/covercheck -profile cover.out -baseline scripts/coverage_baseline.txt -write
//
// -write sets each floor a small margin below the measured value, so
// ordinary run-to-run jitter doesn't trip the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

type pkgCov struct {
	total   int
	covered int
}

func (p pkgCov) pct() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func run(args []string) error {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	profile := fs.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	baseline := fs.String("baseline", "scripts/coverage_baseline.txt", "committed floor file")
	write := fs.Bool("write", false, "regenerate the baseline from the profile instead of checking")
	margin := fs.Float64("margin", 2.0, "percentage points subtracted from measured coverage when writing floors")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pkgs, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	if *write {
		return writeBaseline(*baseline, pkgs, *margin)
	}
	floors, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	return check(pkgs, floors)
}

// parseProfile reads a coverage profile and aggregates statement
// counts by package (the directory of each file entry).
func parseProfile(file string) (map[string]pkgCov, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pkgs := make(map[string]pkgCov)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:sl.sc,el.ec numStmts hitCount
		colon := strings.LastIndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("malformed statement count in %q", line)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed hit count in %q", line)
		}
		pkg := path.Dir(line[:colon])
		c := pkgs[pkg]
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
		pkgs[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("%s: no coverage entries", file)
	}
	return pkgs, nil
}

func totalOf(pkgs map[string]pkgCov) pkgCov {
	var t pkgCov
	for _, c := range pkgs {
		t.total += c.total
		t.covered += c.covered
	}
	return t
}

func sortedNames(pkgs map[string]pkgCov) []string {
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func writeBaseline(path string, pkgs map[string]pkgCov, margin float64) error {
	var sb strings.Builder
	sb.WriteString("# Coverage floors, enforced by tools/covercheck in CI.\n")
	sb.WriteString("# Regenerate: go test -coverprofile=cover.out ./... && go run ./tools/covercheck -profile cover.out -baseline scripts/coverage_baseline.txt -write\n")
	for _, name := range sortedNames(pkgs) {
		floor := pkgs[name].pct() - margin
		if floor < 0 {
			floor = 0
		}
		fmt.Fprintf(&sb, "%s %.1f\n", name, floor)
	}
	floor := totalOf(pkgs).pct() - margin
	if floor < 0 {
		floor = 0
	}
	fmt.Fprintf(&sb, "total %.1f\n", floor)
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func readBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed baseline line: %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed floor in %q", line)
		}
		floors[fields[0]] = v
	}
	return floors, sc.Err()
}

func check(pkgs map[string]pkgCov, floors map[string]float64) error {
	failed := false
	for _, name := range sortedNames(pkgs) {
		got := pkgs[name].pct()
		floor, gated := floors[name]
		switch {
		case !gated:
			fmt.Printf("%-40s %6.1f%%  (no floor committed)\n", name, got)
		case got < floor:
			fmt.Printf("%-40s %6.1f%%  BELOW floor %.1f%% (%+.1f)\n", name, got, floor, got-floor)
			failed = true
		default:
			fmt.Printf("%-40s %6.1f%%  floor %.1f%% (%+.1f)\n", name, got, floor, got-floor)
		}
	}
	tot := totalOf(pkgs).pct()
	if floor, ok := floors["total"]; ok {
		delta := tot - floor
		status := "ok"
		if tot < floor {
			status = "BELOW"
			failed = true
		}
		fmt.Printf("%-40s %6.1f%%  floor %.1f%% (%+.1f) %s\n", "total", tot, floor, delta, status)
	} else {
		fmt.Printf("%-40s %6.1f%%\n", "total", tot)
	}
	if failed {
		return fmt.Errorf("coverage fell below the committed floor")
	}
	return nil
}
