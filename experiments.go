package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/workload"
)

// This file regenerates every table and figure in the paper's
// evaluation. Each function returns a plain-text report whose rows
// mirror the paper's presentation; the "paper:" annotations carry the
// published values so a reader can compare shape directly. Absolute
// magnitudes differ by the simulation scale (documented in
// EXPERIMENTS.md); ratios, mixes, distributions, and orderings are the
// reproduction targets.
//
// Every analysis runs through the internal/pipeline engine: one
// streaming pass per trace per experiment, sharded across
// Trace.Pipeline workers, with merges that make the rendered output
// byte-identical at any worker count.

// Table1 contrasts the two workloads qualitatively, computing each
// claim from the traces.
func Table1(campus, eecs *Trace) string {
	// One sharded pass over each trace computes every Table 1 claim:
	// the activity summary, the peak-hour instance mix (Monday
	// 10:00–11:00), the mailbox byte share, and the block lifetimes
	// (Monday 9am, 24h+24h, where the window allows).
	cSum := &pipeline.SummaryAnalyzer{Days: campus.Days}
	peak := &pipeline.PeakHourAnalyzer{
		From: workload.Day + 10*workload.Hour,
		To:   workload.Day + 11*workload.Hour,
	}
	mail := &pipeline.MailboxAnalyzer{}
	cLife := blockLifeAnalyzer(campus)
	campus.analyze(cSum, peak, mail, cLife)

	eSum := &pipeline.SummaryAnalyzer{Days: eecs.Days}
	eLife := blockLifeAnalyzer(eecs)
	eecs.analyze(eSum, eLife)

	cs, es := cSum.Result, eSum.Result
	lockFrac, inboxFrac := peak.Result.LockFrac(), peak.Result.MailboxFrac()
	mailboxBytes, totalBytes := mail.MailboxBytes, mail.TotalBytes
	cb, eb := cLife.Result, eLife.Result

	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Characteristics of CAMPUS and EECS\n")
	fmt.Fprintf(&b, "%-46s %-12s %-12s %s\n", "metric", "CAMPUS", "EECS", "paper")
	row := func(metric string, c, e string, paper string) {
		fmt.Fprintf(&b, "%-46s %-12s %-12s %s\n", metric, c, e, paper)
	}
	row("data calls (% of ops)",
		fmt.Sprintf("%.0f%%", 100*(1-cs.MetadataFraction())),
		fmt.Sprintf("%.0f%%", 100*(1-es.MetadataFraction())),
		"CAMPUS mostly data; EECS mostly metadata")
	row("read/write byte ratio",
		fmt.Sprintf("%.2f", cs.ReadWriteByteRatio()),
		fmt.Sprintf("%.2f", es.ReadWriteByteRatio()),
		"CAMPUS 3.0 (reads win); EECS writes win 1.4x")
	row("lock files (% of file instances, peak hr)",
		fmt.Sprintf("%.0f%%", 100*lockFrac), "-", "CAMPUS ~50%")
	row("mailboxes (% of file instances, peak hr)",
		fmt.Sprintf("%.0f%%", 100*inboxFrac), "-", "CAMPUS ~20%")
	row("mailbox share of data bytes",
		fmt.Sprintf("%.0f%%", 100*float64(mailboxBytes)/float64(totalBytes)), "-",
		"95+% of data read and written")
	row("median block lifetime",
		fmtDuration(cb.Lifetimes.Median()), fmtDuration(eb.Lifetimes.Median()),
		"CAMPUS ≥10 min; EECS <1 s")
	row("block deaths by overwrite",
		fmt.Sprintf("%.1f%%", cb.DeathPct(analysis.DeathOverwrite)),
		fmt.Sprintf("%.1f%%", eb.DeathPct(analysis.DeathOverwrite)),
		"CAMPUS ~all; EECS a mix with deletes")
	return b.String()
}

func fmtDuration(sec float64) string {
	switch {
	case sec < 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec < 120:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 7200:
		return fmt.Sprintf("%.0fmin", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// blockLifeAnalyzer builds the block-lifetime reducer over the trace's
// weekday window: Monday 9am with a 24h phase and 24h margin when the
// trace is long enough, otherwise the first half of the window.
func blockLifeAnalyzer(tr *Trace) *pipeline.BlockLifeAnalyzer {
	if tr.Days >= 3 {
		return &pipeline.BlockLifeAnalyzer{
			Start: workload.Day + 9*workload.Hour,
			Phase: workload.Day, Margin: workload.Day,
		}
	}
	span := tr.Days * workload.Day
	return &pipeline.BlockLifeAnalyzer{Start: 0, Phase: span / 2, Margin: span / 2}
}

// Table2 reports average daily activity for both systems.
func Table2(campus, eecs *Trace) string {
	cSum := &pipeline.SummaryAnalyzer{Days: campus.Days}
	campus.analyze(cSum)
	eSum := &pipeline.SummaryAnalyzer{Days: eecs.Days}
	eecs.analyze(eSum)
	cs, es := cSum.Result, eSum.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Average daily activity (simulated scale)\n")
	fmt.Fprintf(&b, "%-26s %14s %14s\n", "", "CAMPUS", "EECS")
	row := func(name string, c, e float64, format string) {
		fmt.Fprintf(&b, "%-26s %14s %14s\n", name,
			fmt.Sprintf(format, c), fmt.Sprintf(format, e))
	}
	row("Total ops (1000s/day)", cs.Daily(float64(cs.TotalOps))/1e3, es.Daily(float64(es.TotalOps))/1e3, "%.1f")
	row("Data read (MB/day)", cs.Daily(float64(cs.BytesRead))/(1<<20), es.Daily(float64(es.BytesRead))/(1<<20), "%.1f")
	row("Read ops (1000s/day)", cs.Daily(float64(cs.ReadOps))/1e3, es.Daily(float64(es.ReadOps))/1e3, "%.1f")
	row("Data written (MB/day)", cs.Daily(float64(cs.BytesWritten))/(1<<20), es.Daily(float64(es.BytesWritten))/(1<<20), "%.1f")
	row("Write ops (1000s/day)", cs.Daily(float64(cs.WriteOps))/1e3, es.Daily(float64(es.WriteOps))/1e3, "%.1f")
	row("Read/Write bytes ratio", cs.ReadWriteByteRatio(), es.ReadWriteByteRatio(), "%.2f")
	row("Read/Write ops ratio", cs.ReadWriteOpRatio(), es.ReadWriteOpRatio(), "%.2f")
	row("Metadata fraction", cs.MetadataFraction(), es.MetadataFraction(), "%.2f")
	fmt.Fprintf(&b, "paper (full scale): CAMPUS 26.7M ops/day, 119.6GB read, 44.6GB written, ratios 2.68/3.01;\n")
	fmt.Fprintf(&b, "                    EECS 4.44M ops/day, 5.1GB read, 9.1GB written, ratios 0.56/0.69\n")
	return b.String()
}

// Table3 reports the run taxonomy, raw and processed, for both systems.
func Table3(campus, eecs *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: File access patterns (%% of runs; E/S/R within kind)\n")
	fmt.Fprintf(&b, "%-22s %28s %28s\n", "", "CAMPUS", "EECS")
	fmt.Fprintf(&b, "%-22s %9s %9s %9s %9s %9s %9s\n", "", "raw", "processed", "paper",
		"raw", "processed", "paper")

	// Raw and processed detection share one pass per trace.
	rawCA := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
		ReorderWindow: campus.ReorderWindowMS / 1000, IdleGap: 30, JumpBlocks: 1}}
	procCA := &pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(campus.ReorderWindowMS)}
	campus.analyze(rawCA, procCA)
	rawEA := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
		ReorderWindow: eecs.ReorderWindowMS / 1000, IdleGap: 30, JumpBlocks: 1}}
	procEA := &pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(eecs.ReorderWindowMS)}
	eecs.analyze(rawEA, procEA)
	rawC, procC := rawCA.Table(), procCA.Table()
	rawE, procE := rawEA.Table(), procEA.Table()

	type rowSpec struct {
		name   string
		value  func(t analysis.RunTable) float64
		paperC string
		paperE string
	}
	rows := []rowSpec{
		{"Reads (% total)", func(t analysis.RunTable) float64 { return t.ReadPct }, "53.1", "16.5"},
		{"  Entire (% read)", func(t analysis.RunTable) float64 { return t.Read[analysis.PatternEntire] }, "57.6", "57.2"},
		{"  Sequential (% read)", func(t analysis.RunTable) float64 { return t.Read[analysis.PatternSequential] }, "33.9", "39.0"},
		{"  Random (% read)", func(t analysis.RunTable) float64 { return t.Read[analysis.PatternRandom] }, "8.6", "3.8"},
		{"Writes (% total)", func(t analysis.RunTable) float64 { return t.WritePct }, "43.9", "82.3"},
		{"  Entire (% write)", func(t analysis.RunTable) float64 { return t.Write[analysis.PatternEntire] }, "37.8", "19.6"},
		{"  Sequential (% write)", func(t analysis.RunTable) float64 { return t.Write[analysis.PatternSequential] }, "53.2", "78.3"},
		{"  Random (% write)", func(t analysis.RunTable) float64 { return t.Write[analysis.PatternRandom] }, "9.0", "2.1"},
		{"Read-Write (% total)", func(t analysis.RunTable) float64 { return t.ReadWritePct }, "3.0", "1.1"},
		{"  Random (% r-w)", func(t analysis.RunTable) float64 { return t.ReadWrite[analysis.PatternRandom] }, "94.3", "86.8"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9.1f %9.1f %9s %9.1f %9.1f %9s\n", r.name,
			r.value(rawC), r.value(procC), r.paperC,
			r.value(rawE), r.value(procE), r.paperE)
	}
	fmt.Fprintf(&b, "(runs: CAMPUS %d, EECS %d)\n", procC.TotalRuns, procE.TotalRuns)
	return b.String()
}

// Table4 reports daily block births and deaths by cause.
func Table4(campus, eecs *Trace) string {
	cLife := blockLifeAnalyzer(campus)
	campus.analyze(cLife)
	eLife := blockLifeAnalyzer(eecs)
	eecs.analyze(eLife)
	cb, eb := cLife.Result, eLife.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Daily block life statistics (24h phase + 24h margin)\n")
	fmt.Fprintf(&b, "%-26s %12s %12s %26s\n", "", "CAMPUS", "EECS", "paper (C / E)")
	row := func(name string, c, e float64, paper string) {
		fmt.Fprintf(&b, "%-26s %11.1f%% %11.1f%% %26s\n", name, c, e, paper)
	}
	fmt.Fprintf(&b, "%-26s %12d %12d %26s\n", "Total births", cb.Births, eb.Births, "28.4M / 9.8M (full scale)")
	row("  Due to writes", cb.BirthPct(analysis.BirthWrite), eb.BirthPct(analysis.BirthWrite), "99.9 / 75.5")
	row("  Due to extension", cb.BirthPct(analysis.BirthExtension), eb.BirthPct(analysis.BirthExtension), "<0.1 / 24.5")
	fmt.Fprintf(&b, "%-26s %12d %12d %26s\n", "Total deaths", cb.Deaths, eb.Deaths, "27.5M / 9.2M (full scale)")
	row("  Due to overwrites", cb.DeathPct(analysis.DeathOverwrite), eb.DeathPct(analysis.DeathOverwrite), "99.1 / 42.4")
	row("  Due to truncates", cb.DeathPct(analysis.DeathTruncate), eb.DeathPct(analysis.DeathTruncate), "0.6 / 5.8")
	row("  Due to file deletion", cb.DeathPct(analysis.DeathDelete), eb.DeathPct(analysis.DeathDelete), "0.3 / 51.8")
	row("End surplus", cb.EndSurplusPct(), eb.EndSurplusPct(), "2.1-5.9 / 3.5-9.5")
	return b.String()
}

// Table5 reports hourly means and relative stddevs, all hours vs peak.
func Table5(campus, eecs *Trace) string {
	cHourly := &pipeline.HourlyAnalyzer{Span: campus.Days * workload.Day}
	campus.analyze(cHourly)
	eHourly := &pipeline.HourlyAnalyzer{Span: eecs.Days * workload.Day}
	eecs.analyze(eHourly)
	ch, eh := cHourly.Result, eHourly.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Average hourly activity; stddev as %% of mean in parens\n")
	for _, peak := range []bool{false, true} {
		label := "All Hours"
		if peak {
			label = "Peak Hours Only (Mon-Fri 9am-6pm)"
		}
		fmt.Fprintf(&b, "%s\n%-24s %22s %22s\n", label, "", "CAMPUS", "EECS")
		cRows := ch.VarianceTable(peak)
		eRows := eh.VarianceTable(peak)
		for i := range cRows {
			fmt.Fprintf(&b, "%-24s %12.0f (%4.0f%%) %12.0f (%4.0f%%)\n",
				cRows[i].Name, cRows[i].Mean, 100*cRows[i].RelStddev,
				eRows[i].Mean, 100*eRows[i].RelStddev)
		}
	}
	red := ch.VarianceReduction()
	fmt.Fprintf(&b, "CAMPUS variance reduction (all/peak): total_ops %.1fx, read_ops %.1fx, write_ops %.1fx\n",
		red["total_ops"], red["read_ops"], red["write_ops"])
	fmt.Fprintf(&b, "paper: CAMPUS stddev%% drops >=4x during peak hours for every statistic\n")
	return b.String()
}

// Figure1 sweeps the reorder window size against swapped accesses.
func Figure1(campus, eecs *Trace) string {
	// The paper uses Wednesday 9am-12pm.
	from := 3*workload.Day + 9*workload.Hour
	to := from + 3*workload.Hour
	cOps := core.FilterOps(campus.Ops, from, to)
	eOps := core.FilterOps(eecs.Ops, from, to)
	if len(cOps) == 0 {
		cOps = campus.Ops
	}
	if len(eOps) == 0 {
		eOps = eecs.Ops
	}
	windows := []float64{0, 1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50}
	cSweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: windows}
	pipeline.RunSlice(campus.Pipeline, cOps, cSweep)
	eSweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: windows}
	pipeline.RunSlice(eecs.Pipeline, eOps, eSweep)
	cPts, ePts := cSweep.Result, eSweep.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: %% of accesses swapped vs reorder window (Wed 9am-12pm)\n")
	fmt.Fprintf(&b, "%10s %12s %12s\n", "window(ms)", "CAMPUS", "EECS")
	for i := range windows {
		fmt.Fprintf(&b, "%10.0f %11.2f%% %11.2f%%\n",
			windows[i], cPts[i].SwappedPct, ePts[i].SwappedPct)
	}
	fmt.Fprintf(&b, "paper: knee at single-digit ms; chosen windows 10ms (CAMPUS), 5ms (EECS)\n")
	return b.String()
}

// Figure2 reports bytes accessed by file size and run pattern.
func Figure2(campus, eecs *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: cumulative %% of bytes accessed vs file size\n")
	for _, tr := range []*Trace{campus, eecs} {
		ra := &pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(tr.ReorderWindowMS)}
		tr.analyze(ra)
		pts := analysis.SizeProfile(ra.Result)
		fmt.Fprintf(&b, "%s\n%12s %8s %8s %8s %8s\n", tr.Name,
			"file size", "total", "entire", "seq", "random")
		for _, p := range pts {
			if p.TotalPct < 0.01 && p.SizeCeil < 4096 {
				continue
			}
			fmt.Fprintf(&b, "%12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				fmtSize(p.SizeCeil), p.TotalPct, p.EntirePct, p.SequentialPct, p.RandomPct)
		}
	}
	fmt.Fprintf(&b, "paper: CAMPUS bytes come overwhelmingly from files >1MB (mailboxes);\n")
	fmt.Fprintf(&b, "       EECS bytes mostly from files <1MB, ~60%% accessed randomly\n")
	return b.String()
}

func fmtSize(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Figure3 reports the cumulative block lifetime distribution.
func Figure3(campus, eecs *Trace) string {
	cLife := blockLifeAnalyzer(campus)
	campus.analyze(cLife)
	eLife := blockLifeAnalyzer(eecs)
	eecs.analyze(eLife)
	cb, eb := cLife.Result, eLife.Result
	marks := []struct {
		label string
		sec   float64
	}{
		{"1 sec", 1}, {"30 sec", 30}, {"5 min", 300},
		{"15 min", 900}, {"1 hour", 3600}, {"6 hours", 21600}, {"1 day", 86400},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: cumulative %% of blocks dead by lifetime\n")
	fmt.Fprintf(&b, "%10s %10s %10s\n", "lifetime", "CAMPUS", "EECS")
	for _, m := range marks {
		fmt.Fprintf(&b, "%10s %9.1f%% %9.1f%%\n", m.label,
			100*cb.Lifetimes.At(m.sec), 100*eb.Lifetimes.At(m.sec))
	}
	fmt.Fprintf(&b, "medians: CAMPUS %s, EECS %s\n",
		fmtDuration(cb.Lifetimes.Median()), fmtDuration(eb.Lifetimes.Median()))
	fmt.Fprintf(&b, "paper: EECS >50%% die <1s; CAMPUS ~half live >10-15min; few CAMPUS blocks die <1s\n")
	return b.String()
}

// Figure4 reports the hourly op counts and read/write ratios across the
// week.
func Figure4(campus, eecs *Trace) string {
	cHourly := &pipeline.HourlyAnalyzer{Span: campus.Days * workload.Day}
	campus.analyze(cHourly)
	eHourly := &pipeline.HourlyAnalyzer{Span: eecs.Days * workload.Day}
	eecs.analyze(eHourly)
	ch, eh := cHourly.Result, eHourly.Result
	cr := ch.RWRatios()
	er := eh.RWRatios()
	days := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: hourly operation counts and R/W ratios (per hour)\n")
	fmt.Fprintf(&b, "%-9s %12s %12s %10s %10s\n", "hour", "CAMPUS ops", "EECS ops", "CAMPUS r/w", "EECS r/w")
	n := ch.Ops.NumBuckets()
	for i := 0; i < n; i++ {
		// Print every third hour to keep the figure readable.
		if i%3 != 0 {
			continue
		}
		label := fmt.Sprintf("%s %02d:00", days[(i/24)%7], i%24)
		eOps, eRatio := 0.0, 0.0
		if i < eh.Ops.NumBuckets() {
			eOps = eh.Ops.Bucket(i)
			if i < len(er) {
				eRatio = er[i]
			}
		}
		fmt.Fprintf(&b, "%-9s %12.0f %12.0f %10.2f %10.2f\n",
			label, ch.Ops.Bucket(i), eOps, cr[i], eRatio)
	}
	fmt.Fprintf(&b, "paper: CAMPUS cyclical with weekday peaks; ratio steady ~2.5 in peak, spiky off-peak\n")
	return b.String()
}

// Figure5 reports the sequentiality metric by run length.
func Figure5(campus, eecs *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: average sequentiality metric vs bytes accessed in run\n")
	for _, tr := range []*Trace{campus, eecs} {
		ra := &pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(tr.ReorderWindowMS)}
		tr.analyze(ra)
		pts := analysis.SequentialityProfile(ra.Result)
		fmt.Fprintf(&b, "%s\n%10s %9s %9s %9s %9s %9s\n", tr.Name,
			"run bytes", "readK10", "readK1", "writeK10", "writeK1", "cum runs")
		for _, p := range pts {
			fmt.Fprintf(&b, "%10s %9s %9s %9s %9s %8.1f%%\n", fmtSize(p.BytesCeil),
				fmtMetric(p.ReadK10), fmtMetric(p.ReadK1),
				fmtMetric(p.WriteK10), fmtMetric(p.WriteK1), p.CumRunsPct)
		}
	}
	fmt.Fprintf(&b, "paper: long CAMPUS reads ~1.0; long CAMPUS writes ~0.6 with k=10;\n")
	fmt.Fprintf(&b, "       EECS writes seek-prone (<0.4 at k=1); small jumps matter\n")
	return b.String()
}

func fmtMetric(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// ExpNfsiod reproduces §4.1.5: reordering vs nfsiod count on an
// isolated network.
func ExpNfsiod() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment §4.1.5: nfsiod count vs call reordering (isolated net)\n")
	fmt.Fprintf(&b, "%8s %10s %12s\n", "nfsiods", "swapped", "max delay")
	for _, n := range []int{1, 2, 4, 6, 8} {
		frac, maxDelay := client.MeasureReordering(n, 40000, 0.00005, 42)
		fmt.Fprintf(&b, "%8d %9.1f%% %11.3fs\n", n, 100*frac, maxDelay)
	}
	fmt.Fprintf(&b, "paper: 1 nfsiod => no reordering; up to 10%% swapped and ~1s delays with more\n")
	return b.String()
}

// ExpNames reproduces §6.3: filename categories predict size, lifetime,
// and pattern.
func ExpNames(campus *Trace) string {
	rep := analysis.AnalyzeNames(campus.Ops, campus.Days*workload.Day)
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment §6.3: filename-based prediction (CAMPUS)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %12s %12s %12s\n",
		"category", "created", "deleted", "life p50", "life p99", "size p98")
	for _, cs := range rep.PerCategory {
		if cs.Created == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %8d %8d %12s %12s %12s\n",
			cs.Category, cs.Created, cs.Deleted,
			fmtDuration(cs.Lifetimes.Percentile(50)),
			fmtDuration(cs.Lifetimes.Percentile(99)),
			fmtSize(uint64(cs.Sizes.Percentile(98))))
	}
	locks := rep.PerCategory[analysis.CatLock]
	fmt.Fprintf(&b, "locks: %.1f%% of created-and-deleted files (paper: 96%%); ", 100*rep.LockFracOfDeleted)
	fmt.Fprintf(&b, "%.1f%% live <0.40s (paper: 99.9%%)\n", 100*locks.Lifetimes.At(0.40))
	comp := rep.PerCategory[analysis.CatComposer]
	fmt.Fprintf(&b, "composer: %.0f%% <1min (paper: 45%%), %.0f%% <=8K (paper: 98%%)\n",
		100*comp.Lifetimes.At(60), 100*comp.Sizes.At(8*1024))
	fmt.Fprintf(&b, "name predicts size class: %.0f%% | lifetime class: %.0f%% (paper: \"extremely well\")\n",
		100*rep.SizeAccuracy, 100*rep.LifeAccuracy)
	return b.String()
}

// ExpReadahead reproduces §6.4: the sequentiality-metric read-ahead
// heuristic vs the strict one under ~10% reordering.
func ExpReadahead() string {
	rng := rand.New(rand.NewSource(7))
	var reqs []server.ReadRequest
	for file := uint64(1); file <= 40; file++ {
		start := len(reqs)
		for bl := int64(0); bl < 512; bl++ {
			reqs = append(reqs, server.ReadRequest{File: file, Block: bl, NBlocks: 1})
		}
		for i := start; i < len(reqs)-1; i++ {
			if rng.Float64() < 0.10 {
				reqs[i], reqs[i+1] = reqs[i+1], reqs[i]
			}
		}
	}
	none := server.RunReadPath(reqs, server.NoReadAhead{}, 4096)
	strict := server.RunReadPath(reqs, server.NewStrictSequential(8), 4096)
	metric := server.RunReadPath(reqs, server.NewMetricReadAhead(), 4096)
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment §6.4: read-ahead policy under ~10%% reordered sequential reads\n")
	for _, r := range []server.ReadPathResult{none, strict, metric} {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	fmt.Fprintf(&b, "metric vs strict speedup: %.1f%% (paper: >5%%)\n",
		100*(metric.Throughput/strict.Throughput-1))
	return b.String()
}

// ExpLoss reproduces §4.1.4: estimating capture loss from unmatched
// calls and replies behind an overloaded mirror port.
func ExpLoss(scale Scale) string {
	// Cripple the port so the trace's burst peaks exceed it.
	lossy, port := GenerateCampusLossy(scale, 120e3)
	clean := GenerateCampus(scale)
	return expLossReport(lossy, port, clean)
}

// expLossReport renders the §4.1.4 comparison for already-generated
// traces, so benchmarks can time the analysis without regenerating the
// workload every iteration.
func expLossReport(lossy *Trace, port *netem.MirrorPort, clean *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment §4.1.4: mirror-port loss estimation\n")
	fmt.Fprintf(&b, "  port drop rate (ground truth): %.1f%% of packets\n", 100*port.LossRate())
	fmt.Fprintf(&b, "  estimated from unmatched calls/replies: %.1f%%\n", 100*lossy.Join.LossEstimate())
	fmt.Fprintf(&b, "  ops recovered: %d of %d (%.1f%%)\n", len(lossy.Ops), len(clean.Ops),
		100*float64(len(lossy.Ops))/float64(len(clean.Ops)))
	fmt.Fprintf(&b, "paper: up to ~10%% of packets lost during bursts, estimated the same way\n")
	return b.String()
}

// ExpHierarchy demonstrates §4.1.1: namespace reconstruction coverage.
// The hierarchy is a global analyzer: the pipeline streams it the full
// ordered trace on its own goroutine.
func ExpHierarchy(campus *Trace) string {
	hier := &pipeline.HierarchyAnalyzer{Warmup: 10 * 60}
	campus.analyze(hier)
	cov := hier.Coverage
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment §4.1.1: hierarchy reconstruction\n")
	fmt.Fprintf(&b, "  coverage after 10min warmup: %.2f%%\n", 100*cov)
	fmt.Fprintf(&b, "paper: after several minutes, unseen-parent probability is very small\n")
	return b.String()
}

// TopProcs renders the procedure mix for a trace.
func TopProcs(tr *Trace) string {
	sum := &pipeline.SummaryAnalyzer{Days: tr.Days}
	tr.analyze(sum)
	s := sum.Result
	type pc struct {
		name string
		n    int64
	}
	var list []pc
	for name, n := range s.ProcCounts.ByName() {
		list = append(list, pc{name, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].name < list[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s procedure mix (%d ops):\n", tr.Name, s.TotalOps)
	for _, p := range list {
		fmt.Fprintf(&b, "  %-12s %8d (%.1f%%)\n", p.name, p.n, 100*float64(p.n)/float64(s.TotalOps))
	}
	return b.String()
}

// ExpNVRAM quantifies the paper's §7 suggestion that delayed writes
// (NVRAM) would absorb much of both workloads' write traffic: the
// fraction of block writes avoided as a function of the write-behind
// delay.
func ExpNVRAM(campus, eecs *Trace) string {
	delays := []float64{1, 10, 30, 60, 300, 900, 3600}
	start, phase := 0.0, campus.Days*workload.Day/2
	if campus.Days >= 3 {
		start, phase = workload.Day+9*workload.Hour, workload.Day
	}
	cPts := analysis.WriteAbsorption(campus.Ops, start, phase, delays)
	ePts := analysis.WriteAbsorption(eecs.Ops, start, phase, delays)
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§7): NVRAM write-behind absorption\n")
	fmt.Fprintf(&b, "%10s %12s %12s\n", "delay", "CAMPUS", "EECS")
	for i := range delays {
		fmt.Fprintf(&b, "%10s %11.1f%% %11.1f%%\n",
			fmtDuration(delays[i]), cPts[i].AbsorbedPct, ePts[i].AbsorbedPct)
	}
	fmt.Fprintf(&b, "paper: \"many blocks do not live long enough to be written\" — EECS absorbs\n")
	fmt.Fprintf(&b, "       heavily at tiny delays (sub-second deaths); CAMPUS needs session-length delays\n")
	return b.String()
}

// ExpQuiet quantifies the §7 suggestion that the predictable daily
// rhythm leaves windows for background reorganization.
func ExpQuiet(campus, eecs *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§7): schedulable quiet periods (<10%% of peak load, ≥4h)\n")
	for _, tr := range []*Trace{campus, eecs} {
		h := analysis.Hourly(tr.Ops, tr.Days*workload.Day)
		ps := analysis.QuietPeriods(h, 0.10, 4)
		fmt.Fprintf(&b, "%s: %d periods, %d hours total\n",
			tr.Name, len(ps), analysis.QuietHoursTotal(ps))
		for i, p := range ps {
			if i == 6 {
				fmt.Fprintf(&b, "  ...\n")
				break
			}
			days := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
			fmt.Fprintf(&b, "  %s %02d:00 - %s %02d:00 (mean %.0f ops/h)\n",
				days[(p.StartHour/24)%7], p.StartHour%24,
				days[(p.EndHour/24)%7], p.EndHour%24, p.MeanOps)
		}
	}
	fmt.Fprintf(&b, "paper: \"servers could schedule periods of reorganization since the daily\n")
	fmt.Fprintf(&b, "       and weekly pattern of the workload is predictable\"\n")
	return b.String()
}
