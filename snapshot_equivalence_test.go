package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// This file pins the mid-stream snapshot contract end to end: a Fork
// taken while the live engine is ingesting, finished with the joiner's
// pending operations, must render every nfsanalyze table byte-identically
// to a batch run over the same record prefix — at every worker count —
// and the fork must not perturb the live run's final results.

// snapBundle is one of each streaming analyzer, configured identically
// on the snapshot and batch sides.
type snapBundle struct {
	sum    *pipeline.SummaryAnalyzer
	hourly *pipeline.HourlyAnalyzer
	runs   *pipeline.RunsAnalyzer
	bl     *pipeline.BlockLifeAnalyzer
	sweep  *pipeline.ReorderSweepAnalyzer
	hier   *pipeline.HierarchyAnalyzer
}

func newSnapBundle(span float64) *snapBundle {
	return &snapBundle{
		sum:    &pipeline.SummaryAnalyzer{},
		hourly: &pipeline.HourlyAnalyzer{Span: span},
		runs:   &pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(10)},
		bl:     &pipeline.BlockLifeAnalyzer{Start: 0, Phase: span / 2, Margin: span / 2},
		sweep:  &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 5, 10}},
		hier:   &pipeline.HierarchyAnalyzer{Warmup: 600},
	}
}

func (b *snapBundle) list() []pipeline.Analyzer {
	return []pipeline.Analyzer{b.sum, b.hourly, b.runs, b.bl, b.sweep, b.hier}
}

// renderAnalyses renders every analyzer with nfsanalyze's exact output
// formats, so byte equality here is byte equality of the CLI tool's
// tables. The analyzers must be closed (post-Run or post-Finish).
func renderAnalyses(analyzers []pipeline.Analyzer, join core.JoinStats, stats pipeline.Stats) string {
	var sb strings.Builder
	days := stats.Span() / workload.Day
	if days <= 0 {
		days = 1.0 / 24
	}
	for _, a := range analyzers {
		switch a := a.(type) {
		case *pipeline.SummaryAnalyzer:
			a.Result.Days = days
			fmt.Fprintln(&sb, a.Result)
			fmt.Fprintf(&sb, "join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
				join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
		case *pipeline.HourlyAnalyzer:
			for _, peak := range []bool{false, true} {
				for _, row := range a.Result.VarianceTable(peak) {
					fmt.Fprintf(&sb, "  %-20s mean=%12.0f stddev=%5.0f%%\n", row.Name, row.Mean, 100*row.RelStddev)
				}
			}
		case *pipeline.RunsAnalyzer:
			tab := a.Table()
			fmt.Fprintf(&sb, "runs=%d\n", tab.TotalRuns)
			fmt.Fprintf(&sb, "reads  %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadPct, tab.Read[0], tab.Read[1], tab.Read[2])
			fmt.Fprintf(&sb, "writes %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.WritePct, tab.Write[0], tab.Write[1], tab.Write[2])
			fmt.Fprintf(&sb, "r-w    %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadWritePct, tab.ReadWrite[0], tab.ReadWrite[1], tab.ReadWrite[2])
		case *pipeline.BlockLifeAnalyzer:
			res := a.Result
			fmt.Fprintf(&sb, "births=%d (writes %.1f%%, extension %.1f%%)\n",
				res.Births, res.BirthPct(analysis.BirthWrite), res.BirthPct(analysis.BirthExtension))
			fmt.Fprintf(&sb, "deaths=%d (overwrite %.1f%%, truncate %.1f%%, delete %.1f%%)\n",
				res.Deaths, res.DeathPct(analysis.DeathOverwrite),
				res.DeathPct(analysis.DeathTruncate), res.DeathPct(analysis.DeathDelete))
			fmt.Fprintf(&sb, "end surplus %.1f%%; lifetime p50=%.1fs p90=%.1fs\n",
				res.EndSurplusPct(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
		case *pipeline.ReorderSweepAnalyzer:
			for _, p := range a.Result {
				fmt.Fprintf(&sb, "window %5.0fms: %.2f%% swapped\n", p.WindowMS, p.SwappedPct)
			}
		case *pipeline.HierarchyAnalyzer:
			fmt.Fprintf(&sb, "hierarchy coverage after 10min warmup: %.2f%%\n", 100*a.Coverage)
		}
	}
	return sb.String()
}

// batchPrefix runs the batch pipeline (pull joiner, as nfsanalyze does)
// over the first n records and renders the tables.
func batchPrefix(cfg pipeline.Config, records []*core.Record, n int, span float64) (string, error) {
	b := newSnapBundle(span)
	j := pipeline.NewJoiner(&core.SliceSource{Records: records[:n]})
	stats, err := pipeline.Run(cfg, j, b.list()...)
	if err != nil {
		return "", err
	}
	return renderAnalyses(b.list(), j.Stats(), stats), nil
}

func TestSnapshotMatchesBatchPrefix(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.5
	records := GenerateCampusRecords(scale)
	if len(records) < 100 {
		t.Fatalf("only %d records generated", len(records))
	}
	span := records[len(records)-1].Time - records[0].Time

	cuts := []int{len(records) / 3, len(records) * 2 / 3}

	// The no-fork reference for the full stream, used to prove forks
	// don't perturb the live run.
	fullWant, err := batchPrefix(pipeline.Config{Workers: 1}, records, len(records), span)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		cfg := pipeline.Config{Workers: workers}

		b := newSnapBundle(span)
		lv := pipeline.NewLive(cfg, b.list()...)
		j := pipeline.NewPushJoiner()

		nextCut := 0
		var buf []*core.Op
		for i, rec := range records {
			if nextCut < len(cuts) && i == cuts[nextCut] {
				snap, err := lv.Fork()
				if err != nil {
					t.Fatal(err)
				}
				pend := j.PendingOps()
				join := j.StatsIfDrained()
				for _, op := range pend {
					snap.Feed(op)
				}
				stats := snap.Finish()

				got := renderAnalyses(snap.Analyzers, join, stats)
				want, err := batchPrefix(cfg, records, i, span)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("workers=%d cut=%d: snapshot differs from batch prefix\n--- snapshot ---\n%s--- batch ---\n%s",
						workers, i, got, want)
				}
				nextCut++
			}
			buf = j.Push(rec, buf[:0])
			for _, op := range buf {
				lv.Feed(op)
			}
		}

		// Continue to EOF: the forks must not have perturbed the live
		// run — its final tables equal the never-forked batch run.
		for _, op := range j.Drain(nil) {
			lv.Feed(op)
		}
		stats := lv.Finish()
		got := renderAnalyses(b.list(), j.Stats(), stats)
		if got != fullWant {
			t.Errorf("workers=%d: post-fork live run differs from batch over the full stream\n--- live ---\n%s--- batch ---\n%s",
				workers, got, fullWant)
		}
	}
}

// TestSnapshotOfDrainedStream forks after the joiner drained (the
// daemon's static-input mode) and checks the snapshot equals the batch
// run over everything.
func TestSnapshotOfDrainedStream(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	records := GenerateCampusRecords(scale)
	span := records[len(records)-1].Time - records[0].Time

	cfg := pipeline.Config{Workers: 2}
	b := newSnapBundle(span)
	lv := pipeline.NewLive(cfg, b.list()...)
	j := pipeline.NewPushJoiner()
	var buf []*core.Op
	for _, rec := range records {
		buf = j.Push(rec, buf[:0])
		for _, op := range buf {
			lv.Feed(op)
		}
	}
	for _, op := range j.Drain(nil) {
		lv.Feed(op)
	}

	snap, err := lv.Fork()
	if err != nil {
		t.Fatal(err)
	}
	stats := snap.Finish()
	got := renderAnalyses(snap.Analyzers, j.Stats(), stats)
	want, err := batchPrefix(cfg, records, len(records), span)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("drained snapshot differs from batch\n--- snapshot ---\n%s--- batch ---\n%s", got, want)
	}
	lv.Abort()
}
