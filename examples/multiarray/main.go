// Multi-array example: the CAMPUS deployment spread users over fourteen
// disk arrays, each a virtual NFS host traced separately. This example
// simulates two arrays, stores each capture in the compact binary trace
// format, k-way merges them back into global time order, and runs a
// cross-array analysis — the workflow the paper's §3.2 infrastructure
// implies.
//
//	go run ./examples/multiarray
package main

import (
	"bytes"
	"fmt"
	"io"

	"repro"
	"repro/internal/analysis"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/workload"
)

func generateArray(name string, serverIP uint32, seed int64) *bytes.Buffer {
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	cfg := workload.DefaultCampusConfig(3, 1.5, seed)
	cfg.ServerIP = serverIP
	workload.NewCampus(cfg, sorter).Run()
	sorter.Flush()

	var buf bytes.Buffer
	w := core.NewBinaryWriter(&buf)
	for _, rec := range sink.Records {
		if err := w.Write(rec); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d records, %d KB binary (%.0f bytes/record)\n",
		name, w.Count(), buf.Len()/1024, float64(buf.Len())/float64(w.Count()))
	return &buf
}

func main() {
	fmt.Println("simulating two CAMPUS disk arrays (home02, home03)...")
	home02 := generateArray("home02", 0x0a010002, 2)
	home03 := generateArray("home03", 0x0a010003, 3)

	// Merge the per-array captures into one time-ordered stream.
	merged, err := core.MergeAll(
		core.NewBinaryReader(home02),
		core.NewBinaryReader(home03),
	)
	if err != nil {
		panic(err)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Time > merged[i].Time {
			panic("merge broke time order")
		}
	}
	fmt.Printf("merged: %d records in global time order\n\n", len(merged))

	// Cross-array analysis over the merged stream.
	ops, stats := core.Join(merged)
	fmt.Printf("joined %d operations (%d calls matched)\n", len(ops), stats.Matched)
	s := analysis.Summarize(ops, 1.5)
	fmt.Printf("both arrays: %s\n\n", s)

	// The per-array view survives the merge: records carry the virtual
	// host each array exposed.
	perServer := map[uint32]int{}
	for _, rec := range merged {
		if rec.Kind == core.KindCall {
			perServer[rec.Server]++
		}
	}
	fmt.Println("calls per array:")
	for server, n := range perServer {
		fmt.Printf("  array %08x: %d calls\n", server, n)
	}

	// The text round trip works on merged streams too.
	var text bytes.Buffer
	if err := repro.WriteTrace(&text, merged); err != nil {
		panic(err)
	}
	tr, err := repro.ReadTrace(io.Reader(&text))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntext round trip: %d ops preserved (%v)\n",
		len(tr.Ops), len(tr.Ops) == len(ops))
}
