// Sniffer example: the full passive-tracing path on real bytes.
//
// A simulated NFSv3-over-TCP client talks to a server while a wire tap
// frames every message into Ethernet/IP/TCP packets. The packets go
// into an in-memory pcap "file", and the sniffer decodes them back into
// trace records — exactly what the paper's tracing host did on the
// CAMPUS mirror port.
//
//	go run ./examples/sniffer
package main

import (
	"bytes"
	"fmt"

	"repro"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/pcap"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// memCapture collects tapped packets into a pcap stream.
type memCapture struct {
	w *pcap.Writer
}

func (m *memCapture) Packet(t float64, frame []byte) {
	if err := m.w.WritePacket(t, frame); err != nil {
		panic(err)
	}
}

func main() {
	// Build a tiny NFS world: server, one client, jumbo-frame TCP.
	fs := vfs.New()
	clock := 0.0
	fs.Clock = func() float64 { clock += 0.001; return clock }
	srv := server.New(fs)

	var capture bytes.Buffer
	pw, err := pcap.NewWriter(&capture, true)
	if err != nil {
		panic(err)
	}
	records := &client.SliceSink{}
	cl := client.New(client.Config{
		IP: 0x0a000005, UID: 501, GID: 100,
		Version: nfs.V3, Proto: core.ProtoTCP, Seed: 7,
	}, srv, 0x0a000001, records)
	cl.EnableWireTap(client.NewWireTap(&memCapture{w: pw}, 0x0a000005, 0x0a000001, wire.JumboMTU))

	// A little mail-session activity.
	root := srv.FS.RootFH()
	t := 1.0
	inbox, t := cl.Create(t, root, "inbox", false)
	t = cl.WriteRange(t, inbox, 0, 128*1024)
	lock, t := cl.Create(t, root, "inbox.lock", true)
	_ = lock
	_, t = cl.ReadFile(t+1, inbox, 128*1024)
	_, t = cl.Remove(t, root, "inbox.lock")
	pw.Flush()

	fmt.Printf("generated %d packets (%d bytes of capture) for %d ground-truth records\n",
		pw.Count(), capture.Len(), len(records.Records))

	// Now sniff the capture, anonymizing on the fly.
	sniffed, stats, err := repro.Sniff(&capture, repro.Anonymize(nil, 42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sniffer: %d calls, %d replies, loss estimate %.2f%%\n",
		stats.Calls, stats.Replies, 100*stats.LossEstimate())

	fmt.Println("\nfirst records as the tracer writes them:")
	for i, rec := range sniffed {
		if i == 6 {
			fmt.Printf("  ... %d more\n", len(sniffed)-6)
			break
		}
		fmt.Println(" ", rec.Marshal())
	}
	if len(sniffed) != len(records.Records) {
		panic("sniffer lost records on a lossless link")
	}
	fmt.Println("\nsniffed record count matches ground truth exactly.")
}
