// Anonymizer example: demonstrates the §2 anonymization properties on
// real-looking pathnames — consistent mappings, shared prefixes and
// suffixes, special markers, pass-throughs, and saved mapping tables.
//
//	go run ./examples/anonymizer
package main

import (
	"bytes"
	"fmt"

	"repro/internal/anon"
)

func main() {
	a := anon.New(anon.DefaultConfig(2003))

	fmt.Println("paths share anonymized prefixes exactly as they share real ones:")
	for _, p := range []string{
		"home02/jsmith/inbox",
		"home02/jsmith/research-notes.txt",
		"home02/mdoe/inbox",
		"home02/mdoe/thesis/chapter1.tex",
		"home02/mdoe/thesis/chapter2.tex",
	} {
		fmt.Printf("  %-36s -> %s\n", p, a.Path(p))
	}

	fmt.Println("\nsuffixes and special markers survive:")
	for _, n := range []string{
		"secret-project.c", "other-project.c", "secret-project.h",
		"draft", "draft~", "draft,v", "#draft", "draft.lock",
	} {
		fmt.Printf("  %-18s -> %s\n", n, a.Name(n))
	}

	fmt.Println("\nconfigured pass-throughs stay readable:")
	for _, n := range []string{"CVS", ".pinerc", "inbox", "lock", "Makefile"} {
		fmt.Printf("  %-10s -> %s\n", n, a.Name(n))
	}

	fmt.Println("\nUIDs map consistently; root stays root:")
	fmt.Printf("  uid 501 -> %d (again: %d)\n", a.UID(501), a.UID(501))
	fmt.Printf("  uid 0   -> %d\n", a.UID(0))

	// Save the tables and reload into a different anonymizer: the
	// mapping survives, so multi-file traces anonymize consistently.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		panic(err)
	}
	b := anon.New(anon.DefaultConfig(9999)) // different seed
	if err := b.Load(&buf); err != nil {
		panic(err)
	}
	fmt.Println("\nafter saving and reloading the mapping tables:")
	fmt.Printf("  secret-project.c -> %s (same as before: %v)\n",
		b.Name("secret-project.c"), b.Name("secret-project.c") == a.Name("secret-project.c"))
}
