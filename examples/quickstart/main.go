// Quickstart: simulate a day of the CAMPUS email system, then run the
// paper's headline analyses over the resulting NFS trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
	"repro/internal/analysis"
	"repro/internal/workload"
)

func main() {
	// A small Sunday+Monday window: 4 users is plenty to see shape.
	scale := repro.Scale{CampusUsers: 4, EECSClients: 2, Days: 2, Seed: 1}
	fmt.Println("generating a 2-day CAMPUS trace...")
	campus := repro.GenerateCampus(scale)
	fmt.Printf("  %d operations (%d calls matched to replies)\n\n",
		len(campus.Ops), campus.Join.Matched)

	// Table-2-style summary.
	s := analysis.Summarize(campus.Ops, campus.Days)
	fmt.Printf("daily activity: %s\n\n", s)

	// The workload's signature: almost everything is email.
	fmt.Println(repro.TopProcs(campus))

	// Run detection with the paper's 10ms reorder window.
	runs := analysis.DetectRuns(campus.Ops, analysis.DefaultRunConfig(10))
	tab := analysis.Tabulate(runs)
	fmt.Printf("runs: %d total — reads %.0f%% (entire %.0f%%), writes %.0f%% (seq %.0f%%)\n\n",
		tab.TotalRuns, tab.ReadPct, tab.Read[analysis.PatternEntire],
		tab.WritePct, tab.Write[analysis.PatternSequential])

	// Block lifetimes over the Monday window.
	bl := analysis.BlockLife(campus.Ops,
		workload.Day+9*workload.Hour, 6*workload.Hour, 6*workload.Hour)
	fmt.Printf("block lifetimes (Mon 9am, 6h+6h): %d births, %d deaths, median life %.0fs\n",
		bl.Births, bl.Deaths, bl.Lifetimes.Median())
	fmt.Printf("  deaths: %.1f%% overwrite, %.1f%% truncate, %.1f%% delete\n",
		bl.DeathPct(analysis.DeathOverwrite),
		bl.DeathPct(analysis.DeathTruncate),
		bl.DeathPct(analysis.DeathDelete))
}
