// Read-ahead example: the paper's §6.4 experiment, runnable.
//
// An NFS server sees large sequential reads whose requests arrive
// slightly reordered by client-side nfsiods. The classic strict
// heuristic (prefetch only while each request begins exactly where the
// last ended) collapses under reordering; the paper's
// sequentiality-metric heuristic keeps prefetching and wins.
//
//	go run ./examples/readahead
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/server"
)

func main() {
	fmt.Println("20 files x 4MB sequential reads, varying reordering:")
	fmt.Printf("%10s %12s %12s %12s %10s\n",
		"reordered", "none MB/s", "strict MB/s", "metric MB/s", "metric win")
	for _, p := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		reqs := makeRequests(20, 512, p, 7)
		none := server.RunReadPath(reqs, server.NoReadAhead{}, 4096)
		strict := server.RunReadPath(reqs, server.NewStrictSequential(8), 4096)
		metric := server.RunReadPath(reqs, server.NewMetricReadAhead(), 4096)
		fmt.Printf("%9.0f%% %12.1f %12.1f %12.1f %9.1f%%\n",
			p*100, none.Throughput/1e6, strict.Throughput/1e6, metric.Throughput/1e6,
			100*(metric.Throughput/strict.Throughput-1))
	}
	fmt.Println("\npaper: ~10% reordering on a loaded system; metric heuristic >5% faster")
}

// makeRequests builds per-file sequential block reads, then swaps
// adjacent pairs with probability p (the nfsiod effect).
func makeRequests(files int, blocksPerFile int64, p float64, seed int64) []server.ReadRequest {
	rng := rand.New(rand.NewSource(seed))
	var reqs []server.ReadRequest
	for f := 1; f <= files; f++ {
		start := len(reqs)
		for b := int64(0); b < blocksPerFile; b++ {
			reqs = append(reqs, server.ReadRequest{File: uint64(f), Block: b, NBlocks: 1})
		}
		for i := start; i < len(reqs)-1; i++ {
			if rng.Float64() < p {
				reqs[i], reqs[i+1] = reqs[i+1], reqs[i]
			}
		}
	}
	return reqs
}
