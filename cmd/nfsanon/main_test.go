package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// smokeTrace builds a small CAMPUS trace in memory.
func smokeTrace(t *testing.T) []byte {
	t.Helper()
	scale := repro.SmallScale()
	scale.Days = 0.1
	records := repro.GenerateCampusRecords(scale)
	if len(records) == 0 {
		t.Fatal("generator produced no records")
	}
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func countLines(b []byte) int { return bytes.Count(b, []byte("\n")) }

// TestRunAnonymizes pipes a trace through stdin/stdout and checks the
// shape is preserved while identifiers change.
func TestRunAnonymizes(t *testing.T) {
	raw := smokeTrace(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-seed", "7"}, bytes.NewReader(raw), &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if countLines(out.Bytes()) != countLines(raw) {
		t.Fatalf("line count changed: %d → %d", countLines(raw), countLines(out.Bytes()))
	}
	if bytes.Equal(out.Bytes(), raw) {
		t.Fatal("output identical to input; nothing was anonymized")
	}
	if !strings.Contains(errb.String(), "mapped") {
		t.Fatalf("stderr missing mapping stats: %s", errb.String())
	}
}

// TestRunDeterministicSeed: the mapping is a pure function of the seed.
func TestRunDeterministicSeed(t *testing.T) {
	raw := smokeTrace(t)
	anonWith := func(seed string) []byte {
		t.Helper()
		var out, errb bytes.Buffer
		if err := run([]string{"-seed", seed}, bytes.NewReader(raw), &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(anonWith("3"), anonWith("3")) {
		t.Fatal("same-seed outputs differ")
	}
	if bytes.Equal(anonWith("3"), anonWith("4")) {
		t.Fatal("different-seed outputs identical")
	}
}

// TestRunMapfileRoundTrip: a saved mapfile makes a second run reuse the
// same mappings, and file flags work alongside the pipes.
func TestRunMapfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := smokeTrace(t)
	in := filepath.Join(dir, "raw.trace")
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	mapfile := filepath.Join(dir, "site.map")
	outA := filepath.Join(dir, "a.trace")
	outB := filepath.Join(dir, "b.trace")
	for _, out := range []string{outA, outB} {
		var stdout, errb bytes.Buffer
		if err := run([]string{"-i", in, "-o", out, "-seed", "9", "-mapfile", mapfile}, &bytes.Buffer{}, &stdout, &errb); err != nil {
			t.Fatalf("run -o %s: %v", out, err)
		}
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("second run with saved mapfile produced a different trace")
	}
	if _, err := os.Stat(mapfile); err != nil {
		t.Fatalf("mapfile not written: %v", err)
	}
}

// TestRunOmit drops identifying fields entirely.
func TestRunOmit(t *testing.T) {
	raw := smokeTrace(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-omit"}, bytes.NewReader(raw), &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if countLines(out.Bytes()) != countLines(raw) {
		t.Fatal("omit mode changed the record count")
	}
}

// TestRunErrors covers flag and file failure paths.
func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-i", filepath.Join(t.TempDir(), "missing.trace")},
		{"-badflag"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &bytes.Buffer{}, &out, &errb); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &bytes.Buffer{}, &out, &errb); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errb.String(), "-mapfile") {
		t.Fatalf("-h usage missing flags: %s", errb.String())
	}
}
