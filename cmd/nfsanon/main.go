// nfsanon anonymizes an existing text trace: consistent random
// replacement of UIDs, GIDs, IPs, and filename components, with
// per-component path handling, separate suffix mapping, and
// configurable pass-throughs (§2 of the paper).
//
// Usage:
//
//	nfsanon -i raw.trace -o anon.trace -seed 7 -mapfile site.map
//	nfsanon -i raw.trace -omit -o stripped.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/anon"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nfsanon:", err)
		os.Exit(1)
	}
}

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsanon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace (default stdin)")
	out := fs.String("o", "", "output trace (default stdout)")
	seed := fs.Int64("seed", 1, "anonymization seed")
	omit := fs.Bool("omit", false, "omit names/uids/gids/ips entirely instead of mapping")
	mapFile := fs.String("mapfile", "", "save (and pre-load, if present) mapping tables here")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	cfg := anon.DefaultConfig(*seed)
	cfg.Omit = *omit
	a := anon.New(cfg)
	if *mapFile != "" {
		if mf, err := os.Open(*mapFile); err == nil {
			if err := a.Load(mf); err != nil {
				mf.Close()
				return fmt.Errorf("loading %s: %w", *mapFile, err)
			}
			mf.Close()
		}
	}

	tr := core.NewReader(r)
	tw := core.NewWriter(w)
	var n int64
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Record(rec)
		if err := tw.Write(rec); err != nil {
			return err
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *mapFile != "" {
		mf, err := os.Create(*mapFile)
		if err != nil {
			return err
		}
		if err := a.Save(mf); err != nil {
			mf.Close()
			return err
		}
		mf.Close()
	}
	uids, gids, ips, names, sufs := a.Stats()
	fmt.Fprintf(stderr, "nfsanon: %d records; mapped %d uids, %d gids, %d ips, %d names, %d suffixes\n",
		n, uids, gids, ips, names, sufs)
	return nil
}
