// nfsanon anonymizes an existing text trace: consistent random
// replacement of UIDs, GIDs, IPs, and filename components, with
// per-component path handling, separate suffix mapping, and
// configurable pass-throughs (§2 of the paper).
//
// Usage:
//
//	nfsanon -i raw.trace -o anon.trace -seed 7 -mapfile site.map
//	nfsanon -i raw.trace -omit -o stripped.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/anon"
	"repro/internal/core"
)

func main() {
	in := flag.String("i", "", "input trace (default stdin)")
	out := flag.String("o", "", "output trace (default stdout)")
	seed := flag.Int64("seed", 1, "anonymization seed")
	omit := flag.Bool("omit", false, "omit names/uids/gids/ips entirely instead of mapping")
	mapFile := flag.String("mapfile", "", "save (and pre-load, if present) mapping tables here")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := anon.DefaultConfig(*seed)
	cfg.Omit = *omit
	a := anon.New(cfg)
	if *mapFile != "" {
		if mf, err := os.Open(*mapFile); err == nil {
			if err := a.Load(mf); err != nil {
				fatal(fmt.Errorf("loading %s: %w", *mapFile, err))
			}
			mf.Close()
		}
	}

	tr := core.NewReader(r)
	tw := core.NewWriter(w)
	var n int64
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		a.Record(rec)
		if err := tw.Write(rec); err != nil {
			fatal(err)
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}

	if *mapFile != "" {
		mf, err := os.Create(*mapFile)
		if err != nil {
			fatal(err)
		}
		if err := a.Save(mf); err != nil {
			fatal(err)
		}
		mf.Close()
	}
	uids, gids, ips, names, sufs := a.Stats()
	fmt.Fprintf(os.Stderr, "nfsanon: %d records; mapped %d uids, %d gids, %d ips, %d names, %d suffixes\n",
		n, uids, gids, ips, names, sufs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfsanon:", err)
	os.Exit(1)
}
