package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
)

func TestParseFlaky(t *testing.T) {
	cases := []struct {
		in  string
		bad bool
		// probes maps an assignment sequence number to the expected fault.
		probes map[int]dispatch.Fault
	}{
		{in: "", probes: nil},
		{in: "crash:1", probes: map[int]dispatch.Fault{1: dispatch.FaultCrash, 2: dispatch.FaultNone}},
		{in: "crash:1,corrupt:3", probes: map[int]dispatch.Fault{
			1: dispatch.FaultCrash, 2: dispatch.FaultNone, 3: dispatch.FaultCorrupt}},
		{in: "hang", probes: map[int]dispatch.Fault{1: dispatch.FaultHang, 7: dispatch.FaultHang}},
		{in: "hang, crash:2", probes: map[int]dispatch.Fault{
			1: dispatch.FaultHang, 2: dispatch.FaultCrash}},
		{in: "explode:1", bad: true},
		{in: "crash:0", bad: true},
		{in: "crash:x", bad: true},
		{in: "crash:1,hang:1", bad: true},
		{in: "hang,crash", bad: true},
	}
	for _, c := range cases {
		f, err := parseFlaky(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("parseFlaky(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFlaky(%q): %v", c.in, err)
			continue
		}
		if c.probes == nil {
			if f != nil {
				t.Errorf("parseFlaky(%q): want nil hook for empty schedule", c.in)
			}
			continue
		}
		for seq, want := range c.probes {
			if got := f(seq); got != want {
				t.Errorf("parseFlaky(%q)(%d) = %v, want %v", c.in, seq, got, want)
			}
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var errb bytes.Buffer
	if code := run([]string{"-flaky", "explode"}, &errb); code != 2 {
		t.Fatalf("bad -flaky: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"stray-arg"}, &errb); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
}

// syncWriter lets the daemon goroutine log safely while the test reads
// what it wrote.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
	w   io.Writer // tee for the address scraper; may be nil
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		s.w.Write(p)
	}
	return s.buf.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// TestServeAndDrain boots the daemon exactly as main would — run()
// with -listen :0 — scrapes the bound address from its log line,
// completes one real analysis assignment against it over TCP, then
// delivers SIGTERM and watches the drain finish cleanly.
func TestServeAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test")
	}
	pr, pw := io.Pipe()
	logw := &syncWriter{w: pw}
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-listen", "127.0.0.1:0"}, logw)
		pw.Close()
	}()

	// Scrape "nfsworker: listening on ADDR (pid N)".
	var addr string
	scanner := bufio.NewScanner(pr)
	re := regexp.MustCompile(`listening on (\S+)`)
	for scanner.Scan() {
		if m := re.FindStringSubmatch(scanner.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening line in daemon log: %s", logw)
	}
	go io.Copy(io.Discard, pr) // keep the tee from blocking

	// One real assignment: a summary analysis over a generated trace.
	dir := t.TempDir()
	scale := repro.SmallScale()
	scale.Days = 0.25
	records := repro.GenerateCampusRecords(scale)
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "campus.trace")
	if err := os.WriteFile(trace, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	spec := jobspec.Spec{Kind: "summary"}
	specJSON, _ := json.Marshal(spec)
	results, stats, err := dispatch.Run(context.Background(), dispatch.Config{
		Addrs: []string{addr},
	}, []dispatch.Task{{ID: 0, Spec: specJSON, Decoders: 1, Files: []string{trace}}})
	if err != nil || len(results) != 1 {
		t.Fatalf("dispatch against daemon: %v (%d results)\n%s", err, len(results), logw)
	}
	if stats.Completed != 1 {
		t.Fatalf("stats %+v", stats)
	}
	p, err := pipeline.ReadPartial(bytes.NewReader(results[0].State))
	if err != nil {
		t.Fatalf("daemon state unreadable: %v", err)
	}
	if p.Label != "summary" {
		t.Fatalf("daemon state label %q", p.Label)
	}

	// SIGTERM: the signal handler registered by run() must drain and
	// let run() return 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("drain exit code %d\n%s", code, logw)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\n%s", logw)
	}
	log := logw.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "drained, exiting") {
		t.Fatalf("drain not logged:\n%s", log)
	}
}
