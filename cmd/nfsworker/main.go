// Command nfsworker is the remote analysis worker: it listens on a TCP
// port, accepts piece assignments from an `nfsanalyze -coordinator
// -remote` process, runs the requested analysis over trace bytes the
// coordinator streams to it (no shared filesystem needed), and streams
// the serialized partial state back. SIGTERM drains gracefully: the
// in-flight assignment finishes and flushes before the process exits.
//
// The -flaky flag injects deterministic faults for testing the
// coordinator's supervision: crash (die mid-result-stream), hang (stop
// heartbeating with the connection open), corrupt (flip a state byte so
// the checksum must reject it).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/dispatch"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("nfsworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "address to serve assignments on")
	flaky := fs.String("flaky", "", "deterministic fault schedule: comma-separated fault[:N] entries, where fault is crash|hang|corrupt and N is the 1-based assignment number it fires on (no :N = every assignment), e.g. crash:1,corrupt:3")
	tempdir := fs.String("tempdir", "", "spool directory for received trace pieces (default: system temp)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "nfsworker: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	faultFor, err := parseFlaky(*flaky)
	if err != nil {
		fmt.Fprintf(stderr, "nfsworker: %v\n", err)
		return 2
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "nfsworker: %v\n", err)
		return 1
	}

	var logMu sync.Mutex
	logf := func(format string, fmtArgs ...interface{}) {
		logMu.Lock()
		fmt.Fprintf(stderr, "nfsworker: "+format+"\n", fmtArgs...)
		logMu.Unlock()
	}
	// The bound address line is load-bearing: with -listen :0, scripts
	// scrape it to learn the port.
	logf("listening on %s (pid %d)", lis.Addr(), os.Getpid())

	w := &dispatch.Worker{
		Runner:   analysisRunner,
		Logf:     logf,
		FaultFor: faultFor,
		TempDir:  *tempdir,
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		logf("%s: draining (in-flight assignment will finish)", s)
		w.Drain()
	}()

	if err := w.Serve(lis); err != nil {
		logf("serve: %v", err)
		return 1
	}
	logf("drained, exiting")
	return 0
}

// analysisRunner executes one assignment with the shared jobspec
// machinery — the same code path nfsanalyze itself runs, so worker
// output is bit-compatible with local execution.
func analysisRunner(ctx context.Context, specJSON, parent []byte, files []string, decoders int) ([]byte, error) {
	var spec jobspec.Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("decoding analysis spec: %w", err)
	}
	var pp *pipeline.Partial
	if len(parent) > 0 {
		p, err := pipeline.ReadPartial(bytes.NewReader(parent))
		if err != nil {
			return nil, fmt.Errorf("decoding parent state: %w", err)
		}
		pp = p
	}
	return jobspec.RunFiles(ctx, spec, files, decoders, pp)
}

// parseFlaky compiles the -flaky schedule into a FaultFor hook.
func parseFlaky(s string) (func(seq int) dispatch.Fault, error) {
	if s == "" {
		return nil, nil
	}
	always := dispatch.FaultNone
	at := map[int]dispatch.Fault{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, nstr, hasN := strings.Cut(entry, ":")
		var f dispatch.Fault
		switch name {
		case "crash":
			f = dispatch.FaultCrash
		case "hang":
			f = dispatch.FaultHang
		case "corrupt":
			f = dispatch.FaultCorrupt
		default:
			return nil, fmt.Errorf("-flaky: unknown fault %q (want crash, hang, or corrupt)", name)
		}
		if !hasN {
			if always != dispatch.FaultNone {
				return nil, fmt.Errorf("-flaky: multiple unconditional faults")
			}
			always = f
			continue
		}
		n, err := strconv.Atoi(nstr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-flaky: bad assignment number %q in %q", nstr, entry)
		}
		if _, dup := at[n]; dup {
			return nil, fmt.Errorf("-flaky: assignment %d scheduled twice", n)
		}
		at[n] = f
	}
	return func(seq int) dispatch.Fault {
		if f, ok := at[seq]; ok {
			return f
		}
		return always
	}, nil
}
