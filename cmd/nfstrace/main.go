// nfstrace is the sniffer: it reads a pcap capture of NFS traffic and
// emits timestamped trace records, one line per call and reply — the
// reproduction of the paper's tcpdump-derived tracing software (§2).
//
// It decodes NFSv2 and NFSv3 over UDP (reassembling IP fragments) and
// TCP (reassembling streams and RPC record marking), matches replies to
// calls by transaction id, and can anonymize on the fly.
//
// Usage:
//
//	nfstrace -r capture.pcap -o trace.txt
//	nfstrace -r capture.pcap -anonymize -seed 42 -mapfile anon.map
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/anon"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/pcap"
)

func main() {
	in := flag.String("r", "", "pcap file to read (required)")
	out := flag.String("o", "", "trace output file (default stdout)")
	anonymize := flag.Bool("anonymize", false, "anonymize records")
	seed := flag.Int64("seed", 1, "anonymization seed")
	mapFile := flag.String("mapfile", "", "save (and pre-load, if present) the anonymization tables here")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "nfstrace: -r is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	pr, err := pcap.NewReader(f)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	tw := core.NewWriter(w)

	var anonymizer *anon.Anonymizer
	if *anonymize {
		anonymizer = anon.New(anon.DefaultConfig(*seed))
		if *mapFile != "" {
			if mf, err := os.Open(*mapFile); err == nil {
				if err := anonymizer.Load(mf); err != nil {
					fatal(fmt.Errorf("loading %s: %w", *mapFile, err))
				}
				mf.Close()
			}
		}
	}

	sn := capture.NewSniffer(func(rec *core.Record) {
		if err := tw.Write(rec); err != nil {
			fatal(err)
		}
	})
	sn.Anon = anonymizer
	if err := sn.ReadPcap(pr); err != nil {
		fatal(err)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}

	if anonymizer != nil && *mapFile != "" {
		mf, err := os.Create(*mapFile)
		if err != nil {
			fatal(err)
		}
		if err := anonymizer.Save(mf); err != nil {
			fatal(err)
		}
		mf.Close()
	}

	s := sn.Stats
	fmt.Fprintf(os.Stderr,
		"nfstrace: %d packets, %d calls, %d replies, %d orphan replies (loss est %.2f%%), %d decode errors\n",
		s.Packets, s.Calls, s.Replies, s.OrphanReplies, 100*s.LossEstimate(), s.DecodeErrors)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfstrace:", err)
	os.Exit(1)
}
