package main

import (
	"os"
	"sync"

	"repro/internal/core"
)

// traceSink funnels the in-process server's passive trace tap into an
// append-only text trace file. The tap runs on per-connection
// goroutines, so writes serialize on a mutex; each record is flushed
// immediately so a tailing consumer (cmd/nfsmond) sees it with no
// buffering delay. That per-record flush caps throughput well below
// what the server can serve — the tap is for live-monitoring demos and
// smoke tests, not peak benchmarking.
type traceSink struct {
	mu sync.Mutex
	f  *os.File
	w  *core.Writer
}

func newTraceSink(path string) (*traceSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &traceSink{f: f, w: core.NewWriter(f)}, nil
}

func (s *traceSink) Write(r *core.Record) {
	s.mu.Lock()
	s.w.Write(r)
	s.w.Flush()
	s.mu.Unlock()
}

func (s *traceSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Flush()
	return s.f.Close()
}
