// nfsbench is a closed/open-loop NFS load harness: T concurrent
// simulated clients drive the in-process NFS server (or any server
// speaking ONC RPC over record-marked TCP) across real loopback
// sockets, with a Zipfian file/offset popularity distribution and a
// configurable read/write/metadata mix. A sharded latency collector
// reports throughput, p50/p90/p99/p999, and full latency CDFs per
// operation class, as a live interval printer plus a final
// machine-readable JSON report.
//
// Closed loop (default): each of the -T clients keeps exactly -c
// operations outstanding; the offered load adapts to the server.
// Open loop (-rate): operations arrive on a Poisson schedule at the
// target aggregate rate regardless of completions, and latency is
// measured from the *intended* arrival time, so queueing delay is
// charged to the server (no coordinated omission).
//
// With a fixed -seed the operation streams are fully deterministic:
// two runs issue byte-identical call sequences, so op counts in the
// JSON report are bit-reproducible (latencies, of course, are not).
//
// Usage:
//
//	nfsbench -T 8 -c 4 -n 100000 -files 256 -s 1.2 -seed 1
//	nfsbench -rate 5000 -n 50000 -read 70 -write 20 -json out.json
//	nfsbench -addr 127.0.0.1:2049 -version 2 -n 10000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nfsbench:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	addr        string
	T           int
	outstanding int
	rate        float64
	n           int
	files       int
	filesize    uint64
	xfer        uint64
	readPct     int
	writePct    int
	zipfS       float64
	zipfV       float64
	version     int
	seed        int64
	interval    time.Duration
	jsonPath    string
	maxInflight int
	rootIno     uint64
	tracePath   string
}

// Operation kinds drawn by the workload mix. The metadata class cycles
// through GETATTR, LOOKUP, and ACCESS.
const (
	kindRead = iota
	kindWrite
	kindGetattr
	kindLookup
	kindAccess
	numKinds
)

var kindName = [numKinds]string{"READ", "WRITE", "GETATTR", "LOOKUP", "ACCESS"}

var kindClass = [numKinds]stats.OpClass{
	stats.OpRead, stats.OpWrite, stats.OpMeta, stats.OpMeta, stats.OpMeta,
}

// op is one drawn operation: everything about it is decided by the
// deterministic generator before it touches the wire.
type op struct {
	kind int
	file int
	off  uint64
}

func run(args []string, stdout, stderr io.Writer) error {
	var cfg config
	fs := flag.NewFlagSet("nfsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", "", "server address; empty starts an in-process server on loopback")
	fs.IntVar(&cfg.T, "T", 4, "number of concurrent simulated clients (connections)")
	fs.IntVar(&cfg.outstanding, "c", 1, "closed loop: operations kept outstanding per client")
	fs.Float64Var(&cfg.rate, "rate", 0, "open loop: target aggregate arrival rate in ops/sec (0 = closed loop)")
	fs.IntVar(&cfg.n, "n", 10000, "total operations across all clients")
	fs.IntVar(&cfg.files, "files", 64, "benchmark file population")
	fs.Uint64Var(&cfg.filesize, "filesize", 1<<20, "size of each benchmark file in bytes")
	fs.Uint64Var(&cfg.xfer, "xfer", 8192, "read/write transfer size in bytes")
	fs.IntVar(&cfg.readPct, "read", 60, "percentage of READ operations")
	fs.IntVar(&cfg.writePct, "write", 20, "percentage of WRITE operations (the rest is metadata)")
	fs.Float64Var(&cfg.zipfS, "s", 1.2, "Zipfian skew exponent for file and offset popularity (0 = uniform)")
	fs.Float64Var(&cfg.zipfV, "v", 1, "Zipfian v parameter (head flattening, ≥ 1)")
	fs.IntVar(&cfg.version, "version", 3, "NFS protocol version: 2 or 3")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed; fixes the operation streams exactly")
	fs.DurationVar(&cfg.interval, "interval", time.Second, "live stats print interval (0 disables)")
	fs.StringVar(&cfg.jsonPath, "json", "", "write the JSON report here instead of stdout")
	fs.IntVar(&cfg.maxInflight, "maxinflight", 256, "open loop: cap on in-flight operations per client")
	fs.Uint64Var(&cfg.rootIno, "root", 2, "root directory inode number for the exported filesystem")
	fs.StringVar(&cfg.tracePath, "trace", "", "append a passive text trace of the in-process server's traffic to this file (for nfsmond/nfsanalyze; requires empty -addr)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if cfg.T < 1 || cfg.outstanding < 1 || cfg.n < 1 || cfg.files < 1 {
		return fmt.Errorf("need -T, -c, -n, -files ≥ 1")
	}
	if cfg.readPct < 0 || cfg.writePct < 0 || cfg.readPct+cfg.writePct > 100 {
		return fmt.Errorf("-read + -write must lie in [0,100]")
	}
	if cfg.version != 2 && cfg.version != 3 {
		return fmt.Errorf("-version must be 2 or 3")
	}
	if cfg.xfer == 0 || cfg.filesize == 0 {
		return fmt.Errorf("-xfer and -filesize must be positive")
	}
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}

	// Start the in-process server unless we were pointed at one.
	addr := cfg.addr
	if addr == "" {
		var trace func(*core.Record)
		if cfg.tracePath != "" {
			sink, err := newTraceSink(cfg.tracePath)
			if err != nil {
				return err
			}
			defer sink.Close()
			trace = sink.Write
		}
		ns, err := server.ListenTraced(server.New(vfs.New()), "127.0.0.1:0", trace)
		if err != nil {
			return err
		}
		defer ns.Close()
		addr = ns.Addr()
	} else if cfg.tracePath != "" {
		return fmt.Errorf("-trace taps the in-process server; it cannot trace an external -addr")
	}

	// Populate the benchmark namespace through the wire, so external
	// servers work identically to the in-process one.
	fhs, err := setupFiles(addr, &cfg)
	if err != nil {
		return fmt.Errorf("populating %d files: %w", cfg.files, err)
	}

	// Popularity distributions: one over files, one over each file's
	// transfer-aligned blocks.
	blocks := int(cfg.filesize / cfg.xfer)
	if blocks < 1 {
		blocks = 1
	}
	zipfFile := workload.NewZipf(cfg.zipfS, cfg.zipfV, cfg.files)
	zipfBlock := workload.NewZipf(cfg.zipfS, cfg.zipfV, blocks)

	collector := stats.NewCollector()
	var completed atomic.Int64

	// Live printer.
	printerDone := make(chan struct{})
	var printerWG sync.WaitGroup
	start := time.Now()
	if cfg.interval > 0 {
		printerWG.Add(1)
		go func() {
			defer printerWG.Done()
			livePrinter(stderr, cfg.interval, &completed, start, printerDone)
		}()
	}

	// Launch clients. Client i runs opsFor(i) operations; each client's
	// draws come from its own seeded rng, so the aggregate op stream is
	// a pure function of the flags.
	var wg sync.WaitGroup
	clientCounts := make([]map[string]int64, cfg.T)
	clientErrs := make([]error, cfg.T)
	for i := 0; i < cfg.T; i++ {
		cl, err := client.DialNFS(addr, uint32(cfg.version), uint32(1000+i), 100)
		if err != nil {
			return fmt.Errorf("dialing client %d: %w", i, err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *client.NetClient) {
			defer wg.Done()
			r := runner{
				cfg: &cfg, client: cl, clientIdx: i,
				fhs: fhs, zipfFile: zipfFile, zipfBlock: zipfBlock,
				collector: collector, completed: &completed,
				counts: make(map[string]int64),
			}
			if cfg.rate > 0 {
				clientErrs[i] = r.openLoop()
			} else {
				clientErrs[i] = r.closedLoop()
			}
			clientCounts[i] = r.counts
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(printerDone)
	printerWG.Wait()
	for i, err := range clientErrs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}

	rep := buildReport(&cfg, elapsed, collector, clientCounts)
	out := stdout
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	all := rep.Classes["all"]
	fmt.Fprintf(stderr, "nfsbench: %d ops in %.2fs = %.0f ops/s; p50 %.0fµs p90 %.0fµs p99 %.0fµs p999 %.0fµs; %d errors\n",
		rep.TotalOps, rep.ElapsedSec, rep.ThroughputOpsPerSec,
		all.P50Us, all.P90Us, all.P99Us, all.P999Us, rep.Errors)
	return nil
}

// opsFor splits the -n total across clients, front-loading the
// remainder, so every run distributes identically.
func (c *config) opsFor(i int) int {
	ops := c.n / c.T
	if i < c.n%c.T {
		ops++
	}
	return ops
}

// benchFileName names file i in the shared benchmark namespace.
func benchFileName(i int) string { return fmt.Sprintf("bench%05d", i) }

// setupFiles makes sure the benchmark population exists on the server
// (lookup, create + truncate on miss) and returns the file handles.
func setupFiles(addr string, cfg *config) ([]nfs.FH, error) {
	admin, err := client.DialNFS(addr, uint32(cfg.version), 0, 0)
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	root := nfs.MakeFH(cfg.rootIno)
	fhs := make([]nfs.FH, cfg.files)
	for i := range fhs {
		name := benchFileName(i)
		fh, status, err := admin.NetLookup(root, name)
		if err != nil {
			return nil, err
		}
		switch status {
		case nfs.OK:
			fhs[i] = fh
			continue
		case nfs.ErrNoEnt:
		default:
			return nil, fmt.Errorf("lookup %s: status %d", name, status)
		}
		fh, status, err = admin.NetCreate(root, name)
		if err != nil {
			return nil, err
		}
		if status != nfs.OK {
			return nil, fmt.Errorf("create %s: status %d", name, status)
		}
		if status, err := admin.NetTruncate(fh, cfg.filesize); err != nil {
			return nil, err
		} else if status != nfs.OK {
			return nil, fmt.Errorf("truncate %s: status %d", name, status)
		}
		fhs[i] = fh
	}
	return fhs, nil
}

// runner is one client's benchmark state.
type runner struct {
	cfg       *config
	client    *client.NetClient
	clientIdx int
	fhs       []nfs.FH
	zipfFile  *workload.Zipf
	zipfBlock *workload.Zipf
	collector *stats.Collector
	completed *atomic.Int64
	counts    map[string]int64
}

// rng builds the deterministic generator for one draw stream of this
// client. Different salts give workers independent streams.
func (r *runner) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(r.cfg.seed + int64(r.clientIdx)*1000003 + salt*7919))
}

// draw decides the next operation from the mix and the Zipfian
// popularity distributions.
func (r *runner) draw(rng *rand.Rand) op {
	var o op
	mix := rng.Intn(100)
	switch {
	case mix < r.cfg.readPct:
		o.kind = kindRead
	case mix < r.cfg.readPct+r.cfg.writePct:
		o.kind = kindWrite
	default:
		// Metadata: the paper's traffic is dominated by attribute and
		// name operations; cycle over the three big ones.
		o.kind = kindGetattr + rng.Intn(3)
	}
	o.file = r.zipfFile.Rank(rng.Float64())
	if o.kind == kindRead || o.kind == kindWrite {
		o.off = uint64(r.zipfBlock.Rank(rng.Float64())) * r.cfg.xfer
	}
	return o
}

// execute performs one operation on the wire and returns the NFS
// status.
func (r *runner) execute(o op) (uint32, error) {
	fh := r.fhs[o.file]
	switch o.kind {
	case kindRead:
		return r.client.NetRead(fh, o.off, uint32(r.cfg.xfer))
	case kindWrite:
		return r.client.NetWrite(fh, o.off, uint32(r.cfg.xfer))
	case kindGetattr:
		return r.client.NetGetattr(fh)
	case kindLookup:
		_, status, err := r.client.NetLookup(nfs.MakeFH(r.cfg.rootIno), benchFileName(o.file))
		return status, err
	default:
		return r.client.NetAccess(fh)
	}
}

// measure runs one operation, charging latency from issueAt (wall time
// for closed loop, intended arrival for open loop).
func (r *runner) measure(shard *stats.LatencyShard, o op, issueAt time.Time) {
	class := kindClass[o.kind]
	status, err := r.execute(o)
	if err != nil || status != nfs.OK {
		shard.RecordError(class)
	} else {
		shard.Record(class, time.Since(issueAt).Seconds())
	}
	r.completed.Add(1)
}

// closedLoop keeps cfg.outstanding operations in flight by running that
// many synchronous workers over the shared connection. Each worker owns
// a deterministic draw stream and a collector shard.
func (r *runner) closedLoop() error {
	total := r.cfg.opsFor(r.clientIdx)
	workers := r.cfg.outstanding
	var wg sync.WaitGroup
	countsMu := sync.Mutex{}
	for w := 0; w < workers; w++ {
		ops := total / workers
		if w < total%workers {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := r.rng(int64(w))
			shard := r.collector.Shard()
			local := make(map[string]int64, numKinds)
			for i := 0; i < ops; i++ {
				o := r.draw(rng)
				local[kindName[o.kind]]++
				r.measure(shard, o, time.Now())
			}
			countsMu.Lock()
			for k, v := range local {
				r.counts[k] += v
			}
			countsMu.Unlock()
		}(w, ops)
	}
	wg.Wait()
	return nil
}

// openLoop issues operations on a Poisson arrival schedule at
// rate/T ops/sec, without waiting for completions (bounded by
// -maxinflight). Latency is measured from the intended arrival time.
func (r *runner) openLoop() error {
	total := r.cfg.opsFor(r.clientIdx)
	perClientRate := r.cfg.rate / float64(r.cfg.T)
	if perClientRate <= 0 {
		return fmt.Errorf("open loop needs a positive -rate")
	}
	rng := r.rng(0)
	shard := r.collector.Shard()
	sem := make(chan struct{}, r.cfg.maxInflight)
	start := time.Now()
	next := 0.0
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		// Draw before sleeping: the op stream stays a pure function of
		// the seed no matter how the schedule slips.
		o := r.draw(rng)
		r.counts[kindName[o.kind]]++
		next += rng.ExpFloat64() / perClientRate
		arrival := start.Add(time.Duration(next * float64(time.Second)))
		time.Sleep(time.Until(arrival))
		sem <- struct{}{}
		wg.Add(1)
		go func(o op, arrival time.Time) {
			defer wg.Done()
			r.measure(shard, o, arrival)
			<-sem
		}(o, arrival)
	}
	wg.Wait()
	return nil
}

// livePrinter reports interval and cumulative throughput, SDPaxos
// readings-channel style, until told to stop.
func livePrinter(w io.Writer, interval time.Duration, completed *atomic.Int64, start time.Time, done <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := int64(0)
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			cur := completed.Load()
			elapsed := time.Since(start).Seconds()
			fmt.Fprintf(w, "%7.1fs %10d ops %9.0f ops/s interval %9.0f ops/s cumulative\n",
				elapsed, cur,
				float64(cur-prev)/interval.Seconds(),
				float64(cur)/elapsed)
			prev = cur
		}
	}
}

// Report is the machine-readable result. With a fixed seed, TotalOps
// and OpCounts are bit-reproducible across runs; timing fields are not.
type Report struct {
	Config              ReportConfig           `json:"config"`
	ElapsedSec          float64                `json:"elapsed_sec"`
	TotalOps            int64                  `json:"total_ops"`
	Errors              int64                  `json:"errors"`
	ThroughputOpsPerSec float64                `json:"throughput_ops_per_sec"`
	OpCounts            map[string]int64       `json:"op_counts"`
	Classes             map[string]ClassReport `json:"classes"`
}

// ReportConfig echoes the run parameters into the report.
type ReportConfig struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Clients     int     `json:"clients"`
	Outstanding int     `json:"outstanding"`
	RateOpsSec  float64 `json:"rate_ops_per_sec,omitempty"`
	Ops         int     `json:"ops"`
	Files       int     `json:"files"`
	FileSize    uint64  `json:"filesize"`
	Xfer        uint64  `json:"xfer"`
	ReadPct     int     `json:"read_pct"`
	WritePct    int     `json:"write_pct"`
	ZipfS       float64 `json:"zipf_s"`
	ZipfV       float64 `json:"zipf_v"`
	Version     int     `json:"nfs_version"`
	Seed        int64   `json:"seed"`
}

// ClassReport carries one operation class's latency summary and CDF.
type ClassReport struct {
	Ops    int64      `json:"ops"`
	Errors int64      `json:"errors"`
	MeanUs float64    `json:"mean_us"`
	MinUs  float64    `json:"min_us"`
	MaxUs  float64    `json:"max_us"`
	P50Us  float64    `json:"p50_us"`
	P90Us  float64    `json:"p90_us"`
	P99Us  float64    `json:"p99_us"`
	P999Us float64    `json:"p999_us"`
	CDF    []CDFPoint `json:"cdf"`
}

// CDFPoint is one step of the latency CDF: Fraction of this class's
// operations completed in at most LeUs microseconds.
type CDFPoint struct {
	LeUs     float64 `json:"le_us"`
	Count    int64   `json:"count"`
	Fraction float64 `json:"fraction"`
}

const usec = 1e6

func classReport(h *stats.LatencyHist, errs int64) ClassReport {
	rep := ClassReport{
		Ops:    h.Count(),
		Errors: errs,
		MeanUs: h.Mean() * usec,
		MinUs:  h.Min() * usec,
		MaxUs:  h.Max() * usec,
		P50Us:  h.Percentile(50) * usec,
		P90Us:  h.Percentile(90) * usec,
		P99Us:  h.Percentile(99) * usec,
		P999Us: h.Percentile(99.9) * usec,
	}
	for _, p := range h.CDF() {
		rep.CDF = append(rep.CDF, CDFPoint{LeUs: p.Upper * usec, Count: p.Count, Fraction: p.Cum})
	}
	return rep
}

func buildReport(cfg *config, elapsed time.Duration, col *stats.Collector, clientCounts []map[string]int64) *Report {
	mode := "closed"
	if cfg.rate > 0 {
		mode = "open"
	}
	total := col.Total()
	rep := &Report{
		Config: ReportConfig{
			Mode: mode, Clients: cfg.T, Outstanding: cfg.outstanding,
			RateOpsSec: cfg.rate, Ops: cfg.n, Files: cfg.files,
			FileSize: cfg.filesize, Xfer: cfg.xfer,
			ReadPct: cfg.readPct, WritePct: cfg.writePct,
			ZipfS: cfg.zipfS, ZipfV: cfg.zipfV,
			Version: cfg.version, Seed: cfg.seed,
		},
		ElapsedSec:          elapsed.Seconds(),
		TotalOps:            int64(cfg.n),
		Errors:              col.TotalErrors(),
		ThroughputOpsPerSec: float64(total.Count()) / elapsed.Seconds(),
		OpCounts:            make(map[string]int64),
		Classes: map[string]ClassReport{
			"read":  classReport(col.Class(stats.OpRead), col.Errors(stats.OpRead)),
			"write": classReport(col.Class(stats.OpWrite), col.Errors(stats.OpWrite)),
			"meta":  classReport(col.Class(stats.OpMeta), col.Errors(stats.OpMeta)),
			"all":   classReport(total, col.TotalErrors()),
		},
	}
	for _, counts := range clientCounts {
		for k, v := range counts {
			rep.OpCounts[k] += v
		}
	}
	return rep
}
