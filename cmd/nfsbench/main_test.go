package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// benchRun invokes run() with a tiny deterministic workload and parses
// the JSON report.
func benchRun(t *testing.T, extra ...string) *Report {
	t.Helper()
	args := append([]string{
		"-seed", "1", "-n", "200", "-T", "2", "-c", "2",
		"-files", "8", "-filesize", "4096", "-xfer", "512",
		"-interval", "0",
	}, extra...)
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	var rep Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, stdout.String())
	}
	return &rep
}

// TestBenchDeterministicOpCounts runs the harness twice with the same
// seed and asserts the op mix is bit-reproducible.
func TestBenchDeterministicOpCounts(t *testing.T) {
	a := benchRun(t)
	b := benchRun(t)
	if a.TotalOps != 200 || b.TotalOps != 200 {
		t.Fatalf("total_ops %d/%d, want 200", a.TotalOps, b.TotalOps)
	}
	if !reflect.DeepEqual(a.OpCounts, b.OpCounts) {
		t.Fatalf("op counts differ across same-seed runs:\n%v\n%v", a.OpCounts, b.OpCounts)
	}
	for _, class := range []string{"read", "write", "meta", "all"} {
		if a.Classes[class].Ops != b.Classes[class].Ops {
			t.Errorf("class %s: ops %d vs %d across same-seed runs",
				class, a.Classes[class].Ops, b.Classes[class].Ops)
		}
	}
	// A different seed must shuffle the mix.
	c := benchRun(t, "-seed", "2")
	if reflect.DeepEqual(a.OpCounts, c.OpCounts) {
		t.Error("op counts identical across different seeds")
	}
}

// TestBenchReportShape sanity-checks the report invariants: counts add
// up, no errors against the in-process server, percentiles are ordered,
// and the CDF ends at 1.
func TestBenchReportShape(t *testing.T) {
	rep := benchRun(t)
	if rep.Errors != 0 {
		t.Fatalf("%d errors against in-process server", rep.Errors)
	}
	var sum int64
	for _, v := range rep.OpCounts {
		sum += v
	}
	if sum != rep.TotalOps {
		t.Fatalf("op_counts sum %d, want total_ops %d", sum, rep.TotalOps)
	}
	all := rep.Classes["all"]
	if all.Ops != rep.TotalOps {
		t.Fatalf("all.ops %d, want %d", all.Ops, rep.TotalOps)
	}
	if rep.Classes["read"].Ops+rep.Classes["write"].Ops+rep.Classes["meta"].Ops != all.Ops {
		t.Fatal("per-class ops do not sum to the total")
	}
	if !(all.P50Us <= all.P90Us && all.P90Us <= all.P99Us && all.P99Us <= all.P999Us) {
		t.Fatalf("percentiles out of order: %v %v %v %v", all.P50Us, all.P90Us, all.P99Us, all.P999Us)
	}
	if all.MinUs <= 0 || all.MaxUs < all.P999Us {
		t.Fatalf("min/max inconsistent: min %v max %v p999 %v", all.MinUs, all.MaxUs, all.P999Us)
	}
	if len(all.CDF) == 0 || all.CDF[len(all.CDF)-1].Fraction != 1 {
		t.Fatal("CDF missing or does not end at 1")
	}
	if rep.ThroughputOpsPerSec <= 0 || rep.ElapsedSec <= 0 {
		t.Fatal("throughput/elapsed not positive")
	}
	if rep.Config.Mode != "closed" || rep.Config.Seed != 1 {
		t.Fatalf("config echo wrong: %+v", rep.Config)
	}
}

// TestBenchOpenLoop exercises the Poisson arrival path end to end with
// a rate high enough to finish quickly.
func TestBenchOpenLoop(t *testing.T) {
	a := benchRun(t, "-rate", "50000", "-n", "150")
	b := benchRun(t, "-rate", "50000", "-n", "150")
	if a.Config.Mode != "open" {
		t.Fatalf("mode %q, want open", a.Config.Mode)
	}
	if a.TotalOps != 150 || a.Errors != 0 {
		t.Fatalf("total_ops %d errors %d", a.TotalOps, a.Errors)
	}
	if !reflect.DeepEqual(a.OpCounts, b.OpCounts) {
		t.Fatalf("open-loop op counts differ across same-seed runs:\n%v\n%v", a.OpCounts, b.OpCounts)
	}
}

// TestBenchBadFlags covers flag validation.
func TestBenchBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-T", "0"},
		{"-read", "80", "-write", "30"},
		{"-version", "4"},
		{"-xfer", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}
