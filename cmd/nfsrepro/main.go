// nfsrepro regenerates every table and figure of "Passive NFS Tracing
// of Email and Research Workloads" (FAST 2003) from freshly simulated
// CAMPUS and EECS traces, printing each alongside the paper's published
// values.
//
// Usage:
//
//	nfsrepro                         # everything, default scale
//	nfsrepro -table 3                # one table
//	nfsrepro -figure 5               # one figure
//	nfsrepro -exp readahead          # one side experiment
//	nfsrepro -users 25 -clients 8    # bigger simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	users := flag.Int("users", 12, "CAMPUS user count")
	clients := flag.Int("clients", 4, "EECS workstation count")
	days := flag.Float64("days", 7, "trace window in days")
	seed := flag.Int64("seed", 20011021, "random seed")
	table := flag.Int("table", 0, "regenerate only this table (1-5)")
	figure := flag.Int("figure", 0, "regenerate only this figure (1-5)")
	exp := flag.String("exp", "", "side experiment: nfsiod, names, readahead, loss, hierarchy, nvram, quiet")
	procs := flag.Bool("procs", false, "also print procedure mixes")
	flag.Parse()

	scale := repro.Scale{CampusUsers: *users, EECSClients: *clients, Days: *days, Seed: *seed}

	// Experiments that do not need the full traces run immediately.
	switch *exp {
	case "nfsiod":
		fmt.Print(repro.ExpNfsiod())
		return
	case "readahead":
		fmt.Print(repro.ExpReadahead())
		return
	case "loss":
		small := scale
		if small.Days > 1 {
			small.Days = 1
		}
		fmt.Print(repro.ExpLoss(small))
		return
	}

	fmt.Fprintf(os.Stderr, "nfsrepro: generating CAMPUS (%d users) and EECS (%d clients), %.1f days...\n",
		*users, *clients, *days)
	start := time.Now()
	campus := repro.GenerateCampus(scale)
	eecs := repro.GenerateEECS(scale)
	fmt.Fprintf(os.Stderr, "nfsrepro: %d + %d ops in %v\n",
		len(campus.Ops), len(eecs.Ops), time.Since(start).Round(time.Millisecond))

	switch *exp {
	case "names":
		fmt.Print(repro.ExpNames(campus))
		return
	case "nvram":
		fmt.Print(repro.ExpNVRAM(campus, eecs))
		return
	case "quiet":
		fmt.Print(repro.ExpQuiet(campus, eecs))
		return
	case "hierarchy":
		fmt.Print(repro.ExpHierarchy(campus))
		return
	case "":
	default:
		fmt.Fprintf(os.Stderr, "nfsrepro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	tables := []func(*repro.Trace, *repro.Trace) string{
		repro.Table1, repro.Table2, repro.Table3, repro.Table4, repro.Table5,
	}
	figures := []func(*repro.Trace, *repro.Trace) string{
		repro.Figure1, repro.Figure2, repro.Figure3, repro.Figure4, repro.Figure5,
	}

	if *table != 0 {
		if *table < 1 || *table > 5 {
			fmt.Fprintln(os.Stderr, "nfsrepro: -table must be 1-5")
			os.Exit(2)
		}
		fmt.Print(tables[*table-1](campus, eecs))
		return
	}
	if *figure != 0 {
		if *figure < 1 || *figure > 5 {
			fmt.Fprintln(os.Stderr, "nfsrepro: -figure must be 1-5")
			os.Exit(2)
		}
		fmt.Print(figures[*figure-1](campus, eecs))
		return
	}

	if *procs {
		fmt.Println(repro.TopProcs(campus))
		fmt.Println(repro.TopProcs(eecs))
	}
	for _, fn := range tables {
		fmt.Println(fn(campus, eecs))
	}
	for _, fn := range figures {
		fmt.Println(fn(campus, eecs))
	}
	fmt.Println(repro.ExpNfsiod())
	fmt.Println(repro.ExpNames(campus))
	fmt.Println(repro.ExpReadahead())
	fmt.Println(repro.ExpHierarchy(campus))
	fmt.Println(repro.ExpNVRAM(campus, eecs))
	fmt.Println(repro.ExpQuiet(campus, eecs))
}
