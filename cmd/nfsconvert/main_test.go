package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
)

func convertTrace(t *testing.T, dir string) string {
	t.Helper()
	scale := repro.SmallScale()
	scale.Days = 0.25
	records := repro.GenerateCampusRecords(scale)
	if len(records) == 0 {
		t.Fatal("generator produced no records")
	}
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "campus.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readRecords(t *testing.T, path string) []*core.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := core.DetectSource(f)
	if err != nil {
		t.Fatal(err)
	}
	var records []*core.Record
	for {
		rec, err := src.Next()
		if err != nil {
			return records
		}
		records = append(records, rec)
	}
}

// TestConvertRoundTrip drives text → binary → text and checks the
// second text→binary→text pass is byte-stable (the first pass rounds
// times to the µs grid the binary format stores).
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	text := convertTrace(t, dir)
	bin1 := filepath.Join(dir, "pass1.btrace")
	text1 := filepath.Join(dir, "pass1.trace")
	bin2 := filepath.Join(dir, "pass2.btrace")
	text2 := filepath.Join(dir, "pass2.trace")

	steps := [][]string{
		{"-binary", "-decoders", "2", "-o", bin1, text},
		{"-decoders", "2", "-o", text1, bin1},
		{"-binary", "-o", bin2, text1},
		{"-o", text2, bin2},
	}
	for _, args := range steps {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("%v: %v (stderr: %s)", args, err, errb.String())
		}
		if !strings.Contains(errb.String(), "merged 1 inputs") {
			t.Fatalf("%v: missing summary: %s", args, errb.String())
		}
	}

	want := readRecords(t, text)
	got := readRecords(t, text1)
	if len(got) != len(want) {
		t.Fatalf("round trip kept %d of %d records", len(got), len(want))
	}
	a, err := os.ReadFile(text1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(text2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("µs-aligned text round trip is not byte-stable")
	}
}

// TestConvertMergesGzipSet splits the trace, gzips one half, and
// merges both back; the result must equal the original stream after
// one canonicalizing pass.
func TestConvertMergesGzipSet(t *testing.T) {
	dir := t.TempDir()
	text := convertTrace(t, dir)
	data, err := os.ReadFile(text)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := len(lines) / 2
	partA := filepath.Join(dir, "set-day1.trace")
	if err := os.WriteFile(partA, bytes.Join(lines[:mid], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(bytes.Join(lines[mid:], nil))
	zw.Close()
	partB := filepath.Join(dir, "set-day2.trace.gz")
	if err := os.WriteFile(partB, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.trace")
	var out, errb bytes.Buffer
	if err := run([]string{"-o", merged, filepath.Join(dir, "set-day*")}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(errb.String(), "merged 2 inputs") {
		t.Fatalf("summary: %s", errb.String())
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("merged trace set differs from the original stream")
	}
}

func TestConvertErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{}, &out, &errb); err == nil {
		t.Fatal("no inputs accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.trace")}, &out, &errb); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errb); err == nil {
		t.Fatal("bad flag accepted")
	}
	errb.Reset()
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errb.String(), "-decoders") {
		t.Fatalf("-h usage missing flags: %s", errb.String())
	}
}
