// nfsconvert converts and merges trace files. Inputs may be in the text
// or binary format (auto-detected) and are k-way merged by timestamp —
// the CAMPUS deployment captured one trace per virtual disk array, and
// cross-array analyses need them interleaved.
//
// Usage:
//
//	nfsconvert -o merged.trace array1.trace array2.trace ...
//	nfsconvert -binary -o week.btrace week.trace      # text -> binary
//	nfsconvert -o week.trace week.btrace              # binary -> text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	asBinary := flag.Bool("binary", false, "write the compact binary format")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "nfsconvert: no input files")
		os.Exit(2)
	}

	var sources []core.RecordSource
	var files []*os.File
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, f)
		src, err := core.DetectSource(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		sources = append(sources, src)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	tw := core.NewFormatWriter(w, *asBinary)

	merger := core.NewMerger(sources...)
	var n int64
	for {
		rec, err := merger.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := tw.Write(rec); err != nil {
			fatal(err)
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nfsconvert: merged %d inputs into %d records\n", flag.NArg(), n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfsconvert:", err)
	os.Exit(1)
}
