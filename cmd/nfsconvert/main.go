// nfsconvert converts and merges trace files. Inputs may be files,
// glob patterns, or directories; each file may be in the text or
// binary format (auto-detected, gzip-transparent) and is decoded by a
// pool of -decoders goroutines. All inputs are k-way merged by
// timestamp — the CAMPUS deployment captured one trace per virtual
// disk array, and cross-array analyses need them interleaved.
//
// Usage:
//
//	nfsconvert -o merged.trace array1.trace array2.trace ...
//	nfsconvert -o week.trace 'arrays/*.btrace.gz'
//	nfsconvert -binary -o week.btrace week.trace      # text -> binary
//	nfsconvert -o week.trace week.btrace              # binary -> text
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errUsage {
			fmt.Fprintln(os.Stderr, "nfsconvert:", err)
		}
		os.Exit(1)
	}
}

// errUsage signals a flag-parse failure the FlagSet already reported
// to stderr, so main exits nonzero without printing it again.
var errUsage = errors.New("usage")

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsconvert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	asBinary := fs.Bool("binary", false, "write the compact binary format")
	decoders := fs.Int("decoders", 0, "parallel decode goroutines per input file (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errUsage
	}
	if fs.NArg() == 0 {
		return errors.New("no input files")
	}

	paths, err := pipeline.ExpandInputs(fs.Args())
	if err != nil {
		return err
	}
	set, err := pipeline.OpenTraceSet(paths, core.IngestConfig{Decoders: *decoders})
	if err != nil {
		return err
	}
	defer set.Close()

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tw := core.NewFormatWriter(w, *asBinary)

	var n int64
	for {
		rec, err := set.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := tw.Write(rec); err != nil {
			return err
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, st := range set.Stats() {
		fmt.Fprintf(stderr, "nfsconvert: %s: %d records\n", st.Path, st.Records)
	}
	fmt.Fprintf(stderr, "nfsconvert: merged %d inputs into %d records\n", len(paths), n)
	return nil
}
