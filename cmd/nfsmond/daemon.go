package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/window"
	"repro/internal/workload"
)

// daemon owns the live engine and everything the endpoints read. The
// pipeline's Live is single-feeder by contract, so every touch of the
// joiner, engine, or ring happens under mu: the ingest loop holds it
// per record, a report handler holds it only long enough to Fork —
// ingest stalls for the copy, never for the rendering.
type daemon struct {
	mu   sync.Mutex
	j    *pipeline.Joiner
	lv   *pipeline.Live
	ring *window.Ring

	slide  int
	rebase bool
	base   float64
	seenT  bool

	records int64
	procs   [256]int64
	drained bool

	started    time.Time
	lastScrape time.Time
	lastOps    int64

	opsBuf []*core.Op
}

func newDaemon(cfg pipeline.Config, width float64, keep, slide int, rebase bool, analyzers []pipeline.Analyzer) *daemon {
	return &daemon{
		j:       pipeline.NewPushJoiner(),
		lv:      pipeline.NewLive(cfg, analyzers...),
		ring:    window.NewRing(width, keep),
		slide:   slide,
		rebase:  rebase,
		started: time.Now(),
	}
}

// ingestLoop pulls records until the source ends (EOF on a static file
// or stdin, Stop on a tail), then drains the joiner so the served
// state reflects every record read.
func (d *daemon) ingestLoop(src core.RecordSource) error {
	for {
		rec, err := src.Next()
		if err == io.EOF {
			d.mu.Lock()
			d.drain()
			d.mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		d.ingest(rec)
	}
}

func (d *daemon) ingest(rec *core.Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rebase {
		if !d.seenT {
			d.base = rec.Time
			d.seenT = true
		}
		rec.Time -= d.base
	}
	d.records++
	d.opsBuf = d.j.Push(rec, d.opsBuf[:0])
	for _, op := range d.opsBuf {
		d.feed(op)
	}
}

func (d *daemon) feed(op *core.Op) {
	d.lv.Feed(op)
	d.ring.Add(op)
	d.procs[op.Proc]++
}

// drain flushes the joiner's held state into the engine; the caller
// holds mu.
func (d *daemon) drain() {
	if d.drained {
		return
	}
	for _, op := range d.j.Drain(nil) {
		d.feed(op)
	}
	d.drained = true
}

// joinStats reports the join statistics as if the stream ended now.
func (d *daemon) joinStats() core.JoinStats {
	if d.drained {
		return d.j.Stats()
	}
	return d.j.StatsIfDrained()
}

// report takes a barrier-consistent snapshot and finishes it as if the
// stream had ended at this instant: the fork is fed the joiner's
// pending operations (non-destructively), so its results match a batch
// run over every record ingested so far. Only the Fork and the pending
// copy happen under mu.
func (d *daemon) report() (*pipeline.Snapshot, core.JoinStats, pipeline.Stats, error) {
	d.mu.Lock()
	snap, err := d.lv.Fork()
	if err != nil {
		d.mu.Unlock()
		return nil, core.JoinStats{}, pipeline.Stats{}, err
	}
	var pend []*core.Op
	if !d.drained {
		pend = d.j.PendingOps()
	}
	join := d.joinStats()
	d.mu.Unlock()

	for _, op := range pend {
		snap.Feed(op)
	}
	stats := snap.Finish()
	return snap, join, stats, nil
}

// finalize drains any remaining joiner state and prints the closing
// summary, mirroring nfsanalyze's batch output.
func (d *daemon) finalize(w io.Writer) {
	d.mu.Lock()
	d.drain()
	d.mu.Unlock()
	snap, join, stats, err := d.report()
	if err != nil {
		fmt.Fprintf(w, "nfsmond: final report: %v\n", err)
		return
	}
	if sum := findSummary(snap); sum != nil {
		sum.Result.Days = daysOf(stats)
		fmt.Fprintln(w, sum.Result)
	}
	fmt.Fprintf(w, "join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
		join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
}

func findSummary(snap *pipeline.Snapshot) *pipeline.SummaryAnalyzer {
	for _, a := range snap.Analyzers {
		if s, ok := a.(*pipeline.SummaryAnalyzer); ok {
			return s
		}
	}
	return nil
}

func daysOf(stats pipeline.Stats) float64 {
	days := stats.Span() / workload.Day
	if days <= 0 {
		days = 1.0 / 24
	}
	return days
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", d.serveMetrics)
	mux.HandleFunc("/api/summary", d.serveSummary)
	mux.HandleFunc("/api/windows", d.serveWindows)
	mux.HandleFunc("/api/sliding", d.serveSliding)
	mux.HandleFunc("/api/analyses", d.serveAnalyses)
	return mux
}

// serveMetrics renders the Prometheus-style text exposition. All
// counters are monotonic over the daemon's life; the lag gauge is
// bounded by the window width as long as the ring rolls correctly.
func (d *daemon) serveMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	stats := d.lv.Stats()
	// Raw joiner stats, not the drained view: counters must stay
	// monotonic, and a pending call counted as unmatched would un-count
	// itself when its reply lands. Pending is its own gauge.
	join := d.j.Stats()
	pending, held := d.j.Pending(), d.j.Held()
	lag, late := d.ring.Lag(), d.ring.Late()
	curStart := d.ring.CurrentStart()
	records := d.records
	procs := d.procs
	now := time.Now()
	// Ingest rate over the scrape interval (whole uptime on the first
	// scrape) — a gauge alongside the raw counters.
	var rate float64
	since := d.started
	base := int64(0)
	if !d.lastScrape.IsZero() {
		since, base = d.lastScrape, d.lastOps
	}
	if dt := now.Sub(since).Seconds(); dt > 0 {
		rate = float64(stats.Ops-base) / dt
	}
	d.lastScrape, d.lastOps = now, stats.Ops
	uptime := now.Sub(d.started).Seconds()
	d.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintln(w, "# HELP nfsmond_records_total Trace records ingested.")
	fmt.Fprintln(w, "# TYPE nfsmond_records_total counter")
	fmt.Fprintf(w, "nfsmond_records_total %d\n", records)
	fmt.Fprintln(w, "# HELP nfsmond_ops_total Joined operations fed to the analyzers, by procedure.")
	fmt.Fprintln(w, "# TYPE nfsmond_ops_total counter")
	fmt.Fprintf(w, "nfsmond_ops_total %d\n", stats.Ops)
	var ids []int
	for id, n := range procs {
		if n != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		return core.ProcID(ids[a]).String() < core.ProcID(ids[b]).String()
	})
	fmt.Fprintln(w, "# HELP nfsmond_proc_ops_total Joined operations by procedure.")
	fmt.Fprintln(w, "# TYPE nfsmond_proc_ops_total counter")
	for _, id := range ids {
		fmt.Fprintf(w, "nfsmond_proc_ops_total{proc=%q} %d\n", core.ProcID(id).String(), procs[id])
	}
	fmt.Fprintln(w, "# HELP nfsmond_join_calls_total RPC calls seen by the joiner.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_calls_total counter")
	fmt.Fprintf(w, "nfsmond_join_calls_total %d\n", join.Calls)
	fmt.Fprintln(w, "# HELP nfsmond_join_replies_total RPC replies seen by the joiner.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_replies_total counter")
	fmt.Fprintf(w, "nfsmond_join_replies_total %d\n", join.Replies)
	fmt.Fprintln(w, "# HELP nfsmond_join_matched_total Call/reply pairs matched.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_matched_total counter")
	fmt.Fprintf(w, "nfsmond_join_matched_total %d\n", join.Matched)
	fmt.Fprintln(w, "# HELP nfsmond_join_unmatched_calls_total Calls expired or drained without replies.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_unmatched_calls_total counter")
	fmt.Fprintf(w, "nfsmond_join_unmatched_calls_total %d\n", join.UnmatchedCalls)
	fmt.Fprintln(w, "# HELP nfsmond_join_orphan_replies_total Replies without calls.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_orphan_replies_total counter")
	fmt.Fprintf(w, "nfsmond_join_orphan_replies_total %d\n", join.OrphanReplies)
	fmt.Fprintln(w, "# HELP nfsmond_join_pending Calls currently awaiting replies.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_pending gauge")
	fmt.Fprintf(w, "nfsmond_join_pending %d\n", pending)
	fmt.Fprintln(w, "# HELP nfsmond_join_held Completed operations held for reordering.")
	fmt.Fprintln(w, "# TYPE nfsmond_join_held gauge")
	fmt.Fprintf(w, "nfsmond_join_held %d\n", held)
	fmt.Fprintln(w, "# HELP nfsmond_window_lag_seconds Stream progress into the current window; bounded by the width.")
	fmt.Fprintln(w, "# TYPE nfsmond_window_lag_seconds gauge")
	fmt.Fprintf(w, "nfsmond_window_lag_seconds %g\n", lag)
	fmt.Fprintln(w, "# HELP nfsmond_window_current_start_seconds Start time of the newest window, in trace seconds.")
	fmt.Fprintln(w, "# TYPE nfsmond_window_current_start_seconds gauge")
	fmt.Fprintf(w, "nfsmond_window_current_start_seconds %g\n", curStart)
	fmt.Fprintln(w, "# HELP nfsmond_window_late_total Operations dropped for arriving past the retained horizon.")
	fmt.Fprintln(w, "# TYPE nfsmond_window_late_total counter")
	fmt.Fprintf(w, "nfsmond_window_late_total %d\n", late)
	fmt.Fprintln(w, "# HELP nfsmond_ingest_ops_per_second Joined-op throughput over the last scrape interval.")
	fmt.Fprintln(w, "# TYPE nfsmond_ingest_ops_per_second gauge")
	fmt.Fprintf(w, "nfsmond_ingest_ops_per_second %g\n", rate)
	fmt.Fprintln(w, "# HELP nfsmond_uptime_seconds Daemon uptime.")
	fmt.Fprintln(w, "# TYPE nfsmond_uptime_seconds gauge")
	fmt.Fprintf(w, "nfsmond_uptime_seconds %g\n", uptime)
}

// summaryJSON flattens a Summary for the wire.
func summaryJSON(s *analysis.Summary) map[string]any {
	return map[string]any{
		"total_ops":     s.TotalOps,
		"read_ops":      s.ReadOps,
		"write_ops":     s.WriteOps,
		"metadata_ops":  s.MetadataOps,
		"bytes_read":    s.BytesRead,
		"bytes_written": s.BytesWritten,
		"rw_byte_ratio": s.ReadWriteByteRatio(),
		"rw_op_ratio":   s.ReadWriteOpRatio(),
		"metadata_frac": s.MetadataFraction(),
		"proc_counts":   s.ProcCounts.ByName(),
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (d *daemon) serveSummary(w http.ResponseWriter, r *http.Request) {
	snap, join, stats, err := d.report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sum := findSummary(snap)
	sum.Result.Days = daysOf(stats)
	writeJSON(w, map[string]any{
		"ops":          stats.Ops,
		"span_seconds": stats.Span(),
		"days":         sum.Result.Days,
		"summary":      summaryJSON(sum.Result),
		"join": map[string]any{
			"calls":           join.Calls,
			"replies":         join.Replies,
			"matched":         join.Matched,
			"unmatched_calls": join.UnmatchedCalls,
			"orphan_replies":  join.OrphanReplies,
			"loss_estimate":   join.LossEstimate(),
		},
	})
}

func (d *daemon) serveWindows(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	cells := d.ring.Cells()
	width := d.ring.Width()
	lag := d.ring.Lag()
	late := d.ring.Late()
	d.mu.Unlock()

	rows := make([]map[string]any, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, map[string]any{
			"start":         c.Start,
			"ops":           c.Ops,
			"read_ops":      c.Sum.ReadOps,
			"write_ops":     c.Sum.WriteOps,
			"bytes_read":    c.Sum.BytesRead,
			"bytes_written": c.Sum.BytesWritten,
			"metadata_frac": c.Sum.MetadataFraction(),
		})
	}
	writeJSON(w, map[string]any{
		"width_seconds": width,
		"lag_seconds":   lag,
		"late_dropped":  late,
		"windows":       rows,
	})
}

func (d *daemon) serveSliding(w http.ResponseWriter, r *http.Request) {
	k := d.slide
	if s := r.URL.Query().Get("k"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	d.mu.Lock()
	sum := d.ring.Sliding(k)
	width := d.ring.Width()
	d.mu.Unlock()
	writeJSON(w, map[string]any{
		"windows":       k,
		"width_seconds": width,
		"summary":       summaryJSON(sum),
	})
}

// serveAnalyses renders every registered analyzer's table from one
// consistent snapshot — the paper's tables as JSON, mid-stream.
func (d *daemon) serveAnalyses(w http.ResponseWriter, r *http.Request) {
	snap, join, stats, err := d.report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := map[string]any{
		"ops":          stats.Ops,
		"span_seconds": stats.Span(),
		"join_loss":    join.LossEstimate(),
	}
	for _, a := range snap.Analyzers {
		switch a := a.(type) {
		case *pipeline.SummaryAnalyzer:
			a.Result.Days = daysOf(stats)
			out["summary"] = summaryJSON(a.Result)
		case *pipeline.HierarchyAnalyzer:
			out["hierarchy"] = map[string]any{"coverage": a.Coverage}
		case *pipeline.RunsAnalyzer:
			tab := a.Table()
			out["runs"] = map[string]any{
				"total_runs":  tab.TotalRuns,
				"read_pct":    tab.ReadPct,
				"write_pct":   tab.WritePct,
				"read_write":  tab.ReadWritePct,
				"read_split":  tab.Read,
				"write_split": tab.Write,
				"rw_split":    tab.ReadWrite,
			}
		case *pipeline.BlockLifeAnalyzer:
			res := a.Result
			out["blocklife"] = map[string]any{
				"births":       res.Births,
				"deaths":       res.Deaths,
				"end_surplus":  res.EndSurplusPct(),
				"lifetime_p50": res.Lifetimes.Percentile(50),
				"lifetime_p90": res.Lifetimes.Percentile(90),
			}
		case *pipeline.ReorderSweepAnalyzer:
			out["reorder"] = a.Result
		case *pipeline.PeakHourAnalyzer:
			out["peak"] = map[string]any{
				"instances": a.Result.Instances,
				"locks":     a.Result.Locks,
				"mailboxes": a.Result.Mailboxes,
			}
		case *pipeline.MailboxAnalyzer:
			frac := 0.0
			if a.TotalBytes > 0 {
				frac = float64(a.MailboxBytes) / float64(a.TotalBytes)
			}
			out["mailbox"] = map[string]any{
				"mailbox_bytes": a.MailboxBytes,
				"total_bytes":   a.TotalBytes,
				"fraction":      frac,
			}
		}
	}
	writeJSON(w, out)
}
