// nfsmond is the always-on form of nfsanalyze: a monitoring daemon
// that ingests a live NFS trace, folds it through the same sharded
// pipeline and joiner the batch tool uses, and serves the paper's
// reductions over HTTP while the stream is still flowing. Mid-stream
// consistency comes from the pipeline's snapshot support: every report
// is a barrier-consistent fork of the analyzers, finished as if the
// stream had ended at that instant, while ingest continues undisturbed.
//
// Sources:
//
//   - a growing trace file with tail semantics (-follow): the daemon
//     keeps reading as the producer appends, surviving rotation and
//     truncation — point it at the file an nfsbench -trace run (or a
//     capture sniffer) is writing;
//   - a static trace file: ingested to EOF, then served until stopped;
//   - stdin (-i -): a socket feed via any relay, e.g.
//     `nc -l 9099 | nfsmond -i -`.
//
// Endpoints:
//
//	/metrics       Prometheus-style text: per-procedure op counters,
//	               joiner match/orphan/pending, window lag, ingest rate
//	/api/summary   Table 2 reduction over the whole stream so far
//	/api/windows   per-window series from the tumbling ring
//	/api/sliding   the newest k windows merged (?k=, default -slide)
//	/api/analyses  every registered analyzer's table, one snapshot
//	/healthz       liveness
//
// Usage:
//
//	nfsmond -i live.trace -follow -listen 127.0.0.1:9911
//	nfsbench -trace live.trace -rate 500 -n 100000 &
//	curl -s 127.0.0.1:9911/metrics | grep nfsmond_window_lag
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		if err != errUsage {
			fmt.Fprintln(os.Stderr, "nfsmond:", err)
		}
		os.Exit(1)
	}
}

var errUsage = errors.New("usage")

type config struct {
	input    string
	follow   bool
	poll     time.Duration
	listen   string
	workers  int
	width    float64
	keep     int
	slide    int
	rebase   bool
	analyses string
}

// run is main's logic behind injectable streams and a stop channel, so
// the daemon is testable end to end without signals.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("nfsmond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.input, "i", "", "input trace file (\"-\" for stdin; required)")
	fs.BoolVar(&cfg.follow, "follow", false, "tail the input: keep reading as it grows, surviving rotation")
	fs.DurationVar(&cfg.poll, "poll", core.DefaultTailPoll, "tail poll interval at EOF (with -follow)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:9911", "HTTP listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "pipeline shard count (0 = one per CPU)")
	fs.Float64Var(&cfg.width, "window", 60, "tumbling window width in seconds")
	fs.IntVar(&cfg.keep, "keep", 60, "windows retained in the ring")
	fs.IntVar(&cfg.slide, "slide", 5, "default k for the sliding view")
	fs.BoolVar(&cfg.rebase, "rebase", false, "rebase record times to the first record (for wall-clock feeds into time-anchored analyses)")
	fs.StringVar(&cfg.analyses, "analyses", "summary,hierarchy",
		"comma-separated analyzers to maintain: summary, hierarchy, runs, blocklife, reorder, peak, mailbox, all (runs/reorder state grows with the stream)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errUsage
	}
	if cfg.input == "" {
		fmt.Fprintln(stderr, "nfsmond: -i is required")
		return errUsage
	}

	analyzers, err := buildAnalyzers(cfg.analyses)
	if err != nil {
		return err
	}
	d := newDaemon(pipeline.Config{Workers: cfg.workers}, cfg.width, cfg.keep, cfg.slide, cfg.rebase, analyzers)

	// Bind before ingest starts so the daemon is scrapeable from the
	// first record.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "nfsmond: serving on http://%s\n", ln.Addr())

	src, closeSrc, err := openSource(cfg)
	if err != nil {
		srv.Close()
		return err
	}

	ingestDone := make(chan error, 1)
	go func() { ingestDone <- d.ingestLoop(src) }()

	select {
	case <-stop:
		// Stop the source; the ingest loop drains what is already
		// buffered and exits.
		closeSrc()
		<-ingestDone
	case err := <-ingestDone:
		if err != nil {
			srv.Close()
			closeSrc()
			return err
		}
		// Static input fully ingested: keep serving until stopped.
		fmt.Fprintln(stderr, "nfsmond: input drained; serving final state")
		<-stop
		closeSrc()
	}

	d.finalize(stdout)
	srv.Close()
	<-httpDone
	return nil
}

// openSource opens the configured record source and returns it with a
// stopper that unblocks a pending Next.
func openSource(cfg config) (core.RecordSource, func(), error) {
	if cfg.input == "-" {
		return core.NewReader(os.Stdin), func() { os.Stdin.Close() }, nil
	}
	if cfg.follow {
		// tail -F friendliness: the producer may not have created the
		// file yet, and start order shouldn't matter. An O_APPEND
		// producer is unaffected by the touch.
		if f, err := os.OpenFile(cfg.input, os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			f.Close()
		}
		tr, err := core.NewTailReader(cfg.input, cfg.poll)
		if err != nil {
			return nil, nil, err
		}
		return tr, tr.Stop, nil
	}
	f, err := os.Open(cfg.input)
	if err != nil {
		return nil, nil, err
	}
	return core.NewReader(f), func() { f.Close() }, nil
}

// buildAnalyzers resolves the -analyses list. Summary is always first:
// the windows/summary endpoints and Days fix-up key off it.
func buildAnalyzers(list string) ([]pipeline.Analyzer, error) {
	if list == "all" {
		list = "summary,hierarchy,runs,blocklife,reorder,peak,mailbox"
	}
	picked := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name != "" {
			picked[name] = true
		}
	}
	picked["summary"] = true
	out := []pipeline.Analyzer{&pipeline.SummaryAnalyzer{}}
	delete(picked, "summary")
	for name := range picked {
		switch name {
		case "hierarchy", "runs", "blocklife", "reorder", "peak", "mailbox":
		default:
			return nil, fmt.Errorf("unknown analysis %q", name)
		}
	}
	// Deterministic registration order regardless of flag order.
	for _, name := range []string{"hierarchy", "runs", "blocklife", "reorder", "peak", "mailbox"} {
		if !picked[name] {
			continue
		}
		switch name {
		case "hierarchy":
			out = append(out, &pipeline.HierarchyAnalyzer{Warmup: 600})
		case "runs":
			out = append(out, &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
				ReorderWindow: 0.01, IdleGap: 30, JumpBlocks: 10}})
		case "blocklife":
			out = append(out, &pipeline.BlockLifeAnalyzer{Phase: workload.Day, Margin: workload.Day})
		case "reorder":
			out = append(out, &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 1, 2, 5, 10, 20, 50}})
		case "peak":
			out = append(out, &pipeline.PeakHourAnalyzer{From: 9 * workload.Hour, To: 17 * workload.Hour})
		case "mailbox":
			out = append(out, &pipeline.MailboxAnalyzer{})
		}
	}
	return out, nil
}
