package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
)

// writeBurst appends n call/reply pairs to path, xids [from, from+n).
func writeBurst(t *testing.T, path string, from, n int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWriter(f)
	for i := from; i < from+n; i++ {
		call := &core.Record{
			Time: 1000 + float64(i), Kind: core.KindCall,
			Client: 0x0a000001, Port: 1023, Proto: core.ProtoTCP,
			XID: uint32(i), Version: 3, Proc: core.MustProc("read"),
			FH: core.InternFH("feed0001"), Offset: uint64(i) * 8192, Count: 8192,
		}
		reply := &core.Record{
			Time: 1000 + float64(i) + 0.002, Kind: core.KindReply,
			Client: 0x0a000001, Port: 1023, Proto: core.ProtoTCP,
			XID: uint32(i), Version: 3, Proc: core.MustProc("read"),
			RCount: 8192, Size: 1 << 20, FileID: 42,
		}
		w.Write(call)
		w.Write(reply)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// metricValue extracts one metric's value from a Prometheus exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return v
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitServing polls stderr output for the bound address.
func waitServing(t *testing.T, stderr *syncBuffer) string {
	t.Helper()
	re := regexp.MustCompile(`serving on http://(\S+)`)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address; stderr:\n%s", stderr.String())
	return ""
}

// syncBuffer is a mutex-guarded bytes.Buffer: run's stderr is written
// from the daemon goroutine while the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func newSyncBuffer() *syncBuffer { return &syncBuffer{} }

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "live.trace")
	writeBurst(t, trace, 0, 50)

	stop := make(chan os.Signal, 1)
	var stdout bytes.Buffer
	stderr := newSyncBuffer()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-i", trace, "-follow", "-poll", "5ms",
			"-listen", "127.0.0.1:0", "-window", "10", "-keep", "8",
			"-analyses", "summary,hierarchy",
		}, &stdout, stderr, stop)
	}()
	addr := waitServing(t, stderr)
	base := "http://" + addr

	// Wait until the first burst is ingested. The joiner holds ops
	// until the release horizon passes, so at least the early ops are
	// through once records_total reaches 100.
	waitMetric := func(name string, want float64) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			body := httpGet(t, base+"/metrics")
			if metricValue(t, body, name) >= want {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %v:\n%s", name, want, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	body := waitMetric("nfsmond_records_total", 100)

	// Counters must be monotonic across appends.
	ops1 := metricValue(t, body, "nfsmond_ops_total")
	writeBurst(t, trace, 50, 50)
	body = waitMetric("nfsmond_records_total", 200)
	ops2 := metricValue(t, body, "nfsmond_ops_total")
	if ops2 < ops1 {
		t.Fatalf("ops_total went backwards: %v then %v", ops1, ops2)
	}
	if lag := metricValue(t, body, "nfsmond_window_lag_seconds"); lag < 0 || lag >= 10 {
		t.Fatalf("window lag %v outside [0, width)", lag)
	}
	if !strings.Contains(body, `nfsmond_proc_ops_total{proc="read"}`) {
		t.Fatalf("per-proc counter missing:\n%s", body)
	}

	// The summary endpoint reflects a consistent snapshot: all ops so
	// far are reads, and the joiner matched every pair.
	var sum struct {
		Ops     int64 `json:"ops"`
		Summary struct {
			TotalOps int64  `json:"total_ops"`
			ReadOps  int64  `json:"read_ops"`
			Bytes    uint64 `json:"bytes_read"`
		} `json:"summary"`
		Join struct {
			Matched        int64 `json:"matched"`
			UnmatchedCalls int64 `json:"unmatched_calls"`
		} `json:"join"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/api/summary")), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Summary.TotalOps != sum.Ops {
		t.Fatalf("summary total %d != stream ops %d", sum.Summary.TotalOps, sum.Ops)
	}
	if sum.Summary.ReadOps != sum.Summary.TotalOps {
		t.Fatalf("expected all reads, got %d/%d", sum.Summary.ReadOps, sum.Summary.TotalOps)
	}
	if sum.Join.Matched != 100 || sum.Join.UnmatchedCalls != 0 {
		t.Fatalf("join = %+v, want 100 matched, 0 unmatched", sum.Join)
	}

	// Windows endpoint: ops at t=1000..1099 with width 10 span ten
	// windows; the ring keeps 8.
	var win struct {
		Width   float64 `json:"width_seconds"`
		Windows []struct {
			Start float64 `json:"start"`
			Ops   int64   `json:"ops"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/api/windows")), &win); err != nil {
		t.Fatal(err)
	}
	if win.Width != 10 || len(win.Windows) == 0 || len(win.Windows) > 8 {
		t.Fatalf("windows = %+v", win)
	}

	// Clean shutdown: the final summary and join line land on stdout.
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "join: 100 calls, 100 replies, 0 unmatched calls") {
		t.Fatalf("final report missing join line:\n%s", stdout.String())
	}
}

func TestDaemonStaticInput(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "static.trace")
	writeBurst(t, trace, 0, 30)

	stop := make(chan os.Signal, 1)
	var stdout bytes.Buffer
	stderr := newSyncBuffer()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-i", trace, "-listen", "127.0.0.1:0", "-window", "60",
		}, &stdout, stderr, stop)
	}()
	addr := waitServing(t, stderr)
	base := "http://" + addr

	// Static mode drains to EOF and keeps serving the final state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := httpGet(t, base+"/metrics")
		if metricValue(t, body, "nfsmond_ops_total") == 30 &&
			metricValue(t, body, "nfsmond_join_matched_total") == 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("static ingest incomplete:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var sl struct {
		Summary struct {
			TotalOps int64 `json:"total_ops"`
		} `json:"summary"`
	}
	// Ops at t=1000..1029 straddle the anchored windows [960,1020) and
	// [1020,1080); merging the newest two covers them all.
	if err := json.Unmarshal([]byte(httpGet(t, base+"/api/sliding?k=2")), &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Summary.TotalOps != 30 {
		t.Fatalf("sliding(2) ops = %d, want 30", sl.Summary.TotalOps)
	}

	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestBuildAnalyzersRejectsUnknown(t *testing.T) {
	if _, err := buildAnalyzers("summary,bogus"); err == nil {
		t.Fatal("expected error for unknown analysis")
	}
	as, err := buildAnalyzers("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 7 {
		t.Fatalf("all = %d analyzers, want 7", len(as))
	}
	// Summary is always first even when not named.
	as, err = buildAnalyzers("hierarchy")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d analyzers, want summary+hierarchy", len(as))
	}
}
