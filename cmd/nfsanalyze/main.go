// nfsanalyze runs one of the paper's analyses over a trace set: one or
// more trace files (text or binary format, gzip-transparent, all
// auto-detected), given as -i and/or positional arguments that may be
// files, glob patterns, or directories. Multiple files are k-way
// merged by timestamp, so a multi-day capture split into daily files
// analyzes in one run.
//
// Records stream through the sharded pipeline: each file is decoded by
// -decoders parallel goroutines, calls and replies are joined
// incrementally, and the analysis reducers run across -workers shards.
// Memory depends on the reducer, not the record count: summary,
// hierarchy, and names hold per-file or constant-size state, blocklife
// holds live-block state, while runs and reorder accumulate one entry
// per data access (run detection needs each file's full access list).
//
// Every analysis can also run distributed. -partial serializes the
// reducers' mid-stream state to a file instead of rendering tables;
// -resume seeds a run from such a file (checkpoint/resume, or chaining
// consecutive trace pieces); -merge combines state files and renders
// the tables, byte-identical to one run over everything; -coordinator
// does all of that in one command, fanning the trace set's files across
// -workers child processes. Order-dependent analyses (blocklife,
// hierarchy, names) distribute as a resume chain; the rest merge
// independently computed states.
//
// Usage:
//
//	nfsanalyze -i campus.trace -analysis summary
//	nfsanalyze -i campus.trace -analysis runs -window 10
//	nfsanalyze -i campus.trace -analysis blocklife -start 118800 -phase 86400 -margin 86400
//	nfsanalyze -analysis summary 'week/day*.trace.gz'
//	nfsanalyze -analysis hourly traces/
//	nfsanalyze -i campus.trace -analysis summary -workers 8 -decoders 4
//	nfsanalyze -i day1.trace -analysis summary -partial day1.state
//	nfsanalyze -analysis summary -merge day1.state day2.state
//	nfsanalyze -analysis summary -coordinator -workers 8 traces/
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errUsage {
			fmt.Fprintln(os.Stderr, "nfsanalyze:", err)
		}
		os.Exit(1)
	}
}

// errUsage signals a flag-parse failure the FlagSet already reported
// to stderr, so main exits nonzero without printing it again.
var errUsage = errors.New("usage")

// The analyzer set and renderer for each -analysis kind live in
// internal/jobspec, shared with cmd/nfsworker so a remote worker
// rebuilds the exact analyzers this process would run.

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace (default stdin; positional args add files, globs, directories)")
	kind := fs.String("analysis", "summary",
		"analysis: summary, runs, blocklife, hourly, names, hierarchy, reorder")
	window := fs.Float64("window", 10, "reorder window in ms (runs)")
	jump := fs.Int64("k", 10, "jump tolerance in blocks (runs)")
	start := fs.Float64("start", 0, "blocklife phase-1 start (seconds)")
	phase := fs.Float64("phase", workload.Day, "blocklife phase-1 length (seconds)")
	margin := fs.Float64("margin", workload.Day, "blocklife end margin (seconds)")
	workers := fs.Int("workers", 0, "pipeline shard count, or worker process count with -coordinator (0 = one per CPU)")
	decoders := fs.Int("decoders", 0, "parallel decode goroutines per input file (0 = one per CPU)")
	partialOut := fs.String("partial", "", "serialize partial analysis state to this file instead of rendering tables")
	resumeIn := fs.String("resume", "", "seed the analysis from this state file before reading input")
	mergeMode := fs.Bool("merge", false, "inputs are state files: merge them and render the tables")
	coordMode := fs.Bool("coordinator", false, "partition input files across -workers child processes, merge their states, render")
	remote := fs.String("remote", "", "comma-separated nfsworker addresses; with -coordinator, dispatch pieces to them over TCP instead of local subprocesses")
	workerTimeout := fs.Duration("worker-timeout", 10*time.Minute, "deadline per worker attempt in coordinator mode; an attempt past it is killed and re-dispatched")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errUsage
	}
	// Register the allocation snapshot before the CPU profile starts:
	// defers run LIFO, so the CPU profile stops before the forced GC
	// and profile serialization, keeping them out of its samples.
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			// The allocation profile is cumulative, so one snapshot at
			// exit covers the whole run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "nfsanalyze: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	spec := jobspec.Spec{Kind: *kind, Window: *window, Jump: *jump, Start: *start, Phase: *phase, Margin: *margin}
	set, err := jobspec.Build(spec)
	if err != nil {
		return err
	}
	inputs := fs.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}

	if *mergeMode {
		if *partialOut != "" || *resumeIn != "" || *coordMode {
			return fmt.Errorf("-merge cannot be combined with -partial, -resume, or -coordinator")
		}
		if len(inputs) == 0 {
			return fmt.Errorf("-merge needs state files as inputs")
		}
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		return runMerge(set, paths, stdout)
	}
	if *remote != "" && !*coordMode {
		return fmt.Errorf("-remote requires -coordinator")
	}
	if *coordMode {
		if *partialOut != "" || *resumeIn != "" {
			return fmt.Errorf("-coordinator cannot be combined with -partial or -resume")
		}
		if len(inputs) == 0 {
			return fmt.Errorf("-coordinator needs file inputs, not stdin")
		}
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		cc := coordConfig{
			set:      set,
			paths:    paths,
			workers:  *workers,
			decoders: *decoders,
			timeout:  *workerTimeout,
		}
		if *remote != "" {
			cc.remote = strings.Split(*remote, ",")
			return runRemoteCoordinator(cc, stdout, stderr)
		}
		return runCoordinator(cc, stdout, stderr)
	}

	if *partialOut != "" && os.Getenv("NFSANALYZE_TEST_HANG") == "1" {
		// Test hook: simulate a wedged worker so the coordinator's
		// per-attempt deadline and process-group kill can be pinned.
		time.Sleep(time.Hour)
	}

	icfg := core.IngestConfig{Decoders: *decoders}
	var src core.RecordSource
	var ts *pipeline.TraceSet
	if len(inputs) == 0 {
		pr, err := core.NewParallelReader(os.Stdin, icfg)
		if err != nil {
			return err
		}
		defer pr.Stop()
		src = pr
	} else {
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		ts, err = pipeline.OpenTraceSet(paths, icfg)
		if err != nil {
			return err
		}
		defer ts.Close()
		src = ts
	}
	cfg := pipeline.Config{Workers: *workers}

	var resumed *pipeline.Partial
	if *resumeIn != "" {
		resumed, err = readPartialFile(*resumeIn, spec.Kind)
		if err != nil {
			return err
		}
	}

	lv := pipeline.NewLive(cfg, set.Analyzers...)
	if resumed != nil {
		if err := resumed.Resume(lv); err != nil {
			lv.Abort()
			return err
		}
	}
	j := pipeline.NewJoiner(src)
	for {
		op, err := j.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			lv.Abort()
			return err
		}
		lv.Feed(op)
	}
	join := j.Stats()
	if resumed != nil {
		// Join statistics accumulate across the resume chain like every
		// other reducer.
		total := resumed.Join
		total.Merge(join)
		join = total
	}

	if *partialOut != "" {
		stats := lv.Quiesce()
		if stats.Ops == 0 {
			return fmt.Errorf("no operations in trace")
		}
		f, err := os.Create(*partialOut)
		if err != nil {
			return err
		}
		if err := pipeline.WritePartial(f, lv, spec.Kind, join, resumed); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		stats := lv.Finish()
		if stats.Ops == 0 {
			return fmt.Errorf("no operations in trace")
		}
		set.Render(stdout, stats, join)
	}

	if ts != nil && len(ts.Stats()) > 1 {
		for _, st := range ts.Stats() {
			fmt.Fprintf(stderr, "nfsanalyze: %s: %d records\n", st.Path, st.Records)
		}
	}
	return nil
}

// readPartialFile reads one state file and checks it holds the analysis
// the caller is rendering.
func readPartialFile(path, kind string) (*pipeline.Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := pipeline.ReadPartial(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Label != kind {
		return nil, fmt.Errorf("%s: state holds a %q analysis, not %q (pass -analysis %s)", path, p.Label, kind, p.Label)
	}
	return p, nil
}

// runMerge combines state files and renders the tables.
func runMerge(set *jobspec.Set, paths []string, stdout io.Writer) error {
	partials := make([]*pipeline.Partial, 0, len(paths))
	for _, path := range paths {
		p, err := readPartialFile(path, set.Spec.Kind)
		if err != nil {
			return err
		}
		partials = append(partials, p)
	}
	stats, join, err := pipeline.MergePartials(set.Analyzers, partials)
	if err != nil {
		return err
	}
	set.Render(stdout, stats, join)
	return nil
}
