// nfsanalyze runs one of the paper's analyses over a trace set: one or
// more trace files (text or binary format, gzip-transparent, all
// auto-detected), given as -i and/or positional arguments that may be
// files, glob patterns, or directories. Multiple files are k-way
// merged by timestamp, so a multi-day capture split into daily files
// analyzes in one run.
//
// Records stream through the sharded pipeline: each file is decoded by
// -decoders parallel goroutines, calls and replies are joined
// incrementally, and the analysis reducers run across -workers shards.
// Memory depends on the reducer, not the record count: summary and
// hierarchy hold constant-size state, blocklife holds live-block
// state, while runs and reorder accumulate one entry per data access
// (run detection needs each file's full access list). The hourly and
// names analyses need the whole trace (the hour-bucket span and the
// file-instance window are only known at the end), so they materialize
// first.
//
// Usage:
//
//	nfsanalyze -i campus.trace -analysis summary
//	nfsanalyze -i campus.trace -analysis runs -window 10
//	nfsanalyze -i campus.trace -analysis blocklife -start 118800 -phase 86400 -margin 86400
//	nfsanalyze -analysis summary 'week/day*.trace.gz'
//	nfsanalyze -analysis hourly traces/
//	nfsanalyze -i campus.trace -analysis summary -workers 8 -decoders 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errUsage {
			fmt.Fprintln(os.Stderr, "nfsanalyze:", err)
		}
		os.Exit(1)
	}
}

// errUsage signals a flag-parse failure the FlagSet already reported
// to stderr, so main exits nonzero without printing it again.
var errUsage = errors.New("usage")

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace (default stdin; positional args add files, globs, directories)")
	kind := fs.String("analysis", "summary",
		"analysis: summary, runs, blocklife, hourly, names, hierarchy, reorder")
	window := fs.Float64("window", 10, "reorder window in ms (runs)")
	jump := fs.Int64("k", 10, "jump tolerance in blocks (runs)")
	start := fs.Float64("start", 0, "blocklife phase-1 start (seconds)")
	phase := fs.Float64("phase", workload.Day, "blocklife phase-1 length (seconds)")
	margin := fs.Float64("margin", workload.Day, "blocklife end margin (seconds)")
	workers := fs.Int("workers", 0, "pipeline shard count (0 = one per CPU)")
	decoders := fs.Int("decoders", 0, "parallel decode goroutines per input file (0 = one per CPU)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errUsage
	}
	// Register the allocation snapshot before the CPU profile starts:
	// defers run LIFO, so the CPU profile stops before the forced GC
	// and profile serialization, keeping them out of its samples.
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			// The allocation profile is cumulative, so one snapshot at
			// exit covers the whole run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "nfsanalyze: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	icfg := core.IngestConfig{Decoders: *decoders}
	inputs := fs.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	var src core.RecordSource
	var set *pipeline.TraceSet
	if len(inputs) == 0 {
		pr, err := core.NewParallelReader(os.Stdin, icfg)
		if err != nil {
			return err
		}
		defer pr.Stop()
		src = pr
	} else {
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		set, err = pipeline.OpenTraceSet(paths, icfg)
		if err != nil {
			return err
		}
		defer set.Close()
		src = set
	}
	cfg := pipeline.Config{Workers: *workers}

	switch *kind {
	case "summary":
		sum := &pipeline.SummaryAnalyzer{}
		join, stats, err := stream(cfg, src, sum)
		if err != nil {
			return err
		}
		days := stats.Span() / workload.Day
		if days <= 0 {
			days = 1.0 / 24
		}
		sum.Result.Days = days
		fmt.Fprintln(stdout, sum.Result)
		fmt.Fprintf(stdout, "join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
			join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
	case "runs":
		ra := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
			ReorderWindow: *window / 1000, IdleGap: 30, JumpBlocks: *jump}}
		if _, _, err := stream(cfg, src, ra); err != nil {
			return err
		}
		tab := ra.Table()
		fmt.Fprintf(stdout, "runs=%d window=%.0fms k=%d\n", tab.TotalRuns, *window, *jump)
		fmt.Fprintf(stdout, "reads  %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.ReadPct, tab.Read[0], tab.Read[1], tab.Read[2])
		fmt.Fprintf(stdout, "writes %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.WritePct, tab.Write[0], tab.Write[1], tab.Write[2])
		fmt.Fprintf(stdout, "r-w    %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.ReadWritePct, tab.ReadWrite[0], tab.ReadWrite[1], tab.ReadWrite[2])
	case "blocklife":
		bl := &pipeline.BlockLifeAnalyzer{Start: *start, Phase: *phase, Margin: *margin}
		if _, _, err := stream(cfg, src, bl); err != nil {
			return err
		}
		res := bl.Result
		fmt.Fprintf(stdout, "births=%d (writes %.1f%%, extension %.1f%%)\n",
			res.Births, res.BirthPct(analysis.BirthWrite), res.BirthPct(analysis.BirthExtension))
		fmt.Fprintf(stdout, "deaths=%d (overwrite %.1f%%, truncate %.1f%%, delete %.1f%%)\n",
			res.Deaths, res.DeathPct(analysis.DeathOverwrite),
			res.DeathPct(analysis.DeathTruncate), res.DeathPct(analysis.DeathDelete))
		fmt.Fprintf(stdout, "end surplus %.1f%%; lifetime p50=%.1fs p90=%.1fs\n",
			res.EndSurplusPct(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
	case "hierarchy":
		hier := &pipeline.HierarchyAnalyzer{Warmup: 600}
		if _, _, err := stream(cfg, src, hier); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hierarchy coverage after 10min warmup: %.2f%%\n", 100*hier.Coverage)
	case "reorder":
		sweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 1, 2, 5, 10, 20, 50}}
		if _, _, err := stream(cfg, src, sweep); err != nil {
			return err
		}
		for _, p := range sweep.Result {
			fmt.Fprintf(stdout, "window %5.0fms: %.2f%% swapped\n", p.WindowMS, p.SwappedPct)
		}
	case "hourly":
		ops, span, err := materialize(src)
		if err != nil {
			return err
		}
		h := analysis.Hourly(ops, span)
		for _, peak := range []bool{false, true} {
			label := "all hours"
			if peak {
				label = "peak hours"
			}
			fmt.Fprintf(stdout, "%s:\n", label)
			for _, row := range h.VarianceTable(peak) {
				fmt.Fprintf(stdout, "  %-20s mean=%12.0f stddev=%5.0f%%\n", row.Name, row.Mean, 100*row.RelStddev)
			}
		}
	case "names":
		ops, _, err := materialize(src)
		if err != nil {
			return err
		}
		rep := analysis.AnalyzeNames(ops, ops[len(ops)-1].T)
		for _, cs := range rep.PerCategory {
			if cs.Created == 0 {
				continue
			}
			fmt.Fprintf(stdout, "%-10s created=%6d deleted=%6d life_p50=%8.2fs size_p98=%10.0fB\n",
				cs.Category, cs.Created, cs.Deleted,
				cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98))
		}
		fmt.Fprintf(stdout, "locks %.1f%% of created-and-deleted; size prediction %.0f%%, lifetime prediction %.0f%%\n",
			100*rep.LockFracOfDeleted, 100*rep.SizeAccuracy, 100*rep.LifeAccuracy)
	default:
		return fmt.Errorf("unknown analysis %q", *kind)
	}

	if set != nil && len(set.Stats()) > 1 {
		for _, st := range set.Stats() {
			fmt.Fprintf(stderr, "nfsanalyze: %s: %d records\n", st.Path, st.Records)
		}
	}
	return nil
}

// stream joins the record source incrementally and runs the analyzers
// across the pipeline's shards. It returns the join and stream
// statistics for span-dependent fix-ups.
func stream(cfg pipeline.Config, src core.RecordSource, analyzers ...pipeline.Analyzer) (core.JoinStats, pipeline.Stats, error) {
	j := pipeline.NewJoiner(src)
	stats, err := pipeline.Run(cfg, j, analyzers...)
	if err != nil {
		return core.JoinStats{}, stats, err
	}
	if stats.Ops == 0 {
		return core.JoinStats{}, stats, fmt.Errorf("no operations in trace")
	}
	return j.Stats(), stats, nil
}

// materialize drains the source into a joined op slice for the
// analyses that need the whole trace up front.
func materialize(src core.RecordSource) ([]*core.Op, float64, error) {
	var records []*core.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		records = append(records, rec)
	}
	ops, _ := core.Join(records)
	if len(ops) == 0 {
		return nil, 0, fmt.Errorf("no operations in trace")
	}
	return ops, ops[len(ops)-1].T - ops[0].T, nil
}
