// nfsanalyze runs one of the paper's analyses over a trace file (text
// or binary format, auto-detected).
//
// Records stream through the sharded pipeline: calls and replies are
// joined incrementally and the analysis reducers run across -workers
// shards. Memory depends on the reducer, not the record count: summary
// and hierarchy hold constant-size state, blocklife holds live-block
// state, while runs and reorder accumulate one entry per data access
// (run detection needs each file's full access list). The hourly and
// names analyses need the whole trace (the hour-bucket span and the
// file-instance window are only known at the end), so they materialize
// first.
//
// Usage:
//
//	nfsanalyze -i campus.trace -analysis summary
//	nfsanalyze -i campus.trace -analysis runs -window 10
//	nfsanalyze -i campus.trace -analysis blocklife -start 118800 -phase 86400 -margin 86400
//	nfsanalyze -i campus.trace -analysis hourly
//	nfsanalyze -i campus.trace -analysis names
//	nfsanalyze -i campus.trace -analysis hierarchy
//	nfsanalyze -i campus.trace -analysis reorder
//	nfsanalyze -i campus.trace -analysis summary -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	in := flag.String("i", "", "input trace (default stdin)")
	kind := flag.String("analysis", "summary",
		"analysis: summary, runs, blocklife, hourly, names, hierarchy, reorder")
	window := flag.Float64("window", 10, "reorder window in ms (runs)")
	jump := flag.Int64("k", 10, "jump tolerance in blocks (runs)")
	start := flag.Float64("start", 0, "blocklife phase-1 start (seconds)")
	phase := flag.Float64("phase", workload.Day, "blocklife phase-1 length (seconds)")
	margin := flag.Float64("margin", workload.Day, "blocklife end margin (seconds)")
	workers := flag.Int("workers", 0, "pipeline shard count (0 = one per CPU)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	src, err := core.DetectSource(r)
	if err != nil {
		fatal(err)
	}
	cfg := pipeline.Config{Workers: *workers}

	switch *kind {
	case "summary":
		sum := &pipeline.SummaryAnalyzer{}
		join, stats := stream(cfg, src, sum)
		days := stats.Span() / workload.Day
		if days <= 0 {
			days = 1.0 / 24
		}
		sum.Result.Days = days
		fmt.Println(sum.Result)
		fmt.Printf("join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
			join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
	case "runs":
		ra := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
			ReorderWindow: *window / 1000, IdleGap: 30, JumpBlocks: *jump}}
		stream(cfg, src, ra)
		tab := ra.Table()
		fmt.Printf("runs=%d window=%.0fms k=%d\n", tab.TotalRuns, *window, *jump)
		fmt.Printf("reads  %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.ReadPct, tab.Read[0], tab.Read[1], tab.Read[2])
		fmt.Printf("writes %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.WritePct, tab.Write[0], tab.Write[1], tab.Write[2])
		fmt.Printf("r-w    %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
			tab.ReadWritePct, tab.ReadWrite[0], tab.ReadWrite[1], tab.ReadWrite[2])
	case "blocklife":
		bl := &pipeline.BlockLifeAnalyzer{Start: *start, Phase: *phase, Margin: *margin}
		stream(cfg, src, bl)
		res := bl.Result
		fmt.Printf("births=%d (writes %.1f%%, extension %.1f%%)\n",
			res.Births, res.BirthPct(analysis.BirthWrite), res.BirthPct(analysis.BirthExtension))
		fmt.Printf("deaths=%d (overwrite %.1f%%, truncate %.1f%%, delete %.1f%%)\n",
			res.Deaths, res.DeathPct(analysis.DeathOverwrite),
			res.DeathPct(analysis.DeathTruncate), res.DeathPct(analysis.DeathDelete))
		fmt.Printf("end surplus %.1f%%; lifetime p50=%.1fs p90=%.1fs\n",
			res.EndSurplusPct(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
	case "hierarchy":
		hier := &pipeline.HierarchyAnalyzer{Warmup: 600}
		stream(cfg, src, hier)
		fmt.Printf("hierarchy coverage after 10min warmup: %.2f%%\n", 100*hier.Coverage)
	case "reorder":
		sweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 1, 2, 5, 10, 20, 50}}
		stream(cfg, src, sweep)
		for _, p := range sweep.Result {
			fmt.Printf("window %5.0fms: %.2f%% swapped\n", p.WindowMS, p.SwappedPct)
		}
	case "hourly":
		ops, span := materialize(src)
		h := analysis.Hourly(ops, span)
		for _, peak := range []bool{false, true} {
			label := "all hours"
			if peak {
				label = "peak hours"
			}
			fmt.Printf("%s:\n", label)
			for _, row := range h.VarianceTable(peak) {
				fmt.Printf("  %-20s mean=%12.0f stddev=%5.0f%%\n", row.Name, row.Mean, 100*row.RelStddev)
			}
		}
	case "names":
		ops, _ := materialize(src)
		rep := analysis.AnalyzeNames(ops, ops[len(ops)-1].T)
		for _, cs := range rep.PerCategory {
			if cs.Created == 0 {
				continue
			}
			fmt.Printf("%-10s created=%6d deleted=%6d life_p50=%8.2fs size_p98=%10.0fB\n",
				cs.Category, cs.Created, cs.Deleted,
				cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98))
		}
		fmt.Printf("locks %.1f%% of created-and-deleted; size prediction %.0f%%, lifetime prediction %.0f%%\n",
			100*rep.LockFracOfDeleted, 100*rep.SizeAccuracy, 100*rep.LifeAccuracy)
	default:
		fatal(fmt.Errorf("unknown analysis %q", *kind))
	}
}

// stream joins the record source incrementally and runs the analyzers
// across the pipeline's shards, exiting on error or an empty trace. It
// returns the join and stream statistics for span-dependent fix-ups.
func stream(cfg pipeline.Config, src core.RecordSource, analyzers ...pipeline.Analyzer) (core.JoinStats, pipeline.Stats) {
	j := pipeline.NewJoiner(src)
	stats, err := pipeline.Run(cfg, j, analyzers...)
	if err != nil {
		fatal(err)
	}
	if stats.Ops == 0 {
		fatal(fmt.Errorf("no operations in trace"))
	}
	return j.Stats(), stats
}

// materialize drains the source into a joined op slice for the
// analyses that need the whole trace up front.
func materialize(src core.RecordSource) ([]*core.Op, float64) {
	var records []*core.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		records = append(records, rec)
	}
	ops, _ := core.Join(records)
	if len(ops) == 0 {
		fatal(fmt.Errorf("no operations in trace"))
	}
	return ops, ops[len(ops)-1].T - ops[0].T
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfsanalyze:", err)
	os.Exit(1)
}
