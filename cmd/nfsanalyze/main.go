// nfsanalyze runs one of the paper's analyses over a trace set: one or
// more trace files (text or binary format, gzip-transparent, all
// auto-detected), given as -i and/or positional arguments that may be
// files, glob patterns, or directories. Multiple files are k-way
// merged by timestamp, so a multi-day capture split into daily files
// analyzes in one run.
//
// Records stream through the sharded pipeline: each file is decoded by
// -decoders parallel goroutines, calls and replies are joined
// incrementally, and the analysis reducers run across -workers shards.
// Memory depends on the reducer, not the record count: summary,
// hierarchy, and names hold per-file or constant-size state, blocklife
// holds live-block state, while runs and reorder accumulate one entry
// per data access (run detection needs each file's full access list).
//
// Every analysis can also run distributed. -partial serializes the
// reducers' mid-stream state to a file instead of rendering tables;
// -resume seeds a run from such a file (checkpoint/resume, or chaining
// consecutive trace pieces); -merge combines state files and renders
// the tables, byte-identical to one run over everything; -coordinator
// does all of that in one command, fanning the trace set's files across
// -workers child processes. Order-dependent analyses (blocklife,
// hierarchy, names) distribute as a resume chain; the rest merge
// independently computed states.
//
// Usage:
//
//	nfsanalyze -i campus.trace -analysis summary
//	nfsanalyze -i campus.trace -analysis runs -window 10
//	nfsanalyze -i campus.trace -analysis blocklife -start 118800 -phase 86400 -margin 86400
//	nfsanalyze -analysis summary 'week/day*.trace.gz'
//	nfsanalyze -analysis hourly traces/
//	nfsanalyze -i campus.trace -analysis summary -workers 8 -decoders 4
//	nfsanalyze -i day1.trace -analysis summary -partial day1.state
//	nfsanalyze -analysis summary -merge day1.state day2.state
//	nfsanalyze -analysis summary -coordinator -workers 8 traces/
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errUsage {
			fmt.Fprintln(os.Stderr, "nfsanalyze:", err)
		}
		os.Exit(1)
	}
}

// errUsage signals a flag-parse failure the FlagSet already reported
// to stderr, so main exits nonzero without printing it again.
var errUsage = errors.New("usage")

// analysisOptions carries the per-analysis tuning flags; the
// coordinator propagates them verbatim to its workers.
type analysisOptions struct {
	window float64
	jump   int64
	start  float64
	phase  float64
	margin float64
}

// analysisSpec is one -analysis kind made concrete: the pipeline
// analyzers to run and how to render their results. Every mode — plain
// run, resumed run, merged states, coordinator — renders through the
// same closure, which is what keeps their outputs byte-identical.
type analysisSpec struct {
	kind      string
	analyzers []pipeline.Analyzer
	render    func(w io.Writer, stats pipeline.Stats, join core.JoinStats)
}

// buildAnalysis constructs the spec for one -analysis kind.
func buildAnalysis(kind string, opt analysisOptions) (*analysisSpec, error) {
	spec := &analysisSpec{kind: kind}
	switch kind {
	case "summary":
		sum := &pipeline.SummaryAnalyzer{}
		spec.analyzers = []pipeline.Analyzer{sum}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			days := stats.Span() / workload.Day
			if days <= 0 {
				days = 1.0 / 24
			}
			sum.Result.Days = days
			fmt.Fprintln(w, sum.Result)
			fmt.Fprintf(w, "join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
				join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
		}
	case "runs":
		ra := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
			ReorderWindow: opt.window / 1000, IdleGap: 30, JumpBlocks: opt.jump}}
		spec.analyzers = []pipeline.Analyzer{ra}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			tab := ra.Table()
			fmt.Fprintf(w, "runs=%d window=%.0fms k=%d\n", tab.TotalRuns, opt.window, opt.jump)
			fmt.Fprintf(w, "reads  %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadPct, tab.Read[0], tab.Read[1], tab.Read[2])
			fmt.Fprintf(w, "writes %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.WritePct, tab.Write[0], tab.Write[1], tab.Write[2])
			fmt.Fprintf(w, "r-w    %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadWritePct, tab.ReadWrite[0], tab.ReadWrite[1], tab.ReadWrite[2])
		}
	case "blocklife":
		bl := &pipeline.BlockLifeAnalyzer{Start: opt.start, Phase: opt.phase, Margin: opt.margin}
		spec.analyzers = []pipeline.Analyzer{bl}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			res := bl.Result
			fmt.Fprintf(w, "births=%d (writes %.1f%%, extension %.1f%%)\n",
				res.Births, res.BirthPct(analysis.BirthWrite), res.BirthPct(analysis.BirthExtension))
			fmt.Fprintf(w, "deaths=%d (overwrite %.1f%%, truncate %.1f%%, delete %.1f%%)\n",
				res.Deaths, res.DeathPct(analysis.DeathOverwrite),
				res.DeathPct(analysis.DeathTruncate), res.DeathPct(analysis.DeathDelete))
			fmt.Fprintf(w, "end surplus %.1f%%; lifetime p50=%.1fs p90=%.1fs\n",
				res.EndSurplusPct(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
		}
	case "hierarchy":
		hier := &pipeline.HierarchyAnalyzer{Warmup: 600}
		spec.analyzers = []pipeline.Analyzer{hier}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			fmt.Fprintf(w, "hierarchy coverage after 10min warmup: %.2f%%\n", 100*hier.Coverage)
		}
	case "reorder":
		sweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 1, 2, 5, 10, 20, 50}}
		spec.analyzers = []pipeline.Analyzer{sweep}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			for _, p := range sweep.Result {
				fmt.Fprintf(w, "window %5.0fms: %.2f%% swapped\n", p.WindowMS, p.SwappedPct)
			}
		}
	case "hourly":
		// Open-ended hour buckets; the span (and so the bucket count) is
		// fixed only at render time, which lets the accumulation run
		// incrementally and serialize mid-stream.
		h := &pipeline.HourlyAnalyzer{}
		spec.analyzers = []pipeline.Analyzer{h}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			span := stats.Span()
			if span <= 0 {
				span = 3600
			}
			fixed := h.Result.FixedTo(span)
			for _, peak := range []bool{false, true} {
				label := "all hours"
				if peak {
					label = "peak hours"
				}
				fmt.Fprintf(w, "%s:\n", label)
				for _, row := range fixed.VarianceTable(peak) {
					fmt.Fprintf(w, "  %-20s mean=%12.0f stddev=%5.0f%%\n", row.Name, row.Mean, 100*row.RelStddev)
				}
			}
		}
	case "names":
		na := &pipeline.NamesAnalyzer{}
		spec.analyzers = []pipeline.Analyzer{na}
		spec.render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			rep := na.ReportAt(stats.MaxT)
			for _, cs := range rep.PerCategory {
				if cs.Created == 0 {
					continue
				}
				fmt.Fprintf(w, "%-10s created=%6d deleted=%6d life_p50=%8.2fs size_p98=%10.0fB\n",
					cs.Category, cs.Created, cs.Deleted,
					cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98))
			}
			fmt.Fprintf(w, "locks %.1f%% of created-and-deleted; size prediction %.0f%%, lifetime prediction %.0f%%\n",
				100*rep.LockFracOfDeleted, 100*rep.SizeAccuracy, 100*rep.LifeAccuracy)
		}
	default:
		return nil, fmt.Errorf("unknown analysis %q", kind)
	}
	return spec, nil
}

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace (default stdin; positional args add files, globs, directories)")
	kind := fs.String("analysis", "summary",
		"analysis: summary, runs, blocklife, hourly, names, hierarchy, reorder")
	window := fs.Float64("window", 10, "reorder window in ms (runs)")
	jump := fs.Int64("k", 10, "jump tolerance in blocks (runs)")
	start := fs.Float64("start", 0, "blocklife phase-1 start (seconds)")
	phase := fs.Float64("phase", workload.Day, "blocklife phase-1 length (seconds)")
	margin := fs.Float64("margin", workload.Day, "blocklife end margin (seconds)")
	workers := fs.Int("workers", 0, "pipeline shard count, or worker process count with -coordinator (0 = one per CPU)")
	decoders := fs.Int("decoders", 0, "parallel decode goroutines per input file (0 = one per CPU)")
	partialOut := fs.String("partial", "", "serialize partial analysis state to this file instead of rendering tables")
	resumeIn := fs.String("resume", "", "seed the analysis from this state file before reading input")
	mergeMode := fs.Bool("merge", false, "inputs are state files: merge them and render the tables")
	coordMode := fs.Bool("coordinator", false, "partition input files across -workers child processes, merge their states, render")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errUsage
	}
	// Register the allocation snapshot before the CPU profile starts:
	// defers run LIFO, so the CPU profile stops before the forced GC
	// and profile serialization, keeping them out of its samples.
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			// The allocation profile is cumulative, so one snapshot at
			// exit covers the whole run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "nfsanalyze: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opt := analysisOptions{window: *window, jump: *jump, start: *start, phase: *phase, margin: *margin}
	spec, err := buildAnalysis(*kind, opt)
	if err != nil {
		return err
	}
	inputs := fs.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}

	if *mergeMode {
		if *partialOut != "" || *resumeIn != "" || *coordMode {
			return fmt.Errorf("-merge cannot be combined with -partial, -resume, or -coordinator")
		}
		if len(inputs) == 0 {
			return fmt.Errorf("-merge needs state files as inputs")
		}
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		return runMerge(spec, paths, stdout)
	}
	if *coordMode {
		if *partialOut != "" || *resumeIn != "" {
			return fmt.Errorf("-coordinator cannot be combined with -partial or -resume")
		}
		if len(inputs) == 0 {
			return fmt.Errorf("-coordinator needs file inputs, not stdin")
		}
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		return runCoordinator(coordConfig{
			spec:     spec,
			paths:    paths,
			workers:  *workers,
			decoders: *decoders,
			opt:      opt,
		}, stdout, stderr)
	}

	icfg := core.IngestConfig{Decoders: *decoders}
	var src core.RecordSource
	var set *pipeline.TraceSet
	if len(inputs) == 0 {
		pr, err := core.NewParallelReader(os.Stdin, icfg)
		if err != nil {
			return err
		}
		defer pr.Stop()
		src = pr
	} else {
		paths, err := pipeline.ExpandInputs(inputs)
		if err != nil {
			return err
		}
		set, err = pipeline.OpenTraceSet(paths, icfg)
		if err != nil {
			return err
		}
		defer set.Close()
		src = set
	}
	cfg := pipeline.Config{Workers: *workers}

	var resumed *pipeline.Partial
	if *resumeIn != "" {
		resumed, err = readPartialFile(*resumeIn, spec.kind)
		if err != nil {
			return err
		}
	}

	lv := pipeline.NewLive(cfg, spec.analyzers...)
	if resumed != nil {
		if err := resumed.Resume(lv); err != nil {
			lv.Abort()
			return err
		}
	}
	j := pipeline.NewJoiner(src)
	for {
		op, err := j.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			lv.Abort()
			return err
		}
		lv.Feed(op)
	}
	join := j.Stats()
	if resumed != nil {
		// Join statistics accumulate across the resume chain like every
		// other reducer.
		total := resumed.Join
		total.Merge(join)
		join = total
	}

	if *partialOut != "" {
		stats := lv.Quiesce()
		if stats.Ops == 0 {
			return fmt.Errorf("no operations in trace")
		}
		f, err := os.Create(*partialOut)
		if err != nil {
			return err
		}
		if err := pipeline.WritePartial(f, lv, spec.kind, join, resumed); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		stats := lv.Finish()
		if stats.Ops == 0 {
			return fmt.Errorf("no operations in trace")
		}
		spec.render(stdout, stats, join)
	}

	if set != nil && len(set.Stats()) > 1 {
		for _, st := range set.Stats() {
			fmt.Fprintf(stderr, "nfsanalyze: %s: %d records\n", st.Path, st.Records)
		}
	}
	return nil
}

// readPartialFile reads one state file and checks it holds the analysis
// the caller is rendering.
func readPartialFile(path, kind string) (*pipeline.Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := pipeline.ReadPartial(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Label != kind {
		return nil, fmt.Errorf("%s: state holds a %q analysis, not %q (pass -analysis %s)", path, p.Label, kind, p.Label)
	}
	return p, nil
}

// runMerge combines state files and renders the tables.
func runMerge(spec *analysisSpec, paths []string, stdout io.Writer) error {
	partials := make([]*pipeline.Partial, 0, len(paths))
	for _, path := range paths {
		p, err := readPartialFile(path, spec.kind)
		if err != nil {
			return err
		}
		partials = append(partials, p)
	}
	stats, join, err := pipeline.MergePartials(spec.analyzers, partials)
	if err != nil {
		return err
	}
	spec.render(stdout, stats, join)
	return nil
}
