package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestMain lets the test binary double as the coordinator's worker:
// runCoordinator spawns os.Executable() with NFSANALYZE_WORKER=1, which
// under `go test` is this binary. The env var only matters here — the
// production binary runs the same -partial arguments through main()
// regardless.
func TestMain(m *testing.M) {
	if os.Getenv("NFSANALYZE_WORKER") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "nfsanalyze:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// splitQuiescent cuts the trace file into n pieces at quiescent
// boundaries (no call awaiting its reply), the same rule
// tools/tracesplit applies, so each piece's calls and replies pair up
// within the piece and per-piece join statistics sum exactly.
func splitQuiescent(t *testing.T, path string, n int, dir string, gz bool) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := core.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	type pendingKey struct {
		client uint32
		port   uint16
		xid    uint32
	}
	pending := make(map[pendingKey]int)
	var paths []string
	var buf bytes.Buffer
	tw := core.NewWriter(&buf)
	count := 0
	flush := func() {
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		ext := ".trace"
		data := buf.Bytes()
		if gz {
			ext = ".trace.gz"
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			if _, err := zw.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			data = zbuf.Bytes()
		}
		p := filepath.Join(dir, fmt.Sprintf("piece-%03d%s", len(paths), ext))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		buf.Reset()
		tw = core.NewWriter(&buf)
		count = 0
	}
	for i, rec := range records {
		if err := tw.Write(rec); err != nil {
			t.Fatal(err)
		}
		count++
		k := pendingKey{rec.Client, rec.Port, rec.XID}
		switch rec.Kind {
		case core.KindCall:
			pending[k]++
		case core.KindReply:
			if pending[k] > 0 {
				pending[k]--
				if pending[k] == 0 {
					delete(pending, k)
				}
			}
		}
		last := i == len(records)-1
		if !last && len(paths) < n-1 && len(pending) == 0 &&
			int64(i+1) >= int64(len(paths)+1)*int64(len(records))/int64(n) {
			flush()
		}
	}
	if count > 0 {
		flush()
	}
	if len(paths) < 2 && n >= 2 {
		t.Fatalf("trace never quiescent: got %d pieces, wanted %d", len(paths), n)
	}
	return paths
}

var allKinds = []string{"summary", "runs", "blocklife", "hourly", "names", "hierarchy", "reorder"}

// seqKinds are the order-dependent analyses: their states only compose
// as a resume chain, never as an independent merge.
var seqKinds = map[string]bool{"blocklife": true, "hierarchy": true, "names": true}

func directOutput(t *testing.T, kind, path string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run([]string{"-i", path, "-analysis", kind}, &out, &errb); err != nil {
		t.Fatalf("%s direct: %v (stderr: %s)", kind, err, errb.String())
	}
	return out.String()
}

// TestPartialMergeMatchesDirect checks the full distributed surface
// per analysis: -partial per piece (independent for parallel-exact
// analyses, a -resume chain for order-dependent ones), then -merge,
// byte-identical to the single run — across 2- and 8-piece partitions.
func TestPartialMergeMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	for _, kind := range allKinds {
		want := directOutput(t, kind, path)
		for _, n := range []int{2, 8} {
			pdir := filepath.Join(dir, fmt.Sprintf("%s-%d", kind, n))
			if err := os.MkdirAll(pdir, 0o755); err != nil {
				t.Fatal(err)
			}
			pieces := splitQuiescent(t, path, n, pdir, false)
			states := make([]string, len(pieces))
			for i, piece := range pieces {
				states[i] = filepath.Join(pdir, fmt.Sprintf("s%d.state", i))
				args := []string{"-analysis", kind, "-i", piece, "-partial", states[i]}
				if seqKinds[kind] && i > 0 {
					args = append(args, "-resume", states[i-1])
				}
				var out, errb bytes.Buffer
				if err := run(args, &out, &errb); err != nil {
					t.Fatalf("%s/%d partial %d: %v (stderr: %s)", kind, n, i, err, errb.String())
				}
				if out.Len() != 0 {
					t.Fatalf("%s/%d partial %d: unexpected stdout %q", kind, n, i, out.String())
				}
			}
			var out, errb bytes.Buffer
			args := append([]string{"-analysis", kind, "-merge"}, states...)
			if err := run(args, &out, &errb); err != nil {
				t.Fatalf("%s/%d merge: %v (stderr: %s)", kind, n, err, errb.String())
			}
			if out.String() != want {
				t.Fatalf("%s/%d: merged output differs:\n--- direct ---\n%s--- merged ---\n%s", kind, n, want, out.String())
			}
		}
	}
}

// TestResumeRendersDirectly checks checkpoint/resume without a merge
// step: analyze piece 1 to a state file, then resume from it over
// piece 2 and render — identical to the uninterrupted run.
func TestResumeRendersDirectly(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pieces := splitQuiescent(t, path, 2, dir, false)
	for _, kind := range allKinds {
		want := directOutput(t, kind, path)
		st := filepath.Join(dir, kind+".state")
		var out, errb bytes.Buffer
		if err := run([]string{"-analysis", kind, "-i", pieces[0], "-partial", st}, &out, &errb); err != nil {
			t.Fatalf("%s checkpoint: %v (stderr: %s)", kind, err, errb.String())
		}
		out.Reset()
		errb.Reset()
		if err := run([]string{"-analysis", kind, "-i", pieces[1], "-resume", st}, &out, &errb); err != nil {
			t.Fatalf("%s resume: %v (stderr: %s)", kind, err, errb.String())
		}
		if out.String() != want {
			t.Fatalf("%s: resumed output differs:\n--- direct ---\n%s--- resumed ---\n%s", kind, want, out.String())
		}
	}
}

// TestCoordinatorMatchesDirect spawns real worker processes (this test
// binary, via TestMain) over a gzip multi-file trace set and checks
// the rendered tables are byte-identical to the single-process run —
// for 1 and 8 workers, parallel and chained analyses alike.
func TestCoordinatorMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pdir := filepath.Join(dir, "pieces")
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		t.Fatal(err)
	}
	pieces := splitQuiescent(t, path, 8, pdir, true)
	for _, kind := range []string{"summary", "runs", "blocklife", "names"} {
		want := directOutput(t, kind, path)
		for _, workers := range []int{1, 8} {
			var out, errb bytes.Buffer
			args := append([]string{"-analysis", kind, "-coordinator", "-workers", fmt.Sprint(workers)}, pieces...)
			if err := run(args, &out, &errb); err != nil {
				t.Fatalf("%s/%d workers: %v (stderr: %s)", kind, workers, err, errb.String())
			}
			if out.String() != want {
				t.Fatalf("%s/%d workers: coordinator output differs:\n--- direct ---\n%s--- coordinator ---\n%s", kind, workers, want, out.String())
			}
			if !strings.Contains(errb.String(), "coordinator:") {
				t.Fatalf("%s/%d workers: stderr missing coordinator banner: %s", kind, workers, errb.String())
			}
		}
	}
}

// TestDistributedErrors covers the failure surface: flag conflicts,
// label mismatches, order-dependent independent merges, and damaged
// state files — all structured errors, never panics or silent merges.
func TestDistributedErrors(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pieces := splitQuiescent(t, path, 2, dir, false)

	mkState := func(kind, piece, out string, resume string) {
		t.Helper()
		args := []string{"-analysis", kind, "-i", piece, "-partial", out}
		if resume != "" {
			args = append(args, "-resume", resume)
		}
		var o, e bytes.Buffer
		if err := run(args, &o, &e); err != nil {
			t.Fatalf("state %s: %v (stderr: %s)", out, err, e.String())
		}
	}
	sumA := filepath.Join(dir, "sum-a.state")
	sumB := filepath.Join(dir, "sum-b.state")
	mkState("summary", pieces[0], sumA, "")
	mkState("summary", pieces[1], sumB, "")

	expectErr := func(args []string, wantSub string) {
		t.Helper()
		var o, e bytes.Buffer
		err := run(args, &o, &e)
		if err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("args %v: error %q does not mention %q", args, err, wantSub)
		}
	}

	// Flag conflicts.
	expectErr([]string{"-merge", "-partial", "x.state", sumA}, "-merge cannot be combined")
	expectErr([]string{"-coordinator", "-resume", sumA, pieces[0]}, "-coordinator cannot be combined")
	expectErr([]string{"-merge"}, "needs state files")
	expectErr([]string{"-coordinator"}, "needs file inputs")

	// Label mismatch: summary state fed to a runs merge.
	expectErr([]string{"-analysis", "runs", "-merge", sumA, sumB}, `holds a "summary" analysis`)
	expectErr([]string{"-analysis", "runs", "-i", pieces[1], "-resume", sumA}, `holds a "summary" analysis`)

	// Order-dependent analyses reject independent merges.
	nmA := filepath.Join(dir, "nm-a.state")
	nmB := filepath.Join(dir, "nm-b.state")
	mkState("names", pieces[0], nmA, "")
	mkState("names", pieces[1], nmB, "")
	expectErr([]string{"-analysis", "names", "-merge", nmA, nmB}, "chain the pieces with -resume")

	// A broken chain: two states resumed from the same parent cannot
	// merge as one chain.
	nmB2 := filepath.Join(dir, "nm-b2.state")
	mkState("names", pieces[1], nmB2, nmA)
	nmB3 := filepath.Join(dir, "nm-b3.state")
	mkState("names", pieces[1], nmB3, nmA)
	expectErr([]string{"-analysis", "names", "-merge", nmA, nmB2, nmB3}, "chained states")

	// Damaged state file: flip one byte mid-file.
	data, err := os.ReadFile(sumA)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.state")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	expectErr([]string{"-analysis", "summary", "-merge", bad, sumB}, "damaged")

	// Truncated state file.
	trunc := filepath.Join(dir, "trunc.state")
	if err := os.WriteFile(trunc, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	var o, e bytes.Buffer
	if err := run([]string{"-analysis", "summary", "-merge", trunc, sumB}, &o, &e); err == nil {
		t.Fatal("truncated state accepted")
	}
}
