package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// smokeTrace generates a small CAMPUS trace and writes it as a text
// file, returning the path and the raw lines.
func smokeTrace(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	scale := repro.SmallScale()
	scale.Days = 0.25
	records := repro.GenerateCampusRecords(scale)
	if len(records) == 0 {
		t.Fatal("generator produced no records")
	}
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "campus.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func TestRunEveryAnalysis(t *testing.T) {
	path, _ := smokeTrace(t, t.TempDir())
	for _, analysis := range []string{
		"summary", "runs", "blocklife", "hourly", "names", "hierarchy", "reorder",
	} {
		var out, errb bytes.Buffer
		err := run([]string{"-i", path, "-analysis", analysis, "-workers", "2", "-decoders", "2"}, &out, &errb)
		if err != nil {
			t.Fatalf("%s: %v (stderr: %s)", analysis, err, errb.String())
		}
		if out.Len() == 0 {
			t.Fatalf("%s: no output", analysis)
		}
	}
}

// TestRunMultiFileMatchesSingle cuts the trace into two files at a
// line boundary and checks the k-way-merged analysis output is
// byte-identical to the single-file run.
func TestRunMultiFileMatchesSingle(t *testing.T) {
	dir := t.TempDir()
	path, data := smokeTrace(t, dir)
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := len(lines) / 2
	partA := filepath.Join(dir, "day1.trace")
	partB := filepath.Join(dir, "day2.trace")
	if err := os.WriteFile(partA, bytes.Join(lines[:mid], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(partB, bytes.Join(lines[mid:], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	var single, merged, errb bytes.Buffer
	if err := run([]string{"-i", path, "-analysis", "summary"}, &single, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analysis", "summary", partA, partB}, &merged, &errb); err != nil {
		t.Fatal(err)
	}
	if single.String() != merged.String() {
		t.Fatalf("multi-file output differs:\n--- single ---\n%s\n--- merged ---\n%s", single.String(), merged.String())
	}
	// Per-file stats land on stderr for multi-file runs.
	if !strings.Contains(errb.String(), "day1.trace") {
		t.Fatalf("stderr missing per-file stats: %s", errb.String())
	}
}

func TestRunGlobInput(t *testing.T) {
	dir := t.TempDir()
	_, data := smokeTrace(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "a.trace"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-analysis", "summary", filepath.Join(dir, "a.*")}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "join:") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	cases := [][]string{
		{"-i", path, "-analysis", "nosuch"},
		{"-i", filepath.Join(dir, "missing.trace")},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
	}
	// -h prints usage and succeeds; the usage goes to stderr once.
	var outh, errbh bytes.Buffer
	if err := run([]string{"-h"}, &outh, &errbh); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errbh.String(), "-decoders") {
		t.Fatalf("-h usage missing flags: %s", errbh.String())
	}
	// An empty trace is an error, not a zero-division crash.
	empty := filepath.Join(dir, "empty.trace")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-i", empty}, &out, &errb); err == nil {
		t.Fatal("empty trace accepted")
	}
}
