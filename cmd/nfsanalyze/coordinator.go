package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
)

// Coordinator mode: fan the trace set's files across workers, then
// merge the resulting states and render — byte-identical to one
// process reading everything. Two worker pools exist: local child
// processes running `nfsanalyze -partial` (the default), and remote
// nfsworker daemons reached over TCP via internal/dispatch
// (-remote host:port,...), which stream the trace bytes themselves so
// no shared filesystem is needed. Order-independent analyses run
// their workers in parallel and merge independent states;
// order-dependent ones (blocklife, hierarchy, names) run as a
// sequential resume chain, still isolating each piece in its own
// worker (memory isolation and checkpointing rather than
// parallelism). Either pool degrades gracefully: a piece whose
// workers are all dead or exhausted runs locally in-process.

// coordConfig carries everything the coordinator modes need.
type coordConfig struct {
	set      *jobspec.Set
	paths    []string
	workers  int
	decoders int
	timeout  time.Duration
	remote   []string
}

// partitionFiles cuts paths into at most n contiguous groups of
// near-equal byte size (contiguous so a lexically sorted set of daily
// files stays in time order for the chained analyses). Every group
// gets at least one file.
func partitionFiles(paths []string, n int) [][]string {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(paths) {
		n = len(paths)
	}
	sizes := make([]int64, len(paths))
	var total int64
	for i, p := range paths {
		if st, err := os.Stat(p); err == nil {
			sizes[i] = st.Size()
		}
		total += sizes[i]
	}
	groups := make([][]string, 1, n)
	var cum int64
	gi := 0
	for i, p := range paths {
		remFiles := len(paths) - i
		remGroups := n - gi
		if len(groups[gi]) > 0 && gi < n-1 &&
			(cum >= (int64(gi)+1)*total/int64(n) || remFiles == remGroups) {
			groups = append(groups, nil)
			gi++
		}
		groups[gi] = append(groups[gi], p)
		cum += sizes[i]
	}
	return groups
}

// runCoordinator partitions cc.paths across local worker processes,
// collects their partial states, merges, and renders.
func runCoordinator(cc coordConfig, stdout, stderr io.Writer) error {
	groups := partitionFiles(cc.paths, cc.workers)
	seq := cc.set.Sequential()

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("coordinator: locating own binary: %w", err)
	}
	dir, err := os.MkdirTemp("", "nfsanalyze-coord-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(stderr, "nfsanalyze: coordinator: %d workers over %d files\n", len(groups), len(cc.paths))

	stateFiles := make([]string, len(groups))
	for i := range groups {
		stateFiles[i] = filepath.Join(dir, fmt.Sprintf("piece-%03d.state", i))
	}
	spec := cc.set.Spec
	workerArgs := func(i int) []string {
		args := []string{
			"-analysis", spec.Kind,
			"-window", fmt.Sprint(spec.Window),
			"-k", fmt.Sprint(spec.Jump),
			"-start", fmt.Sprint(spec.Start),
			"-phase", fmt.Sprint(spec.Phase),
			"-margin", fmt.Sprint(spec.Margin),
			"-decoders", fmt.Sprint(cc.decoders),
			"-partial", stateFiles[i],
		}
		if seq && i > 0 {
			args = append(args, "-resume", stateFiles[i-1])
		}
		return append(args, groups[i]...)
	}

	if seq && len(groups) > 1 {
		for i := range groups {
			if err := runWorker(exe, i, workerArgs(i), groups[i], cc.timeout, stderr); err != nil {
				return err
			}
		}
	} else {
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for i := range groups {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = runWorker(exe, i, workerArgs(i), groups[i], cc.timeout, stderr)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	partials := make([]*pipeline.Partial, len(stateFiles))
	for i, path := range stateFiles {
		p, err := readPartialFile(path, spec.Kind)
		if err != nil {
			return fmt.Errorf("coordinator: worker %d state: %w", i, err)
		}
		partials[i] = p
	}
	stats, join, err := pipeline.MergePartials(cc.set.Analyzers, partials)
	if err != nil {
		return err
	}
	cc.set.Render(stdout, stats, join)
	return nil
}

// localRetries is the per-piece attempt budget for local subprocess
// workers; retries are paced by localBackoff.
const localRetries = 2

// localBackoff paces local retry attempts: a transient crash gets a
// breather (with jitter, so parallel pieces don't retry in lockstep)
// instead of an instant re-spawn into the same condition.
var localBackoff = dispatch.NewBackoff(100*time.Millisecond, 2*time.Second, 0.3, 1)

// runWorker spawns one `nfsanalyze -partial` child per attempt. Every
// attempt runs under a context deadline: a hung worker is killed —
// process group and all, so decoder children die with it — and the
// piece is retried. State files are deterministic, so a retry after a
// partial write is safe (the file is recreated from scratch).
func runWorker(exe string, idx int, args, files []string, timeout time.Duration, stderr io.Writer) error {
	var lastErr error
	for attempt := 0; attempt < localRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(localBackoff.Delay(attempt - 1))
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		var errBuf bytes.Buffer
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Env = append(os.Environ(), "NFSANALYZE_WORKER=1")
		cmd.Stdout = io.Discard
		cmd.Stderr = &errBuf
		// The worker gets its own process group so a deadline kill
		// takes out anything it spawned, not just the direct child.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		cmd.Cancel = func() error {
			return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		}
		// If the group refuses to die, stop waiting rather than hang
		// the coordinator on a shared pipe.
		cmd.WaitDelay = 5 * time.Second
		err := cmd.Run()
		cancel()
		if err == nil {
			return nil
		}
		reason := err.Error()
		if ctx.Err() == context.DeadlineExceeded {
			reason = fmt.Sprintf("deadline: hung past %s, killed", timeout)
		}
		lastErr = fmt.Errorf("coordinator: worker %d (files %s) failed: %s\n%s",
			idx, strings.Join(files, ", "), reason, strings.TrimSpace(errBuf.String()))
		if attempt < localRetries-1 {
			fmt.Fprintf(stderr, "nfsanalyze: coordinator: worker %d failed, retrying: %s\n", idx, reason)
		}
	}
	return lastErr
}

// runRemoteCoordinator fans the trace set across remote nfsworker
// daemons via internal/dispatch, falls back to local execution for any
// piece the pool could not finish, merges, and renders.
func runRemoteCoordinator(cc coordConfig, stdout, stderr io.Writer) error {
	n := cc.workers
	if n <= 0 {
		// Over-partition relative to the pool so straggler re-dispatch
		// and failure retries have spare pieces to balance with.
		n = 2 * len(cc.remote)
	}
	groups := partitionFiles(cc.paths, n)
	specJSON, err := json.Marshal(cc.set.Spec)
	if err != nil {
		return err
	}

	// Serialize log lines: dispatch logs from many goroutines, and the
	// caller's stderr may be a plain buffer.
	var logMu sync.Mutex
	logf := func(format string, args ...interface{}) {
		logMu.Lock()
		fmt.Fprintf(stderr, "nfsanalyze: "+format+"\n", args...)
		logMu.Unlock()
	}
	logf("coordinator: %d remote workers (%s) over %d files in %d pieces",
		len(cc.remote), strings.Join(cc.remote, ","), len(cc.paths), len(groups))

	validate := func(task dispatch.Task, state []byte) error {
		p, err := pipeline.ReadPartial(bytes.NewReader(state))
		if err != nil {
			return err
		}
		if p.Label != cc.set.Spec.Kind {
			return fmt.Errorf("state holds a %q analysis, not %q", p.Label, cc.set.Spec.Kind)
		}
		return nil
	}
	dcfg := dispatch.Config{
		Addrs:         cc.remote,
		AssignTimeout: cc.timeout,
		Validate:      validate,
		Logf:          logf,
	}

	ctx := context.Background()
	states := make([][]byte, len(groups))
	if cc.set.Sequential() {
		// Order-dependent analyses form a resume chain: piece i+1 needs
		// piece i's state, so dispatch is one piece at a time — each
		// link still gets the full retry/deadline/failover treatment,
		// and a straggling link can be speculatively duplicated.
		var parent []byte
		for i, g := range groups {
			task := dispatch.Task{ID: i, Spec: specJSON, Decoders: cc.decoders, Files: g, Parent: parent}
			results, _, err := dispatch.Run(ctx, dcfg, []dispatch.Task{task})
			if err != nil {
				return err
			}
			if len(results) == 1 {
				states[i] = results[0].State
			} else {
				blob, err := runPieceLocally(ctx, cc, g, parent, logf, i)
				if err != nil {
					return err
				}
				states[i] = blob
			}
			parent = states[i]
		}
	} else {
		tasks := make([]dispatch.Task, len(groups))
		for i, g := range groups {
			tasks[i] = dispatch.Task{ID: i, Spec: specJSON, Decoders: cc.decoders, Files: g}
		}
		results, rstats, err := dispatch.Run(ctx, dcfg, tasks)
		if err != nil {
			return err
		}
		logf("coordinator: dispatch finished: %d/%d pieces remote (dispatched %d, retries %d, speculations %d, duplicates %d)",
			rstats.Completed, len(groups), rstats.Dispatched, rstats.Retries, rstats.Speculations, rstats.Duplicates)
		for _, res := range results {
			states[res.TaskID] = res.State
		}
		for i, blob := range states {
			if blob != nil {
				continue
			}
			b, err := runPieceLocally(ctx, cc, groups[i], nil, logf, i)
			if err != nil {
				return err
			}
			states[i] = b
		}
	}

	partials := make([]*pipeline.Partial, len(states))
	for i, blob := range states {
		p, err := pipeline.ReadPartial(bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("coordinator: piece %d state: %w", i, err)
		}
		if p.Label != cc.set.Spec.Kind {
			return fmt.Errorf("coordinator: piece %d holds a %q analysis, not %q", i, p.Label, cc.set.Spec.Kind)
		}
		partials[i] = p
	}
	stats, join, err := pipeline.MergePartials(cc.set.Analyzers, partials)
	if err != nil {
		return err
	}
	cc.set.Render(stdout, stats, join)
	return nil
}

// runPieceLocally is the graceful-degradation path: when the remote
// pool could not finish a piece, analyze it in-process so the run
// still completes without human intervention.
func runPieceLocally(ctx context.Context, cc coordConfig, files []string, parent []byte, logf func(string, ...interface{}), idx int) ([]byte, error) {
	logf("coordinator: piece %d: worker pool degraded; running locally", idx)
	var pp *pipeline.Partial
	if len(parent) > 0 {
		p, err := pipeline.ReadPartial(bytes.NewReader(parent))
		if err != nil {
			return nil, err
		}
		pp = p
	}
	return jobspec.RunFiles(ctx, cc.set.Spec, files, cc.decoders, pp)
}
