package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/pipeline"
)

// Coordinator mode: fan the trace set's files across worker processes,
// each running `nfsanalyze -partial`, then merge the resulting states
// and render — byte-identical to one process reading everything.
// Order-independent analyses run their workers in parallel and merge
// independent states; order-dependent ones (blocklife, hierarchy,
// names) run as a sequential resume chain, still isolating each piece
// in its own process (memory isolation and checkpointing rather than
// parallelism).

// coordConfig carries everything runCoordinator needs.
type coordConfig struct {
	spec     *analysisSpec
	paths    []string
	workers  int
	decoders int
	opt      analysisOptions
}

// partitionFiles cuts paths into at most n contiguous groups of
// near-equal byte size (contiguous so a lexically sorted set of daily
// files stays in time order for the chained analyses). Every group
// gets at least one file.
func partitionFiles(paths []string, n int) [][]string {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(paths) {
		n = len(paths)
	}
	sizes := make([]int64, len(paths))
	var total int64
	for i, p := range paths {
		if st, err := os.Stat(p); err == nil {
			sizes[i] = st.Size()
		}
		total += sizes[i]
	}
	groups := make([][]string, 1, n)
	var cum int64
	gi := 0
	for i, p := range paths {
		remFiles := len(paths) - i
		remGroups := n - gi
		if len(groups[gi]) > 0 && gi < n-1 &&
			(cum >= (int64(gi)+1)*total/int64(n) || remFiles == remGroups) {
			groups = append(groups, nil)
			gi++
		}
		groups[gi] = append(groups[gi], p)
		cum += sizes[i]
	}
	return groups
}

// runCoordinator partitions cc.paths across worker processes, collects
// their partial states, merges, and renders.
func runCoordinator(cc coordConfig, stdout, stderr io.Writer) error {
	groups := partitionFiles(cc.paths, cc.workers)
	seq := false
	for _, a := range cc.spec.analyzers {
		if pipeline.IsSequential(a) {
			seq = true
		}
	}

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("coordinator: locating own binary: %w", err)
	}
	dir, err := os.MkdirTemp("", "nfsanalyze-coord-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(stderr, "nfsanalyze: coordinator: %d workers over %d files\n", len(groups), len(cc.paths))

	stateFiles := make([]string, len(groups))
	for i := range groups {
		stateFiles[i] = filepath.Join(dir, fmt.Sprintf("piece-%03d.state", i))
	}
	workerArgs := func(i int) []string {
		args := []string{
			"-analysis", cc.spec.kind,
			"-window", fmt.Sprint(cc.opt.window),
			"-k", fmt.Sprint(cc.opt.jump),
			"-start", fmt.Sprint(cc.opt.start),
			"-phase", fmt.Sprint(cc.opt.phase),
			"-margin", fmt.Sprint(cc.opt.margin),
			"-decoders", fmt.Sprint(cc.decoders),
			"-partial", stateFiles[i],
		}
		if seq && i > 0 {
			args = append(args, "-resume", stateFiles[i-1])
		}
		return append(args, groups[i]...)
	}

	if seq && len(groups) > 1 {
		for i := range groups {
			if err := runWorker(exe, i, workerArgs(i), groups[i], stderr); err != nil {
				return err
			}
		}
	} else {
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for i := range groups {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = runWorker(exe, i, workerArgs(i), groups[i], stderr)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	partials := make([]*pipeline.Partial, len(stateFiles))
	for i, path := range stateFiles {
		p, err := readPartialFile(path, cc.spec.kind)
		if err != nil {
			return fmt.Errorf("coordinator: worker %d state: %w", i, err)
		}
		partials[i] = p
	}
	stats, join, err := pipeline.MergePartials(cc.spec.analyzers, partials)
	if err != nil {
		return err
	}
	cc.spec.render(stdout, stats, join)
	return nil
}

// runWorker spawns one `nfsanalyze -partial` child, retrying once on
// failure (a transient crash re-analyzes its files; state files are
// deterministic, so a retry is safe).
func runWorker(exe string, idx int, args, files []string, stderr io.Writer) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		var errBuf bytes.Buffer
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), "NFSANALYZE_WORKER=1")
		cmd.Stdout = io.Discard
		cmd.Stderr = &errBuf
		err := cmd.Run()
		if err == nil {
			return nil
		}
		lastErr = fmt.Errorf("coordinator: worker %d (files %s) failed: %v\n%s",
			idx, strings.Join(files, ", "), err, strings.TrimSpace(errBuf.String()))
		if attempt == 0 {
			fmt.Fprintf(stderr, "nfsanalyze: coordinator: worker %d failed, retrying: %v\n", idx, err)
		}
	}
	return lastErr
}
