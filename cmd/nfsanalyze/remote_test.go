package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/jobspec"
	"repro/internal/pipeline"
)

// jobRunner is the worker-side execution hook backed by the shared
// jobspec machinery — the same runner cmd/nfsworker wires up, here
// in-process so the tests control fault injection directly.
func jobRunner(ctx context.Context, specJSON, parent []byte, files []string, decoders int) ([]byte, error) {
	var spec jobspec.Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, err
	}
	var pp *pipeline.Partial
	if len(parent) > 0 {
		p, err := pipeline.ReadPartial(bytes.NewReader(parent))
		if err != nil {
			return nil, err
		}
		pp = p
	}
	return jobspec.RunFiles(ctx, spec, files, decoders, pp)
}

// startAnalysisWorker serves w on loopback and returns its address.
func startAnalysisWorker(t *testing.T, w *dispatch.Worker) string {
	t.Helper()
	if w.Runner == nil {
		w.Runner = jobRunner
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(lis)
	t.Cleanup(w.Drain)
	return lis.Addr().String()
}

// TestRemoteCoordinatorMatchesDirect runs -coordinator -remote against
// healthy in-process workers and checks the rendered tables are
// byte-identical to the single-process run, for parallel and chained
// analyses alike.
func TestRemoteCoordinatorMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pdir := filepath.Join(dir, "pieces")
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		t.Fatal(err)
	}
	pieces := splitQuiescent(t, path, 4, pdir, true)
	addrs := startAnalysisWorker(t, &dispatch.Worker{}) + "," + startAnalysisWorker(t, &dispatch.Worker{})
	for _, kind := range []string{"summary", "runs", "blocklife", "names"} {
		want := directOutput(t, kind, path)
		var out, errb bytes.Buffer
		args := append([]string{"-analysis", kind, "-coordinator", "-remote", addrs, "-workers", "4"}, pieces...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("%s: %v (stderr: %s)", kind, err, errb.String())
		}
		if out.String() != want {
			t.Fatalf("%s: remote output differs:\n--- direct ---\n%s--- remote ---\n%s", kind, want, out.String())
		}
		if !strings.Contains(errb.String(), "remote workers") {
			t.Fatalf("%s: stderr missing remote banner: %s", kind, errb.String())
		}
	}
}

// TestRemoteCoordinatorSurvivesFaults drives every injected failure —
// hang past the deadline, killed mid-result-stream, corrupt state
// rejected by checksum — through a flaky worker and checks the output
// stays byte-identical to the single-process run.
func TestRemoteCoordinatorSurvivesFaults(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pdir := filepath.Join(dir, "pieces")
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		t.Fatal(err)
	}
	pieces := splitQuiescent(t, path, 4, pdir, false)
	for _, kind := range []string{"summary", "names"} {
		want := directOutput(t, kind, path)
		healthy := startAnalysisWorker(t, &dispatch.Worker{})
		flaky := startAnalysisWorker(t, &dispatch.Worker{
			Exit: func(int) {}, // crash = connection death; process survives for retries
			FaultFor: func(seq int) dispatch.Fault {
				return map[int]dispatch.Fault{
					1: dispatch.FaultHang,
					2: dispatch.FaultCrash,
					3: dispatch.FaultCorrupt,
				}[seq]
			},
		})
		var out, errb bytes.Buffer
		args := append([]string{
			"-analysis", kind, "-coordinator",
			"-remote", healthy + "," + flaky,
			"-workers", "4", "-worker-timeout", "2s",
		}, pieces...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("%s: %v (stderr: %s)", kind, err, errb.String())
		}
		if out.String() != want {
			t.Fatalf("%s: output with faults differs:\n--- direct ---\n%s--- faulty ---\n%s", kind, want, out.String())
		}
	}
}

// TestRemoteCoordinatorFallsBackWhenPoolDead points -remote at a dead
// endpoint: every piece must degrade to local execution and the output
// must still be byte-identical.
func TestRemoteCoordinatorFallsBackWhenPoolDead(t *testing.T) {
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	pieces := splitQuiescent(t, path, 2, dir, false)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := lis.Addr().String()
	lis.Close()
	for _, kind := range []string{"summary", "names"} {
		want := directOutput(t, kind, path)
		var out, errb bytes.Buffer
		args := append([]string{"-analysis", kind, "-coordinator", "-remote", dead}, pieces...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("%s: %v (stderr: %s)", kind, err, errb.String())
		}
		if out.String() != want {
			t.Fatalf("%s: fallback output differs:\n--- direct ---\n%s--- fallback ---\n%s", kind, want, out.String())
		}
		if !strings.Contains(errb.String(), "running locally") {
			t.Fatalf("%s: stderr missing local-fallback note: %s", kind, errb.String())
		}
	}
}

// TestLocalWorkerDeadlineKillsHungWorker pins satellite behavior: a
// local -coordinator worker that hangs is killed (process group and
// all) when -worker-timeout expires, retried, and the run fails with a
// deadline error instead of hanging forever.
func TestLocalWorkerDeadlineKillsHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	path, _ := smokeTrace(t, dir)
	t.Setenv("NFSANALYZE_TEST_HANG", "1")
	start := time.Now()
	var out, errb bytes.Buffer
	err := run([]string{
		"-analysis", "summary", "-coordinator",
		"-workers", "1", "-worker-timeout", "300ms", path,
	}, &out, &errb)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("hung worker did not fail the run (stderr: %s)", errb.String())
	}
	if !strings.Contains(err.Error(), "hung past") {
		t.Fatalf("error %q does not report the deadline kill", err)
	}
	if !strings.Contains(errb.String(), "retrying") {
		t.Fatalf("stderr missing the retry between attempts: %s", errb.String())
	}
	// Two 300ms attempts plus backoff: anything near a minute means the
	// kill never landed and cmd.Wait rode the full hang.
	if elapsed > 30*time.Second {
		t.Fatalf("run took %v; the process-group kill apparently failed", elapsed)
	}
}

// TestPartitionFiles pins the partitioner: contiguous groups, every
// group non-empty, order preserved.
func TestPartitionFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 5; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%d", i))
		if err := os.WriteFile(p, bytes.Repeat([]byte("x"), (i+1)*100), 0o600); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	for _, n := range []int{1, 2, 3, 5, 9} {
		groups := partitionFiles(paths, n)
		if len(groups) > n || len(groups) > len(paths) {
			t.Fatalf("n=%d: %d groups", n, len(groups))
		}
		var flat []string
		for _, g := range groups {
			if len(g) == 0 {
				t.Fatalf("n=%d: empty group", n)
			}
			flat = append(flat, g...)
		}
		if strings.Join(flat, ",") != strings.Join(paths, ",") {
			t.Fatalf("n=%d: groups reorder or drop files: %v", n, groups)
		}
	}
}
