// nfsgen generates synthetic CAMPUS or EECS NFS traffic and writes it
// as a text trace (default) or a pcap capture file (-pcap), reproducing
// the systems of "Passive NFS Tracing of Email and Research Workloads"
// (FAST 2003) at a configurable scale.
//
// Usage:
//
//	nfsgen -system campus -users 12 -days 7 -o campus.trace
//	nfsgen -system eecs -clients 4 -days 1 -o eecs.trace
//	nfsgen -system campus -users 2 -days 0.05 -pcap -o campus.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/pcap"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	system := flag.String("system", "campus", "workload to generate: campus or eecs")
	users := flag.Int("users", 12, "CAMPUS user count")
	clients := flag.Int("clients", 4, "EECS workstation count")
	days := flag.Float64("days", 7, "trace window in days (0 = Sunday 00:00)")
	seed := flag.Int64("seed", 20011021, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	asPcap := flag.Bool("pcap", false, "emit a pcap capture instead of a text trace (slow; use short windows)")
	asBinary := flag.Bool("binary", false, "emit the compact binary trace format")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *asPcap {
		if err := generatePcap(w, *system, *users, *clients, *days, *seed); err != nil {
			fatal(err)
		}
		return
	}

	tw := core.NewFormatWriter(w, *asBinary)
	var written int64
	sink := client.FuncSink(func(rec *core.Record, _ int) {
		if err := tw.Write(rec); err != nil {
			fatal(err)
		}
		written++
	})
	sorter := client.NewSortingSink(sink)
	switch *system {
	case "campus":
		workload.NewCampus(workload.DefaultCampusConfig(*users, *days, *seed), sorter).Run()
	case "eecs":
		workload.NewEECS(workload.DefaultEECSConfig(*clients, *days, *seed), sorter).Run()
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	sorter.Flush()
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "nfsgen: wrote %d records\n", written)
}

// pcapSink adapts a pcap writer to the client's packet tap. Packets are
// buffered and sorted because nfsiod jitter makes emission times
// locally out of order.
type pcapSink struct {
	packets []pkt
}

type pkt struct {
	t    float64
	data []byte
}

func (s *pcapSink) Packet(t float64, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	s.packets = append(s.packets, pkt{t, cp})
}

func generatePcap(w *os.File, system string, users, clients int, days float64, seed int64) error {
	records := &client.SliceSink{}
	ps := &pcapSink{}
	switch system {
	case "campus":
		cfg := workload.DefaultCampusConfig(users, days, seed)
		gen := workload.NewCampus(cfg, records)
		for i, cl := range gen.Clients() {
			cl.EnableWireTap(client.NewWireTap(ps, cl.IP, workload.ServerIPCampus, wire.JumboMTU))
			_ = i
		}
		gen.Run()
	case "eecs":
		cfg := workload.DefaultEECSConfig(clients, days, seed)
		gen := workload.NewEECS(cfg, records)
		for _, cl := range gen.Clients() {
			cl.EnableWireTap(client.NewWireTap(ps, cl.IP, workload.ServerIPEECS, wire.StandardMTU))
		}
		gen.Run()
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	// Sort packets by time and write.
	sortPackets(ps.packets)
	pw, err := pcap.NewWriter(w, true)
	if err != nil {
		return err
	}
	for _, p := range ps.packets {
		if err := pw.WritePacket(p.t, p.data); err != nil {
			return err
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nfsgen: wrote %d packets (NFSv%d-era capture)\n", pw.Count(), nfs.V3)
	return nil
}

func sortPackets(ps []pkt) {
	// Insertion sort: the stream is nearly sorted.
	for i := 1; i < len(ps); i++ {
		j := i
		for j > 0 && ps[j-1].t > ps[j].t {
			ps[j-1], ps[j] = ps[j], ps[j-1]
			j--
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfsgen:", err)
	os.Exit(1)
}
