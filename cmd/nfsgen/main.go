// nfsgen generates synthetic CAMPUS or EECS NFS traffic and writes it
// as a text trace (default) or a pcap capture file (-pcap), reproducing
// the systems of "Passive NFS Tracing of Email and Research Workloads"
// (FAST 2003) at a configurable scale.
//
// Usage:
//
//	nfsgen -system campus -users 12 -days 7 -o campus.trace
//	nfsgen -system eecs -clients 4 -days 1 -o eecs.trace
//	nfsgen -system campus -users 2 -days 0.05 -pcap -o campus.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/pcap"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nfsgen:", err)
		os.Exit(1)
	}
}

// run is main's logic behind injectable streams, so the cmd tree is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nfsgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	system := fs.String("system", "campus", "workload to generate: campus or eecs")
	users := fs.Int("users", 12, "CAMPUS user count")
	clients := fs.Int("clients", 4, "EECS workstation count")
	days := fs.Float64("days", 7, "trace window in days (0 = Sunday 00:00)")
	seed := fs.Int64("seed", 20011021, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	asPcap := fs.Bool("pcap", false, "emit a pcap capture instead of a text trace (slow; use short windows)")
	asBinary := fs.Bool("binary", false, "emit the compact binary trace format")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *asPcap {
		return generatePcap(w, stderr, *system, *users, *clients, *days, *seed)
	}

	tw := core.NewFormatWriter(w, *asBinary)
	var written int64
	var writeErr error
	sink := client.FuncSink(func(rec *core.Record, _ int) {
		if writeErr != nil {
			return
		}
		if err := tw.Write(rec); err != nil {
			writeErr = err
			return
		}
		written++
	})
	sorter := client.NewSortingSink(sink)
	switch *system {
	case "campus":
		workload.NewCampus(workload.DefaultCampusConfig(*users, *days, *seed), sorter).Run()
	case "eecs":
		workload.NewEECS(workload.DefaultEECSConfig(*clients, *days, *seed), sorter).Run()
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	sorter.Flush()
	if writeErr != nil {
		return writeErr
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "nfsgen: wrote %d records\n", written)
	return nil
}

// pcapSink adapts a pcap writer to the client's packet tap. Packets are
// buffered and sorted because nfsiod jitter makes emission times
// locally out of order.
type pcapSink struct {
	packets []pkt
}

type pkt struct {
	t    float64
	data []byte
}

func (s *pcapSink) Packet(t float64, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	s.packets = append(s.packets, pkt{t, cp})
}

func generatePcap(w io.Writer, stderr io.Writer, system string, users, clients int, days float64, seed int64) error {
	records := &client.SliceSink{}
	ps := &pcapSink{}
	switch system {
	case "campus":
		cfg := workload.DefaultCampusConfig(users, days, seed)
		gen := workload.NewCampus(cfg, records)
		for _, cl := range gen.Clients() {
			cl.EnableWireTap(client.NewWireTap(ps, cl.IP, workload.ServerIPCampus, wire.JumboMTU))
		}
		gen.Run()
	case "eecs":
		cfg := workload.DefaultEECSConfig(clients, days, seed)
		gen := workload.NewEECS(cfg, records)
		for _, cl := range gen.Clients() {
			cl.EnableWireTap(client.NewWireTap(ps, cl.IP, workload.ServerIPEECS, wire.StandardMTU))
		}
		gen.Run()
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	// Sort packets by time and write.
	sortPackets(ps.packets)
	pw, err := pcap.NewWriter(w, true)
	if err != nil {
		return err
	}
	for _, p := range ps.packets {
		if err := pw.WritePacket(p.t, p.data); err != nil {
			return err
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "nfsgen: wrote %d packets (NFSv%d-era capture)\n", pw.Count(), nfs.V3)
	return nil
}

func sortPackets(ps []pkt) {
	// Insertion sort: the stream is nearly sorted.
	for i := 1; i < len(ps); i++ {
		j := i
		for j > 0 && ps[j-1].t > ps[j].t {
			ps[j-1], ps[j] = ps[j], ps[j-1]
			j--
		}
	}
}
