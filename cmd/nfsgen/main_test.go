package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTextTrace generates a short CAMPUS window and checks the text
// trace and the record count on stderr.
func TestRunTextTrace(t *testing.T) {
	var out, errb bytes.Buffer
	// 0.3 days reaches Sunday daytime; shorter windows sit in the
	// midnight diurnal trough and legitimately emit nothing.
	if err := run([]string{"-system", "campus", "-users", "2", "-days", "0.3"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no trace output")
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Fatalf("stderr missing record count: %s", errb.String())
	}
	// Text traces are line-oriented with the paper's C/R direction field.
	first := strings.SplitN(out.String(), "\n", 2)[0]
	fields := strings.Fields(first)
	if len(fields) < 6 || (fields[1] != "C" && fields[1] != "R") {
		t.Fatalf("first line does not look like a trace record: %q", first)
	}
}

// TestRunDeterministic: same seed, byte-identical trace.
func TestRunDeterministic(t *testing.T) {
	gen := func(seed string) []byte {
		t.Helper()
		var out, errb bytes.Buffer
		if err := run([]string{"-system", "eecs", "-clients", "1", "-days", "0.02", "-seed", seed}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Bytes()
	}
	a, b := gen("7"), gen("7")
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed traces differ")
	}
	if bytes.Equal(a, gen("8")) {
		t.Fatal("different-seed traces identical")
	}
}

// TestRunPcap checks the -pcap path emits a nanosecond-resolution pcap
// file through -o.
func TestRunPcap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eecs.pcap")
	var out, errb bytes.Buffer
	if err := run([]string{"-system", "eecs", "-clients", "1", "-days", "0.02", "-pcap", "-o", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24 {
		t.Fatalf("pcap too short: %d bytes", len(data))
	}
	// Nanosecond pcap magic, little-endian on the wire.
	if !bytes.Equal(data[:4], []byte{0x4D, 0x3C, 0xB2, 0xA1}) {
		t.Fatalf("bad pcap magic: % x", data[:4])
	}
	if !strings.Contains(errb.String(), "packets") {
		t.Fatalf("stderr missing packet count: %s", errb.String())
	}
}

// TestRunErrors covers the failure paths.
func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-system", "nosuch"},
		{"-system", "nosuch", "-pcap"},
		{"-badflag"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
	// -h prints usage and succeeds.
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(errb.String(), "-system") {
		t.Fatalf("-h usage missing flags: %s", errb.String())
	}
}
