GO ?= go

.PHONY: help build test race bench vet fmt-check check

help: ## list targets
	@grep -E '^[a-z-]+:.*##' $(MAKEFILE_LIST) | awk -F':.*## ' '{printf "  %-10s %s\n", $$1, $$2}'

build: ## compile every package and tool
	$(GO) build ./...

test: ## run the full test suite
	$(GO) test ./...

race: ## run the full test suite under the race detector
	$(GO) test -race ./...

bench: ## run the pipeline scaling and analysis benchmarks
	$(GO) test -run xxx -bench 'BenchmarkPipelineWorkers' -benchmem .
	$(GO) test -run xxx -bench . -benchmem ./internal/pipeline

vet: ## go vet every package
	$(GO) vet ./...

fmt-check: ## fail if any file needs gofmt
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: vet build race fmt-check ## everything CI runs
