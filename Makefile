GO ?= go

.PHONY: help build test race race-server bench fuzz cover vet fmt-check staticcheck check nfsbench-smoke mond-smoke merge-smoke dist-smoke

help: ## list targets
	@grep -E '^[a-z-]+:.*##' $(MAKEFILE_LIST) | awk -F':.*## ' '{printf "  %-10s %s\n", $$1, $$2}'

build: ## compile every package and tool
	$(GO) build ./...

test: ## run the full test suite
	$(GO) test ./...

race: ## run the full test suite under the race detector
	$(GO) test -race ./...

race-server: ## hammer the concurrent serving stack under -race (torture tests, repeated runs)
	$(GO) test -race -count=2 -timeout 10m ./internal/vfs ./internal/server ./internal/client ./internal/wire ./cmd/nfsbench

# BENCH_COUNT > 1 emits benchstat-friendly repeated runs:
#   make bench BENCH_COUNT=10 > new.txt && benchstat old.txt new.txt
BENCH_COUNT ?= 5

bench: ## run the pipeline scaling, ingest, and analysis benchmarks (benchstat-friendly)
	$(GO) test -run xxx -bench 'BenchmarkPipelineWorkers' -benchmem -count $(BENCH_COUNT) .
	$(GO) test -run xxx -bench . -benchmem -count $(BENCH_COUNT) ./internal/pipeline
	$(GO) test -run xxx -bench 'BenchmarkIngest|BenchmarkUnmarshalRecordBytes|BenchmarkAppendMarshal|BenchmarkInternFH' -benchmem -count $(BENCH_COUNT) ./internal/core

bench-smoke: ## run the ingest+pipeline benchmarks once (CI regression visibility, not gating)
	$(GO) test -run xxx -bench 'BenchmarkPipelineWorkers' -benchmem -benchtime 3x .
	$(GO) test -run xxx -bench . -benchmem -benchtime 3x ./internal/pipeline
	$(GO) test -run xxx -bench 'BenchmarkIngest|BenchmarkUnmarshalRecordBytes|BenchmarkAppendMarshal|BenchmarkInternFH' -benchmem -benchtime 3x ./internal/core

nfsbench-smoke: ## drive the socket stack once with the load harness, closed and open loop (CI regression visibility, not gating)
	$(GO) run ./cmd/nfsbench -seed 1 -n 5000 -T 2 -c 2 -files 32 -filesize 65536 -interval 0 -json /dev/null
	$(GO) run ./cmd/nfsbench -seed 1 -n 2000 -T 2 -rate 10000 -files 32 -filesize 65536 -interval 0 -json /dev/null

mond-smoke: ## run nfsmond against live nfsbench load and assert /metrics sanity (CI, non-gating)
	bash scripts/mond_smoke.sh

merge-smoke: ## generate, split, and analyze a trace distributed three ways; assert byte-identical tables (CI, gating)
	bash scripts/merge_smoke.sh

dist-smoke: ## remote dispatch over TCP with crash and hang fault injection; assert byte-identical tables and re-dispatch (CI, gating)
	bash scripts/dist_smoke.sh

fuzz: ## run each native fuzz target for 10s
	$(GO) test -run xxx -fuzz FuzzTextRecord -fuzztime 10s ./internal/core
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/core
	$(GO) test -run xxx -fuzz FuzzIngestEquivalence -fuzztime 10s ./internal/core
	$(GO) test -run xxx -fuzz FuzzStateDecode -fuzztime 10s ./internal/pipeline

cover: ## run the suite with coverage and enforce the committed floor
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./tools/covercheck -profile cover.out -baseline scripts/coverage_baseline.txt

cover-baseline: ## regenerate the coverage floor from a fresh run (commit the result deliberately)
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./tools/covercheck -profile cover.out -baseline scripts/coverage_baseline.txt -write

vet: ## go vet every package
	$(GO) vet ./...

# CI installs a pinned staticcheck; offline dev machines without the
# binary skip the target rather than failing.
staticcheck: ## run staticcheck if installed (CI pins the version)
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)"; \
	fi

fmt-check: ## fail if any file needs gofmt
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: vet staticcheck build race race-server fmt-check ## everything CI runs
