package repro

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// Shared small traces: generated once per test binary.
var (
	genOnce  sync.Once
	campusTr *Trace
	eecsTr   *Trace
)

func traces(t *testing.T) (*Trace, *Trace) {
	t.Helper()
	if testing.Short() {
		t.Skip("trace generation")
	}
	genOnce.Do(func() {
		s := SmallScale()
		s.Days = 2        // Sunday + Monday so peak hours exist
		s.CampusUsers = 5 // enough users for stable size distributions
		campusTr = GenerateCampus(s)
		eecsTr = GenerateEECS(s)
	})
	return campusTr, eecsTr
}

func TestGenerateTraces(t *testing.T) {
	campus, eecs := traces(t)
	if len(campus.Ops) < 5000 {
		t.Fatalf("campus ops %d", len(campus.Ops))
	}
	if len(eecs.Ops) < 10000 {
		t.Fatalf("eecs ops %d", len(eecs.Ops))
	}
	if campus.Join.OrphanReplies != 0 || eecs.Join.OrphanReplies != 0 {
		t.Fatal("orphan replies in lossless traces")
	}
}

func TestTableOutputs(t *testing.T) {
	campus, eecs := traces(t)
	for name, fn := range map[string]func(*Trace, *Trace) string{
		"Table1": Table1, "Table2": Table2, "Table3": Table3,
		"Table4": Table4, "Table5": Table5,
		"Figure1": Figure1, "Figure2": Figure2, "Figure3": Figure3,
		"Figure4": Figure4, "Figure5": Figure5,
	} {
		out := fn(campus, eecs)
		if len(out) < 100 || !strings.Contains(out, "paper") {
			t.Errorf("%s output suspicious:\n%s", name, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	campus, eecs := traces(t)
	out := Table2(campus, eecs)
	if !strings.Contains(out, "Read/Write bytes ratio") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestExperimentOutputs(t *testing.T) {
	campus, _ := traces(t)
	if out := ExpNfsiod(); !strings.Contains(out, "nfsiods") {
		t.Errorf("nfsiod: %s", out)
	}
	if out := ExpNames(campus); !strings.Contains(out, "lock") {
		t.Errorf("names: %s", out)
	}
	if out := ExpReadahead(); !strings.Contains(out, "speedup") {
		t.Errorf("readahead: %s", out)
	}
	if out := ExpHierarchy(campus); !strings.Contains(out, "coverage") {
		t.Errorf("hierarchy: %s", out)
	}
	if out := TopProcs(campus); !strings.Contains(out, "read") {
		t.Errorf("procs: %s", out)
	}
}

func TestExpLossSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation")
	}
	s := SmallScale()
	s.Days = 0.5
	out := ExpLoss(s)
	if !strings.Contains(out, "port drop rate") {
		t.Fatalf("loss: %s", out)
	}
}

func TestTraceRoundTripThroughTextFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation")
	}
	s := SmallScale()
	s.Days = 0.2
	records := GenerateCampusRecords(s)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) == 0 {
		t.Fatal("no ops after round trip")
	}
	// Joining the original records must agree with the round-tripped.
	direct := GenerateCampus(s)
	if len(tr.Ops) != len(direct.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(tr.Ops), len(direct.Ops))
	}
}

func TestAnonymizeRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation")
	}
	s := SmallScale()
	s.Days = 0.1
	records := GenerateCampusRecords(s)
	// Find a private name before anonymization.
	sawPico := false
	for _, r := range records {
		if strings.HasPrefix(r.Name, "pico.") {
			sawPico = true
		}
	}
	Anonymize(records, 99)
	for _, r := range records {
		if strings.HasPrefix(r.Name, "pico.") && sawPico {
			// pico.NNN has its base anonymized but the suffix rule may
			// keep the dot; the exact literal must not survive.
			t.Fatalf("raw composer name survived: %q", r.Name)
		}
	}
	// Well-known names pass through by config.
	sawInbox := false
	for _, r := range records {
		if r.Name == "inbox" || r.Name == "inbox.lock" {
			sawInbox = true
		}
	}
	if !sawInbox {
		t.Fatal("pass-through names vanished")
	}
}
