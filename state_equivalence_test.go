package repro

import (
	"testing"
)

// This file is the end-to-end determinism guarantee for serialized
// partial state, mirroring pipeline_equivalence_test.go one axis out:
// every table and figure must render byte-identically whether each
// analysis runs as one pass or as a chain of serialized partial states
// (Trace.Pieces), at any piece count × worker count combination. Each
// piece boundary exercises the full encode → decode → resume surface of
// every analyzer, so this is the golden grid for nfsanalyze
// -partial/-resume/-merge semantics at the experiments level (the CLI
// and coordinator grids live in cmd/nfsanalyze).
func TestPartialStateByteIdenticalTables(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	campus := GenerateCampus(scale)
	eecs := GenerateEECS(scale)

	want := renderedExperiments(campus, eecs)

	for _, pieces := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			campus.Pieces, eecs.Pieces = pieces, pieces
			campus.Pipeline.Workers, eecs.Pipeline.Workers = workers, workers
			got := renderedExperiments(campus, eecs)
			for name, w := range want {
				if got[name] != w {
					t.Errorf("pieces=%d workers=%d: %s differs from the single-pass run:\n--- single ---\n%s\n--- partitioned ---\n%s",
						pieces, workers, name, w, got[name])
				}
			}
		}
	}
	campus.Pieces, eecs.Pieces = 0, 0
	campus.Pipeline.Workers, eecs.Pipeline.Workers = 0, 0
}
