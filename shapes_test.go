package repro

// Shape tests: assert that the simulated traces reproduce the paper's
// qualitative findings. These are the reproduction's acceptance tests —
// each corresponds to a row of EXPERIMENTS.md. Bands are deliberately
// loose (small-scale traces are noisy); the point is that every
// ordering and contrast the paper reports holds.

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/workload"
)

func TestShapeTable2Ratios(t *testing.T) {
	campus, eecs := traces(t)
	cs := analysis.Summarize(campus.Ops, campus.Days)
	es := analysis.Summarize(eecs.Ops, eecs.Days)

	// CAMPUS reads dominate (paper 2.68 bytes / 3.01 ops).
	if r := cs.ReadWriteByteRatio(); r < 1.5 || r > 4.5 {
		t.Errorf("CAMPUS byte ratio %.2f, want ≈2.7", r)
	}
	// EECS writes dominate (paper 0.56 bytes / 0.69 ops).
	if r := es.ReadWriteByteRatio(); r > 1.3 {
		t.Errorf("EECS byte ratio %.2f, want <1", r)
	}
	if r := es.ReadWriteOpRatio(); r > 1.0 {
		t.Errorf("EECS op ratio %.2f, want <1", r)
	}
	// CAMPUS is data-dominated; EECS is metadata-dominated.
	if f := cs.MetadataFraction(); f > 0.35 {
		t.Errorf("CAMPUS metadata fraction %.2f, want small", f)
	}
	if f := es.MetadataFraction(); f < 0.5 {
		t.Errorf("EECS metadata fraction %.2f, want large", f)
	}
	// CAMPUS is the busier system per unit of data moved... and their
	// contrast must be present in both directions.
	if cs.ReadWriteByteRatio() < es.ReadWriteByteRatio() {
		t.Error("CAMPUS should be more read-heavy than EECS")
	}
}

func TestShapeBlockLifetimes(t *testing.T) {
	campus, eecs := traces(t)
	span := campus.Days * workload.Day
	cb := analysis.BlockLife(campus.Ops, 0, span/2, span/2)
	eb := analysis.BlockLife(eecs.Ops, 0, span/2, span/2)

	// EECS: most blocks die in under a second (paper >50%).
	if f := eb.Lifetimes.At(1.0); f < 0.35 {
		t.Errorf("EECS sub-second deaths %.2f, want >0.35", f)
	}
	// CAMPUS: blocks live far longer; few die sub-second.
	if f := cb.Lifetimes.At(1.0); f > 0.10 {
		t.Errorf("CAMPUS sub-second deaths %.2f, want ≈0", f)
	}
	if m := cb.Lifetimes.Median(); m < 10*60 {
		t.Errorf("CAMPUS median lifetime %.0fs, want ≥10min", m)
	}
	// CAMPUS deaths are almost all overwrites (paper 99.1%).
	if p := cb.DeathPct(analysis.DeathOverwrite); p < 85 {
		t.Errorf("CAMPUS overwrite deaths %.1f%%, want ≈99%%", p)
	}
	// EECS has a substantial deletion-death population (paper 51.8%).
	if p := eb.DeathPct(analysis.DeathDelete); p < 15 {
		t.Errorf("EECS delete deaths %.1f%%, want substantial", p)
	}
	// EECS has extension births; CAMPUS essentially none.
	if p := eb.BirthPct(analysis.BirthExtension); p < 3 {
		t.Errorf("EECS extension births %.1f%%, want >3%%", p)
	}
	if p := cb.BirthPct(analysis.BirthExtension); p > 1 {
		t.Errorf("CAMPUS extension births %.1f%%, want ≈0", p)
	}
}

func TestShapeRunMix(t *testing.T) {
	campus, eecs := traces(t)
	ct := analysis.Tabulate(analysis.DetectRuns(campus.Ops, analysis.DefaultRunConfig(10)))
	et := analysis.Tabulate(analysis.DetectRuns(eecs.Ops, analysis.DefaultRunConfig(5)))

	// EECS is utterly write-run dominated (paper 82.3%).
	if et.WritePct < 65 {
		t.Errorf("EECS write runs %.1f%%, want >65%%", et.WritePct)
	}
	// CAMPUS reads and writes are comparable (53/44 in the paper).
	if ct.ReadPct < 30 || ct.ReadPct > 70 {
		t.Errorf("CAMPUS read runs %.1f%%", ct.ReadPct)
	}
	// Read-write runs are rare and overwhelmingly random.
	if ct.ReadWritePct > 10 {
		t.Errorf("CAMPUS r-w runs %.1f%%, want few", ct.ReadWritePct)
	}
	if ct.ReadWrite[analysis.PatternRandom] < 80 && ct.ReadWritePct > 0.5 {
		t.Errorf("CAMPUS r-w random %.1f%%, want ≈95%%", ct.ReadWrite[analysis.PatternRandom])
	}
	// Write runs are rarely random after processing (paper 9 / 2.1).
	if ct.Write[analysis.PatternRandom] > 20 {
		t.Errorf("CAMPUS random writes %.1f%%", ct.Write[analysis.PatternRandom])
	}
	if et.Write[analysis.PatternRandom] > 10 {
		t.Errorf("EECS random writes %.1f%%", et.Write[analysis.PatternRandom])
	}
}

func TestShapeFigure1Knee(t *testing.T) {
	campus, _ := traces(t)
	pts := analysis.ReorderSweep(campus.Ops, []float64{0, 5, 10, 50})
	if pts[0].SwappedPct != 0 {
		t.Fatalf("zero window swapped %.2f%%", pts[0].SwappedPct)
	}
	if pts[1].SwappedPct <= 0 {
		t.Fatal("no reordering detected at 5ms — the nfsiod model is off")
	}
	// Knee: most of the 50ms swap mass is already captured at 10ms.
	if pts[2].SwappedPct < 0.6*pts[3].SwappedPct {
		t.Errorf("no knee: 10ms=%.2f%% vs 50ms=%.2f%%",
			pts[2].SwappedPct, pts[3].SwappedPct)
	}
}

func TestShapeFigure2SizeMass(t *testing.T) {
	campus, _ := traces(t)
	runs := analysis.DetectRuns(campus.Ops, analysis.DefaultRunConfig(10))
	pts := analysis.SizeProfile(runs)
	var at1M float64
	for _, p := range pts {
		if p.SizeCeil == 1<<20 {
			at1M = p.TotalPct
		}
	}
	// CAMPUS bytes come overwhelmingly from files >1MB (mailboxes). At
	// this small scale the inbox-size draw is noisy (the default-scale
	// run in EXPERIMENTS.md shows 27% ≤1MB), so the band is loose: a
	// substantial share must come from >1MB files.
	if at1M > 70 {
		t.Errorf("%.1f%% of CAMPUS bytes from files ≤1MB, want well under", at1M)
	}
	// And the small-file population (locks, dot files, composers) must
	// contribute almost nothing.
	var at64k float64
	for _, p := range pts {
		if p.SizeCeil == 64*1024 {
			at64k = p.TotalPct
		}
	}
	if at64k > 10 {
		t.Errorf("%.1f%% of CAMPUS bytes from files ≤64KB, want ≈0", at64k)
	}
}

func TestShapeFigure5Sequentiality(t *testing.T) {
	campus, _ := traces(t)
	runs := analysis.DetectRuns(campus.Ops, analysis.DefaultRunConfig(10))
	pts := analysis.SequentialityProfile(runs)
	// Long CAMPUS reads are highly sequential.
	for _, p := range pts {
		if p.BytesCeil >= 1<<20 && p.ReadK10 >= 0 && p.ReadK10 < 0.9 {
			t.Errorf("long read metric %.2f at %d bytes, want ≈1.0", p.ReadK10, p.BytesCeil)
		}
	}
}

func TestShapeNamePrediction(t *testing.T) {
	campus, _ := traces(t)
	rep := analysis.AnalyzeNames(campus.Ops, campus.Days*workload.Day)
	// Locks dominate created-and-deleted files (paper 96%).
	if rep.LockFracOfDeleted < 0.8 {
		t.Errorf("locks %.2f of deleted files, want ≈0.96", rep.LockFracOfDeleted)
	}
	// Lock lifetimes are sub-second (paper 99.9% < 0.4s).
	locks := rep.PerCategory[analysis.CatLock]
	if f := locks.Lifetimes.At(0.4); f < 0.9 {
		t.Errorf("locks <0.4s: %.2f, want ≈1", f)
	}
	// Locks are zero-length.
	if locks.Sizes.Percentile(99) != 0 {
		t.Errorf("lock size p99 = %v, want 0", locks.Sizes.Percentile(99))
	}
	// Composer files are small (paper 98% ≤ 8K).
	comp := rep.PerCategory[analysis.CatComposer]
	if comp.Created > 0 {
		if f := comp.Sizes.At(8 * 1024); f < 0.8 {
			t.Errorf("composers ≤8K: %.2f, want ≈0.98", f)
		}
	}
	// The name predicts the size class extremely well.
	if rep.SizeAccuracy < 0.85 {
		t.Errorf("size prediction %.2f, want high", rep.SizeAccuracy)
	}
}

func TestShapeHierarchyCoverage(t *testing.T) {
	campus, _ := traces(t)
	if cov := analysis.CoverageAfterWarmup(campus.Ops, 600); cov < 0.95 {
		t.Errorf("hierarchy coverage %.3f, want ≈1", cov)
	}
}

func TestShapeDiurnalVariance(t *testing.T) {
	campus, _ := traces(t)
	h := analysis.Hourly(campus.Ops, campus.Days*workload.Day)
	all := h.VarianceTable(false)
	peak := h.VarianceTable(true)
	for i := range all {
		if all[i].Name != "total_ops" {
			continue
		}
		if peak[i].Mean <= all[i].Mean {
			t.Error("peak hours not busier than average")
		}
		if peak[i].RelStddev >= all[i].RelStddev {
			t.Errorf("peak variance (%.2f) not below all-hours (%.2f)",
				peak[i].RelStddev, all[i].RelStddev)
		}
	}
}

func TestShapeLossExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation")
	}
	s := SmallScale()
	s.Days = 0.5
	lossy, port := GenerateCampusLossy(s, 100e3)
	if port.LossRate() <= 0 {
		t.Skip("no loss induced at this scale")
	}
	if lossy.Join.LossEstimate() <= 0 {
		t.Error("loss occurred but the estimate is zero")
	}
	clean := GenerateCampus(s)
	if len(lossy.Ops) >= len(clean.Ops) {
		t.Error("lossy trace recovered as many ops as the clean one")
	}
}
