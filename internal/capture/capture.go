// Package capture is the sniffer: it turns captured packets back into
// timestamped NFS trace records, reproducing the paper's tcpdump-derived
// tracing software (§2). It handles NFSv2 and NFSv3 over both UDP (with
// IP defragmentation) and TCP (with stream reassembly, RPC record
// marking, and packet coalescing), matches replies to calls by xid to
// recover each reply's procedure, decodes AUTH_SYS credentials for
// UID/GID, optionally anonymizes on the fly, and estimates capture loss
// the way §4.1.4 describes.
package capture

import (
	"io"

	"repro/internal/anon"
	"repro/internal/core"
	"repro/internal/mount"
	"repro/internal/nfs"
	"repro/internal/pcap"
	"repro/internal/rpc"
	"repro/internal/tcpasm"
	"repro/internal/wire"
)

// Stats counts what the sniffer saw.
type Stats struct {
	Packets        int64 // frames presented
	Fragments      int64 // IP fragments buffered
	NonIP          int64 // undecodable or non-IPv4 frames
	NonRPC         int64 // transport payloads that are not RPC
	NonNFS         int64 // RPC calls for other programs
	Calls          int64 // NFS calls decoded
	Replies        int64 // NFS replies decoded
	OrphanReplies  int64 // replies with no pending call (call lost)
	DecodeErrors   int64 // NFS bodies that failed to parse
	EvictedPending int64 // pending calls dropped by timeout
}

// LossEstimate mirrors core.JoinStats: orphan replies imply lost calls.
func (s Stats) LossEstimate() float64 {
	total := s.Calls + s.Replies + s.OrphanReplies
	if total == 0 {
		return 0
	}
	return float64(s.OrphanReplies) / float64(total)
}

type pendingKey struct {
	client uint32
	port   uint16
	xid    uint32
}

type pendingCall struct {
	program uint32
	version uint32
	proc    uint32
	t       float64
}

// Sniffer decodes packets into trace records.
type Sniffer struct {
	// Anon, when set, anonymizes each record before emission.
	Anon *anon.Anonymizer
	// Emit receives each decoded record in capture order.
	Emit func(*core.Record)
	// PendingTimeout bounds how long a call waits for its reply before
	// its table entry is evicted (seconds).
	PendingTimeout float64

	Stats Stats

	defrag  *wire.Defragmenter
	asm     *tcpasm.Assembler
	scan    map[wire.FlowKey]*rpc.RecordScanner
	pending map[pendingKey]pendingCall
	// evictq tracks insertion order for timeout eviction.
	evictq []pendingKey
	lastT  float64
}

// NewSniffer builds a sniffer delivering records to emit.
func NewSniffer(emit func(*core.Record)) *Sniffer {
	return &Sniffer{
		Emit:           emit,
		PendingTimeout: 60,
		defrag:         wire.NewDefragmenter(),
		asm:            tcpasm.NewAssembler(),
		scan:           make(map[wire.FlowKey]*rpc.RecordScanner),
		pending:        make(map[pendingKey]pendingCall),
	}
}

// HandlePacket processes one captured frame at capture time t.
func (s *Sniffer) HandlePacket(t float64, data []byte) {
	s.Stats.Packets++
	s.lastT = t
	f, err := wire.Decode(data)
	if err != nil {
		s.Stats.NonIP++
		return
	}
	if f.IsFragment {
		s.Stats.Fragments++
		f = s.defrag.Add(f)
		if f == nil {
			return
		}
	}
	switch f.Proto {
	case wire.ProtoUDP:
		s.handleMessage(t, f, f.Payload)
	case wire.ProtoTCP:
		data, _ := s.asm.Add(f)
		if len(data) == 0 {
			return
		}
		key := f.Flow()
		sc := s.scan[key]
		if sc == nil {
			sc = &rpc.RecordScanner{}
			s.scan[key] = sc
		}
		sc.Append(data)
		for {
			msg, err := sc.Next()
			if err != nil {
				// Framing lost (e.g. after capture loss): reset the
				// scanner; it resynchronizes at the next connection.
				s.scan[key] = &rpc.RecordScanner{}
				s.Stats.NonRPC++
				return
			}
			if msg == nil {
				return
			}
			s.handleMessage(t, f, msg)
		}
	}
}

// handleMessage decodes one RPC message (a full datagram or record).
func (s *Sniffer) handleMessage(t float64, f *wire.Frame, msg []byte) {
	dec, err := rpc.Decode(msg)
	if err != nil {
		s.Stats.NonRPC++
		return
	}
	proto := byte(core.ProtoUDP)
	if f.Proto == wire.ProtoTCP {
		proto = core.ProtoTCP
	}
	switch dec.Type {
	case rpc.Call:
		ch := dec.Call
		var rec *core.Record
		switch ch.Program {
		case rpc.ProgramNFS:
			info, err := nfs.ParseCall(ch.Version, ch.Proc, ch.Args)
			if err != nil {
				s.Stats.DecodeErrors++
				return
			}
			rec = &core.Record{
				Time: t, Kind: core.KindCall,
				Client: f.SrcIP.Uint32(), Port: f.SrcPort,
				Server: f.DstIP.Uint32(), Proto: proto,
				XID: ch.XID, Version: ch.Version, Proc: core.MustProc(info.Name),
				FH: core.InternFH(info.FH.String()), Name: info.FName,
				FH2: core.InternFH(info.FH2.String()), Name2: info.FName2,
				Offset: info.Offset, Count: info.Count, Stable: info.Stable,
			}
			if info.SetSize != nil {
				rec.SetSize, rec.HasSet = *info.SetSize, true
			}
		case rpc.ProgramMount:
			rec = &core.Record{
				Time: t, Kind: core.KindCall,
				Client: f.SrcIP.Uint32(), Port: f.SrcPort,
				Server: f.DstIP.Uint32(), Proto: proto,
				XID: ch.XID, Version: ch.Version,
				Proc: internProc(ch.Proc, rpc.ProgramMount, ch.Version),
			}
			if ch.Proc == mount.ProcMnt || ch.Proc == mount.ProcUmnt {
				args, err := mount.DecodeMntArgs(ch.Args)
				if err != nil {
					s.Stats.DecodeErrors++
					return
				}
				rec.Name = args.DirPath
			}
		default:
			s.Stats.NonNFS++
			return
		}
		s.Stats.Calls++
		if ch.Cred.Flavor == rpc.AuthSys {
			if auth, err := rpc.DecodeAuthSys(ch.Cred.Body); err == nil {
				rec.UID, rec.GID = auth.UID, auth.GID
			}
		}
		key := pendingKey{rec.Client, rec.Port, ch.XID}
		if _, dup := s.pending[key]; !dup {
			s.pending[key] = pendingCall{program: ch.Program, version: ch.Version, proc: ch.Proc, t: t}
			s.evictq = append(s.evictq, key)
		}
		s.deliver(rec)
		s.evictOld(t)
	case rpc.Reply:
		rh := dec.Reply
		// The reply's client is the packet's destination.
		key := pendingKey{f.DstIP.Uint32(), f.DstPort, rh.XID}
		call, ok := s.pending[key]
		if !ok {
			s.Stats.OrphanReplies++
			return
		}
		delete(s.pending, key)
		if rh.ReplyStat != rpc.MsgAccepted || rh.AcceptStat != rpc.Success {
			// Rejected RPCs carry no NFS body; emit a bare error reply.
			s.Stats.Replies++
			s.deliver(&core.Record{
				Time: t, Kind: core.KindReply,
				Client: f.DstIP.Uint32(), Port: f.DstPort,
				Server: f.SrcIP.Uint32(), Proto: proto,
				XID: rh.XID, Version: call.version,
				Proc:   internProc(call.proc, call.program, call.version),
				Status: nfs.ErrIO,
			})
			return
		}
		if call.program == rpc.ProgramMount {
			rec := &core.Record{
				Time: t, Kind: core.KindReply,
				Client: f.DstIP.Uint32(), Port: f.DstPort,
				Server: f.SrcIP.Uint32(), Proto: proto,
				XID: rh.XID, Version: call.version,
				Proc: internProc(call.proc, call.program, call.version),
			}
			if call.proc == mount.ProcMnt {
				res, err := mount.DecodeMntRes(rh.Results)
				if err != nil {
					s.Stats.DecodeErrors++
					return
				}
				rec.Status = res.Status
				rec.NewFH = core.InternFH(res.FH.String())
			}
			s.Stats.Replies++
			s.deliver(rec)
			return
		}
		info, err := nfs.ParseReply(call.version, call.proc, rh.Results)
		if err != nil {
			s.Stats.DecodeErrors++
			return
		}
		s.Stats.Replies++
		rec := &core.Record{
			Time: t, Kind: core.KindReply,
			Client: f.DstIP.Uint32(), Port: f.DstPort,
			Server: f.SrcIP.Uint32(), Proto: proto,
			XID: rh.XID, Version: call.version, Proc: core.MustProc(info.Name),
			Status: info.Status, RCount: info.Count, EOF: info.EOF,
			NewFH: core.InternFH(info.NewFH.String()),
		}
		if info.Attr != nil {
			rec.Size = info.Attr.Size
			rec.FileID = info.Attr.FileID
			rec.Mtime = info.Attr.Mtime.Seconds()
		}
		if info.Pre != nil {
			rec.PreSize, rec.HasPre = info.Pre.Size, true
		}
		s.deliver(rec)
	}
}

// internProc interns the procedure name of a decoded RPC. Out-of-range
// procedure numbers render as nfs.ProcName's "proc-N" forms, which
// register dynamically; should a hostile capture exhaust the byte-sized
// table, the name collapses to "null" rather than dropping the record.
func internProc(proc, program, version uint32) core.ProcID {
	name := nfs.ProcName(version, proc)
	if program == rpc.ProgramMount {
		name = mount.ProcName(proc)
	}
	id, err := core.InternProc(name)
	if err != nil {
		return core.ProcNull
	}
	return id
}

func (s *Sniffer) deliver(rec *core.Record) {
	if s.Anon != nil {
		s.Anon.Record(rec)
	}
	if s.Emit != nil {
		s.Emit(rec)
	}
}

// evictOld drops pending calls older than the timeout, bounding table
// growth when replies are lost.
func (s *Sniffer) evictOld(now float64) {
	for len(s.evictq) > 0 {
		key := s.evictq[0]
		call, ok := s.pending[key]
		if !ok {
			s.evictq = s.evictq[1:]
			continue
		}
		if now-call.t < s.PendingTimeout {
			return
		}
		delete(s.pending, key)
		s.evictq = s.evictq[1:]
		s.Stats.EvictedPending++
	}
}

// PendingCalls reports calls still awaiting replies.
func (s *Sniffer) PendingCalls() int { return len(s.pending) }

// ReadPcap drains an entire pcap stream through the sniffer.
func (s *Sniffer) ReadPcap(r *pcap.Reader) error {
	for {
		p, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.HandlePacket(p.Time, p.Data)
	}
}
