package capture

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/wire"
)

// BenchmarkSnifferUDP measures end-to-end packet decoding: Ethernet →
// IP → UDP → RPC → NFS → record, the tracer's hot loop.
func BenchmarkSnifferUDP(b *testing.B) {
	c, _, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.JumboMTU)
	driveWorkload(c, srv)
	var n int64
	for _, p := range pkts.packets {
		n += int64(len(p.data))
	}
	b.SetBytes(n / int64(len(pkts.packets)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSniffer(nil)
		p := pkts.packets[i%len(pkts.packets)]
		s.HandlePacket(p.t, p.data)
	}
}

// BenchmarkSnifferTCPStream measures the TCP path including stream
// reassembly and record-marking extraction.
func BenchmarkSnifferTCPStream(b *testing.B) {
	c, records, pkts, srv := rig(nfs.V3, core.ProtoTCP, wire.StandardMTU)
	driveWorkload(c, srv)
	want := len(records.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		s := NewSniffer(func(*core.Record) { got++ })
		for _, p := range pkts.packets {
			s.HandlePacket(p.t, p.data)
		}
		if got != want {
			b.Fatalf("decoded %d, want %d", got, want)
		}
	}
}

var _ = client.SliceSink{} // keep the import for the rig helper
