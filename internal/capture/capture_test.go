package capture

import (
	"bytes"
	"testing"

	"repro/internal/anon"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/pcap"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// packetBuf collects framed packets in memory.
type packetBuf struct {
	packets []struct {
		t    float64
		data []byte
	}
}

func (p *packetBuf) Packet(t float64, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	p.packets = append(p.packets, struct {
		t    float64
		data []byte
	}{t, cp})
}

// rig builds a client+server whose traffic is captured both as records
// (ground truth) and packets (sniffer input).
func rig(version uint32, proto byte, mtu int) (*client.Client, *client.SliceSink, *packetBuf, *server.Server) {
	fs := vfs.New()
	now := 0.0
	fs.Clock = func() float64 { now += 0.0001; return now }
	srv := server.New(fs)
	records := &client.SliceSink{}
	c := client.New(client.Config{
		IP: 0x0a000005, UID: 501, GID: 100, Version: version, Proto: proto, Seed: 5,
	}, srv, 0x0a000001, records)
	pkts := &packetBuf{}
	c.EnableWireTap(client.NewWireTap(pkts, 0x0a000005, 0x0a000001, mtu))
	return c, records, pkts, srv
}

// driveWorkload runs a small mixed workload through the client.
func driveWorkload(c *client.Client, srv *server.Server) {
	root := srv.FS.RootFH()
	t := 1.0
	fh, t := c.Create(t, root, "inbox", false)
	t = c.WriteRange(t, fh, 0, 20000)
	c.Access(t+0.01, fh)
	fh2, _, t2 := c.Lookup(t+0.02, root, "inbox")
	_ = fh2
	c.ReadRange(t2+0.01, fh, 0, 20000)
	lk, t3 := c.Create(t2+0.5, root, "inbox.lock", false)
	_ = lk
	c.Remove(t3+0.01, root, "inbox.lock")
	c.Readdir(t3+0.1, root)
	c.SetattrTruncate(t3+0.2, fh, 1000)
}

func snif(pkts *packetBuf) ([]*core.Record, *Sniffer) {
	var got []*core.Record
	s := NewSniffer(func(r *core.Record) { got = append(got, r) })
	for _, p := range pkts.packets {
		s.HandlePacket(p.t, p.data)
	}
	return got, s
}

// keyFields extracts the comparison view of a record (ignoring
// FH2/Name2 emptiness quirks).
func assertRecordsMatch(t *testing.T, want, got []*core.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sniffed %d records, ground truth %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Kind != g.Kind || w.Proc != g.Proc || w.XID != g.XID ||
			w.Version != g.Version || w.Offset != g.Offset || w.Count != g.Count ||
			w.FH != g.FH || w.Name != g.Name || w.Status != g.Status ||
			w.RCount != g.RCount || w.Size != g.Size || w.NewFH != g.NewFH ||
			w.UID != g.UID || w.GID != g.GID {
			t.Fatalf("record %d mismatch:\nwant %+v\n got %+v", i, w, g)
		}
		if w.Time != g.Time {
			t.Fatalf("record %d time drift: %v vs %v", i, w.Time, g.Time)
		}
	}
}

func TestSnifferMatchesGroundTruthUDPv3(t *testing.T) {
	c, records, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.StandardMTU)
	driveWorkload(c, srv)
	got, s := snif(pkts)
	assertRecordsMatch(t, records.Records, got)
	if s.Stats.Calls == 0 || s.Stats.Replies != s.Stats.Calls {
		t.Fatalf("stats: %+v", s.Stats)
	}
	if s.Stats.Fragments == 0 {
		t.Fatal("8k writes at MTU 1500 should fragment")
	}
	if s.PendingCalls() != 0 {
		t.Fatalf("%d pending calls leak", s.PendingCalls())
	}
}

func TestSnifferMatchesGroundTruthUDPv2(t *testing.T) {
	c, records, pkts, srv := rig(nfs.V2, core.ProtoUDP, wire.StandardMTU)
	driveWorkload(c, srv)
	got, _ := snif(pkts)
	assertRecordsMatch(t, records.Records, got)
}

func TestSnifferMatchesGroundTruthTCPJumbo(t *testing.T) {
	// The CAMPUS configuration: NFSv3 over TCP with 9000-byte frames.
	c, records, pkts, srv := rig(nfs.V3, core.ProtoTCP, wire.JumboMTU)
	driveWorkload(c, srv)
	got, _ := snif(pkts)
	assertRecordsMatch(t, records.Records, got)
}

func TestSnifferMatchesGroundTruthTCPStandard(t *testing.T) {
	// TCP at standard MTU: RPC messages span several segments
	// (coalescing/fragmenting at the record-marking layer).
	c, records, pkts, srv := rig(nfs.V3, core.ProtoTCP, wire.StandardMTU)
	driveWorkload(c, srv)
	got, _ := snif(pkts)
	assertRecordsMatch(t, records.Records, got)
}

func TestSnifferThroughPcapFile(t *testing.T) {
	c, records, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.StandardMTU)
	driveWorkload(c, srv)

	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts.packets {
		if err := w.WritePacket(p.t, p.data); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []*core.Record
	s := NewSniffer(func(rec *core.Record) { got = append(got, rec) })
	if err := s.ReadPcap(r); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records.Records) {
		t.Fatalf("pcap path: %d vs %d records", len(got), len(records.Records))
	}
	// pcap nano timestamps keep ~1ns precision; compare loosely.
	for i := range got {
		d := got[i].Time - records.Records[i].Time
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("record %d time drift %v", i, d)
		}
	}
}

func TestSnifferLostCallYieldsOrphanReply(t *testing.T) {
	c, _, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.JumboMTU)
	root := srv.FS.RootFH()
	c.Create(1.0, root, "f", false)
	c.Access(1.1, srv.FS.RootFH())

	// Drop the first packet (the CREATE call).
	var got []*core.Record
	s := NewSniffer(func(r *core.Record) { got = append(got, r) })
	for i, p := range pkts.packets {
		if i == 0 {
			continue
		}
		s.HandlePacket(p.t, p.data)
	}
	if s.Stats.OrphanReplies != 1 {
		t.Fatalf("orphans: %+v", s.Stats)
	}
	if s.Stats.LossEstimate() <= 0 {
		t.Fatal("loss estimate is zero")
	}
	// The remaining access call+reply still decode.
	found := 0
	for _, r := range got {
		if r.Proc == core.MustProc("access") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("access records: %d", found)
	}
}

func TestSnifferAnonymizes(t *testing.T) {
	c, _, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.JumboMTU)
	root := srv.FS.RootFH()
	c.Create(1.0, root, "love-letter.txt", false)

	var got []*core.Record
	s := NewSniffer(func(r *core.Record) { got = append(got, r) })
	s.Anon = anon.New(anon.DefaultConfig(7))
	for _, p := range pkts.packets {
		s.HandlePacket(p.t, p.data)
	}
	for _, r := range got {
		if r.Name == "love-letter.txt" {
			t.Fatal("name leaked through anonymizer")
		}
		if r.Kind == core.KindCall && r.UID == 501 {
			t.Fatal("uid leaked through anonymizer")
		}
	}
}

func TestSnifferIgnoresGarbage(t *testing.T) {
	s := NewSniffer(nil)
	s.HandlePacket(1, []byte{1, 2, 3})
	garbage := wire.BuildUDP(wire.IP{1, 2, 3, 4}, wire.IP{5, 6, 7, 8}, 9, 10, 1,
		[]byte("not rpc at all..."))
	s.HandlePacket(2, garbage)
	if s.Stats.NonIP != 1 || s.Stats.NonRPC != 1 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}

func TestSnifferEvictsStalePending(t *testing.T) {
	c, _, pkts, srv := rig(nfs.V3, core.ProtoUDP, wire.JumboMTU)
	c.Create(1.0, srv.FS.RootFH(), "a", false)
	s := NewSniffer(nil)
	s.PendingTimeout = 10
	// Deliver only the call.
	s.HandlePacket(1.0, pkts.packets[0].data)
	if s.PendingCalls() != 1 {
		t.Fatalf("pending = %d", s.PendingCalls())
	}
	// A later unrelated call triggers eviction.
	c2, _, pkts2, srv2 := rig(nfs.V3, core.ProtoUDP, wire.JumboMTU)
	c2.Access(100.0, srv2.FS.RootFH())
	s.HandlePacket(100.0, pkts2.packets[0].data)
	if s.Stats.EvictedPending != 1 {
		t.Fatalf("evicted = %d", s.Stats.EvictedPending)
	}
}
