package capture

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mount"
	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/wire"
	"repro/internal/xdr"
)

// buildMountExchange frames a MNT call and its reply as UDP packets.
func buildMountExchange(t *testing.T, path string, fh nfs.FH) (callPkt, replyPkt []byte) {
	t.Helper()
	clientIP := wire.IP{10, 2, 0, 5}
	serverIP := wire.IP{10, 2, 0, 1}

	cred := xdr.NewEncoder(64)
	(&rpc.AuthSysBody{MachineName: "ws", UID: 3000, GID: 300}).Encode(cred)
	args := xdr.NewEncoder(64)
	mount.EncodeMntArgs(args, &mount.MntArgs{DirPath: path})
	call := xdr.NewEncoder(128)
	rpc.EncodeCall(call, &rpc.CallHeader{
		XID: 0x1234, Program: rpc.ProgramMount, Version: 3, Proc: mount.ProcMnt,
		Cred: rpc.OpaqueAuth{Flavor: rpc.AuthSys, Body: cred.Bytes()},
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Args: args.Bytes(),
	})
	callPkt = wire.BuildUDP(clientIP, serverIP, 700, 635, 1, call.Bytes())

	res := xdr.NewEncoder(64)
	mount.EncodeMntRes(res, &mount.MntRes{Status: mount.OK, FH: fh, Flavors: []uint32{1}})
	reply := xdr.NewEncoder(128)
	rpc.EncodeReply(reply, &rpc.ReplyHeader{
		XID: 0x1234, ReplyStat: rpc.MsgAccepted, AcceptStat: rpc.Success,
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone}, Results: res.Bytes(),
	})
	replyPkt = wire.BuildUDP(serverIP, clientIP, 635, 700, 2, reply.Bytes())
	return callPkt, replyPkt
}

func TestSnifferDecodesMountProtocol(t *testing.T) {
	callPkt, replyPkt := buildMountExchange(t, "/home/u001", nfs.MakeFH(2))
	var got []*core.Record
	s := NewSniffer(func(r *core.Record) { got = append(got, r) })
	s.HandlePacket(1.0, callPkt)
	s.HandlePacket(1.001, replyPkt)

	if len(got) != 2 {
		t.Fatalf("%d records", len(got))
	}
	call, reply := got[0], got[1]
	if call.Proc != core.MustProc("mnt") || call.Name != "/home/u001" {
		t.Fatalf("call: %+v", call)
	}
	if call.UID != 3000 || call.GID != 300 {
		t.Fatalf("cred: %d/%d", call.UID, call.GID)
	}
	if reply.Proc != core.MustProc("mnt") || reply.Status != mount.OK {
		t.Fatalf("reply: %+v", reply)
	}
	if reply.NewFH.String() != nfs.MakeFH(2).String() {
		t.Fatalf("root fh %q", reply.NewFH)
	}
	if s.Stats.NonNFS != 0 || s.Stats.Calls != 1 || s.Stats.Replies != 1 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}

func TestSnifferMountThenNFSJoins(t *testing.T) {
	// The mount handshake followed by a GETATTR on the returned root:
	// joined ops should carry both.
	callPkt, replyPkt := buildMountExchange(t, "/home/u001", nfs.MakeFH(2))
	var records []*core.Record
	s := NewSniffer(func(r *core.Record) { records = append(records, r) })
	s.HandlePacket(1.0, callPkt)
	s.HandlePacket(1.001, replyPkt)

	ops, stats := core.Join(records)
	if stats.Matched != 1 {
		t.Fatalf("join: %+v", stats)
	}
	if ops[0].Proc != core.MustProc("mnt") || ops[0].NewFH == core.InternFH("") {
		t.Fatalf("op: %+v", ops[0])
	}
}

func TestSnifferStillIgnoresForeignPrograms(t *testing.T) {
	// Portmapper (program 100000) remains foreign.
	call := xdr.NewEncoder(64)
	rpc.EncodeCall(call, &rpc.CallHeader{
		XID: 1, Program: 100000, Version: 2, Proc: 3,
		Cred: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
	})
	pkt := wire.BuildUDP(wire.IP{1, 1, 1, 1}, wire.IP{2, 2, 2, 2}, 5, 111, 1, call.Bytes())
	s := NewSniffer(nil)
	s.HandlePacket(1, pkt)
	if s.Stats.NonNFS != 1 || s.Stats.Calls != 0 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}
