// Package core defines the trace record model at the heart of the
// reproduction: the timestamped per-message records the sniffer emits
// (one per NFS call and one per reply, as the paper's tcpdump-derived
// tracer did), the joined call/reply operations the analyses consume,
// and the text trace format used to store and exchange traces.
//
// The text format is one record per line, nfsdump-like:
//
//	<time> C <client>.<port> <server> <proto> <xid> <vers> <proc> k=v ...
//	<time> R <client>.<port> <server> <proto> <xid> <vers> <proc> status=<n> k=v ...
//
// All integers are decimal except xid and file handles, which are hex.
// Unknown keys are ignored on read, so the format is extensible.
//
// In memory, file handles and procedure names are interned (see
// intern.go): Record carries FH/ProcID integer IDs, and the original
// spellings reappear only when a record is rendered back to a trace
// format.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Direction of a record.
const (
	KindCall  = 'C'
	KindReply = 'R'
)

// Transport protocol tags.
const (
	ProtoUDP = 'U'
	ProtoTCP = 'T'
)

// Record is one traced NFS message (call or reply). Fields that do not
// apply to a given procedure are zero.
type Record struct {
	Time    float64 // seconds since trace epoch
	Kind    byte    // KindCall or KindReply
	Client  uint32  // client IP (host order)
	Port    uint16  // client port
	Server  uint32  // server IP (host order)
	Proto   byte    // ProtoUDP or ProtoTCP
	XID     uint32
	Version uint32
	Proc    ProcID // interned v3-vocabulary procedure name

	// Call fields.
	UID, GID uint32
	FH       FH // primary handle, interned hex
	Name     string
	FH2      FH // target dir for rename/link
	Name2    string
	Offset   uint64
	Count    uint32 // requested bytes
	Stable   uint32
	SetSize  uint64 // setattr/create truncation target
	HasSet   bool

	// Reply fields.
	Status  uint32
	RCount  uint32 // bytes actually moved
	Size    uint64 // post-op file size
	FileID  uint64
	Mtime   float64
	PreSize uint64 // wcc pre-op size
	HasPre  bool
	NewFH   FH // handle returned by lookup/create
	EOF     bool
}

// ipString formats a host-order IP compactly as hex (shorter lines than
// dotted quad; traces hold tens of millions of records).
func ipString(v uint32) string { return strconv.FormatUint(uint64(v), 16) }

// AppendMarshal renders the record as one trace line (no trailing
// newline) appended to dst. It is the per-record serialization path of
// nfsconvert and nfsgen, so it is append-style throughout: no fmt, no
// intermediate strings.
func (r *Record) AppendMarshal(dst []byte) []byte {
	dst = strconv.AppendFloat(dst, r.Time, 'f', 6, 64)
	// Kind and Proto are single bytes on the wire; appending them as
	// bytes (never runes) keeps values ≥ 0x80 one byte, which the
	// parser requires of a tag.
	dst = append(dst, ' ', r.Kind, ' ')
	dst = strconv.AppendUint(dst, uint64(r.Client), 16)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(r.Port), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(r.Server), 16)
	dst = append(dst, ' ', r.Proto, ' ')
	dst = strconv.AppendUint(dst, uint64(r.XID), 16)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(r.Version), 10)
	dst = append(dst, ' ')
	dst = append(dst, r.Proc.String()...)
	kvs := func(k string, v string) {
		dst = append(dst, ' ')
		dst = append(dst, k...)
		dst = append(dst, '=')
		dst = append(dst, v...)
	}
	kvu := func(k string, v uint64) {
		dst = append(dst, ' ')
		dst = append(dst, k...)
		dst = append(dst, '=')
		dst = strconv.AppendUint(dst, v, 10)
	}
	if r.Kind == KindCall {
		if r.FH != 0 {
			kvs("fh", r.FH.String())
		}
		if r.Name != "" {
			kvs("name", escape(r.Name))
		}
		if r.FH2 != 0 {
			kvs("fh2", r.FH2.String())
		}
		if r.Name2 != "" {
			kvs("name2", escape(r.Name2))
		}
		if r.Offset != 0 {
			kvu("off", r.Offset)
		}
		if r.Count != 0 {
			kvu("count", uint64(r.Count))
		}
		if r.Stable != 0 {
			kvu("stable", uint64(r.Stable))
		}
		if r.HasSet {
			kvu("setsize", r.SetSize)
		}
		kvu("uid", uint64(r.UID))
		kvu("gid", uint64(r.GID))
		return dst
	}
	kvu("status", uint64(r.Status))
	if r.RCount != 0 {
		kvu("rcount", uint64(r.RCount))
	}
	if r.Size != 0 {
		kvu("size", r.Size)
	}
	if r.FileID != 0 {
		kvu("fileid", r.FileID)
	}
	if r.Mtime != 0 {
		dst = append(dst, " mtime="...)
		dst = strconv.AppendFloat(dst, r.Mtime, 'f', 6, 64)
	}
	if r.HasPre {
		kvu("presize", r.PreSize)
	}
	if r.NewFH != 0 {
		kvs("newfh", r.NewFH.String())
	}
	if r.EOF {
		kvs("eof", "1")
	}
	return dst
}

// Marshal renders the record as one trace line (no trailing newline).
func (r *Record) Marshal() string {
	return string(r.AppendMarshal(make([]byte, 0, 160)))
}

// escape protects spaces and control characters in filenames; the
// anonymizer usually removes the need, but raw traces must round-trip.
func escape(s string) string {
	if !strings.ContainsAny(s, " \t\n\\=") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case ' ':
			b.WriteString("\\s")
		case '\t':
			b.WriteString("\\t")
		case '\n':
			b.WriteString("\\n")
		case '\\':
			b.WriteString("\\\\")
		case '=':
			b.WriteString("\\e")
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// unescapeBytes decodes the escape scheme into a fresh string. The
// input bytes are never retained.
func unescapeBytes(s []byte) string {
	i := 0
	for i < len(s) && s[i] != '\\' {
		i++
	}
	if i == len(s) {
		return string(s)
	}
	b := make([]byte, 0, len(s))
	b = append(b, s[:i]...)
	for ; i < len(s); i++ {
		if s[i] != '\\' || i == len(s)-1 {
			b = append(b, s[i])
			continue
		}
		i++
		switch s[i] {
		case 's':
			b = append(b, ' ')
		case 't':
			b = append(b, '\t')
		case 'n':
			b = append(b, '\n')
		case 'e':
			b = append(b, '=')
		case '\\':
			b = append(b, '\\')
		default:
			b = append(b, s[i])
		}
	}
	return string(b)
}

// isFieldSep reports a byte that separates fields within a line.
func isFieldSep(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r'
}

// nextField returns the next whitespace-delimited field of line
// starting at *pos, advancing *pos past it; ok is false at end of line.
func nextField(line []byte, pos *int) (field []byte, ok bool) {
	i := *pos
	for i < len(line) && isFieldSep(line[i]) {
		i++
	}
	if i >= len(line) {
		*pos = i
		return nil, false
	}
	start := i
	for i < len(line) && !isFieldSep(line[i]) {
		i++
	}
	*pos = i
	return line[start:i], true
}

func countFields(line []byte) int {
	n, pos := 0, 0
	for {
		if _, ok := nextField(line, &pos); !ok {
			return n
		}
		n++
	}
}

// parseUintDec parses a decimal field. Syntax errors yield (0, false).
// Overflow depends on the caller's role: kv values saturate at the bit
// size's maximum and still report ok (the old
// strconv-and-ignore-the-error semantics, where ParseUint's ErrRange
// value was kept), while header fields treat overflow as an error,
// exactly as the old explicit ParseUint checks did.
func parseUintDec(b []byte, bits int, saturate bool) (uint64, bool) {
	max := uint64(1)<<bits - 1
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (max-d)/10 {
			if saturate {
				return max, true
			}
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func parseUintSat(b []byte, bits int) (uint64, bool) { return parseUintDec(b, bits, true) }

func parseUintStrict(b []byte, bits int) (uint64, bool) { return parseUintDec(b, bits, false) }

// parseHexStrict parses a hex header field; overflow is an error.
func parseHexStrict(b []byte, bits int) (uint64, bool) {
	max := uint64(1)<<bits - 1
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if v > max>>4 {
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// parseTime parses a non-negative decimal seconds value. The fast path
// handles the canonical "%.6f" rendering (digits, optional point, up to
// six fractional digits) with exact integer arithmetic — bit-identical
// to strconv.ParseFloat for those inputs — and anything else (exponent
// forms, long fractions, huge values) falls back to the library parser.
func parseTime(b []byte) (float64, bool) {
	var whole, frac uint64
	i, fd := 0, 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if whole > (1<<53)/10 {
			goto slow
		}
		whole = whole*10 + uint64(b[i]-'0')
		i++
	}
	if i == 0 {
		goto slow
	}
	if i == len(b) {
		return float64(whole), true
	}
	if b[i] != '.' {
		goto slow
	}
	i++
	if i == len(b) {
		goto slow // trailing dot: let the library decide
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' || fd == 6 {
			goto slow
		}
		frac = frac*10 + uint64(b[i]-'0')
		fd++
	}
	for ; fd < 6; fd++ {
		frac *= 10
	}
	if whole > (1<<53)/1000000-1 { // keep whole*1e6+frac under 2^53
		goto slow
	}
	// whole*1e6+frac < 2^53, so the quotient by the exactly
	// representable 1e6 is correctly rounded: the nearest float64 to
	// the decimal input, exactly as ParseFloat computes it.
	return float64(whole*1e6+frac) / 1e6, true

slow:
	v, err := strconv.ParseFloat(string(b), 64)
	return v, err == nil
}

// UnmarshalRecordBytes parses one trace line into r, which must be
// zeroed (fresh, pooled via NewRecord, or reset to Record{}): optional
// kv fields are assigned only when present, so a reused dirty Record
// would keep stale values. No reference into line is retained: handles
// and procedure names are interned, and filename fields are copied. On
// the hot path — a record with no filename — parsing performs no
// allocation.
func UnmarshalRecordBytes(line []byte, r *Record) error {
	// The 8 header fields plus at least one kv field are mandatory; a
	// field that is missing outright surfaces as the short-record
	// error (the total count is recomputed only on that cold path).
	pos := 0
	short := func() error {
		return fmt.Errorf("core: short record (%d fields)", countFields(line))
	}
	f, ok := nextField(line, &pos)
	if !ok {
		return short()
	}
	var tok bool
	if r.Time, tok = parseTime(f); !tok {
		return fmt.Errorf("core: bad time %q", f)
	}
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	if len(f) != 1 || (f[0] != KindCall && f[0] != KindReply) {
		return fmt.Errorf("core: bad kind %q", f)
	}
	r.Kind = f[0]
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	dot := -1
	for i, c := range f {
		if c == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return fmt.Errorf("core: bad client %q", f)
	}
	host, port := f[:dot], f[dot+1:]
	v, tok := parseHexStrict(host, 32)
	if !tok {
		return fmt.Errorf("core: bad client ip %q", host)
	}
	r.Client = uint32(v)
	if v, tok = parseUintStrict(port, 16); !tok {
		return fmt.Errorf("core: bad client port %q", port)
	}
	r.Port = uint16(v)
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	if v, tok = parseHexStrict(f, 32); !tok {
		return fmt.Errorf("core: bad server ip %q", f)
	}
	r.Server = uint32(v)
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	if len(f) != 1 {
		return fmt.Errorf("core: bad proto %q", f)
	}
	r.Proto = f[0]
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	if v, tok = parseHexStrict(f, 32); !tok {
		return fmt.Errorf("core: bad xid %q", f)
	}
	r.XID = uint32(v)
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	if v, tok = parseUintStrict(f, 32); !tok {
		return fmt.Errorf("core: bad version %q", f)
	}
	r.Version = uint32(v)
	if f, ok = nextField(line, &pos); !ok {
		return short()
	}
	// Interning is deferred to the end of the parse: a malformed line
	// must not register its (possibly garbage) proc token in the
	// process-global table, which holds at most 256 distinct names.
	procField := f

	for first := true; ; first = false {
		f, ok := nextField(line, &pos)
		if !ok {
			if first {
				return short() // the 9th field is mandatory
			}
			proc, err := InternProcBytes(procField)
			if err != nil {
				return fmt.Errorf("core: bad proc %q: %w", procField, err)
			}
			r.Proc = proc
			return nil
		}
		eq := -1
		for i, c := range f {
			if c == '=' {
				eq = i
				break
			}
		}
		if eq < 0 {
			continue
		}
		k, val := f[:eq], f[eq+1:]
		switch string(k) { // compiler avoids the conversion in a switch
		case "fh":
			r.FH = InternFHBytes(val)
		case "name":
			r.Name = unescapeBytes(val)
		case "fh2":
			r.FH2 = InternFHBytes(val)
		case "name2":
			r.Name2 = unescapeBytes(val)
		case "off":
			r.Offset, _ = parseUintSat(val, 64)
		case "count":
			c, _ := parseUintSat(val, 32)
			r.Count = uint32(c)
		case "stable":
			s, _ := parseUintSat(val, 32)
			r.Stable = uint32(s)
		case "setsize":
			r.SetSize, _ = parseUintSat(val, 64)
			r.HasSet = true
		case "uid":
			u, _ := parseUintSat(val, 32)
			r.UID = uint32(u)
		case "gid":
			g, _ := parseUintSat(val, 32)
			r.GID = uint32(g)
		case "status":
			s, _ := parseUintSat(val, 32)
			r.Status = uint32(s)
		case "rcount":
			c, _ := parseUintSat(val, 32)
			r.RCount = uint32(c)
		case "size":
			r.Size, _ = parseUintSat(val, 64)
		case "fileid":
			r.FileID, _ = parseUintSat(val, 64)
		case "mtime":
			r.Mtime, _ = parseTime(val)
		case "presize":
			r.PreSize, _ = parseUintSat(val, 64)
			r.HasPre = true
		case "newfh":
			r.NewFH = InternFHBytes(val)
		case "eof":
			r.EOF = len(val) == 1 && val[0] == '1'
		}
	}
}

// UnmarshalRecord parses one trace line.
func UnmarshalRecord(line string) (*Record, error) {
	r := NewRecord()
	if err := UnmarshalRecordBytes([]byte(line), r); err != nil {
		FreeRecord(r)
		return nil, err
	}
	return r, nil
}
