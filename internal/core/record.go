// Package core defines the trace record model at the heart of the
// reproduction: the timestamped per-message records the sniffer emits
// (one per NFS call and one per reply, as the paper's tcpdump-derived
// tracer did), the joined call/reply operations the analyses consume,
// and the text trace format used to store and exchange traces.
//
// The text format is one record per line, nfsdump-like:
//
//	<time> C <client>.<port> <server> <proto> <xid> <vers> <proc> k=v ...
//	<time> R <client>.<port> <server> <proto> <xid> <vers> <proc> status=<n> k=v ...
//
// All integers are decimal except xid and file handles, which are hex.
// Unknown keys are ignored on read, so the format is extensible.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Direction of a record.
const (
	KindCall  = 'C'
	KindReply = 'R'
)

// Transport protocol tags.
const (
	ProtoUDP = 'U'
	ProtoTCP = 'T'
)

// Record is one traced NFS message (call or reply). Fields that do not
// apply to a given procedure are zero.
type Record struct {
	Time    float64 // seconds since trace epoch
	Kind    byte    // KindCall or KindReply
	Client  uint32  // client IP (host order)
	Port    uint16  // client port
	Server  uint32  // server IP (host order)
	Proto   byte    // ProtoUDP or ProtoTCP
	XID     uint32
	Version uint32
	Proc    string // v3-vocabulary procedure name

	// Call fields.
	UID, GID uint32
	FH       string // primary handle, hex
	Name     string // name within FH
	FH2      string // target dir for rename/link
	Name2    string
	Offset   uint64
	Count    uint32 // requested bytes
	Stable   uint32
	SetSize  uint64 // setattr/create truncation target
	HasSet   bool

	// Reply fields.
	Status  uint32
	RCount  uint32 // bytes actually moved
	Size    uint64 // post-op file size
	FileID  uint64
	Mtime   float64
	PreSize uint64 // wcc pre-op size
	HasPre  bool
	NewFH   string // handle returned by lookup/create
	EOF     bool
}

// ipString formats a host-order IP compactly as hex (shorter lines than
// dotted quad; traces hold tens of millions of records).
func ipString(v uint32) string { return strconv.FormatUint(uint64(v), 16) }

func parseIP(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 16, 32)
	return uint32(v), err
}

// Marshal renders the record as one trace line (no trailing newline).
func (r *Record) Marshal() string {
	var b strings.Builder
	b.Grow(160)
	// Kind and Proto are single bytes on the wire; %c would UTF-8
	// encode values ≥ 0x80 into two bytes, which the parser (rightly)
	// rejects as a multi-byte tag.
	fmt.Fprintf(&b, "%.6f %s %s.%d %s %s %x %d %s",
		r.Time, string([]byte{r.Kind}), ipString(r.Client), r.Port, ipString(r.Server),
		string([]byte{r.Proto}), r.XID, r.Version, r.Proc)
	kv := func(k, v string) {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	if r.Kind == KindCall {
		if r.FH != "" {
			kv("fh", r.FH)
		}
		if r.Name != "" {
			kv("name", escape(r.Name))
		}
		if r.FH2 != "" {
			kv("fh2", r.FH2)
		}
		if r.Name2 != "" {
			kv("name2", escape(r.Name2))
		}
		if r.Offset != 0 {
			kv("off", strconv.FormatUint(r.Offset, 10))
		}
		if r.Count != 0 {
			kv("count", strconv.FormatUint(uint64(r.Count), 10))
		}
		if r.Stable != 0 {
			kv("stable", strconv.FormatUint(uint64(r.Stable), 10))
		}
		if r.HasSet {
			kv("setsize", strconv.FormatUint(r.SetSize, 10))
		}
		kv("uid", strconv.FormatUint(uint64(r.UID), 10))
		kv("gid", strconv.FormatUint(uint64(r.GID), 10))
		return b.String()
	}
	kv("status", strconv.FormatUint(uint64(r.Status), 10))
	if r.RCount != 0 {
		kv("rcount", strconv.FormatUint(uint64(r.RCount), 10))
	}
	if r.Size != 0 {
		kv("size", strconv.FormatUint(r.Size, 10))
	}
	if r.FileID != 0 {
		kv("fileid", strconv.FormatUint(r.FileID, 10))
	}
	if r.Mtime != 0 {
		kv("mtime", strconv.FormatFloat(r.Mtime, 'f', 6, 64))
	}
	if r.HasPre {
		kv("presize", strconv.FormatUint(r.PreSize, 10))
	}
	if r.NewFH != "" {
		kv("newfh", r.NewFH)
	}
	if r.EOF {
		kv("eof", "1")
	}
	return b.String()
}

// escape protects spaces and control characters in filenames; the
// anonymizer usually removes the need, but raw traces must round-trip.
func escape(s string) string {
	if !strings.ContainsAny(s, " \t\n\\=") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case ' ':
			b.WriteString("\\s")
		case '\t':
			b.WriteString("\\t")
		case '\n':
			b.WriteString("\\n")
		case '\\':
			b.WriteString("\\\\")
		case '=':
			b.WriteString("\\e")
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i == len(s)-1 {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 's':
			b.WriteByte(' ')
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'e':
			b.WriteByte('=')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// UnmarshalRecord parses one trace line.
func UnmarshalRecord(line string) (*Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 9 {
		return nil, fmt.Errorf("core: short record (%d fields)", len(fields))
	}
	var r Record
	var err error
	if r.Time, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return nil, fmt.Errorf("core: bad time %q", fields[0])
	}
	if len(fields[1]) != 1 || (fields[1][0] != KindCall && fields[1][0] != KindReply) {
		return nil, fmt.Errorf("core: bad kind %q", fields[1])
	}
	r.Kind = fields[1][0]
	hostPort := strings.SplitN(fields[2], ".", 2)
	if len(hostPort) != 2 {
		return nil, fmt.Errorf("core: bad client %q", fields[2])
	}
	if r.Client, err = parseIP(hostPort[0]); err != nil {
		return nil, fmt.Errorf("core: bad client ip %q", hostPort[0])
	}
	port, err := strconv.ParseUint(hostPort[1], 10, 16)
	if err != nil {
		return nil, fmt.Errorf("core: bad client port %q", hostPort[1])
	}
	r.Port = uint16(port)
	if r.Server, err = parseIP(fields[3]); err != nil {
		return nil, fmt.Errorf("core: bad server ip %q", fields[3])
	}
	if len(fields[4]) != 1 {
		return nil, fmt.Errorf("core: bad proto %q", fields[4])
	}
	r.Proto = fields[4][0]
	xid, err := strconv.ParseUint(fields[5], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("core: bad xid %q", fields[5])
	}
	r.XID = uint32(xid)
	vers, err := strconv.ParseUint(fields[6], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("core: bad version %q", fields[6])
	}
	r.Version = uint32(vers)
	r.Proc = fields[7]

	for _, f := range fields[8:] {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			continue
		}
		k, v := f[:eq], f[eq+1:]
		switch k {
		case "fh":
			r.FH = v
		case "name":
			r.Name = unescape(v)
		case "fh2":
			r.FH2 = v
		case "name2":
			r.Name2 = unescape(v)
		case "off":
			r.Offset, _ = strconv.ParseUint(v, 10, 64)
		case "count":
			c, _ := strconv.ParseUint(v, 10, 32)
			r.Count = uint32(c)
		case "stable":
			s, _ := strconv.ParseUint(v, 10, 32)
			r.Stable = uint32(s)
		case "setsize":
			r.SetSize, _ = strconv.ParseUint(v, 10, 64)
			r.HasSet = true
		case "uid":
			u, _ := strconv.ParseUint(v, 10, 32)
			r.UID = uint32(u)
		case "gid":
			g, _ := strconv.ParseUint(v, 10, 32)
			r.GID = uint32(g)
		case "status":
			s, _ := strconv.ParseUint(v, 10, 32)
			r.Status = uint32(s)
		case "rcount":
			c, _ := strconv.ParseUint(v, 10, 32)
			r.RCount = uint32(c)
		case "size":
			r.Size, _ = strconv.ParseUint(v, 10, 64)
		case "fileid":
			r.FileID, _ = strconv.ParseUint(v, 10, 64)
		case "mtime":
			r.Mtime, _ = strconv.ParseFloat(v, 64)
		case "presize":
			r.PreSize, _ = strconv.ParseUint(v, 10, 64)
			r.HasPre = true
		case "newfh":
			r.NewFH = v
		case "eof":
			r.EOF = v == "1"
		}
	}
	return &r, nil
}
