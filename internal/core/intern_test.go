package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// TestInternFHRoundTrip: interning any spelling and rendering it back
// must reproduce the spelling, and re-interning must reproduce the ID.
func TestInternFHRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spellings := []string{"", "0", "deadbeef", "0000000000000007"}
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		spellings = append(spellings, string(b))
	}
	for _, s := range spellings {
		id := InternFH(s)
		if got := id.String(); got != s {
			t.Fatalf("InternFH(%q).String() = %q", s, got)
		}
		if again := InternFH(s); again != id {
			t.Fatalf("InternFH(%q) unstable: %d then %d", s, id, again)
		}
		if fromBytes := InternFHBytes([]byte(s)); fromBytes != id {
			t.Fatalf("InternFHBytes(%q) = %d, InternFH = %d", s, fromBytes, id)
		}
	}
	if InternFH("") != 0 {
		t.Fatal("empty handle must intern as the zero FH")
	}
}

// TestInternFHConcurrent hammers the table from many goroutines with
// overlapping handle sets; run under -race this doubles as the data-race
// check for the sharded table. Every goroutine must observe the same ID
// for the same spelling.
func TestInternFHConcurrent(t *testing.T) {
	const goroutines = 8
	const handles = 400
	spellings := make([]string, handles)
	for i := range spellings {
		spellings[i] = fmt.Sprintf("conc-%04x-%d", i*2654435761, i)
	}
	ids := make([][]FH, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		ids[g] = make([]FH, handles)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Interleave orders so goroutines race on first-sight
			// interning of the same spellings.
			for i := 0; i < handles; i++ {
				k := (i*7 + g*13) % handles
				if g%2 == 0 {
					ids[g][k] = InternFHBytes([]byte(spellings[k]))
				} else {
					ids[g][k] = InternFH(spellings[k])
				}
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range spellings {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got %d for %q, goroutine 0 got %d",
					g, ids[g][i], spellings[i], ids[0][i])
			}
		}
	}
	for i, s := range spellings {
		if got := ids[0][i].String(); got != s {
			t.Fatalf("reverse lookup %q after concurrent intern: %q", s, got)
		}
	}
}

// TestInternProcVocabulary: the fixed vocabulary has stable IDs with
// exact string round-trips, and the v3 prefix matches the v3 procedure
// numbering.
func TestInternProcVocabulary(t *testing.T) {
	for id, name := range staticProcNames {
		got, err := InternProc(name)
		if err != nil || got != ProcID(id) {
			t.Fatalf("InternProc(%q) = %d, %v; want %d", name, got, err, id)
		}
		if s := ProcID(id).String(); s != name {
			t.Fatalf("ProcID(%d).String() = %q, want %q", id, s, name)
		}
	}
	if ProcRead != 6 || ProcWrite != 7 || ProcCommit != 21 {
		t.Fatal("v3 procedure numbers must match their ProcIDs")
	}
	if MustProc("read") != ProcRead {
		t.Fatal("MustProc disagrees with the constant")
	}
}

// TestInternProcDynamic: unknown names register once and round-trip.
func TestInternProcDynamic(t *testing.T) {
	id, err := InternProc("intern-test-proc")
	if err != nil {
		t.Skipf("dynamic table exhausted by earlier tests: %v", err)
	}
	if id < numStaticProcs {
		t.Fatalf("dynamic name landed on a static ID %d", id)
	}
	if id.String() != "intern-test-proc" {
		t.Fatalf("round trip: %q", id.String())
	}
	again, err := InternProcBytes([]byte("intern-test-proc"))
	if err != nil || again != id {
		t.Fatalf("re-intern: %d, %v", again, err)
	}
}

// TestInternIDStableAcrossMerges decodes two trace files that share
// handles — serially, in parallel, and merged — and requires the same
// handle spelling to resolve to the same ID everywhere, which is what
// lets multi-file trace sets feed ID-keyed reducers directly.
func TestInternIDStableAcrossMerges(t *testing.T) {
	mkTrace := func(seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		tm := 1000.0
		for i := 0; i < 200; i++ {
			tm += rng.Float64() * 0.01
			r := &Record{
				Time: tm, Kind: KindCall, Client: 5, Port: 800, Server: 1,
				Proto: ProtoUDP, XID: uint32(i), Version: 3, Proc: ProcRead,
				// Handles shared across both files.
				FH:     InternFH(fmt.Sprintf("merge-fh-%02d", rng.Intn(40))),
				Offset: uint64(i) * 8192, Count: 8192,
			}
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fileA, fileB := mkTrace(1), mkTrace(2)

	collect := func(srcs ...RecordSource) map[string]FH {
		out := make(map[string]FH)
		m := NewMerger(srcs...)
		for {
			r, err := m.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			spelling := r.FH.String()
			if prev, ok := out[spelling]; ok && prev != r.FH {
				t.Fatalf("handle %q mapped to both %d and %d", spelling, prev, r.FH)
			}
			out[spelling] = r.FH
		}
	}

	serial := collect(NewReader(bytes.NewReader(fileA)), NewReader(bytes.NewReader(fileB)))
	prA, err := NewParallelReader(bytes.NewReader(fileA), IngestConfig{Decoders: 3, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	prB, err := NewParallelReader(bytes.NewReader(fileB), IngestConfig{Decoders: 3, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	parallel := collect(prA, prB)

	if len(serial) == 0 || len(parallel) != len(serial) {
		t.Fatalf("handle sets differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for spelling, id := range serial {
		if parallel[spelling] != id {
			t.Fatalf("handle %q: serial ID %d, parallel ID %d", spelling, id, parallel[spelling])
		}
	}
}
