package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// tailRecord builds a minimal distinguishable call record; xid is the
// identity the assertions track.
func tailRecord(t float64, xid uint32) *Record {
	r := NewRecord()
	r.Time = t
	r.Client = 0x0a000001
	r.Port = 1023
	r.XID = xid
	r.Kind = KindCall
	r.Proto = ProtoUDP
	r.Version = 3
	r.Proc = MustProc("read")
	r.FH = InternFH("deadbeef")
	r.Offset = uint64(xid) * 8192
	r.Count = 8192
	return r
}

// appendRecords appends records [from, to) to path, one flush at the
// end, simulating a tracer writing a burst.
func appendRecords(t *testing.T, path string, base float64, from, to uint32) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for x := from; x < to; x++ {
		if err := w.Write(tailRecord(base+float64(x)*0.001, x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// xidLog collects the xids the tail goroutine yields, with the locking
// the cross-goroutine assertions need.
type xidLog struct {
	mu   sync.Mutex
	xids []uint32
}

func (l *xidLog) add(x uint32) { l.mu.Lock(); l.xids = append(l.xids, x); l.mu.Unlock() }
func (l *xidLog) len() int     { l.mu.Lock(); defer l.mu.Unlock(); return len(l.xids) }
func (l *xidLog) all() []uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]uint32(nil), l.xids...)
}

// collectTail drains tr on a goroutine, recording every xid in order.
func collectTail(t *testing.T, tr *TailReader) (<-chan struct{}, *xidLog) {
	t.Helper()
	done := make(chan struct{})
	log := &xidLog{}
	go func() {
		defer close(done)
		for {
			rec, err := tr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("tail: %v", err)
				return
			}
			log.add(rec.XID)
			tr.Recycle(rec)
		}
	}()
	return done, log
}

// waitLen polls until the collector has seen want records or the
// deadline passes.
func waitLen(t *testing.T, log *xidLog, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if log.len() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("tail: saw %d records, want %d", log.len(), want)
}

// assertSeq checks that xids is exactly 0..n-1 in order: nothing
// dropped, nothing duplicated, nothing reordered.
func assertSeq(t *testing.T, xids []uint32, n int) {
	t.Helper()
	if len(xids) != n {
		t.Fatalf("got %d records, want %d", len(xids), n)
	}
	for i, x := range xids {
		if x != uint32(i) {
			t.Fatalf("record %d has xid %d; drop or duplicate at the boundary", i, x)
		}
	}
}

// TestTailReaderMidStreamAppends starts the tail on a short file and
// keeps appending while the reader is mid-stream: every burst must
// surface exactly once, in order, across multiple EOF boundaries.
func TestTailReaderMidStreamAppends(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "live.trace")
	appendRecords(t, path, 1000, 0, 10)

	tr, err := NewTailReader(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)

	waitLen(t, xids, 10) // reader is at EOF, parked on the poll
	appendRecords(t, path, 1000, 10, 25)
	waitLen(t, xids, 25)
	appendRecords(t, path, 1000, 25, 40)
	waitLen(t, xids, 40)

	tr.Stop()
	<-done
	assertSeq(t, xids.all(), 40)
	if tr.Records() != 40 {
		t.Errorf("Records() = %d, want 40", tr.Records())
	}
}

// TestTailReaderRotation renames the file away mid-stream and recreates
// the path, the classic logrotate move. Records written to the old file
// before the rotation and to the new file after must each surface
// exactly once.
func TestTailReaderRotation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "live.trace")
	appendRecords(t, path, 1000, 0, 10)

	tr, err := NewTailReader(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)
	waitLen(t, xids, 10)

	// Burst, then rotate before the reader necessarily saw it: the
	// drain-before-switch rule must still deliver records 10..19.
	appendRecords(t, path, 1000, 10, 20)
	if err := os.Rename(path, filepath.Join(dir, "live.trace.1")); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, path, 2000, 20, 30) // creates the new file
	waitLen(t, xids, 30)

	appendRecords(t, path, 2000, 30, 35)
	waitLen(t, xids, 35)

	tr.Stop()
	<-done
	assertSeq(t, xids.all(), 35)
	if tr.Rotations() != 1 {
		t.Errorf("Rotations() = %d, want 1", tr.Rotations())
	}
	if tr.Discarded() != 0 {
		t.Errorf("Discarded() = %d, want 0", tr.Discarded())
	}
}

// TestTailReaderTruncation truncates the file in place (copytruncate
// rotation) and writes a fresh stream; the reader must restart from
// offset zero without duplicating the pre-truncation records.
func TestTailReaderTruncation(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "live.trace")
	appendRecords(t, path, 1000, 0, 12)

	tr, err := NewTailReader(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)
	waitLen(t, xids, 12)

	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, path, 2000, 12, 20)
	waitLen(t, xids, 20)

	tr.Stop()
	<-done
	assertSeq(t, xids.all(), 20)
}

// TestTailReaderPartialLine writes a record in two halves around the
// reader's poll: the half-written line must not surface (or error)
// until its newline lands.
func TestTailReaderPartialLine(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "live.trace")
	appendRecords(t, path, 1000, 0, 3)

	tr, err := NewTailReader(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)
	waitLen(t, xids, 3)

	// Marshal record 3 and append it split mid-line.
	full := tailRecord(1000.5, 3).AppendMarshal(nil)
	full = append(full, '\n')
	half := len(full) / 2
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:half]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // reader polls past the fragment
	if got := xids.len(); got != 3 {
		t.Fatalf("half-written line surfaced: %d records", got)
	}
	if _, err := f.Write(full[half:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitLen(t, xids, 4)

	tr.Stop()
	<-done
	assertSeq(t, xids.all(), 4)
}

// TestTailReaderStopDrains ensures Stop after a final burst still
// yields the burst: stop means "finish what is on disk", not "abandon".
func TestTailReaderStopDrains(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "live.trace")
	appendRecords(t, path, 1000, 0, 5)

	tr, err := NewTailReader(path, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)
	waitLen(t, xids, 5)

	appendRecords(t, path, 1000, 5, 30)
	tr.Stop() // reader is parked on a long poll; stop must still drain
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not finish after Stop")
	}
	assertSeq(t, xids.all(), 30)
}

// TestTailReaderComments checks blank lines and comments are skipped in
// tail mode exactly as in batch mode.
func TestTailReaderComments(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "live.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "# tracer restart")
	fmt.Fprintln(f)
	w := NewWriter(f)
	if err := w.Write(tailRecord(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := NewTailReader(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	done, xids := collectTail(t, tr)
	waitLen(t, xids, 1)
	tr.Stop()
	<-done
	assertSeq(t, xids.all(), 1)
}
