package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleCall() *Record {
	return &Record{
		Time: 1003680000.004742, Kind: KindCall,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: MustProc("read"),
		FH: InternFH("0000000000000007"), Offset: 8192, Count: 8192,
		UID: 501, GID: 100,
	}
}

func sampleReply() *Record {
	return &Record{
		Time: 1003680000.005100, Kind: KindReply,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: MustProc("read"),
		Status: 0, RCount: 8192, Size: 2 << 20, FileID: 7, EOF: false,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range []*Record{sampleCall(), sampleReply()} {
		line := r.Marshal()
		got, err := UnmarshalRecord(line)
		if err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		if *got != *r {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestRecordRoundTripAllFields(t *testing.T) {
	r := &Record{
		Time: 1.5, Kind: KindCall, Client: 1, Port: 2, Server: 3, Proto: ProtoTCP,
		XID: 0xdeadbeef, Version: 2, Proc: MustProc("rename"),
		FH: InternFH("aa"), Name: "old name.txt", FH2: InternFH("bb"), Name2: "new=name",
		Offset: 5, Count: 6, Stable: 2, SetSize: 0, HasSet: true,
		UID: 7, GID: 8,
	}
	got, err := UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("\n got %+v\nwant %+v", got, r)
	}

	rep := &Record{
		Time: 2.25, Kind: KindReply, Client: 1, Port: 2, Server: 3, Proto: ProtoTCP,
		XID: 1, Version: 3, Proc: MustProc("setattr"),
		Status: 0, Size: 100, FileID: 42, Mtime: 123.456789,
		PreSize: 9000, HasPre: true, NewFH: InternFH("cc"), EOF: true,
	}
	got, err = UnmarshalRecord(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rep {
		t.Fatalf("\n got %+v\nwant %+v", got, rep)
	}
}

func TestEscaping(t *testing.T) {
	names := []string{
		"plain", "with space", "tab\there", "new\nline",
		"back\\slash", "eq=sign", "mixed \t\\= all",
	}
	for _, n := range names {
		r := sampleCall()
		r.Proc = MustProc("lookup")
		r.Name = n
		got, err := UnmarshalRecord(r.Marshal())
		if err != nil {
			t.Fatalf("%q: %v", n, err)
		}
		if got.Name != n {
			t.Fatalf("name %q → %q", n, got.Name)
		}
	}
}

func TestEscapeQuick(t *testing.T) {
	f := func(s string) bool { return unescapeBytes([]byte(escape(s))) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"1.0 C",
		"xxx C 1.2 3 U 5 3 read uid=0 gid=0",
		"1.0 Z 1.2 3 U 5 3 read uid=0 gid=0",
		"1.0 C 12 3 U 5 3 read uid=0 gid=0",    // client missing port
		"1.0 C 1.2 3 U zz 3 read uid=0 gid=0x", // bad xid? zz invalid hex
		"1.0 C 1.xyz 3 U 5 3 read uid=0",       // bad port
		"1.0 C 1.2 zz@ U 5 3 read uid=0",       // bad server
		"1.0 C 1.2 3 UU 5 3 read uid=0",        // bad proto
		"1.0 C 1.2 3 U 5 vv read uid=0",        // bad version
	}
	for _, line := range bad {
		if _, err := UnmarshalRecord(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestUnknownKeysIgnored(t *testing.T) {
	line := sampleCall().Marshal() + " future=value flag"
	got, err := UnmarshalRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.FH != InternFH("0000000000000007") {
		t.Fatal("known fields lost")
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := []*Record{sampleCall(), sampleReply()}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Fatalf("count %d", w.Count())
	}
	w.Flush()

	// Inject comments and blanks.
	text := "# trace header\n\n" + buf.String() + "\n# trailer\n"
	got, err := ReadAll(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range got {
		if *got[i] != *records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriteAllReadAll(t *testing.T) {
	var records []*Record
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		r := sampleCall()
		r.Time = float64(i) * 0.001
		r.XID = rng.Uint32()
		records = append(records, r)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("%d records", len(got))
	}
}

func TestJoinMatchesCallReply(t *testing.T) {
	call, reply := sampleCall(), sampleReply()
	ops, stats := Join([]*Record{call, reply})
	if len(ops) != 1 {
		t.Fatalf("%d ops", len(ops))
	}
	op := ops[0]
	if !op.Replied || op.RT != reply.Time || op.RCount != 8192 || op.Size != 2<<20 {
		t.Fatalf("op: %+v", op)
	}
	if stats.Matched != 1 || stats.UnmatchedCalls != 0 || stats.OrphanReplies != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if op.Bytes() != 8192 || !op.IsRead() || op.IsMetadata() {
		t.Fatalf("derived: %+v", op)
	}
}

func TestJoinLostReply(t *testing.T) {
	call := sampleCall()
	ops, stats := Join([]*Record{call})
	if len(ops) != 1 || ops[0].Replied {
		t.Fatalf("ops: %+v", ops)
	}
	if stats.UnmatchedCalls != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	// Lost reply still counts requested bytes.
	if ops[0].Bytes() != 8192 {
		t.Fatalf("bytes = %d", ops[0].Bytes())
	}
}

func TestJoinOrphanReply(t *testing.T) {
	reply := sampleReply()
	ops, stats := Join([]*Record{reply})
	if len(ops) != 0 {
		t.Fatalf("ops from orphan: %d", len(ops))
	}
	if stats.OrphanReplies != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.LossEstimate() <= 0 {
		t.Fatal("loss estimate zero with orphan present")
	}
}

func TestJoinRetransmittedCall(t *testing.T) {
	call1 := sampleCall()
	call2 := sampleCall()
	call2.Time += 1.0 // retransmission
	reply := sampleReply()
	reply.Time += 1.1
	ops, stats := Join([]*Record{call1, call2, reply})
	if len(ops) != 1 {
		t.Fatalf("%d ops", len(ops))
	}
	if ops[0].T != call1.Time {
		t.Fatalf("kept duplicate's time %v", ops[0].T)
	}
	if stats.Calls != 2 || stats.Matched != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestJoinDistinguishesClients(t *testing.T) {
	// Same xid from two clients must not cross-match.
	c1, c2 := sampleCall(), sampleCall()
	c2.Client = 0x0a000006
	r1 := sampleReply() // for c1
	ops, stats := Join([]*Record{c1, c2, r1})
	if stats.Matched != 1 || stats.UnmatchedCalls != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	matched := 0
	for _, op := range ops {
		if op.Replied {
			matched++
			if op.Client != c1.Client {
				t.Fatal("reply matched to wrong client")
			}
		}
	}
	if matched != 1 {
		t.Fatalf("matched ops = %d", matched)
	}
}

func TestJoinOutputSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var records []*Record
	for i := 0; i < 300; i++ {
		c := sampleCall()
		c.XID = uint32(i)
		c.Time = float64(rng.Intn(1000)) * 0.01
		records = append(records, c)
	}
	ops, _ := Join(records)
	for i := 1; i < len(ops); i++ {
		if ops[i-1].T > ops[i].T {
			t.Fatalf("unsorted at %d: %v > %v", i, ops[i-1].T, ops[i].T)
		}
	}
}

func TestFilterOps(t *testing.T) {
	var ops []*Op
	for i := 0; i < 10; i++ {
		ops = append(ops, &Op{T: float64(i)})
	}
	got := FilterOps(ops, 3, 7)
	if len(got) != 4 || got[0].T != 3 || got[3].T != 6 {
		t.Fatalf("filtered: %+v", got)
	}
}

func TestOpClassification(t *testing.T) {
	for proc, want := range map[string][3]bool{
		"read":    {true, false, false},
		"write":   {false, true, false},
		"getattr": {false, false, true},
		"lookup":  {false, false, true},
	} {
		op := &Op{Proc: MustProc(proc)}
		if op.IsRead() != want[0] || op.IsWrite() != want[1] || op.IsMetadata() != want[2] {
			t.Errorf("%s: classification wrong", proc)
		}
	}
}
