package core

// Native fuzz targets for the trace codecs. The ingest layer is the
// part of the system that eats untrusted bytes — archived traces from
// other tools, damaged disks, truncated transfers — so the contract
// under fuzzing is: malformed input returns an error, never a panic,
// and the parallel front end is indistinguishable from the serial one
// on every input, good or bad.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// FuzzTextRecord fuzzes the text-format line parser: arbitrary lines
// must parse or error (never panic), and any line it accepts must
// marshal back to a line it accepts again.
func FuzzTextRecord(f *testing.F) {
	// Seed with real trace lines: representative call/reply shapes
	// from the generator, escaping torture, comments, and near-misses.
	rng := rand.New(rand.NewSource(7))
	tm := 1000.0
	for i := 0; i < 12; i++ {
		tm += rng.Float64() * 0.01
		f.Add(randomRecord(rng, tm).Marshal())
	}
	esc := sampleCall()
	esc.Proc = MustProc("lookup")
	esc.Name = "spa ced\ttab\\slash=eq\nnl"
	f.Add(esc.Marshal())
	f.Add(sampleReply().Marshal())
	f.Add("# comment line")
	f.Add("")
	f.Add("1.0 C 1.2 3 U 5 3 read uid=0 gid=0")
	f.Add("1.0 Z 1.2 3 U 5 3 read")
	f.Add("xxx C 1.2 3 U 5 3 read uid=0")
	// Tokenizer edges: exotic separators, the float fast-path
	// boundaries and its strconv fallback, saturating kv values, hex
	// case, and dynamically interned procedure names.
	f.Add("1.0\tC\t1.2 3\vU\r5 3 read uid=0 gid=0")
	f.Add("1e5 C 1.2 3 U 5 3 read uid=0 gid=0")
	f.Add("9007199254740993.5 C 1.2 3 U 5 3 read uid=0 gid=0")
	f.Add("1.1234567 C 1.2 3 U 5 3 read mtime=2.9999999 uid=0 gid=0")
	f.Add("1.0 C aB.65535 FFFF U ffffffff 4294967295 read off=99999999999999999999 count=99999999999999999999 uid=0 gid=0")
	f.Add("1.0 C 1.2 3 U 5 3 some-unseen-proc fh=00ff newfh=00FF name=a\\sb eof=1")
	f.Add("1.0 C 1.2 3 U 5 3 read = =x x= fh= uid=0 gid=0")

	f.Fuzz(func(t *testing.T, line string) {
		rec, err := UnmarshalRecord(line)
		if err != nil {
			if rec != nil {
				t.Fatalf("error %v returned alongside a record", err)
			}
			return
		}
		canonical := rec.Marshal()
		if _, err := UnmarshalRecord(canonical); err != nil {
			t.Fatalf("accepted %q but rejected its canonical form %q: %v", line, canonical, err)
		}
	})
}

// fuzzRecords derives well-formed records deterministically from fuzz
// bytes, respecting the writer's field invariants (times are µs-
// aligned and non-negative; SetSize/PreSize only travel with their
// presence flags) so a write→read round trip must be exact.
func fuzzRecords(data []byte) []*Record {
	cur := 0
	next := func() byte {
		if cur >= len(data) {
			return 0
		}
		b := data[cur]
		cur++
		return b
	}
	u16 := func() uint16 { return uint16(next()) | uint16(next())<<8 }
	u32 := func() uint32 { return uint32(u16()) | uint32(u16())<<16 }
	u64 := func() uint64 { return uint64(u32()) | uint64(u32())<<32 }
	str := func() string {
		n := int(next()) % 24
		b := make([]byte, n)
		for i := range b {
			b[i] = next()
		}
		return string(b)
	}
	// Proc is an interned byte-sized ID; derive it from the fuzz bytes
	// through the intern table. Should a long fuzz campaign exhaust the
	// table's dynamic space, collapse to "null" — the round trip still
	// holds, IDs being equal.
	proc := func() ProcID {
		id, err := InternProc(str())
		if err != nil {
			return ProcNull
		}
		return id
	}
	n := int(next())%6 + 1
	records := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		r := &Record{
			Time: float64(u32()) / 1e6, Proto: next(),
			Client: u32(), Port: u16(), Server: u32(), XID: u32(),
			Version: u32(), Proc: proc(), UID: u32(), GID: u32(),
			FH: InternFH(str()), Name: str(), FH2: InternFH(str()), Name2: str(),
			Offset: u64(), Count: u32(), Stable: u32(),
			Status: u32(), RCount: u32(), Size: u64(), FileID: u64(),
			Mtime: float64(u32()) / 1e6, NewFH: InternFH(str()),
			EOF: next()%2 == 0,
		}
		r.Kind = KindCall
		if next()%2 == 0 {
			r.Kind = KindReply
		}
		if next()%2 == 0 {
			r.HasSet, r.SetSize = true, u64()
		}
		if next()%2 == 0 {
			r.HasPre, r.PreSize = true, u64()
		}
		records = append(records, r)
	}
	return records
}

// FuzzBinaryRoundTrip fuzzes the binary format from both sides: the
// reader must survive arbitrary bytes (truncated varints and payloads
// return errors, never panic or spin), and records derived from the
// bytes must survive a write→read round trip exactly.
func FuzzBinaryRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	var seed bytes.Buffer
	w := NewBinaryWriter(&seed)
	tm := 1000.0
	for i := 0; i < 8; i++ {
		tm += rng.Float64() * 0.01
		w.Write(randomRecord(rng, tm))
	}
	w.Flush()
	stream := seed.Bytes()
	f.Add(stream)
	f.Add(stream[:len(stream)-3])                    // truncated payload
	f.Add(stream[:9])                                // truncated just past the magic
	f.Add(append(append([]byte{}, stream...), 0x80)) // dangling varint
	f.Add([]byte{})
	f.Add([]byte("NOTATRACE"))
	f.Add(binaryMagic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		// (a) Arbitrary bytes: errors are fine, panics and infinite
		// loops are not. Every record consumes input, so the stream is
		// exhausted within len(data) reads.
		br := NewBinaryReader(bytes.NewReader(data))
		for i := 0; i <= len(data); i++ {
			if _, err := br.Next(); err != nil {
				break
			}
		}

		// (b) Round trip: write records derived from the bytes, read
		// them back, require exact equality.
		records := fuzzRecords(data)
		var buf bytes.Buffer
		bw := NewBinaryWriter(&buf)
		for _, r := range records {
			if err := bw.Write(r); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		rd := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		for i, want := range records {
			got, err := rd.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if *got != *want {
				t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want)
			}
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("after %d records: %v, want EOF", len(records), err)
		}
	})
}

// FuzzIngestEquivalence is the differential target: on any input —
// text, binary, gzip, or garbage — the parallel reader must yield
// exactly the records, order, and terminal error of the serial path.
func FuzzIngestEquivalence(f *testing.F) {
	rng := rand.New(rand.NewSource(13))
	records := make([]*Record, 0, 40)
	tm := 1000.0
	for i := 0; i < 40; i++ {
		tm += rng.Float64() * 0.01
		records = append(records, randomRecord(rng, tm))
	}
	var text bytes.Buffer
	text.WriteString("# header\n")
	for _, r := range records {
		text.WriteString(r.Marshal())
		text.WriteByte('\n')
	}
	f.Add(text.Bytes())
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, r := range records {
		bw.Write(r)
	}
	bw.Flush()
	f.Add(bin.Bytes())
	f.Add(bin.Bytes()[:bin.Len()-5])
	f.Add([]byte("1.0 C 1.2 3 U 5 3 read uid=0 gid=0\ngarbage\n"))
	f.Add([]byte{0x1f, 0x8b, 0x08}) // gzip magic, truncated header
	f.Add([]byte{})
	// New-tokenizer seeds: both front ends must tokenize these the same
	// way — exotic separators, float fallbacks, interned unknown procs,
	// and saturating values.
	f.Add([]byte("1.0\tC\t1.2 3\vU\r5 3 read uid=0 gid=0\n1e5 C 1.2 3 U 5 3 equiv-proc fh=ab off=18446744073709551616\n"))
	f.Add([]byte("9007199254740993.25 C aB.65535 FFFF U ffffffff 3 lookup fh=00ff name=x newfh=00FF\n# c\n\n1.1234567 R 1.2 3 U 5 3 read status=0 mtime=1e-3\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		serialSrc, serialOpenErr := DetectSource(bytes.NewReader(data))
		pr, parOpenErr := NewParallelReader(bytes.NewReader(data), IngestConfig{Decoders: 3, BatchBytes: 97, BatchRecords: 3})
		if (serialOpenErr == nil) != (parOpenErr == nil) {
			t.Fatalf("open: serial err %v, parallel err %v", serialOpenErr, parOpenErr)
		}
		if serialOpenErr != nil {
			if serialOpenErr.Error() != parOpenErr.Error() {
				t.Fatalf("open errors differ: %v vs %v", serialOpenErr, parOpenErr)
			}
			return
		}
		want, wantErr := drain(serialSrc)
		got, gotErr := drain(pr)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("terminal error: parallel %v vs serial %v", gotErr, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("parallel yielded %d records, serial %d", len(got), len(want))
		}
		for i := range want {
			if *got[i] != *want[i] {
				t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
			}
		}
	})
}
