package core

// Handle and procedure interning: the data plane's key types.
//
// A trace of tens of millions of messages names only tens of thousands
// of distinct file handles, yet the record model used to carry every
// handle as its own heap-allocated hex string, and every per-file
// reducer hashed those strings on every operation. This file replaces
// the strings with dense integer IDs:
//
//   - FH is a uint32 naming one distinct file-handle spelling. A
//     process-wide sharded intern table assigns IDs on first sight;
//     a reverse table renders the original spelling at output time.
//     Equal IDs mean equal handles, so reducers key maps by uint32
//     (one integer hash) and the router shards by a 4-byte mix instead
//     of re-hashing hex strings per record.
//   - ProcID is a byte naming a procedure. The NFS v2/v3 and MOUNT
//     vocabularies get fixed IDs (ProcRead, ProcLookup, ...), so the
//     hot-path taxonomy tests are integer compares; unknown names seen
//     in foreign traces are registered dynamically, preserving the text
//     format's round-trip, up to the 256-entry capacity of a byte.
//
// Interning is concurrency-safe (the parallel ingest decoders intern
// from many goroutines) and monotone: an ID, once assigned, never
// changes or disappears, which is what makes IDs stable across the
// files of a multi-file trace set and across serial/parallel decode of
// the same input. ID numbering does depend on arrival order, so IDs
// never appear in rendered output — handles are printed through
// FH.String, and anything sorted for presentation sorts by the rendered
// spelling, not the ID.

import (
	"errors"
	"sync"
	"sync/atomic"
)

// FH is an interned file handle: a dense ID into the process-wide
// handle table. The zero FH is the absent handle and renders as "".
type FH uint32

const fhShardCount = 64 // power of two; shard by string hash

type fhShard struct {
	mu sync.RWMutex
	m  map[string]FH
}

var fhTable = struct {
	shards [fhShardCount]fhShard
	mu     sync.Mutex               // serializes ID allocation
	rev    atomic.Pointer[[]string] // ID → spelling, lock-free reads
}{}

func init() {
	for i := range fhTable.shards {
		fhTable.shards[i].m = make(map[string]FH)
	}
	rev := []string{""} // FH(0) is the absent handle
	fhTable.rev.Store(&rev)
	fhTable.shards[fhHashString("")&(fhShardCount-1)].m[""] = 0
}

// fhHash is FNV-1a over the handle bytes, used only to pick a shard.
func fhHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

func fhHashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// InternFHBytes interns a handle spelling given as bytes. The hit path
// (every handle after its first sight) performs no allocation.
func InternFHBytes(b []byte) FH {
	sh := &fhTable.shards[fhHash(b)&(fhShardCount-1)]
	sh.mu.RLock()
	id, ok := sh.m[string(b)] // compiler avoids the []byte→string copy
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return internFHSlow(sh, string(b))
}

// InternFH interns a handle spelling.
func InternFH(s string) FH {
	sh := &fhTable.shards[fhHashString(s)&(fhShardCount-1)]
	sh.mu.RLock()
	id, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return internFHSlow(sh, s)
}

func internFHSlow(sh *fhShard, s string) FH {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[s]; ok {
		return id
	}
	fhTable.mu.Lock()
	rev := append(*fhTable.rev.Load(), s)
	id := FH(len(rev) - 1)
	fhTable.rev.Store(&rev)
	fhTable.mu.Unlock()
	sh.m[s] = id
	return id
}

// String renders the handle's original spelling ("" for the zero FH).
// The returned string is the canonical interned copy; no allocation.
func (fh FH) String() string { return (*fhTable.rev.Load())[fh] }

// ProcID is an interned procedure name. The fixed vocabulary below
// covers NFSv3, the NFSv2-only procedures, and the MOUNT protocol;
// other names register dynamically on first sight.
type ProcID uint8

// Fixed procedure IDs. The first 22 match the NFSv3 procedure numbers.
const (
	ProcNull ProcID = iota
	ProcGetattr
	ProcSetattr
	ProcLookup
	ProcAccess
	ProcReadlink
	ProcRead
	ProcWrite
	ProcCreate
	ProcMkdir
	ProcSymlink
	ProcMknod
	ProcRemove
	ProcRmdir
	ProcRename
	ProcLink
	ProcReaddir
	ProcReaddirplus
	ProcFsstat
	ProcFsinfo
	ProcPathconf
	ProcCommit
	// NFSv2-only procedures.
	ProcRoot
	ProcWritecache
	ProcStatfs
	// MOUNT procedures ("null" is shared with NFS).
	ProcMnt
	ProcDump
	ProcUmnt
	ProcUmntall
	ProcExport
	numStaticProcs
)

var staticProcNames = [numStaticProcs]string{
	"null", "getattr", "setattr", "lookup", "access", "readlink",
	"read", "write", "create", "mkdir", "symlink", "mknod",
	"remove", "rmdir", "rename", "link", "readdir", "readdirplus",
	"fsstat", "fsinfo", "pathconf", "commit",
	"root", "writecache", "statfs",
	"mnt", "dump", "umnt", "umntall", "export",
}

// ErrProcTableFull reports that the 256-entry procedure table cannot
// register yet another distinct procedure name.
var ErrProcTableFull = errors.New("core: procedure table full")

var procTable = struct {
	mu  sync.RWMutex
	m   map[string]ProcID
	rev atomic.Pointer[[]string]
}{}

func init() {
	procTable.m = make(map[string]ProcID, numStaticProcs)
	rev := make([]string, numStaticProcs)
	for i, name := range staticProcNames {
		procTable.m[name] = ProcID(i)
		rev[i] = name
	}
	procTable.rev.Store(&rev)
}

// InternProcBytes interns a procedure name given as bytes; the hit path
// performs no allocation.
func InternProcBytes(b []byte) (ProcID, error) {
	procTable.mu.RLock()
	id, ok := procTable.m[string(b)]
	procTable.mu.RUnlock()
	if ok {
		return id, nil
	}
	return internProcSlow(string(b))
}

// InternProc interns a procedure name.
func InternProc(s string) (ProcID, error) {
	procTable.mu.RLock()
	id, ok := procTable.m[s]
	procTable.mu.RUnlock()
	if ok {
		return id, nil
	}
	return internProcSlow(s)
}

func internProcSlow(s string) (ProcID, error) {
	procTable.mu.Lock()
	defer procTable.mu.Unlock()
	if id, ok := procTable.m[s]; ok {
		return id, nil
	}
	rev := *procTable.rev.Load()
	if len(rev) >= 256 {
		return 0, ErrProcTableFull
	}
	rev = append(rev, s)
	id := ProcID(len(rev) - 1)
	procTable.rev.Store(&rev)
	procTable.m[s] = id
	return id, nil
}

// MustProc interns a procedure name, panicking on table overflow. Use
// it for names from the fixed NFS/MOUNT vocabulary.
func MustProc(s string) ProcID {
	id, err := InternProc(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the procedure's name.
func (p ProcID) String() string {
	rev := *procTable.rev.Load()
	if int(p) < len(rev) {
		return rev[p]
	}
	return "" // unassigned ID; unreachable for interned values
}
