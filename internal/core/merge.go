package core

// Trace merging: the CAMPUS tracer watched fourteen virtual hosts (one
// per disk array), producing one capture per array. Cross-array
// analyses need the streams interleaved back into global time order,
// which is a k-way merge over already-sorted inputs.

import (
	"container/heap"
	"io"
)

// RecordSource is anything that yields records in time order —
// *Reader, *BinaryReader, and SliceSource all satisfy it.
type RecordSource interface {
	Next() (*Record, error)
}

// SliceSource adapts an in-memory record slice to RecordSource.
type SliceSource struct {
	Records []*Record
	i       int
}

// Next implements RecordSource.
func (s *SliceSource) Next() (*Record, error) {
	if s.i >= len(s.Records) {
		return nil, io.EOF
	}
	r := s.Records[s.i]
	s.i++
	return r, nil
}

type mergeItem struct {
	rec *Record
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].rec.Time != h[j].rec.Time {
		return h[i].rec.Time < h[j].rec.Time
	}
	return h[i].src < h[j].src // stable across sources
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Merger interleaves several time-sorted record sources into one
// time-sorted stream.
type Merger struct {
	sources []RecordSource
	h       mergeHeap
	primed  bool
}

// NewMerger builds a merger over the given sources.
func NewMerger(sources ...RecordSource) *Merger {
	return &Merger{sources: sources}
}

func (m *Merger) prime() error {
	for i, src := range m.sources {
		rec, err := src.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		heap.Push(&m.h, mergeItem{rec: rec, src: i})
	}
	m.primed = true
	return nil
}

// Next implements RecordSource over the merged stream.
func (m *Merger) Next() (*Record, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return nil, err
		}
	}
	if m.h.Len() == 0 {
		return nil, io.EOF
	}
	item := heap.Pop(&m.h).(mergeItem)
	next, err := m.sources[item.src].Next()
	if err == nil {
		heap.Push(&m.h, mergeItem{rec: next, src: item.src})
	} else if err != io.EOF {
		return nil, err
	}
	return item.rec, nil
}

// MergeAll drains a merger into a slice.
func MergeAll(sources ...RecordSource) ([]*Record, error) {
	m := NewMerger(sources...)
	var out []*Record
	for {
		rec, err := m.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
