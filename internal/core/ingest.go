package core

// Parallel ingest: the trace decoder was the last serial stage in the
// analysis hot path (docs/BENCHMARKS.md) — one goroutine parsed every
// line while the sharded pipeline idled behind it. This file splits
// ingest into three stages:
//
//	input ──► splitter ──► decoder pool ──► resequencer ──► records
//	          cuts text on    N goroutines     restores batch
//	          line boundaries  parse batches    order, yields
//	          and binary on    concurrently     the exact serial
//	          record bounds                     stream
//
// The splitter is cheap: for text it only finds newlines, for the
// binary format it walks length prefixes and the two leading varints
// of each record (presence bitmap + zigzag time delta) so every batch
// carries the absolute-time base it needs to decode independently.
// All expensive work — field parsing, string allocation — runs in the
// decoder pool. The resequencer releases batches strictly in splitter
// order, so a ParallelReader is observationally identical to the
// serial Reader/BinaryReader at any decoder count: same records, same
// order, same errors at the same points. The equivalence is enforced
// by tests and by a differential fuzz target (FuzzIngestEquivalence).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// maxLineBytes caps one text line, matching the serial Reader's
// scanner buffer; longer lines surface bufio.ErrTooLong on both paths.
const maxLineBytes = 1 << 20

// ErrReaderStopped reports a Next call after Stop tore the reader down.
var ErrReaderStopped = errors.New("core: parallel reader stopped")

// IngestConfig sizes a ParallelReader.
type IngestConfig struct {
	// Decoders is the number of concurrent decode goroutines; <= 0
	// selects runtime.GOMAXPROCS(0). Every count produces the exact
	// serial stream.
	Decoders int
	// BatchBytes is the target text batch cut by the splitter; <= 0
	// selects 256 KiB. Smaller batches spread work sooner, larger ones
	// amortize channel traffic.
	BatchBytes int
	// BatchRecords is the number of binary records per batch; <= 0
	// selects 2048.
	BatchRecords int
}

func (c IngestConfig) decoders() int {
	if c.Decoders > 0 {
		return c.Decoders
	}
	return runtime.GOMAXPROCS(0)
}

func (c IngestConfig) batchBytes() int {
	if c.BatchBytes > 0 {
		return c.BatchBytes
	}
	return 256 << 10
}

func (c IngestConfig) batchRecords() int {
	if c.BatchRecords > 0 {
		return c.BatchRecords
	}
	return 2048
}

// batch is one splitter unit of work. Text batches hold whole lines;
// binary batches hold length-prefixed record payloads plus the
// absolute time base the delta chain needs.
type batch struct {
	seq       int
	data      []byte
	firstLine int64 // text: 1-based number of the first line
	baseUsec  int64 // binary: lastUsec before the first record
}

// result is one decoded batch, or the splitter's terminal marker
// (records empty, err set — io.EOF for a clean end).
type result struct {
	seq  int
	recs []*Record
	err  error
}

// ParallelReader is a RecordSource that decodes a trace with a pool of
// goroutines while preserving the serial stream exactly. The input is
// sniffed like DetectSource: gzip is decompressed transparently and
// the text/binary format is auto-detected.
type ParallelReader struct {
	workCh   chan batch
	resCh    chan result
	stop     chan struct{}
	stopOnce sync.Once

	// Resequencer state, touched only by the consuming goroutine.
	pending map[int]result
	nextSeq int
	cur     result
	curIdx  int
}

// NewParallelReader starts the splitter and decoder goroutines over r.
// The reader shuts its goroutines down when the stream ends or errors;
// call Stop to abandon it earlier.
func NewParallelReader(r io.Reader, cfg IngestConfig) (*ParallelReader, error) {
	br, binaryFormat, err := sniffReader(r)
	if err != nil {
		return nil, err
	}
	n := cfg.decoders()
	p := &ParallelReader{
		workCh:  make(chan batch, 2*n),
		resCh:   make(chan result, 2*n),
		stop:    make(chan struct{}),
		pending: make(map[int]result),
	}
	for i := 0; i < n; i++ {
		go p.decodeLoop(binaryFormat)
	}
	go func() {
		defer close(p.workCh)
		if binaryFormat {
			p.splitBinary(br, cfg.batchRecords())
		} else {
			p.splitText(br, cfg.batchBytes())
		}
	}()
	return p, nil
}

// Stop tears the reader down, releasing its goroutines. It is called
// automatically once Next returns any error (including io.EOF); it is
// safe to call repeatedly.
func (p *ParallelReader) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// Recycle implements RecordRecycler: records from Next come from the
// shared pool, and consumers hand dead ones back here.
func (p *ParallelReader) Recycle(r *Record) { FreeRecord(r) }

// Next implements RecordSource. Records come back in exact input
// order; the first decode or read error is returned at the same point
// in the stream where the serial reader would return it, and is then
// sticky.
func (p *ParallelReader) Next() (*Record, error) {
	for {
		if p.curIdx < len(p.cur.recs) {
			r := p.cur.recs[p.curIdx]
			p.curIdx++
			return r, nil
		}
		if p.cur.err != nil {
			p.Stop()
			return nil, p.cur.err
		}
		res, ok := p.pending[p.nextSeq]
		for !ok {
			select {
			case r := <-p.resCh:
				if r.seq == p.nextSeq {
					res, ok = r, true
				} else {
					p.pending[r.seq] = r
				}
			case <-p.stop:
				return nil, ErrReaderStopped
			}
		}
		delete(p.pending, p.nextSeq)
		p.nextSeq++
		p.cur, p.curIdx = res, 0
	}
}

// send hands a batch to the decoder pool, giving up if Stop ran.
func (p *ParallelReader) send(b batch) bool {
	select {
	case p.workCh <- b:
		return true
	case <-p.stop:
		return false
	}
}

// finish emits the splitter's terminal marker.
func (p *ParallelReader) finish(seq int, err error) {
	select {
	case p.resCh <- result{seq: seq, err: err}:
	case <-p.stop:
	}
}

func (p *ParallelReader) decodeLoop(binaryFormat bool) {
	for b := range p.workCh {
		var res result
		if binaryFormat {
			res = decodeBinaryBatch(b)
		} else {
			res = decodeTextBatch(b)
		}
		select {
		case p.resCh <- res:
		case <-p.stop:
			return
		}
	}
}

// readFill fills buf from br, returning the bytes read and the
// underlying reader's error verbatim. Unlike io.ReadFull it never
// rewrites a mid-stream error: a truncated gzip member reports
// io.ErrUnexpectedEOF itself, and masking that as a clean end of input
// would silently truncate a damaged archive.
func readFill(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// splitText cuts the input into batches of whole lines. Like the
// serial reader's scanner, a read error mid-stream still tokenizes the
// bytes read so far (records before the failure are delivered), and a
// line the scanner could not buffer surfaces as bufio.ErrTooLong.
func (p *ParallelReader) splitText(br *bufio.Reader, batchBytes int) {
	seq := 0
	line := int64(1)
	for {
		buf := make([]byte, batchBytes)
		n, err := readFill(br, buf)
		buf = buf[:n]
		final := err != nil
		if err == io.EOF {
			err = nil
		}
		if !final {
			// Grow to the next line boundary so batches hold whole
			// lines. A line the serial scanner could not buffer is
			// shipped oversized; the decoder reports ErrTooLong on it.
			for len(buf) > 0 && buf[len(buf)-1] != '\n' {
				frag, rerr := br.ReadSlice('\n')
				buf = append(buf, frag...)
				if rerr == nil {
					break
				}
				if rerr == bufio.ErrBufferFull {
					if len(buf) > batchBytes+maxLineBytes+1 {
						break
					}
					continue
				}
				final = true
				if rerr != io.EOF {
					err = rerr
				}
				break
			}
		}
		if len(buf) > 0 {
			nl := int64(bytes.Count(buf, []byte{'\n'}))
			if buf[len(buf)-1] != '\n' {
				nl++
			}
			if !p.send(batch{seq: seq, data: buf, firstLine: line}) {
				return
			}
			seq++
			line += nl
		}
		if final {
			if err == nil {
				err = io.EOF
			}
			p.finish(seq, err)
			return
		}
	}
}

// decodeTextBatch parses one batch of whole lines, mirroring the
// serial Reader: blank lines and '#' comments are skipped, parse
// errors carry the 1-based line number.
func decodeTextBatch(b batch) result {
	res := result{seq: b.seq}
	data := b.data
	line := b.firstLine
	for len(data) > 0 {
		var ln []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			ln, data = data[:i], data[i+1:]
		} else {
			ln, data = data, nil
		}
		// The serial scanner needs buffer headroom beyond the line —
		// for the newline, or (at end of input) to attempt the read
		// that reports EOF — so a line of exactly maxLineBytes already
		// fails there, terminated or not.
		if len(ln) >= maxLineBytes {
			res.err = bufio.ErrTooLong
			return res
		}
		ln = bytes.TrimSpace(ln)
		if len(ln) == 0 || ln[0] == '#' {
			line++
			continue
		}
		rec := NewRecord()
		if err := UnmarshalRecordBytes(ln, rec); err != nil {
			FreeRecord(rec)
			res.err = fmt.Errorf("line %d: %w", line, err)
			return res
		}
		line++
		res.recs = append(res.recs, rec)
	}
	return res
}

// splitBinary cuts the input on record boundaries. Only the length
// prefix and the two leading varints of each record are examined here
// — enough to find the next boundary and accumulate the absolute time
// each batch starts from; full field decoding happens in the pool.
func (p *ParallelReader) splitBinary(br *bufio.Reader, batchRecords int) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = ErrBadTraceMagic
		}
		p.finish(0, err)
		return
	}
	if hdr != binaryMagic {
		p.finish(0, ErrBadTraceMagic)
		return
	}
	seq := 0
	var lastUsec int64
	for {
		base := lastUsec
		var buf []byte
		var term error
		for recs := 0; recs < batchRecords; recs++ {
			recLen, err := binary.ReadUvarint(br)
			if err != nil {
				switch err {
				case io.EOF:
					term = io.EOF
				case io.ErrUnexpectedEOF:
					term = fmt.Errorf("core: truncated binary record length: %w", err)
				default:
					term = err
				}
				break
			}
			if recLen > maxBinaryRecord {
				term = fmt.Errorf("core: implausible binary record of %d bytes", recLen)
				break
			}
			start := len(buf)
			buf = binary.AppendUvarint(buf, recLen)
			off := len(buf)
			buf = append(buf, make([]byte, recLen)...)
			if _, err := io.ReadFull(br, buf[off:]); err != nil {
				term = fmt.Errorf("core: truncated binary record: %w", err)
				buf = buf[:start]
				break
			}
			delta, err := recordTimeDelta(buf[off:])
			if err != nil {
				term = err
				buf = buf[:start]
				break
			}
			lastUsec += delta
		}
		if len(buf) > 0 {
			if !p.send(batch{seq: seq, data: buf, baseUsec: base}) {
				return
			}
			seq++
		}
		if term != nil {
			p.finish(seq, term)
			return
		}
	}
}

// decodeBinaryBatch decodes one batch of length-prefixed record
// payloads, chaining time deltas from the batch's absolute base.
func decodeBinaryBatch(b batch) result {
	res := result{seq: b.seq}
	c := &byteCursor{b: b.data}
	lastUsec := b.baseUsec
	for c.off < len(c.b) {
		recLen, err := c.uvarint()
		if err != nil {
			res.err = err
			return res
		}
		payload := c.b[c.off : c.off+int(recLen)]
		c.off += int(recLen)
		rec := NewRecord()
		if err := decodeRecord(payload, &lastUsec, rec); err != nil {
			FreeRecord(rec)
			res.err = err
			return res
		}
		res.recs = append(res.recs, rec)
	}
	return res
}
