package core

import (
	"bytes"
	"io"
	"testing"
)

// benchIngest drains one full pass over data through either front end
// and reports bytes/sec of trace input. Records are recycled the way
// the streaming Joiner recycles them, so the pool is exercised as it is
// in production.
func benchIngest(b *testing.B, data []byte, open func(io.Reader) (RecordSource, error)) {
	b.Helper()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := open(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		rec, _ := src.(RecordRecycler)
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if rec != nil {
				rec.Recycle(r)
			}
		}
	}
}

// BenchmarkUnmarshalRecordBytes measures the in-place text tokenizer on
// a representative data-call line (the ingest hot path).
func BenchmarkUnmarshalRecordBytes(b *testing.B) {
	r := &Record{
		Time: 1003680000.004742, Kind: KindCall,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: ProcRead,
		FH: InternFH("0000000000000007"), Offset: 8192, Count: 8192, UID: 501, GID: 100,
	}
	line := []byte(r.Marshal())
	var rec Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = Record{}
		if err := UnmarshalRecordBytes(line, &rec); err != nil {
			b.Fatal(err)
		}
	}
	_ = rec
}

// BenchmarkAppendMarshal measures the append-style serialization path
// used by the text writer (nfsconvert/nfsgen).
func BenchmarkAppendMarshal(b *testing.B) {
	r := &Record{
		Time: 1003680000.004742, Kind: KindCall,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: ProcRead,
		FH: InternFH("0000000000000007"), Offset: 8192, Count: 8192, UID: 501, GID: 100,
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendMarshal(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkInternFH measures the intern hit path (every handle after
// its first sight).
func BenchmarkInternFH(b *testing.B) {
	handles := make([][]byte, 512)
	for i := range handles {
		r := &Record{}
		r.FH = InternFH(string(rune('a'+i%26)) + "bench-fh" + string(rune('0'+i%10)))
		handles[i] = []byte(r.FH.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if InternFHBytes(handles[i%len(handles)]) == 0 {
			b.Fatal("zero id")
		}
	}
}

func BenchmarkIngestText(b *testing.B) {
	data := noisyText(ingestRecords(100000))
	b.Run("serial", func(b *testing.B) {
		benchIngest(b, data, func(r io.Reader) (RecordSource, error) { return NewReader(r), nil })
	})
	for _, decoders := range []int{1, 2, 4} {
		b.Run(benchName("decoders", decoders), func(b *testing.B) {
			benchIngest(b, data, func(r io.Reader) (RecordSource, error) {
				return NewParallelReader(r, IngestConfig{Decoders: decoders})
			})
		})
	}
}

func BenchmarkIngestBinary(b *testing.B) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range ingestRecords(100000) {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
	data := buf.Bytes()
	b.Run("serial", func(b *testing.B) {
		benchIngest(b, data, func(r io.Reader) (RecordSource, error) { return NewBinaryReader(r), nil })
	})
	for _, decoders := range []int{1, 2, 4} {
		b.Run(benchName("decoders", decoders), func(b *testing.B) {
			benchIngest(b, data, func(r io.Reader) (RecordSource, error) {
				return NewParallelReader(r, IngestConfig{Decoders: decoders})
			})
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}
