package core

import (
	"bytes"
	"io"
	"testing"
)

// benchIngest drains one full pass over data through either front end
// and reports bytes/sec of trace input.
func benchIngest(b *testing.B, data []byte, open func(io.Reader) (RecordSource, error)) {
	b.Helper()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := open(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIngestText(b *testing.B) {
	data := noisyText(ingestRecords(100000))
	b.Run("serial", func(b *testing.B) {
		benchIngest(b, data, func(r io.Reader) (RecordSource, error) { return NewReader(r), nil })
	})
	for _, decoders := range []int{1, 2, 4} {
		b.Run(benchName("decoders", decoders), func(b *testing.B) {
			benchIngest(b, data, func(r io.Reader) (RecordSource, error) {
				return NewParallelReader(r, IngestConfig{Decoders: decoders})
			})
		})
	}
}

func BenchmarkIngestBinary(b *testing.B) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range ingestRecords(100000) {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
	data := buf.Bytes()
	b.Run("serial", func(b *testing.B) {
		benchIngest(b, data, func(r io.Reader) (RecordSource, error) { return NewBinaryReader(r), nil })
	})
	for _, decoders := range []int{1, 2, 4} {
		b.Run(benchName("decoders", decoders), func(b *testing.B) {
			benchIngest(b, data, func(r io.Reader) (RecordSource, error) {
				return NewParallelReader(r, IngestConfig{Decoders: decoders})
			})
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}
