package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Writer streams trace records to an io.Writer in the text format.
type Writer struct {
	w   *bufio.Writer
	buf []byte // reused AppendMarshal scratch; no per-record allocation
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (tw *Writer) Write(r *Record) error {
	tw.buf = r.AppendMarshal(tw.buf[:0])
	tw.buf = append(tw.buf, '\n')
	if _, err := tw.w.Write(tw.buf); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count reports records written.
func (tw *Writer) Count() int64 { return tw.n }

// Flush drains buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams trace records from an io.Reader, skipping blank lines
// and '#' comments.
type Reader struct {
	s    *bufio.Scanner
	line int64
}

// NewReader wraps r. Lines up to 1 MB are supported (anonymized names
// are bounded, but raw traces may carry long paths).
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{s: s}
}

// Next returns the next record, or io.EOF. Records come from the
// shared pool; a consumer that drops one may hand it back via Recycle.
func (tr *Reader) Next() (*Record, error) {
	for tr.s.Scan() {
		tr.line++
		line := bytes.TrimSpace(tr.s.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		r := NewRecord()
		if err := UnmarshalRecordBytes(line, r); err != nil {
			FreeRecord(r)
			return nil, fmt.Errorf("line %d: %w", tr.line, err)
		}
		return r, nil
	}
	if err := tr.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Recycle implements RecordRecycler: records from Next come from the
// shared pool.
func (tr *Reader) Recycle(r *Record) { FreeRecord(r) }

// ReadAll slurps every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	tr := NewReader(r)
	var out []*Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes every record to w.
func WriteAll(w io.Writer, records []*Record) error {
	tw := NewWriter(w)
	for _, r := range records {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// FilterOps returns the ops within [from, to) seconds, preserving order.
// Used to cut analysis windows (peak hours, single days) from a trace.
func FilterOps(ops []*Op, from, to float64) []*Op {
	var out []*Op
	for _, op := range ops {
		if op.T >= from && op.T < to {
			out = append(out, op)
		}
	}
	return out
}

// sniffReader wraps r for ingest: gzip-compressed input (archived
// trace sets are stored compressed) is decompressed transparently, and
// the leading bytes of the resulting stream are peeked to classify it
// as the binary format (the NFSTRC magic) or text.
func sniffReader(r io.Reader) (br *bufio.Reader, binaryFormat bool, err error) {
	br = bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, false, err
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	head, err := br.Peek(8)
	if err != nil && len(head) < 8 {
		// Tiny input: let the text reader produce EOF or errors.
		return br, false, nil
	}
	return br, [8]byte(head) == binaryMagic, nil
}

// DetectSource wraps r in the appropriate reader by sniffing the
// leading bytes: gzip input is decompressed transparently, binary
// traces start with the NFSTRC magic, anything else is treated as the
// text format.
func DetectSource(r io.Reader) (RecordSource, error) {
	br, binaryFormat, err := sniffReader(r)
	if err != nil {
		return nil, err
	}
	if binaryFormat {
		return NewBinaryReader(br), nil
	}
	return NewReader(br), nil
}

// RecordWriter is the writing side shared by the text and binary
// formats.
type RecordWriter interface {
	Write(*Record) error
	Flush() error
}

// NewFormatWriter returns a text or binary writer.
func NewFormatWriter(w io.Writer, binaryFormat bool) RecordWriter {
	if binaryFormat {
		return NewBinaryWriter(w)
	}
	return NewWriter(w)
}
