package core

// Binary trace format: a compact varint encoding for long-term trace
// storage. A week of CAMPUS records in the text format runs to
// gigabytes at production scale; the binary form is roughly 4× smaller
// and parses an order of magnitude faster. The original nfsdump tools
// grew an equivalent format for the same reason.
//
// Layout: an 8-byte magic+version header, then one length-prefixed
// record after another. Within a record, a presence bitmap selects
// which optional fields follow; all integers are unsigned varints
// (zigzag for the time delta), and times are microseconds relative to
// the previous record, which makes the common case (a few hundred µs)
// one or two bytes.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// binaryMagic identifies the format ("NFSTRC" + version 1).
var binaryMagic = [8]byte{'N', 'F', 'S', 'T', 'R', 'C', 0, 1}

// ErrBadTraceMagic reports a stream that is not a binary trace.
var ErrBadTraceMagic = errors.New("core: not a binary trace file")

// maxBinaryRecord caps one encoded record; anything larger is a
// corrupt length prefix, not a record.
const maxBinaryRecord = 1 << 20

// Field presence bits.
const (
	bfFH uint32 = 1 << iota
	bfName
	bfFH2
	bfName2
	bfOffset
	bfCount
	bfStable
	bfSetSize
	bfStatus
	bfRCount
	bfSize
	bfFileID
	bfMtime
	bfPreSize
	bfNewFH
	bfEOF
	bfUIDGID
)

// BinaryWriter streams records in the binary format.
type BinaryWriter struct {
	w        *bufio.Writer
	buf      []byte
	lastUsec int64
	n        int64
	wroteHdr bool
}

// NewBinaryWriter wraps w; the header is written on the first record.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (bw *BinaryWriter) varint(v uint64) {
	bw.buf = binary.AppendUvarint(bw.buf, v)
}

func (bw *BinaryWriter) str(s string) {
	bw.varint(uint64(len(s)))
	bw.buf = append(bw.buf, s...)
}

// Write emits one record.
func (bw *BinaryWriter) Write(r *Record) error {
	if !bw.wroteHdr {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wroteHdr = true
	}
	bw.buf = bw.buf[:0]

	var bits uint32
	if r.FH != 0 {
		bits |= bfFH
	}
	if r.Name != "" {
		bits |= bfName
	}
	if r.FH2 != 0 {
		bits |= bfFH2
	}
	if r.Name2 != "" {
		bits |= bfName2
	}
	if r.Offset != 0 {
		bits |= bfOffset
	}
	if r.Count != 0 {
		bits |= bfCount
	}
	if r.Stable != 0 {
		bits |= bfStable
	}
	if r.HasSet {
		bits |= bfSetSize
	}
	if r.Status != 0 {
		bits |= bfStatus
	}
	if r.RCount != 0 {
		bits |= bfRCount
	}
	if r.Size != 0 {
		bits |= bfSize
	}
	if r.FileID != 0 {
		bits |= bfFileID
	}
	if r.Mtime != 0 {
		bits |= bfMtime
	}
	if r.HasPre {
		bits |= bfPreSize
	}
	if r.NewFH != 0 {
		bits |= bfNewFH
	}
	if r.EOF {
		bits |= bfEOF
	}
	if r.UID != 0 || r.GID != 0 {
		bits |= bfUIDGID
	}

	usec := int64(math.Round(r.Time * 1e6))
	delta := usec - bw.lastUsec
	bw.lastUsec = usec

	bw.varint(uint64(bits))
	// Zigzag the time delta (reordered captures can step backwards).
	bw.varint(uint64((delta << 1) ^ (delta >> 63)))
	bw.buf = append(bw.buf, r.Kind, r.Proto)
	bw.varint(uint64(r.Client))
	bw.varint(uint64(r.Port))
	bw.varint(uint64(r.Server))
	bw.varint(uint64(r.XID))
	bw.varint(uint64(r.Version))
	bw.str(r.Proc.String())

	if bits&bfFH != 0 {
		bw.str(r.FH.String())
	}
	if bits&bfName != 0 {
		bw.str(r.Name)
	}
	if bits&bfFH2 != 0 {
		bw.str(r.FH2.String())
	}
	if bits&bfName2 != 0 {
		bw.str(r.Name2)
	}
	if bits&bfOffset != 0 {
		bw.varint(r.Offset)
	}
	if bits&bfCount != 0 {
		bw.varint(uint64(r.Count))
	}
	if bits&bfStable != 0 {
		bw.varint(uint64(r.Stable))
	}
	if bits&bfSetSize != 0 {
		bw.varint(r.SetSize)
	}
	if bits&bfStatus != 0 {
		bw.varint(uint64(r.Status))
	}
	if bits&bfRCount != 0 {
		bw.varint(uint64(r.RCount))
	}
	if bits&bfSize != 0 {
		bw.varint(r.Size)
	}
	if bits&bfFileID != 0 {
		bw.varint(r.FileID)
	}
	if bits&bfMtime != 0 {
		bw.varint(uint64(math.Round(r.Mtime * 1e6)))
	}
	if bits&bfPreSize != 0 {
		bw.varint(r.PreSize)
	}
	if bits&bfNewFH != 0 {
		bw.str(r.NewFH.String())
	}
	if bits&bfUIDGID != 0 {
		bw.varint(uint64(r.UID))
		bw.varint(uint64(r.GID))
	}

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(bw.buf)))
	if _, err := bw.w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		return err
	}
	bw.n++
	return nil
}

// Count reports records written.
func (bw *BinaryWriter) Count() int64 { return bw.n }

// Flush drains buffered output.
func (bw *BinaryWriter) Flush() error {
	if !bw.wroteHdr {
		// An empty trace still gets a header.
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wroteHdr = true
	}
	return bw.w.Flush()
}

// BinaryReader streams records from the binary format.
type BinaryReader struct {
	r        *bufio.Reader
	lastUsec int64
	readHdr  bool
	buf      []byte
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record or io.EOF.
func (br *BinaryReader) Next() (*Record, error) {
	if !br.readHdr {
		var hdr [8]byte
		if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, ErrBadTraceMagic
			}
			return nil, err
		}
		if hdr != binaryMagic {
			return nil, ErrBadTraceMagic
		}
		br.readHdr = true
	}
	recLen, err := binary.ReadUvarint(br.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			// A partial varint is a truncated trace, not a clean end:
			// surfacing it (rather than a silent EOF) is what lets a
			// damaged archive be noticed instead of under-counted.
			return nil, fmt.Errorf("core: truncated binary record length: %w", err)
		}
		return nil, err
	}
	if recLen > maxBinaryRecord {
		return nil, fmt.Errorf("core: implausible binary record of %d bytes", recLen)
	}
	if cap(br.buf) < int(recLen) {
		br.buf = make([]byte, recLen)
	}
	br.buf = br.buf[:recLen]
	if _, err := io.ReadFull(br.r, br.buf); err != nil {
		return nil, fmt.Errorf("core: truncated binary record: %w", err)
	}
	r := NewRecord()
	if err := decodeRecord(br.buf, &br.lastUsec, r); err != nil {
		FreeRecord(r)
		return nil, err
	}
	return r, nil
}

// Recycle implements RecordRecycler: records from Next come from the
// shared pool.
func (br *BinaryReader) Recycle(r *Record) { FreeRecord(r) }

type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, errors.New("core: bad varint in binary record")
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) str() (string, error) {
	b, err := c.strBytes()
	return string(b), err
}

// strBytes returns a view of the next length-prefixed string; the view
// aliases the record buffer and must not be retained.
func (c *byteCursor) strBytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if c.off+int(n) > len(c.b) {
		return nil, errors.New("core: string overruns binary record")
	}
	b := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

// fh interns the next length-prefixed handle spelling in place.
func (c *byteCursor) fh() (FH, error) {
	b, err := c.strBytes()
	if err != nil {
		return 0, err
	}
	return InternFHBytes(b), nil
}

func (c *byteCursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, errors.New("core: binary record too short")
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

// recordTimeDelta reads just the presence bitmap and zigzag time delta
// that lead every record payload. The splitter uses it to carry an
// absolute-time base into each batch so batches decode independently.
func recordTimeDelta(payload []byte) (int64, error) {
	c := &byteCursor{b: payload}
	if _, err := c.uvarint(); err != nil {
		return 0, err
	}
	zz, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(zz>>1) ^ -int64(zz&1), nil
}

// decodeRecord decodes one record payload into r (which is
// overwritten; pass a zeroed or pooled Record). lastUsec carries the
// absolute time of the previous record (the format stores deltas) and
// is advanced to this record's time.
func decodeRecord(buf []byte, lastUsec *int64, r *Record) error {
	c := &byteCursor{b: buf}
	bits64, err := c.uvarint()
	if err != nil {
		return err
	}
	bits := uint32(bits64)
	zz, err := c.uvarint()
	if err != nil {
		return err
	}
	delta := int64(zz>>1) ^ -int64(zz&1)
	*lastUsec += delta

	r.Time = float64(*lastUsec) / 1e6
	if r.Kind, err = c.byte(); err != nil {
		return err
	}
	if r.Proto, err = c.byte(); err != nil {
		return err
	}
	get32 := func(dst *uint32) error {
		v, err := c.uvarint()
		*dst = uint32(v)
		return err
	}
	if err = get32(&r.Client); err != nil {
		return err
	}
	port, err := c.uvarint()
	if err != nil {
		return err
	}
	r.Port = uint16(port)
	if err = get32(&r.Server); err != nil {
		return err
	}
	if err = get32(&r.XID); err != nil {
		return err
	}
	if err = get32(&r.Version); err != nil {
		return err
	}
	// Interning is deferred to the end of the decode so a record whose
	// later fields are corrupt does not register a garbage name in the
	// bounded process-global proc table.
	procB, err := c.strBytes()
	if err != nil {
		return err
	}

	if bits&bfFH != 0 {
		if r.FH, err = c.fh(); err != nil {
			return err
		}
	}
	if bits&bfName != 0 {
		if r.Name, err = c.str(); err != nil {
			return err
		}
	}
	if bits&bfFH2 != 0 {
		if r.FH2, err = c.fh(); err != nil {
			return err
		}
	}
	if bits&bfName2 != 0 {
		if r.Name2, err = c.str(); err != nil {
			return err
		}
	}
	if bits&bfOffset != 0 {
		if r.Offset, err = c.uvarint(); err != nil {
			return err
		}
	}
	if bits&bfCount != 0 {
		if err = get32(&r.Count); err != nil {
			return err
		}
	}
	if bits&bfStable != 0 {
		if err = get32(&r.Stable); err != nil {
			return err
		}
	}
	if bits&bfSetSize != 0 {
		if r.SetSize, err = c.uvarint(); err != nil {
			return err
		}
		r.HasSet = true
	}
	if bits&bfStatus != 0 {
		if err = get32(&r.Status); err != nil {
			return err
		}
	}
	if bits&bfRCount != 0 {
		if err = get32(&r.RCount); err != nil {
			return err
		}
	}
	if bits&bfSize != 0 {
		if r.Size, err = c.uvarint(); err != nil {
			return err
		}
	}
	if bits&bfFileID != 0 {
		if r.FileID, err = c.uvarint(); err != nil {
			return err
		}
	}
	if bits&bfMtime != 0 {
		m, err := c.uvarint()
		if err != nil {
			return err
		}
		r.Mtime = float64(m) / 1e6
	}
	if bits&bfPreSize != 0 {
		if r.PreSize, err = c.uvarint(); err != nil {
			return err
		}
		r.HasPre = true
	}
	if bits&bfNewFH != 0 {
		if r.NewFH, err = c.fh(); err != nil {
			return err
		}
	}
	r.EOF = bits&bfEOF != 0
	if bits&bfUIDGID != 0 {
		if err = get32(&r.UID); err != nil {
			return err
		}
		if err = get32(&r.GID); err != nil {
			return err
		}
	}
	if r.Proc, err = InternProcBytes(procB); err != nil {
		return err
	}
	return nil
}
