package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// ingestRecords builds a time-ordered record stream with the mix of
// shapes real traces have.
func ingestRecords(n int) []*Record {
	rng := rand.New(rand.NewSource(41))
	var records []*Record
	tm := 1000.0
	for i := 0; i < n; i++ {
		tm += rng.Float64() * 0.01
		records = append(records, randomRecord(rng, tm))
	}
	return records
}

// noisyText renders records as a text trace with comments and blank
// lines sprinkled in, as archived traces have.
func noisyText(records []*Record) []byte {
	var buf bytes.Buffer
	buf.WriteString("# trace header\n")
	for i, r := range records {
		if i%97 == 0 {
			buf.WriteString("\n# checkpoint\n")
		}
		buf.WriteString(r.Marshal())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func binaryTrace(t *testing.T, records []*Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads a source to its terminal error (io.EOF reported as nil).
func drain(src RecordSource) ([]*Record, error) {
	var out []*Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// requireSameStream asserts two ingest paths produced identical
// records and identical terminal errors.
func requireSameStream(t *testing.T, label string, wantRecs, gotRecs []*Record, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("%s: error %v vs serial %v", label, gotErr, wantErr)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("%s: %d records vs serial %d", label, len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if *gotRecs[i] != *wantRecs[i] {
			t.Fatalf("%s: record %d:\n got %+v\nwant %+v", label, i, gotRecs[i], wantRecs[i])
		}
	}
}

func TestParallelTextMatchesSerial(t *testing.T) {
	data := noisyText(ingestRecords(5000))
	want, wantErr := drain(NewReader(bytes.NewReader(data)))
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for _, decoders := range []int{1, 2, 8} {
		for _, batchBytes := range []int{512, 64 << 10, 1 << 22} {
			label := fmt.Sprintf("decoders=%d batch=%d", decoders, batchBytes)
			pr, err := NewParallelReader(bytes.NewReader(data),
				IngestConfig{Decoders: decoders, BatchBytes: batchBytes})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			got, gotErr := drain(pr)
			requireSameStream(t, label, want, got, nil, gotErr)
		}
	}
}

func TestParallelBinaryMatchesSerial(t *testing.T) {
	records := ingestRecords(3000)
	// Backwards time steps exercise the zigzag delta chain across
	// batch boundaries.
	records[100].Time = records[99].Time - 0.004
	records[2000].Time = records[1999].Time - 1.5
	data := binaryTrace(t, records)
	want, wantErr := drain(NewBinaryReader(bytes.NewReader(data)))
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for _, decoders := range []int{1, 2, 8} {
		for _, batchRecords := range []int{1, 7, 512} {
			label := fmt.Sprintf("decoders=%d batch=%d", decoders, batchRecords)
			pr, err := NewParallelReader(bytes.NewReader(data),
				IngestConfig{Decoders: decoders, BatchRecords: batchRecords})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			got, gotErr := drain(pr)
			requireSameStream(t, label, want, got, nil, gotErr)
		}
	}
}

func TestParallelGzipTransparent(t *testing.T) {
	records := ingestRecords(800)
	text := noisyText(records)
	bin := binaryTrace(t, records)
	want, _ := drain(NewReader(bytes.NewReader(text)))
	wantBin, _ := drain(NewBinaryReader(bytes.NewReader(bin)))

	for _, tc := range []struct {
		name string
		data []byte
		want []*Record
	}{
		{"text.gz", gzipBytes(t, text), want},
		{"binary.gz", gzipBytes(t, bin), wantBin},
	} {
		pr, err := NewParallelReader(bytes.NewReader(tc.data), IngestConfig{Decoders: 3, BatchBytes: 4096, BatchRecords: 64})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, gotErr := drain(pr)
		requireSameStream(t, "parallel "+tc.name, tc.want, got, nil, gotErr)

		src, err := DetectSource(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("DetectSource %s: %v", tc.name, err)
		}
		got, gotErr = drain(src)
		requireSameStream(t, "DetectSource "+tc.name, tc.want, got, nil, gotErr)
	}
}

func TestParallelTextErrorMatchesSerial(t *testing.T) {
	records := ingestRecords(1000)
	var buf bytes.Buffer
	for i, r := range records {
		if i == 700 {
			buf.WriteString("1.0 C this line is garbage\n")
		}
		buf.WriteString(r.Marshal())
		buf.WriteByte('\n')
	}
	data := buf.Bytes()
	want, wantErr := drain(NewReader(bytes.NewReader(data)))
	if wantErr == nil {
		t.Fatal("serial reader accepted the garbage line")
	}
	if len(want) != 700 {
		t.Fatalf("serial stopped after %d records", len(want))
	}
	for _, decoders := range []int{1, 4} {
		pr, err := NewParallelReader(bytes.NewReader(data), IngestConfig{Decoders: decoders, BatchBytes: 997})
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := drain(pr)
		requireSameStream(t, fmt.Sprintf("decoders=%d", decoders), want, got, wantErr, gotErr)
		// The error is sticky.
		if _, err := pr.Next(); err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("error not sticky: %v", err)
		}
	}
}

func TestParallelBinaryTruncationErrors(t *testing.T) {
	records := ingestRecords(50)
	data := binaryTrace(t, records)

	cases := []struct {
		name string
		data []byte
	}{
		// Payload cut mid-record.
		{"payload", data[:len(data)-3]},
		// A dangling varint continuation byte where the next record
		// length should be: must error, not silently stop.
		{"length varint", append(append([]byte{}, data...), 0x80)},
	}
	for _, tc := range cases {
		want, wantErr := drain(NewBinaryReader(bytes.NewReader(tc.data)))
		if wantErr == nil {
			t.Fatalf("%s: serial reader silently accepted truncation", tc.name)
		}
		pr, err := NewParallelReader(bytes.NewReader(tc.data), IngestConfig{Decoders: 2, BatchRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := drain(pr)
		requireSameStream(t, tc.name, want, got, wantErr, gotErr)
	}
}

// TestBinaryTruncatedLengthSurfaces is the regression test for the
// silent-EOF bug: a stream ending inside a record-length varint used
// to be reported as a clean end of trace.
func TestBinaryTruncatedLengthSurfaces(t *testing.T) {
	data := binaryTrace(t, ingestRecords(2))
	data = append(data, 0x83) // partial varint: promises more bytes
	br := NewBinaryReader(bytes.NewReader(data))
	var err error
	for i := 0; i < 3; i++ {
		if _, err = br.Next(); err != nil {
			break
		}
	}
	if err == nil || err == io.EOF {
		t.Fatalf("truncated length varint reported as %v, want an error", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF wrap", err)
	}
}

// errAfter yields data and then a non-EOF error, simulating a failing
// disk or pipe.
type errAfter struct {
	r   io.Reader
	err error
}

func (e *errAfter) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// TestReaderSurfacesScannerErrors pins the serial Reader's error
// behavior: token-too-long and underlying read errors must surface,
// never read as a clean EOF.
func TestReaderSurfacesScannerErrors(t *testing.T) {
	good := ingestRecords(3)
	t.Run("token too long midstream", func(t *testing.T) {
		var buf bytes.Buffer
		for _, r := range good {
			buf.WriteString(r.Marshal())
			buf.WriteByte('\n')
		}
		buf.WriteString(strings.Repeat("x", 3<<20))
		buf.WriteString("\n")
		buf.WriteString(good[0].Marshal())
		buf.WriteString("\n")
		got, err := drain(NewReader(bytes.NewReader(buf.Bytes())))
		if len(got) != 3 {
			t.Fatalf("read %d records before the long line", len(got))
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("err = %v, want bufio.ErrTooLong", err)
		}

		// The parallel path reports the same failure.
		pr, perr := NewParallelReader(bytes.NewReader(buf.Bytes()), IngestConfig{Decoders: 2, BatchBytes: 4096})
		if perr != nil {
			t.Fatal(perr)
		}
		pgot, perr2 := drain(pr)
		requireSameStream(t, "parallel", got, pgot, err, perr2)
	})
	t.Run("scanner buffer boundary", func(t *testing.T) {
		// A final unterminated line of exactly the scanner's buffer
		// size fails serially (the scanner has no headroom left to
		// attempt the read that would report EOF); one byte shorter
		// parses. The parallel path must agree on both sides of the
		// edge.
		for _, n := range []int{maxLineBytes, maxLineBytes - 1} {
			data := strings.Repeat("x", n)
			want, wantErr := drain(NewReader(strings.NewReader(data)))
			pr, err := NewParallelReader(strings.NewReader(data), IngestConfig{Decoders: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := drain(pr)
			requireSameStream(t, fmt.Sprintf("len=%d", n), want, got, wantErr, gotErr)
		}
	})
	t.Run("read error propagates", func(t *testing.T) {
		boom := errors.New("disk on fire")
		text := good[0].Marshal() + "\n" + good[1].Marshal() + "\n"
		got, err := drain(NewReader(&errAfter{r: strings.NewReader(text), err: boom}))
		if len(got) != 2 {
			t.Fatalf("read %d records before the failure", len(got))
		}
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the read error", err)
		}
		pr, perr := NewParallelReader(&errAfter{r: strings.NewReader(text), err: boom}, IngestConfig{Decoders: 2})
		if perr != nil {
			t.Fatal(perr)
		}
		pgot, perr2 := drain(pr)
		requireSameStream(t, "parallel", got, pgot, err, perr2)
	})
}

func TestParallelReaderStop(t *testing.T) {
	data := noisyText(ingestRecords(20000))
	pr, err := NewParallelReader(bytes.NewReader(data), IngestConfig{Decoders: 4, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := pr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	pr.Stop()
	pr.Stop() // idempotent
	// The reader may still drain results that were already queued, but
	// must terminate rather than hang.
	for i := 0; i < 1000; i++ {
		if _, err := pr.Next(); err != nil {
			return
		}
	}
	t.Fatal("reader kept yielding long after Stop")
}

func TestParallelEmptyAndTinyInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"blank", "\n\n"},
		{"comment only", "# nothing here\n"},
		{"tiny garbage", "zz"},
	} {
		pr, err := NewParallelReader(strings.NewReader(tc.data), IngestConfig{Decoders: 2})
		if err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
		want, wantErr := drain(NewReader(strings.NewReader(tc.data)))
		got, gotErr := drain(pr)
		requireSameStream(t, tc.name, want, got, wantErr, gotErr)
	}
}
