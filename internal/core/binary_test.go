package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func randomRecord(rng *rand.Rand, t float64) *Record {
	// A handful of client hosts talking to one server, as real traces
	// have.
	r := &Record{
		Time: t, Kind: KindCall, Proto: ProtoTCP,
		Client: 0x0a010010 + uint32(rng.Intn(4)), Port: uint16(600 + rng.Intn(400)),
		Server: 0x0a010001, XID: rng.Uint32(),
		Version: 3, Proc: MustProc("read"),
		UID: uint32(rng.Intn(10000)), GID: uint32(rng.Intn(1000)),
	}
	switch rng.Intn(4) {
	case 0:
		r.Proc = MustProc("read")
		r.FH = InternFH("00000000000000aa")
		r.Offset = uint64(rng.Intn(1 << 20))
		r.Count = 8192
	case 1:
		r.Kind = KindReply
		r.Proc = MustProc("write")
		r.Status = uint32(rng.Intn(3))
		r.RCount = 8192
		r.Size = uint64(rng.Intn(1 << 22))
		r.PreSize, r.HasPre = uint64(rng.Intn(1<<22)), true
		r.Mtime = t - 0.5
	case 2:
		r.Proc = MustProc("lookup")
		r.FH = InternFH("0000000000000002")
		r.Name = "inbox.lock"
	case 3:
		r.Kind = KindReply
		r.Proc = MustProc("create")
		r.NewFH = InternFH("00000000000000ff")
		r.FileID = uint64(rng.Intn(100000))
		r.EOF = true
		r.SetSize, r.HasSet = 0, true
	}
	return r
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var records []*Record
	tm := 1000.0
	for i := 0; i < 2000; i++ {
		tm += rng.Float64() * 0.01
		records = append(records, randomRecord(rng, tm))
	}
	// Include a backwards time step (reordered capture).
	records[500].Time = records[499].Time - 0.004

	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2000 {
		t.Fatalf("count %d", w.Count())
	}

	br := NewBinaryReader(&buf)
	for i, want := range records {
		got, err := br.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// Times round to the microsecond.
		if d := got.Time - want.Time; d > 1e-6 || d < -1e-6 {
			t.Fatalf("record %d: time %v vs %v", i, got.Time, want.Time)
		}
		g, x := *got, *want
		g.Time, x.Time = 0, 0
		if d := g.Mtime - x.Mtime; d > 1e-6 || d < -1e-6 {
			t.Fatalf("record %d mtime drift", i)
		}
		g.Mtime, x.Mtime = 0, 0
		if g != x {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, g, x)
		}
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("empty trace: %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	br := NewBinaryReader(bytes.NewReader([]byte("NOTATRACE___")))
	if _, err := br.Next(); err != ErrBadTraceMagic {
		t.Fatalf("err = %v", err)
	}
	br = NewBinaryReader(bytes.NewReader([]byte{1, 2}))
	if _, err := br.Next(); err != ErrBadTraceMagic {
		t.Fatalf("short header: %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(sampleCall())
	w.Write(sampleReply())
	w.Flush()
	full := buf.Bytes()
	br := NewBinaryReader(bytes.NewReader(full[:len(full)-3]))
	if _, err := br.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := br.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var text, bin bytes.Buffer
	tw := NewWriter(&text)
	bw := NewBinaryWriter(&bin)
	tm := 0.0
	for i := 0; i < 5000; i++ {
		tm += rng.Float64() * 0.001
		r := randomRecord(rng, tm)
		tw.Write(r)
		bw.Write(r)
	}
	tw.Flush()
	bw.Flush()
	if bin.Len()*5 >= text.Len()*3 { // must be well under 60% of the text size
		t.Fatalf("binary %d bytes vs text %d: not compact enough", bin.Len(), text.Len())
	}
}

func TestMergerInterleavesSorted(t *testing.T) {
	mk := func(times ...float64) *SliceSource {
		var rs []*Record
		for _, tm := range times {
			r := sampleCall()
			r.Time = tm
			rs = append(rs, r)
		}
		return &SliceSource{Records: rs}
	}
	merged, err := MergeAll(
		mk(1, 4, 7, 10),
		mk(2, 3, 8),
		mk(),
		mk(5, 6, 9),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 10 {
		t.Fatalf("%d records", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Time > merged[i].Time {
			t.Fatalf("unsorted at %d", i)
		}
	}
	if merged[0].Time != 1 || merged[9].Time != 10 {
		t.Fatalf("ends: %v %v", merged[0].Time, merged[9].Time)
	}
}

func TestMergerAcrossFormats(t *testing.T) {
	// One text source, one binary source — the merger doesn't care.
	var text, bin bytes.Buffer
	tw := NewWriter(&text)
	bw := NewBinaryWriter(&bin)
	for i := 0; i < 10; i++ {
		r := sampleCall()
		r.Time = float64(i * 2) // even times
		tw.Write(r)
		r2 := sampleCall()
		r2.Time = float64(i*2 + 1) // odd times
		bw.Write(r2)
	}
	tw.Flush()
	bw.Flush()
	merged, err := MergeAll(NewReader(&text), NewBinaryReader(&bin))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 20 {
		t.Fatalf("%d records", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Time > merged[i].Time {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	r := sampleCall()
	w := NewBinaryWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Time += 0.0001
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := sampleCall()
	for i := 0; i < 10000; i++ {
		r.Time += 0.0001
		w.Write(r)
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var br *BinaryReader
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			br = NewBinaryReader(bytes.NewReader(data))
		}
		if _, err := br.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := sampleCall()
	for i := 0; i < 10000; i++ {
		r.Time += 0.0001
		w.Write(r)
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var tr *Reader
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			tr = NewReader(bytes.NewReader(data))
		}
		if _, err := tr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
