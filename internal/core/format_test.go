package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// fmtMarshalReference reproduces the original fmt/strings.Builder text
// rendering, field by field. AppendMarshal replaced it for speed; the
// on-disk format must not have moved, or externally stored traces stop
// round-tripping.
func fmtMarshalReference(r *Record) string {
	var b strings.Builder
	b.Grow(160)
	fmt.Fprintf(&b, "%.6f %s %s.%d %s %s %x %d %s",
		r.Time, string([]byte{r.Kind}), ipString(r.Client), r.Port, ipString(r.Server),
		string([]byte{r.Proto}), r.XID, r.Version, r.Proc.String())
	kv := func(k, v string) {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	if r.Kind == KindCall {
		if r.FH != 0 {
			kv("fh", r.FH.String())
		}
		if r.Name != "" {
			kv("name", escape(r.Name))
		}
		if r.FH2 != 0 {
			kv("fh2", r.FH2.String())
		}
		if r.Name2 != "" {
			kv("name2", escape(r.Name2))
		}
		if r.Offset != 0 {
			kv("off", strconv.FormatUint(r.Offset, 10))
		}
		if r.Count != 0 {
			kv("count", strconv.FormatUint(uint64(r.Count), 10))
		}
		if r.Stable != 0 {
			kv("stable", strconv.FormatUint(uint64(r.Stable), 10))
		}
		if r.HasSet {
			kv("setsize", strconv.FormatUint(r.SetSize, 10))
		}
		kv("uid", strconv.FormatUint(uint64(r.UID), 10))
		kv("gid", strconv.FormatUint(uint64(r.GID), 10))
		return b.String()
	}
	kv("status", strconv.FormatUint(uint64(r.Status), 10))
	if r.RCount != 0 {
		kv("rcount", strconv.FormatUint(uint64(r.RCount), 10))
	}
	if r.Size != 0 {
		kv("size", strconv.FormatUint(r.Size, 10))
	}
	if r.FileID != 0 {
		kv("fileid", strconv.FormatUint(r.FileID, 10))
	}
	if r.Mtime != 0 {
		kv("mtime", strconv.FormatFloat(r.Mtime, 'f', 6, 64))
	}
	if r.HasPre {
		kv("presize", strconv.FormatUint(r.PreSize, 10))
	}
	if r.NewFH != 0 {
		kv("newfh", r.NewFH.String())
	}
	if r.EOF {
		kv("eof", "1")
	}
	return b.String()
}

// TestAppendMarshalMatchesFmtReference pins the append-style serializer
// byte for byte against the fmt-based rendering it replaced, across
// random record shapes and the awkward field values (escaped names,
// high bytes in tags, extreme numbers).
func TestAppendMarshalMatchesFmtReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tm := 1000.0
	check := func(r *Record) {
		t.Helper()
		want := fmtMarshalReference(r)
		got := r.Marshal()
		if got != want {
			t.Fatalf("format moved:\n got %q\nwant %q", got, want)
		}
		if string(r.AppendMarshal(nil)) != want {
			t.Fatalf("AppendMarshal diverges from Marshal for %q", want)
		}
	}
	for i := 0; i < 500; i++ {
		tm += rng.Float64() * 0.01
		check(randomRecord(rng, tm))
	}
	awkward := []*Record{
		{Time: 0, Kind: KindCall, Proto: 0xC3, Proc: ProcNull},
		{Time: 1e9 + 0.123456, Kind: KindReply, Proto: ProtoUDP, Proc: ProcWrite,
			Status: 70, Mtime: 0.000001, Size: 1<<63 + 5},
		{Time: 42.5, Kind: KindCall, Proto: ProtoTCP, Proc: ProcRename,
			FH: InternFH("ab"), Name: "spa ced\ttab\\slash=eq\nnl",
			FH2: InternFH("cd"), Name2: "plain", Offset: ^uint64(0),
			Count: ^uint32(0), Stable: 2, HasSet: true, SetSize: 0,
			UID: ^uint32(0), GID: 1},
		{Time: 7, Kind: KindReply, Proto: ProtoUDP, Proc: ProcCreate,
			NewFH: InternFH("ff"), EOF: true, HasPre: true, PreSize: 12345,
			FileID: ^uint64(0), RCount: 1},
	}
	for _, r := range awkward {
		check(r)
	}
}
