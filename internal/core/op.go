package core

// Op is one joined NFS operation: a call and (usually) its matched
// reply. This is what every analysis in the paper consumes. Unmatched
// calls — replies lost by the mirror port — have Replied == false, and
// the analyses count them the way §4.1.4 describes.
type Op struct {
	T       float64 // call time
	RT      float64 // reply time (0 when unreplied)
	Replied bool

	Client   uint32
	Port     uint16
	UID, GID uint32
	Version  uint32
	Proc     ProcID

	FH      FH // primary handle, interned
	Name    string
	FH2     FH
	Name2   string
	Offset  uint64
	Count   uint32 // requested
	Stable  uint32
	SetSize uint64
	HasSet  bool

	Status  uint32
	RCount  uint32 // moved
	Size    uint64 // post-op size
	PreSize uint64
	HasPre  bool
	FileID  uint64
	NewFH   FH
	EOF     bool
}

// IsRead reports a data read.
func (o *Op) IsRead() bool { return o.Proc == ProcRead }

// IsWrite reports a data write.
func (o *Op) IsWrite() bool { return o.Proc == ProcWrite }

// IsMetadata reports a non-data operation.
func (o *Op) IsMetadata() bool { return !o.IsRead() && !o.IsWrite() }

// OK reports a successful replied operation.
func (o *Op) OK() bool { return o.Replied && o.Status == 0 }

// Bytes reports the bytes moved: the reply count when available,
// otherwise the requested count (the convention the paper uses when the
// reply was lost).
func (o *Op) Bytes() uint64 {
	if o.Replied && o.RCount != 0 {
		return uint64(o.RCount)
	}
	if o.IsRead() || o.IsWrite() {
		return uint64(o.Count)
	}
	return 0
}

// FromPair builds an Op from a call record and optional reply.
func FromPair(call *Record, reply *Record) *Op {
	op := &Op{
		T:       call.Time,
		Client:  call.Client,
		Port:    call.Port,
		UID:     call.UID,
		GID:     call.GID,
		Version: call.Version,
		Proc:    call.Proc,
		FH:      call.FH,
		Name:    call.Name,
		FH2:     call.FH2,
		Name2:   call.Name2,
		Offset:  call.Offset,
		Count:   call.Count,
		Stable:  call.Stable,
		SetSize: call.SetSize,
		HasSet:  call.HasSet,
	}
	if reply != nil {
		op.Replied = true
		op.RT = reply.Time
		op.Status = reply.Status
		op.RCount = reply.RCount
		op.Size = reply.Size
		op.PreSize = reply.PreSize
		op.HasPre = reply.HasPre
		op.FileID = reply.FileID
		op.NewFH = reply.NewFH
		op.EOF = reply.EOF
	}
	return op
}

// JoinStats reports what Join saw, feeding the §4.1.4 loss estimate.
type JoinStats struct {
	Calls          int64
	Replies        int64
	Matched        int64
	UnmatchedCalls int64 // calls with no reply (reply lost or in-flight)
	OrphanReplies  int64 // replies whose call was lost
}

// Merge folds other's counts into s — the reduction for partial
// analyses, where each trace piece is joined separately and the
// counters sum exactly.
func (s *JoinStats) Merge(other JoinStats) {
	s.Calls += other.Calls
	s.Replies += other.Replies
	s.Matched += other.Matched
	s.UnmatchedCalls += other.UnmatchedCalls
	s.OrphanReplies += other.OrphanReplies
}

// LossEstimate approximates the fraction of messages lost, following
// the paper: an orphan reply implies a lost call, and an unmatched call
// implies a lost reply (modulo calls still in flight at trace end).
func (s JoinStats) LossEstimate() float64 {
	total := s.Calls + s.Replies
	if total == 0 {
		return 0
	}
	lost := s.OrphanReplies + s.UnmatchedCalls
	return float64(lost) / float64(total+s.OrphanReplies)
}

// Join matches call records to reply records by (client, port, xid) and
// returns operations in call-time order. Records must be supplied in
// trace order. A reply matches the most recent unmatched call with its
// key; retransmitted calls reuse the earliest pending time, as the
// paper's tracer did.
func Join(records []*Record) ([]*Op, JoinStats) {
	type key struct {
		client uint32
		port   uint16
		xid    uint32
	}
	var stats JoinStats
	pending := make(map[key]*Record)
	var ops []*Op
	flush := func(call *Record, reply *Record) {
		ops = append(ops, FromPair(call, reply))
	}
	for _, r := range records {
		k := key{r.Client, r.Port, r.XID}
		switch r.Kind {
		case KindCall:
			stats.Calls++
			if old, ok := pending[k]; ok {
				// Duplicate xid (retransmission): keep the original
				// call time; drop the duplicate.
				_ = old
				continue
			}
			pending[k] = r
		case KindReply:
			stats.Replies++
			call, ok := pending[k]
			if !ok {
				stats.OrphanReplies++
				continue
			}
			delete(pending, k)
			stats.Matched++
			flush(call, r)
		}
	}
	for _, call := range pending {
		stats.UnmatchedCalls++
		flush(call, nil)
	}
	sortOpsByTime(ops)
	return ops, stats
}

func sortOpsByTime(ops []*Op) {
	// Insertion-friendly: records arrive nearly sorted, so a simple
	// binary-insertion pass beats full sort in the common case. Fall
	// back to library sort when disorder is large.
	for i := 1; i < len(ops); i++ {
		if ops[i-1].T <= ops[i].T {
			continue
		}
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if ops[mid].T <= ops[i].T {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		op := ops[i]
		copy(ops[lo+1:i+1], ops[lo:i])
		ops[lo] = op
	}
}
