package core

import "sync"

// Record pooling: the decode front end produces one Record per traced
// message — tens of millions per real trace — and almost all of them
// die moments later, as soon as the Joiner folds a call/reply pair into
// an Op. Recycling them through a pool removes the dominant remaining
// allocation on the ingest path.
//
// Ownership protocol: sources that allocate from the pool implement
// RecordRecycler; a consumer that is done with a record hands it back
// through the source's Recycle. Consumers must never recycle records
// they obtained from a plain slice or other caller-owned storage —
// sources that don't own their records simply don't implement the
// interface, so the type assertion at the consumer picks the safe
// default of doing nothing.

var recordPool = sync.Pool{New: func() any { return new(Record) }}

// NewRecord returns a zeroed Record, reusing pooled storage when
// available.
func NewRecord() *Record { return recordPool.Get().(*Record) }

// FreeRecord zeroes r and returns it to the pool. The caller must hold
// the only reference.
func FreeRecord(r *Record) {
	if r == nil {
		return
	}
	*r = Record{}
	recordPool.Put(r)
}

// RecordRecycler is implemented by record sources whose records come
// from the pool. Consumers call Recycle when a record is dead; sources
// that don't implement it keep ownership with the caller.
type RecordRecycler interface {
	Recycle(*Record)
}
