package core

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TailReader follows a growing text-format trace file, the way a
// monitoring daemon watches the file a tracer is appending to. Next
// blocks (polling) at end of file until more records arrive, survives
// rotation (the path being renamed away and recreated, or truncated in
// place), and never yields a half-written record: bytes are buffered
// until a terminating newline is seen.
//
// Rotation is only considered once the current file is drained to EOF,
// so records written before the rotation are never skipped. A trailing
// fragment with no newline at a rotation boundary is a record the
// writer abandoned mid-line; it is discarded and counted in Discarded.
//
// Stop ends the tail: Next drains everything already in the file and
// then returns io.EOF, which lets a downstream Joiner run its normal
// end-of-stream drain. Only the text format is supported — the binary
// format's length-prefixed framing does not self-synchronize at a
// truncated tail, and compressed files cannot grow.
type TailReader struct {
	path string
	f    *os.File
	fi   os.FileInfo
	off  int64 // bytes consumed from the current file

	buf  []byte // unconsumed file bytes; [pos:] is not yet parsed
	pos  int
	rbuf []byte

	poll      time.Duration
	stop      chan struct{}
	stopOnce  sync.Once
	line      int64
	records   int64
	discarded int64
	rotations int64
}

// DefaultTailPoll is the end-of-file poll interval when none is given.
const DefaultTailPoll = 50 * time.Millisecond

// NewTailReader opens path for tailing. poll is the end-of-file poll
// interval; <= 0 selects DefaultTailPoll.
func NewTailReader(path string, poll time.Duration) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if poll <= 0 {
		poll = DefaultTailPoll
	}
	return &TailReader{
		path: path,
		f:    f,
		fi:   fi,
		rbuf: make([]byte, 64*1024),
		poll: poll,
		stop: make(chan struct{}),
	}, nil
}

// Stop ends the tail: the reader drains what is already on disk and
// then reports io.EOF. Safe to call from any goroutine, repeatedly.
func (t *TailReader) Stop() { t.stopOnce.Do(func() { close(t.stop) }) }

// Close releases the file. Call after Next has returned io.EOF.
func (t *TailReader) Close() error { return t.f.Close() }

// Records reports the number of records yielded so far.
func (t *TailReader) Records() int64 { return t.records }

// Discarded reports unparseable fragments dropped at rotation
// boundaries (a writer died mid-line).
func (t *TailReader) Discarded() int64 { return t.discarded }

// Rotations reports how many times the path was reopened.
func (t *TailReader) Rotations() int64 { return t.rotations }

// Recycle implements RecordRecycler: records come from the shared pool.
func (t *TailReader) Recycle(r *Record) { FreeRecord(r) }

// Next returns the next record, blocking at end of file until the file
// grows, rotates, or Stop is called (then io.EOF after the drain).
func (t *TailReader) Next() (*Record, error) {
	// stopped is observed per pass: after Stop fires, one more fill
	// must still run so a burst written just before the stop drains.
	stopped := false
	for {
		if line, ok := t.nextLine(); ok {
			rec, err := t.parse(line)
			if rec == nil && err == nil {
				continue // blank or comment
			}
			return rec, err
		}
		if len(t.buf)-t.pos > maxLineBytes {
			return nil, fmt.Errorf("tail %s: line %d exceeds %d bytes", t.path, t.line+1, maxLineBytes)
		}
		n, err := t.fill()
		if n > 0 {
			continue
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		// Drained the current file. A different file at the path means
		// rotation: switch to it and keep reading from its start.
		if t.maybeRotate() {
			continue
		}
		if stopped {
			// Truly drained and stopping. A trailing newline-less
			// fragment is accepted like bufio.Scanner accepts a final
			// unterminated token.
			if t.pos < len(t.buf) {
				line := t.buf[t.pos:]
				t.pos = len(t.buf)
				rec, err := t.parse(line)
				if rec == nil && err == nil {
					continue
				}
				return rec, err
			}
			return nil, io.EOF
		}
		select {
		case <-t.stop:
			stopped = true
		case <-time.After(t.poll):
		}
	}
}

// nextLine returns the next newline-terminated line, without the
// newline, advancing the cursor.
func (t *TailReader) nextLine() ([]byte, bool) {
	for i := t.pos; i < len(t.buf); i++ {
		if t.buf[i] == '\n' {
			line := t.buf[t.pos:i]
			t.pos = i + 1
			return line, true
		}
	}
	return nil, false
}

// parse turns one line into a record; blank lines and '#' comments
// yield (nil, nil).
func (t *TailReader) parse(line []byte) (*Record, error) {
	t.line++
	line = trimSpaceBytes(line)
	if len(line) == 0 || line[0] == '#' {
		return nil, nil
	}
	r := NewRecord()
	if err := UnmarshalRecordBytes(line, r); err != nil {
		FreeRecord(r)
		return nil, fmt.Errorf("tail %s: line %d: %w", t.path, t.line, err)
	}
	t.records++
	return r, nil
}

// fill reads more bytes from the current file, compacting the buffer
// first so memory stays bounded by one line plus one read.
func (t *TailReader) fill() (int, error) {
	if t.pos == len(t.buf) {
		t.buf = t.buf[:0]
		t.pos = 0
	} else if t.pos > 0 {
		n := copy(t.buf, t.buf[t.pos:])
		t.buf = t.buf[:n]
		t.pos = 0
	}
	n, err := t.f.Read(t.rbuf)
	if n > 0 {
		t.buf = append(t.buf, t.rbuf[:n]...)
		t.off += int64(n)
	}
	return n, err
}

// maybeRotate checks, at EOF of the current file, whether the path now
// names a different file (rename rotation) or was truncated in place,
// and reopens it if so. It reports whether a switch happened. A stat or
// open failure (the path briefly absent mid-rotation) just means "poll
// again".
func (t *TailReader) maybeRotate() bool {
	st, err := os.Stat(t.path)
	if err != nil {
		return false
	}
	if os.SameFile(t.fi, st) {
		if st.Size() >= t.off {
			return false
		}
		// Truncated in place: re-read from the top.
	}
	f, err := os.Open(t.path)
	if err != nil {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return false
	}
	t.f.Close()
	t.f, t.fi, t.off = f, fi, 0
	t.rotations++
	// A fragment held from the old file can never complete.
	if t.pos < len(t.buf) {
		t.discarded++
		t.buf = t.buf[:0]
		t.pos = 0
	}
	return true
}

// trimSpaceBytes trims ASCII whitespace without allocating; trace lines
// are ASCII by construction.
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
