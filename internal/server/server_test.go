package server

import (
	"math/rand"
	"testing"

	"repro/internal/nfs"
	"repro/internal/vfs"
)

func newServer() *Server {
	fs := vfs.New()
	now := 0.0
	fs.Clock = func() float64 { now += 0.001; return now }
	return New(fs)
}

func TestLookupCreateReadWrite(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()

	// Create a file.
	cres := s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{
		Where: nfs.DirOpArgs3{Dir: root, Name: "inbox"}}).(*nfs.CreateRes3)
	if cres.Status != nfs.OK || cres.FH == nil {
		t.Fatalf("create: %+v", cres)
	}

	// Write 10000 bytes.
	wres := s.HandleV3(nfs.V3Write, &nfs.WriteArgs3{
		FH: cres.FH, Offset: 0, Count: 10000, Stable: nfs.Unstable}).(*nfs.WriteRes3)
	if wres.Status != nfs.OK || wres.Count != 10000 {
		t.Fatalf("write: %+v", wres)
	}
	if wres.Wcc == nil || wres.Wcc.Before == nil || wres.Wcc.Before.Size != 0 {
		t.Fatalf("wcc before missing: %+v", wres.Wcc)
	}
	if wres.Wcc.After.Size != 10000 {
		t.Fatalf("wcc after size %d", wres.Wcc.After.Size)
	}

	// Lookup resolves the file with attributes.
	lres := s.HandleV3(nfs.V3Lookup, &nfs.LookupArgs3{Dir: root, Name: "inbox"}).(*nfs.LookupRes3)
	if lres.Status != nfs.OK || !lres.FH.Equal(cres.FH) || lres.Attr.Size != 10000 {
		t.Fatalf("lookup: %+v", lres)
	}

	// Read the first 8k.
	rres := s.HandleV3(nfs.V3Read, &nfs.ReadArgs3{FH: cres.FH, Offset: 0, Count: 8192}).(*nfs.ReadRes3)
	if rres.Status != nfs.OK || rres.Count != 8192 || rres.EOF {
		t.Fatalf("read: %+v", rres)
	}
	if len(rres.Data) != 8192 {
		t.Fatalf("data %d", len(rres.Data))
	}
	// Read the tail.
	rres = s.HandleV3(nfs.V3Read, &nfs.ReadArgs3{FH: cres.FH, Offset: 8192, Count: 8192}).(*nfs.ReadRes3)
	if rres.Status != nfs.OK || rres.Count != 1808 || !rres.EOF {
		t.Fatalf("tail read: %+v", rres)
	}
}

func TestCreateUncheckedTruncatesExisting(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{Where: nfs.DirOpArgs3{Dir: root, Name: "f"}})
	s.HandleV3(nfs.V3Write, &nfs.WriteArgs3{FH: nfs.MakeFH(3), Offset: 0, Count: 5000})
	size := uint64(0)
	cres := s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{
		Where: nfs.DirOpArgs3{Dir: root, Name: "f"},
		Attr:  nfs.Sattr{Size: &size}}).(*nfs.CreateRes3)
	if cres.Status != nfs.OK {
		t.Fatalf("recreate: %+v", cres)
	}
	if cres.Attr.Size != 0 {
		t.Fatalf("size after unchecked create = %d", cres.Attr.Size)
	}
}

func TestLookupMiss(t *testing.T) {
	s := newServer()
	res := s.HandleV3(nfs.V3Lookup, &nfs.LookupArgs3{
		Dir: s.FS.RootFH(), Name: "ghost"}).(*nfs.LookupRes3)
	if res.Status != nfs.ErrNoEnt {
		t.Fatalf("status %d", res.Status)
	}
	if res.DirAttr == nil {
		t.Fatal("dir attrs missing on miss")
	}
}

func TestStaleHandle(t *testing.T) {
	s := newServer()
	res := s.HandleV3(nfs.V3Getattr, &nfs.GetattrArgs3{FH: nfs.MakeFH(424242)}).(*nfs.GetattrRes3)
	if res.Status != nfs.ErrStale {
		t.Fatalf("status %d", res.Status)
	}
}

func TestSetattrTruncate(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	cres := s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{Where: nfs.DirOpArgs3{Dir: root, Name: "f"}}).(*nfs.CreateRes3)
	s.HandleV3(nfs.V3Write, &nfs.WriteArgs3{FH: cres.FH, Offset: 0, Count: 9000})
	size := uint64(100)
	res := s.HandleV3(nfs.V3Setattr, &nfs.SetattrArgs3{FH: cres.FH,
		Attr: nfs.Sattr{Size: &size}}).(*nfs.SetattrRes3)
	if res.Status != nfs.OK {
		t.Fatalf("setattr: %+v", res)
	}
	if res.Wcc.Before.Size != 9000 || res.Wcc.After.Size != 100 {
		t.Fatalf("wcc %+v → %+v", res.Wcc.Before, res.Wcc.After)
	}
}

func TestRemoveRmdirRename(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	s.HandleV3(nfs.V3Mkdir, &nfs.MkdirArgs3{Where: nfs.DirOpArgs3{Dir: root, Name: "d"}})
	dres := s.HandleV3(nfs.V3Lookup, &nfs.LookupArgs3{Dir: root, Name: "d"}).(*nfs.LookupRes3)
	s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{Where: nfs.DirOpArgs3{Dir: dres.FH, Name: "x"}})

	rn := s.HandleV3(nfs.V3Rename, &nfs.RenameArgs3{
		From: nfs.DirOpArgs3{Dir: dres.FH, Name: "x"},
		To:   nfs.DirOpArgs3{Dir: root, Name: "y"}}).(*nfs.RenameRes3)
	if rn.Status != nfs.OK {
		t.Fatalf("rename: %+v", rn)
	}
	rm := s.HandleV3(nfs.V3Remove, &nfs.DirOpArgs3{Dir: root, Name: "y"}).(*nfs.RemoveRes3)
	if rm.Status != nfs.OK {
		t.Fatalf("remove: %+v", rm)
	}
	rd := s.HandleV3(nfs.V3Rmdir, &nfs.DirOpArgs3{Dir: root, Name: "d"}).(*nfs.RemoveRes3)
	if rd.Status != nfs.OK {
		t.Fatalf("rmdir: %+v", rd)
	}
}

func TestReaddirPaging(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
		s.HandleV3(nfs.V3Create, &nfs.CreateArgs3{Where: nfs.DirOpArgs3{Dir: root, Name: n}})
	}
	var names []string
	cookie := uint64(0)
	for {
		res := s.HandleV3(nfs.V3Readdir, &nfs.ReaddirArgs3{Dir: root, Cookie: cookie, MaxCount: 512}).(*nfs.ReaddirRes3)
		if res.Status != nfs.OK {
			t.Fatalf("readdir: %+v", res)
		}
		for _, e := range res.Entries {
			names = append(names, e.Name)
			cookie = e.Cookie
		}
		if res.EOF {
			break
		}
	}
	if len(names) != 12 {
		t.Fatalf("names = %v", names)
	}
}

func TestAccessAndFsstat(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	acc := s.HandleV3(nfs.V3Access, &nfs.AccessArgs3{FH: root, Access: 0x1F}).(*nfs.AccessRes3)
	if acc.Status != nfs.OK || acc.Access != 0x1F {
		t.Fatalf("access: %+v", acc)
	}
	fst := s.HandleV3(nfs.V3Fsstat, &nfs.GetattrArgs3{FH: root}).(*nfs.FsstatRes3)
	if fst.Status != nfs.OK || fst.Tbytes != 53<<30 {
		t.Fatalf("fsstat: %+v", fst)
	}
}

func TestV2Delegation(t *testing.T) {
	s := newServer()
	root := s.FS.RootFH()
	cres := s.HandleV2(nfs.V2Create, &nfs.CreateArgs2{Where: nfs.DirOpArgs3{Dir: root, Name: "old.c"}}).(*nfs.DirOpRes2)
	if cres.Status != nfs.OK {
		t.Fatalf("v2 create: %+v", cres)
	}
	wres := s.HandleV2(nfs.V2Write, &nfs.WriteArgs2{FH: cres.FH, Offset: 0, Data: make([]byte, 4096)}).(*nfs.AttrStatRes2)
	if wres.Status != nfs.OK || wres.Attr.Size != 4096 {
		t.Fatalf("v2 write: %+v", wres)
	}
	rres := s.HandleV2(nfs.V2Read, &nfs.ReadArgs2{FH: cres.FH, Offset: 0, Count: 4096}).(*nfs.ReadRes2)
	if rres.Status != nfs.OK || len(rres.Data) != 4096 {
		t.Fatalf("v2 read: %+v", rres)
	}
	gres := s.HandleV2(nfs.V2Getattr, &nfs.GetattrArgs3{FH: cres.FH}).(*nfs.AttrStatRes2)
	if gres.Status != nfs.OK || gres.Attr.Size != 4096 {
		t.Fatalf("v2 getattr: %+v", gres)
	}
	st := s.HandleV2(nfs.V2Statfs, &nfs.GetattrArgs3{FH: root}).(*nfs.StatfsRes2)
	if st.Status != nfs.OK || st.Bsize != vfs.BlockSize {
		t.Fatalf("v2 statfs: %+v", st)
	}
	rm := s.HandleV2(nfs.V2Remove, &nfs.DirOpArgs3{Dir: root, Name: "old.c"}).(*nfs.StatusRes2)
	if rm.Status != nfs.OK {
		t.Fatalf("v2 remove: %+v", rm)
	}
}

func TestOpsCounted(t *testing.T) {
	s := newServer()
	s.HandleV3(nfs.V3Getattr, &nfs.GetattrArgs3{FH: s.FS.RootFH()})
	s.HandleV3(nfs.V3Getattr, &nfs.GetattrArgs3{FH: s.FS.RootFH()})
	s.HandleV2(nfs.V2Getattr, &nfs.GetattrArgs3{FH: s.FS.RootFH()})
	if s.OpCount("getattr") != 3 {
		t.Fatalf("ops = %v", s.OpCounts())
	}
	if counts := s.OpCounts(); counts["getattr"] != 3 {
		t.Fatalf("ops map = %v", counts)
	}
}

func TestFiller(t *testing.T) {
	if Filler(0) != nil {
		t.Fatal("Filler(0) not nil")
	}
	b := Filler(100000)
	if len(b) != 100000 {
		t.Fatalf("len = %d", len(b))
	}
	// Shared storage: same backing array on repeat calls.
	b2 := Filler(10)
	if &b[0] != &b2[0] {
		t.Fatal("filler reallocated for smaller request")
	}
}

func TestDiskModel(t *testing.T) {
	d := NewDisk()
	t1 := d.Read(100, 1) // cold: seek + transfer
	t2 := d.Read(101, 1) // sequential: transfer only
	if t1 <= t2 {
		t.Fatalf("seek not charged: %v vs %v", t1, t2)
	}
	if d.Seeks() != 1 {
		t.Fatalf("seeks = %d", d.Seeks())
	}
	t3 := d.Read(500, 1)
	if t3 <= t2 {
		t.Fatal("random jump not charged")
	}
	if d.BusyTime() != t1+t2+t3 {
		t.Fatalf("busy = %v", d.BusyTime())
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := NewBlockCache(2)
	c.Insert(1, 0)
	c.Insert(1, 1)
	c.Insert(1, 2) // evicts (1,0)
	if c.Contains(1, 0) {
		t.Fatal("evicted block still present")
	}
	if !c.Contains(1, 1) || !c.Contains(1, 2) {
		t.Fatal("recent blocks missing")
	}
	if c.HitRate() <= 0 {
		t.Fatal("hit rate not tracked")
	}
}

func TestStrictSequentialPolicy(t *testing.T) {
	p := NewStrictSequential(8)
	if got := p.Advise(1, 0, 1); got != 0 {
		t.Fatalf("first access prefetched %d", got)
	}
	if got := p.Advise(1, 1, 1); got != 8 {
		t.Fatalf("sequential access prefetched %d", got)
	}
	// A reordered request kills the run.
	if got := p.Advise(1, 5, 1); got != 0 {
		t.Fatalf("reordered access prefetched %d", got)
	}
}

func TestMetricPolicyToleratesReordering(t *testing.T) {
	p := NewMetricReadAhead()
	// Mostly sequential with occasional small jumps: metric stays high.
	blocks := []int64{0, 1, 2, 4, 3, 5, 6, 7, 9, 8, 10, 11}
	prefetched := 0
	for _, b := range blocks {
		if p.Advise(1, b, 1) > 0 {
			prefetched++
		}
	}
	if prefetched < len(blocks)-2 {
		t.Fatalf("metric policy prefetched only %d/%d", prefetched, len(blocks))
	}
	// A genuinely random stream drives the metric down.
	q := NewMetricReadAhead()
	rng := rand.New(rand.NewSource(1))
	denies := 0
	for i := 0; i < 200; i++ {
		if q.Advise(2, rng.Int63n(1_000_000_000), 1) == 0 {
			denies++
		}
	}
	if denies < 150 {
		t.Fatalf("metric policy allowed prefetch on random stream (%d denies)", denies)
	}
}

// TestReadPathExperimentShape verifies the §6.4 result: under ~10%
// reordering, the metric policy beats strict read-ahead by >5% on
// large sequential transfers.
func TestReadPathExperimentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reqs []ReadRequest
	for file := uint64(1); file <= 20; file++ {
		start := len(reqs)
		for b := int64(0); b < 512; b++ { // 4 MB per file
			reqs = append(reqs, ReadRequest{File: file, Block: b, NBlocks: 1})
		}
		// Swap ~10% of adjacent pairs within this file's range.
		for i := start; i < len(reqs)-1; i++ {
			if rng.Float64() < 0.10 {
				reqs[i], reqs[i+1] = reqs[i+1], reqs[i]
			}
		}
	}
	strict := RunReadPath(reqs, NewStrictSequential(8), 4096)
	metric := RunReadPath(reqs, NewMetricReadAhead(), 4096)
	none := RunReadPath(reqs, NoReadAhead{}, 4096)

	if !(metric.Throughput > strict.Throughput) {
		t.Fatalf("metric (%.1f MB/s) not faster than strict (%.1f MB/s)",
			metric.Throughput/1e6, strict.Throughput/1e6)
	}
	gain := metric.Throughput/strict.Throughput - 1
	if gain < 0.05 {
		t.Fatalf("gain %.1f%% below the paper's >5%%", gain*100)
	}
	if !(strict.Throughput > none.Throughput) {
		t.Fatalf("strict (%.1f) not faster than none (%.1f)",
			strict.Throughput/1e6, none.Throughput/1e6)
	}
}

// TestReadPathNoReorderingParity: without reordering, strict and metric
// should perform nearly identically.
func TestReadPathNoReorderingParity(t *testing.T) {
	var reqs []ReadRequest
	for file := uint64(1); file <= 10; file++ {
		for b := int64(0); b < 256; b++ {
			reqs = append(reqs, ReadRequest{File: file, Block: b, NBlocks: 1})
		}
	}
	strict := RunReadPath(reqs, NewStrictSequential(8), 4096)
	metric := RunReadPath(reqs, NewMetricReadAhead(), 4096)
	ratio := metric.Throughput / strict.Throughput
	if ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("in-order parity broken: ratio %.3f", ratio)
	}
}
