package server_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
	"repro/internal/xdr"
)

// startServer builds a filesystem with nfiles prepopulated files and
// serves it on a loopback socket.
func startServer(t *testing.T, nfiles int, filesize uint64) (*server.NetServer, *vfs.FS) {
	t.Helper()
	fs := vfs.New()
	for i := 0; i < nfiles; i++ {
		ino, err := fs.Create(fs.Root(), fmt.Sprintf("file%03d", i), 100, 100, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Truncate(ino.ID, filesize); err != nil {
			t.Fatal(err)
		}
	}
	ns, err := server.Listen(server.New(fs), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	return ns, fs
}

// TestLoopbackMixedVersions runs N concurrent clients — half NFSv3,
// half NFSv2 — issuing a mixed read/write/metadata workload over real
// TCP sockets, asserting every reply's status. Must pass under -race.
func TestLoopbackMixedVersions(t *testing.T) {
	const nclients = 8
	const opsPerClient = 60
	ns, _ := startServer(t, 4, 32768)

	var wg sync.WaitGroup
	errs := make(chan error, nclients)
	for i := 0; i < nclients; i++ {
		version := uint32(nfs.V3)
		if i%2 == 1 {
			version = nfs.V2
		}
		wg.Add(1)
		go func(i int, version uint32) {
			defer wg.Done()
			errs <- runClientMix(ns.Addr(), i, version, opsPerClient)
		}(i, version)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if ns.BadRPC() != 0 {
		t.Errorf("server dropped %d connections for bad RPC", ns.BadRPC())
	}
	if ns.Calls() == 0 {
		t.Error("server executed no calls")
	}
}

// runClientMix is one simulated client's workload: wire lookups, reads
// at several offsets, writes, metadata, and a create/remove pair in a
// private namespace. Every status is checked.
func runClientMix(addr string, id int, version uint32, ops int) error {
	c, err := client.DialNFS(addr, version, uint32(1000+id), 100)
	if err != nil {
		return err
	}
	defer c.Close()
	root := nfs.MakeFH(2) // vfs root inode

	fhs := make([]nfs.FH, 4)
	for k := range fhs {
		fh, status, err := c.NetLookup(root, fmt.Sprintf("file%03d", k))
		if err != nil || status != nfs.OK {
			return fmt.Errorf("client %d: lookup file%03d: status %d err %v", id, k, status, err)
		}
		fhs[k] = fh
	}
	// Missing names must report NOENT, not kill the connection.
	if _, status, err := c.NetLookup(root, "no-such-file"); err != nil || status != nfs.ErrNoEnt {
		return fmt.Errorf("client %d: missing lookup: status %d err %v", id, status, err)
	}

	for i := 0; i < ops; i++ {
		fh := fhs[(i+id)%len(fhs)]
		switch i % 4 {
		case 0:
			if status, err := c.NetRead(fh, uint64(i%4)*8192, 8192); err != nil || status != nfs.OK {
				return fmt.Errorf("client %d: read: status %d err %v", id, status, err)
			}
		case 1:
			if status, err := c.NetWrite(fh, uint64(i%4)*8192, 4096); err != nil || status != nfs.OK {
				return fmt.Errorf("client %d: write: status %d err %v", id, status, err)
			}
		case 2:
			if status, err := c.NetGetattr(fh); err != nil || status != nfs.OK {
				return fmt.Errorf("client %d: getattr: status %d err %v", id, status, err)
			}
		case 3:
			if status, err := c.NetAccess(fh); err != nil || status != nfs.OK {
				return fmt.Errorf("client %d: access: status %d err %v", id, status, err)
			}
		}
	}

	// Private create → truncate → remove cycle.
	name := fmt.Sprintf("scratch-%d", id)
	fh, status, err := c.NetCreate(root, name)
	if err != nil || status != nfs.OK || fh == nil {
		return fmt.Errorf("client %d: create: status %d err %v", id, status, err)
	}
	if status, err := c.NetTruncate(fh, 1024); err != nil || status != nfs.OK {
		return fmt.Errorf("client %d: truncate: status %d err %v", id, status, err)
	}
	if status, err := c.NetRemove(root, name); err != nil || status != nfs.OK {
		return fmt.Errorf("client %d: remove: status %d err %v", id, status, err)
	}
	// Stale handle after remove.
	if status, err := c.NetGetattr(fh); err != nil || status != nfs.ErrStale {
		return fmt.Errorf("client %d: stale getattr: status %d err %v", id, status, err)
	}
	if n := c.Unmatched.Load(); n != 0 {
		return fmt.Errorf("client %d: %d unmatched replies", id, n)
	}
	return nil
}

// encodeRawCall builds the record-marked bytes of one NFSv3 call with
// an explicit xid, bypassing NetClient, for xid-matching assertions.
func encodeRawCall(t *testing.T, xid uint32, proc uint32, args any) []byte {
	t.Helper()
	argEnc := xdr.NewEncoder(128)
	if err := nfs.EncodeArgs3(argEnc, proc, args); err != nil {
		t.Fatal(err)
	}
	e := xdr.NewEncoder(256)
	rpc.EncodeCall(e, &rpc.CallHeader{
		XID: xid, Program: rpc.ProgramNFS, Version: nfs.V3, Proc: proc,
		Cred: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Args: argEnc.Bytes(),
	})
	return e.Bytes()
}

// TestXidMatchingPipelined writes several pipelined calls with chosen
// xids on a raw socket — one of them split across record-marking
// fragments — and asserts the replies come back with matching xids and
// Success accept status.
func TestXidMatchingPipelined(t *testing.T) {
	ns, _ := startServer(t, 1, 8192)
	conn, err := net.Dial("tcp", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	root := nfs.MakeFH(2)
	xids := []uint32{7, 9, 0xDEADBEEF}
	var raw []byte
	for i, xid := range xids {
		msg := encodeRawCall(t, xid, nfs.V3Getattr, &nfs.GetattrArgs3{FH: root})
		if i == 1 {
			// Exercise record-marking reassembly: 5-byte fragments.
			raw = append(raw, rpc.MarkRecordFragmented(msg, 5)...)
		} else {
			raw = append(raw, rpc.MarkRecord(msg)...)
		}
	}
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}

	rc := wire.NewRecordConn(conn)
	for _, want := range xids {
		reply, err := rc.ReadRecord()
		if err != nil {
			t.Fatalf("reading reply for xid %d: %v", want, err)
		}
		dec, err := rpc.Decode(reply)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Type != rpc.Reply {
			t.Fatalf("got message type %d, want reply", dec.Type)
		}
		if dec.Reply.XID != want {
			t.Fatalf("reply xid %d, want %d (replies must match calls in order)", dec.Reply.XID, want)
		}
		if dec.Reply.AcceptStat != rpc.Success {
			t.Fatalf("xid %d: accept stat %d", want, dec.Reply.AcceptStat)
		}
		res, err := nfs.DecodeRes3(nfs.V3Getattr, dec.Reply.Results)
		if err != nil {
			t.Fatal(err)
		}
		if status := client.StatusOf(res); status != nfs.OK {
			t.Fatalf("xid %d: nfs status %d", want, status)
		}
	}
}

// TestBadProgramAndGarbage checks the RPC-level error paths: wrong
// program number answers ProgUnavail; an unparseable record drops the
// connection and is counted.
func TestBadProgramAndGarbage(t *testing.T) {
	ns, _ := startServer(t, 1, 1024)

	// Wrong program → accepted reply with ProgUnavail.
	conn, err := net.Dial("tcp", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := xdr.NewEncoder(128)
	rpc.EncodeCall(e, &rpc.CallHeader{
		XID: 3, Program: rpc.ProgramMount, Version: 3, Proc: 0,
		Cred: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
	})
	if _, err := conn.Write(rpc.MarkRecord(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	rc := wire.NewRecordConn(conn)
	reply, err := rc.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := rpc.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Reply.XID != 3 || dec.Reply.AcceptStat != rpc.ProgUnavail {
		t.Fatalf("got xid %d stat %d, want 3/ProgUnavail", dec.Reply.XID, dec.Reply.AcceptStat)
	}

	// Garbage record → connection dropped, BadRPC counted.
	conn2, err := net.Dial("tcp", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(rpc.MarkRecord([]byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := conn2.Read(buf); err != io.EOF {
		t.Fatalf("expected EOF on garbage connection, got %v", err)
	}
	if ns.BadRPC() == 0 {
		t.Error("BadRPC not counted")
	}
}
