package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/wire"
	"repro/internal/xdr"
)

// NetServer exposes a Server over real TCP sockets speaking ONC RPC
// with record marking — the same bytes a kernel NFS/TCP client would
// put on the wire. Each accepted connection gets a reader goroutine
// that decodes calls, executes them against the shared Server, and
// writes replies back in call order. Dispatch is fully parallel across
// connections: Server's counters are atomic and vfs.FS carries its own
// two-level locking, so concurrent procedures serialize only on the
// inodes they touch.
//
// This is the load-bearing end of nfsbench and of the loopback
// integration tests: everything above the TCP socket is the production
// decode → dispatch → encode path.
type NetServer struct {
	srv *Server
	ln  net.Listener

	// trace, when non-nil, receives one call and one reply record per
	// dispatched NFS procedure (see trace.go). Set at Listen time and
	// never mutated, so per-connection goroutines read it without
	// synchronization; the callback itself must be concurrency-safe.
	trace func(*core.Record)

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed atomic.Bool

	calls  atomic.Int64
	badRPC atomic.Int64
}

// Listen starts serving srv on addr ("127.0.0.1:0" if empty) and
// returns once the listener is bound.
func Listen(srv *Server, addr string) (*NetServer, error) {
	return ListenTraced(srv, addr, nil)
}

// ListenTraced is Listen with a passive trace tap: every dispatched
// NFS procedure emits a call and a reply record to trace, built the
// same way the capture sniffer builds them from packets. trace runs on
// per-connection goroutines and must be safe for concurrent use; nil
// disables the tap.
func ListenTraced(srv *Server, addr string, trace func(*core.Record)) (*NetServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{srv: srv, ln: ln, trace: trace, conns: make(map[net.Conn]struct{})}
	ns.wg.Add(1)
	go ns.acceptLoop()
	return ns, nil
}

// Addr reports the bound address, e.g. "127.0.0.1:46231".
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Calls reports the number of procedures executed.
func (ns *NetServer) Calls() int64 { return ns.calls.Load() }

// BadRPC reports the number of connections dropped for unparseable RPC.
func (ns *NetServer) BadRPC() int64 { return ns.badRPC.Load() }

// Close stops accepting, closes every connection, and waits for the
// per-connection goroutines to drain.
func (ns *NetServer) Close() error {
	ns.closed.Store(true)
	err := ns.ln.Close()
	ns.connMu.Lock()
	for conn := range ns.conns {
		conn.Close()
	}
	ns.connMu.Unlock()
	ns.wg.Wait()
	return err
}

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ns.connMu.Lock()
		if ns.closed.Load() {
			ns.connMu.Unlock()
			conn.Close()
			return
		}
		ns.conns[conn] = struct{}{}
		ns.connMu.Unlock()
		ns.wg.Add(1)
		go ns.serveConn(conn)
	}
}

func (ns *NetServer) serveConn(conn net.Conn) {
	defer ns.wg.Done()
	defer func() {
		ns.connMu.Lock()
		delete(ns.conns, conn)
		ns.connMu.Unlock()
		conn.Close()
	}()
	rc := wire.NewRecordConn(conn)
	var id connID
	if ns.trace != nil {
		id = newConnID(conn)
	}
	for {
		msg, err := rc.ReadRecord()
		if err != nil {
			return // EOF or peer gone
		}
		reply, err := ns.handle(msg, id)
		if err != nil {
			ns.badRPC.Add(1)
			return // garbage stream: drop the connection
		}
		if err := rc.WriteRecord(reply); err != nil {
			return
		}
	}
}

// handle executes one RPC call message and returns the encoded reply.
// A non-nil error means the message was not a well-formed call and the
// connection cannot be trusted to stay in sync.
func (ns *NetServer) handle(msg []byte, id connID) ([]byte, error) {
	dec, err := rpc.Decode(msg)
	if err != nil {
		return nil, err
	}
	if dec.Type != rpc.Call {
		return nil, fmt.Errorf("server: unexpected reply message on server socket")
	}
	h := dec.Call
	reply := &rpc.ReplyHeader{XID: h.XID, ReplyStat: rpc.MsgAccepted}
	switch {
	case h.Program != rpc.ProgramNFS:
		reply.AcceptStat = rpc.ProgUnavail
	case h.Version != nfs.V2 && h.Version != nfs.V3:
		reply.AcceptStat = rpc.ProgMismatch
	default:
		args, err := decodeArgs(h.Version, h.Proc, h.Args)
		if err != nil {
			reply.AcceptStat = rpc.GarbageArgs
			break
		}
		var callRec *core.Record
		if ns.trace != nil {
			callRec = traceCall(traceNow(), id, h)
		}
		var res any
		if h.Version == nfs.V3 {
			res = ns.srv.HandleV3(h.Proc, args)
		} else {
			res = ns.srv.HandleV2(h.Proc, args)
		}
		ns.calls.Add(1)
		body := xdr.NewEncoder(256)
		if err := encodeRes(h.Version, h.Proc, body, res); err != nil {
			reply.AcceptStat = rpc.SystemErr
			break
		}
		reply.AcceptStat = rpc.Success
		reply.Results = body.Bytes()
		// The tap emits the pair together so no call ever surfaces
		// without its reply (an unmatched call would read as packet
		// loss to the analyses).
		if callRec != nil {
			ns.trace(callRec)
			if rr := traceReply(traceNow(), id, h, reply.Results); rr != nil {
				ns.trace(rr)
			}
		}
	}
	e := xdr.NewEncoder(256 + len(reply.Results))
	rpc.EncodeReply(e, reply)
	return e.Bytes(), nil
}

func decodeArgs(version, proc uint32, body []byte) (any, error) {
	if version == nfs.V3 {
		return nfs.DecodeArgs3(proc, body)
	}
	return nfs.DecodeArgs2(proc, body)
}

func encodeRes(version, proc uint32, e *xdr.Encoder, res any) error {
	if res == nil {
		return nil // NULL and v2 void results
	}
	if version == nfs.V3 {
		return nfs.EncodeRes3(e, proc, res)
	}
	return nfs.EncodeRes2(e, proc, res)
}
