// Package server simulates the NFS servers under trace: a dispatch
// layer that executes NFSv2/NFSv3 procedures against an in-memory
// filesystem (producing byte-faithful reply bodies), plus the disk model
// and read-ahead heuristics used to reproduce the paper's §6.4
// experiment, where a sequentiality-metric read-ahead policy beats the
// strict next-offset heuristic under request reordering.
package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/nfs"
	"repro/internal/vfs"
)

// Server executes NFS procedures against a filesystem. It is safe for
// concurrent use: the filesystem carries its own locking and the
// procedure counters are atomic, so the socket layer dispatches calls
// from many connections in parallel.
type Server struct {
	FS *vfs.FS

	// ops3/ops2 count executed procedures per protocol version; v2
	// procedures that delegate to a v3 handler count under the v3
	// name, as the old shared map did.
	ops3       [nfs.V3NumProcs]atomic.Int64
	ops2       [nfs.V2NumProcs]atomic.Int64
	opsUnknown atomic.Int64
}

// New wraps a filesystem in a server.
func New(fs *vfs.FS) *Server {
	return &Server{FS: fs}
}

func (s *Server) countV3(proc uint32) {
	if proc < nfs.V3NumProcs {
		s.ops3[proc].Add(1)
	} else {
		s.opsUnknown.Add(1)
	}
}

func (s *Server) countV2(proc uint32) {
	if proc < nfs.V2NumProcs {
		s.ops2[proc].Add(1)
	} else {
		s.opsUnknown.Add(1)
	}
}

// OpCount reports executions of the named procedure (lower-case
// nfsdump vocabulary), merging v2 and v3 uses of the same name.
func (s *Server) OpCount(name string) int64 {
	var n int64
	for proc := uint32(0); proc < nfs.V3NumProcs; proc++ {
		if nfs.ProcName(nfs.V3, proc) == name {
			n += s.ops3[proc].Load()
		}
	}
	for proc := uint32(0); proc < nfs.V2NumProcs; proc++ {
		if nfs.ProcName(nfs.V2, proc) == name {
			n += s.ops2[proc].Load()
		}
	}
	return n
}

// OpCounts snapshots every non-zero procedure counter by name.
func (s *Server) OpCounts() map[string]int64 {
	counts := make(map[string]int64)
	for proc := uint32(0); proc < nfs.V3NumProcs; proc++ {
		if n := s.ops3[proc].Load(); n > 0 {
			counts[nfs.ProcName(nfs.V3, proc)] += n
		}
	}
	for proc := uint32(0); proc < nfs.V2NumProcs; proc++ {
		if n := s.ops2[proc].Load(); n > 0 {
			counts[nfs.ProcName(nfs.V2, proc)] += n
		}
	}
	return counts
}

// errStatus maps vfs errors to NFS status codes.
func errStatus(err error) uint32 {
	switch {
	case err == nil:
		return nfs.OK
	case errors.Is(err, vfs.ErrNotFound):
		return nfs.ErrNoEnt
	case errors.Is(err, vfs.ErrExist):
		return nfs.ErrExist
	case errors.Is(err, vfs.ErrNotDir):
		return nfs.ErrNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return nfs.ErrIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return nfs.ErrNotEmpty
	case errors.Is(err, vfs.ErrStale):
		return nfs.ErrStale
	case errors.Is(err, vfs.ErrQuota):
		return nfs.ErrDQuot
	case errors.Is(err, vfs.ErrNameTooLong):
		return nfs.ErrNameTooLong
	case errors.Is(err, vfs.ErrInval):
		return nfs.ErrInval
	case errors.Is(err, vfs.ErrTooBig):
		return nfs.ErrFBig
	default:
		return nfs.ErrIO
	}
}

func (s *Server) attrFH(fh nfs.FH) *nfs.Fattr {
	ino, err := s.FS.GetFH(fh)
	if err != nil {
		return nil
	}
	return s.FS.Attr(ino)
}

// HandleV3 executes one NFSv3 procedure and returns the matching *Res3
// struct (nil for NULL).
func (s *Server) HandleV3(proc uint32, args any) any {
	s.countV3(proc)
	switch proc {
	case nfs.V3Null:
		return nil
	case nfs.V3Getattr, nfs.V3Fsinfo, nfs.V3Pathconf:
		a := args.(*nfs.GetattrArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.GetattrRes3{Status: errStatus(err)}
		}
		return &nfs.GetattrRes3{Status: nfs.OK, Attr: s.FS.Attr(ino)}
	case nfs.V3Setattr:
		a := args.(*nfs.SetattrArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.SetattrRes3{Status: errStatus(err)}
		}
		before, after, err := s.FS.Setattr(ino.ID, a.Attr.Size, a.Attr.Mode, a.Attr.UID, a.Attr.GID)
		if err != nil {
			res := &nfs.SetattrRes3{Status: errStatus(err)}
			if before != nil {
				res.Wcc = &nfs.WccData{Before: before, After: after}
			}
			return res
		}
		return &nfs.SetattrRes3{Status: nfs.OK,
			Wcc: &nfs.WccData{Before: before, After: after}}
	case nfs.V3Lookup:
		a := args.(*nfs.LookupArgs3)
		dir, err := s.FS.GetFH(a.Dir)
		if err != nil {
			return &nfs.LookupRes3{Status: errStatus(err)}
		}
		ino, err := s.FS.Lookup(dir.ID, a.Name)
		if err != nil {
			return &nfs.LookupRes3{Status: errStatus(err), DirAttr: s.FS.Attr(dir)}
		}
		return &nfs.LookupRes3{Status: nfs.OK, FH: nfs.MakeFH(ino.ID),
			Attr: s.FS.Attr(ino), DirAttr: s.FS.Attr(dir)}
	case nfs.V3Access:
		a := args.(*nfs.AccessArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.AccessRes3{Status: errStatus(err)}
		}
		return &nfs.AccessRes3{Status: nfs.OK, Attr: s.FS.Attr(ino), Access: a.Access}
	case nfs.V3Readlink:
		a := args.(*nfs.GetattrArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.LookupRes3{Status: errStatus(err)}
		}
		return &nfs.LookupRes3{Status: nfs.OK, Attr: s.FS.Attr(ino)}
	case nfs.V3Read:
		a := args.(*nfs.ReadArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.ReadRes3{Status: errStatus(err)}
		}
		n, eof, err := s.FS.Read(ino.ID, a.Offset, uint64(a.Count))
		if err != nil {
			return &nfs.ReadRes3{Status: errStatus(err), Attr: s.FS.Attr(ino)}
		}
		return &nfs.ReadRes3{Status: nfs.OK, Attr: s.FS.Attr(ino),
			Count: uint32(n), EOF: eof, Data: Filler(int(n))}
	case nfs.V3Write:
		a := args.(*nfs.WriteArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.WriteRes3{Status: errStatus(err)}
		}
		before := s.FS.Wcc(ino)
		if _, err := s.FS.Write(ino.ID, a.Offset, uint64(a.Count)); err != nil {
			return &nfs.WriteRes3{Status: errStatus(err),
				Wcc: &nfs.WccData{Before: before, After: s.FS.Attr(ino)}}
		}
		committed := a.Stable
		return &nfs.WriteRes3{Status: nfs.OK, Count: a.Count, Committed: committed,
			Wcc: &nfs.WccData{Before: before, After: s.FS.Attr(ino)}}
	case nfs.V3Create:
		a := args.(*nfs.CreateArgs3)
		dir, err := s.FS.GetFH(a.Where.Dir)
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		mode := uint32(0644)
		if a.Attr.Mode != nil {
			mode = *a.Attr.Mode
		}
		uid, gid := uint32(0), uint32(0)
		if a.Attr.UID != nil {
			uid = *a.Attr.UID
		}
		if a.Attr.GID != nil {
			gid = *a.Attr.GID
		}
		ino, err := s.FS.Create(dir.ID, a.Where.Name, uid, gid, mode)
		if errors.Is(err, vfs.ErrExist) {
			// UNCHECKED create of an existing file succeeds and
			// truncates if a size was given, matching RFC 1813.
			ino, err = s.FS.Lookup(dir.ID, a.Where.Name)
			if err == nil && a.Attr.Size != nil {
				_, err = s.FS.Truncate(ino.ID, *a.Attr.Size)
			}
		}
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		return &nfs.CreateRes3{Status: nfs.OK, FH: nfs.MakeFH(ino.ID), Attr: s.FS.Attr(ino)}
	case nfs.V3Mkdir:
		a := args.(*nfs.MkdirArgs3)
		dir, err := s.FS.GetFH(a.Where.Dir)
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		ino, err := s.FS.Mkdir(dir.ID, a.Where.Name, 0, 0, 0755)
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		return &nfs.CreateRes3{Status: nfs.OK, FH: nfs.MakeFH(ino.ID), Attr: s.FS.Attr(ino)}
	case nfs.V3Symlink:
		a := args.(*nfs.SymlinkArgs3)
		dir, err := s.FS.GetFH(a.Where.Dir)
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		ino, err := s.FS.Symlink(dir.ID, a.Where.Name, a.Target, 0, 0)
		if err != nil {
			return &nfs.CreateRes3{Status: errStatus(err)}
		}
		return &nfs.CreateRes3{Status: nfs.OK, FH: nfs.MakeFH(ino.ID), Attr: s.FS.Attr(ino)}
	case nfs.V3Remove:
		a := args.(*nfs.DirOpArgs3)
		dir, err := s.FS.GetFH(a.Dir)
		if err != nil {
			return &nfs.RemoveRes3{Status: errStatus(err)}
		}
		err = s.FS.Remove(dir.ID, a.Name)
		return &nfs.RemoveRes3{Status: errStatus(err),
			Wcc: &nfs.WccData{After: s.FS.Attr(dir)}}
	case nfs.V3Rmdir:
		a := args.(*nfs.DirOpArgs3)
		dir, err := s.FS.GetFH(a.Dir)
		if err != nil {
			return &nfs.RemoveRes3{Status: errStatus(err)}
		}
		err = s.FS.Rmdir(dir.ID, a.Name)
		return &nfs.RemoveRes3{Status: errStatus(err),
			Wcc: &nfs.WccData{After: s.FS.Attr(dir)}}
	case nfs.V3Rename:
		a := args.(*nfs.RenameArgs3)
		from, err := s.FS.GetFH(a.From.Dir)
		if err != nil {
			return &nfs.RenameRes3{Status: errStatus(err)}
		}
		to, err := s.FS.GetFH(a.To.Dir)
		if err != nil {
			return &nfs.RenameRes3{Status: errStatus(err)}
		}
		err = s.FS.Rename(from.ID, a.From.Name, to.ID, a.To.Name)
		return &nfs.RenameRes3{Status: errStatus(err)}
	case nfs.V3Link:
		a := args.(*nfs.LinkArgs3)
		target, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.RemoveRes3{Status: errStatus(err)}
		}
		dir, err := s.FS.GetFH(a.To.Dir)
		if err != nil {
			return &nfs.RemoveRes3{Status: errStatus(err)}
		}
		err = s.FS.Link(target.ID, dir.ID, a.To.Name)
		return &nfs.RemoveRes3{Status: errStatus(err)}
	case nfs.V3Readdir, nfs.V3Readdirplus:
		a := args.(*nfs.ReaddirArgs3)
		dir, err := s.FS.GetFH(a.Dir)
		if err != nil {
			return &nfs.ReaddirRes3{Status: errStatus(err)}
		}
		max := int(a.MaxCount / 64) // ~64 bytes per wire entry
		if max < 8 {
			max = 8
		}
		entries, done, err := s.FS.Readdir(dir.ID, a.Cookie, max)
		if err != nil {
			return &nfs.ReaddirRes3{Status: errStatus(err)}
		}
		return &nfs.ReaddirRes3{Status: nfs.OK, DirAttr: s.FS.Attr(dir),
			Entries: entries, EOF: done}
	case nfs.V3Fsstat:
		a := args.(*nfs.GetattrArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.FsstatRes3{Status: errStatus(err)}
		}
		used := s.FS.TotalBytes()
		total := uint64(53) << 30 // one CAMPUS 53GB disk array
		free := uint64(0)
		if used < total {
			free = total - used
		}
		return &nfs.FsstatRes3{Status: nfs.OK, Attr: s.FS.Attr(ino),
			Tbytes: total, Fbytes: free, Abytes: free}
	case nfs.V3Commit:
		a := args.(*nfs.CommitArgs3)
		ino, err := s.FS.GetFH(a.FH)
		if err != nil {
			return &nfs.CommitRes3{Status: errStatus(err)}
		}
		return &nfs.CommitRes3{Status: nfs.OK, Wcc: &nfs.WccData{After: s.FS.Attr(ino)}}
	default:
		return &nfs.GetattrRes3{Status: nfs.ErrNotSupp}
	}
}

// HandleV2 executes one NFSv2 procedure and returns the matching *Res2
// struct. Internally it delegates to the v3 handlers and narrows.
func (s *Server) HandleV2(proc uint32, args any) any {
	switch proc {
	case nfs.V2Null, nfs.V2Root, nfs.V2Writecache:
		s.countV2(proc)
		return nil
	case nfs.V2Getattr:
		r := s.HandleV3(nfs.V3Getattr, args).(*nfs.GetattrRes3)
		return &nfs.AttrStatRes2{Status: r.Status, Attr: r.Attr}
	case nfs.V2Setattr:
		a := args.(*nfs.SetattrArgs2)
		r := s.HandleV3(nfs.V3Setattr, &nfs.SetattrArgs3{FH: a.FH, Attr: a.Attr}).(*nfs.SetattrRes3)
		res := &nfs.AttrStatRes2{Status: r.Status}
		if r.Wcc != nil {
			res.Attr = r.Wcc.After
		}
		return res
	case nfs.V2Lookup:
		r := s.HandleV3(nfs.V3Lookup, args).(*nfs.LookupRes3)
		return &nfs.DirOpRes2{Status: r.Status, FH: r.FH, Attr: r.Attr}
	case nfs.V2Readlink:
		r := s.HandleV3(nfs.V3Readlink, args).(*nfs.LookupRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Read:
		a := args.(*nfs.ReadArgs2)
		r := s.HandleV3(nfs.V3Read, &nfs.ReadArgs3{FH: a.FH, Offset: uint64(a.Offset), Count: a.Count}).(*nfs.ReadRes3)
		return &nfs.ReadRes2{Status: r.Status, Attr: r.Attr, Data: r.Data}
	case nfs.V2Write:
		a := args.(*nfs.WriteArgs2)
		r := s.HandleV3(nfs.V3Write, &nfs.WriteArgs3{FH: a.FH, Offset: uint64(a.Offset),
			Count: uint32(len(a.Data)), Stable: nfs.FileSync, Data: a.Data}).(*nfs.WriteRes3)
		res := &nfs.AttrStatRes2{Status: r.Status}
		if r.Wcc != nil {
			res.Attr = r.Wcc.After
		}
		return res
	case nfs.V2Create, nfs.V2Mkdir:
		a := args.(*nfs.CreateArgs2)
		v3proc := uint32(nfs.V3Create)
		var v3args any = &nfs.CreateArgs3{Where: a.Where, Attr: a.Attr}
		if proc == nfs.V2Mkdir {
			v3proc = nfs.V3Mkdir
			v3args = &nfs.MkdirArgs3{Where: a.Where, Attr: a.Attr}
		}
		r := s.HandleV3(v3proc, v3args).(*nfs.CreateRes3)
		return &nfs.DirOpRes2{Status: r.Status, FH: r.FH, Attr: r.Attr}
	case nfs.V2Remove:
		r := s.HandleV3(nfs.V3Remove, args).(*nfs.RemoveRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Rmdir:
		r := s.HandleV3(nfs.V3Rmdir, args).(*nfs.RemoveRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Rename:
		r := s.HandleV3(nfs.V3Rename, args).(*nfs.RenameRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Link:
		r := s.HandleV3(nfs.V3Link, args).(*nfs.RemoveRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Symlink:
		r := s.HandleV3(nfs.V3Symlink, args).(*nfs.CreateRes3)
		return &nfs.StatusRes2{Status: r.Status}
	case nfs.V2Readdir:
		a := args.(*nfs.ReaddirArgs2)
		r := s.HandleV3(nfs.V3Readdir, &nfs.ReaddirArgs3{Dir: a.Dir,
			Cookie: uint64(a.Cookie), MaxCount: a.Count}).(*nfs.ReaddirRes3)
		return &nfs.ReaddirRes2{Status: r.Status, Entries: r.Entries, EOF: r.EOF}
	case nfs.V2Statfs:
		a := args.(*nfs.GetattrArgs3)
		r := s.HandleV3(nfs.V3Fsstat, a).(*nfs.FsstatRes3)
		return &nfs.StatfsRes2{Status: r.Status, Tsize: 8192, Bsize: vfs.BlockSize,
			Blocks: uint32(r.Tbytes / vfs.BlockSize), Bfree: uint32(r.Fbytes / vfs.BlockSize),
			Bavail: uint32(r.Abytes / vfs.BlockSize)}
	default:
		return &nfs.StatusRes2{Status: nfs.ErrNotSupp}
	}
}

// filler is the shared synthetic payload pool; reads slice it rather
// than allocating per reply. NFS data content never matters to the
// tracer. Growth copies into a fresh slice published atomically, so
// parallel readers never observe a pool being rewritten under them.
var (
	filler   atomic.Pointer[[]byte]
	fillerMu sync.Mutex
)

func init() {
	b := make([]byte, 65536)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	filler.Store(&b)
}

// Filler returns n bytes of synthetic payload (shared storage; callers
// must not modify it). Safe for concurrent use.
func Filler(n int) []byte {
	if n <= 0 {
		return nil
	}
	b := *filler.Load()
	if n <= len(b) {
		return b[:n]
	}
	fillerMu.Lock()
	defer fillerMu.Unlock()
	b = *filler.Load()
	for n > len(b) {
		nb := make([]byte, 2*len(b))
		copy(nb, b)
		copy(nb[len(b):], b)
		b = nb
	}
	filler.Store(&b)
	return b[:n]
}
