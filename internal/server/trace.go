package server

import (
	"encoding/binary"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/rpc"
)

// Passive trace tap: when a NetServer is given a trace callback, every
// successfully dispatched NFS procedure emits one call record and one
// reply record, built exactly the way internal/capture builds them from
// sniffed packets — same semantic parse (nfs.ParseCall/ParseReply over
// the raw XDR bodies), same interning, same field conventions. The
// server is its own mirror port: nfsbench traffic becomes a live trace
// that cmd/nfsmond can tail, reproducing the paper's passive-tracing
// deployment shape without a pcap in the loop.
//
// The callback runs on per-connection goroutines, so it must be safe
// for concurrent use. Record times are wall-clock Unix seconds; reply
// times are taken after the procedure executes, so call/reply pairs are
// ordered and carry the real service latency. Records from different
// connections may interleave slightly out of time order (each
// goroutine stamps then emits); the Joiner's matching is key-based and
// tolerates that jitter.

// connID caches one connection's endpoints in record terms.
type connID struct {
	client, server uint32
	port           uint16
}

func newConnID(conn net.Conn) connID {
	c, p := addrIPPort(conn.RemoteAddr())
	s, _ := addrIPPort(conn.LocalAddr())
	return connID{client: c, server: s, port: p}
}

// addrIPPort extracts a host-order IPv4 and port from a net.Addr;
// non-TCP or non-IPv4 addresses yield zero (records still join — the
// key is (client, port, xid) and stays consistent per connection).
func addrIPPort(a net.Addr) (uint32, uint16) {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return 0, 0
	}
	ip4 := ta.IP.To4()
	if ip4 == nil {
		return 0, uint16(ta.Port)
	}
	return binary.BigEndian.Uint32(ip4), uint16(ta.Port)
}

// traceNow stamps a record with wall-clock seconds.
func traceNow() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// traceCall builds the call record for one decoded RPC call, mirroring
// capture.handleMessage. It returns nil when the call body does not
// parse (the dispatch path already rejected it).
func traceCall(t float64, id connID, h *rpc.CallHeader) *core.Record {
	info, err := nfs.ParseCall(h.Version, h.Proc, h.Args)
	if err != nil {
		return nil
	}
	rec := &core.Record{
		Time: t, Kind: core.KindCall,
		Client: id.client, Port: id.port,
		Server: id.server, Proto: core.ProtoTCP,
		XID: h.XID, Version: h.Version, Proc: core.MustProc(info.Name),
		FH: core.InternFH(info.FH.String()), Name: info.FName,
		FH2: core.InternFH(info.FH2.String()), Name2: info.FName2,
		Offset: info.Offset, Count: info.Count, Stable: info.Stable,
	}
	if info.SetSize != nil {
		rec.SetSize, rec.HasSet = *info.SetSize, true
	}
	if h.Cred.Flavor == rpc.AuthSys {
		if auth, err := rpc.DecodeAuthSys(h.Cred.Body); err == nil {
			rec.UID, rec.GID = auth.UID, auth.GID
		}
	}
	return rec
}

// traceReply builds the reply record for one encoded result body,
// mirroring capture.handleMessage's reply path.
func traceReply(t float64, id connID, h *rpc.CallHeader, results []byte) *core.Record {
	info, err := nfs.ParseReply(h.Version, h.Proc, results)
	if err != nil {
		return nil
	}
	rec := &core.Record{
		Time: t, Kind: core.KindReply,
		Client: id.client, Port: id.port,
		Server: id.server, Proto: core.ProtoTCP,
		XID: h.XID, Version: h.Version, Proc: core.MustProc(info.Name),
		Status: info.Status, RCount: info.Count, EOF: info.EOF,
		NewFH: core.InternFH(info.NewFH.String()),
	}
	if info.Attr != nil {
		rec.Size = info.Attr.Size
		rec.FileID = info.Attr.FileID
		rec.Mtime = info.Attr.Mtime.Seconds()
	}
	if info.Pre != nil {
		rec.PreSize, rec.HasPre = info.Pre.Size, true
	}
	return rec
}
