package server

import (
	"fmt"

	"repro/internal/vfs"
)

// This file reproduces the substrate of the paper's §6.4 experiment: a
// FreeBSD-4.4-style NFS read path with a server block cache, a disk
// model, and pluggable read-ahead heuristics. The paper modified the
// server's read-ahead heuristic to use a simplified sequentiality metric
// and measured >5% end-to-end speedup for large sequential transfers
// when ~10% of requests arrive reordered.

// Disk models a 2001-era disk: a fixed positioning cost for
// non-contiguous access and a streaming transfer rate.
type Disk struct {
	// SeekTime is the average positioning cost (seek + rotation) in
	// seconds, paid when the requested block is not adjacent to the
	// previous access.
	SeekTime float64
	// TransferRate is the streaming bandwidth in bytes/second.
	TransferRate float64

	lastBlock int64
	busy      float64 // accumulated service time
	seeks     int64
	reads     int64
}

// NewDisk returns a disk with c. 2001 characteristics (8.5 ms average
// positioning, 30 MB/s media rate).
func NewDisk() *Disk {
	return &Disk{SeekTime: 0.0085, TransferRate: 30e6, lastBlock: -1 << 60}
}

// Read services a request for n contiguous blocks starting at block and
// returns the service time.
func (d *Disk) Read(block int64, nblocks int) float64 {
	t := 0.0
	if block != d.lastBlock+1 && block != d.lastBlock {
		t += d.SeekTime
		d.seeks++
	}
	bytes := float64(nblocks) * vfs.BlockSize
	t += bytes / d.TransferRate
	d.lastBlock = block + int64(nblocks) - 1
	d.busy += t
	d.reads++
	return t
}

// BusyTime reports total accumulated service time.
func (d *Disk) BusyTime() float64 { return d.busy }

// Seeks reports the number of positioning operations paid.
func (d *Disk) Seeks() int64 { return d.seeks }

// blockKey identifies one cached block of one file.
type blockKey struct {
	file  uint64
	block int64
}

// BlockCache is a bounded FIFO block cache (FreeBSD's buffer cache is
// approximated well enough by FIFO for this experiment's purposes).
type BlockCache struct {
	capacity int
	entries  map[blockKey]struct{}
	order    []blockKey
	hits     int64
	misses   int64
}

// NewBlockCache returns a cache holding up to capacity blocks.
func NewBlockCache(capacity int) *BlockCache {
	return &BlockCache{capacity: capacity, entries: make(map[blockKey]struct{})}
}

// Contains checks and records a lookup.
func (c *BlockCache) Contains(file uint64, block int64) bool {
	if _, ok := c.entries[blockKey{file, block}]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Insert adds a block, evicting the oldest if full.
func (c *BlockCache) Insert(file uint64, block int64) {
	k := blockKey{file, block}
	if _, ok := c.entries[k]; ok {
		return
	}
	if len(c.entries) >= c.capacity && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
	}
	c.entries[k] = struct{}{}
	c.order = append(c.order, k)
}

// HitRate reports the fraction of lookups served from cache.
func (c *BlockCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ReadAheadPolicy decides how many blocks to prefetch after a read.
type ReadAheadPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Advise is called with each read's file and block range and
	// returns the number of blocks to prefetch beyond the request.
	Advise(file uint64, block int64, nblocks int) int
}

// NoReadAhead never prefetches — the baseline floor.
type NoReadAhead struct{}

// Name implements ReadAheadPolicy.
func (NoReadAhead) Name() string { return "none" }

// Advise implements ReadAheadPolicy.
func (NoReadAhead) Advise(uint64, int64, int) int { return 0 }

// StrictSequential is the classic heuristic: prefetch only while each
// request begins exactly where the previous one ended. One reordered
// request resets the run and disables prefetch — the fragility the
// paper calls out.
type StrictSequential struct {
	Window int // blocks to prefetch while sequential
	last   map[uint64]int64
}

// NewStrictSequential returns the heuristic with the given prefetch
// window (8 blocks if w <= 0, the FreeBSD default cluster).
func NewStrictSequential(w int) *StrictSequential {
	if w <= 0 {
		w = 8
	}
	return &StrictSequential{Window: w, last: make(map[uint64]int64)}
}

// Name implements ReadAheadPolicy.
func (p *StrictSequential) Name() string { return "strict" }

// Advise implements ReadAheadPolicy.
func (p *StrictSequential) Advise(file uint64, block int64, nblocks int) int {
	next, seen := p.last[file]
	p.last[file] = block + int64(nblocks)
	if seen && block == next {
		return p.Window
	}
	return 0
}

// MetricReadAhead is the paper's modification: maintain a running
// sequentiality metric per file (the fraction of k-consecutive
// accesses) and prefetch while the metric stays above a threshold, so a
// few reordered requests do not disable read-ahead.
type MetricReadAhead struct {
	Window    int
	Threshold float64
	K         int64 // jump tolerance in blocks
	state     map[uint64]*metricState
}

type metricState struct {
	next       int64
	seen       bool
	total      int64
	sequential int64
}

// NewMetricReadAhead returns the metric policy with the paper's
// parameters: 8-block window, 0.6 threshold, k=10 jump tolerance.
func NewMetricReadAhead() *MetricReadAhead {
	return &MetricReadAhead{Window: 8, Threshold: 0.6, K: 10,
		state: make(map[uint64]*metricState)}
}

// Name implements ReadAheadPolicy.
func (p *MetricReadAhead) Name() string { return "metric" }

// Advise implements ReadAheadPolicy.
func (p *MetricReadAhead) Advise(file uint64, block int64, nblocks int) int {
	st := p.state[file]
	if st == nil {
		st = &metricState{}
		p.state[file] = st
	}
	if st.seen {
		st.total++
		jump := block - st.next
		if jump < 0 {
			jump = -jump
		}
		if jump <= p.K {
			st.sequential++
		}
	}
	st.seen = true
	if block+int64(nblocks) > st.next {
		st.next = block + int64(nblocks)
	}
	if st.total == 0 {
		return p.Window // optimistic first access
	}
	if float64(st.sequential)/float64(st.total) >= p.Threshold {
		return p.Window
	}
	return 0
}

// ReadRequest is one 8k-block-granular read in the §6.4 experiment.
type ReadRequest struct {
	File    uint64
	Block   int64
	NBlocks int
}

// ReadPathResult summarizes one policy's run over a request stream.
type ReadPathResult struct {
	Policy       string
	Requests     int
	TotalBytes   int64
	ServiceTime  float64 // total disk time
	Throughput   float64 // bytes per second of disk time
	CacheHitRate float64
	DiskSeeks    int64
}

// String formats the result as an experiment row.
func (r ReadPathResult) String() string {
	return fmt.Sprintf("%-8s requests=%d bytes=%d service=%.3fs throughput=%.1f MB/s hit=%.1f%% seeks=%d",
		r.Policy, r.Requests, r.TotalBytes, r.ServiceTime,
		r.Throughput/1e6, r.CacheHitRate*100, r.DiskSeeks)
}

// RunReadPath services the request stream with the given policy, cache
// capacity (in blocks), and a fresh disk, returning aggregate timing.
// This is the §6.4 experiment inner loop.
func RunReadPath(reqs []ReadRequest, policy ReadAheadPolicy, cacheBlocks int) ReadPathResult {
	disk := NewDisk()
	cache := NewBlockCache(cacheBlocks)
	var total float64
	var bytes int64
	for _, rq := range reqs {
		for b := rq.Block; b < rq.Block+int64(rq.NBlocks); b++ {
			if !cache.Contains(rq.File, b) {
				total += disk.Read(b, 1)
				cache.Insert(rq.File, b)
			}
			bytes += vfs.BlockSize
		}
		if ahead := policy.Advise(rq.File, rq.Block, rq.NBlocks); ahead > 0 {
			start := rq.Block + int64(rq.NBlocks)
			run := 0
			for b := start; b < start+int64(ahead); b++ {
				if _, ok := cache.entries[blockKey{rq.File, b}]; !ok {
					run++
					cache.Insert(rq.File, b)
				}
			}
			if run > 0 {
				// Prefetch rides the same disk pass: sequential blocks
				// at streaming rate, no extra seek if contiguous.
				total += disk.Read(start, run)
			}
		}
	}
	res := ReadPathResult{
		Policy:       policy.Name(),
		Requests:     len(reqs),
		TotalBytes:   bytes,
		ServiceTime:  total,
		CacheHitRate: cache.HitRate(),
		DiskSeeks:    disk.Seeks(),
	}
	if total > 0 {
		res.Throughput = float64(bytes) / total
	}
	return res
}
