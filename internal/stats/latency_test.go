package stats

import (
	"math"
	"sync"
	"testing"
)

// TestCDFPercentileKnown pins nearest-rank percentiles on an explicit
// sample set: values 1..100 make the p-th percentile exactly p.
func TestCDFPercentileKnown(t *testing.T) {
	var c CDF
	// Insert in a scrambled order to exercise the lazy sort.
	for i := 0; i < 100; i++ {
		c.Add(float64((i*37)%100 + 1))
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
		if got := c.Percentile(p); got != p {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, p)
		}
	}
	if got := c.Median(); got != 50 {
		t.Errorf("Median = %v, want 50", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("Percentile(0) = %v, want 1", got)
	}
	var empty CDF
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty Percentile = %v, want 0", got)
	}
}

// TestCDFMergeEquivalence checks that percentiles over a merged CDF
// equal those over the union added to a single CDF.
func TestCDFMergeEquivalence(t *testing.T) {
	var single CDF
	shards := make([]*CDF, 4)
	for i := range shards {
		shards[i] = &CDF{}
	}
	for i := 0; i < 1000; i++ {
		v := math.Pow(1.01, float64(i%700)) // skewed, repeating values
		single.Add(v)
		shards[i%4].Add(v)
	}
	var merged CDF
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.N() != single.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), single.N())
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if merged.Percentile(p) != single.Percentile(p) {
			t.Fatalf("Percentile(%v): merged %v != single %v",
				p, merged.Percentile(p), single.Percentile(p))
		}
	}
}

// TestLogHistCumulativeAt pins CumulativeAt against a hand-built
// distribution: k observations in bucket k for k = 0..4.
func TestLogHistCumulativeAt(t *testing.T) {
	var h LogHist
	total := 0
	for k := 0; k <= 4; k++ {
		for i := 0; i < k+1; i++ {
			h.Add(math.Exp2(float64(k))) // exactly 2^k → bucket k
			total++
		}
	}
	if h.Total() != int64(total) {
		t.Fatalf("Total = %d, want %d", h.Total(), total)
	}
	cum := 0
	for k := 0; k <= 5; k++ {
		want := float64(cum) / float64(total)
		if got := h.CumulativeAt(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("CumulativeAt(%d) = %v, want %v", k, got, want)
		}
		cum += k + 1
	}
	if got := h.CumulativeAt(64); got != 1 {
		t.Errorf("CumulativeAt(64) = %v, want 1", got)
	}
}

// TestLogHistMergeEquivalence checks merged-vs-single-shard equality.
func TestLogHistMergeEquivalence(t *testing.T) {
	var single, merged LogHist
	shards := make([]*LogHist, 3)
	for i := range shards {
		shards[i] = &LogHist{}
	}
	for i := 0; i < 500; i++ {
		v := float64(i%97) + 0.5
		single.Add(v)
		shards[i%3].Add(v)
	}
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Total() != single.Total() {
		t.Fatalf("merged Total = %d, want %d", merged.Total(), single.Total())
	}
	for i := 0; i < 10; i++ {
		if merged.CumulativeAt(i) != single.CumulativeAt(i) {
			t.Fatalf("CumulativeAt(%d): merged %v != single %v",
				i, merged.CumulativeAt(i), single.CumulativeAt(i))
		}
	}
}

// maxLatErr is the histogram's bucket-width error bound, 2^(1/8)-1.
var maxLatErr = math.Exp2(1.0/latSubPerOctave) - 1

// checkPercentile asserts the histogram percentile is within the
// bucket-resolution error of the analytic value.
func checkPercentile(t *testing.T, h *LatencyHist, p, want float64) {
	t.Helper()
	got := h.Percentile(p)
	if rel := math.Abs(got-want) / want; rel > maxLatErr+1e-9 {
		t.Errorf("Percentile(%v) = %v, want %v ±%.1f%% (off %.1f%%)",
			p, got, want, maxLatErr*100, rel*100)
	}
}

// TestLatencyHistUniform validates percentiles against the closed-form
// quantiles of a uniform (0,1] distribution sampled on an even grid.
func TestLatencyHistUniform(t *testing.T) {
	var h LatencyHist
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(float64(i+1) / n)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		checkPercentile(t, &h, p, p/100)
	}
	if mean := h.Mean(); math.Abs(mean-0.500005) > 1e-9 {
		t.Errorf("Mean = %v, want 0.500005 (exact)", mean)
	}
	if h.Min() != 1.0/n || h.Max() != 1 {
		t.Errorf("Min/Max = %v/%v, want %v/1", h.Min(), h.Max(), 1.0/n)
	}
	if got := h.Percentile(0); got != h.Min() {
		t.Errorf("Percentile(0) = %v, want min %v", got, h.Min())
	}
	if got := h.Percentile(100); got != h.Max() {
		t.Errorf("Percentile(100) = %v, want max %v", got, h.Max())
	}
}

// TestLatencyHistExponential does the same for Exp(mean=2ms), the shape
// real RPC latency tails take, via the inverse CDF on an even grid.
func TestLatencyHistExponential(t *testing.T) {
	var h LatencyHist
	const n = 100000
	const mean = 0.002
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		h.Add(-mean * math.Log(1-u))
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := -mean * math.Log(1-p/100)
		checkPercentile(t, &h, p, want)
	}
}

// TestLatencyHistMergeEquivalence: merging per-shard histograms must
// reproduce the single-shard histogram exactly — counts, sum, extremes,
// every percentile, and the CDF dump.
func TestLatencyHistMergeEquivalence(t *testing.T) {
	var single LatencyHist
	shards := make([]*LatencyHist, 5)
	for i := range shards {
		shards[i] = &LatencyHist{}
	}
	for i := 0; i < 20000; i++ {
		u := (float64(i) + 0.5) / 20000
		v := 0.0001 * math.Pow(1000, u) // log-uniform 100µs..100ms
		single.Add(v)
		shards[i%5].Add(v)
	}
	var merged LatencyHist
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), single.Count())
	}
	// Sums are added in different orders, so allow float rounding slack.
	if math.Abs(merged.Sum()-single.Sum()) > 1e-9*single.Sum() {
		t.Fatalf("merged sum %v, want %v", merged.Sum(), single.Sum())
	}
	if merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merged min/max differ")
	}
	for p := 0.0; p <= 100; p += 0.1 {
		if merged.Percentile(p) != single.Percentile(p) {
			t.Fatalf("Percentile(%v): merged %v != single %v",
				p, merged.Percentile(p), single.Percentile(p))
		}
	}
	mc, sc := merged.CDF(), single.CDF()
	if len(mc) != len(sc) {
		t.Fatalf("CDF length %d != %d", len(mc), len(sc))
	}
	for i := range mc {
		if mc[i] != sc[i] {
			t.Fatalf("CDF[%d]: %+v != %+v", i, mc[i], sc[i])
		}
	}
	if last := mc[len(mc)-1]; last.Cum != 1 {
		t.Fatalf("CDF tail Cum = %v, want 1", last.Cum)
	}
}

// TestLatencyHistEdges covers non-positive and out-of-range values.
func TestLatencyHistEdges(t *testing.T) {
	var h LatencyHist
	h.Add(0)
	h.Add(-1)
	h.Add(1e-12) // below the first bucket
	h.Add(1e6)   // above the last bucket
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Max() != 1e6 || h.Min() != -1 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// Percentiles stay inside the observed range even for clamped buckets.
	if p := h.Percentile(99.9); p > h.Max() {
		t.Fatalf("Percentile(99.9) = %v beyond max", p)
	}
	var empty LatencyHist
	if empty.Percentile(50) != 0 || empty.Mean() != 0 || empty.CDF() != nil {
		t.Fatal("empty histogram should report zeros")
	}
}

// TestCollectorConcurrent hammers a Collector from many goroutines and
// checks the merged totals equal the serial reference, and that the
// collector passes the race detector.
func TestCollectorConcurrent(t *testing.T) {
	col := NewCollector()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := col.Shard()
		wg.Add(1)
		go func(w int, s *LatencyShard) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				class := OpClass(i % int(NumOpClasses))
				if i%100 == 99 {
					s.RecordError(class)
					continue
				}
				s.Record(class, float64(w+1)*1e-4+float64(i)*1e-8)
			}
		}(w, shard)
	}
	wg.Wait()

	var serial LatencyHist
	var wantErrs int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if i%100 == 99 {
				wantErrs++
				continue
			}
			serial.Add(float64(w+1)*1e-4 + float64(i)*1e-8)
		}
	}
	total := col.Total()
	if total.Count() != serial.Count() || total.Sum() != serial.Sum() {
		t.Fatalf("total count/sum %d/%v, want %d/%v",
			total.Count(), total.Sum(), serial.Count(), serial.Sum())
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if total.Percentile(p) != serial.Percentile(p) {
			t.Fatalf("Percentile(%v): collector %v != serial %v",
				p, total.Percentile(p), serial.Percentile(p))
		}
	}
	if got := col.TotalErrors(); got != wantErrs {
		t.Fatalf("TotalErrors = %d, want %d", got, wantErrs)
	}
	var classSum int64
	for class := OpClass(0); class < NumOpClasses; class++ {
		classSum += col.Class(class).Count()
	}
	if classSum != total.Count() {
		t.Fatalf("per-class counts sum to %d, want %d", classSum, total.Count())
	}
}
