// Package stats provides the small statistical toolkit used by the trace
// analyses: running moments, percentiles, linear and logarithmic
// histograms, cumulative distributions, and fixed-width time-bucket
// accumulators.
//
// Everything here is deterministic and allocation-conscious: analyses run
// over tens of millions of trace records, so the accumulators are plain
// structs updated in place.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, and variance online using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of observations added.
func (r *Running) N() int64 { return r.n }

// Mean reports the arithmetic mean, or 0 if no observations were added.
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest observation, or 0 if none were added.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation, or 0 if none were added.
func (r *Running) Max() float64 { return r.max }

// Sum reports mean*n, the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Variance reports the population variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Stddev reports the population standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// RelStddev reports the standard deviation as a fraction of the mean —
// the "percentage of the average" presentation used by Table 5 of the
// paper. It returns 0 when the mean is 0.
func (r *Running) RelStddev() float64 {
	if r.mean == 0 {
		return 0
	}
	return r.Stddev() / math.Abs(r.mean)
}

// Merge folds the observations of other into r, as if every observation
// added to other had been added to r.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	mean := r.mean + d*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	min := r.min
	if other.min < min {
		min = other.min
	}
	max := r.max
	if other.max > max {
		max = other.max
	}
	*r = Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// LogHist is a base-2 logarithmic histogram over positive values. Bucket i
// holds values in [2^i, 2^(i+1)). Values below 1 land in bucket 0. The
// zero value is ready for use.
type LogHist struct {
	buckets []int64
	total   int64
	sum     float64
}

// Add records one observation. Non-positive values are counted in the
// first bucket.
func (h *LogHist) Add(v float64) {
	i := 0
	if v >= 1 {
		i = int(math.Floor(math.Log2(v)))
	}
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.total++
	h.sum += v
}

// Total reports the number of observations.
func (h *LogHist) Total() int64 { return h.total }

// Buckets returns the raw bucket counts; bucket i covers [2^i, 2^(i+1)).
func (h *LogHist) Buckets() []int64 { return h.buckets }

// Merge folds the observations of other into h, as if every observation
// added to other had been added to h. Bucket counts merge exactly, which
// is what lets per-client histograms reduce to a global one.
func (h *LogHist) Merge(other *LogHist) {
	if other == nil || other.total == 0 {
		return
	}
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// CumulativeAt reports the fraction of observations with value < 2^i.
func (h *LogHist) CumulativeAt(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var c int64
	for j := 0; j < i && j < len(h.buckets); j++ {
		c += h.buckets[j]
	}
	return float64(c) / float64(h.total)
}

// CDF is a cumulative distribution built from explicit samples. It is
// collected unsorted and sorted lazily on first query.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// N reports the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At reports the fraction of samples <= v.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, v)
	// Move past equal values so At is "<= v".
	for i < len(c.samples) && c.samples[i] <= v {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Merge folds the samples of other into c, as if every sample added to
// other had been added to c. Percentiles over the merged CDF are exact
// (sample multisets union), which is what lets the sharded pipeline
// reduce per-shard lifetime distributions without approximation.
func (c *CDF) Merge(other *CDF) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	c.samples = append(c.samples, other.samples...)
	c.sorted = false
}

// Samples returns the raw sample slice (not a copy, possibly unsorted).
// It exists so the state codec can serialize a CDF without this package
// knowing about encodings; callers must not mutate the slice.
func (c *CDF) Samples() []float64 { return c.samples }

// AddSamples appends a batch of samples, the decode-side counterpart of
// Samples.
func (c *CDF) AddSamples(vs []float64) {
	if len(vs) == 0 {
		return
	}
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// Clone returns an independent copy of the CDF. The sample slice is
// copied outright: queries sort samples in place, so sharing a backing
// array between a live accumulator and a snapshot would let one
// reorder the other's data under it.
func (c *CDF) Clone() *CDF {
	cp := &CDF{sorted: c.sorted}
	if len(c.samples) > 0 {
		cp.samples = make([]float64, len(c.samples))
		copy(cp.samples, c.samples)
	}
	return cp
}

// Percentile reports the p-th percentile (p in [0,100]) using
// nearest-rank. It returns 0 for an empty CDF.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

// Median reports the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(50) }

// TimeBuckets accumulates per-bucket counts over a time span, e.g.
// hourly operation counts over a week. Times are given in seconds from
// the start of the span. The span is either fixed at construction
// (NewTimeBuckets) or open-ended (NewOpenTimeBuckets), growing with the
// data; an open accumulator folds into the fixed form with Fixed.
type TimeBuckets struct {
	width   float64 // bucket width in seconds
	buckets []float64
	open    bool // buckets grow on demand instead of clamping
}

// NewTimeBuckets creates an accumulator covering span seconds with the
// given bucket width. Both must be positive; span is rounded up to a
// whole number of buckets.
func NewTimeBuckets(span, width float64) *TimeBuckets {
	if span <= 0 || width <= 0 {
		panic(fmt.Sprintf("stats: invalid time buckets span=%v width=%v", span, width))
	}
	n := int(math.Ceil(span / width))
	return &TimeBuckets{width: width, buckets: make([]float64, n)}
}

// NewOpenTimeBuckets creates an open-ended accumulator: the bucket list
// grows to cover whatever times are added. It is the form used when the
// span is only known after the stream ends (a partial analysis over one
// piece of a trace set); Fixed converts to the clamped fixed form once
// the span is known.
func NewOpenTimeBuckets(width float64) *TimeBuckets {
	if width <= 0 {
		panic(fmt.Sprintf("stats: invalid time bucket width=%v", width))
	}
	return &TimeBuckets{width: width, open: true}
}

// Open reports whether the accumulator grows instead of clamping.
func (b *TimeBuckets) Open() bool { return b.open }

// Add accumulates amount into the bucket containing time t (seconds from
// the start of the span). In the fixed form, out-of-range times are
// clamped to the first or last bucket so that boundary jitter never
// loses data; the open form grows instead.
func (b *TimeBuckets) Add(t, amount float64) {
	b.FoldBucket(int(t/b.width), amount)
}

// FoldBucket accumulates amount directly into bucket index i, with the
// same clamping (fixed form) or growth (open form) as Add. It is the
// decode-side primitive: bucket indexes are anchored at t=0, so folding
// an open accumulator's buckets into a fixed-span one reproduces
// exactly what adding the underlying observations would have.
func (b *TimeBuckets) FoldBucket(i int, amount float64) {
	if i < 0 {
		i = 0
	}
	if i >= len(b.buckets) {
		if !b.open {
			if len(b.buckets) == 0 {
				return
			}
			i = len(b.buckets) - 1
		} else {
			for len(b.buckets) <= i {
				b.buckets = append(b.buckets, 0)
			}
		}
	}
	b.buckets[i] += amount
}

// Fixed folds an accumulator into the fixed form covering span seconds:
// buckets past the end clamp-fold into the last one, exactly as a fixed
// accumulator would have clamped the original Adds.
func (b *TimeBuckets) Fixed(span float64) *TimeBuckets {
	out := NewTimeBuckets(span, b.width)
	for i, v := range b.buckets {
		if v != 0 {
			out.FoldBucket(i, v)
		}
	}
	return out
}

// NumBuckets reports the number of buckets.
func (b *TimeBuckets) NumBuckets() int { return len(b.buckets) }

// Bucket reports the accumulated amount in bucket i.
func (b *TimeBuckets) Bucket(i int) float64 { return b.buckets[i] }

// Width reports the bucket width in seconds.
func (b *TimeBuckets) Width() float64 { return b.width }

// Values returns the underlying bucket slice (not a copy).
func (b *TimeBuckets) Values() []float64 { return b.buckets }

// Merge adds other's buckets into b. Fixed accumulators must have been
// created with the same span and width; an open accumulator accepts any
// other with the same width, growing as needed. Because every amount
// added by the analyses is a whole number well below 2^53, float64
// addition here is exact and the merged totals are independent of shard
// order.
func (b *TimeBuckets) Merge(other *TimeBuckets) {
	if other.width != b.width || (!b.open && len(other.buckets) != len(b.buckets)) {
		panic(fmt.Sprintf("stats: merging mismatched time buckets (%v/%d vs %v/%d)",
			b.width, len(b.buckets), other.width, len(other.buckets)))
	}
	for i, v := range other.buckets {
		if v != 0 {
			b.FoldBucket(i, v)
		}
	}
}

// Clone returns an independent copy of the accumulator.
func (b *TimeBuckets) Clone() *TimeBuckets {
	cp := &TimeBuckets{width: b.width, buckets: make([]float64, len(b.buckets)), open: b.open}
	copy(cp.buckets, b.buckets)
	return cp
}

// Ratio builds a per-bucket ratio series num[i]/den[i]; buckets where the
// denominator is zero yield 0.
func Ratio(num, den *TimeBuckets) []float64 {
	n := num.NumBuckets()
	if den.NumBuckets() < n {
		n = den.NumBuckets()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if den.buckets[i] != 0 {
			out[i] = num.buckets[i] / den.buckets[i]
		}
	}
	return out
}
