package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Stddev() != 0 || r.Sum() != 0 {
		t.Fatalf("zero-value Running not empty: %+v", r)
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.N() != 1 || r.Mean() != 42 || r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("got n=%d mean=%v min=%v max=%v", r.N(), r.Mean(), r.Min(), r.Max())
	}
	if r.Variance() != 0 {
		t.Fatalf("single-observation variance = %v, want 0", r.Variance())
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Mean() != 5 {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.Stddev(), 2, 1e-12) {
		t.Errorf("stddev = %v, want 2", r.Stddev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if !almostEqual(r.Sum(), 40, 1e-9) {
		t.Errorf("sum = %v, want 40", r.Sum())
	}
	if !almostEqual(r.RelStddev(), 0.4, 1e-12) {
		t.Errorf("relstddev = %v, want 0.4", r.RelStddev())
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5}
	var whole Running
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Running
	for i, x := range xs {
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge with empty changed accumulator: %+v", a)
	}
	var c Running
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 5 {
		t.Fatalf("merge into empty did not copy: %+v", c)
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		var whole, a, b Running
		for _, x := range xs {
			x = math.Mod(x, 1e6) // keep magnitudes sane
			whole.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			y = math.Mod(y, 1e6)
			whole.Add(y)
			b.Add(y)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEqual(a.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-4*(1+whole.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHist(t *testing.T) {
	var h LogHist
	for _, v := range []float64{0.5, 1, 2, 3, 4, 1000} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	b := h.Buckets()
	// 0.5 → bucket 0; 1 → bucket 0; 2,3 → bucket 1; 4 → bucket 2; 1000 → bucket 9
	if b[0] != 2 || b[1] != 2 || b[2] != 1 || b[9] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if got := h.CumulativeAt(2); !almostEqual(got, 4.0/6, 1e-12) {
		t.Errorf("CumulativeAt(2) = %v, want %v", got, 4.0/6)
	}
	if got := h.CumulativeAt(100); !almostEqual(got, 1, 1e-12) {
		t.Errorf("CumulativeAt(100) = %v, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, v := range []float64{5, 1, 3, 2, 4} {
		c.Add(v)
	}
	if c.N() != 5 {
		t.Fatalf("n = %d", c.N())
	}
	if got := c.At(3); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := c.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 || c.Percentile(50) != 0 {
		t.Fatal("empty CDF should report zeros")
	}
}

func TestCDFPercentileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			q := c.Percentile(p)
			if c.N() > 0 && q < prev {
				return false
			}
			if c.N() > 0 {
				prev = q
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeBuckets(t *testing.T) {
	b := NewTimeBuckets(3600, 60) // one hour of minute buckets
	if b.NumBuckets() != 60 {
		t.Fatalf("buckets = %d, want 60", b.NumBuckets())
	}
	b.Add(0, 1)
	b.Add(59.9, 1)
	b.Add(60, 5)
	b.Add(3599, 2)
	b.Add(-10, 1)   // clamps to first
	b.Add(1e9, 100) // clamps to last
	if b.Bucket(0) != 3 {
		t.Errorf("bucket 0 = %v, want 3", b.Bucket(0))
	}
	if b.Bucket(1) != 5 {
		t.Errorf("bucket 1 = %v, want 5", b.Bucket(1))
	}
	if b.Bucket(59) != 102 {
		t.Errorf("bucket 59 = %v, want 102", b.Bucket(59))
	}
	if b.Width() != 60 {
		t.Errorf("width = %v", b.Width())
	}
}

func TestTimeBucketsPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero width")
		}
	}()
	NewTimeBuckets(100, 0)
}

func TestRatio(t *testing.T) {
	num := NewTimeBuckets(300, 100)
	den := NewTimeBuckets(300, 100)
	num.Add(0, 6)
	den.Add(0, 2)
	num.Add(150, 5)
	// den bucket 1 left zero → ratio 0
	r := Ratio(num, den)
	if len(r) != 3 {
		t.Fatalf("len = %d", len(r))
	}
	if r[0] != 3 || r[1] != 0 || r[2] != 0 {
		t.Fatalf("ratio = %v", r)
	}
}
