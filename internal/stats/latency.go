// Latency collection for the load harness: log-bucketed histograms in
// the spirit of LogHist but with sub-octave resolution (8 buckets per
// power of two, ≤9% relative error at any percentile), plus a sharded
// concurrency-safe collector so T×c benchmark workers record without
// contending on shared state. Shards merge exactly, in the same
// shard/merge style as the pipeline reducers.
package stats

import (
	"math"
	"sync"
)

// Latency histogram layout: bucket i covers latencies (in seconds) in
// [2^((i+latMinIndex)/latSubPerOctave), 2^((i+1+latMinIndex)/latSubPerOctave)),
// spanning ~60ns to 256s. The layout is fixed so any two LatencyHists
// merge bucket-for-bucket.
const (
	latSubPerOctave = 8
	latMinExp       = -24 // 2^-24 s ≈ 60 ns
	latMaxExp       = 8   // 2^8 s = 256 s
	latMinIndex     = latMinExp * latSubPerOctave
	latNumBuckets   = (latMaxExp - latMinExp) * latSubPerOctave
)

// LatencyHist is a fixed-layout logarithmic latency histogram. Like the
// other accumulators in this package it is a plain struct: one owner
// updates it; Collector provides the concurrency-safe wrapper.
type LatencyHist struct {
	counts [latNumBuckets]int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// latBucket maps a latency in seconds to its bucket index.
func latBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v)*latSubPerOctave)) - latMinIndex
	if i < 0 {
		return 0
	}
	if i >= latNumBuckets {
		return latNumBuckets - 1
	}
	return i
}

// latUpper reports the upper bound (seconds) of bucket i.
func latUpper(i int) float64 {
	return math.Exp2(float64(i+1+latMinIndex) / latSubPerOctave)
}

// Add records one latency observation in seconds.
func (h *LatencyHist) Add(seconds float64) {
	h.counts[latBucket(seconds)]++
	h.n++
	h.sum += seconds
	if h.n == 1 {
		h.min, h.max = seconds, seconds
		return
	}
	if seconds < h.min {
		h.min = seconds
	}
	if seconds > h.max {
		h.max = seconds
	}
}

// Count reports the number of observations.
func (h *LatencyHist) Count() int64 { return h.n }

// Sum reports the total of all observations in seconds.
func (h *LatencyHist) Sum() float64 { return h.sum }

// Mean reports the exact arithmetic mean (tracked outside the buckets).
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min reports the smallest observation, or 0 if empty.
func (h *LatencyHist) Min() float64 { return h.min }

// Max reports the largest observation, or 0 if empty.
func (h *LatencyHist) Max() float64 { return h.max }

// Merge folds other into h, as if every observation added to other had
// been added to h. Bucket counts merge exactly.
func (h *LatencyHist) Merge(other *LatencyHist) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 {
		*h = *other
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Percentile reports the p-th percentile (p in [0,100]) by nearest rank
// over the buckets, returning the containing bucket's upper bound
// clamped to the observed min/max. Relative error is bounded by the
// bucket width, 2^(1/8)-1 ≈ 9%.
func (h *LatencyHist) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := latUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// HistPoint is one step of a latency CDF dump: the fraction of
// observations at most Upper seconds.
type HistPoint struct {
	Upper float64 // bucket upper bound, seconds
	Count int64   // observations in this bucket
	Cum   float64 // cumulative fraction ≤ Upper
}

// CDF dumps the non-empty span of the histogram as cumulative points,
// from the first occupied bucket through the last.
func (h *LatencyHist) CDF() []HistPoint {
	if h.n == 0 {
		return nil
	}
	first, last := -1, 0
	for i, c := range h.counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	pts := make([]HistPoint, 0, last-first+1)
	var cum int64
	for i := first; i <= last; i++ {
		cum += h.counts[i]
		pts = append(pts, HistPoint{
			Upper: latUpper(i),
			Count: h.counts[i],
			Cum:   float64(cum) / float64(h.n),
		})
	}
	return pts
}

// OpClass partitions benchmark operations for latency accounting.
type OpClass uint8

// Operation classes.
const (
	OpRead OpClass = iota
	OpWrite
	OpMeta
	NumOpClasses
)

// String names the class for reports.
func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMeta:
		return "meta"
	}
	return "unknown"
}

// Collector aggregates latency observations from many concurrent
// workers. Each worker owns a LatencyShard (cheap, uncontended mutex);
// totals are computed by merging shards, so collection is exact — the
// merged histogram equals the one a single serial observer would have
// built.
type Collector struct {
	mu     sync.Mutex
	shards []*LatencyShard
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Shard registers and returns a new shard for one worker.
func (c *Collector) Shard() *LatencyShard {
	s := &LatencyShard{}
	c.mu.Lock()
	c.shards = append(c.shards, s)
	c.mu.Unlock()
	return s
}

// LatencyShard is one worker's private slice of a Collector.
type LatencyShard struct {
	mu   sync.Mutex
	hist [NumOpClasses]LatencyHist
	errs [NumOpClasses]int64
}

// Record folds one successful operation's latency into the shard.
func (s *LatencyShard) Record(class OpClass, seconds float64) {
	s.mu.Lock()
	s.hist[class].Add(seconds)
	s.mu.Unlock()
}

// RecordError counts one failed operation.
func (s *LatencyShard) RecordError(class OpClass) {
	s.mu.Lock()
	s.errs[class]++
	s.mu.Unlock()
}

// Class merges every shard's histogram for one class into a snapshot.
func (c *Collector) Class(class OpClass) *LatencyHist {
	out := &LatencyHist{}
	c.mu.Lock()
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		out.Merge(&s.hist[class])
		s.mu.Unlock()
	}
	return out
}

// Total merges every shard and class into one histogram.
func (c *Collector) Total() *LatencyHist {
	out := &LatencyHist{}
	for class := OpClass(0); class < NumOpClasses; class++ {
		out.Merge(c.Class(class))
	}
	return out
}

// Errors reports the error count for one class across all shards.
func (c *Collector) Errors(class OpClass) int64 {
	var n int64
	c.mu.Lock()
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		n += s.errs[class]
		s.mu.Unlock()
	}
	return n
}

// TotalErrors reports the error count across all classes and shards.
func (c *Collector) TotalErrors() int64 {
	var n int64
	for class := OpClass(0); class < NumOpClasses; class++ {
		n += c.Errors(class)
	}
	return n
}
