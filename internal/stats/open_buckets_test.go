package stats

import (
	"reflect"
	"testing"
)

// Tests for the open-ended TimeBuckets form and the CDF sample
// accessors that the state codec builds on: an open accumulator grows
// with the data, folds into the fixed form exactly as direct clamped
// Adds would have, and merges across the open/fixed boundary.

func TestOpenTimeBucketsGrowth(t *testing.T) {
	b := NewOpenTimeBuckets(3600)
	if !b.Open() {
		t.Fatalf("NewOpenTimeBuckets is not open")
	}
	if b.NumBuckets() != 0 {
		t.Fatalf("fresh open accumulator has %d buckets, want 0", b.NumBuckets())
	}
	b.Add(10, 1)
	b.Add(7200+5, 2) // third hour: grows to 3 buckets
	b.Add(-3, 4)     // negative clamps to bucket 0, as in the fixed form
	if got := b.NumBuckets(); got != 3 {
		t.Fatalf("open accumulator has %d buckets, want 3", got)
	}
	if want := []float64{5, 0, 2}; !reflect.DeepEqual(b.Values(), want) {
		t.Fatalf("open buckets = %v, want %v", b.Values(), want)
	}
}

func TestFixedTimeBucketsStillClamp(t *testing.T) {
	b := NewTimeBuckets(7200, 3600)
	if b.Open() {
		t.Fatalf("NewTimeBuckets is open")
	}
	b.Add(10, 1)
	b.Add(10*3600, 2) // past the span: clamps into the last bucket
	if want := []float64{1, 2}; !reflect.DeepEqual(b.Values(), want) {
		t.Fatalf("fixed buckets = %v, want %v", b.Values(), want)
	}
}

// TestOpenFixedEquivalence is the property the hourly analysis depends
// on: folding an open accumulator into a fixed span reproduces exactly
// what a fixed accumulator fed the same observations would hold.
func TestOpenFixedEquivalence(t *testing.T) {
	obs := []struct{ t, v float64 }{
		{5, 1}, {3601, 2}, {7300, 3}, {50000, 4}, {-2, 5}, {3599, 6},
	}
	open := NewOpenTimeBuckets(3600)
	fixed := NewTimeBuckets(7200, 3600)
	for _, o := range obs {
		open.Add(o.t, o.v)
		fixed.Add(o.t, o.v)
	}
	folded := open.Fixed(7200)
	if folded.Open() {
		t.Fatalf("Fixed returned an open accumulator")
	}
	if !reflect.DeepEqual(folded.Values(), fixed.Values()) {
		t.Fatalf("folded = %v, direct fixed = %v", folded.Values(), fixed.Values())
	}
}

func TestFoldBucketIntoEmptyFixed(t *testing.T) {
	// A bucketless fixed accumulator (zero value) must drop the fold,
	// not panic.
	b := &TimeBuckets{width: 3600}
	b.FoldBucket(3, 7)
	if b.NumBuckets() != 0 {
		t.Fatalf("empty fixed accumulator grew to %d buckets", b.NumBuckets())
	}
}

func TestOpenMerge(t *testing.T) {
	a := NewOpenTimeBuckets(3600)
	a.Add(10, 1)
	b := NewOpenTimeBuckets(3600)
	b.Add(7300, 2)
	a.Merge(b) // open accepts a longer open: grows
	if want := []float64{1, 0, 2}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("open merge = %v, want %v", a.Values(), want)
	}

	f := NewTimeBuckets(7200, 3600)
	f.Add(100, 5)
	a.Merge(f) // and a shorter fixed one
	if want := []float64{6, 0, 2}; !reflect.DeepEqual(a.Values(), want) {
		t.Fatalf("open+fixed merge = %v, want %v", a.Values(), want)
	}
}

func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("merging mismatched widths did not panic")
		}
	}()
	a := NewOpenTimeBuckets(3600)
	b := NewOpenTimeBuckets(1800)
	a.Merge(b)
}

func TestOpenClonePreservesForm(t *testing.T) {
	a := NewOpenTimeBuckets(3600)
	a.Add(10, 1)
	cp := a.Clone()
	if !cp.Open() {
		t.Fatalf("clone of an open accumulator is fixed")
	}
	cp.Add(7300, 2) // clone grows independently
	if a.NumBuckets() != 1 || cp.NumBuckets() != 3 {
		t.Fatalf("clone shares growth with original: %d vs %d buckets",
			a.NumBuckets(), cp.NumBuckets())
	}
}

func TestInvalidOpenWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("zero width did not panic")
		}
	}()
	NewOpenTimeBuckets(0)
}

func TestCDFSamplesRoundTrip(t *testing.T) {
	c := &CDF{}
	c.Add(3)
	c.Add(1)
	c.Add(2)
	cp := &CDF{}
	cp.AddSamples(c.Samples())
	cp.AddSamples(nil) // no-op
	if cp.N() != 3 {
		t.Fatalf("rebuilt CDF has %d samples, want 3", cp.N())
	}
	for _, p := range []float64{10, 50, 90} {
		if got, want := cp.Percentile(p), c.Percentile(p); got != want {
			t.Fatalf("p%v = %v after round trip, want %v", p, got, want)
		}
	}
	// Samples must reflect appends made after a previous call.
	c.Add(10)
	if got := len(c.Samples()); got != 4 {
		t.Fatalf("Samples sees %d samples after Add, want 4", got)
	}
}
