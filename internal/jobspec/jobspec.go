// Package jobspec names an analysis job completely — the -analysis
// kind plus every tuning option — in a form that crosses process and
// machine boundaries: the coordinator serializes a Spec as JSON into a
// dispatch assignment, and the remote worker rebuilds the exact same
// analyzer set from it. Keeping construction in one place is what
// keeps every execution mode (in-process, subprocess, remote worker)
// rendering byte-identical tables: they all run the same analyzers
// and the same render closure.
package jobspec

import (
	"context"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Spec is the complete, serializable description of one analysis job.
type Spec struct {
	// Kind is the analysis name: summary, runs, blocklife, hourly,
	// names, hierarchy, reorder.
	Kind string `json:"kind"`
	// Window is the reorder window in ms (runs).
	Window float64 `json:"window"`
	// Jump is the jump tolerance in blocks (runs).
	Jump int64 `json:"jump"`
	// Start is the blocklife phase-1 start in seconds.
	Start float64 `json:"start"`
	// Phase is the blocklife phase-1 length in seconds.
	Phase float64 `json:"phase"`
	// Margin is the blocklife end margin in seconds.
	Margin float64 `json:"margin"`
}

// Default returns the spec for kind with every option at the flag
// defaults nfsanalyze documents.
func Default(kind string) Spec {
	return Spec{Kind: kind, Window: 10, Jump: 10, Phase: workload.Day, Margin: workload.Day}
}

// Set is a Spec made concrete: the pipeline analyzers to run and how
// to render their results. Every mode — plain run, resumed run, merged
// states, coordinator, remote worker — renders through the same
// closure, which is what keeps their outputs byte-identical.
type Set struct {
	Spec      Spec
	Analyzers []pipeline.Analyzer
	Render    func(w io.Writer, stats pipeline.Stats, join core.JoinStats)
}

// Sequential reports whether any analyzer is order-dependent, meaning
// partial states only compose as a resume chain, never as an
// independent merge.
func (s *Set) Sequential() bool {
	for _, a := range s.Analyzers {
		if pipeline.IsSequential(a) {
			return true
		}
	}
	return false
}

// Build constructs the analyzer set and renderer for a spec.
func Build(spec Spec) (*Set, error) {
	set := &Set{Spec: spec}
	switch spec.Kind {
	case "summary":
		sum := &pipeline.SummaryAnalyzer{}
		set.Analyzers = []pipeline.Analyzer{sum}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			days := stats.Span() / workload.Day
			if days <= 0 {
				days = 1.0 / 24
			}
			sum.Result.Days = days
			fmt.Fprintln(w, sum.Result)
			fmt.Fprintf(w, "join: %d calls, %d replies, %d unmatched calls, %d orphan replies (loss est %.2f%%)\n",
				join.Calls, join.Replies, join.UnmatchedCalls, join.OrphanReplies, 100*join.LossEstimate())
		}
	case "runs":
		ra := &pipeline.RunsAnalyzer{Config: analysis.RunConfig{
			ReorderWindow: spec.Window / 1000, IdleGap: 30, JumpBlocks: spec.Jump}}
		set.Analyzers = []pipeline.Analyzer{ra}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			tab := ra.Table()
			fmt.Fprintf(w, "runs=%d window=%.0fms k=%d\n", tab.TotalRuns, spec.Window, spec.Jump)
			fmt.Fprintf(w, "reads  %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadPct, tab.Read[0], tab.Read[1], tab.Read[2])
			fmt.Fprintf(w, "writes %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.WritePct, tab.Write[0], tab.Write[1], tab.Write[2])
			fmt.Fprintf(w, "r-w    %5.1f%% of runs: entire %5.1f%% seq %5.1f%% random %5.1f%%\n",
				tab.ReadWritePct, tab.ReadWrite[0], tab.ReadWrite[1], tab.ReadWrite[2])
		}
	case "blocklife":
		bl := &pipeline.BlockLifeAnalyzer{Start: spec.Start, Phase: spec.Phase, Margin: spec.Margin}
		set.Analyzers = []pipeline.Analyzer{bl}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			res := bl.Result
			fmt.Fprintf(w, "births=%d (writes %.1f%%, extension %.1f%%)\n",
				res.Births, res.BirthPct(analysis.BirthWrite), res.BirthPct(analysis.BirthExtension))
			fmt.Fprintf(w, "deaths=%d (overwrite %.1f%%, truncate %.1f%%, delete %.1f%%)\n",
				res.Deaths, res.DeathPct(analysis.DeathOverwrite),
				res.DeathPct(analysis.DeathTruncate), res.DeathPct(analysis.DeathDelete))
			fmt.Fprintf(w, "end surplus %.1f%%; lifetime p50=%.1fs p90=%.1fs\n",
				res.EndSurplusPct(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
		}
	case "hierarchy":
		hier := &pipeline.HierarchyAnalyzer{Warmup: 600}
		set.Analyzers = []pipeline.Analyzer{hier}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			fmt.Fprintf(w, "hierarchy coverage after 10min warmup: %.2f%%\n", 100*hier.Coverage)
		}
	case "reorder":
		sweep := &pipeline.ReorderSweepAnalyzer{WindowsMS: []float64{0, 1, 2, 5, 10, 20, 50}}
		set.Analyzers = []pipeline.Analyzer{sweep}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			for _, p := range sweep.Result {
				fmt.Fprintf(w, "window %5.0fms: %.2f%% swapped\n", p.WindowMS, p.SwappedPct)
			}
		}
	case "hourly":
		// Open-ended hour buckets; the span (and so the bucket count) is
		// fixed only at render time, which lets the accumulation run
		// incrementally and serialize mid-stream.
		h := &pipeline.HourlyAnalyzer{}
		set.Analyzers = []pipeline.Analyzer{h}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			span := stats.Span()
			if span <= 0 {
				span = 3600
			}
			fixed := h.Result.FixedTo(span)
			for _, peak := range []bool{false, true} {
				label := "all hours"
				if peak {
					label = "peak hours"
				}
				fmt.Fprintf(w, "%s:\n", label)
				for _, row := range fixed.VarianceTable(peak) {
					fmt.Fprintf(w, "  %-20s mean=%12.0f stddev=%5.0f%%\n", row.Name, row.Mean, 100*row.RelStddev)
				}
			}
		}
	case "names":
		na := &pipeline.NamesAnalyzer{}
		set.Analyzers = []pipeline.Analyzer{na}
		set.Render = func(w io.Writer, stats pipeline.Stats, join core.JoinStats) {
			rep := na.ReportAt(stats.MaxT)
			for _, cs := range rep.PerCategory {
				if cs.Created == 0 {
					continue
				}
				fmt.Fprintf(w, "%-10s created=%6d deleted=%6d life_p50=%8.2fs size_p98=%10.0fB\n",
					cs.Category, cs.Created, cs.Deleted,
					cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98))
			}
			fmt.Fprintf(w, "locks %.1f%% of created-and-deleted; size prediction %.0f%%, lifetime prediction %.0f%%\n",
				100*rep.LockFracOfDeleted, 100*rep.SizeAccuracy, 100*rep.LifeAccuracy)
		}
	default:
		return nil, fmt.Errorf("unknown analysis %q", spec.Kind)
	}
	return set, nil
}

// RunFiles executes the worker side of one distributed assignment in
// this process: build the spec's analyzers, optionally resume from a
// parent partial state, stream the trace files through the joiner and
// pipeline, quiesce, and serialize the partial state. The returned
// bytes are a complete state file, checksummed and mergeable. The
// context is checked between operations so a coordinator-imposed
// deadline abandons the run promptly.
func RunFiles(ctx context.Context, spec Spec, paths []string, decoders int, parent *pipeline.Partial) ([]byte, error) {
	set, err := Build(spec)
	if err != nil {
		return nil, err
	}
	ts, err := pipeline.OpenTraceSet(paths, core.IngestConfig{Decoders: decoders})
	if err != nil {
		return nil, err
	}
	defer ts.Close()

	lv := pipeline.NewLive(pipeline.Config{Workers: 1}, set.Analyzers...)
	if parent != nil {
		if err := parent.Resume(lv); err != nil {
			lv.Abort()
			return nil, err
		}
	}
	j := pipeline.NewJoiner(ts)
	// An already-expired deadline aborts before any work; inside the
	// loop the check is amortized so small assignments stay cheap.
	select {
	case <-ctx.Done():
		lv.Abort()
		return nil, ctx.Err()
	default:
	}
	const cancelCheckEvery = 4096
	n := 0
	for {
		op, err := j.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			lv.Abort()
			return nil, err
		}
		lv.Feed(op)
		if n++; n%cancelCheckEvery == 0 {
			select {
			case <-ctx.Done():
				lv.Abort()
				return nil, ctx.Err()
			default:
			}
		}
	}
	join := j.Stats()
	if parent != nil {
		total := parent.Join
		total.Merge(join)
		join = total
	}
	stats := lv.Quiesce()
	if stats.Ops == 0 {
		return nil, fmt.Errorf("jobspec: no operations in assignment")
	}
	var buf writerBuffer
	if err := pipeline.WritePartial(&buf, lv, spec.Kind, join, parent); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// writerBuffer is a minimal io.Writer over an owned byte slice,
// avoiding a bytes.Buffer copy on the result path.
type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
