package jobspec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/pipeline"
)

var allKinds = []string{"summary", "runs", "blocklife", "hourly", "names", "hierarchy", "reorder"}

var seqKinds = map[string]bool{"blocklife": true, "hierarchy": true, "names": true}

func TestBuildEveryKind(t *testing.T) {
	for _, kind := range allKinds {
		set, err := Build(Default(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(set.Analyzers) == 0 || set.Render == nil {
			t.Fatalf("%s: incomplete set", kind)
		}
		if set.Sequential() != seqKinds[kind] {
			t.Fatalf("%s: Sequential() = %v, want %v", kind, set.Sequential(), seqKinds[kind])
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := Build(Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDefaultCarriesKind(t *testing.T) {
	s := Default("runs")
	if s.Kind != "runs" || s.Window != 10 || s.Jump != 10 {
		t.Fatalf("defaults: %+v", s)
	}
}

func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	scale := repro.SmallScale()
	scale.Days = 0.25
	records := repro.GenerateCampusRecords(scale)
	var buf bytes.Buffer
	if err := repro.WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "campus.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFilesProducesLoadableState runs each analysis through the
// worker-side entry point and checks the returned blob is a valid
// partial state carrying the right label and a parent link only when
// resumed.
func TestRunFilesProducesLoadableState(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir)
	for _, kind := range allKinds {
		blob, err := RunFiles(context.Background(), Default(kind), []string{path}, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		p, err := pipeline.ReadPartial(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: unreadable state: %v", kind, err)
		}
		if p.Label != kind {
			t.Fatalf("%s: state label %q", kind, p.Label)
		}
		if len(p.ParentDigest) != 0 {
			t.Fatalf("%s: unresumed state has a parent digest", kind)
		}
	}
}

// TestRunFilesResumeChains runs a chained analysis in two RunFiles
// calls and checks the child state records the parent's digest — the
// linkage MergePartials later validates.
func TestRunFilesResumeChains(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir)
	spec := Default("names")
	first, err := RunFiles(context.Background(), spec, []string{path}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := pipeline.ReadPartial(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunFiles(context.Background(), spec, []string{path}, 1, parent)
	if err != nil {
		t.Fatal(err)
	}
	child, err := pipeline.ReadPartial(bytes.NewReader(second))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(child.ParentDigest, parent.Digest) {
		t.Fatal("resumed state does not link to its parent")
	}
}

func TestRunFilesErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir)

	// Unknown kind surfaces from Build.
	if _, err := RunFiles(context.Background(), Spec{Kind: "nope"}, []string{path}, 1, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}

	// An empty trace has no operations to report.
	empty := filepath.Join(dir, "empty.trace")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFiles(context.Background(), Default("summary"), []string{empty}, 1, nil); err == nil {
		t.Fatal("empty assignment produced a state")
	}

	// Cancellation aborts mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFiles(ctx, Default("summary"), []string{path}, 1, nil); err == nil {
		t.Fatal("cancelled context did not abort")
	}
}
