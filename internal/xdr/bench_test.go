package xdr

import "testing"

func BenchmarkEncoderPrimitives(b *testing.B) {
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutUint32(uint32(i))
		e.PutUint64(uint64(i) << 20)
		e.PutBool(i&1 == 0)
		e.PutString("inbox.lock")
	}
}

func BenchmarkDecoderPrimitives(b *testing.B) {
	e := NewEncoder(64)
	e.PutUint32(7)
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutString("inbox.lock")
	buf := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		if _, err := d.Uint32(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Uint64(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Bool(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.String(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpaque8K(b *testing.B) {
	payload := make([]byte, 8192)
	e := NewEncoder(8200)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutOpaque(payload)
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil || len(got) != 8192 {
			b.Fatal("round trip failed")
		}
	}
}
