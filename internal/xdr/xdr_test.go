package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		e := NewEncoder(8)
		e.PutUint32(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint32()
		return err == nil && got == v && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(8)
		e.PutUint64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	for _, v := range []int32{0, -1, 1, -2147483648, 2147483647} {
		e := NewEncoder(4)
		e.PutInt32(v)
		got, err := NewDecoder(e.Bytes()).Int32()
		if err != nil || got != v {
			t.Errorf("round trip %d → %d, err=%v", v, got, err)
		}
	}
}

func TestBigEndianLayout(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("layout = %x, want 01020304", e.Bytes())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		data := bytes.Repeat([]byte{0xAB}, n)
		e := NewEncoder(16)
		e.PutOpaque(data)
		if e.Len()%4 != 0 {
			t.Errorf("len(%d): encoded length %d not a multiple of 4", n, e.Len())
		}
		want := 4 + n + (4-n%4)%4
		if e.Len() != want {
			t.Errorf("len(%d): encoded %d bytes, want %d", n, e.Len(), want)
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil {
			t.Fatalf("len(%d): decode: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("len(%d): got %x want %x", n, got, data)
		}
		if d.Remaining() != 0 {
			t.Errorf("len(%d): %d bytes left over", n, d.Remaining())
		}
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		e := NewEncoder(len(data) + 8)
		e.PutOpaque(data)
		got, err := NewDecoder(e.Bytes()).Opaque()
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(len(s) + 8)
		e.PutString(s)
		got, err := NewDecoder(e.Bytes()).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBool(t *testing.T) {
	e := NewEncoder(8)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	b1, err1 := d.Bool()
	b2, err2 := d.Bool()
	if err1 != nil || err2 != nil || !b1 || b2 {
		t.Fatalf("bool round trip: %v %v %v %v", b1, err1, b2, err2)
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 on short buffer: %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 8, 1, 2}) // claims 8 bytes, has 2
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Errorf("Opaque on short buffer: %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 1})
	if _, err := d.Uint64(); err != ErrShortBuffer {
		t.Errorf("Uint64 on short buffer: %v", err)
	}
}

func TestHostileLength(t *testing.T) {
	// A length field of 0xFFFFFFFF must not cause a huge allocation.
	d := NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	if _, err := d.Opaque(); err != ErrTooLong {
		t.Errorf("hostile length: err = %v, want ErrTooLong", err)
	}
	d = NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := d.Count(); err == nil {
		t.Error("hostile count accepted")
	}
}

func TestSkip(t *testing.T) {
	e := NewEncoder(16)
	e.PutOpaque([]byte("abcde")) // 4 + 5 + 3 pad
	e.PutUint32(7)
	d := NewDecoder(e.Bytes())
	n, err := d.Count()
	if err != nil || n != 5 {
		t.Fatalf("count: %d %v", n, err)
	}
	if err := d.Skip(n); err != nil {
		t.Fatalf("skip: %v", err)
	}
	v, err := d.Uint32()
	if err != nil || v != 7 {
		t.Fatalf("after skip: %d %v", v, err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
	e.PutUint32(2)
	v, _ := NewDecoder(e.Bytes()).Uint32()
	if v != 2 {
		t.Fatalf("after reset round trip = %d", v)
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder(16)
	e.PutFixedOpaque([]byte{1, 2, 3})
	if e.Len() != 4 {
		t.Fatalf("fixed opaque len = %d, want 4 (3+1 pad)", e.Len())
	}
	d := NewDecoder(e.Bytes())
	b, err := d.FixedOpaque(3)
	if err != nil || !bytes.Equal(b, []byte{1, 2, 3}) || d.Remaining() != 0 {
		t.Fatalf("fixed opaque round trip: %x %v rem=%d", b, err, d.Remaining())
	}
	if _, err := NewDecoder(nil).FixedOpaque(-1); err != ErrTooLong {
		t.Errorf("negative length: %v", err)
	}
}

func TestMixedSequence(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint32(0xdeadbeef)
	e.PutString("hello")
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutOpaque([]byte{9, 9})
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xdeadbeef {
		t.Fatal("u32")
	}
	if s, _ := d.String(); s != "hello" {
		t.Fatal("string")
	}
	if v, _ := d.Uint64(); v != 1<<40 {
		t.Fatal("u64")
	}
	if b, _ := d.Bool(); !b {
		t.Fatal("bool")
	}
	if o, _ := d.Opaque(); !bytes.Equal(o, []byte{9, 9}) {
		t.Fatal("opaque")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}
