// Package xdr implements the External Data Representation standard
// (RFC 4506) as used by ONC RPC and NFS: big-endian 32/64-bit integers,
// variable and fixed-length opaque data with 4-byte padding, strings,
// booleans, and counted arrays.
//
// The Encoder appends to an internal buffer; the Decoder consumes a byte
// slice without copying. Both are deliberately simple — NFS packet
// decoding is the hot path of the sniffer, and all decoding works on
// sub-slices of a single packet buffer.
package xdr

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs off the end of the input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// ErrTooLong is returned when a counted item exceeds the decoder's
// sanity limit, which guards against corrupt or hostile length fields.
var ErrTooLong = errors.New("xdr: item exceeds maximum length")

// MaxItemLen bounds any single variable-length item (opaque, string,
// array count). NFS payloads never legitimately exceed this.
const MaxItemLen = 1 << 24

func pad(n int) int { return (4 - n%4) % 4 }

// Encoder serializes values in XDR format. The zero value is ready for
// use; Bytes returns the accumulated buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice is owned by the encoder
// and invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder for reuse without releasing its buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 appends a big-endian 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt32 appends a big-endian 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 appends a big-endian 64-bit unsigned integer (XDR hyper).
func (e *Encoder) PutUint64(v uint64) {
	e.PutUint32(uint32(v >> 32))
	e.PutUint32(uint32(v))
}

// PutBool appends an XDR boolean (uint32 0 or 1).
func (e *Encoder) PutBool(b bool) {
	if b {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFixedOpaque appends fixed-length opaque data padded to 4 bytes.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := 0; i < pad(len(b)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque appends variable-length opaque data: a length word followed
// by the bytes padded to 4 bytes.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString appends an XDR string (same wire form as variable opaque).
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// Decoder consumes XDR data from a byte slice. Methods return
// ErrShortBuffer once the input is exhausted.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from b. The decoder aliases b;
// opaque and string results share its backing array.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining reports the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset reports the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes a big-endian 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += 4
	return v, nil
}

// Int32 decodes a big-endian 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a big-endian 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Bool decodes an XDR boolean. Any nonzero value is true, matching the
// liberal decoding used by real NFS implementations.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// FixedOpaque decodes n bytes of fixed-length opaque data plus padding.
// The returned slice aliases the decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > MaxItemLen {
		return nil, ErrTooLong
	}
	total := n + pad(n)
	if d.Remaining() < total {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n]
	d.off += total
	return b, nil
}

// Opaque decodes variable-length opaque data. The returned slice aliases
// the decoder's buffer.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxItemLen {
		return nil, ErrTooLong
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string as a Go string (copying the bytes).
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Skip advances past n bytes plus XDR padding.
func (d *Decoder) Skip(n int) error {
	total := n + pad(n)
	if d.Remaining() < total {
		return ErrShortBuffer
	}
	d.off += total
	return nil
}

// Count decodes an array count, validating it against MaxItemLen.
func (d *Decoder) Count() (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if n > MaxItemLen {
		return 0, fmt.Errorf("%w: count %d", ErrTooLong, n)
	}
	return int(n), nil
}
