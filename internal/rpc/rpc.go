// Package rpc implements the ONC RPC version 2 message layer (RFC 1831)
// that carries NFS: CALL and REPLY headers, transaction IDs, credential
// and verifier opaque-auth bodies, and the record-marking framing used
// over TCP.
//
// The sniffer decodes RPC headers to find NFS program calls and to match
// replies back to calls by xid; the workload generators encode them to
// synthesize wire traffic.
package rpc

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// Message type discriminants.
const (
	Call  = 0
	Reply = 1
)

// Reply status.
const (
	MsgAccepted = 0
	MsgDenied   = 1
)

// Accept status (within an accepted reply).
const (
	Success      = 0
	ProgUnavail  = 1
	ProgMismatch = 2
	ProcUnavail  = 3
	GarbageArgs  = 4
	SystemErr    = 5
)

// Auth flavors.
const (
	AuthNone = 0
	AuthSys  = 1 // AUTH_UNIX
)

// RPCVersion is the only ONC RPC version in use.
const RPCVersion = 2

// Well-known program numbers.
const (
	ProgramNFS   = 100003
	ProgramMount = 100005
)

// ErrNotRPC reports a packet that does not parse as an RPC message.
var ErrNotRPC = errors.New("rpc: not an RPC message")

// OpaqueAuth is a credential or verifier: a flavor and opaque body.
type OpaqueAuth struct {
	Flavor uint32
	Body   []byte
}

// AuthSysBody is the decoded form of an AUTH_SYS credential, which is
// where NFS requests carry the caller's UID and GID — the fields the
// anonymizer must rewrite.
type AuthSysBody struct {
	Stamp       uint32
	MachineName string
	UID         uint32
	GID         uint32
	GIDs        []uint32
}

// Encode serializes the AUTH_SYS body in XDR form.
func (a *AuthSysBody) Encode(e *xdr.Encoder) {
	e.PutUint32(a.Stamp)
	e.PutString(a.MachineName)
	e.PutUint32(a.UID)
	e.PutUint32(a.GID)
	e.PutUint32(uint32(len(a.GIDs)))
	for _, g := range a.GIDs {
		e.PutUint32(g)
	}
}

// DecodeAuthSys parses an AUTH_SYS credential body.
func DecodeAuthSys(body []byte) (*AuthSysBody, error) {
	d := xdr.NewDecoder(body)
	var a AuthSysBody
	var err error
	if a.Stamp, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.MachineName, err = d.String(); err != nil {
		return nil, err
	}
	if a.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	if n > 16 { // RFC 1831 limits auth_sys gids to 16
		return nil, fmt.Errorf("rpc: %d gids exceeds AUTH_SYS limit", n)
	}
	for i := 0; i < n; i++ {
		g, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		a.GIDs = append(a.GIDs, g)
	}
	return &a, nil
}

// CallHeader is a decoded RPC call header. Args holds the procedure
// arguments (undecoded), aliasing the packet buffer.
type CallHeader struct {
	XID     uint32
	Program uint32
	Version uint32
	Proc    uint32
	Cred    OpaqueAuth
	Verf    OpaqueAuth
	Args    []byte
}

// ReplyHeader is a decoded RPC reply header. Results holds the procedure
// results (undecoded) for accepted/success replies.
type ReplyHeader struct {
	XID        uint32
	ReplyStat  uint32 // MsgAccepted or MsgDenied
	AcceptStat uint32 // valid when ReplyStat == MsgAccepted
	Verf       OpaqueAuth
	Results    []byte
}

// EncodeCall serializes a call message: header followed by args.
func EncodeCall(e *xdr.Encoder, h *CallHeader) {
	e.PutUint32(h.XID)
	e.PutUint32(Call)
	e.PutUint32(RPCVersion)
	e.PutUint32(h.Program)
	e.PutUint32(h.Version)
	e.PutUint32(h.Proc)
	e.PutUint32(h.Cred.Flavor)
	e.PutOpaque(h.Cred.Body)
	e.PutUint32(h.Verf.Flavor)
	e.PutOpaque(h.Verf.Body)
	e.PutFixedOpaque(h.Args)
}

// EncodeReply serializes an accepted reply message: header followed by
// results.
func EncodeReply(e *xdr.Encoder, h *ReplyHeader) {
	e.PutUint32(h.XID)
	e.PutUint32(Reply)
	e.PutUint32(h.ReplyStat)
	if h.ReplyStat == MsgAccepted {
		e.PutUint32(h.Verf.Flavor)
		e.PutOpaque(h.Verf.Body)
		e.PutUint32(h.AcceptStat)
		if h.AcceptStat == Success {
			e.PutFixedOpaque(h.Results)
		}
	} else {
		// Denied: rejected_reply with RPC_MISMATCH low/high. We encode
		// AUTH_ERROR(1) with a zero auth_stat, the common denial.
		e.PutUint32(1)
		e.PutUint32(0)
	}
}

// Decoded is the result of decoding one RPC message of either direction.
type Decoded struct {
	Type  uint32 // Call or Reply
	Call  *CallHeader
	Reply *ReplyHeader
}

// Decode parses one RPC message from a datagram or reassembled record.
func Decode(b []byte) (*Decoded, error) {
	d := xdr.NewDecoder(b)
	xid, err := d.Uint32()
	if err != nil {
		return nil, ErrNotRPC
	}
	mtype, err := d.Uint32()
	if err != nil {
		return nil, ErrNotRPC
	}
	switch mtype {
	case Call:
		return decodeCall(d, xid, b)
	case Reply:
		return decodeReply(d, xid, b)
	default:
		return nil, fmt.Errorf("%w: message type %d", ErrNotRPC, mtype)
	}
}

func decodeCall(d *xdr.Decoder, xid uint32, b []byte) (*Decoded, error) {
	h := &CallHeader{XID: xid}
	vers, err := d.Uint32()
	if err != nil {
		return nil, ErrNotRPC
	}
	if vers != RPCVersion {
		return nil, fmt.Errorf("%w: rpc version %d", ErrNotRPC, vers)
	}
	if h.Program, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Version, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Proc, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Cred.Flavor, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Cred.Body, err = d.Opaque(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Verf.Flavor, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.Verf.Body, err = d.Opaque(); err != nil {
		return nil, ErrNotRPC
	}
	h.Args = b[d.Offset():]
	return &Decoded{Type: Call, Call: h}, nil
}

func decodeReply(d *xdr.Decoder, xid uint32, b []byte) (*Decoded, error) {
	h := &ReplyHeader{XID: xid}
	var err error
	if h.ReplyStat, err = d.Uint32(); err != nil {
		return nil, ErrNotRPC
	}
	if h.ReplyStat == MsgAccepted {
		if h.Verf.Flavor, err = d.Uint32(); err != nil {
			return nil, ErrNotRPC
		}
		if h.Verf.Body, err = d.Opaque(); err != nil {
			return nil, ErrNotRPC
		}
		if h.AcceptStat, err = d.Uint32(); err != nil {
			return nil, ErrNotRPC
		}
		if h.AcceptStat == Success {
			h.Results = b[d.Offset():]
		}
	}
	return &Decoded{Type: Reply, Reply: h}, nil
}

// Record marking (RFC 1831 §10): each RPC message sent over TCP is
// prefixed with a 4-byte header whose top bit marks the final fragment
// and whose low 31 bits give the fragment length.

// MarkRecord frames msg as a single final record-marked fragment.
func MarkRecord(msg []byte) []byte {
	out := make([]byte, 4+len(msg))
	n := uint32(len(msg)) | 0x80000000
	out[0] = byte(n >> 24)
	out[1] = byte(n >> 16)
	out[2] = byte(n >> 8)
	out[3] = byte(n)
	copy(out[4:], msg)
	return out
}

// MarkRecordFragmented frames msg as multiple record-marking fragments of
// at most fragSize bytes each, exercising the reassembly path.
func MarkRecordFragmented(msg []byte, fragSize int) []byte {
	if fragSize <= 0 {
		fragSize = len(msg)
	}
	var out []byte
	for off := 0; ; off += fragSize {
		end := off + fragSize
		last := false
		if end >= len(msg) {
			end = len(msg)
			last = true
		}
		n := uint32(end - off)
		if last {
			n |= 0x80000000
		}
		out = append(out, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		out = append(out, msg[off:end]...)
		if last {
			return out
		}
	}
}

// RecordScanner incrementally extracts record-marked RPC messages from a
// reassembled TCP byte stream. Feed it stream bytes in order with Append;
// Next returns complete messages as they become available.
type RecordScanner struct {
	buf  []byte
	frag []byte // accumulated fragments of the current record
}

// Append adds stream bytes to the scanner.
func (s *RecordScanner) Append(b []byte) {
	s.buf = append(s.buf, b...)
}

// Pending reports the number of buffered, unconsumed stream bytes.
func (s *RecordScanner) Pending() int { return len(s.buf) }

// Next returns the next complete RPC message, or nil if more stream
// bytes are needed. It returns an error if a fragment header is invalid.
func (s *RecordScanner) Next() ([]byte, error) {
	for {
		if len(s.buf) < 4 {
			return nil, nil
		}
		hdr := uint32(s.buf[0])<<24 | uint32(s.buf[1])<<16 | uint32(s.buf[2])<<8 | uint32(s.buf[3])
		last := hdr&0x80000000 != 0
		n := int(hdr & 0x7FFFFFFF)
		if n > xdr.MaxItemLen {
			return nil, fmt.Errorf("rpc: record fragment of %d bytes exceeds limit", n)
		}
		if len(s.buf) < 4+n {
			return nil, nil
		}
		s.frag = append(s.frag, s.buf[4:4+n]...)
		s.buf = s.buf[4+n:]
		if last {
			msg := s.frag
			s.frag = nil
			return msg, nil
		}
	}
}
