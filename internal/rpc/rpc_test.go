package rpc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/xdr"
)

func sampleAuthSys() *AuthSysBody {
	return &AuthSysBody{
		Stamp:       12345,
		MachineName: "client01",
		UID:         501,
		GID:         100,
		GIDs:        []uint32{100, 200},
	}
}

func TestAuthSysRoundTrip(t *testing.T) {
	a := sampleAuthSys()
	e := xdr.NewEncoder(64)
	a.Encode(e)
	got, err := DecodeAuthSys(e.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Stamp != a.Stamp || got.MachineName != a.MachineName ||
		got.UID != a.UID || got.GID != a.GID || len(got.GIDs) != 2 ||
		got.GIDs[0] != 100 || got.GIDs[1] != 200 {
		t.Fatalf("got %+v, want %+v", got, a)
	}
}

func TestAuthSysTooManyGIDs(t *testing.T) {
	e := xdr.NewEncoder(256)
	e.PutUint32(1)
	e.PutString("m")
	e.PutUint32(0)
	e.PutUint32(0)
	e.PutUint32(17) // over the RFC limit of 16
	for i := 0; i < 17; i++ {
		e.PutUint32(uint32(i))
	}
	if _, err := DecodeAuthSys(e.Bytes()); err == nil {
		t.Fatal("accepted 17 gids")
	}
}

func encodedCall(t *testing.T) ([]byte, *CallHeader) {
	t.Helper()
	cred := xdr.NewEncoder(64)
	sampleAuthSys().Encode(cred)
	h := &CallHeader{
		XID:     0xCAFEBABE,
		Program: ProgramNFS,
		Version: 3,
		Proc:    6, // READ
		Cred:    OpaqueAuth{Flavor: AuthSys, Body: cred.Bytes()},
		Verf:    OpaqueAuth{Flavor: AuthNone},
		Args:    []byte{0, 0, 0, 4, 1, 2, 3, 4},
	}
	e := xdr.NewEncoder(128)
	EncodeCall(e, h)
	return e.Bytes(), h
}

func TestCallRoundTrip(t *testing.T) {
	wire, h := encodedCall(t)
	dec, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Type != Call || dec.Call == nil {
		t.Fatalf("decoded type %d", dec.Type)
	}
	c := dec.Call
	if c.XID != h.XID || c.Program != h.Program || c.Version != h.Version || c.Proc != h.Proc {
		t.Fatalf("header mismatch: %+v", c)
	}
	if c.Cred.Flavor != AuthSys {
		t.Fatalf("cred flavor %d", c.Cred.Flavor)
	}
	if !bytes.Equal(c.Args, h.Args) {
		t.Fatalf("args %x want %x", c.Args, h.Args)
	}
	a, err := DecodeAuthSys(c.Cred.Body)
	if err != nil || a.UID != 501 {
		t.Fatalf("auth body: %+v %v", a, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	h := &ReplyHeader{
		XID:        7,
		ReplyStat:  MsgAccepted,
		AcceptStat: Success,
		Results:    []byte{0, 0, 0, 0, 9, 9, 9, 9},
	}
	e := xdr.NewEncoder(64)
	EncodeReply(e, h)
	dec, err := Decode(e.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Type != Reply || dec.Reply == nil {
		t.Fatal("not a reply")
	}
	r := dec.Reply
	if r.XID != 7 || r.ReplyStat != MsgAccepted || r.AcceptStat != Success {
		t.Fatalf("header: %+v", r)
	}
	if !bytes.Equal(r.Results, h.Results) {
		t.Fatalf("results %x", r.Results)
	}
}

func TestReplyDenied(t *testing.T) {
	h := &ReplyHeader{XID: 9, ReplyStat: MsgDenied}
	e := xdr.NewEncoder(32)
	EncodeReply(e, h)
	dec, err := Decode(e.Bytes())
	if err != nil {
		t.Fatalf("decode denied: %v", err)
	}
	if dec.Reply.ReplyStat != MsgDenied {
		t.Fatalf("stat %d", dec.Reply.ReplyStat)
	}
}

func TestReplyNonSuccessAccept(t *testing.T) {
	h := &ReplyHeader{XID: 10, ReplyStat: MsgAccepted, AcceptStat: ProcUnavail}
	e := xdr.NewEncoder(32)
	EncodeReply(e, h)
	dec, err := Decode(e.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Reply.AcceptStat != ProcUnavail {
		t.Fatalf("accept stat %d", dec.Reply.AcceptStat)
	}
	if dec.Reply.Results != nil {
		t.Fatal("results should be nil for non-success")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("short garbage accepted")
	}
	// Wrong message type.
	e := xdr.NewEncoder(16)
	e.PutUint32(1)
	e.PutUint32(99)
	if _, err := Decode(e.Bytes()); err == nil {
		t.Error("bad mtype accepted")
	}
	// Wrong RPC version in call.
	e = xdr.NewEncoder(32)
	e.PutUint32(1)
	e.PutUint32(Call)
	e.PutUint32(3) // not version 2
	e.PutUint32(ProgramNFS)
	e.PutUint32(3)
	e.PutUint32(0)
	if _, err := Decode(e.Bytes()); err == nil {
		t.Error("bad rpc version accepted")
	}
}

func TestMarkRecordSingle(t *testing.T) {
	msg := []byte("hello rpc")
	framed := MarkRecord(msg)
	var s RecordScanner
	s.Append(framed)
	got, err := s.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if more, _ := s.Next(); more != nil {
		t.Fatal("spurious extra record")
	}
}

func TestMarkRecordFragmented(t *testing.T) {
	msg := bytes.Repeat([]byte{0x5A}, 1000)
	framed := MarkRecordFragmented(msg, 300)
	var s RecordScanner
	// Feed one byte at a time to exercise partial-header handling.
	for _, b := range framed {
		s.Append([]byte{b})
	}
	got, err := s.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(msg))
	}
}

func TestRecordScannerMultipleMessages(t *testing.T) {
	var streamBytes []byte
	msgs := [][]byte{[]byte("one"), []byte("twotwo"), []byte("three33three")}
	for _, m := range msgs {
		streamBytes = append(streamBytes, MarkRecord(m)...)
	}
	var s RecordScanner
	s.Append(streamBytes)
	for i, want := range msgs {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d: got %q want %q", i, got, want)
		}
	}
	if got, _ := s.Next(); got != nil {
		t.Fatal("extra message")
	}
}

func TestRecordScannerHostileLength(t *testing.T) {
	var s RecordScanner
	s.Append([]byte{0x7F, 0xFF, 0xFF, 0xFF}) // 2GB non-final fragment
	if _, err := s.Next(); err == nil {
		t.Fatal("hostile fragment length accepted")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(msg []byte, frag uint8) bool {
		fragSize := int(frag)%64 + 1
		framed := MarkRecordFragmented(msg, fragSize)
		var s RecordScanner
		s.Append(framed)
		got, err := s.Next()
		if err != nil {
			return false
		}
		if len(msg) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCallReplyXIDMatch(t *testing.T) {
	f := func(xid uint32) bool {
		e := xdr.NewEncoder(64)
		EncodeCall(e, &CallHeader{XID: xid, Program: ProgramNFS, Version: 3, Proc: 1,
			Cred: OpaqueAuth{Flavor: AuthNone}, Verf: OpaqueAuth{Flavor: AuthNone}})
		dc, err := Decode(e.Bytes())
		if err != nil || dc.Call.XID != xid {
			return false
		}
		e2 := xdr.NewEncoder(64)
		EncodeReply(e2, &ReplyHeader{XID: xid, ReplyStat: MsgAccepted, AcceptStat: Success})
		dr, err := Decode(e2.Bytes())
		return err == nil && dr.Reply.XID == xid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
