package tcpasm

import (
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// BenchmarkInOrderStream measures the fast path: contiguous segments.
func BenchmarkInOrderStream(b *testing.B) {
	payload := make([]byte, 1448)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	s := NewStream()
	s.Add(&wire.Frame{Flags: wire.FlagSYN, Seq: 0})
	seq := uint32(1)
	f := &wire.Frame{Payload: payload}
	for i := 0; i < b.N; i++ {
		f.Seq = seq
		if out := s.Add(f); len(out) != len(payload) {
			b.Fatal("lost data")
		}
		seq += uint32(len(payload))
	}
}

// BenchmarkReorderedStream measures reassembly with 10% adjacent swaps.
func BenchmarkReorderedStream(b *testing.B) {
	payload := make([]byte, 1448)
	rng := rand.New(rand.NewSource(1))
	const window = 64
	seqs := make([]uint32, window)
	for i := range seqs {
		seqs[i] = 1 + uint32(i*len(payload))
	}
	for i := 0; i < len(seqs)-1; i++ {
		if rng.Float64() < 0.10 {
			seqs[i], seqs[i+1] = seqs[i+1], seqs[i]
		}
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var s *Stream
	f := &wire.Frame{Payload: payload}
	for i := 0; i < b.N; i++ {
		if i%window == 0 {
			s = NewStream()
			s.Add(&wire.Frame{Flags: wire.FlagSYN, Seq: 0})
		}
		f.Seq = seqs[i%window]
		s.Add(f)
	}
}
