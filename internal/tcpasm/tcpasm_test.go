package tcpasm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

func seg(seq uint32, payload []byte, flags uint8) *wire.Frame {
	return &wire.Frame{
		SrcIP: wire.IP{10, 0, 0, 5}, DstIP: wire.IP{10, 0, 0, 1},
		Proto: wire.ProtoTCP, SrcPort: 900, DstPort: 2049,
		Seq: seq, Flags: flags, Payload: payload,
	}
}

func TestInOrderStream(t *testing.T) {
	s := NewStream()
	if out := s.Add(seg(100, nil, wire.FlagSYN)); out != nil {
		t.Fatal("SYN produced data")
	}
	var got []byte
	got = append(got, s.Add(seg(101, []byte("hello "), wire.FlagACK))...)
	got = append(got, s.Add(seg(107, []byte("world"), wire.FlagACK))...)
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	if s.Emitted() != 11 || s.Gaps() != 0 {
		t.Fatalf("emitted=%d gaps=%d", s.Emitted(), s.Gaps())
	}
}

func TestOutOfOrderStream(t *testing.T) {
	s := NewStream()
	s.Add(seg(0, nil, wire.FlagSYN))
	if out := s.Add(seg(7, []byte("world"), 0)); out != nil {
		t.Fatalf("out-of-order segment emitted %q", out)
	}
	if s.PendingOOO() != 1 {
		t.Fatalf("pending = %d", s.PendingOOO())
	}
	out := s.Add(seg(1, []byte("hello "), 0))
	if string(out) != "hello world" {
		t.Fatalf("got %q", out)
	}
	if s.PendingOOO() != 0 {
		t.Fatal("ooo buffer leaked")
	}
}

func TestRetransmissionIgnored(t *testing.T) {
	s := NewStream()
	s.Add(seg(0, nil, wire.FlagSYN))
	s.Add(seg(1, []byte("abcd"), 0))
	if out := s.Add(seg(1, []byte("abcd"), 0)); out != nil {
		t.Fatalf("retransmission emitted %q", out)
	}
	// Partial overlap: seq 3 retransmits "cd" plus new "ef".
	out := s.Add(seg(3, []byte("cdef"), 0))
	if string(out) != "ef" {
		t.Fatalf("partial overlap emitted %q", out)
	}
}

func TestMidStreamSync(t *testing.T) {
	// Capture started after the connection: first data segment sets the
	// sequence base.
	s := NewStream()
	out := s.Add(seg(5000, []byte("data"), wire.FlagACK))
	if string(out) != "data" {
		t.Fatalf("got %q", out)
	}
}

func TestSequenceWraparound(t *testing.T) {
	s := NewStream()
	base := uint32(0xFFFFFFF0)
	s.Add(seg(base, nil, wire.FlagSYN))
	out1 := s.Add(seg(base+1, bytes.Repeat([]byte{1}, 20), 0)) // crosses wrap
	out2 := s.Add(seg(base+21, []byte{2, 2}, 0))
	if len(out1) != 20 || len(out2) != 2 {
		t.Fatalf("wraparound: %d %d", len(out1), len(out2))
	}
}

func TestRandomizedReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Build a reference stream of 200 segments.
	var ref []byte
	type chunk struct {
		seq  uint32
		data []byte
	}
	var chunks []chunk
	seq := uint32(1)
	for i := 0; i < 200; i++ {
		n := rng.Intn(100) + 1
		data := make([]byte, n)
		rng.Read(data)
		chunks = append(chunks, chunk{seq: seq, data: data})
		ref = append(ref, data...)
		seq += uint32(n)
	}
	// Shuffle within a window of 8 to mimic mild reordering.
	for i := range chunks {
		j := i + rng.Intn(8)
		if j < len(chunks) {
			chunks[i], chunks[j] = chunks[j], chunks[i]
		}
	}
	s := NewStream()
	s.Add(seg(0, nil, wire.FlagSYN))
	var got []byte
	for _, c := range chunks {
		got = append(got, s.Add(seg(c.seq, c.data, 0))...)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("reassembly mismatch: %d vs %d bytes", len(got), len(ref))
	}
}

func TestSkipGaps(t *testing.T) {
	s := NewStream()
	s.Add(seg(0, nil, wire.FlagSYN))
	s.Add(seg(1, []byte("aa"), 0))
	// Lose seq 3..4, receive 5.. as OOO.
	if out := s.Add(seg(5, []byte("bb"), 0)); out != nil {
		t.Fatal("hole emitted")
	}
	out := s.SkipGaps()
	if string(out) != "bb" {
		t.Fatalf("skip emitted %q", out)
	}
	if s.Gaps() != 1 {
		t.Fatalf("gaps = %d", s.Gaps())
	}
	// Stream continues after the skip.
	if got := s.Add(seg(7, []byte("cc"), 0)); string(got) != "cc" {
		t.Fatalf("post-skip got %q", got)
	}
}

func TestAssemblerRoutesFlows(t *testing.T) {
	a := NewAssembler()
	f1 := seg(1, []byte("x"), 0)
	f2 := seg(1, []byte("y"), 0)
	f2.SrcPort = 901 // different flow
	out1, s1 := a.Add(f1)
	out2, s2 := a.Add(f2)
	if s1 == s2 {
		t.Fatal("flows shared a stream")
	}
	if string(out1) != "x" || string(out2) != "y" {
		t.Fatalf("outputs %q %q", out1, out2)
	}
	if a.Flows() != 2 {
		t.Fatalf("flows = %d", a.Flows())
	}
	if a.Stream(f1.Flow()) != s1 {
		t.Fatal("stream lookup failed")
	}
}
