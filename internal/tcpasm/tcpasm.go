// Package tcpasm reassembles unidirectional TCP byte streams from
// decoded segments, tolerating out-of-order arrival, retransmission, and
// the segment coalescing the paper's tracing software had to handle
// (multiple RPC messages, or partial messages, per TCP segment).
//
// The output of a Stream is the in-order byte stream, which the caller
// feeds to an rpc.RecordScanner to recover message boundaries.
package tcpasm

import (
	"sort"

	"repro/internal/wire"
)

// Stream reassembles one direction of one TCP connection.
type Stream struct {
	established bool
	nextSeq     uint32
	// ooo holds out-of-order segments keyed by sequence number.
	ooo map[uint32][]byte
	// emitted is the total number of in-order bytes produced.
	emitted int64
	// gaps counts the times a hole was skipped (data lost upstream).
	gaps int
}

// NewStream returns an empty reassembler for one flow direction.
func NewStream() *Stream {
	return &Stream{ooo: make(map[uint32][]byte)}
}

// Emitted reports the number of in-order payload bytes produced so far.
func (s *Stream) Emitted() int64 { return s.emitted }

// Gaps reports how many sequence holes were skipped over.
func (s *Stream) Gaps() int { return s.gaps }

// PendingOOO reports buffered out-of-order segments awaiting a hole fill.
func (s *Stream) PendingOOO() int { return len(s.ooo) }

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// Add processes one TCP segment and returns any newly contiguous stream
// bytes (possibly nil). SYN segments establish the initial sequence
// number; data before establishment is accepted by trusting the first
// seen segment's sequence.
func (s *Stream) Add(f *wire.Frame) []byte {
	if f.Flags&wire.FlagSYN != 0 {
		s.established = true
		s.nextSeq = f.Seq + 1 // SYN consumes one sequence number
		return nil
	}
	if len(f.Payload) == 0 {
		return nil
	}
	if !s.established {
		// Mid-stream capture: sync to the first data segment.
		s.established = true
		s.nextSeq = f.Seq
	}
	seg := f.Payload
	seq := f.Seq

	// Drop or trim data we already emitted (retransmission overlap).
	if seqLess(seq, s.nextSeq) {
		overlap := s.nextSeq - seq
		if uint32(len(seg)) <= overlap {
			return nil // full retransmission
		}
		seg = seg[overlap:]
		seq = s.nextSeq
	}

	if seq != s.nextSeq {
		// Out of order: buffer a copy (the frame buffer may be reused).
		cp := make([]byte, len(seg))
		copy(cp, seg)
		if old, ok := s.ooo[seq]; !ok || len(cp) > len(old) {
			s.ooo[seq] = cp
		}
		return nil
	}

	out := make([]byte, 0, len(seg))
	out = append(out, seg...)
	s.nextSeq = seq + uint32(len(seg))
	// Drain any buffered segments that are now contiguous.
	for {
		next, ok := s.takeAt(s.nextSeq)
		if !ok {
			break
		}
		out = append(out, next...)
		s.nextSeq += uint32(len(next))
	}
	s.emitted += int64(len(out))
	return out
}

// takeAt removes and returns a buffered segment starting at or
// overlapping seq.
func (s *Stream) takeAt(seq uint32) ([]byte, bool) {
	if seg, ok := s.ooo[seq]; ok {
		delete(s.ooo, seq)
		return seg, true
	}
	// Check for overlapping older segments that extend past seq.
	for start, seg := range s.ooo {
		end := start + uint32(len(seg))
		if seqLess(start, seq) && seqLess(seq, end) {
			delete(s.ooo, start)
			return seg[seq-start:], true
		}
	}
	return nil, false
}

// SkipGaps force-flushes buffered out-of-order data by jumping over the
// missing bytes, used when the capture is known lossy (the CAMPUS mirror
// port dropped packets under load; §4.1.4 of the paper). Returns the
// flushed bytes in sequence order. Message framing across the hole is
// lost; the RPC scanner downstream resynchronizes at the next record
// boundary only by luck, so callers reset the scanner instead.
func (s *Stream) SkipGaps() []byte {
	if len(s.ooo) == 0 {
		return nil
	}
	starts := make([]uint32, 0, len(s.ooo))
	for st := range s.ooo {
		starts = append(starts, st)
	}
	sort.Slice(starts, func(i, j int) bool { return seqLess(starts[i], starts[j]) })
	var out []byte
	for _, st := range starts {
		seg := s.ooo[st]
		delete(s.ooo, st)
		if seqLess(st, s.nextSeq) {
			overlap := s.nextSeq - st
			if uint32(len(seg)) <= overlap {
				continue
			}
			seg = seg[overlap:]
			st = s.nextSeq
		}
		if st != s.nextSeq {
			s.gaps++
		}
		out = append(out, seg...)
		s.nextSeq = st + uint32(len(seg))
	}
	s.emitted += int64(len(out))
	return out
}

// Assembler tracks all flows in a capture, routing each segment to its
// per-direction Stream.
type Assembler struct {
	streams map[wire.FlowKey]*Stream
}

// NewAssembler returns an empty flow table.
func NewAssembler() *Assembler {
	return &Assembler{streams: make(map[wire.FlowKey]*Stream)}
}

// Add routes the segment and returns newly contiguous bytes plus the
// stream they belong to.
func (a *Assembler) Add(f *wire.Frame) ([]byte, *Stream) {
	key := f.Flow()
	st := a.streams[key]
	if st == nil {
		st = NewStream()
		a.streams[key] = st
	}
	return st.Add(f), st
}

// Flows reports the number of tracked flow directions.
func (a *Assembler) Flows() int { return len(a.streams) }

// Stream returns the stream for a flow key, or nil.
func (a *Assembler) Stream(key wire.FlowKey) *Stream { return a.streams[key] }
