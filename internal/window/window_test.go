package window

import (
	"testing"

	"repro/internal/core"
)

func wop(t float64, proc core.ProcID, bytes uint32) *core.Op {
	return &core.Op{T: t, Proc: proc, Replied: true, RCount: bytes, Count: bytes, FH: 1}
}

func readOp(t float64) *core.Op  { return wop(t, core.ProcRead, 8192) }
func writeOp(t float64) *core.Op { return wop(t, core.ProcWrite, 4096) }

func TestRingTumbling(t *testing.T) {
	r := NewRing(10, 4)
	// Two windows: [10,20) and [20,30).
	r.Add(readOp(12))
	r.Add(writeOp(15))
	r.Add(readOp(23))

	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Start != 10 || cells[1].Start != 20 {
		t.Fatalf("cell starts = %v, %v; want 10, 20", cells[0].Start, cells[1].Start)
	}
	if cells[0].Ops != 2 || cells[1].Ops != 1 {
		t.Fatalf("cell ops = %d, %d; want 2, 1", cells[0].Ops, cells[1].Ops)
	}
	if cells[0].Sum.ReadOps != 1 || cells[0].Sum.WriteOps != 1 {
		t.Fatalf("window 1 mix = %d reads %d writes", cells[0].Sum.ReadOps, cells[0].Sum.WriteOps)
	}
}

func TestRingWindowAnchoring(t *testing.T) {
	// Windows anchor at multiples of the width, not at the first op.
	r := NewRing(60, 4)
	r.Add(readOp(119)) // window [60,120)
	r.Add(readOp(121)) // window [120,180)
	cells := r.Cells()
	if len(cells) != 2 || cells[0].Start != 60 || cells[1].Start != 120 {
		t.Fatalf("cells = %+v; want starts 60 and 120", cells)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(10, 2)
	r.Add(readOp(5))  // [0,10)
	r.Add(readOp(15)) // [10,20)
	r.Add(readOp(25)) // [20,30) — evicts [0,10)
	cells := r.Cells()
	if len(cells) != 2 || cells[0].Start != 10 || cells[1].Start != 20 {
		t.Fatalf("cells = %+v; want starts 10 and 20", cells)
	}
	// A straggler for the evicted window is dropped and counted.
	r.Add(readOp(7))
	if r.Late() != 1 {
		t.Fatalf("Late() = %d, want 1", r.Late())
	}
	// A straggler within retention still lands.
	r.Add(writeOp(14))
	cells = r.Cells()
	if cells[0].Sum.WriteOps != 1 {
		t.Fatalf("retained straggler missing: %+v", cells[0].Sum)
	}
}

func TestRingSkipsEmptyWindows(t *testing.T) {
	r := NewRing(10, 8)
	r.Add(readOp(5))
	r.Add(readOp(75)) // skips six windows
	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (empty windows omitted)", len(cells))
	}
	if cells[0].Start != 0 || cells[1].Start != 70 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestRingSliding(t *testing.T) {
	r := NewRing(10, 4)
	for i := 0; i < 4; i++ {
		r.Add(readOp(float64(i*10) + 5))
		r.Add(writeOp(float64(i*10) + 6))
	}
	// Last 2 windows: 2 reads, 2 writes.
	s := r.Sliding(2)
	if s.ReadOps != 2 || s.WriteOps != 2 {
		t.Fatalf("sliding(2) = %d reads %d writes; want 2/2", s.ReadOps, s.WriteOps)
	}
	all := r.Sliding(99) // clamped to keep
	if all.TotalOps != 8 {
		t.Fatalf("sliding(all) total = %d, want 8", all.TotalOps)
	}
}

func TestRingLagBounded(t *testing.T) {
	r := NewRing(10, 4)
	if r.Lag() != 0 {
		t.Fatalf("empty ring lag = %v", r.Lag())
	}
	for _, tm := range []float64{3, 9.5, 10.2, 17, 29.9, 30, 41} {
		r.Add(readOp(tm))
		if lag := r.Lag(); lag < 0 || lag >= r.Width() {
			t.Fatalf("lag %v out of [0, width) after op at t=%v", lag, tm)
		}
	}
	if r.Lag() != 1 {
		t.Fatalf("lag = %v, want 1 (last op 41, window start 40)", r.Lag())
	}
}

func TestRingCellsAreIndependent(t *testing.T) {
	r := NewRing(10, 4)
	r.Add(readOp(5))
	cells := r.Cells()
	r.Add(readOp(6))
	if cells[0].Sum.TotalOps != 1 {
		t.Fatalf("served cell mutated by later Add: %d ops", cells[0].Sum.TotalOps)
	}
}

func TestRingInvalidGeometryPanics(t *testing.T) {
	for _, tc := range []struct {
		width float64
		keep  int
	}{{0, 4}, {-1, 4}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%v, %d) did not panic", tc.width, tc.keep)
				}
			}()
			NewRing(tc.width, tc.keep)
		}()
	}
}

func TestRingAccessors(t *testing.T) {
	r := NewRing(10, 4)
	if r.Width() != 10 || r.Keep() != 4 {
		t.Fatalf("geometry = %v/%d", r.Width(), r.Keep())
	}
	if r.LastT() != 0 || r.CurrentStart() != 0 {
		t.Fatal("empty ring reports progress")
	}
	r.Add(readOp(25))
	if r.LastT() != 25 || r.CurrentStart() != 20 {
		t.Fatalf("lastT=%v start=%v, want 25/20", r.LastT(), r.CurrentStart())
	}
	// An op that is late but retained must not move LastT backwards.
	r.Add(readOp(15))
	if r.LastT() != 25 {
		t.Fatalf("late op moved LastT to %v", r.LastT())
	}
}

func TestRingLateDrops(t *testing.T) {
	r := NewRing(10, 2) // retains windows cur-1 and cur
	r.Add(readOp(55))   // window 5
	r.Add(readOp(42))   // window 4: late but retained
	if r.Late() != 0 {
		t.Fatalf("retained op counted late: %d", r.Late())
	}
	r.Add(readOp(31)) // window 3: older than the horizon, dropped
	if r.Late() != 1 {
		t.Fatalf("late = %d, want 1", r.Late())
	}
	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Start != 40 || cells[1].Start != 50 {
		t.Fatalf("cell starts = %v, %v", cells[0].Start, cells[1].Start)
	}
	if s := r.Sliding(2); s.TotalOps != 2 {
		t.Fatalf("sliding total = %d, want 2 (dropped op excluded)", s.TotalOps)
	}
}

func TestRingLateCellAnchorsOnDemand(t *testing.T) {
	// The first op lands in window 5; an op for retained-but-never-
	// initialized window 4 must anchor that cell on the fly.
	r := NewRing(10, 4)
	r.Add(readOp(55))
	r.Add(readOp(44))
	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Start != 40 || cells[0].Ops != 1 {
		t.Fatalf("on-demand cell = start %v ops %d", cells[0].Start, cells[0].Ops)
	}
}

func TestRingSlidingClampsLow(t *testing.T) {
	r := NewRing(10, 4)
	r.Add(readOp(5))
	r.Add(readOp(15))
	if s := r.Sliding(0); s.TotalOps != 1 {
		t.Fatalf("sliding(0) total = %d, want 1 (clamped to newest window)", s.TotalOps)
	}
	if s := r.Sliding(-3); s.TotalOps != 1 {
		t.Fatalf("sliding(-3) total = %d, want 1", s.TotalOps)
	}
	empty := NewRing(10, 4)
	if s := empty.Sliding(2); s.TotalOps != 0 {
		t.Fatalf("empty sliding total = %d", s.TotalOps)
	}
}

// TestRingSlidingMatchesCellMerge pins the sliding view's merge
// semantics: Sliding(k) must equal merging the newest k retained cells
// by hand — the same exact-merge property the batch pipeline relies on.
func TestRingSlidingMatchesCellMerge(t *testing.T) {
	r := NewRing(10, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ {
			r.Add(readOp(float64(i*10) + float64(j)))
			r.Add(writeOp(float64(i*10) + float64(j) + 0.5))
		}
	}
	cells := r.Cells()
	for k := 1; k <= 6; k++ {
		want := cells[len(cells)-k:]
		var total, reads, writes int64
		for _, c := range want {
			total += c.Sum.TotalOps
			reads += c.Sum.ReadOps
			writes += c.Sum.WriteOps
		}
		got := r.Sliding(k)
		if got.TotalOps != total || got.ReadOps != reads || got.WriteOps != writes {
			t.Fatalf("sliding(%d) = %d/%d/%d, cell merge = %d/%d/%d",
				k, got.TotalOps, got.ReadOps, got.WriteOps, total, reads, writes)
		}
	}
}

// TestRingSlidingSkipsStaleSlots rolls far enough that some slots hold
// no window in the current horizon; the stale-slot guard must skip
// them in both Cells and Sliding.
func TestRingSlidingSkipsStaleSlots(t *testing.T) {
	r := NewRing(10, 4)
	r.Add(readOp(5)) // window 0
	// Jump 100 windows ahead: every retained slot except the current is
	// cleared on roll, and slot reuse must not resurrect window 0.
	r.Add(readOp(1005)) // window 100
	cells := r.Cells()
	if len(cells) != 1 || cells[0].Start != 1000 {
		t.Fatalf("cells after jump = %+v", cells)
	}
	if s := r.Sliding(4); s.TotalOps != 1 {
		t.Fatalf("sliding after jump = %d ops, want 1", s.TotalOps)
	}
}
