package window

import (
	"testing"

	"repro/internal/core"
)

func wop(t float64, proc core.ProcID, bytes uint32) *core.Op {
	return &core.Op{T: t, Proc: proc, Replied: true, RCount: bytes, Count: bytes, FH: 1}
}

func readOp(t float64) *core.Op  { return wop(t, core.ProcRead, 8192) }
func writeOp(t float64) *core.Op { return wop(t, core.ProcWrite, 4096) }

func TestRingTumbling(t *testing.T) {
	r := NewRing(10, 4)
	// Two windows: [10,20) and [20,30).
	r.Add(readOp(12))
	r.Add(writeOp(15))
	r.Add(readOp(23))

	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Start != 10 || cells[1].Start != 20 {
		t.Fatalf("cell starts = %v, %v; want 10, 20", cells[0].Start, cells[1].Start)
	}
	if cells[0].Ops != 2 || cells[1].Ops != 1 {
		t.Fatalf("cell ops = %d, %d; want 2, 1", cells[0].Ops, cells[1].Ops)
	}
	if cells[0].Sum.ReadOps != 1 || cells[0].Sum.WriteOps != 1 {
		t.Fatalf("window 1 mix = %d reads %d writes", cells[0].Sum.ReadOps, cells[0].Sum.WriteOps)
	}
}

func TestRingWindowAnchoring(t *testing.T) {
	// Windows anchor at multiples of the width, not at the first op.
	r := NewRing(60, 4)
	r.Add(readOp(119)) // window [60,120)
	r.Add(readOp(121)) // window [120,180)
	cells := r.Cells()
	if len(cells) != 2 || cells[0].Start != 60 || cells[1].Start != 120 {
		t.Fatalf("cells = %+v; want starts 60 and 120", cells)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(10, 2)
	r.Add(readOp(5))  // [0,10)
	r.Add(readOp(15)) // [10,20)
	r.Add(readOp(25)) // [20,30) — evicts [0,10)
	cells := r.Cells()
	if len(cells) != 2 || cells[0].Start != 10 || cells[1].Start != 20 {
		t.Fatalf("cells = %+v; want starts 10 and 20", cells)
	}
	// A straggler for the evicted window is dropped and counted.
	r.Add(readOp(7))
	if r.Late() != 1 {
		t.Fatalf("Late() = %d, want 1", r.Late())
	}
	// A straggler within retention still lands.
	r.Add(writeOp(14))
	cells = r.Cells()
	if cells[0].Sum.WriteOps != 1 {
		t.Fatalf("retained straggler missing: %+v", cells[0].Sum)
	}
}

func TestRingSkipsEmptyWindows(t *testing.T) {
	r := NewRing(10, 8)
	r.Add(readOp(5))
	r.Add(readOp(75)) // skips six windows
	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (empty windows omitted)", len(cells))
	}
	if cells[0].Start != 0 || cells[1].Start != 70 {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestRingSliding(t *testing.T) {
	r := NewRing(10, 4)
	for i := 0; i < 4; i++ {
		r.Add(readOp(float64(i*10) + 5))
		r.Add(writeOp(float64(i*10) + 6))
	}
	// Last 2 windows: 2 reads, 2 writes.
	s := r.Sliding(2)
	if s.ReadOps != 2 || s.WriteOps != 2 {
		t.Fatalf("sliding(2) = %d reads %d writes; want 2/2", s.ReadOps, s.WriteOps)
	}
	all := r.Sliding(99) // clamped to keep
	if all.TotalOps != 8 {
		t.Fatalf("sliding(all) total = %d, want 8", all.TotalOps)
	}
}

func TestRingLagBounded(t *testing.T) {
	r := NewRing(10, 4)
	if r.Lag() != 0 {
		t.Fatalf("empty ring lag = %v", r.Lag())
	}
	for _, tm := range []float64{3, 9.5, 10.2, 17, 29.9, 30, 41} {
		r.Add(readOp(tm))
		if lag := r.Lag(); lag < 0 || lag >= r.Width() {
			t.Fatalf("lag %v out of [0, width) after op at t=%v", lag, tm)
		}
	}
	if r.Lag() != 1 {
		t.Fatalf("lag = %v, want 1 (last op 41, window start 40)", r.Lag())
	}
}

func TestRingCellsAreIndependent(t *testing.T) {
	r := NewRing(10, 4)
	r.Add(readOp(5))
	cells := r.Cells()
	r.Add(readOp(6))
	if cells[0].Sum.TotalOps != 1 {
		t.Fatalf("served cell mutated by later Add: %d ops", cells[0].Sum.TotalOps)
	}
}
