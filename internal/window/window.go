// Package window maintains rolling time-window reducer state for the
// always-on analysis daemon (cmd/nfsmond). A Ring buckets the op
// stream into tumbling windows of fixed width — each window holds an
// analysis.Summary, the paper's Table 2 reduction — and keeps the most
// recent cells so sliding aggregates (the last k windows merged) and
// per-window series can be served at any moment.
//
// The reduction per cell is exact and mergeable, so a sliding view is
// just a Merge over retained cells: the same shard/merge property the
// batch pipeline relies on, applied over time instead of over file
// handles.
package window

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Cell is one tumbling window.
type Cell struct {
	// Start is the window's start time in trace seconds; it covers
	// [Start, Start+width).
	Start float64
	// Sum is the window's reduction.
	Sum *analysis.Summary
	// Ops is the op count (same as Sum.TotalOps, kept for cheap series).
	Ops int64
}

// Ring is a fixed-width tumbling-window accumulator retaining the most
// recent Keep windows. It is not safe for concurrent use; the daemon
// serializes Add and the View calls.
type Ring struct {
	width float64
	keep  int

	cells []Cell // cells[i mod keep] holds window index i
	cur   int64  // current (highest) window index
	begun bool

	lastT float64
	late  int64 // ops older than the retained horizon, dropped
}

// NewRing creates a ring of tumbling windows of the given width in
// seconds, retaining the keep most recent. Width must be positive;
// keep must be at least 1.
func NewRing(width float64, keep int) *Ring {
	if width <= 0 || keep < 1 {
		panic("window: invalid ring geometry")
	}
	return &Ring{width: width, keep: keep, cells: make([]Cell, keep)}
}

// Width reports the window width in seconds.
func (r *Ring) Width() float64 { return r.width }

// Keep reports the retention depth in windows.
func (r *Ring) Keep() int { return r.keep }

// Late reports ops dropped for arriving older than the retained
// horizon.
func (r *Ring) Late() int64 { return r.late }

// LastT reports the latest op time added.
func (r *Ring) LastT() float64 { return r.lastT }

// index returns the window index containing t, anchored at multiples
// of the width so window boundaries are stable regardless of when the
// first op arrives.
func (r *Ring) index(t float64) int64 { return int64(math.Floor(t / r.width)) }

// slot returns the ring slot for window index i.
func (r *Ring) slot(i int64) *Cell {
	c := &r.cells[int(((i%int64(r.keep))+int64(r.keep)))%r.keep]
	return c
}

// Add folds one operation into its window, rolling the ring forward
// when the op starts a newer window. Ops need not be perfectly ordered;
// anything within the retained horizon still lands in its cell, while
// older stragglers are counted in Late and dropped.
func (r *Ring) Add(op *core.Op) {
	i := r.index(op.T)
	if !r.begun {
		r.begun = true
		r.cur = i
		*r.slot(i) = Cell{Start: float64(i) * r.width, Sum: analysis.NewSummary(0)}
	}
	if op.T > r.lastT {
		r.lastT = op.T
	}
	switch {
	case i > r.cur:
		// Roll forward, clearing every slot the stream skipped.
		from := i - int64(r.keep) + 1
		if prev := r.cur + 1; prev > from {
			from = prev
		}
		for k := from; k <= i; k++ {
			*r.slot(k) = Cell{Start: float64(k) * r.width, Sum: analysis.NewSummary(0)}
		}
		r.cur = i
	case i <= r.cur-int64(r.keep):
		r.late++
		return
	default:
		// Late but retained: the cell is still live.
	}
	c := r.slot(i)
	if c.Sum == nil {
		// A retained-range cell the ring never initialized (op older
		// than the first window seen): anchor it now.
		*c = Cell{Start: float64(i) * r.width, Sum: analysis.NewSummary(0)}
	}
	c.Sum.Add(op)
	c.Ops = c.Sum.TotalOps
}

// CurrentStart reports the start time of the newest window, or 0
// before any op.
func (r *Ring) CurrentStart() float64 {
	if !r.begun {
		return 0
	}
	return float64(r.cur) * r.width
}

// Lag reports how deep into the current window the stream has
// progressed: lastT − CurrentStart, which by construction lies in
// [0, width). It is the daemon's window-lag gauge — a bounded value
// whose growth past the width would mean the roll-forward logic
// failed.
func (r *Ring) Lag() float64 {
	if !r.begun {
		return 0
	}
	return r.lastT - r.CurrentStart()
}

// Cells returns the retained windows that saw any ops, oldest first,
// cloning each summary so callers keep a consistent view while the
// ring rolls on.
func (r *Ring) Cells() []Cell {
	if !r.begun {
		return nil
	}
	out := make([]Cell, 0, r.keep)
	for i := r.cur - int64(r.keep) + 1; i <= r.cur; i++ {
		c := r.slot(i)
		// A slot holds window i only if it was initialized for i
		// specifically; stale, unfilled, and empty slots are skipped.
		if c.Sum == nil || c.Start != float64(i)*r.width || c.Ops == 0 {
			continue
		}
		out = append(out, Cell{Start: c.Start, Sum: c.Sum.Clone(), Ops: c.Ops})
	}
	return out
}

// Sliding merges the newest k retained windows into one summary — the
// sliding-window view over the tumbling cells. k is clamped to the
// retention depth.
func (r *Ring) Sliding(k int) *analysis.Summary {
	sum := analysis.NewSummary(0)
	if !r.begun {
		return sum
	}
	if k < 1 {
		k = 1
	}
	if k > r.keep {
		k = r.keep
	}
	for i := r.cur - int64(k) + 1; i <= r.cur; i++ {
		c := r.slot(i)
		if c.Sum == nil || c.Start != float64(i)*r.width {
			continue
		}
		sum.Merge(c.Sum)
	}
	return sum
}
