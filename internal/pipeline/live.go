package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Live is the push-mode form of the engine: the caller feeds operations
// one at a time instead of handing over an OpSource, and may take a
// consistent Snapshot of every analyzer's partial state at any point
// without stopping ingest for longer than a pipeline flush. Run is a
// thin loop over a Live, so the batch path and the daemon path exercise
// the same router, the same worker goroutines, and the same analyzers.
//
// A Live's methods are not safe for concurrent use — the feeder owns
// it. A daemon that snapshots from another goroutine (cmd/nfsmond)
// serializes Feed and Fork with its own mutex; the batch path pays no
// synchronization at all on the per-op hot loop.
type Live struct {
	workers int
	batch   int

	analyzers []Analyzer
	// shardedOf/globalOf record each analyzer's role so Fork can route
	// the forked accumulators the same way Open did.
	sharded []Analyzer
	global  []Analyzer

	perShard [][]Accumulator
	shardCh  []chan liveBatch
	globalCh []chan liveBatch
	wg       sync.WaitGroup

	rt      *router
	bufs    [][]*core.Op
	ordered []*core.Op
	stats   Stats
	done    bool
}

// liveBatch is one message to a worker: a batch of operations and,
// when arrive is non-nil, a snapshot barrier — the worker signals
// arrival after consuming the batch and parks until release closes.
type liveBatch struct {
	ops     []*core.Op
	arrive  *sync.WaitGroup
	release chan struct{}
}

// NewLive opens every analyzer and starts the shard workers.
func NewLive(cfg Config, analyzers ...Analyzer) *Live {
	lv := &Live{
		workers:   cfg.workers(),
		batch:     cfg.batchSize(),
		analyzers: analyzers,
	}
	for _, a := range analyzers {
		if _, ok := a.(GlobalAnalyzer); ok {
			lv.global = append(lv.global, a)
		} else {
			lv.sharded = append(lv.sharded, a)
		}
	}

	lv.perShard = make([][]Accumulator, lv.workers)
	for _, a := range lv.sharded {
		accs := a.Open(lv.workers)
		for i, acc := range accs {
			lv.perShard[i] = append(lv.perShard[i], acc)
		}
	}

	lv.shardCh = make([]chan liveBatch, lv.workers)
	for w := 0; w < lv.workers; w++ {
		lv.shardCh[w] = make(chan liveBatch, 4)
		lv.wg.Add(1)
		go func(w int) {
			defer lv.wg.Done()
			accs := lv.perShard[w]
			for b := range lv.shardCh[w] {
				for _, op := range b.ops {
					for _, acc := range accs {
						acc.Consume(op)
					}
				}
				if b.arrive != nil {
					b.arrive.Done()
					<-b.release
				}
			}
		}(w)
	}

	lv.globalCh = make([]chan liveBatch, len(lv.global))
	for g, a := range lv.global {
		lv.globalCh[g] = make(chan liveBatch, 4)
		acc := a.Open(1)[0]
		lv.wg.Add(1)
		go func(g int, acc Accumulator) {
			defer lv.wg.Done()
			for b := range lv.globalCh[g] {
				for _, op := range b.ops {
					acc.Consume(op)
				}
				if b.arrive != nil {
					b.arrive.Done()
					<-b.release
				}
			}
		}(g, acc)
	}

	lv.rt = newRouter(lv.workers)
	lv.bufs = make([][]*core.Op, lv.workers)
	return lv
}

// Feed routes one operation into the engine. The op must not be
// mutated afterwards.
func (lv *Live) Feed(op *core.Op) {
	if lv.stats.Ops == 0 || op.T < lv.stats.MinT {
		lv.stats.MinT = op.T
	}
	if lv.stats.Ops == 0 || op.T > lv.stats.MaxT {
		lv.stats.MaxT = op.T
	}
	lv.stats.Ops++

	w := lv.rt.shard(op)
	lv.bufs[w] = append(lv.bufs[w], op)
	if len(lv.bufs[w]) >= lv.batch {
		lv.flushShard(w)
	}
	if len(lv.globalCh) > 0 {
		lv.ordered = append(lv.ordered, op)
		if len(lv.ordered) >= lv.batch {
			lv.flushOrdered()
		}
	}
}

// Stats reports the stream statistics so far. Like every Live method it
// is only meaningful under the feeder's serialization.
func (lv *Live) Stats() Stats { return lv.stats }

func (lv *Live) flushShard(w int) {
	if len(lv.bufs[w]) > 0 {
		lv.shardCh[w] <- liveBatch{ops: lv.bufs[w]}
		lv.bufs[w] = nil
	}
}

func (lv *Live) flushOrdered() {
	if len(lv.ordered) > 0 {
		for _, ch := range lv.globalCh {
			// One read-only batch shared by every global analyzer.
			ch <- liveBatch{ops: lv.ordered}
		}
		lv.ordered = nil
	}
}

// shutdown closes every channel and waits for the workers to drain.
func (lv *Live) shutdown() {
	for _, ch := range lv.shardCh {
		close(ch)
	}
	for _, ch := range lv.globalCh {
		close(ch)
	}
	lv.wg.Wait()
	lv.done = true
}

// Finish flushes the pipeline, stops the workers, closes every
// analyzer, and returns the final statistics. The Live is spent.
func (lv *Live) Finish() Stats {
	for w := range lv.bufs {
		lv.flushShard(w)
	}
	lv.flushOrdered()
	lv.shutdown()
	for _, a := range lv.analyzers {
		a.Close()
	}
	return lv.stats
}

// Quiesce flushes the pipeline and stops the workers WITHOUT closing
// the analyzers: every accumulator holds its exact mid-stream partial
// state, ready for WritePartial to serialize. The Live is spent for
// feeding; analyzers stay open so a later decode can still fold into
// them. Returns the stream statistics.
func (lv *Live) Quiesce() Stats {
	for w := range lv.bufs {
		lv.flushShard(w)
	}
	lv.flushOrdered()
	lv.shutdown()
	return lv.stats
}

// Abort stops the workers without closing the analyzers; their results
// are undefined. Used on source errors.
func (lv *Live) Abort() {
	for w := range lv.bufs {
		lv.bufs[w] = nil
	}
	lv.ordered = nil
	lv.shutdown()
}

// ForkableAnalyzer is an Analyzer whose partial state can be cloned
// mid-stream. Fork returns a fresh analyzer holding an independent deep
// copy of the receiver's state, plus the copy's per-shard accumulators
// (one per shard for sharded analyzers, exactly one for global ones) so
// a continuation can keep feeding it. Calling Close on the forked
// analyzer yields the result the original would have produced had the
// stream ended at the fork point. Every analyzer in this package
// implements it.
type ForkableAnalyzer interface {
	Analyzer
	Fork() (Analyzer, []Accumulator)
}

// Snapshot is a consistent copy of a Live's entire state at one point
// in the op stream: every analyzer's partial reduction, the router's
// name bindings, and the stream statistics. It is a single-threaded
// continuation — Feed it the rest of a stream (or a joiner's pending
// ops) and Finish it to produce exactly the output a batch run over
// the full prefix would have produced, while the original Live keeps
// ingesting undisturbed.
type Snapshot struct {
	// Analyzers holds the forked analyzers in registration order; after
	// Finish, read results from them exactly as after Run.
	Analyzers []Analyzer

	perShard   [][]Accumulator
	globalAccs []Accumulator
	rt         *router
	stats      Stats
	finished   bool
}

// Fork takes a snapshot. It flushes every buffered batch, parks all
// workers at a barrier (so no Consume is in flight), deep-copies every
// analyzer and the router, then releases the workers. Ingest stalls
// only for the copy, not for the analyses. Fork fails if any analyzer
// does not implement ForkableAnalyzer.
func (lv *Live) Fork() (*Snapshot, error) {
	if lv.done {
		return nil, fmt.Errorf("pipeline: Fork after Finish/Abort")
	}
	for _, a := range lv.analyzers {
		if _, ok := a.(ForkableAnalyzer); !ok {
			return nil, fmt.Errorf("pipeline: analyzer %T does not support Fork", a)
		}
	}

	// Flush pending batches, then post the barrier to every channel.
	for w := range lv.bufs {
		lv.flushShard(w)
	}
	lv.flushOrdered()
	var arrive sync.WaitGroup
	arrive.Add(lv.workers + len(lv.globalCh))
	release := make(chan struct{})
	for _, ch := range lv.shardCh {
		ch <- liveBatch{arrive: &arrive, release: release}
	}
	for _, ch := range lv.globalCh {
		ch <- liveBatch{arrive: &arrive, release: release}
	}
	arrive.Wait()

	// All workers parked: copy everything, then let them run again.
	snap := &Snapshot{
		Analyzers: make([]Analyzer, 0, len(lv.analyzers)),
		perShard:  make([][]Accumulator, lv.workers),
		rt:        lv.rt.clone(),
		stats:     lv.stats,
	}
	for _, a := range lv.analyzers {
		fa, accs := a.(ForkableAnalyzer).Fork()
		snap.Analyzers = append(snap.Analyzers, fa)
		if _, ok := a.(GlobalAnalyzer); ok {
			snap.globalAccs = append(snap.globalAccs, accs[0])
		} else {
			for i, acc := range accs {
				snap.perShard[i] = append(snap.perShard[i], acc)
			}
		}
	}
	close(release)
	return snap, nil
}

// Feed routes one operation into the snapshot continuation.
func (s *Snapshot) Feed(op *core.Op) {
	if s.stats.Ops == 0 || op.T < s.stats.MinT {
		s.stats.MinT = op.T
	}
	if s.stats.Ops == 0 || op.T > s.stats.MaxT {
		s.stats.MaxT = op.T
	}
	s.stats.Ops++

	w := s.rt.shard(op)
	for _, acc := range s.perShard[w] {
		acc.Consume(op)
	}
	for _, acc := range s.globalAccs {
		acc.Consume(op)
	}
}

// Finish closes every forked analyzer and returns the statistics.
// Idempotent after the first call.
func (s *Snapshot) Finish() Stats {
	if !s.finished {
		for _, a := range s.Analyzers {
			a.Close()
		}
		s.finished = true
	}
	return s.stats
}

// clone copies the router, including the binding map, so a snapshot
// continuation resolves removes and renames exactly as the live engine
// will.
func (r *router) clone() *router {
	cp := &router{shards: r.shards, names: make(map[binding]core.FH, len(r.names))}
	for k, v := range r.names {
		cp.names[k] = v
	}
	return cp
}
