package pipeline

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func setRecords(n int, seed int64, start float64) []*core.Record {
	rng := rand.New(rand.NewSource(seed))
	var records []*core.Record
	tm := start
	for i := 0; i < n; i++ {
		tm += rng.Float64() * 0.01
		records = append(records, &core.Record{
			Time: tm, Kind: core.KindCall, Proto: core.ProtoUDP,
			Client: 0x0a000005, Port: 800, Server: 0x0a000001,
			XID: rng.Uint32(), Version: 3, Proc: core.MustProc("read"),
			FH: core.InternFH("00000000000000aa"), Offset: uint64(i) * 8192, Count: 8192,
		})
	}
	return records
}

func writeTextFile(t *testing.T, path string, records []*core.Record, gz bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteAll(&buf, records); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if gz {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(data)
		zw.Close()
		data = zbuf.Bytes()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestExpandInputs(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("# empty\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mk("a.trace")
	b := mk("b.trace")
	mk(".hidden")
	sub := filepath.Join(dir, "sub")
	os.Mkdir(sub, 0o755)
	c := filepath.Join(sub, "c.trace")
	os.WriteFile(c, []byte("# empty\n"), 0o644)

	got, err := ExpandInputs([]string{filepath.Join(dir, "*.trace")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("glob: %v", got)
	}

	// A directory contributes its visible files, sorted; the
	// subdirectory and dotfile are skipped.
	got, err = ExpandInputs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("dir: %v", got)
	}

	got, err = ExpandInputs([]string{a, sub})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != c {
		t.Fatalf("mixed: %v", got)
	}

	if _, err := ExpandInputs([]string{filepath.Join(dir, "*.nope")}); err == nil {
		t.Fatal("unmatched glob accepted")
	}
	if _, err := ExpandInputs([]string{filepath.Join(dir, "missing.trace")}); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "emptydir")
	os.Mkdir(empty, 0o755)
	if _, err := ExpandInputs([]string{empty}); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestTraceSetMergesByTime(t *testing.T) {
	dir := t.TempDir()
	// Three interleaved day-files, one gzipped — like a real capture
	// directory.
	r1 := setRecords(400, 1, 1000)
	r2 := setRecords(300, 2, 1000.5)
	r3 := setRecords(200, 3, 1001)
	p1 := filepath.Join(dir, "day1.trace")
	p2 := filepath.Join(dir, "day2.trace.gz")
	p3 := filepath.Join(dir, "day3.trace")
	writeTextFile(t, p1, r1, false)
	writeTextFile(t, p2, r2, true)
	writeTextFile(t, p3, r3, false)

	ts, err := OpenTraceSet([]string{p1, p2, p3}, core.IngestConfig{Decoders: 2, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	var n int
	last := -1.0
	for {
		rec, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Time < last {
			t.Fatalf("record %d out of order: %v < %v", n, rec.Time, last)
		}
		last = rec.Time
		n++
	}
	if n != 900 {
		t.Fatalf("merged %d records, want 900", n)
	}
	stats := ts.Stats()
	if len(stats) != 3 || stats[0].Records != 400 || stats[1].Records != 300 || stats[2].Records != 200 {
		t.Fatalf("per-file stats: %+v", stats)
	}
}

func TestTraceSetSingleFile(t *testing.T) {
	dir := t.TempDir()
	recs := setRecords(100, 4, 0)
	p := filepath.Join(dir, "one.trace")
	writeTextFile(t, p, recs, false)
	ts, err := OpenTraceSet([]string{p}, core.IngestConfig{Decoders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	var n int64
	for {
		_, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 100 || ts.Stats()[0].Records != 100 {
		t.Fatalf("n=%d stats=%+v", n, ts.Stats())
	}
}

func TestTraceSetErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.trace")
	writeTextFile(t, good, setRecords(50, 5, 0), false)
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenTraceSet([]string{good, bad}, core.IngestConfig{Decoders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for {
		_, err := ts.Next()
		if err == io.EOF {
			t.Fatal("bad file read as clean EOF")
		}
		if err != nil {
			if !bytes.Contains([]byte(err.Error()), []byte("bad.trace")) {
				t.Fatalf("error does not name the bad file: %v", err)
			}
			return
		}
	}
}

func TestTraceSetCloseMidStream(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "big.trace")
	writeTextFile(t, p, setRecords(20000, 6, 0), false)
	ts, err := OpenTraceSet([]string{p}, core.IngestConfig{Decoders: 4, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ts.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}
