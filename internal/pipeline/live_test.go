package pipeline

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// plainAnalyzer implements Analyzer but not ForkableAnalyzer.
type plainAnalyzer struct{ n int64 }

func (a *plainAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	for i := range accs {
		accs[i] = funcAcc{func(*core.Op) { a.n++ }}
	}
	return accs
}
func (a *plainAnalyzer) Close() {}

func TestForkRequiresForkableAnalyzers(t *testing.T) {
	lv := NewLive(Config{Workers: 2}, &SummaryAnalyzer{}, &plainAnalyzer{})
	defer lv.Abort()
	_, err := lv.Fork()
	if err == nil || !strings.Contains(err.Error(), "does not support Fork") {
		t.Fatalf("Fork with non-forkable analyzer: err = %v", err)
	}
}

func TestForkAfterFinishErrors(t *testing.T) {
	lv := NewLive(Config{Workers: 1}, &SummaryAnalyzer{})
	lv.Finish()
	if _, err := lv.Fork(); err == nil {
		t.Fatal("Fork after Finish should error")
	}
}

// TestSnapshotIsolation checks both directions of independence: ops fed
// to the live engine after the fork don't leak into the snapshot, and
// ops fed to the snapshot continuation don't leak into the live run.
func TestSnapshotIsolation(t *testing.T) {
	ops := genOps(t, 0.5)
	if len(ops) < 100 {
		t.Fatalf("only %d ops", len(ops))
	}
	half := len(ops) / 2

	sum := &SummaryAnalyzer{}
	lv := NewLive(Config{Workers: 4}, sum)
	for _, op := range ops[:half] {
		lv.Feed(op)
	}
	snap, err := lv.Fork()
	if err != nil {
		t.Fatal(err)
	}

	// Diverge: the live run sees the rest, the snapshot sees nothing.
	for _, op := range ops[half:] {
		lv.Feed(op)
	}
	snapStats := snap.Finish()
	liveStats := lv.Finish()

	if snapStats.Ops != int64(half) {
		t.Errorf("snapshot ops = %d, want %d", snapStats.Ops, half)
	}
	if liveStats.Ops != int64(len(ops)) {
		t.Errorf("live ops = %d, want %d", liveStats.Ops, len(ops))
	}
	fork := snap.Analyzers[0].(*SummaryAnalyzer)
	if fork.Result.TotalOps != int64(half) {
		t.Errorf("snapshot summary counted %d ops, want %d", fork.Result.TotalOps, half)
	}
	if sum.Result.TotalOps != int64(len(ops)) {
		t.Errorf("live summary counted %d ops, want %d", sum.Result.TotalOps, len(ops))
	}
}

// TestSnapshotContinuation feeds the second half of the stream to the
// snapshot instead, which must then equal a full sequential run.
func TestSnapshotContinuation(t *testing.T) {
	ops := genOps(t, 0.5)
	half := len(ops) / 2

	sum := &SummaryAnalyzer{}
	lv := NewLive(Config{Workers: 3}, sum)
	for _, op := range ops[:half] {
		lv.Feed(op)
	}
	snap, err := lv.Fork()
	if err != nil {
		t.Fatal(err)
	}
	lv.Abort()
	for _, op := range ops[half:] {
		snap.Feed(op)
	}
	stats := snap.Finish()
	if stats.Ops != int64(len(ops)) {
		t.Fatalf("continuation ops = %d, want %d", stats.Ops, len(ops))
	}
	fork := snap.Analyzers[0].(*SummaryAnalyzer)

	want := &SummaryAnalyzer{}
	RunSlice(Config{Workers: 1}, ops, want)
	if fork.Result.TotalOps != want.Result.TotalOps ||
		fork.Result.BytesRead != want.Result.BytesRead ||
		fork.Result.BytesWritten != want.Result.BytesWritten ||
		fork.Result.ProcCounts != want.Result.ProcCounts {
		t.Errorf("continuation result diverged:\ngot  %+v\nwant %+v", fork.Result, want.Result)
	}
}

// TestRepeatedForks takes several forks from one live run; each must
// reflect exactly the prefix fed before it.
func TestRepeatedForks(t *testing.T) {
	ops := genOps(t, 0.5)
	lv := NewLive(Config{Workers: 2}, &SummaryAnalyzer{})
	step := len(ops) / 4
	var fed int
	for cut := step; cut <= 3*step; cut += step {
		for _, op := range ops[fed:cut] {
			lv.Feed(op)
		}
		fed = cut
		snap, err := lv.Fork()
		if err != nil {
			t.Fatal(err)
		}
		snap.Finish()
		got := snap.Analyzers[0].(*SummaryAnalyzer).Result.TotalOps
		if got != int64(cut) {
			t.Fatalf("fork at %d ops reported %d", cut, got)
		}
	}
	lv.Abort()
}
