package pipeline

// Trace sets: the paper's deployments produced one capture per day and
// per disk array, so a real analysis run starts from a directory of
// files, not one file. A TraceSet opens many trace files (text or
// binary, gzip-transparent), decodes each with its own parallel ingest
// front end, and k-way merges the record streams back into global time
// order — so a multi-day EECS- or CAMPUS-style trace set feeds
// pipeline.Run in one pass, with files decoding concurrently.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// ExpandInputs resolves command-line input arguments into trace file
// paths: a glob pattern expands (matching nothing is an error), a
// directory contributes its non-hidden regular files in sorted order,
// and a plain file path passes through.
func ExpandInputs(args []string) ([]string, error) {
	var paths []string
	addDir := func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
				continue
			}
			paths = append(paths, filepath.Join(dir, e.Name()))
			n++
		}
		if n == 0 {
			return fmt.Errorf("directory %s holds no trace files", dir)
		}
		return nil
	}
	add := func(path string) error {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return addDir(path)
		}
		paths = append(paths, path)
		return nil
	}
	for _, arg := range args {
		if strings.ContainsAny(arg, "*?[") {
			matches, err := filepath.Glob(arg)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %w", arg, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("no files match %q", arg)
			}
			sort.Strings(matches)
			for _, m := range matches {
				if err := add(m); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := add(arg); err != nil {
			return nil, err
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	return paths, nil
}

// FileStat reports one file's contribution to a trace-set run.
type FileStat struct {
	Path    string
	Records int64
}

// fileSource counts records per file and tags errors with the path, so
// a bad file in a multi-week set is identifiable.
type fileSource struct {
	path string
	pr   *core.ParallelReader
	n    int64
}

func (f *fileSource) Next() (*core.Record, error) {
	rec, err := f.pr.Next()
	if err == nil {
		f.n++
		return rec, nil
	}
	if err != io.EOF {
		return nil, fmt.Errorf("%s: %w", f.path, err)
	}
	return nil, err
}

// TraceSet is a core.RecordSource over one or more trace files. Each
// file gets its own parallel decode front end; multiple files are
// k-way merged by timestamp. Close releases the decoder goroutines and
// file handles (safe mid-stream, e.g. after a pipeline error).
type TraceSet struct {
	files   []*os.File
	sources []*fileSource
	src     core.RecordSource
}

// OpenTraceSet opens every path with the given ingest configuration.
func OpenTraceSet(paths []string, cfg core.IngestConfig) (*TraceSet, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("pipeline: empty trace set")
	}
	ts := &TraceSet{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			ts.Close()
			return nil, err
		}
		ts.files = append(ts.files, f)
		pr, err := core.NewParallelReader(f, cfg)
		if err != nil {
			ts.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		ts.sources = append(ts.sources, &fileSource{path: path, pr: pr})
	}
	if len(ts.sources) == 1 {
		ts.src = ts.sources[0]
	} else {
		srcs := make([]core.RecordSource, len(ts.sources))
		for i, s := range ts.sources {
			srcs[i] = s
		}
		ts.src = core.NewMerger(srcs...)
	}
	return ts, nil
}

// Next implements core.RecordSource over the merged set.
func (ts *TraceSet) Next() (*core.Record, error) { return ts.src.Next() }

// Recycle implements core.RecordRecycler: every file's parallel reader
// allocates from the shared core pool, so dead records go back there.
func (ts *TraceSet) Recycle(r *core.Record) { core.FreeRecord(r) }

// Stats reports per-file record counts, complete once Next returned
// io.EOF.
func (ts *TraceSet) Stats() []FileStat {
	stats := make([]FileStat, len(ts.sources))
	for i, s := range ts.sources {
		stats[i] = FileStat{Path: s.path, Records: s.n}
	}
	return stats
}

// Close stops every file's decoder goroutines and closes the files.
func (ts *TraceSet) Close() error {
	for _, s := range ts.sources {
		s.pr.Stop()
	}
	var first error
	for _, f := range ts.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
