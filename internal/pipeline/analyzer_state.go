package pipeline

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/state"
)

// Every analyzer in this package can serialize its partial reduction
// into a state file section and fold a serialized partial back into its
// open accumulators — the mechanism behind nfsanalyze -partial/-merge,
// checkpoint/resume, and the multi-process coordinator.
//
// Two reducer families fall out of the paper's analyses:
//
//   - Parallel-exact reducers (summary, hourly, runs, reorder,
//     peak-hour, mailbox): their state is a sum, a set union, or a
//     per-file partition, so independently computed partials merge in
//     trace-time order into exactly the single-pass result.
//
//   - Sequential reducers (block lifetimes, hierarchy, names): their
//     state depends on stream order (phase windows, namespace warm-up),
//     so partials only compose as a resume chain — each piece seeded
//     from its predecessor's state. MergePartials enforces this.

// statefulAnalyzer is the serialization contract each analyzer adds on
// top of Analyzer. encodeState runs after Quiesce (workers stopped,
// accumulators final); decodeState runs after Open, before any Feed.
type statefulAnalyzer interface {
	Analyzer
	// stateKey names the section payload format; the section is written
	// as "<index>:<key>" so one run can carry two analyzers of a kind.
	stateKey() string
	// stateSeq reports order dependence: sequential reducers resume,
	// they never merge independent partials.
	stateSeq() bool
	// encodeState writes the union of every shard's partial state.
	// rt resolves cross-shard name-binding conflicts.
	encodeState(e *state.Encoder, rt *router)
	// decodeState folds one serialized partial into the open
	// accumulators, distributing per-file state to the owning shards.
	decodeState(d *state.Decoder)
	// newLike returns a fresh unopened analyzer with the same
	// configuration, for the intermediate pieces of a partitioned run.
	newLike() Analyzer
}

// IsSequential reports whether the analyzer's reduction is order
// dependent — if so, partial states from disjoint trace pieces cannot
// be merged independently and must be chained with resume.
func IsSequential(a Analyzer) bool {
	if sa, ok := a.(statefulAnalyzer); ok {
		return sa.stateSeq()
	}
	return false
}

// shardIndex maps a file handle to its owning shard — the same hash the
// router applies to data ops, so distributed state lands exactly where
// the resumed stream will route that file's future operations.
func shardIndex(fh core.FH, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix32(uint32(fh)) % uint64(n))
}

func (a *SummaryAnalyzer) stateKey() string { return "summary" }
func (a *SummaryAnalyzer) stateSeq() bool   { return false }
func (a *SummaryAnalyzer) newLike() Analyzer {
	return &SummaryAnalyzer{Days: a.Days}
}

func (a *SummaryAnalyzer) encodeState(e *state.Encoder, rt *router) {
	merged := analysis.NewSummary(a.Days)
	for _, p := range a.parts {
		merged.Merge(p)
	}
	merged.EncodeState(e)
}

func (a *SummaryAnalyzer) decodeState(d *state.Decoder) {
	// Pure sums: fold into shard 0, Close sums every shard anyway.
	a.parts[0].DecodeState(d)
}

func (a *HourlyAnalyzer) stateKey() string { return "hourly" }
func (a *HourlyAnalyzer) stateSeq() bool   { return false }
func (a *HourlyAnalyzer) newLike() Analyzer {
	return &HourlyAnalyzer{Span: a.Span}
}

func (a *HourlyAnalyzer) encodeState(e *state.Encoder, rt *router) {
	merged := a.newSeries()
	for _, p := range a.parts {
		merged.Merge(p)
	}
	merged.EncodeState(e)
}

func (a *HourlyAnalyzer) decodeState(d *state.Decoder) {
	a.parts[0].DecodeState(d)
}

func (a *RunsAnalyzer) stateKey() string { return "runs" }
func (a *RunsAnalyzer) stateSeq() bool   { return false }
func (a *RunsAnalyzer) newLike() Analyzer {
	return &RunsAnalyzer{Config: a.Config}
}

func (a *RunsAnalyzer) encodeState(e *state.Encoder, rt *router) {
	e.F64(a.Config.ReorderWindow)
	e.F64(a.Config.IdleGap)
	e.Varint(a.Config.JumpBlocks)
	combinedAccessMap(a.parts).EncodeState(e)
}

func (a *RunsAnalyzer) decodeState(d *state.Decoder) {
	rw, ig, jb := d.F64(), d.F64(), d.Varint()
	if d.Err() != nil {
		return
	}
	if rw != a.Config.ReorderWindow || ig != a.Config.IdleGap || jb != a.Config.JumpBlocks {
		d.Failf("run config (window=%v gap=%v k=%v) does not match receiver (window=%v gap=%v k=%v)",
			rw, ig, jb, a.Config.ReorderWindow, a.Config.IdleGap, a.Config.JumpBlocks)
		return
	}
	decodeAccessMap(d, a.parts)
}

func (a *ReorderSweepAnalyzer) stateKey() string { return "reorder" }
func (a *ReorderSweepAnalyzer) stateSeq() bool   { return false }
func (a *ReorderSweepAnalyzer) newLike() Analyzer {
	return &ReorderSweepAnalyzer{WindowsMS: a.WindowsMS}
}

func (a *ReorderSweepAnalyzer) encodeState(e *state.Encoder, rt *router) {
	e.Uvarint(uint64(len(a.WindowsMS)))
	for _, w := range a.WindowsMS {
		e.F64(w)
	}
	combinedAccessMap(a.parts).EncodeState(e)
}

func (a *ReorderSweepAnalyzer) decodeState(d *state.Decoder) {
	n := d.Count("window count")
	if d.Err() == nil && n != len(a.WindowsMS) {
		d.Failf("window count %d does not match receiver's %d", n, len(a.WindowsMS))
		return
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		if w := d.F64(); d.Err() == nil && w != a.WindowsMS[i] {
			d.Failf("window %d is %vms, receiver has %vms", i, w, a.WindowsMS[i])
			return
		}
	}
	decodeAccessMap(d, a.parts)
}

// combinedAccessMap unions per-shard access maps. Files partition by
// shard, so the union never concatenates two shards' lists.
func combinedAccessMap(parts []analysis.AccessMap) analysis.AccessMap {
	combined := make(analysis.AccessMap)
	for _, m := range parts {
		for fh, accs := range m {
			combined[fh] = append(combined[fh], accs...)
		}
	}
	return combined
}

// decodeAccessMap decodes one serialized access map and spreads it
// across the open shards.
func decodeAccessMap(d *state.Decoder, parts []analysis.AccessMap) {
	tmp := make(analysis.AccessMap)
	tmp.DecodeState(d)
	if d.Err() != nil {
		return
	}
	tmp.DistributeState(parts, func(fh core.FH) int { return shardIndex(fh, len(parts)) })
}

func (a *BlockLifeAnalyzer) stateKey() string { return "blocklife" }
func (a *BlockLifeAnalyzer) stateSeq() bool   { return true }
func (a *BlockLifeAnalyzer) newLike() Analyzer {
	return &BlockLifeAnalyzer{Start: a.Start, Phase: a.Phase, Margin: a.Margin}
}

func (a *BlockLifeAnalyzer) encodeState(e *state.Encoder, rt *router) {
	combined := analysis.NewBlockLifeStream(a.Start, a.Phase, a.Margin)
	// A shard's (dir, name) → file map can hold bindings the global
	// stream has since rebound or removed — the superseding op routed to
	// a different shard. The router sees every binding event in order,
	// so it is the arbiter: only bindings it still agrees with survive
	// serialization, which is exactly the map a single-shard run would
	// hold.
	keep := func(dir core.FH, name string, child core.FH) bool {
		return rt.names[binding{dir, name}] == child
	}
	for _, p := range a.parts {
		p.MergeStateInto(combined, keep)
	}
	combined.EncodeState(e)
}

func (a *BlockLifeAnalyzer) decodeState(d *state.Decoder) {
	tmp := analysis.NewBlockLifeStream(a.Start, a.Phase, a.Margin)
	tmp.DecodeState(d)
	if d.Err() != nil {
		return
	}
	tmp.DistributeState(a.parts, func(fh core.FH) int { return shardIndex(fh, len(a.parts)) })
}

func (a *PeakHourAnalyzer) stateKey() string { return "peakhour" }
func (a *PeakHourAnalyzer) stateSeq() bool   { return false }
func (a *PeakHourAnalyzer) newLike() Analyzer {
	return &PeakHourAnalyzer{From: a.From, To: a.To}
}

func (a *PeakHourAnalyzer) encodeState(e *state.Encoder, rt *router) {
	combined := analysis.NewPeakHourInstances(a.From, a.To)
	for _, p := range a.parts {
		p.MergeStateInto(combined)
	}
	combined.EncodeState(e)
}

func (a *PeakHourAnalyzer) decodeState(d *state.Decoder) {
	tmp := analysis.NewPeakHourInstances(a.From, a.To)
	tmp.DecodeState(d)
	if d.Err() != nil {
		return
	}
	tmp.DistributeState(a.parts, func(fh core.FH) int { return shardIndex(fh, len(a.parts)) })
}

func (a *MailboxAnalyzer) stateKey() string { return "mailbox" }
func (a *MailboxAnalyzer) stateSeq() bool   { return false }
func (a *MailboxAnalyzer) newLike() Analyzer {
	return &MailboxAnalyzer{}
}

func (a *MailboxAnalyzer) encodeState(e *state.Encoder, rt *router) {
	combined := analysis.NewMailboxShare()
	for _, p := range a.parts {
		p.MergeStateInto(combined)
	}
	combined.EncodeState(e)
}

func (a *MailboxAnalyzer) decodeState(d *state.Decoder) {
	tmp := analysis.NewMailboxShare()
	tmp.DecodeState(d)
	if d.Err() != nil {
		return
	}
	tmp.DistributeState(a.parts, func(fh core.FH) int { return shardIndex(fh, len(a.parts)) })
}

func (a *HierarchyAnalyzer) stateKey() string { return "hierarchy" }
func (a *HierarchyAnalyzer) stateSeq() bool   { return true }
func (a *HierarchyAnalyzer) newLike() Analyzer {
	return &HierarchyAnalyzer{Warmup: a.Warmup}
}

func (a *HierarchyAnalyzer) encodeState(e *state.Encoder, rt *router) {
	e.F64(a.Warmup)
	e.Bool(a.acc.started)
	e.F64(a.acc.start)
	e.Varint(a.acc.resolvable)
	e.Varint(a.acc.total)
	a.acc.h.EncodeState(e)
}

func (a *HierarchyAnalyzer) decodeState(d *state.Decoder) {
	warmup := d.F64()
	if d.Err() == nil && warmup != a.Warmup {
		d.Failf("hierarchy warmup %vs does not match receiver's %vs", warmup, a.Warmup)
		return
	}
	// The warm-up clock started with the first op of the whole stream,
	// not of this piece — restore it so the resumed run keeps counting
	// from the same instant.
	a.acc.started = d.Bool()
	a.acc.start = d.F64()
	a.acc.resolvable += d.Varint()
	a.acc.total += d.Varint()
	a.acc.h.DecodeState(d)
}

func (a *NamesAnalyzer) stateKey() string { return "names" }
func (a *NamesAnalyzer) stateSeq() bool   { return true }
func (a *NamesAnalyzer) newLike() Analyzer {
	return &NamesAnalyzer{}
}

func (a *NamesAnalyzer) encodeState(e *state.Encoder, rt *router) {
	a.stream.EncodeState(e)
}

func (a *NamesAnalyzer) decodeState(d *state.Decoder) {
	a.stream.DecodeState(d)
}
