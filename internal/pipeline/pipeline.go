// Package pipeline is the streaming, sharded trace-processing engine.
//
// The paper's analyses were designed for multi-day, multi-million-record
// traces that could never fit in one pass of one core's cache, and the
// original slice-based flow here (materialize every joined operation,
// then run each analysis over the full slice) mirrored the paper's
// presentation rather than its scale. This package replaces that flow
// with a pipeline:
//
//	records ──► Joiner ──► router ──► shard workers ──► merge
//	            (streaming             (hash by file      (per-shard
//	             call/reply             handle, name-      reducers)
//	             matching)              resolved)
//
// A Joiner matches calls to replies incrementally and emits operations
// in call-time order with bounded reordering state. The router hashes
// each operation to one of N shards by the file handle it concerns —
// resolving remove and rename through a (directory, name) → handle map
// so that an operation always lands on the shard that owns the file it
// affects — and hands workers bounded batches. Each worker feeds its
// shard's accumulator for every registered Analyzer; when the stream
// ends, each analyzer folds its per-shard accumulators into one result.
//
// Determinism is a design requirement, not an accident: every analyzer
// shipped here either partitions exactly by file handle (runs, block
// lifetimes, reorder sweeps, per-file byte accounting) or reduces by
// integer sums whose value is independent of the partitioning (summary
// counts, hourly buckets). Table 1 through Table 5 and Figure 1 through
// Figure 5 therefore produce byte-identical output at any worker count,
// which the tests enforce. Analyses whose state genuinely spans files —
// the §4.1.1 namespace hierarchy — implement GlobalAnalyzer and run on
// a dedicated goroutine over the full ordered stream instead (pipeline
// parallelism rather than data parallelism).
package pipeline

import (
	"io"
	"runtime"

	"repro/internal/core"
)

// Config sizes the engine.
type Config struct {
	// Workers is the shard count; <= 0 selects runtime.GOMAXPROCS(0).
	// One worker reproduces the sequential analysis exactly; any other
	// count produces identical results by construction.
	Workers int
	// BatchSize is the number of ops handed to a worker at a time;
	// <= 0 selects 1024. Larger batches amortize channel overhead,
	// smaller ones bound latency and memory.
	BatchSize int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 1024
}

// OpSource yields joined operations in call-time order; io.EOF ends the
// stream. SliceOps adapts an in-memory slice; Joiner adapts a record
// stream from a trace file or capture.
type OpSource interface {
	Next() (*core.Op, error)
}

// sliceOps is the in-memory OpSource.
type sliceOps struct {
	ops []*core.Op
	i   int
}

// SliceOps adapts an op slice to OpSource.
func SliceOps(ops []*core.Op) OpSource { return &sliceOps{ops: ops} }

func (s *sliceOps) Next() (*core.Op, error) {
	if s.i >= len(s.ops) {
		return nil, io.EOF
	}
	op := s.ops[s.i]
	s.i++
	return op, nil
}

// Accumulator consumes the operations routed to one shard, in stream
// order. Implementations are never called concurrently.
type Accumulator interface {
	Consume(op *core.Op)
}

// Analyzer is one reduction over the op stream. Open is called once per
// run and returns one accumulator per shard; accumulator i sees exactly
// the operations routed to shard i, in stream order. Close folds the
// accumulators into the analyzer's result. Analyzers are single-use:
// construct a fresh one per run.
type Analyzer interface {
	Open(shards int) []Accumulator
	Close()
}

// GlobalAnalyzer marks analyses whose state cannot be partitioned by
// file handle (for example the namespace hierarchy, where a directory's
// edges are learned from other files' lookups). The engine calls
// Open(1) and streams every operation, in order, to the single
// accumulator on a dedicated goroutine.
type GlobalAnalyzer interface {
	Analyzer
	// Unsharded is a marker; it is never called.
	Unsharded()
}

// Stats summarizes a completed run.
type Stats struct {
	// Ops is the number of operations processed.
	Ops int64
	// MinT and MaxT are the earliest and latest call times seen.
	MinT, MaxT float64
}

// Span reports MaxT - MinT, the trace window in seconds.
func (s Stats) Span() float64 {
	if s.Ops == 0 {
		return 0
	}
	return s.MaxT - s.MinT
}

// router assigns each op to the shard that owns the file it affects.
// Operations that create name → handle bindings are routed by the new
// handle; removes and renames are resolved through the binding map the
// same way the block-lifetime analysis resolves them, so a shard's
// reducers always see the complete story of their files.
type router struct {
	shards uint64
	names  map[binding]core.FH
}

// binding is one (directory, name) edge in the router's name map.
type binding struct {
	dir  core.FH
	name string
}

func newRouter(shards int) *router {
	return &router{
		shards: uint64(shards),
		names:  make(map[binding]core.FH),
	}
}

// mix32 finalizes an interned ID into a well-spread hash (the 32-bit
// murmur3 finalizer). Interned IDs are small dense integers, so without
// mixing, ID % shards would correlate with arrival order.
func mix32(v uint32) uint64 {
	v ^= v >> 16
	v *= 0x85ebca6b
	v ^= v >> 13
	v *= 0xc2b2ae35
	v ^= v >> 16
	return uint64(v)
}

func (r *router) shard(op *core.Op) int {
	fh, byClient := r.key(op)
	if r.shards == 1 {
		// Binding maintenance inside key() still ran, so the map stays
		// bounded and identical whatever the shard count; only the
		// hash is skipped.
		return 0
	}
	if byClient {
		return int(mix32(op.Client^0x9e3779b9) % r.shards)
	}
	return int(mix32(uint32(fh)) % r.shards)
}

// key computes the routing key and maintains the binding map — the two
// are inseparable: routing a remove needs the binding, and the binding
// lifecycle must be identical at every worker count. byClient reports a
// handleless op that routes by client instead.
func (r *router) key(op *core.Op) (fh core.FH, byClient bool) {
	switch op.Proc {
	case core.ProcLookup, core.ProcCreate, core.ProcMkdir, core.ProcSymlink:
		// The op names a (possibly new) file: bind and route by it.
		if op.Name != "" && op.NewFH != 0 {
			r.names[binding{op.FH, op.Name}] = op.NewFH
		}
		if op.NewFH != 0 {
			return op.NewFH, false
		}
	case core.ProcRename:
		// The moved file's shard must see the rename so its binding
		// follows, exactly as blockLifeState.trackNames applies it.
		k := binding{op.FH, op.Name}
		if fh, ok := r.names[k]; ok {
			delete(r.names, k)
			r.names[binding{op.FH2, op.Name2}] = fh
			return fh, false
		}
	case core.ProcRemove, core.ProcRmdir:
		// Route the removal to the shard owning the removed object,
		// dropping the binding only on success — a failed remove
		// leaves the name in place, mirroring the analyses. (The
		// per-shard analyses ignore rmdir, so for them the routing
		// choice is immaterial; resolving it here keeps the binding
		// map from growing forever on mkdir/rmdir churn.)
		k := binding{op.FH, op.Name}
		if fh, ok := r.names[k]; ok {
			if op.OK() {
				delete(r.names, k)
			}
			return fh, false
		}
	}
	if op.FH != 0 {
		return op.FH, false
	}
	// Handleless ops (null, fsstat against the root, ...): spread by
	// client so no shard becomes a hot spot.
	return 0, true
}

// Run streams src through the engine, feeding every analyzer, and
// returns stream statistics. On a source error the workers are drained
// and the error returned; analyzer results are then undefined. Run is
// the batch loop over a Live engine, so the offline path and the
// daemon path (cmd/nfsmond) are the same machinery.
func Run(cfg Config, src OpSource, analyzers ...Analyzer) (Stats, error) {
	lv := NewLive(cfg, analyzers...)
	for {
		op, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			stats := lv.Stats()
			lv.Abort()
			return stats, err
		}
		lv.Feed(op)
	}
	return lv.Finish(), nil
}

// RunSlice runs analyzers over an in-memory op slice; it cannot fail.
func RunSlice(cfg Config, ops []*core.Op, analyzers ...Analyzer) Stats {
	stats, _ := Run(cfg, SliceOps(ops), analyzers...)
	return stats
}
