package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// fullSet is the shared analyzerSet plus the names stream, so the
// partition grid covers every analyzer with partial-state support.
type fullSet struct {
	*analyzerSet
	names *NamesAnalyzer
}

func newFullSet(span float64) *fullSet {
	return &fullSet{analyzerSet: newAnalyzerSet(span), names: &NamesAnalyzer{}}
}

func (s *fullSet) all() []Analyzer { return append(s.analyzers(), s.names) }

// fingerprint renders every analyzer's result into one comparable
// string — the same projections the CLI renders, so equality here means
// byte-identical tables.
func (s *fullSet) fingerprint(stats Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v\n", stats)
	fmt.Fprintf(&b, "summary=%+v\n", *s.summary.Result)
	hr := s.hourly.Result
	for i := 0; i < hr.Ops.NumBuckets(); i++ {
		fmt.Fprintf(&b, "hour%d=%v/%v/%v/%v/%v\n", i, hr.Ops.Bucket(i), hr.ReadOps.Bucket(i),
			hr.WriteOps.Bucket(i), hr.BytesRead.Bucket(i), hr.BytesWrite.Bucket(i))
	}
	fmt.Fprintf(&b, "raw=%+v\nproc=%+v\n", s.rawRuns.Table(), s.procRuns.Table())
	bl := s.blockLife.Result
	fmt.Fprintf(&b, "blocklife=%d/%v/%d/%v/%d n=%d p50=%v p90=%v\n",
		bl.Births, bl.BirthCause, bl.Deaths, bl.DeathCause, bl.EndSurplus,
		bl.Lifetimes.N(), bl.Lifetimes.Percentile(50), bl.Lifetimes.Percentile(90))
	fmt.Fprintf(&b, "sweep=%+v\n", s.sweep.Result)
	fmt.Fprintf(&b, "peak=%+v\nmailbox=%d/%d\n", s.peak.Result, s.mailbox.MailboxBytes, s.mailbox.TotalBytes)
	fmt.Fprintf(&b, "hier=%v\n", s.hier.Coverage)
	rep := s.names.ReportAt(stats.MaxT)
	for _, cs := range rep.PerCategory {
		fmt.Fprintf(&b, "names %s=%d/%d p50=%v p98=%v\n", cs.Category, cs.Created, cs.Deleted,
			cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98))
	}
	fmt.Fprintf(&b, "names acc=%v/%v/%v\n", rep.LockFracOfDeleted, rep.SizeAccuracy, rep.LifeAccuracy)
	return b.String()
}

// TestRunPartitionedMatchesRunSlice is the tentpole guarantee at the
// engine level: serializing every analyzer's state between pieces and
// resuming produces results identical to one uninterrupted pass, for
// every partition count × worker count combination.
func TestRunPartitionedMatchesRunSlice(t *testing.T) {
	ops := genOps(t, 0.5)
	if len(ops) == 0 {
		t.Fatal("no ops generated")
	}
	span := ops[len(ops)-1].T - ops[0].T

	ref := newFullSet(span)
	refStats := RunSlice(Config{Workers: 1}, ops, ref.all()...)
	want := ref.fingerprint(refStats)

	for _, pieces := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			cut := make([][]*core.Op, pieces)
			for i := range cut {
				cut[i] = ops[i*len(ops)/pieces : (i+1)*len(ops)/pieces]
			}
			set := newFullSet(span)
			stats, err := RunPartitioned(Config{Workers: workers}, cut, set.all()...)
			if err != nil {
				t.Fatalf("pieces=%d workers=%d: %v", pieces, workers, err)
			}
			if got := set.fingerprint(stats); got != want {
				t.Errorf("pieces=%d workers=%d: results differ from single pass:\n--- want ---\n%s--- got ---\n%s",
					pieces, workers, want, got)
			}
		}
	}
}

// encodePartial runs analyzers over ops and returns the serialized
// partial state.
func encodePartial(t testing.TB, label string, ops []*core.Op, parent *Partial, analyzers ...Analyzer) []byte {
	t.Helper()
	lv := NewLive(Config{Workers: 2}, analyzers...)
	if parent != nil {
		if err := parent.Resume(lv); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range ops {
		lv.Feed(op)
	}
	lv.Quiesce()
	// Join statistics accumulate across a resume chain, as the CLI does.
	join := core.JoinStats{Calls: int64(len(ops))}
	if parent != nil {
		total := parent.Join
		total.Merge(join)
		join = total
	}
	var buf bytes.Buffer
	if err := WritePartial(&buf, lv, label, join, parent); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWritePartialRequiresQuiescedLive(t *testing.T) {
	lv := NewLive(Config{Workers: 1}, &SummaryAnalyzer{})
	defer lv.Abort()
	var buf bytes.Buffer
	if err := WritePartial(&buf, lv, "summary", core.JoinStats{}, nil); err == nil {
		t.Fatal("WritePartial accepted a running Live")
	}
}

func TestResumeValidation(t *testing.T) {
	ops := genOps(t, 0.25)
	data := encodePartial(t, "summary", ops, nil, &SummaryAnalyzer{})
	p, err := ReadPartial(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Resume into a Live that already ingested is rejected.
	lv := NewLive(Config{Workers: 1}, &SummaryAnalyzer{})
	lv.Feed(ops[0])
	if err := p.Resume(lv); err == nil {
		t.Fatal("Resume into a fed Live accepted")
	}
	lv.Abort()

	// Resume after Finish is rejected.
	lv2 := NewLive(Config{Workers: 1}, &SummaryAnalyzer{})
	lv2.Feed(ops[0])
	lv2.Finish()
	if err := p.Resume(lv2); err == nil {
		t.Fatal("Resume after Finish accepted")
	}

	// Decoding into a different analysis fails with a structured error.
	lv3 := NewLive(Config{Workers: 1}, &HierarchyAnalyzer{Warmup: 600})
	err = p.Resume(lv3)
	lv3.Abort()
	if err == nil || !errors.Is(err, state.ErrCorrupt) {
		t.Fatalf("cross-analysis resume: %v", err)
	}
}

func TestMergePartialsValidation(t *testing.T) {
	ops := genOps(t, 0.25)
	mid := len(ops) / 2
	mk := func(label string, ops []*core.Op, parent *Partial, analyzers ...Analyzer) *Partial {
		p, err := ReadPartial(bytes.NewReader(encodePartial(t, label, ops, parent, analyzers...)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, _, err := MergePartials([]Analyzer{&SummaryAnalyzer{}}, nil); err == nil {
		t.Fatal("empty merge accepted")
	}

	// Sequential analyzers refuse independent merges.
	a := mk("hierarchy", ops[:mid], nil, &HierarchyAnalyzer{Warmup: 600})
	b := mk("hierarchy", ops[mid:], nil, &HierarchyAnalyzer{Warmup: 600})
	_, _, err := MergePartials([]Analyzer{&HierarchyAnalyzer{Warmup: 600}}, []*Partial{a, b})
	if err == nil || !strings.Contains(err.Error(), "chain the pieces") {
		t.Fatalf("independent merge of sequential analysis: %v", err)
	}

	// A chain with its first link missing is rejected.
	chained := mk("hierarchy", ops[mid:], a, &HierarchyAnalyzer{Warmup: 600})
	_, _, err = MergePartials([]Analyzer{&HierarchyAnalyzer{Warmup: 600}}, []*Partial{chained})
	if err == nil || !strings.Contains(err.Error(), "chained states") {
		t.Fatalf("headless chain: %v", err)
	}

	// A valid chain renders from the last link.
	sum1 := mk("summary", ops[:mid], nil, &SummaryAnalyzer{})
	sum2 := mk("summary", ops[mid:], sum1, &SummaryAnalyzer{})
	final := &SummaryAnalyzer{}
	stats, join, err := MergePartials([]Analyzer{final}, []*Partial{sum1, sum2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != int64(len(ops)) {
		t.Fatalf("chained stats.Ops = %d, want %d", stats.Ops, len(ops))
	}
	if join.Calls != int64(len(ops)) {
		t.Fatalf("chained join.Calls = %d, want %d", join.Calls, len(ops))
	}

	ref := &SummaryAnalyzer{}
	RunSlice(Config{Workers: 1}, ops, ref)
	if *final.Result != *ref.Result {
		t.Fatalf("chained merge differs:\n got %+v\nwant %+v", *final.Result, *ref.Result)
	}
}

// TestVersionSkewThroughPartial checks the CLI-visible failure mode: a
// state file from a future format version is rejected with an error
// naming both versions.
func TestVersionSkewThroughPartial(t *testing.T) {
	ops := genOps(t, 0.25)
	data := encodePartial(t, "summary", ops, nil, &SummaryAnalyzer{})
	future := append([]byte(nil), data...)
	future[8] = state.Version + 1 // version field follows the 8-byte magic, LE
	future[9] = 0
	_, err := ReadPartial(bytes.NewReader(future))
	var ve *state.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("future version: %v", err)
	}
	if ve.Got != state.Version+1 || ve.Supported != state.Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	for _, sub := range []string{fmt.Sprint(ve.Got), fmt.Sprint(ve.Supported)} {
		if !strings.Contains(ve.Error(), sub) {
			t.Fatalf("message %q does not name version %s", ve.Error(), sub)
		}
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus for
// FuzzStateDecode when NFSSTATE_WRITE_CORPUS=1 is set — real state
// files plus characteristic hostile mutations, so CI's fuzz smoke
// starts from meaningful coverage:
//
//	NFSSTATE_WRITE_CORPUS=1 go test ./internal/pipeline -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("NFSSTATE_WRITE_CORPUS") != "1" {
		t.Skip("set NFSSTATE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzStateDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ops := genOps(t, 0.1)
	summary := encodePartial(t, "summary", ops, nil, &SummaryAnalyzer{})
	names := encodePartial(t, "names", ops, nil, &NamesAnalyzer{})
	truncated := summary[:len(summary)*2/3]
	flipped := append([]byte(nil), summary...)
	flipped[len(flipped)/2] ^= 0x01
	seeds := map[string][]byte{
		"seed-summary":   summary,
		"seed-names":     names,
		"seed-truncated": truncated,
		"seed-bitflip":   flipped,
		"seed-magic":     []byte("nfsstate"),
	}
	for name, data := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzStateDecode feeds hostile bytes through the full partial-state
// read path: whatever the mutation — truncation, bit flips, hostile
// counts, fake dictionaries — the decoder must return an error wrapping
// state.ErrCorrupt (or a *state.VersionError), never panic, and never
// silently fold garbage into an analyzer.
func FuzzStateDecode(f *testing.F) {
	ops := genOps(f, 0.1)
	f.Add(encodePartial(f, "summary", ops, nil, &SummaryAnalyzer{}))
	f.Add(encodePartial(f, "names", ops, nil, &NamesAnalyzer{}))
	f.Add(encodePartial(f, "blocklife", ops, nil,
		&BlockLifeAnalyzer{Start: 0, Phase: 3600, Margin: 3600}))
	f.Add([]byte("nfsstate"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPartial(bytes.NewReader(data))
		if err != nil {
			var ve *state.VersionError
			if !errors.Is(err, state.ErrCorrupt) && !errors.As(err, &ve) {
				t.Fatalf("unstructured error: %v", err)
			}
			return
		}
		// Structurally valid: resuming into analyzers must either work
		// or fail structurally — the checksum has passed, so semantic
		// validation carries the rest.
		lv := NewLive(Config{Workers: 1}, &SummaryAnalyzer{})
		err = p.Resume(lv)
		lv.Abort()
		if err != nil && !errors.Is(err, state.ErrCorrupt) {
			t.Fatalf("unstructured resume error: %v", err)
		}
	})
}
