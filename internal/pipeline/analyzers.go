package pipeline

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// This file adapts each of the paper's analyses to the engine's
// shard/merge contract. Every sharded analyzer here is exact: its
// merged result is identical to a single sequential pass, either
// because its state partitions by file handle (the router guarantees a
// file's full history lands on one shard) or because its reduction is
// an integer sum.

// funcAcc adapts a consume function to Accumulator.
type funcAcc struct{ f func(*core.Op) }

func (a funcAcc) Consume(op *core.Op) { a.f(op) }

// SummaryAnalyzer computes analysis.Summarize over the stream
// (Tables 1 and 2).
type SummaryAnalyzer struct {
	// Days scales per-day averages; it may also be set on the Result
	// after the run when the span is only known then.
	Days float64
	// Result is valid after the run.
	Result *analysis.Summary

	parts []*analysis.Summary
}

// Open implements Analyzer.
func (a *SummaryAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]*analysis.Summary, shards)
	for i := range accs {
		s := analysis.NewSummary(a.Days)
		a.parts[i] = s
		accs[i] = funcAcc{s.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *SummaryAnalyzer) Close() {
	a.Result = analysis.NewSummary(a.Days)
	for _, p := range a.parts {
		a.Result.Merge(p)
	}
}

// Fork implements ForkableAnalyzer.
func (a *SummaryAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &SummaryAnalyzer{Days: a.Days}
	f.parts = make([]*analysis.Summary, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		s := p.Clone()
		f.parts[i] = s
		accs[i] = funcAcc{s.Add}
	}
	return f, accs
}

// HourlyAnalyzer computes analysis.Hourly over the stream (Table 5,
// Figure 4). Span > 0 fixes the hour buckets at construction; Span == 0
// accumulates open-ended buckets — fold the Result with FixedTo once
// the span is known (it is identical to having fixed it up front,
// because buckets anchor at t=0 either way).
type HourlyAnalyzer struct {
	Span float64
	// Result is valid after the run.
	Result *analysis.HourlySeries

	parts []*analysis.HourlySeries
}

func (a *HourlyAnalyzer) newSeries() *analysis.HourlySeries {
	if a.Span > 0 {
		return analysis.NewHourly(a.Span)
	}
	return analysis.NewHourlyOpen()
}

// Open implements Analyzer.
func (a *HourlyAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]*analysis.HourlySeries, shards)
	for i := range accs {
		h := a.newSeries()
		a.parts[i] = h
		accs[i] = funcAcc{h.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *HourlyAnalyzer) Close() {
	a.Result = a.newSeries()
	for _, p := range a.parts {
		a.Result.Merge(p)
	}
}

// Fork implements ForkableAnalyzer.
func (a *HourlyAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &HourlyAnalyzer{Span: a.Span}
	f.parts = make([]*analysis.HourlySeries, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		h := p.Clone()
		f.parts[i] = h
		accs[i] = funcAcc{h.Add}
	}
	return f, accs
}

// RunsAnalyzer detects access runs (Table 3, Figures 2 and 5). Each
// shard accumulates per-file access lists and detects runs over its own
// files at close; the run list is the concatenation in shard order.
// Every downstream consumer (Tabulate, SizeProfile,
// SequentialityProfile) aggregates per-run counts, so the concatenation
// order cannot affect any table.
type RunsAnalyzer struct {
	Config analysis.RunConfig
	// Result is valid after the run.
	Result []analysis.Run

	parts []analysis.AccessMap
}

// Open implements Analyzer.
func (a *RunsAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]analysis.AccessMap, shards)
	for i := range accs {
		m := make(analysis.AccessMap)
		a.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *RunsAnalyzer) Close() {
	a.Result = nil
	for _, m := range a.parts {
		a.Result = append(a.Result, analysis.DetectRunsInFiles(m, a.Config)...)
	}
}

// Table reports Tabulate over the detected runs.
func (a *RunsAnalyzer) Table() analysis.RunTable { return analysis.Tabulate(a.Result) }

// Fork implements ForkableAnalyzer.
func (a *RunsAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &RunsAnalyzer{Config: a.Config}
	f.parts = make([]analysis.AccessMap, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		m := p.Clone()
		f.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return f, accs
}

// BlockLifeAnalyzer runs the create-based block-lifetime analysis
// (Table 4, Figure 3). Block state is per file, and the router delivers
// removes and renames to the owning shard, so per-shard streams merge
// exactly.
type BlockLifeAnalyzer struct {
	Start, Phase, Margin float64
	// Result is valid after the run.
	Result *analysis.BlockLifeResult

	parts []*analysis.BlockLifeStream
}

// Open implements Analyzer.
func (a *BlockLifeAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]*analysis.BlockLifeStream, shards)
	for i := range accs {
		s := analysis.NewBlockLifeStream(a.Start, a.Phase, a.Margin)
		a.parts[i] = s
		accs[i] = s
	}
	return accs
}

// Close implements Analyzer.
func (a *BlockLifeAnalyzer) Close() {
	results := make([]*analysis.BlockLifeResult, len(a.parts))
	for i, s := range a.parts {
		results[i] = s.Result()
	}
	a.Result = analysis.MergeBlockLife(results...)
}

// Fork implements ForkableAnalyzer.
func (a *BlockLifeAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &BlockLifeAnalyzer{Start: a.Start, Phase: a.Phase, Margin: a.Margin}
	f.parts = make([]*analysis.BlockLifeStream, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		s := p.Clone()
		f.parts[i] = s
		accs[i] = s
	}
	return f, accs
}

// ReorderSweepAnalyzer measures swapped accesses per reorder-window
// size (Figure 1). Sorting windows apply per file, so shards sweep
// their own files and the swap counts sum.
type ReorderSweepAnalyzer struct {
	WindowsMS []float64
	// Result is valid after the run.
	Result []analysis.ReorderSweepPoint

	parts []analysis.AccessMap
}

// Open implements Analyzer.
func (a *ReorderSweepAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]analysis.AccessMap, shards)
	for i := range accs {
		m := make(analysis.AccessMap)
		a.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *ReorderSweepAnalyzer) Close() {
	swaps := make([]int, len(a.WindowsMS))
	total := 0
	for _, m := range a.parts {
		s, t := analysis.SweepFiles(m, a.WindowsMS)
		for i := range swaps {
			swaps[i] += s[i]
		}
		total += t
	}
	a.Result = analysis.SweepPoints(a.WindowsMS, swaps, total)
}

// Fork implements ForkableAnalyzer.
func (a *ReorderSweepAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &ReorderSweepAnalyzer{WindowsMS: a.WindowsMS}
	f.parts = make([]analysis.AccessMap, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		m := p.Clone()
		f.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return f, accs
}

// PeakHourAnalyzer counts peak-hour file instances by category
// (Table 1). Instance sets partition by handle, so shard counts sum.
type PeakHourAnalyzer struct {
	From, To float64
	// Result is valid after the run.
	Result analysis.PeakHourResult

	parts []*analysis.PeakHourInstances
}

// Open implements Analyzer.
func (a *PeakHourAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]*analysis.PeakHourInstances, shards)
	for i := range accs {
		p := analysis.NewPeakHourInstances(a.From, a.To)
		a.parts[i] = p
		accs[i] = funcAcc{p.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *PeakHourAnalyzer) Close() {
	results := make([]analysis.PeakHourResult, len(a.parts))
	for i, p := range a.parts {
		results[i] = p.Finish()
	}
	a.Result = analysis.MergePeakHour(results...)
}

// Fork implements ForkableAnalyzer.
func (a *PeakHourAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &PeakHourAnalyzer{From: a.From, To: a.To}
	f.parts = make([]*analysis.PeakHourInstances, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		c := p.Clone()
		f.parts[i] = c
		accs[i] = funcAcc{c.Add}
	}
	return f, accs
}

// MailboxAnalyzer computes the mailbox share of data bytes (Table 1).
type MailboxAnalyzer struct {
	// MailboxBytes and TotalBytes are valid after the run.
	MailboxBytes, TotalBytes uint64

	parts []*analysis.MailboxShare
}

// Open implements Analyzer.
func (a *MailboxAnalyzer) Open(shards int) []Accumulator {
	accs := make([]Accumulator, shards)
	a.parts = make([]*analysis.MailboxShare, shards)
	for i := range accs {
		m := analysis.NewMailboxShare()
		a.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return accs
}

// Close implements Analyzer.
func (a *MailboxAnalyzer) Close() {
	results := make([]analysis.MailboxShareResult, len(a.parts))
	for i, m := range a.parts {
		results[i] = m.Finish()
	}
	a.MailboxBytes, a.TotalBytes = analysis.MergeMailboxShare(results...)
}

// Fork implements ForkableAnalyzer.
func (a *MailboxAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &MailboxAnalyzer{}
	f.parts = make([]*analysis.MailboxShare, len(a.parts))
	accs := make([]Accumulator, len(a.parts))
	for i, p := range a.parts {
		m := p.Clone()
		f.parts[i] = m
		accs[i] = funcAcc{m.Add}
	}
	return f, accs
}

// HierarchyAnalyzer measures §4.1.1 namespace-reconstruction coverage.
// The hierarchy's state is inherently global — a directory becomes
// "known" through other files' lookups — so this is a GlobalAnalyzer:
// it sees the whole ordered stream on its own goroutine, overlapping
// the sharded work instead of partitioning it.
type HierarchyAnalyzer struct {
	Warmup float64
	// Coverage is valid after the run.
	Coverage float64

	acc *hierarchyAcc
}

// Unsharded marks HierarchyAnalyzer as global.
func (a *HierarchyAnalyzer) Unsharded() {}

// Open implements Analyzer.
func (a *HierarchyAnalyzer) Open(shards int) []Accumulator {
	a.acc = &hierarchyAcc{h: analysis.NewHierarchy(), warmup: a.Warmup}
	return []Accumulator{a.acc}
}

// Close implements Analyzer.
func (a *HierarchyAnalyzer) Close() {
	a.Coverage = 0
	if a.acc != nil && a.acc.total > 0 {
		a.Coverage = float64(a.acc.resolvable) / float64(a.acc.total)
	}
}

// Fork implements ForkableAnalyzer. The forked analyzer is itself a
// GlobalAnalyzer, so a snapshot continuation feeds it the full ordered
// stream, exactly as the engine does.
func (a *HierarchyAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &HierarchyAnalyzer{Warmup: a.Warmup}
	f.acc = &hierarchyAcc{
		h:          a.acc.h.Clone(),
		warmup:     a.acc.warmup,
		started:    a.acc.started,
		start:      a.acc.start,
		resolvable: a.acc.resolvable,
		total:      a.acc.total,
	}
	return f, []Accumulator{f.acc}
}

// NamesAnalyzer runs the §6.3 filename analysis over the stream. Name
// bindings and file instances span directories arbitrarily, so like the
// hierarchy it is a GlobalAnalyzer: one ordered pass on a dedicated
// goroutine, overlapping the sharded analyses.
type NamesAnalyzer struct {
	stream *analysis.NamesStream
}

// Unsharded marks NamesAnalyzer as global.
func (a *NamesAnalyzer) Unsharded() {}

// Open implements Analyzer.
func (a *NamesAnalyzer) Open(shards int) []Accumulator {
	a.stream = analysis.NewNamesStream()
	return []Accumulator{funcAcc{a.stream.Consume}}
}

// Close implements Analyzer.
func (a *NamesAnalyzer) Close() {}

// ReportAt builds the report as of windowEnd. Valid after the run (or
// any time the stream is quiescent — Report does not consume state).
func (a *NamesAnalyzer) ReportAt(windowEnd float64) *analysis.NameReport {
	return a.stream.Report(windowEnd)
}

// Fork implements ForkableAnalyzer.
func (a *NamesAnalyzer) Fork() (Analyzer, []Accumulator) {
	f := &NamesAnalyzer{stream: a.stream.Clone()}
	return f, []Accumulator{funcAcc{f.stream.Consume}}
}

type hierarchyAcc struct {
	h      *analysis.Hierarchy
	warmup float64

	started           bool
	start             float64
	resolvable, total int64
}

func (c *hierarchyAcc) Consume(op *core.Op) {
	if !c.started {
		c.start = op.T + c.warmup
		c.started = true
	}
	if op.T >= c.start && op.FH != 0 {
		c.total++
		if c.h.Known(op.FH) {
			c.resolvable++
		}
	}
	c.h.Observe(op)
}
