package pipeline

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/workload"
)

// genRecords simulates a small CAMPUS trace and returns its raw records.
func genRecords(tb testing.TB, days float64) []*core.Record {
	tb.Helper()
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	gen := workload.NewCampus(workload.DefaultCampusConfig(3, days, 20011021), sorter)
	gen.Run()
	sorter.Flush()
	return sink.Records
}

func genOps(tb testing.TB, days float64) []*core.Op {
	tb.Helper()
	ops, _ := core.Join(genRecords(tb, days))
	return ops
}

// analyzerSet builds one of every sharded analyzer plus the global
// hierarchy analyzer, over the given span.
type analyzerSet struct {
	summary   *SummaryAnalyzer
	hourly    *HourlyAnalyzer
	rawRuns   *RunsAnalyzer
	procRuns  *RunsAnalyzer
	blockLife *BlockLifeAnalyzer
	sweep     *ReorderSweepAnalyzer
	peak      *PeakHourAnalyzer
	mailbox   *MailboxAnalyzer
	hier      *HierarchyAnalyzer
}

var sweepWindows = []float64{0, 1, 5, 10, 50}

func newAnalyzerSet(span float64) *analyzerSet {
	return &analyzerSet{
		summary:   &SummaryAnalyzer{Days: span / workload.Day},
		hourly:    &HourlyAnalyzer{Span: span},
		rawRuns:   &RunsAnalyzer{Config: analysis.RunConfig{IdleGap: 30, JumpBlocks: 1}},
		procRuns:  &RunsAnalyzer{Config: analysis.DefaultRunConfig(10)},
		blockLife: &BlockLifeAnalyzer{Start: 0, Phase: span / 2, Margin: span / 2},
		sweep:     &ReorderSweepAnalyzer{WindowsMS: sweepWindows},
		peak:      &PeakHourAnalyzer{From: 10 * workload.Hour, To: 11 * workload.Hour},
		mailbox:   &MailboxAnalyzer{},
		hier:      &HierarchyAnalyzer{Warmup: 600},
	}
}

func (s *analyzerSet) analyzers() []Analyzer {
	return []Analyzer{s.summary, s.hourly, s.rawRuns, s.procRuns,
		s.blockLife, s.sweep, s.peak, s.mailbox, s.hier}
}

// TestShardMergeMatchesSequential is the core determinism guarantee:
// every analyzer's merged result at 1, 2, and 8 workers equals the
// slice-based sequential analysis.
func TestShardMergeMatchesSequential(t *testing.T) {
	ops := genOps(t, 0.5)
	if len(ops) == 0 {
		t.Fatal("no ops generated")
	}
	span := ops[len(ops)-1].T - ops[0].T
	days := span / workload.Day

	wantSummary := analysis.Summarize(ops, days)
	wantHourly := analysis.Hourly(ops, span)
	wantRaw := analysis.Tabulate(analysis.DetectRuns(ops,
		analysis.RunConfig{IdleGap: 30, JumpBlocks: 1}))
	wantProcRuns := analysis.DetectRuns(ops, analysis.DefaultRunConfig(10))
	wantProc := analysis.Tabulate(wantProcRuns)
	wantSize := analysis.SizeProfile(wantProcRuns)
	wantSeq := analysis.SequentialityProfile(wantProcRuns)
	wantLife := analysis.BlockLife(ops, 0, span/2, span/2)
	wantSweep := analysis.ReorderSweep(ops, sweepWindows)
	wantCov := analysis.CoverageAfterWarmup(ops, 600)

	for _, workers := range []int{1, 2, 3, 8} {
		for _, batch := range []int{0, 7} {
			set := newAnalyzerSet(span)
			set.summary.Days = days
			stats := RunSlice(Config{Workers: workers, BatchSize: batch}, ops, set.analyzers()...)

			if stats.Ops != int64(len(ops)) {
				t.Errorf("workers=%d: stats.Ops = %d, want %d", workers, stats.Ops, len(ops))
			}
			if stats.Span() != span {
				t.Errorf("workers=%d: stats.Span() = %v, want %v", workers, stats.Span(), span)
			}
			if !reflect.DeepEqual(set.summary.Result, wantSummary) {
				t.Errorf("workers=%d batch=%d: summary mismatch:\n got %+v\nwant %+v",
					workers, batch, set.summary.Result, wantSummary)
			}
			for i := 0; i < wantHourly.Ops.NumBuckets(); i++ {
				if set.hourly.Result.Ops.Bucket(i) != wantHourly.Ops.Bucket(i) ||
					set.hourly.Result.BytesRead.Bucket(i) != wantHourly.BytesRead.Bucket(i) ||
					set.hourly.Result.BytesWrite.Bucket(i) != wantHourly.BytesWrite.Bucket(i) {
					t.Fatalf("workers=%d: hourly bucket %d mismatch", workers, i)
				}
			}
			if got := set.rawRuns.Table(); !reflect.DeepEqual(got, wantRaw) {
				t.Errorf("workers=%d: raw run table mismatch:\n got %+v\nwant %+v", workers, got, wantRaw)
			}
			if got := set.procRuns.Table(); !reflect.DeepEqual(got, wantProc) {
				t.Errorf("workers=%d: processed run table mismatch:\n got %+v\nwant %+v", workers, got, wantProc)
			}
			if got := analysis.SizeProfile(set.procRuns.Result); !reflect.DeepEqual(got, wantSize) {
				t.Errorf("workers=%d: size profile mismatch", workers)
			}
			if got := analysis.SequentialityProfile(set.procRuns.Result); !reflect.DeepEqual(got, wantSeq) {
				t.Errorf("workers=%d: sequentiality profile mismatch", workers)
			}
			gotLife := set.blockLife.Result
			if gotLife.Births != wantLife.Births || gotLife.Deaths != wantLife.Deaths ||
				gotLife.BirthCause != wantLife.BirthCause || gotLife.DeathCause != wantLife.DeathCause ||
				gotLife.EndSurplus != wantLife.EndSurplus {
				t.Errorf("workers=%d: block life mismatch:\n got %+v\nwant %+v", workers, gotLife, wantLife)
			}
			if gotLife.Lifetimes.N() != wantLife.Lifetimes.N() {
				t.Errorf("workers=%d: lifetime samples %d, want %d",
					workers, gotLife.Lifetimes.N(), wantLife.Lifetimes.N())
			}
			for _, p := range []float64{1, 25, 50, 90, 99} {
				if gotLife.Lifetimes.Percentile(p) != wantLife.Lifetimes.Percentile(p) {
					t.Errorf("workers=%d: lifetime p%.0f mismatch", workers, p)
				}
			}
			if !reflect.DeepEqual(set.sweep.Result, wantSweep) {
				t.Errorf("workers=%d: reorder sweep mismatch:\n got %+v\nwant %+v",
					workers, set.sweep.Result, wantSweep)
			}
			if set.hier.Coverage != wantCov {
				t.Errorf("workers=%d: hierarchy coverage %v, want %v", workers, set.hier.Coverage, wantCov)
			}
		}
	}
}

// TestPeakAndMailboxStableAcrossWorkers pins the Table 1 reductions:
// identical results at every worker count (the single-worker pass is
// the sequential reference).
func TestPeakAndMailboxStableAcrossWorkers(t *testing.T) {
	ops := genOps(t, 0.5)
	span := ops[len(ops)-1].T - ops[0].T

	base := newAnalyzerSet(span)
	RunSlice(Config{Workers: 1}, ops, base.peak, base.mailbox)
	if base.peak.Result.Instances == 0 {
		t.Fatal("no peak-hour instances; widen the window")
	}
	if base.mailbox.TotalBytes == 0 {
		t.Fatal("no data bytes accounted")
	}
	for _, workers := range []int{2, 8} {
		set := newAnalyzerSet(span)
		RunSlice(Config{Workers: workers}, ops, set.peak, set.mailbox)
		if set.peak.Result != base.peak.Result {
			t.Errorf("workers=%d: peak-hour result %+v, want %+v",
				workers, set.peak.Result, base.peak.Result)
		}
		if set.mailbox.MailboxBytes != base.mailbox.MailboxBytes ||
			set.mailbox.TotalBytes != base.mailbox.TotalBytes {
			t.Errorf("workers=%d: mailbox share %d/%d, want %d/%d", workers,
				set.mailbox.MailboxBytes, set.mailbox.TotalBytes,
				base.mailbox.MailboxBytes, base.mailbox.TotalBytes)
		}
	}
}

// TestJoinerMatchesJoin checks the streaming join against the
// materializing core.Join, op for op, on both clean and lossy traces.
func TestJoinerMatchesJoin(t *testing.T) {
	clean := genRecords(t, 0.25)

	lossySink := &client.SliceSink{}
	port := netem.NewMirrorPort()
	port.Rate = 120e3
	lossy := &client.LossySink{Next: client.NewSortingSink(lossySink), Port: port}
	gen := workload.NewCampus(workload.DefaultCampusConfig(3, 0.25, 20011021), lossy)
	gen.Run()
	lossy.Next.(*client.SortingSink).Flush()

	for name, records := range map[string][]*core.Record{
		"clean": clean, "lossy": lossySink.Records,
	} {
		wantOps, wantStats := core.Join(records)

		j := NewJoiner(&core.SliceSource{Records: records})
		var gotOps []*core.Op
		for {
			op, err := j.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: joiner error: %v", name, err)
			}
			gotOps = append(gotOps, op)
		}

		if j.Stats() != wantStats {
			t.Errorf("%s: stats %+v, want %+v", name, j.Stats(), wantStats)
		}
		if len(gotOps) != len(wantOps) {
			t.Fatalf("%s: %d ops, want %d", name, len(gotOps), len(wantOps))
		}
		for i := range gotOps {
			g, w := gotOps[i], wantOps[i]
			if g.T != w.T || g.Proc != w.Proc || g.FH != w.FH || g.Replied != w.Replied ||
				g.RT != w.RT || g.Offset != w.Offset {
				t.Fatalf("%s: op %d differs:\n got %+v\nwant %+v", name, i, g, w)
			}
		}
	}
}

// TestJoinerThroughEngine runs the full streaming path: records →
// Joiner → sharded engine, against the slice path.
func TestJoinerThroughEngine(t *testing.T) {
	records := genRecords(t, 0.25)
	ops, _ := core.Join(records)
	span := ops[len(ops)-1].T - ops[0].T
	want := analysis.Summarize(ops, 0)

	sum := &SummaryAnalyzer{}
	stats, err := Run(Config{Workers: 4}, NewJoiner(&core.SliceSource{Records: records}), sum)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != int64(len(ops)) {
		t.Errorf("stats.Ops = %d, want %d", stats.Ops, len(ops))
	}
	if stats.Span() != span {
		t.Errorf("stats.Span() = %v, want %v", stats.Span(), span)
	}
	if !reflect.DeepEqual(sum.Result, want) {
		t.Errorf("summary via joiner mismatch:\n got %+v\nwant %+v", sum.Result, want)
	}
}

// countingSource tracks how many records a consumer has pulled.
type countingSource struct {
	src  core.RecordSource
	read int
}

func (c *countingSource) Next() (*core.Record, error) {
	r, err := c.src.Next()
	if err == nil {
		c.read++
	}
	return r, err
}

// TestJoinerExpiresStaleCalls checks that one lost reply does not pin
// the release horizon: the joiner must keep streaming (and keep its
// memory bounded) instead of buffering the rest of the trace until
// EOF.
// TestJoinerXIDReuseSameTimestamp: a client reusing an xid at the same
// quantized timestamp after the first call completed must not unpin the
// release horizon. With (time, key) alone identifying heap entries, the
// second call's entry collided with the first's lazily deleted one and
// was discarded, releasing younger ops ahead of the still-pending call
// — a time-ordering violation downstream.
func TestJoinerXIDReuseSameTimestamp(t *testing.T) {
	rd := func(tm float64, kind byte, xid uint32) *core.Record {
		return &core.Record{Time: tm, Kind: kind, Client: 1, Port: 1, XID: xid,
			Proc: core.ProcRead, FH: core.InternFH("aa")}
	}
	records := []*core.Record{
		// An older call that never gets its reply pins the heap top, so
		// the lazy deletion below it cannot drain eagerly.
		rd(4.0, core.KindCall, 9),
		rd(5.0, core.KindCall, 1),
		rd(5.0, core.KindReply, 1), // quantized to the call's timestamp
		rd(5.0, core.KindCall, 1),  // xid reused at the same instant
		rd(5.0, core.KindReply, 1), // ... and matched at it too
		// Enough later traffic to push the expiry limit past t=5: with
		// (time, key) heap entries the second match saturated the single
		// gone flag, and expiring the ghost entry resolved to a missing
		// pending call (nil-record crash in FromPair).
		rd(400.0, core.KindCall, 3),
		rd(400.5, core.KindReply, 3),
	}
	j := NewJoiner(&core.SliceSource{Records: records})
	last := -1.0
	n := 0
	for {
		op, err := j.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if op.T < last {
			t.Fatalf("op %d out of order: T=%v after T=%v", n, op.T, last)
		}
		last = op.T
		n++
	}
	if n != 4 {
		t.Fatalf("joined %d ops, want 4", n)
	}
	if st := j.Stats(); st.Matched != 3 || st.UnmatchedCalls != 1 || st.OrphanReplies != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestJoinerExpiresStaleCalls(t *testing.T) {
	// A call at t=0 that never gets a reply, then hours of normal
	// call/reply traffic.
	records := []*core.Record{
		{Time: 0, Kind: core.KindCall, Client: 9, Port: 9, XID: 999, Proc: core.MustProc("read"), FH: core.InternFH("dead")},
	}
	for i := 1; i <= 4000; i++ {
		tm := float64(i)
		records = append(records,
			&core.Record{Time: tm, Kind: core.KindCall, Client: 1, Port: 1, XID: uint32(i), Proc: core.MustProc("read"), FH: core.InternFH("aa")},
			&core.Record{Time: tm + 0.001, Kind: core.KindReply, Client: 1, Port: 1, XID: uint32(i), Proc: core.MustProc("read")},
		)
	}

	cs := &countingSource{src: &core.SliceSource{Records: records}}
	j := NewJoiner(cs)
	op, err := j.Next()
	if err != nil {
		t.Fatal(err)
	}
	if op.T != 0 || op.Replied {
		t.Fatalf("first op = %+v, want the expired unmatched call at t=0", op)
	}
	if cs.read == len(records) {
		t.Fatalf("joiner consumed the whole source (%d records) before emitting: horizon stayed pinned", cs.read)
	}
	// The expiry threshold is DefaultMaxCallAge behind the stream, so
	// roughly that many seconds of records should have been read.
	if got := cs.read; got > 2*int(DefaultMaxCallAge)+10 {
		t.Errorf("consumed %d records before first op; expiry should trigger near t=%v", got, DefaultMaxCallAge)
	}

	n := 1
	for {
		if _, err := j.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4001 {
		t.Errorf("emitted %d ops, want 4001", n)
	}
	stats := j.Stats()
	if stats.UnmatchedCalls != 1 || stats.Matched != 4000 {
		t.Errorf("stats = %+v, want 1 unmatched, 4000 matched", stats)
	}
}

type errSource struct{ n int }

func (s *errSource) Next() (*core.Op, error) {
	if s.n == 0 {
		return nil, errors.New("boom")
	}
	s.n--
	return &core.Op{T: 1, Proc: core.MustProc("read"), FH: core.InternFH("aa")}, nil
}

// TestSourceErrorPropagates checks that a failing source shuts the
// workers down and surfaces the error.
func TestSourceErrorPropagates(t *testing.T) {
	sum := &SummaryAnalyzer{}
	_, err := Run(Config{Workers: 4}, &errSource{n: 10}, sum)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestEmptyStream checks the zero-op edge.
func TestEmptyStream(t *testing.T) {
	set := newAnalyzerSet(workload.Day)
	stats := RunSlice(Config{Workers: 4}, nil, set.analyzers()...)
	if stats.Ops != 0 || stats.Span() != 0 {
		t.Errorf("stats = %+v, want zero", stats)
	}
	if set.summary.Result.TotalOps != 0 {
		t.Errorf("summary counted ops on empty stream")
	}
}
