package pipeline

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/state"
)

// Partial states: a quiesced Live serializes every analyzer's
// mid-stream reduction (plus the router's name bindings and the stream
// statistics) into one state file. Another process reads it back and
// either resumes ingest from that exact point (checkpoint/resume, and
// the chain mode sequential analyses need) or merges several
// independent partials into the final result (the map/merge mode the
// coordinator uses). Output is byte-identical to a single-process run
// at any partitioning, which the equivalence tests pin down.

const (
	metaSection   = "meta"
	routerSection = "router"
)

// sectionName scopes an analyzer's section by its registration index,
// so one run can carry two analyzers of the same kind (Table 3 runs two
// run detectors with different configs in one pass).
func sectionName(i int, key string) string { return fmt.Sprintf("%d:%s", i, key) }

// Partial is a parsed state file: the identifying metadata plus the
// decoded section index, ready to resume or merge.
type Partial struct {
	// Label names the analysis that wrote the state; readers reject a
	// label mismatch before touching any section.
	Label string
	// Stats is the stream statistics over every op folded into the
	// state, including resumed ancestors.
	Stats Stats
	// Join is the cumulative call/reply matching statistics.
	Join core.JoinStats
	// Digest identifies this state file (SHA-256 over its bytes).
	Digest []byte
	// ParentDigest is the digest of the state this one resumed from;
	// empty for an unchained partial. A chain of partials is cumulative:
	// the last link holds the whole reduction.
	ParentDigest []byte

	file *state.File
}

// WritePartial serializes a quiesced Live's full partial state. label
// names the analysis; join carries the caller's cumulative join
// statistics (the joiner lives outside the engine); parent, when the
// run was itself resumed, links the chain for -merge validation.
func WritePartial(w io.Writer, lv *Live, label string, join core.JoinStats, parent *Partial) error {
	if !lv.done {
		return fmt.Errorf("pipeline: WritePartial needs a quiesced Live")
	}
	stateful := make([]statefulAnalyzer, len(lv.analyzers))
	for i, a := range lv.analyzers {
		sa, ok := a.(statefulAnalyzer)
		if !ok {
			return fmt.Errorf("pipeline: analyzer %T does not support partial state", a)
		}
		stateful[i] = sa
	}

	e := state.NewEncoder()
	e.Section(metaSection)
	e.String(label)
	e.Varint(lv.stats.Ops)
	e.F64(lv.stats.MinT)
	e.F64(lv.stats.MaxT)
	e.Varint(join.Calls)
	e.Varint(join.Replies)
	e.Varint(join.Matched)
	e.Varint(join.UnmatchedCalls)
	e.Varint(join.OrphanReplies)
	if parent != nil {
		e.Bytes(parent.Digest)
	} else {
		e.Bytes(nil)
	}

	// The router's binding map travels with the state: a resumed run
	// must resolve removes and renames of files bound before the cut.
	e.Section(routerSection)
	e.Uvarint(uint64(len(lv.rt.names)))
	for b, fh := range lv.rt.names {
		e.FH(b.dir)
		e.String(b.name)
		e.FH(fh)
	}

	for i, sa := range stateful {
		e.Section(sectionName(i, sa.stateKey()))
		sa.encodeState(e, lv.rt)
	}
	return e.Flush(w)
}

// ReadPartial parses a state file and its metadata. Sections beyond the
// metadata are validated lazily, when Resume or MergePartials decodes
// them against concrete analyzers.
func ReadPartial(r io.Reader) (*Partial, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f, err := state.ReadFile(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	p := &Partial{Digest: sum[:], file: f}

	d, ok := f.Section(metaSection)
	if !ok {
		return nil, fmt.Errorf("pipeline: state file has no %q section: %w", metaSection, state.ErrCorrupt)
	}
	p.Label = d.String("analysis label")
	p.Stats.Ops = d.Varint()
	p.Stats.MinT = d.F64()
	p.Stats.MaxT = d.F64()
	p.Join.Calls = d.Varint()
	p.Join.Replies = d.Varint()
	p.Join.Matched = d.Varint()
	p.Join.UnmatchedCalls = d.Varint()
	p.Join.OrphanReplies = d.Varint()
	parent := d.Bytes()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if p.Stats.Ops < 0 {
		return nil, fmt.Errorf("pipeline: state file claims %d ops: %w", p.Stats.Ops, state.ErrCorrupt)
	}
	if len(parent) > 0 {
		if len(parent) != sha256.Size {
			return nil, fmt.Errorf("pipeline: parent digest is %d bytes, want %d: %w", len(parent), sha256.Size, state.ErrCorrupt)
		}
		p.ParentDigest = append([]byte(nil), parent...)
	}
	return p, nil
}

// decodeInto folds the partial's per-analyzer sections into already
// opened analyzers.
func (p *Partial) decodeInto(analyzers []Analyzer) error {
	for i, a := range analyzers {
		sa, ok := a.(statefulAnalyzer)
		if !ok {
			return fmt.Errorf("pipeline: analyzer %T does not support partial state", a)
		}
		name := sectionName(i, sa.stateKey())
		d, found := p.file.Section(name)
		if !found {
			return fmt.Errorf("pipeline: state file has no section %q — written by a different analysis?: %w", name, state.ErrCorrupt)
		}
		sa.decodeState(d)
		if err := d.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// Resume seeds a freshly opened Live with the partial's state: router
// bindings, stream statistics, and every analyzer's reduction. The Live
// must not have ingested anything yet; afterwards, feeding the
// remainder of the stream produces exactly what one uninterrupted run
// over the whole stream would.
func (p *Partial) Resume(lv *Live) error {
	if lv.done {
		return fmt.Errorf("pipeline: Resume after Finish/Abort")
	}
	if lv.stats.Ops != 0 {
		return fmt.Errorf("pipeline: Resume into a Live that has already ingested")
	}
	d, ok := p.file.Section(routerSection)
	if !ok {
		return fmt.Errorf("pipeline: state file has no %q section: %w", routerSection, state.ErrCorrupt)
	}
	n := d.Count("router binding count")
	for i := 0; i < n && d.Err() == nil; i++ {
		dir := d.FH()
		name := d.String("binding name")
		fh := d.FH()
		if d.Err() == nil {
			lv.rt.names[binding{dir, name}] = fh
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	if err := p.decodeInto(lv.analyzers); err != nil {
		return err
	}
	lv.stats = p.Stats
	return nil
}

// MergePartials folds serialized partials into freshly constructed
// analyzers and closes them, leaving results readable exactly as after
// a Run. Two composition modes, detected from the states themselves:
//
//   - A resume chain (any partial names a parent): the states must form
//     one unbroken digest-validated chain; each link is cumulative, so
//     the result renders from the last link alone.
//
//   - Independent partials: merged in trace-time order. Rejected if any
//     analyzer is sequential — those states only compose by chaining.
//
// Returns the merged stream and join statistics.
func MergePartials(analyzers []Analyzer, partials []*Partial) (Stats, core.JoinStats, error) {
	if len(partials) == 0 {
		return Stats{}, core.JoinStats{}, fmt.Errorf("pipeline: no partial states to merge")
	}
	sorted := append([]*Partial(nil), partials...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Stats.MinT < sorted[j].Stats.MinT })

	chained := false
	for _, p := range sorted {
		if len(p.ParentDigest) > 0 {
			chained = true
			break
		}
	}
	if chained {
		for i, p := range sorted {
			if i == 0 {
				if len(p.ParentDigest) > 0 {
					return Stats{}, core.JoinStats{}, fmt.Errorf("pipeline: chained states: first piece resumed from a state not given here")
				}
				continue
			}
			if !bytes.Equal(p.ParentDigest, sorted[i-1].Digest) {
				return Stats{}, core.JoinStats{}, fmt.Errorf("pipeline: chained states: piece %d does not resume from piece %d — pieces missing, reordered, or from different runs", i+1, i)
			}
		}
		// Each link is cumulative; the last holds everything.
		sorted = sorted[len(sorted)-1:]
	} else if len(sorted) > 1 {
		for _, a := range analyzers {
			if IsSequential(a) {
				sa := a.(statefulAnalyzer)
				return Stats{}, core.JoinStats{}, fmt.Errorf("pipeline: analysis %q is order-dependent and cannot merge independent states; chain the pieces with -resume", sa.stateKey())
			}
		}
	}

	for _, a := range analyzers {
		a.Open(1)
	}
	var stats Stats
	var join core.JoinStats
	for i, p := range sorted {
		if err := p.decodeInto(analyzers); err != nil {
			return Stats{}, core.JoinStats{}, err
		}
		if i == 0 {
			stats = p.Stats
		} else {
			if p.Stats.MinT < stats.MinT {
				stats.MinT = p.Stats.MinT
			}
			if p.Stats.MaxT > stats.MaxT {
				stats.MaxT = p.Stats.MaxT
			}
			stats.Ops += p.Stats.Ops
		}
		join.Merge(p.Join)
	}
	for _, a := range analyzers {
		a.Close()
	}
	return stats, join, nil
}

// RunPartitioned runs analyzers over pre-joined op pieces as a resume
// chain of serialized states: every piece but the last runs on fresh
// same-configured analyzers, quiesces, and serializes; the next piece
// resumes from those bytes. The last piece lands on the caller's
// analyzers and finishes them, so results read exactly as after
// RunSlice over the concatenation — which they match byte for byte.
// This is the in-process harness that exercises the whole
// encode/decode/resume surface.
func RunPartitioned(cfg Config, pieces [][]*core.Op, analyzers ...Analyzer) (Stats, error) {
	if len(pieces) == 0 {
		return RunSlice(cfg, nil, analyzers...), nil
	}
	var parent *Partial
	for k, piece := range pieces {
		last := k == len(pieces)-1
		current := analyzers
		if !last {
			current = make([]Analyzer, len(analyzers))
			for i, a := range analyzers {
				sa, ok := a.(statefulAnalyzer)
				if !ok {
					return Stats{}, fmt.Errorf("pipeline: analyzer %T does not support partial state", a)
				}
				current[i] = sa.newLike()
			}
		}
		lv := NewLive(cfg, current...)
		if parent != nil {
			if err := parent.Resume(lv); err != nil {
				lv.Abort()
				return Stats{}, err
			}
		}
		for _, op := range piece {
			lv.Feed(op)
		}
		if last {
			return lv.Finish(), nil
		}
		lv.Quiesce()
		var buf bytes.Buffer
		if err := WritePartial(&buf, lv, "partition", core.JoinStats{}, parent); err != nil {
			return Stats{}, err
		}
		p, err := ReadPartial(&buf)
		if err != nil {
			return Stats{}, err
		}
		parent = p
	}
	panic("unreachable")
}
