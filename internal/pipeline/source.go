package pipeline

import (
	"container/heap"
	"io"
	"sort"

	"repro/internal/core"
)

// Joiner matches call records to reply records incrementally and emits
// joined operations in call-time order, replacing the
// materialize-then-sort core.Join for streaming sources. Records must
// arrive in capture-time order (every trace source here produces them
// that way).
//
// An operation's time is its call's time, but the operation is only
// complete when the reply arrives, so completions surface out of order
// by up to the RPC latency. The joiner holds completed operations in a
// heap and releases one as soon as nothing earlier can still appear:
// the release horizon is the minimum of the last record time seen and
// the oldest still-pending call.
//
// A call whose reply was lost would pin that horizon forever — one
// dropped packet must not buffer the rest of a week-long trace — so a
// pending call older than MaxCallAge is expired early and surfaces as
// an unmatched operation right away instead of at end of stream.
// Memory is therefore bounded by the in-flight window plus one
// MaxCallAge of unmatched calls. The §4.1.4 loss statistics are
// unchanged; the only divergence from core.Join is a reply arriving
// more than MaxCallAge after its call, which then counts as an orphan.
type Joiner struct {
	src core.RecordSource
	// rec is the source's recycler when it pools its records; the
	// joiner is the point where a record's last field has been copied
	// into an Op, so it hands dead records back here.
	rec     core.RecordRecycler
	pending map[joinKey]pendingCall
	// pendT tracks pending calls by time so the release horizon is
	// O(log n) to maintain; matched entries are deleted lazily.
	pendT    pendHeap
	pendGone map[pendEntry]bool
	ready    opHeap
	seq      int64
	born     int64
	lastT    float64
	drained  bool
	stats    core.JoinStats

	// MaxCallAge is how long a call may wait for its reply before it
	// is given up as unmatched; 0 selects DefaultMaxCallAge. Real RPC
	// latencies are milliseconds, so the default diverges from
	// core.Join only on pathological traces.
	MaxCallAge float64
}

// DefaultMaxCallAge is the default reply-wait budget, far beyond any
// NFS client's retransmission schedule.
const DefaultMaxCallAge = 300.0

type joinKey struct {
	client uint32
	port   uint16
	xid    uint32
}

// pendingCall is one unreplied call. born is its admission sequence
// number, which makes heap entries unique: (key, time) alone can
// repeat — a client may reuse an xid at the same quantized timestamp
// after the first call completed — and a collision between a lazily
// deleted entry and a live one would silently unpin the release
// horizon.
type pendingCall struct {
	rec  *core.Record
	born int64
}

// pendEntry identifies one pending call in the age heap.
type pendEntry struct {
	t    float64
	born int64
	k    joinKey
}

// NewJoiner wraps a time-ordered record source.
func NewJoiner(src core.RecordSource) *Joiner {
	rec, _ := src.(core.RecordRecycler)
	return &Joiner{
		src:      src,
		rec:      rec,
		pending:  make(map[joinKey]pendingCall),
		pendGone: make(map[pendEntry]bool),
	}
}

// free hands a dead record back to a pooling source.
func (j *Joiner) free(r *core.Record) {
	if j.rec != nil {
		j.rec.Recycle(r)
	}
}

func (j *Joiner) maxCallAge() float64 {
	if j.MaxCallAge > 0 {
		return j.MaxCallAge
	}
	return DefaultMaxCallAge
}

// Stats reports call/reply matching statistics; the §4.1.4 loss
// estimate is complete once Next has returned io.EOF.
func (j *Joiner) Stats() core.JoinStats { return j.stats }

// minPending returns the oldest pending call time, discarding lazily
// deleted entries, or ok=false when no calls are pending.
func (j *Joiner) minPending() (float64, bool) {
	for j.pendT.Len() > 0 {
		e := j.pendT[0]
		if j.pendGone[e] {
			delete(j.pendGone, e)
			heap.Pop(&j.pendT)
			continue
		}
		return e.t, true
	}
	return 0, false
}

// expireStale gives up on calls that have waited longer than
// MaxCallAge, surfacing them as unmatched operations so they stop
// pinning the release horizon.
func (j *Joiner) expireStale() {
	limit := j.lastT - j.maxCallAge()
	for {
		t, ok := j.minPending()
		if !ok || t > limit {
			return
		}
		e := j.pendT[0]
		heap.Pop(&j.pendT)
		call := j.pending[e.k].rec
		delete(j.pending, e.k)
		j.stats.UnmatchedCalls++
		j.push(core.FromPair(call, nil))
		j.free(call)
	}
}

// horizon is the time below which no new operation can appear.
func (j *Joiner) horizon() float64 {
	h := j.lastT
	if t, ok := j.minPending(); ok && t < h {
		h = t
	}
	return h
}

func (j *Joiner) push(op *core.Op) {
	j.seq++
	heap.Push(&j.ready, readyOp{op: op, seq: j.seq})
}

// ingest consumes one record, updating pending and ready state.
func (j *Joiner) ingest(r *core.Record) {
	j.lastT = r.Time
	j.expireStale()
	k := joinKey{r.Client, r.Port, r.XID}
	switch r.Kind {
	case core.KindCall:
		j.stats.Calls++
		if _, ok := j.pending[k]; ok {
			// Retransmission: keep the original call time, drop the
			// duplicate, as the paper's tracer did.
			j.free(r)
			return
		}
		j.born++
		j.pending[k] = pendingCall{rec: r, born: j.born}
		heap.Push(&j.pendT, pendEntry{t: r.Time, born: j.born, k: k})
	case core.KindReply:
		j.stats.Replies++
		pc, ok := j.pending[k]
		if !ok {
			j.stats.OrphanReplies++
			j.free(r)
			return
		}
		delete(j.pending, k)
		j.pendGone[pendEntry{t: pc.rec.Time, born: pc.born, k: k}] = true
		j.stats.Matched++
		j.push(core.FromPair(pc.rec, r))
		j.free(pc.rec)
		j.free(r)
	}
}

// drain flushes the calls that never got replies, in deterministic
// order, once the source is exhausted.
func (j *Joiner) drain() {
	unmatched := make([]*core.Record, 0, len(j.pending))
	for _, pc := range j.pending {
		unmatched = append(unmatched, pc.rec)
	}
	sort.Slice(unmatched, func(a, b int) bool {
		x, y := unmatched[a], unmatched[b]
		if x.Time != y.Time {
			return x.Time < y.Time
		}
		if x.Client != y.Client {
			return x.Client < y.Client
		}
		if x.Port != y.Port {
			return x.Port < y.Port
		}
		return x.XID < y.XID
	})
	for _, call := range unmatched {
		j.stats.UnmatchedCalls++
		j.push(core.FromPair(call, nil))
		j.free(call)
	}
	j.pending = nil
	j.pendT = nil
	j.pendGone = nil
	j.drained = true
}

// Next implements OpSource.
func (j *Joiner) Next() (*core.Op, error) {
	for {
		if j.drained {
			if j.ready.Len() == 0 {
				return nil, io.EOF
			}
			return heap.Pop(&j.ready).(readyOp).op, nil
		}
		if j.ready.Len() > 0 && j.ready[0].op.T < j.horizon() {
			return heap.Pop(&j.ready).(readyOp).op, nil
		}
		r, err := j.src.Next()
		if err == io.EOF {
			j.drain()
			continue
		}
		if err != nil {
			return nil, err
		}
		j.ingest(r)
	}
}

// NewPushJoiner returns a joiner for push-mode use: the caller feeds
// records with Push and flushes with Drain. Next must not be called on
// a push-mode joiner (there is no underlying source to pull from).
func NewPushJoiner() *Joiner {
	return &Joiner{
		pending:  make(map[joinKey]pendingCall),
		pendGone: make(map[pendEntry]bool),
	}
}

// Push ingests one record and appends every operation that becomes
// releasable to out, returning the extended slice. The release order is
// exactly the order Next would have yielded: Push and Next are the push
// and pull forms of the same machine. Push must not be called after
// Drain.
func (j *Joiner) Push(r *core.Record, out []*core.Op) []*core.Op {
	j.ingest(r)
	for j.ready.Len() > 0 && j.ready[0].op.T < j.horizon() {
		out = append(out, heap.Pop(&j.ready).(readyOp).op)
	}
	return out
}

// Drain ends the stream: the held ready operations and every
// still-unmatched call surface, appended to out in the order Next would
// have emitted them after EOF. The joiner is spent afterwards; its
// Stats are final.
func (j *Joiner) Drain(out []*core.Op) []*core.Op {
	if !j.drained {
		j.drain()
	}
	for j.ready.Len() > 0 {
		out = append(out, heap.Pop(&j.ready).(readyOp).op)
	}
	return out
}

// Pending reports the number of calls still awaiting replies.
func (j *Joiner) Pending() int { return len(j.pending) }

// StatsIfDrained reports the statistics a drain right now would leave:
// Stats() with every still-pending call counted as unmatched. It is
// the JoinStats counterpart of PendingOps and leaves the joiner
// untouched.
func (j *Joiner) StatsIfDrained() core.JoinStats {
	s := j.stats
	s.UnmatchedCalls += int64(len(j.pending))
	return s
}

// Held reports the number of completed operations held for reordering.
func (j *Joiner) Held() int { return j.ready.Len() }

// PendingOps simulates Drain without disturbing the joiner: it returns
// the operations an end-of-stream drain would emit right now — the held
// ready ops merged with the still-unmatched calls surfaced as
// unreplied operations — in the exact order Drain would yield them.
// The joiner's state and statistics are unchanged; unmatched calls
// produce freshly built ops while held ops are returned as is (they are
// read-only from here on either way). This is what makes a mid-stream
// snapshot finishable: snapshot the reducers, feed them PendingOps, and
// the result equals a batch run over every record pushed so far.
func (j *Joiner) PendingOps() []*core.Op {
	sim := make(opHeap, j.ready.Len(), j.ready.Len()+len(j.pending))
	copy(sim, j.ready)
	unmatched := make([]*core.Record, 0, len(j.pending))
	for _, pc := range j.pending {
		unmatched = append(unmatched, pc.rec)
	}
	sort.Slice(unmatched, func(a, b int) bool {
		x, y := unmatched[a], unmatched[b]
		if x.Time != y.Time {
			return x.Time < y.Time
		}
		if x.Client != y.Client {
			return x.Client < y.Client
		}
		if x.Port != y.Port {
			return x.Port < y.Port
		}
		return x.XID < y.XID
	})
	seq := j.seq
	for _, call := range unmatched {
		seq++
		heap.Push(&sim, readyOp{op: core.FromPair(call, nil), seq: seq})
	}
	out := make([]*core.Op, 0, sim.Len())
	for sim.Len() > 0 {
		out = append(out, heap.Pop(&sim).(readyOp).op)
	}
	return out
}

// readyOp orders completed operations by call time; the completion
// sequence breaks ties deterministically.
type readyOp struct {
	op  *core.Op
	seq int64
}

type opHeap []readyOp

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, k int) bool {
	if h[i].op.T != h[k].op.T {
		return h[i].op.T < h[k].op.T
	}
	return h[i].seq < h[k].seq
}
func (h opHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *opHeap) Push(x any)   { *h = append(*h, x.(readyOp)) }
func (h *opHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type pendHeap []pendEntry

func (h pendHeap) Len() int           { return len(h) }
func (h pendHeap) Less(i, k int) bool { return h[i].t < h[k].t }
func (h pendHeap) Swap(i, k int)      { h[i], h[k] = h[k], h[i] }
func (h *pendHeap) Push(x any)        { *h = append(*h, x.(pendEntry)) }
func (h *pendHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
