package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	benchOnce sync.Once
	benchOps  []*core.Op
	benchSpan float64
)

func benchTrace(b *testing.B) ([]*core.Op, float64) {
	b.Helper()
	benchOnce.Do(func() {
		benchOps = genOps(b, 1)
		benchSpan = benchOps[len(benchOps)-1].T - benchOps[0].T
	})
	return benchOps, benchSpan
}

// BenchmarkEngine measures the full reducer suite over the CAMPUS
// generator workload at several worker counts. The per-iteration
// metric is analysis throughput in operations per second.
func BenchmarkEngine(b *testing.B) {
	ops, span := benchTrace(b)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set := newAnalyzerSet(span)
				RunSlice(Config{Workers: workers}, ops, set.analyzers()...)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkRouter isolates the sequential routing stage — the Amdahl
// ceiling on shard scaling.
func BenchmarkRouter(b *testing.B) {
	ops, _ := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := newRouter(8)
		for _, op := range ops {
			rt.shard(op)
		}
	}
	b.SetBytes(int64(len(ops)))
}

// BenchmarkJoiner measures streaming join throughput against the
// materializing core.Join.
func BenchmarkJoiner(b *testing.B) {
	records := genRecords(b, 0.5)
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := NewJoiner(&core.SliceSource{Records: records})
			n := 0
			for {
				if _, err := j.Next(); err != nil {
					break
				}
				n++
			}
			if n == 0 {
				b.Fatal("no ops")
			}
		}
		b.SetBytes(int64(len(records)))
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops, _ := core.Join(records)
			if len(ops) == 0 {
				b.Fatal("no ops")
			}
		}
		b.SetBytes(int64(len(records)))
	})
}
