package workload

import (
	"math/rand"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
)

func TestSimOrdersEvents(t *testing.T) {
	s := &Sim{End: 100}
	var got []float64
	s.At(5, func(tt float64) { got = append(got, tt) })
	s.At(1, func(tt float64) { got = append(got, tt) })
	s.At(3, func(tt float64) {
		got = append(got, tt)
		s.At(4, func(tt float64) { got = append(got, tt) })
	})
	s.At(200, func(tt float64) { t.Error("past-horizon event ran") })
	s.Run()
	want := []float64{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSimDeterministicTieBreak(t *testing.T) {
	run := func() []int {
		s := &Sim{End: 10}
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			s.At(1.0, func(float64) { order = append(order, i) })
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-break order not deterministic")
		}
	}
}

func TestHourOfWeekAndPeak(t *testing.T) {
	if HourOfWeek(0) != 0 {
		t.Fatal("epoch not hour 0")
	}
	if HourOfWeek(Day+10*Hour) != 34 {
		t.Fatalf("monday 10am = %d", HourOfWeek(Day+10*Hour))
	}
	// Sunday 10am is not peak; Monday 10am is; Monday 8am is not;
	// Friday 5pm is; Saturday noon is not.
	cases := []struct {
		t    float64
		want bool
	}{
		{10 * Hour, false},
		{Day + 10*Hour, true},
		{Day + 8*Hour, false},
		{5*Day + 17*Hour, true},
		{5*Day + 18*Hour, false},
		{6*Day + 12*Hour, false},
	}
	for _, c := range cases {
		if IsPeak(c.t) != c.want {
			t.Errorf("IsPeak(%v) = %v", c.t, !c.want)
		}
	}
}

func TestDiurnalCurveShape(t *testing.T) {
	c := NewDiurnalCurve(0.4)
	// Monday 3am vs Monday 11am.
	if c.Weight(Day+3*Hour) >= c.Weight(Day+11*Hour) {
		t.Fatal("night not quieter than day")
	}
	// Saturday 11am below Monday 11am.
	if c.Weight(6*Day+11*Hour) >= c.Weight(Day+11*Hour) {
		t.Fatal("weekend not damped")
	}
	if c.DailySum() <= 0 {
		t.Fatal("daily sum")
	}
}

func TestPoissonScheduleRateAndModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	curve := NewDiurnalCurve(0.4)
	var times []float64
	// 200/day over 7 days.
	PoissonSchedule(rng, curve, 200, 0, Week, func(tt float64) { times = append(times, tt) })
	if len(times) < 800 || len(times) > 1500 {
		t.Fatalf("%d events for ~200/weekday over a week", len(times))
	}
	// Peak hours should hold far more events than 0–6am.
	night, peak := 0, 0
	for _, tt := range times {
		h := HourOfWeek(tt) % 24
		if h < 6 {
			night++
		}
		if IsPeak(tt) {
			peak++
		}
	}
	if peak < 4*night {
		t.Fatalf("diurnal modulation weak: peak=%d night=%d", peak, night)
	}
	// Times are sorted.
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("unsorted schedule")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	below := 0
	n := 20000
	for i := 0; i < n; i++ {
		if LogNormal(rng, 1000, 1.0) < 1000 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median off: %.3f below", frac)
	}
}

// generate runs a small CAMPUS window and joins the records.
func generateCampus(t *testing.T, users int, days float64) ([]*core.Op, *Campus) {
	t.Helper()
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	camp := NewCampus(DefaultCampusConfig(users, days, 12345), sorter)
	camp.Run()
	sorter.Flush()
	ops, stats := core.Join(sink.Records)
	if stats.OrphanReplies != 0 {
		t.Fatalf("orphan replies in lossless run: %+v", stats)
	}
	return ops, camp
}

func generateEECS(t *testing.T, clients int, days float64) ([]*core.Op, *EECS) {
	t.Helper()
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	sys := NewEECS(DefaultEECSConfig(clients, days, 54321), sorter)
	sys.Run()
	sorter.Flush()
	ops, stats := core.Join(sink.Records)
	if stats.OrphanReplies != 0 {
		t.Fatalf("orphan replies in lossless run: %+v", stats)
	}
	return ops, sys
}

func mix(ops []*core.Op) (reads, writes, meta int64, rbytes, wbytes uint64) {
	for _, op := range ops {
		switch {
		case op.IsRead():
			reads++
			rbytes += op.Bytes()
		case op.IsWrite():
			writes++
			wbytes += op.Bytes()
		default:
			meta++
		}
	}
	return
}

func TestCampusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, camp := generateCampus(t, 4, 2)
	if len(ops) < 5000 {
		t.Fatalf("only %d ops generated", len(ops))
	}
	reads, writes, meta, rbytes, wbytes := mix(ops)

	// CAMPUS is read-dominated: R/W byte ratio ≈ 3 (accept 1.5–6 at
	// this scale), op ratio ≈ 3.
	byteRatio := float64(rbytes) / float64(wbytes)
	if byteRatio < 1.5 || byteRatio > 6 {
		t.Errorf("read/write byte ratio %.2f, want ≈3", byteRatio)
	}
	opRatio := float64(reads) / float64(writes)
	if opRatio < 1.5 || opRatio > 6 {
		t.Errorf("read/write op ratio %.2f, want ≈3", opRatio)
	}
	// Most calls are for data (Table 1).
	dataFrac := float64(reads+writes) / float64(len(ops))
	if dataFrac < 0.6 {
		t.Errorf("data fraction %.2f, want >0.6", dataFrac)
	}
	_ = meta

	// Lock-file dominance (Table 1: ~50% of files accessed are mailbox
	// locks): count distinct file instances in a peak-hour window —
	// every lock create is a fresh inode.
	winFrom, winTo := Day+10*Hour, Day+11*Hour
	instances := map[core.FH]bool{}
	lockInst := map[core.FH]bool{}
	for _, op := range ops {
		if op.T < winFrom || op.T >= winTo {
			continue
		}
		fh := op.FH
		if op.Proc == core.ProcCreate && op.NewFH != 0 {
			fh = op.NewFH
		}
		if op.Proc == core.ProcLookup || op.IsMetadata() && fh == 0 {
			continue
		}
		if fh == 0 {
			continue
		}
		instances[fh] = true
		if op.Name == "inbox.lock" {
			lockInst[fh] = true
		}
	}
	if len(instances) == 0 {
		t.Fatal("no file instances in the peak window")
	}
	lockFrac := float64(len(lockInst)) / float64(len(instances))
	if lockFrac < 0.3 {
		t.Errorf("lock files are %.0f%% of file instances, want ≈50%%", lockFrac*100)
	}

	// Nearly all read bytes come from inboxes (>95% in the paper).
	inboxFHs := map[core.FH]bool{}
	for _, u := range camp.users {
		inboxFHs[core.InternFH(u.inboxFH.String())] = true
	}
	var inboxRead uint64
	for _, op := range ops {
		if op.IsRead() && inboxFHs[op.FH] {
			inboxRead += op.Bytes()
		}
	}
	if frac := float64(inboxRead) / float64(rbytes); frac < 0.85 {
		t.Errorf("inbox read fraction %.2f, want >0.85", frac)
	}
}

func TestCampusDiurnalLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateCampus(t, 3, 3) // Sun, Mon, Tue
	// Monday 10:00–11:00 must be much busier than Monday 03:00–04:00.
	count := func(from, to float64) int {
		n := 0
		for _, op := range ops {
			if op.T >= from && op.T < to {
				n++
			}
		}
		return n
	}
	night := count(Day+3*Hour, Day+4*Hour)
	morning := count(Day+10*Hour, Day+11*Hour)
	if morning < 3*night {
		t.Fatalf("diurnal shape weak: night=%d morning=%d", night, morning)
	}
}

func TestCampusZeroLengthLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateCampus(t, 3, 1)
	// Lock files are created and removed; they must never be written.
	lockFHs := map[core.FH]bool{}
	for _, op := range ops {
		if op.Proc == core.ProcCreate && op.Name == "inbox.lock" && op.NewFH != 0 {
			lockFHs[op.NewFH] = true
		}
	}
	if len(lockFHs) == 0 {
		t.Fatal("no lock creations observed")
	}
	for _, op := range ops {
		if op.IsWrite() && lockFHs[op.FH] {
			t.Fatal("a lock file was written")
		}
	}
	// Creates and removes of locks roughly balance.
	creates, removes := 0, 0
	for _, op := range ops {
		if op.Name == "inbox.lock" {
			switch op.Proc {
			case core.ProcCreate:
				creates++
			case core.ProcRemove:
				removes++
			}
		}
	}
	if removes == 0 || creates == 0 {
		t.Fatalf("lock churn: %d creates %d removes", creates, removes)
	}
	if float64(removes) < 0.8*float64(creates) {
		t.Fatalf("locks leak: %d creates, %d removes", creates, removes)
	}
}

func TestEECSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateEECS(t, 3, 2)
	if len(ops) < 5000 {
		t.Fatalf("only %d ops", len(ops))
	}
	reads, writes, meta, rbytes, wbytes := mix(ops)

	// EECS: metadata dominates (75% in Table 2 arithmetic).
	metaFrac := float64(meta) / float64(len(ops))
	if metaFrac < 0.5 {
		t.Errorf("metadata fraction %.2f, want >0.5", metaFrac)
	}
	// Writes outnumber reads (ops ratio 0.69; accept <1.2).
	opRatio := float64(reads) / float64(writes)
	if opRatio > 1.2 {
		t.Errorf("read/write op ratio %.2f, want <1 (write-dominated)", opRatio)
	}
	// Byte ratio below 1 too (0.56 in the paper).
	byteRatio := float64(rbytes) / float64(wbytes)
	if byteRatio > 1.5 {
		t.Errorf("read/write byte ratio %.2f, want ≈0.6", byteRatio)
	}
}

func TestEECSProcMix(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateEECS(t, 2, 1)
	counts := map[string]int{}
	for _, op := range ops {
		counts[op.Proc.String()]++
	}
	// The attribute procedures together dominate.
	attr := counts["lookup"] + counts["getattr"] + counts["access"]
	if float64(attr) < 0.4*float64(len(ops)) {
		t.Errorf("attribute calls %.0f%%, want ≥40%%", 100*float64(attr)/float64(len(ops)))
	}
	// Applet churn appears.
	if counts["remove"] == 0 || counts["create"] == 0 {
		t.Error("no create/remove churn")
	}
	// Some clients speak v2.
	v2 := false
	for _, op := range ops {
		if op.Version == nfs.V2 {
			v2 = true
			break
		}
	}
	if !v2 {
		t.Error("no NFSv2 traffic in the mix")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	gen := func() []*core.Record {
		sink := &client.SliceSink{}
		sorter := client.NewSortingSink(sink)
		c := NewCampus(DefaultCampusConfig(2, 0.25, 777), sorter)
		c.Run()
		sorter.Flush()
		return sink.Records
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Marshal() != b[i].Marshal() {
			t.Fatalf("record %d differs:\n%s\n%s", i, a[i].Marshal(), b[i].Marshal())
		}
	}
}
