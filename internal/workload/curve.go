package workload

import (
	"math"
	"math/rand"
)

// Time conventions: the trace epoch (t=0) is Sunday 00:00 local time,
// matching the paper's analysis week of Sunday 10/21/2001 through
// Saturday 10/27/2001. Peak hours are 9:00–18:00 on weekdays (§6.2).

const (
	// Hour, Day, and Week are in seconds.
	Hour = 3600.0
	Day  = 24 * Hour
	Week = 7 * Day
)

// HourOfWeek returns the hour index 0..167 for a time.
func HourOfWeek(t float64) int {
	h := int(t/Hour) % 168
	if h < 0 {
		h += 168
	}
	return h
}

// IsPeak reports whether t falls in the paper's peak window:
// 9am–6pm Monday through Friday.
func IsPeak(t float64) bool {
	h := HourOfWeek(t)
	day := h / 24 // 0 = Sunday
	hod := h % 24
	return day >= 1 && day <= 5 && hod >= 9 && hod < 18
}

// DiurnalCurve is a 168-hour weight vector; weight 1.0 is the weekday
// business-hours level.
type DiurnalCurve [168]float64

// hourShape is the within-day shape for a working population: quiet
// nights, morning ramp, busy 9–18, evening shoulder.
var hourShape = [24]float64{
	0.06, 0.04, 0.03, 0.03, 0.04, 0.06, // 0–5
	0.12, 0.25, 0.55, 0.90, 1.00, 1.00, // 6–11
	0.95, 1.00, 1.00, 1.00, 0.95, 0.90, // 12–17
	0.70, 0.55, 0.45, 0.35, 0.22, 0.12, // 18–23
}

// NewDiurnalCurve builds the weekly curve: full weekday shape,
// weekends damped. weekend is the weekend attenuation (e.g. 0.35).
func NewDiurnalCurve(weekend float64) *DiurnalCurve {
	var c DiurnalCurve
	for h := 0; h < 168; h++ {
		day := h / 24
		w := hourShape[h%24]
		if day == 0 || day == 6 { // Sunday, Saturday
			w *= weekend
		}
		c[h] = w
	}
	return &c
}

// Weight returns the curve value at time t.
func (c *DiurnalCurve) Weight(t float64) float64 { return c[HourOfWeek(t)] }

// DailySum returns the sum of weights over a weekday (hours 24..47,
// i.e. Monday), used to convert per-day event budgets into hourly rates.
func (c *DiurnalCurve) DailySum() float64 {
	var s float64
	for h := 24; h < 48; h++ {
		s += c[h]
	}
	return s
}

// PoissonSchedule invokes schedule(t) for each event of an
// inhomogeneous Poisson process with perDay expected events per weekday
// equivalent, over [from, to), using Lewis thinning.
func PoissonSchedule(rng *rand.Rand, curve *DiurnalCurve, perDay float64,
	from, to float64, schedule func(t float64)) {

	if perDay <= 0 {
		return
	}
	// Peak rate: events/sec at weight 1.0.
	peak := perDay / (curve.DailySum() * Hour)
	t := from
	for {
		t += rng.ExpFloat64() / peak
		if t >= to {
			return
		}
		if rng.Float64() < curve.Weight(t) {
			schedule(t)
		}
	}
}

// LogNormal draws a lognormal sample with the given median and sigma
// (of the underlying normal).
func LogNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}
