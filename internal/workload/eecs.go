package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/server"
	"repro/internal/vfs"
)

// EECSConfig parameterizes the EECS departmental workload (§3.1,
// §6.1.1): home directories for research, software development, and
// course work. The traffic is metadata-dominated (clients validating
// caches), write-heavy (browser caches, logs, builds), and far burstier
// than CAMPUS.
type EECSConfig struct {
	Seed    int64
	Clients int // workstations (the real system had dozens)
	Days    float64

	// MetadataBurstsPerDay is the per-client count of cache-validation
	// bursts (the getattr/lookup/access storms that dominate EECS).
	MetadataBurstsPerDay float64
	// BrowserSessionsPerDay is the per-client web-browsing session
	// count (writes page-cache files into the home directory).
	BrowserSessionsPerDay float64
	// BuildsPerDay is the per-client compile-job count.
	BuildsPerDay float64
	// EditSessionsPerDay is the per-client editing-session count.
	EditSessionsPerDay float64
	// LogWriteInterval is the mean seconds between unbuffered log/index
	// writes per client (the source of sub-second block deaths).
	LogWriteInterval float64
	// AppletChurnPerDay is the per-client count of Applet_*_Extern
	// create/delete pairs (window-manager noise; ~10,000/day
	// department-wide in the paper).
	AppletChurnPerDay float64
	// CronJobsPerNight is the per-client off-hours batch-job count.
	CronJobsPerNight float64
	// ScanJobsPerDay is the per-client count of multi-file read sweeps
	// (grep, find, data staging) — cold reads the client cache cannot
	// absorb.
	ScanJobsPerDay float64
	// DataJobsPerDay is the per-client daytime data-processing count
	// (long partial reads of the big research file).
	DataJobsPerDay float64
}

// DefaultEECSConfig returns the paper-calibrated configuration.
func DefaultEECSConfig(clients int, days float64, seed int64) EECSConfig {
	return EECSConfig{
		Seed:                  seed,
		Clients:               clients,
		Days:                  days,
		MetadataBurstsPerDay:  1100,
		BrowserSessionsPerDay: 8,
		BuildsPerDay:          6,
		EditSessionsPerDay:    10,
		LogWriteInterval:      60,
		AppletChurnPerDay:     600,
		CronJobsPerNight:      1.5,
		ScanJobsPerDay:        70,
		DataJobsPerDay:        4,
	}
}

// eecsHost is one workstation and its user's home directory state.
type eecsHost struct {
	cl        *client.Client
	uid, gid  uint32
	homeFH    nfs.FH
	srcDir    nfs.FH
	srcFiles  []string
	cacheDir  nfs.FH
	cacheN    int
	cacheLRU  []string
	logFH     nfs.FH
	logOff    uint64 // byte offset of the log tail (unbuffered appends)
	idxFH     nfs.FH
	idxSize   uint64
	dataFHs   []nfs.FH
	dataSizes []uint64
	appletN   int
	docNames  []string
	docDir    nfs.FH
}

// EECS is the assembled departmental system.
type EECS struct {
	cfg   EECSConfig
	rng   *rand.Rand
	sim   *Sim
	curve *DiurnalCurve
	night *DiurnalCurve
	srv   *server.Server
	hosts []*eecsHost
}

// ServerIPEECS is the filer's address.
const ServerIPEECS = 0x0a020001

// NewEECS builds the filer, workstations, and home directories.
func NewEECS(cfg EECSConfig, sink client.Sink) *EECS {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs := vfs.New() // no quotas on EECS (§3.1)
	srv := server.New(fs)
	e := &EECS{
		cfg:   cfg,
		rng:   rng,
		sim:   &Sim{End: cfg.Days * Day},
		curve: NewDiurnalCurve(0.55), // research happens on weekends too
		srv:   srv,
	}
	fs.Clock = func() float64 { return e.sim.Now }

	// Night curve for cron jobs: the inverse of the day shape.
	var night DiurnalCurve
	day := NewDiurnalCurve(1.0)
	for h := range night {
		night[h] = 1.1 - day[h]
	}
	e.night = &night

	for i := 0; i < cfg.Clients; i++ {
		e.hosts = append(e.hosts, e.populateHost(fs, i, sink))
	}
	return e
}

// Server exposes the simulated filer.
func (e *EECS) Server() *server.Server { return e.srv }

// Clients returns every workstation's NFS client, so callers can attach
// wire taps.
func (e *EECS) Clients() []*client.Client {
	out := make([]*client.Client, len(e.hosts))
	for i, h := range e.hosts {
		out[i] = h.cl
	}
	return out
}

func (e *EECS) populateHost(fs *vfs.FS, i int, sink client.Sink) *eecsHost {
	uid := uint32(3000 + i)
	gid := uint32(300)
	// Most clients speak NFSv3; a sizable minority still run v2. All
	// use UDP (§3.1).
	version := uint32(nfs.V3)
	if i%3 == 1 {
		version = nfs.V2
	}
	cl := client.New(client.Config{
		IP: 0x0a020100 + uint32(i), UID: uid, GID: gid,
		Version: version, Proto: core.ProtoUDP,
		Daemons: 4, Seed: e.cfg.Seed ^ int64(i)*7919,
	}, e.srv, ServerIPEECS, sink)
	cl.AttrTimeout = 30
	if version == nfs.V3 {
		cl.XferSize = 32768 // fast v3 workstations; v2 is capped at 8 KB
	}

	home, err := fs.MkdirAll(fmt.Sprintf("/home/u%03d", i), uid, gid)
	if err != nil {
		panic(err)
	}
	h := &eecsHost{cl: cl, uid: uid, gid: gid, homeFH: nfs.MakeFH(home.ID)}

	// Source tree: a project directory with .c/.h files.
	src, err := fs.Mkdir(home.ID, "project", uid, gid, 0755)
	if err != nil {
		panic(err)
	}
	h.srcDir = nfs.MakeFH(src.ID)
	nsrc := 12 + e.rng.Intn(20)
	for j := 0; j < nsrc; j++ {
		ext := ".c"
		if j%3 == 1 {
			ext = ".h"
		}
		name := fmt.Sprintf("mod%02d%s", j, ext)
		ino, err := fs.Create(src.ID, name, uid, gid, 0644)
		if err != nil {
			panic(err)
		}
		fs.Write(ino.ID, 0, uint64(2*1024+e.rng.Int63n(60*1024)))
		h.srcFiles = append(h.srcFiles, name)
	}

	// Browser cache directory (the paper's "somewhat perverse" load).
	cache, err := fs.MkdirAll(fmt.Sprintf("/home/u%03d/.netscape/cache", i), uid, gid)
	if err != nil {
		panic(err)
	}
	h.cacheDir = nfs.MakeFH(cache.ID)

	// Log and index files written by long-running jobs.
	logIno, err := fs.Create(home.ID, "experiment.log", uid, gid, 0644)
	if err != nil {
		panic(err)
	}
	h.logFH = nfs.MakeFH(logIno.ID)
	idxIno, err := fs.Create(home.ID, "results.idx", uid, gid, 0644)
	if err != nil {
		panic(err)
	}
	fs.Write(idxIno.ID, 0, 256*1024)
	h.idxFH = nfs.MakeFH(idxIno.ID)
	h.idxSize = 256 * 1024

	// Research data files, read in pieces by analysis jobs. Several
	// sub-4MB files rather than one giant one: EECS bytes come mostly
	// from files below a few megabytes (Figure 2).
	for j := 0; j < 4; j++ {
		dataIno, err := fs.Create(home.ID, fmt.Sprintf("trace%d.dat", j), uid, gid, 0644)
		if err != nil {
			panic(err)
		}
		dsz := uint64(512<<10) + uint64(e.rng.Int63n(3584<<10))
		fs.Write(dataIno.ID, 0, dsz)
		h.dataFHs = append(h.dataFHs, nfs.MakeFH(dataIno.ID))
		h.dataSizes = append(h.dataSizes, dsz)
	}

	// Documents edited interactively.
	docs, err := fs.Mkdir(home.ID, "papers", uid, gid, 0755)
	if err != nil {
		panic(err)
	}
	h.docDir = nfs.MakeFH(docs.ID)
	for _, dn := range []string{"paper.tex", "notes.txt", "slides.tex"} {
		ino, err := fs.Create(docs.ID, dn, uid, gid, 0644)
		if err != nil {
			panic(err)
		}
		fs.Write(ino.ID, 0, uint64(20*1024+e.rng.Int63n(130*1024)))
		h.docNames = append(h.docNames, dn)
	}
	return h
}

// Run schedules every host's activity and executes the window.
func (e *EECS) Run() {
	for _, h := range e.hosts {
		h := h
		PoissonSchedule(e.rng, e.curve, e.cfg.MetadataBurstsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.metadataBurst(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.BrowserSessionsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.browserSession(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.BuildsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.build(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.EditSessionsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.editSession(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.AppletChurnPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.appletChurn(h, t) }) })
		PoissonSchedule(e.rng, e.night, e.cfg.CronJobsPerNight, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.cronJob(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.ScanJobsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.scanJob(h, t) }) })
		PoissonSchedule(e.rng, e.curve, e.cfg.DataJobsPerDay, 0, e.sim.End,
			func(t float64) { e.sim.At(t, func(t float64) { e.dataJob(h, t) }) })
		e.scheduleLogWrite(h, e.rng.Float64()*e.cfg.LogWriteInterval)
		e.scheduleLogRotation(h, (4+e.rng.Float64()*4)*Hour)
	}
	e.sim.Run()
}

// metadataBurst models cache validation: an activity period in which
// the desktop and its applications check tens of files' attributes
// (lookup + getattr + access) across the home directory — the calls
// that dominate the EECS op mix. Reads are nearly all absorbed by the
// client cache; only the validation traffic reaches the server.
func (e *EECS) metadataBurst(h *eecsHost, t float64) {
	cl := h.cl
	n := 15 + e.rng.Intn(40)
	dirs := []nfs.FH{h.srcDir, h.homeFH, h.docDir}
	for i := 0; i < n; i++ {
		var dir nfs.FH
		var name string
		switch e.rng.Intn(3) {
		case 0:
			dir, name = h.srcDir, h.srcFiles[e.rng.Intn(len(h.srcFiles))]
		case 1:
			dir, name = h.docDir, h.docNames[e.rng.Intn(len(h.docNames))]
		default:
			dir, name = h.homeFH, []string{"experiment.log", "results.idx", "trace0.dat"}[e.rng.Intn(3)]
		}
		fh, t2 := cl.LookupCached(t, dir, name)
		if fh != nil {
			switch e.rng.Intn(3) {
			case 0:
				_, t2 = cl.Getattr(t2, fh)
			case 1:
				t2 = cl.Access(t2, fh)
			default:
				// Re-lookup through the directory (negative-cache
				// misses and path revalidation).
				_, _, t2 = cl.Lookup(t2, dir, name)
			}
		}
		// Occasional directory scans.
		if e.rng.Float64() < 0.03 {
			_, t2 = cl.Readdir(t2, dirs[e.rng.Intn(len(dirs))])
		}
		t = t2 + 0.001 + e.rng.Float64()*0.3
	}
}

// browserSession writes web-page cache files into the home directory —
// the paper's signature EECS write load — and prunes old ones.
func (e *EECS) browserSession(h *eecsHost, t float64) {
	cl := h.cl
	pages := 5 + e.rng.Intn(35)
	for i := 0; i < pages; i++ {
		h.cacheN++
		name := fmt.Sprintf("cache%08X.gz", h.cacheN*2654435761)
		fh, t2 := cl.Create(t, h.cacheDir, name, true)
		if fh == nil {
			t = t2
			continue
		}
		size := uint64(LogNormal(e.rng, 16*1024, 1.2))
		if size > 512*1024 {
			size = 512 * 1024
		}
		t2 = cl.WriteRange(t2, fh, 0, size)
		h.cacheLRU = append(h.cacheLRU, name)
		// Revisit: read a previously cached page.
		if len(h.cacheLRU) > 4 && e.rng.Float64() < 0.3 {
			old := h.cacheLRU[e.rng.Intn(len(h.cacheLRU))]
			if ofh, t3 := cl.LookupCached(t2, h.cacheDir, old); ofh != nil {
				if ino, err := e.srv.FS.GetFH(ofh); err == nil {
					_, t3 = cl.ReadFile(t3, ofh, ino.Size)
				}
				t2 = t3
			}
		}
		// LRU pruning keeps the cache bounded: deletion deaths.
		for len(h.cacheLRU) > 150 {
			victim := h.cacheLRU[0]
			h.cacheLRU = h.cacheLRU[1:]
			_, t2 = cl.Remove(t2, h.cacheDir, victim)
		}
		gap := 0.5 + e.rng.ExpFloat64()*8
		if gap > 25 {
			gap = 25
		}
		t = t2 + gap
	}
}

// build compiles the project: read every source file, write .o files,
// link a binary, and clean up — creating and deleting many short-lived
// files (deletion deaths; §5.2.2).
func (e *EECS) build(h *eecsHost, t float64) {
	cl := h.cl
	var objs []string
	for _, src := range h.srcFiles {
		fh, t2 := cl.LookupCached(t, h.srcDir, src)
		if fh != nil {
			if ino, err := e.srv.FS.GetFH(fh); err == nil {
				_, t2 = cl.ReadFile(t2, fh, ino.Size)
			}
		}
		obj := src[:len(src)-2] + ".o"
		ofh, t3 := cl.Create(t2, h.srcDir, obj, true)
		if ofh != nil {
			osize := uint64(4*1024 + e.rng.Int63n(40*1024))
			t3 = cl.WriteRange(t3, ofh, 0, osize)
			objs = append(objs, obj)
		}
		gap := 0.2 + e.rng.ExpFloat64()*2
		if gap > 6 {
			gap = 6
		}
		t = t3 + gap
	}
	// Link.
	bin, t2 := cl.Create(t, h.srcDir, "a.out", true)
	if bin != nil {
		t2 = cl.WriteRange(t2, bin, 0, uint64(512*1024+e.rng.Int63n(1<<20)))
	}
	// Objects die minutes later (make clean or the next build).
	cleanup := t2 + 120 + e.rng.Float64()*1800
	if cleanup < e.sim.End {
		names := objs
		e.sim.At(cleanup, func(now float64) {
			for _, o := range names {
				_, now = cl.Remove(now, h.srcDir, o)
			}
		})
	}
}

// editSession opens a document, reads it, and saves several times.
// Editors rewrite via truncate-then-write (truncate deaths) and manage
// backup files (rename churn, "~" names).
func (e *EECS) editSession(h *eecsHost, t float64) {
	cl := h.cl
	name := h.docNames[e.rng.Intn(len(h.docNames))]
	fh, t2 := cl.LookupCached(t, h.docDir, name)
	if fh == nil {
		return
	}
	if ino, err := e.srv.FS.GetFH(fh); err == nil {
		_, t2 = cl.ReadFile(t2, fh, ino.Size)
	}
	saves := 1 + e.rng.Intn(4)
	e.scheduleEditorSave(h, name, fh, t2, 0, saves)
}

// scheduleEditorSave chains the session's saves as simulator events so
// the minutes of editing between them never advance the emission clock
// inline (which would outrun other actors' records).
func (e *EECS) scheduleEditorSave(h *eecsHost, name string, fh nfs.FH, t float64, s, saves int) {
	if s >= saves {
		return
	}
	next := t + 60 + e.rng.ExpFloat64()*240
	if next >= e.sim.End {
		return
	}
	e.sim.At(next, func(now float64) {
		cl := h.cl
		ino, err := e.srv.FS.GetFH(fh)
		if err != nil {
			return
		}
		t2 := now
		if s == 0 {
			// Backup then rewrite under the original name.
			t2 = cl.Rename(t2, h.docDir, name, h.docDir, name+"~")
			nfh, t3 := cl.Create(t2, h.docDir, name, true)
			if nfh == nil {
				return
			}
			fh, t2 = nfh, t3
			t2 = cl.WriteRange(t2, fh, 0, ino.Size)
		} else if e.rng.Float64() < 0.3 {
			// O_TRUNC-style save: the old blocks die by truncation.
			t2 = cl.SetattrTruncate(t2, fh, 0)
			t2 = cl.WriteRange(t2, fh, 0, ino.Size+uint64(e.rng.Int63n(4096)))
		} else {
			// In-place rewrite.
			t2 = cl.WriteRange(t2, fh, 0, ino.Size+uint64(e.rng.Int63n(4096)))
		}
		e.scheduleEditorSave(h, name, fh, t2, s+1, saves)
	})
}

// appletChurn creates and immediately deletes a window-manager
// Applet_*_Extern file (§5.2.2: ~10,000/day on EECS).
func (e *EECS) appletChurn(h *eecsHost, t float64) {
	cl := h.cl
	h.appletN++
	name := fmt.Sprintf("Applet_%d_Extern", h.appletN)
	fh, t2 := cl.Create(t, h.homeFH, name, true)
	if fh != nil {
		t2 = cl.WriteRange(t2, fh, 0, uint64(128+e.rng.Int63n(2048)))
		cl.Remove(t2+0.05+e.rng.ExpFloat64()*0.3, h.homeFH, name)
	}
}

// scheduleLogWrite keeps the unbuffered log/index writers running: the
// log appends within its tail block (so the block is overwritten again
// within seconds — EECS's sub-second block deaths), and the index is
// written at scattered offsets, sometimes past EOF (extension births).
func (e *EECS) scheduleLogWrite(h *eecsHost, t float64) {
	if t >= e.sim.End {
		return
	}
	e.sim.At(t, func(now float64) {
		cl := h.cl
		if e.rng.Float64() < 0.85 {
			// Unbuffered log flush: the application appends a few
			// records, fsyncing after each. The wire sees byte-exact
			// sequential appends, and the shared tail block is
			// re-written two or three times within a fraction of a
			// second — the sub-second block deaths of Figure 3.
			tt := now
			flushes := 3 + e.rng.Intn(3)
			for i := 0; i < flushes; i++ {
				n := uint64(120 + e.rng.Int63n(2048))
				tt = cl.WriteRange(tt, h.logFH, h.logOff, n)
				h.logOff += n
				tt += 0.03 + e.rng.Float64()*0.2
			}
		} else {
			// Index update: write one block at a scattered offset,
			// occasionally far past EOF (extension births, §5.2.2).
			var off uint64
			if e.rng.Float64() < 0.25 {
				off = h.idxSize + uint64(e.rng.Int63n(40))*8192
				h.idxSize = off + 8192
			} else {
				off = uint64(e.rng.Int63n(int64(h.idxSize/8192+1))) * 8192
			}
			cl.WriteRange(now, h.idxFH, off, 8192)
			if off+8192 > h.idxSize {
				h.idxSize = off + 8192
			}
		}
		e.scheduleLogWrite(h, now+e.rng.ExpFloat64()*e.cfg.LogWriteInterval)
	})
}

// cronJob is an off-hours batch analysis: stream through a slice of the
// big data file (long sequential reads), then write a results file and
// read random index blocks (the random-access component of Figure 2).
func (e *EECS) cronJob(h *eecsHost, t float64) {
	cl := h.cl
	// Long sequential reads over several data files.
	t2 := t
	files := 2 + e.rng.Intn(3)
	for j := 0; j < files; j++ {
		k := e.rng.Intn(len(h.dataFHs))
		frac := 0.2 + e.rng.Float64()*0.6
		n := uint64(float64(h.dataSizes[k]) * frac)
		start := uint64(0)
		if frac < 0.99 {
			start = uint64(e.rng.Int63n(int64(h.dataSizes[k]-n))) &^ 8191
		}
		_, t2 = cl.ReadRange(t2, h.dataFHs[k], start, n)
		t2 += 1 + min(e.rng.ExpFloat64()*10, 25)
	}
	// Random index probes.
	probes := 10 + e.rng.Intn(40)
	for i := 0; i < probes; i++ {
		off := uint64(e.rng.Int63n(int64(h.idxSize/8192+1))) * 8192
		_, t2 = cl.ReadRange(t2+0.01, h.idxFH, off, 8192)
	}
	// Results file.
	h.cacheN++
	name := fmt.Sprintf("run%05d.out", h.cacheN)
	fh, t3 := cl.Create(t2, h.homeFH, name, true)
	if fh != nil {
		cl.WriteRange(t3, fh, 0, uint64(512<<10+e.rng.Int63n(3<<20)))
	}
}

// scheduleLogRotation periodically rotates the growing log: the old
// file is renamed aside, removed, and a fresh one created. The bulk
// deletion is where much of EECS's "blocks die by file deletion" mass
// comes from (Table 4).
func (e *EECS) scheduleLogRotation(h *eecsHost, t float64) {
	if t >= e.sim.End {
		return
	}
	e.sim.At(t, func(now float64) {
		cl := h.cl
		t2 := cl.Rename(now, h.homeFH, "experiment.log", h.homeFH, "experiment.log.0")
		if fh, t3 := cl.Create(t2, h.homeFH, "experiment.log", true); fh != nil {
			h.logFH = fh
			h.logOff = 0
			t2 = t3
		}
		// The previous rotation's file dies now.
		_, t2 = cl.Remove(t2, h.homeFH, "experiment.log.0")
		e.scheduleLogRotation(h, now+(4+e.rng.Float64()*4)*Hour)
	})
}

// scanJob sweeps a handful of files with cold reads (grep, find, data
// staging): each file is a separate sequential read run, the bulk of
// EECS's read-run population.
func (e *EECS) scanJob(h *eecsHost, t float64) {
	cl := h.cl
	// Sweep distinct files (a grep never reads the same file twice).
	type target struct {
		dir  nfs.FH
		name string
	}
	var pool []target
	for _, n := range h.srcFiles {
		pool = append(pool, target{h.srcDir, n})
	}
	for _, n := range h.docNames {
		pool = append(pool, target{h.docDir, n})
	}
	e.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	n := 3 + e.rng.Intn(10)
	if n > len(pool) {
		n = len(pool)
	}
	for i := 0; i < n; i++ {
		dir, name := pool[i].dir, pool[i].name
		fh, t2 := cl.LookupCached(t, dir, name)
		if fh != nil {
			if ino, err := e.srv.FS.GetFH(fh); err == nil && ino.Size > 0 {
				// grep/head often stop early: a sequential partial
				// read; otherwise the whole file (an entire run).
				n := ino.Size
				if e.rng.Float64() < 0.6 {
					n = uint64(float64(ino.Size) * (0.2 + e.rng.Float64()*0.7))
					if n == 0 {
						n = 1
					}
				}
				_, t2 = cl.ReadRange(t2, fh, 0, n)
			}
		}
		gap := 0.2 + e.rng.ExpFloat64()*3
		if gap > 10 {
			gap = 10
		}
		t = t2 + gap
	}
}

// dataJob is a daytime analysis pass: a long partial sequential read of
// the research data file plus scattered index probes.
func (e *EECS) dataJob(h *eecsHost, t float64) {
	cl := h.cl
	t2 := t
	files := 1 + e.rng.Intn(3)
	for j := 0; j < files; j++ {
		k := e.rng.Intn(len(h.dataFHs))
		frac := 0.15 + e.rng.Float64()*0.5
		n := uint64(float64(h.dataSizes[k])*frac) &^ 8191
		if n == 0 {
			n = 8192
		}
		start := uint64(e.rng.Int63n(int64(h.dataSizes[k]-n+1))) &^ 8191
		_, t2 = cl.ReadRange(t2, h.dataFHs[k], start, n)
		t2 += 1 + min(e.rng.ExpFloat64()*5, 15)
	}
	for i := 0; i < 5+e.rng.Intn(15); i++ {
		off := uint64(e.rng.Int63n(int64(h.idxSize/8192+1))) * 8192
		_, t2 = cl.ReadRange(t2+0.01, h.idxFH, off, 8192)
	}
	// Stage the processed output.
	h.cacheN++
	name := fmt.Sprintf("stage%05d.out", h.cacheN)
	if fh, t3 := cl.Create(t2, h.homeFH, name, true); fh != nil {
		cl.WriteRange(t3, fh, 0, uint64(256<<10+e.rng.Int63n(1<<20)))
	}
}
