package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfProbClosedForm checks the rank probabilities against the
// Zipf-Mandelbrot law directly: P(k) ∝ 1/(v+k)^s.
func TestZipfProbClosedForm(t *testing.T) {
	const s, v = 1.2, 1.0
	const n = 50
	z := NewZipf(s, v, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(v+float64(k), -s)
	}
	sum := 0.0
	for k := 0; k < n; k++ {
		want := math.Pow(v+float64(k), -s) / total
		if got := z.Prob(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want %v", k, got, want)
		}
		if k > 0 && z.Prob(k) > z.Prob(k-1) {
			t.Fatalf("Prob not non-increasing at %d", k)
		}
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// TestZipfRankFrequencies samples on an even grid of uniform variates —
// which makes empirical frequencies deterministic and within 1/N of the
// exact probabilities — and compares against Prob.
func TestZipfRankFrequencies(t *testing.T) {
	z := NewZipf(0.99, 1, 20)
	const n = 200000
	counts := make([]int, z.N())
	for i := 0; i < n; i++ {
		counts[z.Rank((float64(i)+0.5)/n)]++
	}
	for k := 0; k < z.N(); k++ {
		got := float64(counts[k]) / n
		if math.Abs(got-z.Prob(k)) > 1.0/n+1e-9 {
			t.Errorf("rank %d frequency %v, want %v", k, got, z.Prob(k))
		}
	}
}

// TestZipfUniform: s=0 degenerates to the uniform distribution.
func TestZipfUniform(t *testing.T) {
	z := NewZipf(0, 1, 10)
	for k := 0; k < 10; k++ {
		if math.Abs(z.Prob(k)-0.1) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.1", k, z.Prob(k))
		}
	}
}

// TestZipfDeterministic: same seed, same rank sequence.
func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(1.5, 2, 1000)
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		ra, rb := z.Rank(a.Float64()), z.Rank(b.Float64())
		if ra != rb {
			t.Fatalf("draw %d: %d != %d", i, ra, rb)
		}
		if ra < 0 || ra >= z.N() {
			t.Fatalf("rank %d out of range", ra)
		}
	}
	// Boundary variates.
	if z.Rank(0) != 0 {
		t.Fatalf("Rank(0) = %d, want 0", z.Rank(0))
	}
	if r := z.Rank(math.Nextafter(1, 0)); r != z.N()-1 {
		t.Fatalf("Rank(1-ε) = %d, want %d", r, z.N()-1)
	}
}
