package workload

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws ranks 0..n-1 with the Zipf-Mandelbrot law P(k) ∝ 1/(v+k)^s,
// the same parameterization as the SDPaxos/EPaxos benchmark clients
// (and math/rand.Zipf): s is the skew exponent (s=0 is uniform; the
// paper-era web/NFS folklore value is s≈1), v ≥ 1 flattens the head.
//
// The sampler is an explicit inverse-CDF table: O(n) setup, O(log n)
// per draw, exactly the stated distribution, and — because the caller
// supplies the uniform variate — deterministic under any seeded rng and
// independent of math/rand internals.
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n ranks. It panics on n ≤ 0, s < 0, or
// v < 1, which are configuration errors.
func NewZipf(s, v float64, n int) *Zipf {
	if n <= 0 || s < 0 || v < 1 {
		panic(fmt.Sprintf("workload: invalid zipf params s=%v v=%v n=%d", s, v, n))
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(v+float64(k), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // exact despite rounding
	return &Zipf{cum: cum}
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Rank maps a uniform variate u in [0,1) to a rank: the smallest k with
// CDF(k) > u. Rank 0 is the most popular.
func (z *Zipf) Rank(u float64) int {
	k := sort.Search(len(z.cum), func(i int) bool { return z.cum[i] > u })
	if k >= len(z.cum) {
		k = len(z.cum) - 1
	}
	return k
}

// Prob reports the exact probability of rank k, for tests and reports.
func (z *Zipf) Prob(k int) float64 {
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}
