// Package workload generates the two traced systems' traffic: CAMPUS
// (the university's central email environment: 10,000 accounts, POP and
// login servers, mailboxes, lock files, diurnal rhythm — scaled down by
// a configurable user count) and EECS (a CS-department home-directory
// server: metadata-dominated, write-heavy, browser caches, builds, log
// files).
//
// The generators drive simulated per-host NFS clients (with their
// caches and nfsiod pools) against a simulated server, emitting the
// trace records a perfectly positioned sniffer would capture. All
// randomness is seeded, so traces are reproducible.
package workload

import "container/heap"

// Sim is a minimal discrete-event simulator: schedule closures at
// absolute times, run until the horizon.
type Sim struct {
	// Now is the current simulation time in seconds.
	Now float64
	// End is the horizon; events at or past it are dropped.
	End float64

	q eventHeap
}

type event struct {
	t   float64
	seq int64 // tiebreaker for deterministic ordering
	fn  func(t float64)
}

type eventHeap struct {
	items []event
	seq   int64
}

func (h eventHeap) Len() int { return len(h.items) }
func (h eventHeap) Less(i, j int) bool {
	if h.items[i].t != h.items[j].t {
		return h.items[i].t < h.items[j].t
	}
	return h.items[i].seq < h.items[j].seq
}
func (h eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x any)   { h.items = append(h.items, x.(event)) }
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// At schedules fn to run at time t. Events past the horizon are
// silently dropped; events in the past run at the current time.
func (s *Sim) At(t float64, fn func(t float64)) {
	if t >= s.End {
		return
	}
	if t < s.Now {
		t = s.Now
	}
	s.q.seq++
	heap.Push(&s.q, event{t: t, seq: s.q.seq, fn: fn})
}

// Run processes events in time order until the queue empties or the
// horizon passes.
func (s *Sim) Run() {
	for s.q.Len() > 0 {
		ev := heap.Pop(&s.q).(event)
		if ev.t >= s.End {
			continue
		}
		s.Now = ev.t
		ev.fn(ev.t)
	}
	s.Now = s.End
}
