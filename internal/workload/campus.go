package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/server"
	"repro/internal/vfs"
)

// CampusConfig parameterizes the CAMPUS email workload (§3.2, §6.1.2).
// Defaults reproduce the paper's per-user behaviour; Users scales the
// population (the real home02 array held ~700 of the 10,000 accounts —
// simulate fewer and compare ratios and shapes, which are
// scale-invariant).
type CampusConfig struct {
	Seed  int64
	Users int
	// Days of trace to generate (the paper's window is 7, Sunday
	// through Saturday).
	Days float64

	// MailboxMedian is the median inbox size in bytes (the paper
	// reports >2 MB invalidation re-reads; inboxes are "considerably
	// larger than any other commonly-accessed file").
	MailboxMedian float64
	// DeliveriesPerDay is the per-user weekday email arrival count.
	DeliveriesPerDay float64
	// SessionsPerDay is the per-user weekday interactive mail-session
	// count (pine or POP full fetch).
	SessionsPerDay float64
	// PollsPerDay is the per-user weekday POP auto-check count: lock,
	// validate, unlock, no data when nothing changed.
	PollsPerDay float64
	// LoginsPerDay is the per-user weekday shell-login count (reads
	// .cshrc/.login).
	LoginsPerDay float64
	// ServerIP overrides the simulated disk array's address (the real
	// deployment exposed fourteen arrays as fourteen virtual hosts).
	// Zero selects ServerIPCampus.
	ServerIP uint32
}

// DefaultCampusConfig returns the paper-calibrated configuration at the
// given scale.
func DefaultCampusConfig(users int, days float64, seed int64) CampusConfig {
	return CampusConfig{
		Seed:             seed,
		Users:            users,
		Days:             days,
		MailboxMedian:    2 << 20,
		DeliveriesPerDay: 18,
		SessionsPerDay:   7,
		PollsPerDay:      90,
		LoginsPerDay:     3,
	}
}

// campusUser is one account's state.
type campusUser struct {
	uid       uint32
	gid       uint32
	homeFH    nfs.FH
	inboxFH   nfs.FH
	inboxSize uint64 // generator's belief (server is authoritative)
	popOffset uint64 // how far the POP server has fetched
	inSession bool
	composerN int
}

// Campus is the assembled CAMPUS system.
type Campus struct {
	cfg   CampusConfig
	rng   *rand.Rand
	sim   *Sim
	curve *DiurnalCurve
	srv   *server.Server
	smtp  *client.Client // mail delivery host
	pop   *client.Client // POP server host
	login *client.Client // interactive login host
	users []*campusUser
	root  nfs.FH
}

// ServerIPCampus is the traced disk array's address.
const ServerIPCampus = 0x0a010001

// NewCampus builds the filesystem, hosts, and users. Records flow to
// sink.
func NewCampus(cfg CampusConfig, sink client.Sink) *Campus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs := vfs.New()
	fs.QuotaPerUID = 50 << 20 // the CAMPUS 50 MB default quota
	simClock := 0.0
	fs.Clock = func() float64 { return simClock }
	srv := server.New(fs)

	c := &Campus{
		cfg:   cfg,
		rng:   rng,
		sim:   &Sim{End: cfg.Days * Day},
		curve: NewDiurnalCurve(0.25),
		srv:   srv,
		root:  fs.RootFH(),
	}
	// Hook the server clock to the simulator.
	fs.Clock = func() float64 { return c.sim.Now }

	// The three NFS client hosts: all NFSv3 over TCP (§3.2), jumbo net.
	serverIP := cfg.ServerIP
	if serverIP == 0 {
		serverIP = ServerIPCampus
	}
	mk := func(ip uint32, seed int64) *client.Client {
		cl := client.New(client.Config{
			IP: ip, UID: 0, GID: 0, Version: nfs.V3, Proto: core.ProtoTCP,
			Daemons: 6, Seed: seed,
		}, srv, serverIP, sink)
		cl.AttrTimeout = 30
		return cl
	}
	c.smtp = mk(0x0a010010, cfg.Seed^101)
	c.pop = mk(0x0a010011, cfg.Seed^202)
	c.login = mk(0x0a010012, cfg.Seed^303)

	c.populate(fs)
	return c
}

// Server exposes the simulated NFS server (for inspection in tests).
func (c *Campus) Server() *server.Server { return c.srv }

// Clients returns the three NFS client hosts (SMTP, POP, login), so
// callers can attach wire taps.
func (c *Campus) Clients() []*client.Client {
	return []*client.Client{c.smtp, c.pop, c.login}
}

// populate creates home directories, dot files, and pre-aged inboxes
// directly in the filesystem (setup happens before the trace window and
// must not appear in it).
func (c *Campus) populate(fs *vfs.FS) {
	for i := 0; i < c.cfg.Users; i++ {
		uid := uint32(2000 + i)
		gid := uint32(200)
		home, err := fs.MkdirAll(fmt.Sprintf("/home02/u%04d", i), uid, gid)
		if err != nil {
			panic(err)
		}
		u := &campusUser{uid: uid, gid: gid, homeFH: nfs.MakeFH(home.ID)}

		mkfile := func(name string, size uint64) *vfs.Inode {
			ino, err := fs.Create(home.ID, name, uid, gid, 0600)
			if err != nil {
				panic(err)
			}
			if size > 0 {
				if _, err := fs.Write(ino.ID, 0, size); err != nil {
					panic(err)
				}
			}
			return ino
		}
		// Dot files: .pinerc 11–26 KB (§6.3), shell rc files one block.
		mkfile(".pinerc", 11*1024+uint64(c.rng.Int63n(15*1024)))
		mkfile(".cshrc", 1024+uint64(c.rng.Int63n(3072)))
		mkfile(".login", 512+uint64(c.rng.Int63n(2048)))
		mkfile(".addressbook", 1024+uint64(c.rng.Int63n(8*1024)))

		// The inbox: lognormal around the configured median, capped
		// well under quota.
		size := uint64(LogNormal(c.rng, c.cfg.MailboxMedian, 1.0))
		if size < 50*1024 {
			size = 50 * 1024
		}
		if size > 30<<20 {
			size = 30 << 20
		}
		inbox := mkfile("inbox", size)
		u.inboxFH = nfs.MakeFH(inbox.ID)
		u.inboxSize = size
		u.popOffset = size // POP has already fetched the pre-trace mail

		// A couple of saved-mail folders.
		folders, err := fs.Mkdir(home.ID, "mail", uid, gid, 0700)
		if err != nil {
			panic(err)
		}
		for _, fn := range []string{"saved-messages", "sent-mail"} {
			ino, err := fs.Create(folders.ID, fn, uid, gid, 0600)
			if err != nil {
				panic(err)
			}
			fs.Write(ino.ID, 0, uint64(10*1024+c.rng.Int63n(500*1024)))
		}
		c.users = append(c.users, u)
	}
}

// Run schedules the whole window's events and executes them.
func (c *Campus) Run() {
	for i := range c.users {
		u := c.users[i]
		PoissonSchedule(c.rng, c.curve, c.cfg.DeliveriesPerDay, 0, c.sim.End,
			func(t float64) { c.sim.At(t, func(t float64) { c.deliver(u, t) }) })
		PoissonSchedule(c.rng, c.curve, c.cfg.SessionsPerDay, 0, c.sim.End,
			func(t float64) { c.sim.At(t, func(t float64) { c.session(u, t) }) })
		PoissonSchedule(c.rng, c.curve, c.cfg.PollsPerDay, 0, c.sim.End,
			func(t float64) { c.sim.At(t, func(t float64) { c.poll(u, t) }) })
		PoissonSchedule(c.rng, c.curve, c.cfg.LoginsPerDay, 0, c.sim.End,
			func(t float64) { c.sim.At(t, func(t float64) { c.shellLogin(u, t) }) })
	}
	c.sim.Run()
}

// deliver is one SMTP delivery: lock, append the message, unlock.
func (c *Campus) deliver(u *campusUser, t float64) {
	cl := c.smtp
	cl.UID, cl.GID = 0, 0 // deliveries run as the mail system
	lockName := "inbox.lock"
	lfh, t := cl.Create(t, u.homeFH, lockName, true)
	if fh, t2 := cl.LookupCached(t, u.homeFH, "inbox"); fh != nil {
		t = t2
		_ = fh
	}
	msg := uint64(LogNormal(c.rng, 4*1024, 1.1))
	if msg < 300 {
		msg = 300
	}
	if msg > 1<<20 {
		msg = 1 << 20
	}
	// Append to the inbox; track size from the server's truth.
	fh := u.inboxFH
	if ino, err := c.srv.FS.GetFH(fh); err == nil {
		t = cl.WriteRange(t, fh, ino.Size, msg)
		u.inboxSize = ino.Size
	}
	if lfh != nil {
		cl.Remove(t+0.001, u.homeFH, lockName)
	}
}

// poll is a POP auto-check: lock, validate the inbox, and — when the
// mailbox changed — re-read the whole file. The flat-file format forces
// the POP server to re-parse the entire mailbox to rebuild its message
// list: the "unfortunate interaction" of §6.1.2 that makes mailbox
// re-reads the majority of all CAMPUS reads. Most polls see no change
// and move no data, which is where the "50% of files accessed are
// mailbox locks" figure and the metadata floor come from.
func (c *Campus) poll(u *campusUser, t float64) {
	cl := c.pop
	cl.UID, cl.GID = u.uid, u.gid
	lfh, t := cl.Create(t, u.homeFH, "inbox.lock", true)
	_, t = cl.LookupCached(t, u.homeFH, "inbox")
	if c.rng.Float64() < 0.5 {
		_, t = cl.Getattr(t, u.homeFH)
	}
	_, t = cl.StatCached(t, u.inboxFH)
	if ino, err := c.srv.FS.GetFH(u.inboxFH); err == nil {
		if ino.Size != u.popOffset {
			_, t = cl.ReadFile(t, u.inboxFH, ino.Size)
		}
		u.popOffset = ino.Size
	}
	if lfh != nil {
		cl.Remove(t+0.001, u.homeFH, "inbox.lock")
	}
}

// session is an interactive mail session: read config, lock, scan the
// mailbox, then a sequence of in-session saves ending with the final
// rewrite and unlock. Intermediate phases are scheduled so deliveries
// interleave, which is what gives CAMPUS blocks their 10–15 minute
// median lifetime.
func (c *Campus) session(u *campusUser, t float64) {
	if u.inSession {
		return // one interactive session at a time per user
	}
	u.inSession = true
	cl := c.login
	cl.UID, cl.GID = u.uid, u.gid

	// Read the mail client config and validate the other dot files.
	pinerc, t2 := cl.LookupCached(t, u.homeFH, ".pinerc")
	if pinerc != nil {
		if ino, err := c.srv.FS.GetFH(pinerc); err == nil {
			_, t2 = cl.ReadFile(t2, pinerc, ino.Size)
		}
	}
	for _, dot := range []string{".addressbook", ".cshrc"} {
		if fh, t3 := cl.LookupCached(t2, u.homeFH, dot); fh != nil {
			_, t2 = cl.Getattr(t3, fh)
		}
	}
	if c.rng.Float64() < 0.2 {
		_, t2 = cl.Readdir(t2, u.homeFH)
	}
	// Lock briefly, scan the inbox, release. Mail clients hold the
	// dotlock only around mailbox I/O, which is why 99.9% of lock
	// files live under half a second (§6.3).
	_, t2 = cl.LookupCached(t2, u.homeFH, "inbox")
	_, t2 = cl.Create(t2, u.homeFH, "inbox.lock", true)
	if ino, err := c.srv.FS.GetFH(u.inboxFH); err == nil {
		_, t2 = cl.ReadFile(t2, u.inboxFH, ino.Size)
	}
	_, t2 = cl.Remove(t2, u.homeFH, "inbox.lock")

	// Session length 10–40 min with saves every 6–12 min.
	length := (10 + c.rng.Float64()*30) * 60
	deadline := t2 + length
	c.scheduleSessionPhase(u, t2, deadline)
}

// scheduleSessionPhase runs the next save (or the final one) for an
// open session.
func (c *Campus) scheduleSessionPhase(u *campusUser, t, deadline float64) {
	next := t + (6+c.rng.Float64()*6)*60
	final := next >= deadline
	if final {
		next = deadline
	}
	c.sim.At(next, func(now float64) {
		cl := c.login
		cl.UID, cl.GID = u.uid, u.gid
		t := now
		// Rescan if mail arrived since the last look: the file-grain
		// client cache re-reads the whole mailbox (§6.1.2).
		if changed, t2 := cl.StatCached(t, u.inboxFH); changed {
			if ino, err := c.srv.FS.GetFH(u.inboxFH); err == nil {
				_, t2 = cl.ReadFile(t2, u.inboxFH, ino.Size)
			}
			t = t2
		}
		// Page through a few messages: the webmail front end re-reads
		// each viewed message from the mailbox (fresh process, no
		// cache), producing the short sequential read runs that
		// dominate the CAMPUS read-run count.
		t = c.viewMessages(u, t)
		// Occasionally compose a message (temp file in the home dir).
		if c.rng.Float64() < 0.25 {
			t = c.compose(u, t)
		}
		// Save a message to a folder now and then.
		if c.rng.Float64() < 0.3 {
			t = c.folderAppend(u, t)
		}
		_, t = cl.Create(t, u.homeFH, "inbox.lock", true)
		t = c.saveMailbox(u, t, final)
		_, t = cl.Remove(t+0.001, u.homeFH, "inbox.lock")
		if final {
			u.inSession = false
			// Bursty checking: users often come back within half an
			// hour, which is what pins block lifetimes near the
			// session length (§5.2.3).
			if c.rng.Float64() < 0.5 {
				c.sim.At(t+(8+c.rng.Float64()*22)*60, func(t2 float64) {
					c.session(u, t2)
				})
			}
			return
		}
		c.scheduleSessionPhase(u, t, deadline)
	})
	// The simulator drops events past the horizon, which would leave
	// the session open; close it eagerly in that case.
	if next >= c.sim.End {
		u.inSession = false
	}
}

// saveMailbox writes the mail client's changes back to the mailbox.
// Three shapes, matching the run mix the paper reports (§5.1, §6.4):
//
//   - Final saves often rewrite the whole file ("Quitting the mail
//     client causes some or all of the mailbox file to be rewritten"):
//     an *entire* sequential write run.
//   - Most mid-session saves flush the recently changed tail as one
//     contiguous region: a *sequential* (not entire) run.
//   - Some saves rewrite scattered per-message regions, seeking over
//     unchanged messages: the long seek-prone write runs whose
//     sequentiality metric hovers near 0.6 in Figure 5.
//
// Rare expunges shrink the file, killing tail blocks by truncation
// (the paper's 0.6% of deaths).
func (c *Campus) saveMailbox(u *campusUser, t float64, final bool) float64 {
	cl := c.login
	ino, err := c.srv.FS.GetFH(u.inboxFH)
	if err != nil {
		return t
	}
	size := ino.Size
	if size == 0 {
		return t
	}
	const blk = 8192
	style := "tail"
	if final && c.rng.Float64() < 0.9 {
		style = "full"
	} else if c.rng.Float64() < 0.12 {
		style = "scattered"
	}
	newSize := size
	if c.rng.Float64() < 0.04 { // rare expunge shrinks the file
		newSize = uint64(float64(size) * (0.5 + c.rng.Float64()*0.4))
		newSize &^= blk - 1
		if newSize == 0 {
			newSize = blk
		}
	}
	switch style {
	case "full":
		t = cl.WriteRange(t, u.inboxFH, 0, newSize)
	case "tail":
		region := uint64(64*1024) + uint64(c.rng.Int63n(192*1024))
		if region > newSize {
			region = newSize
		}
		from := (newSize - region) &^ (blk - 1)
		t = cl.WriteRange(t, u.inboxFH, from, newSize-from)
	case "scattered":
		// Bursts of a few blocks separated by seeks over unchanged
		// messages; roughly 60% of accesses end up k-consecutive.
		from := uint64(0)
		if newSize > 1<<20 {
			from = (newSize - 1<<20) &^ (blk - 1)
		}
		off := from
		for off < newSize {
			stretch := uint64(3+c.rng.Intn(8)) * blk
			if off+stretch > newSize {
				stretch = newSize - off
			}
			t = cl.WriteRange(t, u.inboxFH, off, stretch)
			off += stretch
			if c.rng.Float64() < 0.5 {
				off += uint64(12+c.rng.Intn(30)) * blk
			}
		}
	}
	if newSize < size {
		t = cl.SetattrTruncate(t, u.inboxFH, newSize)
	}
	u.inboxSize = newSize
	return t
}

// compose creates a mail-composer temp file, writes the draft, reads it
// back, and removes it (§6.3: 2.5% of files created per day; 98% < 8 KB;
// 45% live < 1 minute).
func (c *Campus) compose(u *campusUser, t float64) float64 {
	cl := c.login
	u.composerN++
	name := fmt.Sprintf("pico.%06d", u.composerN)
	fh, t := cl.Create(t, u.homeFH, name, true)
	if fh == nil {
		return t
	}
	size := uint64(LogNormal(c.rng, 2*1024, 0.9))
	if size > 40*1024 {
		size = 40 * 1024
	}
	// The draft stays in the composer's memory; only writes reach the
	// server.
	t = cl.WriteRange(t, fh, 0, size)
	// Most drafts are sent and removed quickly; some linger.
	delay := 20 + c.rng.ExpFloat64()*60
	end := t + delay
	if end < c.sim.End {
		c.sim.At(end, func(now float64) {
			cl.UID, cl.GID = u.uid, u.gid
			cl.Remove(now, u.homeFH, name)
		})
	}
	return t
}

// shellLogin reads the shell startup files on the login host.
func (c *Campus) shellLogin(u *campusUser, t float64) {
	cl := c.login
	cl.UID, cl.GID = u.uid, u.gid
	for _, f := range []string{".cshrc", ".login"} {
		fh, t2 := cl.LookupCached(t, u.homeFH, f)
		if fh != nil {
			if ino, err := c.srv.FS.GetFH(fh); err == nil {
				_, t2 = cl.ReadFile(t2, fh, ino.Size)
			}
		}
		t = t2
	}
}

// viewMessages reads a handful of individual messages out of the
// mailbox: short reads at scattered starting points, each sequential
// within itself. Separated by human think time, each view is its own
// run. A few views jump backwards mid-view (re-reading headers), which
// is where CAMPUS's small population of random read runs comes from.
func (c *Campus) viewMessages(u *campusUser, t float64) float64 {
	cl := c.login
	ino, err := c.srv.FS.GetFH(u.inboxFH)
	if err != nil || ino.Size == 0 {
		return t
	}
	views := 1 + c.rng.Intn(2)
	for i := 0; i < views; i++ {
		n := uint64(12*1024) + uint64(c.rng.Int63n(56*1024))
		var off uint64
		if ino.Size > n {
			off = uint64(c.rng.Int63n(int64(ino.Size-n))) &^ 8191
		}
		_, t = cl.ReadRange(t, u.inboxFH, off, n)
		if c.rng.Float64() < 0.12 && off >= 16*1024 {
			// Jump back to re-read the message header block.
			_, t = cl.ReadRange(t+0.5, u.inboxFH, off-16*1024, 8192)
		}
		think := 35 + c.rng.ExpFloat64()*40 // think time: separate runs
		if think > 90 {
			think = 90
		}
		t += think
	}
	return t
}

// folderAppend saves a message to a mail folder (mail/saved-messages or
// mail/sent-mail): a lookup and a short append, adding the non-inbox,
// non-lock file population the paper observes.
func (c *Campus) folderAppend(u *campusUser, t float64) float64 {
	cl := c.login
	dirFH, t := cl.LookupCached(t, u.homeFH, "mail")
	if dirFH == nil {
		return t
	}
	name := "saved-messages"
	if c.rng.Float64() < 0.4 {
		name = "sent-mail"
	}
	fh, t := cl.LookupCached(t, dirFH, name)
	if fh == nil {
		return t
	}
	if ino, err := c.srv.FS.GetFH(fh); err == nil {
		msg := uint64(LogNormal(c.rng, 4*1024, 1.0))
		if msg > 256*1024 {
			msg = 256 * 1024
		}
		t = cl.WriteRange(t, fh, ino.Size, msg)
	}
	return t
}
