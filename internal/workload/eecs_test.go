package workload

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nfs"
)

func TestEECSV2ClientsRespectTransferLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateEECS(t, 3, 0.5)
	for _, op := range ops {
		if op.Version == nfs.V2 && (op.IsRead() || op.IsWrite()) {
			if op.Count > 8192 {
				t.Fatalf("v2 %s with count %d", op.Proc, op.Count)
			}
		}
	}
}

func TestEECSLogRotationDeletesAndRecreates(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateEECS(t, 2, 1)
	var renames, removes, creates int
	for _, op := range ops {
		switch {
		case op.Proc == core.MustProc("rename") && op.Name == "experiment.log":
			renames++
		case op.Proc == core.MustProc("remove") && op.Name == "experiment.log.0":
			removes++
		case op.Proc == core.MustProc("create") && op.Name == "experiment.log":
			creates++
		}
	}
	if renames == 0 || removes == 0 || creates == 0 {
		t.Fatalf("log rotation missing: %d renames, %d removes, %d creates",
			renames, removes, creates)
	}
}

func TestEECSAppletChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateEECS(t, 2, 0.5)
	created := map[string]float64{}
	var lifetimes []float64
	for _, op := range ops {
		if !strings.HasPrefix(op.Name, "Applet_") {
			continue
		}
		switch op.Proc {
		case core.ProcCreate:
			created[op.Name] = op.T
		case core.ProcRemove:
			if t0, ok := created[op.Name]; ok {
				lifetimes = append(lifetimes, op.T-t0)
				delete(created, op.Name)
			}
		}
	}
	if len(lifetimes) < 50 {
		t.Fatalf("only %d applet create/delete pairs", len(lifetimes))
	}
	fast := 0
	for _, l := range lifetimes {
		if l < 2 {
			fast++
		}
	}
	if float64(fast) < 0.8*float64(len(lifetimes)) {
		t.Fatalf("applet files not short-lived: %d/%d under 2s", fast, len(lifetimes))
	}
}

func TestEECSNightJobsOffPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	// Cron jobs follow the inverted curve: big sequential reads should
	// be relatively more frequent off-peak. Count long reads (>1MB of
	// consecutive read ops on one file within a minute) by hour class.
	ops, _ := generateEECS(t, 3, 2)
	var peakBytes, offBytes, peakHours, offHours float64
	for _, op := range ops {
		if !op.IsRead() {
			continue
		}
		if IsPeak(op.T) {
			peakBytes += float64(op.Bytes())
		} else {
			offBytes += float64(op.Bytes())
		}
	}
	for h := 0; h < 48; h++ {
		if IsPeak(float64(h) * Hour) {
			peakHours++
		} else {
			offHours++
		}
	}
	if peakBytes == 0 || offBytes == 0 {
		t.Fatal("read bytes missing from one class")
	}
	// Per-hour off-peak read rate should not collapse to zero (cron
	// keeps the nights busy), unlike CAMPUS.
	offRate := offBytes / offHours
	peakRate := peakBytes / peakHours
	if offRate < peakRate*0.05 {
		t.Fatalf("EECS nights too quiet: off=%.0f peak=%.0f bytes/h", offRate, peakRate)
	}
}

func TestCampusLockTransience(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	ops, _ := generateCampus(t, 3, 1)
	created := map[core.FH]float64{} // per-home lock create time
	var lifetimes []float64
	for _, op := range ops {
		if op.Name != "inbox.lock" {
			continue
		}
		switch op.Proc {
		case core.ProcCreate:
			created[op.FH] = op.T
		case core.ProcRemove:
			if t0, ok := created[op.FH]; ok {
				lifetimes = append(lifetimes, op.T-t0)
				delete(created, op.FH)
			}
		}
	}
	if len(lifetimes) < 100 {
		t.Fatalf("only %d lock cycles", len(lifetimes))
	}
	under := 0
	for _, l := range lifetimes {
		if l < 0.4 {
			under++
		}
	}
	if frac := float64(under) / float64(len(lifetimes)); frac < 0.95 {
		t.Fatalf("locks under 0.4s: %.2f, want ≈1 (paper: 99.9%%)", frac)
	}
}

func TestCampusTCPJumboOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	NewCampus(DefaultCampusConfig(2, 0.2, 5), sorter).Run()
	sorter.Flush()
	for _, r := range sink.Records {
		if r.Proto != core.ProtoTCP {
			t.Fatal("CAMPUS record not over TCP")
		}
		if r.Version != nfs.V3 {
			t.Fatal("CAMPUS record not NFSv3")
		}
	}
}

func TestEECSUDPOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation")
	}
	sink := &client.SliceSink{}
	sorter := client.NewSortingSink(sink)
	NewEECS(DefaultEECSConfig(3, 0.2, 5), sorter).Run()
	sorter.Flush()
	for _, r := range sink.Records {
		if r.Proto != core.ProtoUDP {
			t.Fatal("EECS record not over UDP")
		}
	}
}
