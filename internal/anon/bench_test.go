package anon

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func BenchmarkNameHit(b *testing.B) {
	a := New(DefaultConfig(1))
	a.Name("thesis.tex") // warm the table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Name("thesis.tex")
	}
}

func BenchmarkNameMiss(b *testing.B) {
	a := New(DefaultConfig(1))
	names := make([]string, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("file%06d.c", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Name(names[i%len(names)])
	}
}

func BenchmarkRecord(b *testing.B) {
	a := New(DefaultConfig(1))
	rec := core.Record{
		Kind: core.KindCall, Client: 0x0a000001, Server: 0x0a000002,
		UID: 501, GID: 100, Name: "draft.txt", Proc: core.MustProc("lookup"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rec
		a.Record(&r)
	}
}
