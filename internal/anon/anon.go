// Package anon implements the paper's trace anonymizer (§2): consistent
// but arbitrary replacement of UIDs, GIDs, IP addresses, and filename
// components.
//
// Properties reproduced from the paper:
//
//   - Mappings are table-based and random, NOT hashes: without the
//     mapping table an attacker cannot verify a guess offline, and
//     traces from different sites cannot be cross-compared.
//   - Pathnames are anonymized per component, so two paths sharing a
//     prefix share the anonymized prefix.
//   - Filename suffixes are anonymized separately from the base name,
//     so all files sharing ".c" share one anonymized suffix.
//   - The mapping is configurable: well-known names (CVS, .inbox,
//     .pinerc, lock) and principals (root, daemon) can be passed
//     through; special prefixes and suffixes (#, ,v, ~) are preserved
//     so that "mbox~" anonymizes to anon(mbox)+"~".
//   - Everything can be omitted entirely (Omit mode) for maximum
//     privacy at the cost of name-based analyses.
//
// Mappings can be saved and reloaded so multi-file traces anonymize
// consistently across runs.
package anon

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Config controls the anonymizer. The zero value anonymizes everything
// with no pass-throughs.
type Config struct {
	// Seed drives the random mappings; traces anonymized with different
	// seeds are not comparable (by design).
	Seed int64
	// Omit removes names, UIDs, GIDs entirely instead of mapping them.
	Omit bool
	// PassNames are filename components passed through unchanged.
	PassNames []string
	// PassSuffixes are suffixes (without dot) passed through unchanged.
	PassSuffixes []string
	// PassUIDs and PassGIDs are principals passed through unchanged.
	PassUIDs []uint32
	PassGIDs []uint32
	// SpecialPrefixes are markers stripped before mapping and
	// reattached after (default "#").
	SpecialPrefixes []string
	// SpecialSuffixes are markers stripped before mapping and
	// reattached after (default "~", ",v", ".lock").
	SpecialSuffixes []string
}

// DefaultConfig mirrors the paper's own configuration: common mail and
// source-control names stay readable, lock markers are preserved, root
// and daemon stay identifiable.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed,
		PassNames: []string{
			"CVS", ".inbox", ".pinerc", ".cshrc", ".login", "lock",
			"mbox", "inbox", "core", "Makefile",
		},
		PassSuffixes:    []string{"lock", "tmp"},
		PassUIDs:        []uint32{0, 1}, // root, daemon
		PassGIDs:        []uint32{0, 1},
		SpecialPrefixes: []string{"#", "."},
		SpecialSuffixes: []string{"~", ",v", ".lock"},
	}
}

// Anonymizer holds the mapping tables. Create with New; safe for
// sequential use.
type Anonymizer struct {
	cfg Config
	rng *rand.Rand

	uids  map[uint32]uint32
	gids  map[uint32]uint32
	ips   map[uint32]uint32
	names map[string]string
	sufs  map[string]string

	usedID  map[uint32]bool // collision avoidance for uids/gids
	usedIP  map[uint32]bool
	usedTok map[string]bool

	passNames map[string]bool
	passSufs  map[string]bool
	passUIDs  map[uint32]bool
	passGIDs  map[uint32]bool
}

// New builds an anonymizer from a config.
func New(cfg Config) *Anonymizer {
	a := &Anonymizer{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		uids:      make(map[uint32]uint32),
		gids:      make(map[uint32]uint32),
		ips:       make(map[uint32]uint32),
		names:     make(map[string]string),
		sufs:      make(map[string]string),
		usedID:    make(map[uint32]bool),
		usedIP:    make(map[uint32]bool),
		usedTok:   make(map[string]bool),
		passNames: make(map[string]bool),
		passSufs:  make(map[string]bool),
		passUIDs:  make(map[uint32]bool),
		passGIDs:  make(map[uint32]bool),
	}
	for _, n := range cfg.PassNames {
		a.passNames[n] = true
	}
	for _, s := range cfg.PassSuffixes {
		a.passSufs[s] = true
	}
	for _, u := range cfg.PassUIDs {
		a.passUIDs[u] = true
		a.usedID[u] = true // never map another id onto a passed one
	}
	for _, g := range cfg.PassGIDs {
		a.passGIDs[g] = true
		a.usedID[g] = true
	}
	return a
}

func (a *Anonymizer) freshID() uint32 {
	for {
		v := uint32(a.rng.Int63n(1 << 24)) // compact but roomy id space
		if !a.usedID[v] {
			a.usedID[v] = true
			return v
		}
	}
}

func (a *Anonymizer) freshIP() uint32 {
	for {
		// Map into 10.x.x.x to make anonymized addresses obvious.
		v := 0x0a000000 | uint32(a.rng.Int63n(1<<24))
		if !a.usedIP[v] {
			a.usedIP[v] = true
			return v
		}
	}
}

const tokenAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

func (a *Anonymizer) freshToken(n int) string {
	for {
		b := make([]byte, n)
		for i := range b {
			b[i] = tokenAlphabet[a.rng.Intn(len(tokenAlphabet))]
		}
		tok := string(b)
		if !a.usedTok[tok] {
			a.usedTok[tok] = true
			return tok
		}
	}
}

// UID maps a user id.
func (a *Anonymizer) UID(uid uint32) uint32 {
	if a.passUIDs[uid] {
		return uid
	}
	if v, ok := a.uids[uid]; ok {
		return v
	}
	v := a.freshID()
	a.uids[uid] = v
	return v
}

// GID maps a group id.
func (a *Anonymizer) GID(gid uint32) uint32 {
	if a.passGIDs[gid] {
		return gid
	}
	if v, ok := a.gids[gid]; ok {
		return v
	}
	v := a.freshID()
	a.gids[gid] = v
	return v
}

// IP maps a host address.
func (a *Anonymizer) IP(ip uint32) uint32 {
	if v, ok := a.ips[ip]; ok {
		return v
	}
	v := a.freshIP()
	a.ips[ip] = v
	return v
}

// Name maps one filename (a single path component). Special prefixes
// and suffixes are preserved around the mapped base; the extension is
// mapped separately from the base so suffix-sharing survives.
func (a *Anonymizer) Name(name string) string {
	if name == "" || a.passNames[name] {
		return name
	}
	// Peel special prefixes.
	var prefix string
	for changed := true; changed; {
		changed = false
		for _, p := range a.cfg.SpecialPrefixes {
			if p != "" && strings.HasPrefix(name, p) && len(name) > len(p) {
				prefix += p
				name = name[len(p):]
				changed = true
			}
		}
	}
	// Peel special suffixes (repeatedly: "mbox.lock~" keeps both).
	var suffix string
	for changed := true; changed; {
		changed = false
		for _, sfx := range a.cfg.SpecialSuffixes {
			if sfx != "" && strings.HasSuffix(name, sfx) && len(name) > len(sfx) {
				suffix = sfx + suffix
				name = name[:len(name)-len(sfx)]
				changed = true
			}
		}
	}
	if a.passNames[name] {
		return prefix + name + suffix
	}
	// Split the extension at the last dot.
	base, ext := name, ""
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		base, ext = name[:i], name[i+1:]
	}
	mapped := a.mapBase(base)
	if ext != "" {
		mapped += "." + a.mapSuffix(ext)
	}
	return prefix + mapped + suffix
}

func (a *Anonymizer) mapBase(base string) string {
	if base == "" {
		return ""
	}
	if a.passNames[base] {
		return base
	}
	if v, ok := a.names[base]; ok {
		return v
	}
	n := len(base)
	if n < 3 {
		n = 3
	}
	if n > 12 {
		n = 12
	}
	v := a.freshToken(n)
	a.names[base] = v
	return v
}

func (a *Anonymizer) mapSuffix(ext string) string {
	if a.passSufs[ext] {
		return ext
	}
	if v, ok := a.sufs[ext]; ok {
		return v
	}
	n := len(ext)
	if n < 2 {
		n = 2
	}
	if n > 6 {
		n = 6
	}
	v := a.freshToken(n)
	a.sufs[ext] = v
	return v
}

// Path maps a /-separated path per component, preserving structure.
func (a *Anonymizer) Path(p string) string {
	if p == "" {
		return ""
	}
	parts := strings.Split(p, "/")
	for i, part := range parts {
		parts[i] = a.Name(part)
	}
	return strings.Join(parts, "/")
}

// Record anonymizes one trace record in place.
func (a *Anonymizer) Record(r *core.Record) {
	if a.cfg.Omit {
		r.Name, r.Name2 = "", ""
		r.UID, r.GID = 0, 0
		r.Client, r.Server = 0, 0
		return
	}
	r.Client = a.IP(r.Client)
	r.Server = a.IP(r.Server)
	if r.Kind == core.KindCall {
		r.UID = a.UID(r.UID)
		r.GID = a.GID(r.GID)
	}
	if r.Name != "" {
		r.Name = a.Name(r.Name)
	}
	if r.Name2 != "" {
		r.Name2 = a.Name(r.Name2)
	}
}

// Stats reports mapping table sizes.
func (a *Anonymizer) Stats() (uids, gids, ips, names, suffixes int) {
	return len(a.uids), len(a.gids), len(a.ips), len(a.names), len(a.sufs)
}

// Save writes the mapping tables in a reloadable text form. Order is
// deterministic so saves are diffable.
func (a *Anonymizer) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# anon map v1 seed=%d\n", a.cfg.Seed)
	writeU32 := func(kind string, m map[uint32]uint32) {
		keys := make([]uint32, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Fprintf(bw, "%s %d %d\n", kind, k, m[k])
		}
	}
	writeU32("uid", a.uids)
	writeU32("gid", a.gids)
	writeU32("ip", a.ips)
	writeStr := func(kind string, m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "%s %s %s\n", kind, strconv.Quote(k), strconv.Quote(m[k]))
		}
	}
	writeStr("name", a.names)
	writeStr("suffix", a.sufs)
	return bw.Flush()
}

// Load merges a previously saved mapping table into the anonymizer, so
// later traces reuse earlier assignments.
func (a *Anonymizer) Load(r io.Reader) error {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for s.Scan() {
		lineNo++
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("anon: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		switch fields[0] {
		case "uid", "gid", "ip":
			k, err1 := strconv.ParseUint(fields[1], 10, 32)
			v, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("anon: line %d: bad numeric mapping", lineNo)
			}
			switch fields[0] {
			case "uid":
				a.uids[uint32(k)] = uint32(v)
				a.usedID[uint32(v)] = true
			case "gid":
				a.gids[uint32(k)] = uint32(v)
				a.usedID[uint32(v)] = true
			case "ip":
				a.ips[uint32(k)] = uint32(v)
				a.usedIP[uint32(v)] = true
			}
		case "name", "suffix":
			k, err1 := strconv.Unquote(fields[1])
			v, err2 := strconv.Unquote(fields[2])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("anon: line %d: bad string mapping", lineNo)
			}
			if fields[0] == "name" {
				a.names[k] = v
			} else {
				a.sufs[k] = v
			}
			a.usedTok[v] = true
		default:
			return fmt.Errorf("anon: line %d: unknown kind %q", lineNo, fields[0])
		}
	}
	return s.Err()
}
