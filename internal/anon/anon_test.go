package anon

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newAnon() *Anonymizer { return New(DefaultConfig(42)) }

func TestConsistentMapping(t *testing.T) {
	a := newAnon()
	if a.UID(501) != a.UID(501) {
		t.Error("uid mapping inconsistent")
	}
	if a.GID(100) != a.GID(100) {
		t.Error("gid mapping inconsistent")
	}
	if a.IP(0xC0A80101) != a.IP(0xC0A80101) {
		t.Error("ip mapping inconsistent")
	}
	if a.Name("thesis.tex") != a.Name("thesis.tex") {
		t.Error("name mapping inconsistent")
	}
}

func TestDistinctInputsDistinctOutputs(t *testing.T) {
	a := newAnon()
	seen := map[uint32]bool{}
	for uid := uint32(100); uid < 600; uid++ {
		v := a.UID(uid)
		if seen[v] {
			t.Fatalf("uid collision at %d", uid)
		}
		seen[v] = true
	}
	names := map[string]bool{}
	for _, n := range []string{"alpha", "beta", "gamma", "delta"} {
		v := a.Name(n)
		if names[v] {
			t.Fatalf("name collision for %q", n)
		}
		names[v] = true
	}
}

func TestNotIdentityForPrivateValues(t *testing.T) {
	a := newAnon()
	if a.UID(501) == 501 {
		t.Error("uid passed through unexpectedly")
	}
	if got := a.Name("smithfamily"); got == "smithfamily" {
		t.Error("private name passed through")
	}
}

func TestPassThroughs(t *testing.T) {
	a := newAnon()
	if a.UID(0) != 0 || a.GID(0) != 0 {
		t.Error("root not passed through")
	}
	for _, n := range []string{"CVS", ".inbox", ".pinerc", "lock", "mbox"} {
		if a.Name(n) != n {
			t.Errorf("%q not passed through: %q", n, a.Name(n))
		}
	}
}

func TestSuffixSharing(t *testing.T) {
	a := newAnon()
	n1 := a.Name("main.c")
	n2 := a.Name("util.c")
	s1 := n1[strings.LastIndexByte(n1, '.')+1:]
	s2 := n2[strings.LastIndexByte(n2, '.')+1:]
	if s1 != s2 {
		t.Fatalf("suffix not shared: %q vs %q", n1, n2)
	}
	// Different extensions map differently.
	n3 := a.Name("main.h")
	s3 := n3[strings.LastIndexByte(n3, '.')+1:]
	if s3 == s1 {
		t.Fatalf("distinct suffixes collided: %q vs %q", n1, n3)
	}
	// Same base, different extension shares base token.
	b1 := n1[:strings.LastIndexByte(n1, '.')]
	b3 := n3[:strings.LastIndexByte(n3, '.')]
	if b1 != b3 {
		t.Fatalf("base not shared: %q vs %q", n1, n3)
	}
}

func TestSpecialSuffixPreserved(t *testing.T) {
	a := newAnon()
	base := a.Name("draft")
	backup := a.Name("draft~")
	if backup != base+"~" {
		t.Fatalf("backup relation lost: %q vs %q~", backup, base)
	}
	rcs := a.Name("draft,v")
	if rcs != base+",v" {
		t.Fatalf("RCS relation lost: %q vs %q,v", rcs, base)
	}
	lk := a.Name("draft.lock")
	if lk != base+".lock" {
		t.Fatalf("lock relation lost: %q vs %q.lock", lk, base)
	}
}

func TestSpecialPrefixPreserved(t *testing.T) {
	a := newAnon()
	base := a.Name("draft")
	hashed := a.Name("#draft")
	if hashed != "#"+base {
		t.Fatalf("prefix relation lost: %q vs #%q", hashed, base)
	}
	dotted := a.Name(".secretrc")
	if !strings.HasPrefix(dotted, ".") {
		t.Fatalf("dot prefix lost: %q", dotted)
	}
	if dotted == ".secretrc" {
		t.Fatal("private dot file passed through")
	}
}

func TestPathPrefixSharing(t *testing.T) {
	a := newAnon()
	p1 := a.Path("home/jones/mail/inbox")
	p2 := a.Path("home/jones/projects/thesis.tex")
	parts1 := strings.Split(p1, "/")
	parts2 := strings.Split(p2, "/")
	if parts1[0] != parts2[0] || parts1[1] != parts2[1] {
		t.Fatalf("shared prefix broken: %q vs %q", p1, p2)
	}
	if parts1[2] == parts2[2] {
		t.Fatal("distinct components collided")
	}
}

func TestRecordAnonymization(t *testing.T) {
	a := newAnon()
	r := &core.Record{
		Kind: core.KindCall, Client: 0xC0A80105, Server: 0xC0A80101,
		UID: 501, GID: 100, Name: "love-letter.txt", Proc: core.MustProc("lookup"),
	}
	orig := *r
	a.Record(r)
	if r.Client == orig.Client || r.UID == orig.UID || r.Name == orig.Name {
		t.Fatalf("record not anonymized: %+v", r)
	}
	// Same inputs anonymize the same way in a second record.
	r2 := orig
	a.Record(&r2)
	if r2.Client != r.Client || r2.UID != r.UID || r2.Name != r.Name {
		t.Fatal("record anonymization inconsistent")
	}
}

func TestOmitMode(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Omit = true
	a := New(cfg)
	r := &core.Record{Kind: core.KindCall, Client: 5, UID: 501, GID: 100, Name: "x"}
	a.Record(r)
	if r.Name != "" || r.UID != 0 || r.GID != 0 || r.Client != 0 {
		t.Fatalf("omit left data: %+v", r)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a1 := New(DefaultConfig(1))
	a2 := New(DefaultConfig(2))
	same := 0
	for _, n := range []string{"projectx", "secret", "grades", "budget"} {
		if a1.Name(n) == a2.Name(n) {
			same++
		}
	}
	if same == 4 {
		t.Fatal("different seeds produced identical mappings (hash-like behavior)")
	}
	if a1.UID(501) == a2.UID(501) && a1.UID(502) == a2.UID(502) && a1.UID(503) == a2.UID(503) {
		t.Fatal("uid mapping looks deterministic across seeds")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := newAnon()
	inputs := []string{"alpha.c", "beta.tex", "gamma~", "#delta", "plain"}
	want := map[string]string{}
	for _, n := range inputs {
		want[n] = a.Name(n)
	}
	u501 := a.UID(501)
	ip := a.IP(12345)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh anonymizer (different seed) loading the map must agree.
	b := New(DefaultConfig(999))
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for n, w := range want {
		if got := b.Name(n); got != w {
			t.Errorf("after load, Name(%q) = %q, want %q", n, got, w)
		}
	}
	if b.UID(501) != u501 {
		t.Error("uid mapping lost in save/load")
	}
	if b.IP(12345) != ip {
		t.Error("ip mapping lost in save/load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	b := newAnon()
	for _, text := range []string{
		"uid notanumber 5\n",
		"name \"unterminated 5\n",
		"bogus 1 2\n",
		"uid 1\n",
	} {
		if err := b.Load(strings.NewReader(text)); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestStats(t *testing.T) {
	a := newAnon()
	a.UID(501)
	a.GID(100)
	a.IP(1)
	a.Name("x.y")
	u, g, i, n, s := a.Stats()
	if u != 1 || g != 1 || i != 1 || n != 1 || s != 1 {
		t.Fatalf("stats: %d %d %d %d %d", u, g, i, n, s)
	}
}

func TestNameNeverEmptyQuick(t *testing.T) {
	a := newAnon()
	f := func(s string) bool {
		if s == "" {
			return a.Name(s) == ""
		}
		got := a.Name(s)
		// Mapping must be stable and non-empty for non-empty input.
		return got != "" && got == a.Name(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnonymizedNameStructure(t *testing.T) {
	// A deeply decorated name keeps all its markers.
	a := newAnon()
	got := a.Name("#report.tex~")
	if !strings.HasPrefix(got, "#") || !strings.HasSuffix(got, "~") || !strings.Contains(got, ".") {
		t.Fatalf("markers lost: %q", got)
	}
}
