package mount

import (
	"testing"

	"repro/internal/nfs"
	"repro/internal/xdr"
)

func TestProcNames(t *testing.T) {
	cases := map[uint32]string{
		ProcNull: "null", ProcMnt: "mnt", ProcUmnt: "umnt",
		ProcExport: "export", 99: "mnt-proc-99",
	}
	for proc, want := range cases {
		if got := ProcName(proc); got != want {
			t.Errorf("ProcName(%d) = %q, want %q", proc, got, want)
		}
	}
}

func TestMntArgsRoundTrip(t *testing.T) {
	e := xdr.NewEncoder(64)
	EncodeMntArgs(e, &MntArgs{DirPath: "/home02/u0001"})
	got, err := DecodeMntArgs(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.DirPath != "/home02/u0001" {
		t.Fatalf("path %q", got.DirPath)
	}
}

func TestMntResRoundTrip(t *testing.T) {
	res := &MntRes{Status: OK, FH: nfs.MakeFH(42), Flavors: []uint32{1}}
	e := xdr.NewEncoder(64)
	EncodeMntRes(e, res)
	got, err := DecodeMntRes(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != OK || !got.FH.Equal(res.FH) || len(got.Flavors) != 1 || got.Flavors[0] != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestMntResError(t *testing.T) {
	e := xdr.NewEncoder(16)
	EncodeMntRes(e, &MntRes{Status: ErrNoEnt})
	got, err := DecodeMntRes(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != ErrNoEnt || got.FH != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestMntResMalformed(t *testing.T) {
	if _, err := DecodeMntRes([]byte{0, 0}); err == nil {
		t.Fatal("short body accepted")
	}
	// Hostile flavor count.
	e := xdr.NewEncoder(64)
	e.PutUint32(OK)
	e.PutOpaque(nfs.MakeFH(1))
	e.PutUint32(1000)
	if _, err := DecodeMntRes(e.Bytes()); err == nil {
		t.Fatal("hostile flavor count accepted")
	}
}

func TestExportsTable(t *testing.T) {
	x := NewExports()
	x.Add("/home02/u0001", nfs.MakeFH(100))
	x.Add("/home02/u0002", nfs.MakeFH(101))

	res := x.Mnt("/home02/u0001")
	if res.Status != OK {
		t.Fatalf("mnt: %+v", res)
	}
	if id, _ := res.FH.FileID(); id != 100 {
		t.Fatalf("fh id %d", id)
	}
	if res := x.Mnt("/not/exported"); res.Status != ErrNoEnt {
		t.Fatalf("unexported mnt: %+v", res)
	}

	x.Mnt("/home02/u0001")
	if n := x.ActiveMounts("/home02/u0001"); n != 2 {
		t.Fatalf("active %d", n)
	}
	x.Umnt("/home02/u0001")
	if n := x.ActiveMounts("/home02/u0001"); n != 1 {
		t.Fatalf("after umnt %d", n)
	}
	x.Umnt("/never/mounted") // must not go negative
	if n := x.ActiveMounts("/never/mounted"); n != 0 {
		t.Fatalf("negative mounts: %d", n)
	}
}
