// Package mount implements the MOUNT protocol (RFC 1813 Appendix I,
// program 100005) that accompanies NFS on the wire: clients call MNT
// with an export path to obtain the root file handle before any NFS
// traffic flows, and UMNT when done. The paper's traces begin with
// exactly this exchange ("EECS users can directly mount their home
// directories onto their workstations"), so the sniffer decodes it
// rather than dropping the packets as foreign.
package mount

import (
	"fmt"

	"repro/internal/nfs"
	"repro/internal/xdr"
)

// Procedures (v1 and v3 share these numbers).
const (
	ProcNull    = 0
	ProcMnt     = 1
	ProcDump    = 2
	ProcUmnt    = 3
	ProcUmntAll = 4
	ProcExport  = 5
	NumProcs    = 6
)

// Status codes.
const (
	OK             = 0
	ErrPerm        = 1
	ErrNoEnt       = 2
	ErrAccess      = 13
	ErrNotDir      = 20
	ErrServerFault = 10006
)

var procNames = [NumProcs]string{"null", "mnt", "dump", "umnt", "umntall", "export"}

// ProcName returns the lower-case procedure name ("mnt", "umnt", ...).
func ProcName(proc uint32) string {
	if proc < NumProcs {
		return procNames[proc]
	}
	return fmt.Sprintf("mnt-proc-%d", proc)
}

// MntArgs is the MNT/UMNT argument: the export path.
type MntArgs struct {
	DirPath string
}

// EncodeMntArgs writes the argument body.
func EncodeMntArgs(e *xdr.Encoder, a *MntArgs) {
	e.PutString(a.DirPath)
}

// DecodeMntArgs parses the argument body.
func DecodeMntArgs(body []byte) (*MntArgs, error) {
	d := xdr.NewDecoder(body)
	p, err := d.String()
	if err != nil {
		return nil, err
	}
	return &MntArgs{DirPath: p}, nil
}

// MntRes is the MNT result: status, and on success the filesystem root
// handle plus accepted auth flavors.
type MntRes struct {
	Status  uint32
	FH      nfs.FH
	Flavors []uint32
}

// EncodeMntRes writes the result body (mountres3).
func EncodeMntRes(e *xdr.Encoder, r *MntRes) {
	e.PutUint32(r.Status)
	if r.Status == OK {
		e.PutOpaque(r.FH)
		e.PutUint32(uint32(len(r.Flavors)))
		for _, f := range r.Flavors {
			e.PutUint32(f)
		}
	}
}

// DecodeMntRes parses the result body.
func DecodeMntRes(body []byte) (*MntRes, error) {
	d := xdr.NewDecoder(body)
	status, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &MntRes{Status: status}
	if status != OK {
		return r, nil
	}
	fh, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	r.FH = append(nfs.FH(nil), fh...)
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	if n > 16 {
		return nil, fmt.Errorf("mount: %d auth flavors", n)
	}
	for i := 0; i < n; i++ {
		f, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		r.Flavors = append(r.Flavors, f)
	}
	return r, nil
}

// Exports is a mount server: a table of export paths to root handles.
type Exports struct {
	table map[string]nfs.FH
	// Mounted tracks active mounts per (client, path) for DUMP-style
	// introspection; keyed by path, counting mounts.
	mounted map[string]int
}

// NewExports returns an empty export table.
func NewExports() *Exports {
	return &Exports{table: make(map[string]nfs.FH), mounted: make(map[string]int)}
}

// Add exports a path.
func (x *Exports) Add(path string, fh nfs.FH) {
	x.table[path] = fh
}

// Mnt handles a MNT call.
func (x *Exports) Mnt(path string) *MntRes {
	fh, ok := x.table[path]
	if !ok {
		return &MntRes{Status: ErrNoEnt}
	}
	x.mounted[path]++
	return &MntRes{Status: OK, FH: fh, Flavors: []uint32{1}} // AUTH_SYS
}

// Umnt handles a UMNT call (void reply; always succeeds).
func (x *Exports) Umnt(path string) {
	if x.mounted[path] > 0 {
		x.mounted[path]--
	}
}

// ActiveMounts reports the number of outstanding mounts of a path.
func (x *Exports) ActiveMounts(path string) int { return x.mounted[path] }
