package analysis

import (
	"repro/internal/core"
)

// The qualitative Table 1 claims about CAMPUS that need real
// computation: the share of peak-hour file instances that are lock
// files or mailboxes (§6.3), and the share of data bytes moved to and
// from mailboxes. Both are single-pass streaming accumulators that
// defer categorization to Finish, when the full name→category map is
// known — equivalent to the paper's two-pass reconstruction, and what
// lets the pipeline shard them by file handle.

// PeakHourInstances counts the distinct file instances referenced in a
// fixed window and, of those, how many are lock files and mailboxes.
type PeakHourInstances struct {
	From, To float64

	cat       map[core.FH]NameCategory
	instances map[core.FH]bool
}

// NewPeakHourInstances prepares a count over [from, to).
func NewPeakHourInstances(from, to float64) *PeakHourInstances {
	return &PeakHourInstances{
		From: from, To: to,
		cat:       make(map[core.FH]NameCategory),
		instances: make(map[core.FH]bool),
	}
}

// Add folds one operation in. Name learning runs over the whole stream
// (the §4.1.1 reconstruction — data ops carry only the handle);
// instance collection is restricted to the window.
func (p *PeakHourInstances) Add(op *core.Op) {
	if op.NewFH != 0 && op.Name != "" {
		p.cat[op.NewFH] = Categorize(op.Name)
	}
	if op.T < p.From || op.T >= p.To {
		return
	}
	switch op.Proc {
	case core.ProcRead, core.ProcWrite, core.ProcGetattr, core.ProcSetattr,
		core.ProcAccess, core.ProcCommit:
		p.note(op.FH)
	case core.ProcCreate, core.ProcLookup:
		p.note(op.NewFH)
	}
}

func (p *PeakHourInstances) note(fh core.FH) {
	if fh != 0 {
		p.instances[fh] = true
	}
}

// PeakHourResult is the finished count.
type PeakHourResult struct {
	Instances int
	Locks     int
	Mailboxes int
}

// LockFrac reports lock files as a fraction of instances.
func (r PeakHourResult) LockFrac() float64 {
	if r.Instances == 0 {
		return 0
	}
	return float64(r.Locks) / float64(r.Instances)
}

// MailboxFrac reports mailboxes as a fraction of instances.
func (r PeakHourResult) MailboxFrac() float64 {
	if r.Instances == 0 {
		return 0
	}
	return float64(r.Mailboxes) / float64(r.Instances)
}

// Finish categorizes the collected instances with the final name map.
func (p *PeakHourInstances) Finish() PeakHourResult {
	var r PeakHourResult
	for fh := range p.instances {
		r.Instances++
		switch p.cat[fh] {
		case CatLock:
			r.Locks++
		case CatMailbox:
			r.Mailboxes++
		}
	}
	return r
}

// MergePeakHour sums per-shard results; instance sets partitioned by
// handle are disjoint, so the sums equal a single-pass count.
func MergePeakHour(parts ...PeakHourResult) PeakHourResult {
	var out PeakHourResult
	for _, p := range parts {
		out.Instances += p.Instances
		out.Locks += p.Locks
		out.Mailboxes += p.Mailboxes
	}
	return out
}

// MailboxShare accumulates the data bytes moved per file alongside the
// mailbox and large-file handle sets, deferring the share computation
// to Finish so that late name discoveries still count.
type MailboxShare struct {
	mailboxFH map[core.FH]bool
	big       map[core.FH]bool
	bytes     map[core.FH]uint64
}

// NewMailboxShare returns an empty accumulator.
func NewMailboxShare() *MailboxShare {
	return &MailboxShare{
		mailboxFH: make(map[core.FH]bool),
		big:       make(map[core.FH]bool),
		bytes:     make(map[core.FH]uint64),
	}
}

// Add folds one operation in.
func (m *MailboxShare) Add(op *core.Op) {
	if op.NewFH != 0 && Categorize(op.Name) == CatMailbox {
		m.mailboxFH[op.NewFH] = true
	}
	// Handles populated before the trace (setup inboxes) are found by
	// size: multi-megabyte files on CAMPUS are mailboxes. The paper
	// identifies them by name via the same hierarchy trick.
	if op.Size > 1<<20 {
		m.big[op.FH] = true
	}
	if op.IsRead() || op.IsWrite() {
		m.bytes[op.FH] += op.Bytes()
	}
}

// MailboxShareResult carries the per-shard sums; compute the final
// share with MergeMailboxShare (a single accumulator merges with
// itself alone).
type MailboxShareResult struct {
	Mailbox uint64 // bytes moved on named-mailbox handles
	Alt     uint64 // bytes moved on named-mailbox or multi-megabyte handles
	Total   uint64 // all data bytes
}

// Finish sums the per-file byte counts against the final handle sets.
func (m *MailboxShare) Finish() MailboxShareResult {
	var r MailboxShareResult
	for fh, n := range m.bytes {
		r.Total += n
		if m.mailboxFH[fh] {
			r.Mailbox += n
		}
		if m.mailboxFH[fh] || m.big[fh] {
			r.Alt += n
		}
	}
	return r
}

// MergeMailboxShare sums shard results and applies the fallback rule:
// when named mailboxes account for under half the bytes, the large-file
// estimate stands in. It returns (mailbox, total) bytes.
func MergeMailboxShare(parts ...MailboxShareResult) (mailbox, total uint64) {
	var sum MailboxShareResult
	for _, p := range parts {
		sum.Mailbox += p.Mailbox
		sum.Alt += p.Alt
		sum.Total += p.Total
	}
	mailbox = sum.Mailbox
	if sum.Total > 0 && float64(mailbox)/float64(sum.Total) < 0.5 {
		mailbox = sum.Alt
	}
	return mailbox, sum.Total
}
