package analysis

import (
	"testing"

	"repro/internal/core"
)

func TestWriteAbsorption(t *testing.T) {
	// Three blocks: one dies in 1s, one in 100s, one never.
	ops := []*core.Op{
		wr(1, "f", 0, 8192, 0, 8192),
		wr(2, "f", 0, 8192, 8192, 8192), // block 0 rebirth; first died at 1s
		wr(3, "f", 8192, 8192, 8192, 16384),
		wr(103, "f", 8192, 8192, 16384, 16384),  // block 1 died at 100s
		wr(104, "f", 16384, 8192, 16384, 24576), // block 2 immortal
	}
	pts := WriteAbsorption(ops, 0, 200, []float64{10, 1000})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// 5 births; 1 died within 10s → 20%.
	if pts[0].AbsorbedPct < 19 || pts[0].AbsorbedPct > 21 {
		t.Fatalf("10s absorption %.1f%%, want 20%%", pts[0].AbsorbedPct)
	}
	// 2 died within 1000s → 40%.
	if pts[1].AbsorbedPct < 39 || pts[1].AbsorbedPct > 41 {
		t.Fatalf("1000s absorption %.1f%%, want 40%%", pts[1].AbsorbedPct)
	}
	if pts[0].AbsorbedPct > pts[1].AbsorbedPct {
		t.Fatal("absorption not monotone in delay")
	}
}

func TestWriteAbsorptionEmpty(t *testing.T) {
	pts := WriteAbsorption(nil, 0, 10, []float64{1})
	if len(pts) != 1 || pts[0].AbsorbedPct != 0 {
		t.Fatalf("empty absorption: %+v", pts)
	}
}

func TestQuietPeriods(t *testing.T) {
	// Build a synthetic week: busy 9-18 weekdays, dead nights.
	var ops []*core.Op
	day := 86400.0
	for d := 0; d < 7; d++ {
		for h := 9; h < 18; h++ {
			if d == 0 || d == 6 {
				continue // weekend: quiet all day
			}
			for i := 0; i < 100; i++ {
				ops = append(ops, &core.Op{T: float64(d)*day + float64(h)*3600 + float64(i)})
			}
		}
	}
	h := Hourly(ops, 7*day)
	ps := QuietPeriods(h, 0.1, 6)
	if len(ps) == 0 {
		t.Fatal("no quiet periods in a workload with dead nights")
	}
	// Nights + weekends: the majority of the week is quiet.
	if QuietHoursTotal(ps) < 80 {
		t.Fatalf("only %d quiet hours", QuietHoursTotal(ps))
	}
	for _, p := range ps {
		if p.Hours() < 6 {
			t.Fatalf("period shorter than minimum: %+v", p)
		}
		if p.MeanOps > 10 {
			t.Fatalf("quiet period not quiet: %+v", p)
		}
	}
}

func TestQuietPeriodsNoneWhenFlat(t *testing.T) {
	var ops []*core.Op
	for h := 0; h < 168; h++ {
		for i := 0; i < 50; i++ {
			ops = append(ops, &core.Op{T: float64(h)*3600 + float64(i)})
		}
	}
	h := Hourly(ops, 168*3600)
	if ps := QuietPeriods(h, 0.5, 3); len(ps) != 0 {
		t.Fatalf("flat load yielded quiet periods: %+v", ps)
	}
}
