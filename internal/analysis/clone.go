package analysis

import "repro/internal/core"

// Snapshot support: every accumulator the pipeline shards can be cloned
// mid-stream into an independent copy. A clone and its original never
// share mutable state — after Clone returns, feeding more operations to
// the original cannot change anything the clone computes, and finishing
// the clone cannot disturb the original. That independence is what lets
// cmd/nfsmond serve a consistent view of a window while ingest keeps
// running, and what the snapshot-equivalence test pins down.

// Clone returns an independent copy of the summary. Every field is a
// value (ProcCountTable is an array), so a struct copy suffices.
func (s *Summary) Clone() *Summary {
	cp := *s
	return &cp
}

// Clone returns an independent copy of the series.
func (h *HourlySeries) Clone() *HourlySeries {
	return &HourlySeries{
		Span:       h.Span,
		Ops:        h.Ops.Clone(),
		ReadOps:    h.ReadOps.Clone(),
		WriteOps:   h.WriteOps.Clone(),
		BytesRead:  h.BytesRead.Clone(),
		BytesWrite: h.BytesWrite.Clone(),
	}
}

// Clone returns an independent copy of the access map. The per-file
// slices are shared structurally but capped at their current length
// (three-index slice), so an append to the original past the clone's
// view reallocates instead of writing into the shared array. This is
// safe because Access slices are append-only: nothing ever mutates an
// element in place, and every consumer that sorts (DetectRunsInFiles,
// SweepFiles) copies first.
func (m AccessMap) Clone() AccessMap {
	cp := make(AccessMap, len(m))
	for fh, accs := range m {
		cp[fh] = accs[:len(accs):len(accs)]
	}
	return cp
}

// Clone returns an independent copy of the stream, including the
// per-file birth tables and the lifetime distribution.
func (s *BlockLifeStream) Clone() *BlockLifeStream {
	cp := &BlockLifeStream{
		st: blockLifeState{
			res:       s.st.res,
			births:    make(map[core.FH]map[int64]float64, len(s.st.births)),
			sizes:     make(map[core.FH]uint64, len(s.st.sizes)),
			names:     make(map[nameBinding]core.FH, len(s.st.names)),
			phase1End: s.st.phase1End,
			margin:    s.st.margin,
		},
		start: s.start,
		end:   s.end,
		done:  s.done,
	}
	cp.st.res.Lifetimes = s.st.res.Lifetimes.Clone()
	for fh, blocks := range s.st.births {
		b := make(map[int64]float64, len(blocks))
		for blk, t := range blocks {
			b[blk] = t
		}
		cp.st.births[fh] = b
	}
	for fh, size := range s.st.sizes {
		cp.st.sizes[fh] = size
	}
	for k, fh := range s.st.names {
		cp.st.names[k] = fh
	}
	return cp
}

// Clone returns an independent copy of the instance collector.
func (p *PeakHourInstances) Clone() *PeakHourInstances {
	cp := &PeakHourInstances{
		From: p.From, To: p.To,
		cat:       make(map[core.FH]NameCategory, len(p.cat)),
		instances: make(map[core.FH]bool, len(p.instances)),
	}
	for fh, c := range p.cat {
		cp.cat[fh] = c
	}
	for fh := range p.instances {
		cp.instances[fh] = true
	}
	return cp
}

// Clone returns an independent copy of the accumulator.
func (m *MailboxShare) Clone() *MailboxShare {
	cp := NewMailboxShare()
	for fh := range m.mailboxFH {
		cp.mailboxFH[fh] = true
	}
	for fh := range m.big {
		cp.big[fh] = true
	}
	for fh, n := range m.bytes {
		cp.bytes[fh] = n
	}
	return cp
}

// Clone returns an independent copy of the names stream: open
// instances, name bindings, and the folded per-category aggregate.
func (n *NamesStream) Clone() *NamesStream {
	cp := NewNamesStream()
	for fh, fl := range n.lives {
		c := *fl
		cp.lives[fh] = &c
	}
	for nb, fh := range n.names {
		cp.names[nb] = fh
	}
	for c := 0; c < int(numCategories); c++ {
		cp.agg.created[c] = n.agg.created[c]
		cp.agg.deleted[c] = n.agg.deleted[c]
		cp.agg.readOps[c] = n.agg.readOps[c]
		cp.agg.writeOps[c] = n.agg.writeOps[c]
		cp.agg.lifetimes[c] = n.agg.lifetimes[c].Clone()
		cp.agg.sizes[c] = n.agg.sizes[c].Clone()
		cp.agg.sizeHist[c] = n.agg.sizeHist[c]
		cp.agg.lifeHist[c] = n.agg.lifeHist[c]
	}
	cp.agg.lockDeleted = n.agg.lockDeleted
	cp.agg.totalDeleted = n.agg.totalDeleted
	return cp
}

// Clone returns an independent copy of the namespace model, including
// the running coverage counters.
func (h *Hierarchy) Clone() *Hierarchy {
	cp := &Hierarchy{
		parent:     make(map[core.FH]nameBinding, len(h.parent)),
		byEdge:     make(map[nameBinding]core.FH, len(h.byEdge)),
		known:      make(map[core.FH]bool, len(h.known)),
		resolvable: h.resolvable,
		total:      h.total,
	}
	for fh, e := range h.parent {
		cp.parent[fh] = e
	}
	for e, fh := range h.byEdge {
		cp.byEdge[e] = fh
	}
	for fh := range h.known {
		cp.known[fh] = true
	}
	return cp
}
