package analysis

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Filename-based attribute prediction (§6.3): nearly all CAMPUS files
// fall into four categories — lock files, dot files, mail-composer
// files, and mailboxes — and the name predicts size, lifespan, and
// access pattern.

// File categories.
type NameCategory int

// Category values.
const (
	CatLock NameCategory = iota
	CatDot
	CatComposer
	CatMailbox
	CatTemp
	CatSource
	CatOther
	numCategories
)

var categoryNames = [numCategories]string{
	"lock", "dot", "composer", "mailbox", "temp", "source", "other",
}

// Name reports the category's display name.
func (c NameCategory) String() string { return categoryNames[c] }

// Categorize assigns a filename to its category using only the last
// pathname component, as the paper does.
func Categorize(name string) NameCategory {
	switch {
	case name == "":
		return CatOther
	case strings.HasSuffix(name, ".lock") || name == "lock" || strings.Contains(name, "lock"):
		return CatLock
	case strings.HasPrefix(name, "."):
		return CatDot
	case strings.HasPrefix(name, "pico.") || strings.HasPrefix(name, "#") ||
		strings.HasPrefix(name, "Applet_"):
		return CatComposer
	case name == "inbox" || name == "mbox" || name == "saved-messages" ||
		name == "sent-mail" || strings.HasSuffix(name, ".mbox"):
		return CatMailbox
	case strings.HasSuffix(name, "~") || strings.HasSuffix(name, ".tmp") ||
		strings.HasSuffix(name, ".o") || strings.HasSuffix(name, ".out"):
		return CatTemp
	case strings.HasSuffix(name, ".c") || strings.HasSuffix(name, ".h") ||
		strings.HasSuffix(name, ".tex") || strings.HasSuffix(name, ".txt"):
		return CatSource
	default:
		return CatOther
	}
}

// fileLife tracks one file instance from creation.
type fileLife struct {
	name    string
	cat     NameCategory
	born    float64
	died    float64
	deleted bool
	maxSize uint64
	reads   int64
	writes  int64
	readSeq bool
}

// CategoryStats summarizes one category's observed behaviour.
type CategoryStats struct {
	Category NameCategory
	// Created and Deleted count file instances created (and of those,
	// deleted) inside the window.
	Created int64
	Deleted int64
	// Lifetimes of created-and-deleted instances (seconds).
	Lifetimes *stats.CDF
	// Sizes are the max observed sizes of created instances.
	Sizes *stats.CDF
	// ReadFrac is reads/(reads+writes) across instances.
	ReadOps, WriteOps int64
}

// NameReport is the full §6.3 output.
type NameReport struct {
	PerCategory [numCategories]*CategoryStats
	// CreatedAndDeleted counts instances both created and deleted in
	// the window; LockFracOfDeleted is the share of those that are
	// locks (96% on CAMPUS).
	CreatedAndDeleted int64
	LockFracOfDeleted float64
	// SizeAccuracy and LifeAccuracy report how well the category
	// (i.e. the filename) predicts the file's size class and lifetime
	// class: the fraction of instances whose class equals their
	// category's modal class.
	SizeAccuracy float64
	LifeAccuracy float64
}

// sizeClass buckets a size into one of a few coarse classes (zero, one
// block, small, large) — the granularity a file system would act on.
func sizeClass(size uint64) int {
	switch {
	case size == 0:
		return 0
	case size <= 8*1024:
		return 1
	case size <= 64*1024:
		return 2
	case size <= 1<<20:
		return 3
	default:
		return 4
	}
}

// lifeClass buckets a lifetime: sub-second, sub-minute, sub-hour, long.
func lifeClass(life float64) int {
	switch {
	case life < 1:
		return 0
	case life < 60:
		return 1
	case life < 3600:
		return 2
	default:
		return 3
	}
}

// AnalyzeNames builds the §6.3 report from a joined op stream.
func AnalyzeNames(ops []*core.Op, windowEnd float64) *NameReport {
	// Track file instances created in the window.
	lives := make(map[core.FH]*fileLife)   // by NewFH
	names := make(map[nameBinding]core.FH) // (dir,name) → fh
	var done []*fileLife

	key := func(dir core.FH, name string) nameBinding { return nameBinding{dir, name} }
	for _, op := range ops {
		switch op.Proc {
		case core.ProcCreate, core.ProcMkdir, core.ProcSymlink:
			if op.NewFH == 0 {
				continue
			}
			// Recreating a name orphans any previous instance.
			names[key(op.FH, op.Name)] = op.NewFH
			if _, exists := lives[op.NewFH]; !exists {
				lives[op.NewFH] = &fileLife{
					name: op.Name, cat: Categorize(op.Name),
					born: op.T, maxSize: op.Size, readSeq: true,
				}
			}
		case core.ProcLookup:
			if op.NewFH != 0 {
				names[key(op.FH, op.Name)] = op.NewFH
			}
		case core.ProcRename:
			k := key(op.FH, op.Name)
			if fh, ok := names[k]; ok {
				delete(names, k)
				names[key(op.FH2, op.Name2)] = fh
			}
		case core.ProcRemove:
			fh, ok := names[key(op.FH, op.Name)]
			if !ok {
				continue
			}
			delete(names, key(op.FH, op.Name))
			if fl, ok := lives[fh]; ok {
				fl.died = op.T
				fl.deleted = true
				done = append(done, fl)
				delete(lives, fh)
			}
		case core.ProcWrite:
			if fl, ok := lives[op.FH]; ok {
				fl.writes++
				if op.Size > fl.maxSize {
					fl.maxSize = op.Size
				}
			}
		case core.ProcRead:
			if fl, ok := lives[op.FH]; ok {
				fl.reads++
				if op.Size > fl.maxSize {
					fl.maxSize = op.Size
				}
			}
		case core.ProcSetattr:
			if fl, ok := lives[op.FH]; ok && op.Size > fl.maxSize {
				fl.maxSize = op.Size
			}
		}
	}
	// Instances still alive at window end.
	for _, fl := range lives {
		fl.died = windowEnd
		done = append(done, fl)
	}

	rep := &NameReport{}
	for c := 0; c < int(numCategories); c++ {
		rep.PerCategory[c] = &CategoryStats{
			Category:  NameCategory(c),
			Lifetimes: &stats.CDF{},
			Sizes:     &stats.CDF{},
		}
	}
	var lockDeleted, totalDeleted int64
	// Per-category class histograms for the prediction experiment.
	var sizeHist [numCategories][5]int64
	var lifeHist [numCategories][4]int64
	for _, fl := range done {
		cs := rep.PerCategory[fl.cat]
		cs.Created++
		cs.Sizes.Add(float64(fl.maxSize))
		cs.ReadOps += fl.reads
		cs.WriteOps += fl.writes
		sizeHist[fl.cat][sizeClass(fl.maxSize)]++
		if fl.deleted {
			cs.Deleted++
			totalDeleted++
			life := fl.died - fl.born
			cs.Lifetimes.Add(life)
			lifeHist[fl.cat][lifeClass(life)]++
			if fl.cat == CatLock {
				lockDeleted++
			}
		}
	}
	rep.CreatedAndDeleted = totalDeleted
	if totalDeleted > 0 {
		rep.LockFracOfDeleted = float64(lockDeleted) / float64(totalDeleted)
	}

	// Prediction accuracy: predict each instance's class as its
	// category's modal class.
	var sizeRight, sizeTotal, lifeRight, lifeTotal int64
	for c := 0; c < int(numCategories); c++ {
		if m, n := modal(sizeHist[c][:]); n > 0 {
			sizeRight += sizeHist[c][m]
			sizeTotal += n
		}
		if m, n := modal(lifeHist[c][:]); n > 0 {
			lifeRight += lifeHist[c][m]
			lifeTotal += n
		}
	}
	if sizeTotal > 0 {
		rep.SizeAccuracy = float64(sizeRight) / float64(sizeTotal)
	}
	if lifeTotal > 0 {
		rep.LifeAccuracy = float64(lifeRight) / float64(lifeTotal)
	}
	return rep
}

func modal(hist []int64) (idx int, total int64) {
	for i, v := range hist {
		total += v
		if v > hist[idx] {
			idx = i
		}
	}
	return idx, total
}

// TopNames returns the most frequently referenced filenames in the op
// stream — useful for inspecting what dominates a workload.
func TopNames(ops []*core.Op, n int) []string {
	counts := make(map[string]int64)
	for _, op := range ops {
		if op.Name != "" {
			counts[op.Name]++
		}
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}
