package analysis

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Filename-based attribute prediction (§6.3): nearly all CAMPUS files
// fall into four categories — lock files, dot files, mail-composer
// files, and mailboxes — and the name predicts size, lifespan, and
// access pattern.

// File categories.
type NameCategory int

// Category values.
const (
	CatLock NameCategory = iota
	CatDot
	CatComposer
	CatMailbox
	CatTemp
	CatSource
	CatOther
	numCategories
)

var categoryNames = [numCategories]string{
	"lock", "dot", "composer", "mailbox", "temp", "source", "other",
}

// Name reports the category's display name.
func (c NameCategory) String() string { return categoryNames[c] }

// Categorize assigns a filename to its category using only the last
// pathname component, as the paper does.
func Categorize(name string) NameCategory {
	switch {
	case name == "":
		return CatOther
	case strings.HasSuffix(name, ".lock") || name == "lock" || strings.Contains(name, "lock"):
		return CatLock
	case strings.HasPrefix(name, "."):
		return CatDot
	case strings.HasPrefix(name, "pico.") || strings.HasPrefix(name, "#") ||
		strings.HasPrefix(name, "Applet_"):
		return CatComposer
	case name == "inbox" || name == "mbox" || name == "saved-messages" ||
		name == "sent-mail" || strings.HasSuffix(name, ".mbox"):
		return CatMailbox
	case strings.HasSuffix(name, "~") || strings.HasSuffix(name, ".tmp") ||
		strings.HasSuffix(name, ".o") || strings.HasSuffix(name, ".out"):
		return CatTemp
	case strings.HasSuffix(name, ".c") || strings.HasSuffix(name, ".h") ||
		strings.HasSuffix(name, ".tex") || strings.HasSuffix(name, ".txt"):
		return CatSource
	default:
		return CatOther
	}
}

// fileLife tracks one file instance from creation.
type fileLife struct {
	name    string
	cat     NameCategory
	born    float64
	died    float64
	deleted bool
	maxSize uint64
	reads   int64
	writes  int64
	readSeq bool
}

// CategoryStats summarizes one category's observed behaviour.
type CategoryStats struct {
	Category NameCategory
	// Created and Deleted count file instances created (and of those,
	// deleted) inside the window.
	Created int64
	Deleted int64
	// Lifetimes of created-and-deleted instances (seconds).
	Lifetimes *stats.CDF
	// Sizes are the max observed sizes of created instances.
	Sizes *stats.CDF
	// ReadFrac is reads/(reads+writes) across instances.
	ReadOps, WriteOps int64
}

// NameReport is the full §6.3 output.
type NameReport struct {
	PerCategory [numCategories]*CategoryStats
	// CreatedAndDeleted counts instances both created and deleted in
	// the window; LockFracOfDeleted is the share of those that are
	// locks (96% on CAMPUS).
	CreatedAndDeleted int64
	LockFracOfDeleted float64
	// SizeAccuracy and LifeAccuracy report how well the category
	// (i.e. the filename) predicts the file's size class and lifetime
	// class: the fraction of instances whose class equals their
	// category's modal class.
	SizeAccuracy float64
	LifeAccuracy float64
}

// sizeClass buckets a size into one of a few coarse classes (zero, one
// block, small, large) — the granularity a file system would act on.
func sizeClass(size uint64) int {
	switch {
	case size == 0:
		return 0
	case size <= 8*1024:
		return 1
	case size <= 64*1024:
		return 2
	case size <= 1<<20:
		return 3
	default:
		return 4
	}
}

// lifeClass buckets a lifetime: sub-second, sub-minute, sub-hour, long.
func lifeClass(life float64) int {
	switch {
	case life < 1:
		return 0
	case life < 60:
		return 1
	case life < 3600:
		return 2
	default:
		return 3
	}
}

// NamesStream is the incremental form of AnalyzeNames: feed it
// time-ordered operations with Consume, then build the report with
// Report once the window end is known. Finished instances fold into
// per-category aggregates as they die, so the live state is just the
// open instances and the name map — which is what makes the stream's
// partial state serializable and resumable across process boundaries.
type NamesStream struct {
	lives map[core.FH]*fileLife   // open instances, by NewFH
	names map[nameBinding]core.FH // (dir,name) → fh

	agg namesAgg
}

// namesAgg accumulates the per-category reductions over finished
// instances. Every field is a sum, a histogram, or a CDF sample
// multiset, so folding instances one at a time (or merging a resumed
// aggregate) reproduces exactly what AnalyzeNames computes over the
// full done list.
type namesAgg struct {
	created   [numCategories]int64
	deleted   [numCategories]int64
	readOps   [numCategories]int64
	writeOps  [numCategories]int64
	lifetimes [numCategories]*stats.CDF
	sizes     [numCategories]*stats.CDF
	sizeHist  [numCategories][5]int64
	lifeHist  [numCategories][4]int64

	lockDeleted  int64
	totalDeleted int64
}

func newNamesAgg() namesAgg {
	var a namesAgg
	for c := range a.lifetimes {
		a.lifetimes[c] = &stats.CDF{}
		a.sizes[c] = &stats.CDF{}
	}
	return a
}

// fold accumulates one finished instance.
func (a *namesAgg) fold(fl *fileLife) {
	a.created[fl.cat]++
	a.sizes[fl.cat].Add(float64(fl.maxSize))
	a.readOps[fl.cat] += fl.reads
	a.writeOps[fl.cat] += fl.writes
	a.sizeHist[fl.cat][sizeClass(fl.maxSize)]++
	if fl.deleted {
		a.deleted[fl.cat]++
		a.totalDeleted++
		life := fl.died - fl.born
		a.lifetimes[fl.cat].Add(life)
		a.lifeHist[fl.cat][lifeClass(life)]++
		if fl.cat == CatLock {
			a.lockDeleted++
		}
	}
}

// NewNamesStream returns an empty stream.
func NewNamesStream() *NamesStream {
	return &NamesStream{
		lives: make(map[core.FH]*fileLife),
		names: make(map[nameBinding]core.FH),
		agg:   newNamesAgg(),
	}
}

// Consume folds one operation into the stream. Ops must arrive in time
// order.
func (n *NamesStream) Consume(op *core.Op) {
	key := func(dir core.FH, name string) nameBinding { return nameBinding{dir, name} }
	switch op.Proc {
	case core.ProcCreate, core.ProcMkdir, core.ProcSymlink:
		if op.NewFH == 0 {
			return
		}
		// Recreating a name orphans any previous instance.
		n.names[key(op.FH, op.Name)] = op.NewFH
		if _, exists := n.lives[op.NewFH]; !exists {
			n.lives[op.NewFH] = &fileLife{
				name: op.Name, cat: Categorize(op.Name),
				born: op.T, maxSize: op.Size, readSeq: true,
			}
		}
	case core.ProcLookup:
		if op.NewFH != 0 {
			n.names[key(op.FH, op.Name)] = op.NewFH
		}
	case core.ProcRename:
		k := key(op.FH, op.Name)
		if fh, ok := n.names[k]; ok {
			delete(n.names, k)
			n.names[key(op.FH2, op.Name2)] = fh
		}
	case core.ProcRemove:
		fh, ok := n.names[key(op.FH, op.Name)]
		if !ok {
			return
		}
		delete(n.names, key(op.FH, op.Name))
		if fl, ok := n.lives[fh]; ok {
			fl.died = op.T
			fl.deleted = true
			n.agg.fold(fl)
			delete(n.lives, fh)
		}
	case core.ProcWrite:
		if fl, ok := n.lives[op.FH]; ok {
			fl.writes++
			if op.Size > fl.maxSize {
				fl.maxSize = op.Size
			}
		}
	case core.ProcRead:
		if fl, ok := n.lives[op.FH]; ok {
			fl.reads++
			if op.Size > fl.maxSize {
				fl.maxSize = op.Size
			}
		}
	case core.ProcSetattr:
		if fl, ok := n.lives[op.FH]; ok && op.Size > fl.maxSize {
			fl.maxSize = op.Size
		}
	}
}

// Report builds the §6.3 report as of windowEnd: instances still alive
// count as created (not deleted) with their current max size. The
// stream itself is left untouched — Report folds the open instances
// into a copy of the aggregate, so it can be called mid-stream.
func (n *NamesStream) Report(windowEnd float64) *NameReport {
	agg := newNamesAgg()
	for c := 0; c < int(numCategories); c++ {
		agg.created[c] = n.agg.created[c]
		agg.deleted[c] = n.agg.deleted[c]
		agg.readOps[c] = n.agg.readOps[c]
		agg.writeOps[c] = n.agg.writeOps[c]
		agg.lifetimes[c] = n.agg.lifetimes[c].Clone()
		agg.sizes[c] = n.agg.sizes[c].Clone()
		agg.sizeHist[c] = n.agg.sizeHist[c]
		agg.lifeHist[c] = n.agg.lifeHist[c]
	}
	agg.lockDeleted = n.agg.lockDeleted
	agg.totalDeleted = n.agg.totalDeleted
	for _, fl := range n.lives {
		end := *fl
		end.died = windowEnd
		agg.fold(&end)
	}

	rep := &NameReport{}
	for c := 0; c < int(numCategories); c++ {
		rep.PerCategory[c] = &CategoryStats{
			Category:  NameCategory(c),
			Created:   agg.created[c],
			Deleted:   agg.deleted[c],
			Lifetimes: agg.lifetimes[c],
			Sizes:     agg.sizes[c],
			ReadOps:   agg.readOps[c],
			WriteOps:  agg.writeOps[c],
		}
	}
	rep.CreatedAndDeleted = agg.totalDeleted
	if agg.totalDeleted > 0 {
		rep.LockFracOfDeleted = float64(agg.lockDeleted) / float64(agg.totalDeleted)
	}

	// Prediction accuracy: predict each instance's class as its
	// category's modal class.
	var sizeRight, sizeTotal, lifeRight, lifeTotal int64
	for c := 0; c < int(numCategories); c++ {
		if m, n := modal(agg.sizeHist[c][:]); n > 0 {
			sizeRight += agg.sizeHist[c][m]
			sizeTotal += n
		}
		if m, n := modal(agg.lifeHist[c][:]); n > 0 {
			lifeRight += agg.lifeHist[c][m]
			lifeTotal += n
		}
	}
	if sizeTotal > 0 {
		rep.SizeAccuracy = float64(sizeRight) / float64(sizeTotal)
	}
	if lifeTotal > 0 {
		rep.LifeAccuracy = float64(lifeRight) / float64(lifeTotal)
	}
	return rep
}

// AnalyzeNames builds the §6.3 report from a joined op stream. It is
// the one-shot form of NamesStream.
func AnalyzeNames(ops []*core.Op, windowEnd float64) *NameReport {
	n := NewNamesStream()
	for _, op := range ops {
		n.Consume(op)
	}
	return n.Report(windowEnd)
}

func modal(hist []int64) (idx int, total int64) {
	for i, v := range hist {
		total += v
		if v > hist[idx] {
			idx = i
		}
	}
	return idx, total
}

// TopNames returns the most frequently referenced filenames in the op
// stream — useful for inspecting what dominates a workload.
func TopNames(ops []*core.Op, n int) []string {
	counts := make(map[string]int64)
	for _, op := range ops {
		if op.Name != "" {
			counts[op.Name]++
		}
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}
