package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property-based tests on the analysis invariants.

// randomOps builds a random but well-formed data-op stream.
func randomOps(seed int64, n int) []*core.Op {
	rng := rand.New(rand.NewSource(seed))
	files := []string{"a", "b", "c", "d"}
	var ops []*core.Op
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.Float64() * 5
		proc := core.ProcRead
		if rng.Intn(3) == 0 {
			proc = core.ProcWrite
		}
		count := uint32(1024 + rng.Intn(16384))
		off := uint64(rng.Intn(512)) * 8192
		ops = append(ops, &core.Op{
			T: t, Replied: true, Proc: proc, FH: core.InternFH(files[rng.Intn(len(files))]),
			Offset: off, Count: count, RCount: count,
			Size: off + uint64(count) + uint64(rng.Intn(1<<20)),
			EOF:  rng.Intn(20) == 0,
		})
	}
	return ops
}

// TestRunsPartitionAccesses: every data access lands in exactly one run.
func TestRunsPartitionAccesses(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 300)
		runs := DetectRuns(ops, DefaultRunConfig(10))
		var total int
		var bytes uint64
		for _, r := range runs {
			total += len(r.Accesses)
			for _, a := range r.Accesses {
				bytes += uint64(a.Count)
			}
			if r.Bytes == 0 && len(r.Accesses) > 0 {
				hasBytes := false
				for _, a := range r.Accesses {
					if a.Count > 0 {
						hasBytes = true
					}
				}
				if hasBytes {
					return false
				}
			}
		}
		var want int
		var wantBytes uint64
		for _, op := range ops {
			if op.IsRead() || op.IsWrite() {
				want++
				wantBytes += op.Bytes()
			}
		}
		return total == want && bytes == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMetricBounds: sequentiality metrics stay in [0,1] and the strict
// metric never exceeds the jump-tolerant one.
func TestMetricBounds(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 200)
		runs := DetectRuns(ops, DefaultRunConfig(10))
		for _, r := range runs {
			if r.Metric < 0 || r.Metric > 1 || r.MetricK1 < 0 || r.MetricK1 > 1 {
				return false
			}
			if r.MetricK1 > r.Metric+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTabulatePercentagesSum: kind percentages sum to 100, and pattern
// percentages within each populated kind sum to 100.
func TestTabulatePercentagesSum(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 250)
		tab := Tabulate(DetectRuns(ops, DefaultRunConfig(10)))
		if tab.TotalRuns == 0 {
			return true
		}
		sum := tab.ReadPct + tab.WritePct + tab.ReadWritePct
		if sum < 99.9 || sum > 100.1 {
			return false
		}
		for _, pats := range [][3]float64{tab.Read, tab.Write, tab.ReadWrite} {
			s := pats[0] + pats[1] + pats[2]
			if s != 0 && (s < 99.9 || s > 100.1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSortWindowPreservesMultiset: the reorder sort permutes accesses,
// never losing or duplicating them.
func TestSortWindowPreservesMultiset(t *testing.T) {
	f := func(seed int64, wexp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var accs []Access
		t := 0.0
		for i := 0; i < 100; i++ {
			t += rng.Float64() * 0.01
			accs = append(accs, Access{T: t, Offset: uint64(rng.Intn(100)) * 8192, Count: 8192})
		}
		before := map[uint64]int{}
		for _, a := range accs {
			before[a.Offset]++
		}
		SortWindow(accs, float64(wexp%50)/1000)
		after := map[uint64]int{}
		for _, a := range accs {
			after[a.Offset]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBlockLifeConservation: deaths never exceed births, and cause
// counts sum to the totals.
func TestBlockLifeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ops []*core.Op
		tm := 0.0
		size := map[string]uint64{"x": 0, "y": 0}
		for i := 0; i < 200; i++ {
			tm += rng.Float64() * 3
			fh := "x"
			if rng.Intn(2) == 0 {
				fh = "y"
			}
			switch rng.Intn(3) {
			case 0, 1: // write
				off := uint64(rng.Intn(64)) * 8192
				count := uint32(8192)
				pre := size[fh]
				if off+uint64(count) > size[fh] {
					size[fh] = off + uint64(count)
				}
				ops = append(ops, &core.Op{T: tm, Replied: true, Proc: core.MustProc("write"),
					FH: core.InternFH(fh), Offset: off, Count: count, RCount: count,
					PreSize: pre, HasPre: true, Size: size[fh]})
			case 2: // truncate
				newSize := uint64(rng.Intn(32)) * 8192
				pre := size[fh]
				size[fh] = newSize
				ops = append(ops, &core.Op{T: tm, Replied: true, Proc: core.MustProc("setattr"),
					FH: core.InternFH(fh), SetSize: newSize, HasSet: true,
					PreSize: pre, HasPre: true, Size: newSize})
			}
		}
		res := BlockLife(ops, 0, tm/2, tm/2+1)
		if res.Deaths > res.Births {
			return false
		}
		var bc, dc int64
		for _, v := range res.BirthCause {
			bc += v
		}
		for _, v := range res.DeathCause {
			dc += v
		}
		if bc != res.Births || dc != res.Deaths {
			return false
		}
		// Surplus + counted deaths + margin-discarded deaths == births;
		// we can only check the inequality without the discard count.
		return res.EndSurplus <= res.Births
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHourlyConservation: bucketed op counts sum to the input size.
func TestHourlyConservation(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 400)
		span := ops[len(ops)-1].T + 1
		h := Hourly(ops, span)
		var sum float64
		for i := 0; i < h.Ops.NumBuckets(); i++ {
			sum += h.Ops.Bucket(i)
		}
		return int(sum) == len(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
