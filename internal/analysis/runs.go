// Package analysis implements every analysis in the paper: summary
// activity statistics (Table 2), run detection with reorder-window
// sorting and the entire/sequential/random taxonomy (§4.2, Table 3,
// Figures 1 and 2), the sequentiality metric (§6.4, Figure 5),
// create-based block lifetimes (§5.2, Table 4, Figure 3), hourly load
// and peak-hour variance (§6.2, Table 5, Figure 4), filename-based
// attribute prediction (§6.3), and on-the-fly hierarchy reconstruction
// (§4.1.1).
package analysis

import (
	"sort"

	"repro/internal/core"
)

// BlockSize is the 8 KB granularity the paper rounds offsets and counts
// to.
const BlockSize = 8192

// Access is one read or write to one file, in wire order.
type Access struct {
	T      float64
	Offset uint64
	Count  uint32
	Write  bool
	EOF    bool   // reply said the access reached end-of-file
	Size   uint64 // post-op file size, when known
}

// endBlock returns the block just past the access, with counts rounded
// up to whole blocks as §4.2 prescribes.
func (a Access) endBlock() int64 {
	return int64((a.Offset + uint64(a.Count) + BlockSize - 1) / BlockSize)
}

func (a Access) startBlock() int64 { return int64(a.Offset / BlockSize) }

// AccessMap groups data accesses by file handle, in trace order. It is
// the incremental form of FileAccesses: shards of the pipeline each
// accumulate one AccessMap for the files they own. Keys are interned
// handle IDs, so the per-op map update hashes one integer instead of a
// hex string.
type AccessMap map[core.FH][]Access

// Add appends op's data access to its file's list; metadata ops are
// ignored.
func (m AccessMap) Add(op *core.Op) {
	if !op.IsRead() && !op.IsWrite() {
		return
	}
	m[op.FH] = append(m[op.FH], Access{
		T:      op.T,
		Offset: op.Offset,
		Count:  uint32(op.Bytes()),
		Write:  op.IsWrite(),
		EOF:    op.EOF,
		Size:   op.Size,
	})
}

// FileAccesses groups every data access by file handle, in trace order.
func FileAccesses(ops []*core.Op) map[core.FH][]Access {
	m := make(AccessMap)
	for _, op := range ops {
		m.Add(op)
	}
	return m
}

// SortWindow partially sorts accesses in ascending offset order within a
// temporal window of w seconds (§4.2's "reorder window"), undoing
// nfsiod reordering without masking true randomness. It returns the
// number of swaps performed.
func SortWindow(accs []Access, w float64) int {
	swaps := 0
	for i := 0; i < len(accs); i++ {
		// Find the in-window access with the smallest offset.
		best := i
		for j := i + 1; j < len(accs) && accs[j].T-accs[i].T <= w; j++ {
			if accs[j].Offset < accs[best].Offset {
				best = j
			}
		}
		if best != i && accs[best].Offset < accs[i].Offset {
			accs[i], accs[best] = accs[best], accs[i]
			swaps++
		}
	}
	return swaps
}

// ReorderSweepPoint is one point of Figure 1.
type ReorderSweepPoint struct {
	WindowMS float64
	// SwappedPct is the percentage of accesses that were swapped by
	// the sorting pass at this window size.
	SwappedPct float64
}

// SweepFiles counts, for each window size, how many accesses the
// sorting pass moves across the given files, plus the total access
// count. The raw counts (rather than percentages) let the pipeline sum
// partial sweeps across shards exactly.
func SweepFiles(files map[core.FH][]Access, windowsMS []float64) (swaps []int, total int) {
	for _, accs := range files {
		total += len(accs)
	}
	swaps = make([]int, len(windowsMS))
	for i, wms := range windowsMS {
		for _, accs := range files {
			cp := make([]Access, len(accs))
			copy(cp, accs)
			swaps[i] += SortWindow(cp, wms/1000)
		}
	}
	return swaps, total
}

// SweepPoints converts summed swap counts back into the Figure 1
// percentage points.
func SweepPoints(windowsMS []float64, swaps []int, total int) []ReorderSweepPoint {
	out := make([]ReorderSweepPoint, 0, len(windowsMS))
	for i, wms := range windowsMS {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(swaps[i]) / float64(total)
		}
		out = append(out, ReorderSweepPoint{WindowMS: wms, SwappedPct: pct})
	}
	return out
}

// ReorderSweep measures, for each window size, what fraction of
// accesses the sorting pass moves (Figure 1). The input ops are grouped
// per file; each sweep sorts a fresh copy.
func ReorderSweep(ops []*core.Op, windowsMS []float64) []ReorderSweepPoint {
	swaps, total := SweepFiles(FileAccesses(ops), windowsMS)
	return SweepPoints(windowsMS, swaps, total)
}

// Run kinds.
type RunKind int

// Run kind values.
const (
	RunRead RunKind = iota
	RunWrite
	RunReadWrite
)

// Run patterns.
type RunPattern int

// Run pattern values (the entire/sequential/random taxonomy).
const (
	PatternEntire RunPattern = iota
	PatternSequential
	PatternRandom
)

// Run is one detected run on one file.
type Run struct {
	FH       core.FH
	Accesses []Access
	Kind     RunKind
	Pattern  RunPattern
	// Bytes is the total bytes accessed in the run.
	Bytes uint64
	// FileSize is the largest file size observed during the run.
	FileSize uint64
	// Metric is the sequentiality metric with the configured jump
	// tolerance; MetricK1 is the strict (k=1) variant.
	Metric   float64
	MetricK1 float64
}

// RunConfig controls run detection.
type RunConfig struct {
	// ReorderWindow is the §4.2 sorting window in seconds (0 disables
	// sorting — the "raw" columns of Table 3).
	ReorderWindow float64
	// IdleGap breaks a run when consecutive accesses are farther apart
	// (30s in the paper).
	IdleGap float64
	// JumpBlocks is k: seeks of fewer than k 8 KB blocks do not break
	// sequentiality (10 in the paper; 1 = strict).
	JumpBlocks int64
}

// DefaultRunConfig is the paper's processed configuration for the given
// reorder window (5 ms for EECS, 10 ms for CAMPUS).
func DefaultRunConfig(windowMS float64) RunConfig {
	return RunConfig{ReorderWindow: windowMS / 1000, IdleGap: 30, JumpBlocks: 10}
}

// DetectRunsInFiles splits each file's accesses into runs and
// classifies them, iterating files in sorted-handle order so the run
// list is reproducible. The sort is by the rendered handle spelling,
// not the interned ID — ID numbering depends on decode interleaving,
// spellings don't. Every consumer of runs (Tabulate, SizeProfile,
// SequentialityProfile) aggregates per-run counts, so concatenating the
// run lists of disjoint file sets yields identical tables.
func DetectRunsInFiles(files map[core.FH][]Access, cfg RunConfig) []Run {
	fhs := make([]core.FH, 0, len(files))
	for fh := range files {
		fhs = append(fhs, fh)
	}
	sort.Slice(fhs, func(i, j int) bool { return fhs[i].String() < fhs[j].String() })

	var runs []Run
	for _, fh := range fhs {
		accs := files[fh]
		if cfg.ReorderWindow > 0 {
			cp := make([]Access, len(accs))
			copy(cp, accs)
			SortWindow(cp, cfg.ReorderWindow)
			accs = cp
		}
		runs = append(runs, splitRuns(fh, accs, cfg)...)
	}
	return runs
}

// DetectRuns splits every file's accesses into runs and classifies
// them.
func DetectRuns(ops []*core.Op, cfg RunConfig) []Run {
	return DetectRunsInFiles(FileAccesses(ops), cfg)
}

// splitRuns applies the §4.2 run-break rules: a new run begins after an
// access that referenced end-of-file, or after an idle gap.
func splitRuns(fh core.FH, accs []Access, cfg RunConfig) []Run {
	var runs []Run
	var cur []Access
	flush := func() {
		if len(cur) > 0 {
			runs = append(runs, classifyRun(fh, cur, cfg))
			cur = nil
		}
	}
	for i, a := range accs {
		if len(cur) > 0 {
			prev := cur[len(cur)-1]
			if prev.EOF || (cfg.IdleGap > 0 && a.T-prev.T > cfg.IdleGap) {
				flush()
			}
		}
		cur = append(cur, a)
		_ = i
	}
	flush()
	return runs
}

func classifyRun(fh core.FH, accs []Access, cfg RunConfig) Run {
	r := Run{FH: fh, Accesses: accs}
	reads, writes := 0, 0
	var maxSize uint64
	for _, a := range accs {
		if a.Write {
			writes++
		} else {
			reads++
		}
		r.Bytes += uint64(a.Count)
		if a.Size > maxSize {
			maxSize = a.Size
		}
	}
	r.FileSize = maxSize
	switch {
	case writes == 0:
		r.Kind = RunRead
	case reads == 0:
		r.Kind = RunWrite
	default:
		r.Kind = RunReadWrite
	}

	k := cfg.JumpBlocks
	if k < 1 {
		k = 1
	}
	sequential := true
	var seqK, seqStrict, total int64
	for i := 1; i < len(accs); i++ {
		total++
		prevEnd := accs[i-1].Offset + uint64(accs[i-1].Count)
		// Sequentiality (§4.2): each request begins where the previous
		// one left off, by byte offset, with forward slack of up to k
		// 8 KB blocks (offsets and counts round to blocks, so exact
		// byte-appends within a block are sequential too).
		if accs[i].Offset < prevEnd ||
			accs[i].Offset-prevEnd >= uint64(k)*BlockSize {
			sequential = false
		}
		// The k-consecutive metric works on blocks, counting small
		// jumps in either direction (§6.4).
		gap := accs[i].startBlock() - accs[i-1].endBlock()
		if gap < 0 {
			gap = -gap
		}
		if gap < k {
			seqK++
		}
		if gap == 0 {
			seqStrict++
		}
	}
	if total > 0 {
		r.Metric = float64(seqK) / float64(total)
		r.MetricK1 = float64(seqStrict) / float64(total)
	} else {
		r.Metric, r.MetricK1 = 1, 1
	}

	// Entire: sequential from offset 0 through end-of-file.
	first := accs[0]
	last := accs[len(accs)-1]
	coversWhole := first.Offset == 0 &&
		(last.EOF || (maxSize > 0 && last.Offset+uint64(last.Count) >= maxSize))
	if len(accs) == 1 {
		// Singleton runs: entire if they access the whole file,
		// sequential otherwise (§5.1, Table 3 note).
		if coversWhole {
			r.Pattern = PatternEntire
		} else {
			r.Pattern = PatternSequential
		}
		return r
	}
	switch {
	case sequential && coversWhole:
		r.Pattern = PatternEntire
	case sequential:
		r.Pattern = PatternSequential
	default:
		r.Pattern = PatternRandom
	}
	return r
}

// RunTable is the Table 3 presentation: run-count percentages by kind
// and pattern.
type RunTable struct {
	// ReadPct, WritePct, ReadWritePct are percentages of all runs.
	ReadPct, WritePct, ReadWritePct float64
	// Pattern percentages within each kind: [entire, sequential,
	// random].
	Read, Write, ReadWrite [3]float64
	TotalRuns              int
}

// Tabulate builds Table 3 from detected runs.
func Tabulate(runs []Run) RunTable {
	var t RunTable
	t.TotalRuns = len(runs)
	if len(runs) == 0 {
		return t
	}
	var kindCount [3]int
	var pat [3][3]int
	for _, r := range runs {
		kindCount[r.Kind]++
		pat[r.Kind][r.Pattern]++
	}
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	t.ReadPct = pct(kindCount[RunRead], len(runs))
	t.WritePct = pct(kindCount[RunWrite], len(runs))
	t.ReadWritePct = pct(kindCount[RunReadWrite], len(runs))
	for kind := 0; kind < 3; kind++ {
		for p := 0; p < 3; p++ {
			v := pct(pat[kind][p], kindCount[kind])
			switch RunKind(kind) {
			case RunRead:
				t.Read[p] = v
			case RunWrite:
				t.Write[p] = v
			case RunReadWrite:
				t.ReadWrite[p] = v
			}
		}
	}
	return t
}

// SizeProfilePoint is one file-size bucket of Figure 2.
type SizeProfilePoint struct {
	// SizeCeil is the bucket's upper file-size bound (bytes, powers of
	// two).
	SizeCeil uint64
	// Cumulative percentage of all accessed bytes from files of size
	// <= SizeCeil, total and per pattern.
	TotalPct, EntirePct, SequentialPct, RandomPct float64
}

// SizeProfile builds Figure 2: the cumulative percentage of bytes
// accessed, by the size of the file and the pattern of the run moving
// them.
func SizeProfile(runs []Run) []SizeProfilePoint {
	const minExp, maxExp = 10, 28 // 1 KB .. 256 MB
	var total float64
	var byPat [3][maxExp - minExp + 1]float64
	var all [maxExp - minExp + 1]float64
	for _, r := range runs {
		if r.Bytes == 0 {
			continue
		}
		e := minExp
		for (uint64(1)<<uint(e)) < r.FileSize && e < maxExp {
			e++
		}
		idx := e - minExp
		all[idx] += float64(r.Bytes)
		byPat[r.Pattern][idx] += float64(r.Bytes)
		total += float64(r.Bytes)
	}
	if total == 0 {
		return nil
	}
	var out []SizeProfilePoint
	var cumAll float64
	var cumPat [3]float64
	for i := 0; i <= maxExp-minExp; i++ {
		cumAll += all[i]
		for p := 0; p < 3; p++ {
			cumPat[p] += byPat[p][i]
		}
		out = append(out, SizeProfilePoint{
			SizeCeil:      1 << uint(i+minExp),
			TotalPct:      100 * cumAll / total,
			EntirePct:     100 * cumPat[PatternEntire] / total,
			SequentialPct: 100 * cumPat[PatternSequential] / total,
			RandomPct:     100 * cumPat[PatternRandom] / total,
		})
	}
	return out
}

// SeqMetricPoint is one run-size bucket of Figure 5.
type SeqMetricPoint struct {
	// BytesCeil is the run-size bucket bound (16 KB .. 64 MB).
	BytesCeil uint64
	// Read/Write metrics averaged over runs in the bucket, with small
	// jumps allowed (k=10) and not (k=1). NaN-free: buckets with no
	// runs report -1.
	ReadK10, ReadK1, WriteK10, WriteK1 float64
	// CumRunsPct is the cumulative percentage of runs with size <=
	// BytesCeil (the bottom panels of Figure 5).
	CumRunsPct, CumReadRunsPct, CumWriteRunsPct float64
}

// SequentialityProfile builds Figure 5 from runs detected with
// JumpBlocks=10 (Metric) — MetricK1 supplies the strict curves.
func SequentialityProfile(runs []Run) []SeqMetricPoint {
	const minExp, maxExp = 14, 26 // 16 KB .. 64 MB
	nb := maxExp - minExp + 1
	type acc struct {
		k10, k1 float64
		n       int
	}
	var readB, writeB [16]acc
	var runCount, readCount, writeCount [16]int
	var totalRuns, totalRead, totalWrite int
	for _, r := range runs {
		e := minExp
		for (uint64(1)<<uint(e)) < r.Bytes && e < maxExp {
			e++
		}
		i := e - minExp
		runCount[i]++
		totalRuns++
		switch r.Kind {
		case RunRead:
			readB[i].k10 += r.Metric
			readB[i].k1 += r.MetricK1
			readB[i].n++
			readCount[i]++
			totalRead++
		case RunWrite:
			writeB[i].k10 += r.Metric
			writeB[i].k1 += r.MetricK1
			writeB[i].n++
			writeCount[i]++
			totalWrite++
		}
	}
	var out []SeqMetricPoint
	var cum, cumR, cumW int
	for i := 0; i < nb; i++ {
		p := SeqMetricPoint{BytesCeil: 1 << uint(i+minExp),
			ReadK10: -1, ReadK1: -1, WriteK10: -1, WriteK1: -1}
		if readB[i].n > 0 {
			p.ReadK10 = readB[i].k10 / float64(readB[i].n)
			p.ReadK1 = readB[i].k1 / float64(readB[i].n)
		}
		if writeB[i].n > 0 {
			p.WriteK10 = writeB[i].k10 / float64(writeB[i].n)
			p.WriteK1 = writeB[i].k1 / float64(writeB[i].n)
		}
		cum += runCount[i]
		cumR += readCount[i]
		cumW += writeCount[i]
		if totalRuns > 0 {
			p.CumRunsPct = 100 * float64(cum) / float64(totalRuns)
		}
		if totalRead > 0 {
			p.CumReadRunsPct = 100 * float64(cumR) / float64(totalRead)
		}
		if totalWrite > 0 {
			p.CumWriteRunsPct = 100 * float64(cumW) / float64(totalWrite)
		}
		out = append(out, p)
	}
	return out
}
