package analysis

import (
	"fmt"

	"repro/internal/core"
)

// Summary is the Table 2 presentation: average daily activity.
type Summary struct {
	Days float64

	TotalOps     int64
	ReadOps      int64
	WriteOps     int64
	MetadataOps  int64
	BytesRead    uint64
	BytesWritten uint64

	// ProcCounts breaks the mix down by procedure, indexed by the
	// interned ProcID — a dense array, so the per-op update is one
	// array store instead of a string-map hash.
	ProcCounts ProcCountTable
}

// ProcCountTable is a dense per-procedure counter, indexed by
// core.ProcID.
type ProcCountTable [256]int64

// ByName renders the table as a name → count map for presentation.
func (t *ProcCountTable) ByName() map[string]int64 {
	out := make(map[string]int64)
	for id, n := range t {
		if n != 0 {
			out[core.ProcID(id).String()] = n
		}
	}
	return out
}

// NewSummary returns an empty accumulator for a window of the given
// number of days.
func NewSummary(days float64) *Summary {
	return &Summary{Days: days}
}

// Add folds one operation into the summary.
func (s *Summary) Add(op *core.Op) {
	s.TotalOps++
	s.ProcCounts[op.Proc]++
	switch {
	case op.IsRead():
		s.ReadOps++
		s.BytesRead += op.Bytes()
	case op.IsWrite():
		s.WriteOps++
		s.BytesWritten += op.Bytes()
	default:
		s.MetadataOps++
	}
}

// Merge folds other into s, as if other's operations had been added to
// s directly. Every field is an integer count, so the merged summary is
// identical whatever the partitioning.
func (s *Summary) Merge(other *Summary) {
	s.TotalOps += other.TotalOps
	s.ReadOps += other.ReadOps
	s.WriteOps += other.WriteOps
	s.MetadataOps += other.MetadataOps
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	for id, n := range other.ProcCounts {
		s.ProcCounts[id] += n
	}
}

// Summarize computes totals over ops spanning the given number of days.
func Summarize(ops []*core.Op, days float64) *Summary {
	s := NewSummary(days)
	for _, op := range ops {
		s.Add(op)
	}
	return s
}

// Daily scales a count to a per-day average.
func (s *Summary) Daily(v float64) float64 {
	if s.Days <= 0 {
		return v
	}
	return v / s.Days
}

// ReadWriteByteRatio is bytes read / bytes written.
func (s *Summary) ReadWriteByteRatio() float64 {
	if s.BytesWritten == 0 {
		return 0
	}
	return float64(s.BytesRead) / float64(s.BytesWritten)
}

// ReadWriteOpRatio is read ops / write ops.
func (s *Summary) ReadWriteOpRatio() float64 {
	if s.WriteOps == 0 {
		return 0
	}
	return float64(s.ReadOps) / float64(s.WriteOps)
}

// MetadataFraction is the share of operations that move no data.
func (s *Summary) MetadataFraction() float64 {
	if s.TotalOps == 0 {
		return 0
	}
	return float64(s.MetadataOps) / float64(s.TotalOps)
}

// String renders the Table 2 row for this trace.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"days=%.1f total_ops/day=%.3fM read_GB/day=%.2f read_ops/day=%.3fM "+
			"written_GB/day=%.2f write_ops/day=%.3fM rw_bytes=%.2f rw_ops=%.2f meta=%.1f%%",
		s.Days,
		s.Daily(float64(s.TotalOps))/1e6,
		s.Daily(float64(s.BytesRead))/(1<<30),
		s.Daily(float64(s.ReadOps))/1e6,
		s.Daily(float64(s.BytesWritten))/(1<<30),
		s.Daily(float64(s.WriteOps))/1e6,
		s.ReadWriteByteRatio(),
		s.ReadWriteOpRatio(),
		100*s.MetadataFraction(),
	)
}
