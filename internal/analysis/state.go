package analysis

import (
	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/stats"
)

// Binary encode/decode of each reducer's partial state, symmetric to
// its Merge form: DecodeState folds the serialized partial into the
// receiver exactly as Merge would fold a live one. File handles and
// procedures go through the state package's dictionaries, so interned
// IDs survive process boundaries.
//
// Decoding validates semantic invariants (config match, index ranges)
// through Decoder.Failf; a hostile payload leaves the decoder in its
// sticky error state and the caller discards the whole partial, so
// garbage never merges silently.

// maxBucketIndex bounds time-bucket indexes accepted from a state file:
// open accumulators grow to the largest index folded, so an unchecked
// hostile index could demand gigabytes. 2^20 hour-buckets is over a
// century of trace.
const maxBucketIndex = 1 << 20

func encodeCDF(e *state.Encoder, c *stats.CDF) {
	samples := c.Samples()
	e.Uvarint(uint64(len(samples)))
	for _, v := range samples {
		e.F64(v)
	}
}

func decodeCDF(d *state.Decoder, c *stats.CDF) {
	n := d.Count("cdf sample count")
	for i := 0; i < n && d.Err() == nil; i++ {
		c.Add(d.F64())
	}
}

func encodeBuckets(e *state.Encoder, b *stats.TimeBuckets) {
	e.F64(b.Width())
	values := b.Values()
	nonzero := 0
	for _, v := range values {
		if v != 0 {
			nonzero++
		}
	}
	e.Uvarint(uint64(nonzero))
	for i, v := range values {
		if v != 0 {
			e.Uvarint(uint64(i))
			e.F64(v)
		}
	}
}

func decodeBuckets(d *state.Decoder, b *stats.TimeBuckets) {
	width := d.F64()
	if d.Err() == nil && width != b.Width() {
		d.Failf("time-bucket width %v does not match accumulator width %v", width, b.Width())
		return
	}
	n := d.Count("time-bucket count")
	for i := 0; i < n && d.Err() == nil; i++ {
		idx := d.Uvarint()
		v := d.F64()
		if idx > maxBucketIndex {
			d.Failf("time-bucket index %d exceeds limit %d", idx, maxBucketIndex)
			return
		}
		if d.Err() == nil {
			b.FoldBucket(int(idx), v)
		}
	}
}

// EncodeState serializes the summary counters. Days is derived from the
// trace span at render time, so it is not part of the state.
func (s *Summary) EncodeState(e *state.Encoder) {
	e.Varint(s.TotalOps)
	e.Varint(s.ReadOps)
	e.Varint(s.WriteOps)
	e.Varint(s.MetadataOps)
	e.Uvarint(s.BytesRead)
	e.Uvarint(s.BytesWritten)
	nonzero := 0
	for _, n := range s.ProcCounts {
		if n != 0 {
			nonzero++
		}
	}
	e.Uvarint(uint64(nonzero))
	for id, n := range s.ProcCounts {
		if n != 0 {
			e.Proc(core.ProcID(id))
			e.Varint(n)
		}
	}
}

// DecodeState folds a serialized summary into s, like Merge.
func (s *Summary) DecodeState(d *state.Decoder) {
	s.TotalOps += d.Varint()
	s.ReadOps += d.Varint()
	s.WriteOps += d.Varint()
	s.MetadataOps += d.Varint()
	s.BytesRead += d.Uvarint()
	s.BytesWritten += d.Uvarint()
	n := d.Count("procedure count")
	for i := 0; i < n && d.Err() == nil; i++ {
		p := d.Proc()
		c := d.Varint()
		if d.Err() == nil {
			s.ProcCounts[p] += c
		}
	}
}

// EncodeState serializes the five hourly series as sparse buckets.
// Bucket indexes are anchored at t=0, so the open and fixed forms
// serialize identically.
func (h *HourlySeries) EncodeState(e *state.Encoder) {
	encodeBuckets(e, h.Ops)
	encodeBuckets(e, h.ReadOps)
	encodeBuckets(e, h.WriteOps)
	encodeBuckets(e, h.BytesRead)
	encodeBuckets(e, h.BytesWrite)
}

// DecodeState folds serialized hourly series into h. The receiver may
// be open (growing) or fixed (clamping); folding by bucket index
// reproduces exactly what adding the underlying ops would have.
func (h *HourlySeries) DecodeState(d *state.Decoder) {
	decodeBuckets(d, h.Ops)
	decodeBuckets(d, h.ReadOps)
	decodeBuckets(d, h.WriteOps)
	decodeBuckets(d, h.BytesRead)
	decodeBuckets(d, h.BytesWrite)
}

// EncodeState serializes the per-file access lists.
func (m AccessMap) EncodeState(e *state.Encoder) {
	e.Uvarint(uint64(len(m)))
	for fh, accs := range m {
		e.FH(fh)
		e.Uvarint(uint64(len(accs)))
		for _, a := range accs {
			e.F64(a.T)
			e.Uvarint(a.Offset)
			e.Uvarint(uint64(a.Count))
			e.Bool(a.Write)
			e.Bool(a.EOF)
			e.Uvarint(a.Size)
		}
	}
}

// DecodeState appends serialized access lists to m. Partials must be
// decoded in trace-time order so each file's accesses concatenate in
// order — the same contract AccessMap.Merge has.
func (m AccessMap) DecodeState(d *state.Decoder) {
	nf := d.Count("file count")
	for i := 0; i < nf && d.Err() == nil; i++ {
		fh := d.FH()
		na := d.Count("access count")
		for j := 0; j < na && d.Err() == nil; j++ {
			a := Access{
				T:      d.F64(),
				Offset: d.Uvarint(),
				Count:  uint32(d.Uvarint()),
				Write:  d.Bool(),
				EOF:    d.Bool(),
				Size:   d.Uvarint(),
			}
			if d.Err() == nil {
				m[fh] = append(m[fh], a)
			}
		}
	}
}

// EncodeState serializes the full mid-stream block-lifetime state:
// result counters, live Phase-1 births, tracked sizes and name
// bindings, and the window configuration (validated on decode — a
// partial is only meaningful under the window it was built with).
func (s *BlockLifeStream) EncodeState(e *state.Encoder) {
	e.F64(s.start)
	e.F64(s.st.phase1End)
	e.F64(s.st.margin)
	e.Bool(s.done)

	e.Varint(s.st.res.Births)
	for _, c := range s.st.res.BirthCause {
		e.Varint(c)
	}
	e.Varint(s.st.res.Deaths)
	for _, c := range s.st.res.DeathCause {
		e.Varint(c)
	}
	e.Varint(s.st.res.EndSurplus)
	encodeCDF(e, s.st.res.Lifetimes)

	e.Uvarint(uint64(len(s.st.births)))
	for fh, blocks := range s.st.births {
		e.FH(fh)
		e.Uvarint(uint64(len(blocks)))
		for b, t := range blocks {
			e.Varint(b)
			e.F64(t)
		}
	}
	e.Uvarint(uint64(len(s.st.sizes)))
	for fh, size := range s.st.sizes {
		e.FH(fh)
		e.Uvarint(size)
	}
	e.Uvarint(uint64(len(s.st.names)))
	for nb, fh := range s.st.names {
		e.FH(nb.dir)
		e.String(nb.name)
		e.FH(fh)
	}
}

// DecodeState folds a serialized block-lifetime partial into s. The
// encoded window must match the receiver's: lifetimes and phases only
// compose under one configuration.
func (s *BlockLifeStream) DecodeState(d *state.Decoder) {
	start := d.F64()
	phase1End := d.F64()
	margin := d.F64()
	done := d.Bool()
	if d.Err() != nil {
		return
	}
	if start != s.start || phase1End != s.st.phase1End || margin != s.st.margin {
		d.Failf("block-life window (start=%v phase1End=%v margin=%v) does not match receiver (start=%v phase1End=%v margin=%v)",
			start, phase1End, margin, s.start, s.st.phase1End, s.st.margin)
		return
	}
	if done {
		d.Failf("block-life state was finalized before export; partials must be exported mid-stream")
		return
	}

	s.st.res.Births += d.Varint()
	for i := range s.st.res.BirthCause {
		s.st.res.BirthCause[i] += d.Varint()
	}
	s.st.res.Deaths += d.Varint()
	for i := range s.st.res.DeathCause {
		s.st.res.DeathCause[i] += d.Varint()
	}
	s.st.res.EndSurplus += d.Varint()
	decodeCDF(d, s.st.res.Lifetimes)

	nb := d.Count("birth file count")
	for i := 0; i < nb && d.Err() == nil; i++ {
		fh := d.FH()
		nblk := d.Count("birth block count")
		for j := 0; j < nblk && d.Err() == nil; j++ {
			b := d.Varint()
			t := d.F64()
			if d.Err() != nil {
				break
			}
			m := s.st.births[fh]
			if m == nil {
				m = make(map[int64]float64)
				s.st.births[fh] = m
			}
			m[b] = t
		}
	}
	ns := d.Count("size count")
	for i := 0; i < ns && d.Err() == nil; i++ {
		fh := d.FH()
		size := d.Uvarint()
		if d.Err() == nil {
			s.st.sizes[fh] = size
		}
	}
	nn := d.Count("name binding count")
	for i := 0; i < nn && d.Err() == nil; i++ {
		dir := d.FH()
		name := d.String("name")
		fh := d.FH()
		if d.Err() == nil {
			s.st.names[nameBinding{dir, name}] = fh
		}
	}
}

// DistributeState spreads m's per-file lists across shard-local maps,
// appending each file's accesses to the part shardOf assigns it — the
// inverse of the union an encoder builds, so a resumed multi-shard run
// places every file's history on the shard its future ops will route to.
func (m AccessMap) DistributeState(parts []AccessMap, shardOf func(core.FH) int) {
	for fh, accs := range m {
		p := parts[shardOf(fh)]
		p[fh] = append(p[fh], accs...)
	}
}

// MergeStateInto folds s's mid-stream state into dst: result counters
// and lifetime samples sum, live births and tracked sizes union (keys
// are disjoint across shards), and name bindings copy when keepName
// accepts them. A nil keepName keeps every binding; the pipeline passes
// a router-consistency filter so bindings a shard saw but the global
// order later rebound do not leak into the serialized state.
func (s *BlockLifeStream) MergeStateInto(dst *BlockLifeStream, keepName func(dir core.FH, name string, child core.FH) bool) {
	dst.st.res.Births += s.st.res.Births
	for i, c := range s.st.res.BirthCause {
		dst.st.res.BirthCause[i] += c
	}
	dst.st.res.Deaths += s.st.res.Deaths
	for i, c := range s.st.res.DeathCause {
		dst.st.res.DeathCause[i] += c
	}
	dst.st.res.EndSurplus += s.st.res.EndSurplus
	dst.st.res.Lifetimes.Merge(s.st.res.Lifetimes)
	for fh, blocks := range s.st.births {
		m := dst.st.births[fh]
		if m == nil {
			m = make(map[int64]float64, len(blocks))
			dst.st.births[fh] = m
		}
		for b, t := range blocks {
			m[b] = t
		}
	}
	for fh, size := range s.st.sizes {
		dst.st.sizes[fh] = size
	}
	for nb, fh := range s.st.names {
		if keepName == nil || keepName(nb.dir, nb.name, fh) {
			dst.st.names[nb] = fh
		}
	}
}

// DistributeState spreads s's decoded state across shard-local streams:
// births and sizes go to the shard owning their file handle, name
// bindings to the shard owning the bound child (the router delivers
// removes there), and the scalar counters to parts[0] — Result merges
// all parts, so placement of pure sums is arbitrary.
func (s *BlockLifeStream) DistributeState(parts []*BlockLifeStream, shardOf func(core.FH) int) {
	dst0 := parts[0]
	dst0.st.res.Births += s.st.res.Births
	for i, c := range s.st.res.BirthCause {
		dst0.st.res.BirthCause[i] += c
	}
	dst0.st.res.Deaths += s.st.res.Deaths
	for i, c := range s.st.res.DeathCause {
		dst0.st.res.DeathCause[i] += c
	}
	dst0.st.res.EndSurplus += s.st.res.EndSurplus
	dst0.st.res.Lifetimes.Merge(s.st.res.Lifetimes)
	for fh, blocks := range s.st.births {
		dst := parts[shardOf(fh)]
		m := dst.st.births[fh]
		if m == nil {
			m = make(map[int64]float64, len(blocks))
			dst.st.births[fh] = m
		}
		for b, t := range blocks {
			m[b] = t
		}
	}
	for fh, size := range s.st.sizes {
		parts[shardOf(fh)].st.sizes[fh] = size
	}
	for nb, fh := range s.st.names {
		parts[shardOf(fh)].st.names[nb] = fh
	}
}

// EncodeState serializes the peak-hour window, category map, and
// instance set.
func (p *PeakHourInstances) EncodeState(e *state.Encoder) {
	e.F64(p.From)
	e.F64(p.To)
	e.Uvarint(uint64(len(p.cat)))
	for fh, c := range p.cat {
		e.FH(fh)
		e.Uvarint(uint64(c))
	}
	e.Uvarint(uint64(len(p.instances)))
	for fh := range p.instances {
		e.FH(fh)
	}
}

// DecodeState folds a serialized peak-hour partial into p. Windows must
// match; category entries overwrite (partials are decoded in trace-time
// order, so later name observations win, as they would in one pass).
func (p *PeakHourInstances) DecodeState(d *state.Decoder) {
	from := d.F64()
	to := d.F64()
	if d.Err() != nil {
		return
	}
	if from != p.From || to != p.To {
		d.Failf("peak-hour window [%v,%v) does not match receiver [%v,%v)", from, to, p.From, p.To)
		return
	}
	nc := d.Count("category count")
	for i := 0; i < nc && d.Err() == nil; i++ {
		fh := d.FH()
		c := d.Uvarint()
		if c >= uint64(numCategories) {
			d.Failf("name category %d out of range (%d categories)", c, numCategories)
			return
		}
		if d.Err() == nil {
			p.cat[fh] = NameCategory(c)
		}
	}
	ni := d.Count("instance count")
	for i := 0; i < ni && d.Err() == nil; i++ {
		fh := d.FH()
		if d.Err() == nil {
			p.instances[fh] = true
		}
	}
}

// MergeStateInto folds p's maps into dst. Handles partition by shard,
// so the union is exact.
func (p *PeakHourInstances) MergeStateInto(dst *PeakHourInstances) {
	for fh, c := range p.cat {
		dst.cat[fh] = c
	}
	for fh := range p.instances {
		dst.instances[fh] = true
	}
}

// DistributeState spreads p's decoded maps across shard-local
// accumulators by file handle.
func (p *PeakHourInstances) DistributeState(parts []*PeakHourInstances, shardOf func(core.FH) int) {
	for fh, c := range p.cat {
		parts[shardOf(fh)].cat[fh] = c
	}
	for fh := range p.instances {
		parts[shardOf(fh)].instances[fh] = true
	}
}

// EncodeState serializes the mailbox/large-file handle sets and
// per-file byte counts.
func (m *MailboxShare) EncodeState(e *state.Encoder) {
	e.Uvarint(uint64(len(m.mailboxFH)))
	for fh := range m.mailboxFH {
		e.FH(fh)
	}
	e.Uvarint(uint64(len(m.big)))
	for fh := range m.big {
		e.FH(fh)
	}
	e.Uvarint(uint64(len(m.bytes)))
	for fh, n := range m.bytes {
		e.FH(fh)
		e.Uvarint(n)
	}
}

// DecodeState folds a serialized mailbox-share partial into m: handle
// sets union, byte counts sum.
func (m *MailboxShare) DecodeState(d *state.Decoder) {
	nm := d.Count("mailbox handle count")
	for i := 0; i < nm && d.Err() == nil; i++ {
		if fh := d.FH(); d.Err() == nil {
			m.mailboxFH[fh] = true
		}
	}
	nb := d.Count("big handle count")
	for i := 0; i < nb && d.Err() == nil; i++ {
		if fh := d.FH(); d.Err() == nil {
			m.big[fh] = true
		}
	}
	ny := d.Count("byte entry count")
	for i := 0; i < ny && d.Err() == nil; i++ {
		fh := d.FH()
		n := d.Uvarint()
		if d.Err() == nil {
			m.bytes[fh] += n
		}
	}
}

// MergeStateInto folds m's sets and counts into dst: sets union, byte
// counts sum.
func (m *MailboxShare) MergeStateInto(dst *MailboxShare) {
	for fh := range m.mailboxFH {
		dst.mailboxFH[fh] = true
	}
	for fh := range m.big {
		dst.big[fh] = true
	}
	for fh, n := range m.bytes {
		dst.bytes[fh] += n
	}
}

// DistributeState spreads m's decoded maps across shard-local
// accumulators by file handle.
func (m *MailboxShare) DistributeState(parts []*MailboxShare, shardOf func(core.FH) int) {
	for fh := range m.mailboxFH {
		parts[shardOf(fh)].mailboxFH[fh] = true
	}
	for fh := range m.big {
		parts[shardOf(fh)].big[fh] = true
	}
	for fh, n := range m.bytes {
		parts[shardOf(fh)].bytes[fh] += n
	}
}

// EncodeState serializes the reconstructed namespace: parent edges, the
// reverse index exactly as it stands (stale entries and all — resolve's
// repair path depends on the index state, so a faithful copy keeps the
// resumed run deterministic), the known-handle set, and the coverage
// counters.
func (h *Hierarchy) EncodeState(e *state.Encoder) {
	e.Uvarint(uint64(len(h.parent)))
	for fh, nb := range h.parent {
		e.FH(fh)
		e.FH(nb.dir)
		e.String(nb.name)
	}
	e.Uvarint(uint64(len(h.byEdge)))
	for nb, fh := range h.byEdge {
		e.FH(nb.dir)
		e.String(nb.name)
		e.FH(fh)
	}
	e.Uvarint(uint64(len(h.known)))
	for fh := range h.known {
		e.FH(fh)
	}
	e.Varint(h.resolvable)
	e.Varint(h.total)
}

// DecodeState folds a serialized namespace into h.
func (h *Hierarchy) DecodeState(d *state.Decoder) {
	np := d.Count("parent edge count")
	for i := 0; i < np && d.Err() == nil; i++ {
		fh := d.FH()
		dir := d.FH()
		name := d.String("edge name")
		if d.Err() == nil {
			h.parent[fh] = nameBinding{dir, name}
		}
	}
	ne := d.Count("edge index count")
	for i := 0; i < ne && d.Err() == nil; i++ {
		dir := d.FH()
		name := d.String("edge name")
		fh := d.FH()
		if d.Err() == nil {
			h.byEdge[nameBinding{dir, name}] = fh
		}
	}
	nk := d.Count("known handle count")
	for i := 0; i < nk && d.Err() == nil; i++ {
		if fh := d.FH(); d.Err() == nil {
			h.known[fh] = true
		}
	}
	h.resolvable += d.Varint()
	h.total += d.Varint()
}

// EncodeState serializes the name-analysis stream: open instances, name
// bindings, and the folded per-category aggregate.
func (n *NamesStream) EncodeState(e *state.Encoder) {
	e.Uvarint(uint64(numCategories))

	e.Uvarint(uint64(len(n.lives)))
	for fh, fl := range n.lives {
		e.FH(fh)
		e.String(fl.name)
		e.Uvarint(uint64(fl.cat))
		e.F64(fl.born)
		e.F64(fl.died)
		e.Bool(fl.deleted)
		e.Uvarint(fl.maxSize)
		e.Varint(fl.reads)
		e.Varint(fl.writes)
		e.Bool(fl.readSeq)
	}
	e.Uvarint(uint64(len(n.names)))
	for nb, fh := range n.names {
		e.FH(nb.dir)
		e.String(nb.name)
		e.FH(fh)
	}

	for c := 0; c < int(numCategories); c++ {
		e.Varint(n.agg.created[c])
		e.Varint(n.agg.deleted[c])
		e.Varint(n.agg.readOps[c])
		e.Varint(n.agg.writeOps[c])
		encodeCDF(e, n.agg.lifetimes[c])
		encodeCDF(e, n.agg.sizes[c])
		for _, v := range n.agg.sizeHist[c] {
			e.Varint(v)
		}
		for _, v := range n.agg.lifeHist[c] {
			e.Varint(v)
		}
	}
	e.Varint(n.agg.lockDeleted)
	e.Varint(n.agg.totalDeleted)
}

// DecodeState folds a serialized names stream into n.
func (n *NamesStream) DecodeState(d *state.Decoder) {
	nc := d.Uvarint()
	if d.Err() != nil {
		return
	}
	if nc != uint64(numCategories) {
		d.Failf("name-category count %d does not match this build's %d", nc, numCategories)
		return
	}

	nl := d.Count("open instance count")
	for i := 0; i < nl && d.Err() == nil; i++ {
		fh := d.FH()
		fl := &fileLife{
			name: d.String("instance name"),
		}
		cat := d.Uvarint()
		fl.born = d.F64()
		fl.died = d.F64()
		fl.deleted = d.Bool()
		fl.maxSize = d.Uvarint()
		fl.reads = d.Varint()
		fl.writes = d.Varint()
		fl.readSeq = d.Bool()
		if cat >= uint64(numCategories) {
			d.Failf("name category %d out of range (%d categories)", cat, numCategories)
			return
		}
		fl.cat = NameCategory(cat)
		if d.Err() == nil {
			n.lives[fh] = fl
		}
	}
	nn := d.Count("name binding count")
	for i := 0; i < nn && d.Err() == nil; i++ {
		dir := d.FH()
		name := d.String("name")
		fh := d.FH()
		if d.Err() == nil {
			n.names[nameBinding{dir, name}] = fh
		}
	}

	for c := 0; c < int(numCategories) && d.Err() == nil; c++ {
		n.agg.created[c] += d.Varint()
		n.agg.deleted[c] += d.Varint()
		n.agg.readOps[c] += d.Varint()
		n.agg.writeOps[c] += d.Varint()
		decodeCDF(d, n.agg.lifetimes[c])
		decodeCDF(d, n.agg.sizes[c])
		for j := range n.agg.sizeHist[c] {
			n.agg.sizeHist[c][j] += d.Varint()
		}
		for j := range n.agg.lifeHist[c] {
			n.agg.lifeHist[c][j] += d.Varint()
		}
	}
	n.agg.lockDeleted += d.Varint()
	n.agg.totalDeleted += d.Varint()
}
