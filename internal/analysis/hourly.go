package analysis

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Hourly load analysis (§6.2): per-hour operation counts and byte
// volumes over the trace window, the Figure 4 series, and the Table 5
// all-hours vs peak-hours variance comparison.

// HourlySeries holds per-hour accumulations over the window.
type HourlySeries struct {
	Span       float64 // window length in seconds
	Ops        *stats.TimeBuckets
	ReadOps    *stats.TimeBuckets
	WriteOps   *stats.TimeBuckets
	BytesRead  *stats.TimeBuckets
	BytesWrite *stats.TimeBuckets
}

// NewHourly returns an empty per-hour accumulator over [0, span).
func NewHourly(span float64) *HourlySeries {
	return &HourlySeries{
		Span:       span,
		Ops:        stats.NewTimeBuckets(span, 3600),
		ReadOps:    stats.NewTimeBuckets(span, 3600),
		WriteOps:   stats.NewTimeBuckets(span, 3600),
		BytesRead:  stats.NewTimeBuckets(span, 3600),
		BytesWrite: stats.NewTimeBuckets(span, 3600),
	}
}

// NewHourlyOpen returns a per-hour accumulator whose buckets grow on
// demand — for incremental runs where the window span isn't known up
// front. Convert with FixedTo once the span is known.
func NewHourlyOpen() *HourlySeries {
	return &HourlySeries{
		Ops:        stats.NewOpenTimeBuckets(3600),
		ReadOps:    stats.NewOpenTimeBuckets(3600),
		WriteOps:   stats.NewOpenTimeBuckets(3600),
		BytesRead:  stats.NewOpenTimeBuckets(3600),
		BytesWrite: stats.NewOpenTimeBuckets(3600),
	}
}

// FixedTo folds an open series into the fixed form over [0, span) —
// identical to what NewHourly(span) would have accumulated, because
// buckets are anchored at t=0 either way and the fixed form clamps
// out-of-range hours into the last bucket.
func (h *HourlySeries) FixedTo(span float64) *HourlySeries {
	return &HourlySeries{
		Span:       span,
		Ops:        h.Ops.Fixed(span),
		ReadOps:    h.ReadOps.Fixed(span),
		WriteOps:   h.WriteOps.Fixed(span),
		BytesRead:  h.BytesRead.Fixed(span),
		BytesWrite: h.BytesWrite.Fixed(span),
	}
}

// Add folds one operation into its hour bucket.
func (h *HourlySeries) Add(op *core.Op) {
	h.Ops.Add(op.T, 1)
	if op.IsRead() {
		h.ReadOps.Add(op.T, 1)
		h.BytesRead.Add(op.T, float64(op.Bytes()))
	} else if op.IsWrite() {
		h.WriteOps.Add(op.T, 1)
		h.BytesWrite.Add(op.T, float64(op.Bytes()))
	}
}

// Merge folds other's buckets into h. Both series must cover the same
// span; bucket contents are whole counts, so merging is exact.
func (h *HourlySeries) Merge(other *HourlySeries) {
	h.Ops.Merge(other.Ops)
	h.ReadOps.Merge(other.ReadOps)
	h.WriteOps.Merge(other.WriteOps)
	h.BytesRead.Merge(other.BytesRead)
	h.BytesWrite.Merge(other.BytesWrite)
}

// Hourly buckets every op into hours over [0, span).
func Hourly(ops []*core.Op, span float64) *HourlySeries {
	h := NewHourly(span)
	for _, op := range ops {
		h.Add(op)
	}
	return h
}

// RWRatios returns the per-hour read/write op ratio series (Figure 4,
// lower panel). Hours with no writes report 0.
func (h *HourlySeries) RWRatios() []float64 {
	return stats.Ratio(h.ReadOps, h.WriteOps)
}

// VarianceRow is one Table 5 line: the hourly mean and its relative
// standard deviation.
type VarianceRow struct {
	Name      string
	Mean      float64
	RelStddev float64 // stddev as a fraction of the mean
}

// isPeakHour reports whether hour index i (from the Sunday-00:00
// epoch) is 9am–6pm Monday–Friday.
func isPeakHour(i int) bool {
	day := (i / 24) % 7
	hod := i % 24
	return day >= 1 && day <= 5 && hod >= 9 && hod < 18
}

// VarianceTable computes Table 5: for each statistic, the hourly mean
// and relative stddev over either all hours or peak hours only.
func (h *HourlySeries) VarianceTable(peakOnly bool) []VarianceRow {
	series := []struct {
		name string
		tb   *stats.TimeBuckets
	}{
		{"total_ops", h.Ops},
		{"data_read_bytes", h.BytesRead},
		{"read_ops", h.ReadOps},
		{"data_written_bytes", h.BytesWrite},
		{"write_ops", h.WriteOps},
	}
	var rows []VarianceRow
	for _, s := range series {
		var r stats.Running
		for i := 0; i < s.tb.NumBuckets(); i++ {
			if peakOnly && !isPeakHour(i) {
				continue
			}
			r.Add(s.tb.Bucket(i))
		}
		rows = append(rows, VarianceRow{Name: s.name, Mean: r.Mean(), RelStddev: r.RelStddev()})
	}
	// Read/write op ratio per hour.
	var r stats.Running
	ratios := h.RWRatios()
	for i, v := range ratios {
		if peakOnly && !isPeakHour(i) {
			continue
		}
		if v > 0 {
			r.Add(v)
		}
	}
	rows = append(rows, VarianceRow{Name: "rw_op_ratio", Mean: r.Mean(), RelStddev: r.RelStddev()})
	return rows
}

// VarianceReduction reports, per statistic, the all-hours relative
// stddev divided by the peak-hours one — the paper reports ≥4× for
// every CAMPUS statistic.
func (h *HourlySeries) VarianceReduction() map[string]float64 {
	all := h.VarianceTable(false)
	peak := h.VarianceTable(true)
	out := make(map[string]float64, len(all))
	for i := range all {
		if peak[i].RelStddev > 0 {
			out[all[i].Name] = all[i].RelStddev / peak[i].RelStddev
		}
	}
	return out
}
