package analysis

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Block lifetime analysis using Roselli's create-based method as the
// paper applies it (§5.2): Phase 1 records births and deaths; Phase 2
// (the "end margin") records only deaths; deaths with lifespans longer
// than the margin are discarded to remove sampling bias; blocks that
// outlive Phase 2 are the "end surplus".

// Birth causes.
const (
	BirthWrite = iota
	BirthExtension
	numBirthCauses
)

// Death causes.
const (
	DeathOverwrite = iota
	DeathTruncate
	DeathDelete
	numDeathCauses
)

// BlockLifeResult is the Table 4 + Figure 3 output.
type BlockLifeResult struct {
	// Births and Deaths count blocks; Table 4 reports the causes as
	// percentages.
	Births     int64
	BirthCause [numBirthCauses]int64
	Deaths     int64
	DeathCause [numDeathCauses]int64
	// EndSurplus counts Phase 1 births still alive at the end of
	// Phase 2; EndSurplusPct is relative to births.
	EndSurplus int64
	// Lifetimes is the distribution of block lifespans (Figure 3).
	Lifetimes *stats.CDF
}

// BirthPct reports the percentage of births with the given cause.
func (r *BlockLifeResult) BirthPct(cause int) float64 {
	if r.Births == 0 {
		return 0
	}
	return 100 * float64(r.BirthCause[cause]) / float64(r.Births)
}

// DeathPct reports the percentage of deaths with the given cause.
func (r *BlockLifeResult) DeathPct(cause int) float64 {
	if r.Deaths == 0 {
		return 0
	}
	return 100 * float64(r.DeathCause[cause]) / float64(r.Deaths)
}

// EndSurplusPct reports the end surplus as a percentage of births.
func (r *BlockLifeResult) EndSurplusPct() float64 {
	if r.Births == 0 {
		return 0
	}
	return 100 * float64(r.EndSurplus) / float64(r.Births)
}

// blockLifeState tracks one analysis window.
type blockLifeState struct {
	res BlockLifeResult
	// births maps fh → block → birth time (Phase 1 births only).
	births map[core.FH]map[int64]float64
	// sizes tracks the last known size (in bytes) per fh, from any
	// attribute-bearing reply.
	sizes map[core.FH]uint64
	// names maps (dirFH, name) → fileFH so REMOVE calls can be tied to
	// the removed file (§4.1.1 hierarchy information).
	names map[nameBinding]core.FH

	phase1End float64
	margin    float64
}

// nameBinding is one (directory, name) edge, the key the reducers
// resolve removes and renames through.
type nameBinding struct {
	dir  core.FH
	name string
}

// BlockLifeStream is the incremental form of BlockLife: feed it
// time-ordered operations with Consume and read the analysis with
// Result. The sharded pipeline runs one stream per shard (the per-file
// state partitions cleanly by handle) and merges the partial results
// with MergeBlockLife.
type BlockLifeStream struct {
	st    blockLifeState
	start float64
	end   float64
	done  bool
}

// NewBlockLifeStream prepares a create-based analysis: Phase 1 covers
// [start, start+phase), the end margin covers [start+phase,
// start+phase+margin). The paper uses 24-hour phases with 24-hour
// margins, 9am to 9am.
func NewBlockLifeStream(start, phase, margin float64) *BlockLifeStream {
	s := &BlockLifeStream{
		st: blockLifeState{
			births:    make(map[core.FH]map[int64]float64),
			sizes:     make(map[core.FH]uint64),
			names:     make(map[nameBinding]core.FH),
			phase1End: start + phase,
			margin:    margin,
		},
		start: start,
		end:   start + phase + margin,
	}
	s.st.res.Lifetimes = &stats.CDF{}
	return s
}

// Consume folds one operation into the analysis. Ops must arrive in
// time order; ops past the analysis window are ignored.
func (s *BlockLifeStream) Consume(op *core.Op) {
	if s.done || op.T >= s.end {
		return
	}
	// Name tracking must run over the whole stream (including
	// pre-window ops) so deletions resolve, and size tracking too.
	s.st.trackNames(op)
	if op.T < s.start {
		s.st.trackSizes(op)
		return
	}
	s.st.handle(op)
	s.st.trackSizes(op)
}

// Result finalizes the stream (counting the end surplus) and returns
// the analysis. After Result, further Consume calls are no-ops.
func (s *BlockLifeStream) Result() *BlockLifeResult {
	if !s.done {
		// End surplus: Phase-1 births still alive.
		for _, blocks := range s.st.births {
			s.st.res.EndSurplus += int64(len(blocks))
		}
		s.done = true
	}
	return &s.st.res
}

// MergeBlockLife combines per-shard results into one, as if a single
// stream had seen every shard's operations. All counters are integers
// and the lifetime CDF merges by sample union, so the merged result is
// independent of how files were partitioned.
func MergeBlockLife(parts ...*BlockLifeResult) *BlockLifeResult {
	out := &BlockLifeResult{Lifetimes: &stats.CDF{}}
	for _, p := range parts {
		out.Births += p.Births
		out.Deaths += p.Deaths
		out.EndSurplus += p.EndSurplus
		for i := range p.BirthCause {
			out.BirthCause[i] += p.BirthCause[i]
		}
		for i := range p.DeathCause {
			out.DeathCause[i] += p.DeathCause[i]
		}
		out.Lifetimes.Merge(p.Lifetimes)
	}
	return out
}

// BlockLife runs the create-based analysis over a materialized op
// slice. See NewBlockLifeStream for the windowing semantics.
func BlockLife(ops []*core.Op, start, phase, margin float64) *BlockLifeResult {
	s := NewBlockLifeStream(start, phase, margin)
	for _, op := range ops {
		if op.T >= s.end {
			break
		}
		s.Consume(op)
	}
	return s.Result()
}

// trackNames maintains the (dir, name) → file mapping from lookups and
// creates, the same on-the-fly reconstruction the paper uses.
func (st *blockLifeState) trackNames(op *core.Op) {
	switch op.Proc {
	case core.ProcLookup, core.ProcCreate, core.ProcMkdir:
		if op.Name != "" && op.NewFH != 0 {
			st.names[nameBinding{op.FH, op.Name}] = op.NewFH
		}
	case core.ProcRename:
		key := nameBinding{op.FH, op.Name}
		if fh, ok := st.names[key]; ok {
			delete(st.names, key)
			st.names[nameBinding{op.FH2, op.Name2}] = fh
		}
	}
}

// trackSizes keeps the last observed size per file.
func (st *blockLifeState) trackSizes(op *core.Op) {
	if !op.Replied {
		return
	}
	switch op.Proc {
	case core.ProcRemove:
		// handled in handle()
	case core.ProcLookup, core.ProcCreate, core.ProcMkdir:
		// The attributes belong to the looked-up/created object.
		if op.NewFH != 0 {
			st.sizes[op.NewFH] = op.Size
		}
	default:
		if op.Size != 0 || op.Proc == core.ProcSetattr || op.Proc == core.ProcWrite {
			st.sizes[op.FH] = op.Size
		}
	}
}

func blocksOf(bytes uint64) int64 { return int64((bytes + BlockSize - 1) / BlockSize) }

func (st *blockLifeState) handle(op *core.Op) {
	if !op.OK() {
		return
	}
	switch op.Proc {
	case core.ProcWrite:
		st.handleWrite(op)
	case core.ProcSetattr:
		if op.HasSet {
			st.handleTruncate(op)
		}
	case core.ProcCreate:
		// CREATE with size 0 truncates an existing file.
		if op.HasSet && op.SetSize == 0 && op.NewFH != 0 {
			if old, ok := st.sizes[op.NewFH]; ok && old > 0 {
				st.killRange(op.NewFH, 0, blocksOf(old), op.T, DeathTruncate)
			}
		}
	case core.ProcRemove:
		fh, ok := st.names[nameBinding{op.FH, op.Name}]
		if !ok {
			return
		}
		size := st.sizes[fh]
		st.killRange(fh, 0, blocksOf(size), op.T, DeathDelete)
		delete(st.sizes, fh)
		delete(st.names, nameBinding{op.FH, op.Name})
	}
}

// handleWrite processes block births and overwrite deaths for one
// write. The pre-operation size comes from wcc data when present, else
// from tracked state.
func (st *blockLifeState) handleWrite(op *core.Op) {
	preSize, havePre := op.PreSize, op.HasPre
	if !havePre {
		preSize = st.sizes[op.FH]
	}
	preBlocks := blocksOf(preSize)
	start := int64(op.Offset / BlockSize)
	end := int64((op.Offset + op.Bytes() + BlockSize - 1) / BlockSize)

	// Extension births: the hole between the old EOF and the write
	// start (lseek-past-EOF semantics, §5.2.2).
	if start > preBlocks {
		for b := preBlocks; b < start; b++ {
			st.birth(op.FH, b, op.T, BirthExtension)
		}
	}
	for b := start; b < end; b++ {
		if b < preBlocks {
			// Overwrite: the old block dies, a new one is born.
			st.death(op.FH, b, op.T, DeathOverwrite)
		}
		st.birth(op.FH, b, op.T, BirthWrite)
	}
}

func (st *blockLifeState) handleTruncate(op *core.Op) {
	var oldSize uint64
	if op.HasPre {
		oldSize = op.PreSize
	} else {
		oldSize = st.sizes[op.FH]
	}
	newBlocks := blocksOf(op.SetSize)
	oldBlocks := blocksOf(oldSize)
	if newBlocks < oldBlocks {
		st.killRange(op.FH, newBlocks, oldBlocks, op.T, DeathTruncate)
	}
}

func (st *blockLifeState) killRange(fh core.FH, from, to int64, t float64, cause int) {
	for b := from; b < to; b++ {
		st.death(fh, b, t, cause)
	}
}

func (st *blockLifeState) birth(fh core.FH, b int64, t float64, cause int) {
	if t >= st.phase1End {
		return // Phase 2 records deaths only
	}
	m := st.births[fh]
	if m == nil {
		m = make(map[int64]float64)
		st.births[fh] = m
	}
	if _, alive := m[b]; alive {
		// Rebirth without an observed death (shouldn't happen; guard).
		return
	}
	m[b] = t
	st.res.Births++
	st.res.BirthCause[cause]++
}

func (st *blockLifeState) death(fh core.FH, b int64, t float64, cause int) {
	m := st.births[fh]
	if m == nil {
		return
	}
	born, ok := m[b]
	if !ok {
		return // born before Phase 1; not tracked
	}
	delete(m, b)
	life := t - born
	if life > st.margin {
		// Discard to remove sampling bias (§5.2).
		return
	}
	st.res.Deaths++
	st.res.DeathCause[cause]++
	st.res.Lifetimes.Add(life)
}
