package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/stats"
)

// This file pins the codec contract of state.go from inside the
// package: for every reducer, DecodeState over an encoded partial
// rebuilds exactly the state the feeds produced, a resumed run tracks
// the original op for op, and the validation paths reject mismatched
// configurations with the decoder's sticky error rather than folding
// garbage. The cross-process and merge grids live in
// internal/pipeline; these tests own the per-reducer symmetry.

// stateHandle adapts one reducer to the shared round-trip harness,
// reusing the clone_test fingerprints so "equal" means the same thing
// in both files.
type stateHandle struct {
	feed func(*core.Op)
	enc  func(*state.Encoder)
	dec  func(*state.Decoder)
	fp   func() string
}

// stateOps extends the clone stream with a read hours later, so the
// open hourly series actually grows past its first bucket.
func stateOps() []*core.Op {
	ops := cloneOps()
	ops = append(ops, &core.Op{T: 7205, Replied: true, Proc: core.MustProc("read"),
		Client: 1, FH: core.InternFH("f1"), Offset: 0, Count: 4096, RCount: 4096})
	return ops
}

func encodeSection(t *testing.T, enc func(*state.Encoder)) []byte {
	t.Helper()
	e := state.NewEncoder()
	e.Section("x")
	enc(e)
	var buf bytes.Buffer
	if err := e.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func decodeSection(t *testing.T, blob []byte, dec func(*state.Decoder)) error {
	t.Helper()
	f, err := state.ReadFile(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	d, ok := f.Section("x")
	if !ok {
		t.Fatalf("section missing from encoded file")
	}
	dec(d)
	if err := d.Err(); err != nil {
		return err
	}
	return d.Finish()
}

func stateCases() []struct {
	name string
	mk   func() stateHandle
} {
	return []struct {
		name string
		mk   func() stateHandle
	}{
		{"summary", func() stateHandle {
			s := NewSummary(1)
			return stateHandle{s.Add, s.EncodeState, s.DecodeState, summaryCloneable(s).fp}
		}},
		{"hourly-open", func() stateHandle {
			h := NewHourlyOpen()
			return stateHandle{h.Add, h.EncodeState, h.DecodeState, hourlyCloneable(h).fp}
		}},
		{"hourly-fixed", func() stateHandle {
			h := NewHourly(8000)
			return stateHandle{h.Add, h.EncodeState, h.DecodeState, hourlyCloneable(h).fp}
		}},
		{"accessmap", func() stateHandle {
			m := make(AccessMap)
			return stateHandle{m.Add, m.EncodeState, m.DecodeState, accessMapCloneable(m).fp}
		}},
		{"blocklife", func() stateHandle {
			s := NewBlockLifeStream(0, 50, 50)
			return stateHandle{s.Consume, s.EncodeState, s.DecodeState, blockLifeCloneable(s).fp}
		}},
		{"peakhour", func() stateHandle {
			p := NewPeakHourInstances(0, 100)
			return stateHandle{p.Add, p.EncodeState, p.DecodeState, peakHourCloneable(p).fp}
		}},
		{"mailbox", func() stateHandle {
			m := NewMailboxShare()
			return stateHandle{m.Add, m.EncodeState, m.DecodeState, mailboxCloneable(m).fp}
		}},
		{"hierarchy", func() stateHandle {
			h := NewHierarchy()
			return stateHandle{h.Observe, h.EncodeState, h.DecodeState, hierarchyCloneable(h).fp}
		}},
		{"names", func() stateHandle {
			n := NewNamesStream()
			return stateHandle{n.Consume, n.EncodeState, n.DecodeState, namesCloneable(n).fp}
		}},
	}
}

func TestStateRoundTrip(t *testing.T) {
	ops := stateOps()
	cut := len(ops) * 2 / 3
	for _, tc := range stateCases() {
		t.Run(tc.name, func(t *testing.T) {
			// Encode a mid-stream checkpoint; decoding into a fresh
			// instance must reproduce it exactly.
			orig := tc.mk()
			for _, op := range ops[:cut] {
				orig.feed(op)
			}
			blob := encodeSection(t, orig.enc)
			resumed := tc.mk()
			if err := decodeSection(t, blob, resumed.dec); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if resumed.fp() != orig.fp() {
				t.Fatalf("decoded state differs from encoded:\n--- decoded ---\n%s\n--- original ---\n%s",
					resumed.fp(), orig.fp())
			}

			// Both continue over the suffix: the resumed run must track
			// the original, and both must equal a never-checkpointed run.
			for _, op := range ops[cut:] {
				orig.feed(op)
				resumed.feed(op)
			}
			if resumed.fp() != orig.fp() {
				t.Fatalf("resumed run diverged after checkpoint:\n--- resumed ---\n%s\n--- original ---\n%s",
					resumed.fp(), orig.fp())
			}
			fresh := tc.mk()
			for _, op := range ops {
				fresh.feed(op)
			}
			if resumed.fp() != fresh.fp() {
				t.Fatalf("resumed run differs from uninterrupted run:\n--- resumed ---\n%s\n--- fresh ---\n%s",
					resumed.fp(), fresh.fp())
			}
		})
	}
}

// TestStateDecodeFoldsLikeMerge pins the fold semantics: decoding two
// halves' states into one fresh instance equals one full run, for the
// reducers whose partials compose by decode order.
func TestStateDecodeFoldsLikeMerge(t *testing.T) {
	ops := stateOps()
	cut := len(ops) / 2
	for _, tc := range stateCases() {
		if tc.name == "blocklife" || tc.name == "hierarchy" || tc.name == "names" {
			// Order-dependent reducers compose only as resume chains
			// (TestStateRoundTrip); independent halves are not defined.
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			first := tc.mk()
			for _, op := range ops[:cut] {
				first.feed(op)
			}
			second := tc.mk()
			for _, op := range ops[cut:] {
				second.feed(op)
			}
			folded := tc.mk()
			if err := decodeSection(t, encodeSection(t, first.enc), folded.dec); err != nil {
				t.Fatalf("decode first half: %v", err)
			}
			if err := decodeSection(t, encodeSection(t, second.enc), folded.dec); err != nil {
				t.Fatalf("decode second half: %v", err)
			}
			full := tc.mk()
			for _, op := range ops {
				full.feed(op)
			}
			if folded.fp() != full.fp() {
				t.Fatalf("two decoded halves differ from one full run:\n--- folded ---\n%s\n--- full ---\n%s",
					folded.fp(), full.fp())
			}
		})
	}
}

// TestStateDistributeRebuildsWhole pins the decode-side sharding: a
// decoded partial spread across shard-local accumulators and merged
// back equals the original.
func TestStateDistributeRebuildsWhole(t *testing.T) {
	ops := stateOps()
	shardOf := func(fh core.FH) int { return int(fh) % 2 }

	t.Run("accessmap", func(t *testing.T) {
		m := make(AccessMap)
		for _, op := range ops {
			m.Add(op)
		}
		parts := []AccessMap{make(AccessMap), make(AccessMap)}
		m.DistributeState(parts, shardOf)
		rebuilt := make(AccessMap)
		for _, p := range parts {
			for fh, accs := range p {
				rebuilt[fh] = append(rebuilt[fh], accs...)
			}
		}
		if accessMapCloneable(rebuilt).fp() != accessMapCloneable(m).fp() {
			t.Fatalf("distributed access map does not rebuild the whole")
		}
	})
	t.Run("blocklife", func(t *testing.T) {
		s := NewBlockLifeStream(0, 50, 50)
		for _, op := range ops {
			s.Consume(op)
		}
		parts := []*BlockLifeStream{NewBlockLifeStream(0, 50, 50), NewBlockLifeStream(0, 50, 50)}
		s.DistributeState(parts, shardOf)
		rebuilt := NewBlockLifeStream(0, 50, 50)
		for _, p := range parts {
			p.MergeStateInto(rebuilt, nil)
		}
		if blockLifeCloneable(rebuilt).fp() != blockLifeCloneable(s).fp() {
			t.Fatalf("distributed block-life state does not rebuild the whole")
		}
	})
	t.Run("peakhour", func(t *testing.T) {
		p := NewPeakHourInstances(0, 100)
		for _, op := range ops {
			p.Add(op)
		}
		parts := []*PeakHourInstances{NewPeakHourInstances(0, 100), NewPeakHourInstances(0, 100)}
		p.DistributeState(parts, shardOf)
		rebuilt := NewPeakHourInstances(0, 100)
		for _, part := range parts {
			part.MergeStateInto(rebuilt)
		}
		if peakHourCloneable(rebuilt).fp() != peakHourCloneable(p).fp() {
			t.Fatalf("distributed peak-hour state does not rebuild the whole")
		}
	})
	t.Run("mailbox", func(t *testing.T) {
		m := NewMailboxShare()
		for _, op := range ops {
			m.Add(op)
		}
		parts := []*MailboxShare{NewMailboxShare(), NewMailboxShare()}
		m.DistributeState(parts, shardOf)
		rebuilt := NewMailboxShare()
		for _, part := range parts {
			part.MergeStateInto(rebuilt)
		}
		if mailboxCloneable(rebuilt).fp() != mailboxCloneable(m).fp() {
			t.Fatalf("distributed mailbox state does not rebuild the whole")
		}
	})
}

// decodeWantErr runs a decode that must fail with a message containing
// want, wrapped in the decoder's sticky ErrCorrupt.
func decodeWantErr(t *testing.T, blob []byte, dec func(*state.Decoder), want string) {
	t.Helper()
	err := decodeSection(t, blob, dec)
	if err == nil {
		t.Fatalf("decode succeeded, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("decode error %q does not contain %q", err, want)
	}
}

func TestStateDecodeValidation(t *testing.T) {
	ops := stateOps()

	t.Run("bucket-width-mismatch", func(t *testing.T) {
		b := stats.NewOpenTimeBuckets(1800)
		b.Add(10, 1)
		blob := encodeSection(t, func(e *state.Encoder) { encodeBuckets(e, b) })
		tgt := stats.NewOpenTimeBuckets(3600)
		decodeWantErr(t, blob, func(d *state.Decoder) { decodeBuckets(d, tgt) }, "does not match accumulator width")
	})
	t.Run("bucket-index-overflow", func(t *testing.T) {
		blob := encodeSection(t, func(e *state.Encoder) {
			e.F64(3600)
			e.Uvarint(1)
			e.Uvarint(maxBucketIndex + 1)
			e.F64(1)
		})
		tgt := stats.NewOpenTimeBuckets(3600)
		decodeWantErr(t, blob, func(d *state.Decoder) { decodeBuckets(d, tgt) }, "exceeds limit")
	})
	t.Run("blocklife-window-mismatch", func(t *testing.T) {
		s := NewBlockLifeStream(0, 50, 50)
		blob := encodeSection(t, s.EncodeState)
		tgt := NewBlockLifeStream(0, 60, 50)
		decodeWantErr(t, blob, tgt.DecodeState, "does not match receiver")
	})
	t.Run("blocklife-finalized", func(t *testing.T) {
		s := NewBlockLifeStream(0, 50, 50)
		for _, op := range ops {
			s.Consume(op)
		}
		s.Result()
		blob := encodeSection(t, s.EncodeState)
		tgt := NewBlockLifeStream(0, 50, 50)
		decodeWantErr(t, blob, tgt.DecodeState, "finalized")
	})
	t.Run("peakhour-window-mismatch", func(t *testing.T) {
		p := NewPeakHourInstances(0, 100)
		blob := encodeSection(t, p.EncodeState)
		tgt := NewPeakHourInstances(50, 150)
		decodeWantErr(t, blob, tgt.DecodeState, "does not match receiver")
	})
	t.Run("peakhour-category-out-of-range", func(t *testing.T) {
		blob := encodeSection(t, func(e *state.Encoder) {
			e.F64(0)
			e.F64(100)
			e.Uvarint(1)
			e.FH(core.InternFH("f0"))
			e.Uvarint(uint64(numCategories) + 7)
		})
		tgt := NewPeakHourInstances(0, 100)
		decodeWantErr(t, blob, tgt.DecodeState, "out of range")
	})
	t.Run("names-category-count-mismatch", func(t *testing.T) {
		blob := encodeSection(t, func(e *state.Encoder) {
			e.Uvarint(uint64(numCategories) + 1)
		})
		tgt := NewNamesStream()
		decodeWantErr(t, blob, tgt.DecodeState, "does not match this build's")
	})
	t.Run("names-instance-category-out-of-range", func(t *testing.T) {
		blob := encodeSection(t, func(e *state.Encoder) {
			e.Uvarint(uint64(numCategories))
			e.Uvarint(1)
			e.FH(core.InternFH("f0"))
			e.String("bad")
			e.Uvarint(uint64(numCategories) + 3)
			e.F64(1)
			e.F64(0)
			e.Bool(false)
			e.Uvarint(0)
			e.Varint(0)
			e.Varint(0)
			e.Bool(true)
		})
		tgt := NewNamesStream()
		decodeWantErr(t, blob, tgt.DecodeState, "out of range")
	})
}
