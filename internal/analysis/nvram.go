package analysis

import (
	"repro/internal/core"
)

// The paper's conclusions (§7) propose two server-side optimizations
// that follow directly from the measurements. This file implements the
// analyses that quantify them.
//
//   - "Mechanisms for delaying writes, such as NVRAM, would improve
//     performance for both the CAMPUS and EECS workloads, because many
//     blocks do not live long enough to be written."
//   - "Servers could schedule periods of reorganization since the daily
//     and weekly pattern of the workload is predictable."

// AbsorptionPoint reports, for one delay budget, the fraction of block
// writes the server never needs to issue to disk because the block dies
// (is overwritten, truncated, or deleted) within the delay.
type AbsorptionPoint struct {
	// DelaySec is the write-behind window (how long a dirty block may
	// sit in NVRAM before it must reach disk).
	DelaySec float64
	// AbsorbedPct is the percentage of block writes avoided.
	AbsorbedPct float64
}

// WriteAbsorption replays the trace against an idealized NVRAM
// write-behind buffer of unbounded size: every block write is buffered,
// and a disk write is saved whenever the block dies again within the
// delay. It reuses the block-lifetime machinery: a block write is
// absorbed iff the block's lifetime is shorter than the delay.
func WriteAbsorption(ops []*core.Op, start, phase float64, delays []float64) []AbsorptionPoint {
	// Run one block-life pass with a margin covering the largest delay
	// so lifetimes up to max(delays) are observed.
	maxDelay := 0.0
	for _, d := range delays {
		if d > maxDelay {
			maxDelay = d
		}
	}
	res := BlockLife(ops, start, phase, maxDelay)
	out := make([]AbsorptionPoint, 0, len(delays))
	for _, d := range delays {
		if res.Births == 0 {
			out = append(out, AbsorptionPoint{DelaySec: d})
			continue
		}
		// Fraction of born blocks whose observed lifetime < d.
		frac := res.Lifetimes.At(d) * float64(res.Lifetimes.N()) / float64(res.Births)
		out = append(out, AbsorptionPoint{DelaySec: d, AbsorbedPct: 100 * frac})
	}
	return out
}

// QuietPeriod is a contiguous stretch of hours whose load stays under a
// threshold — a candidate window for the reorganization the paper
// suggests.
type QuietPeriod struct {
	// StartHour and EndHour index hours from the trace epoch
	// (end exclusive).
	StartHour, EndHour int
	// MeanOps is the average hourly operation count inside the period.
	MeanOps float64
}

// Hours reports the period length.
func (q QuietPeriod) Hours() int { return q.EndHour - q.StartHour }

// QuietPeriods finds all stretches of at least minHours consecutive
// hours whose op count stays below frac × the peak-hour mean. The
// CAMPUS rhythm makes these long and nightly; an unpredictable workload
// yields few or none.
func QuietPeriods(h *HourlySeries, frac float64, minHours int) []QuietPeriod {
	// Peak mean as the reference level.
	var peak VarianceRow
	for _, row := range h.VarianceTable(true) {
		if row.Name == "total_ops" {
			peak = row
		}
	}
	threshold := peak.Mean * frac
	var out []QuietPeriod
	n := h.Ops.NumBuckets()
	i := 0
	for i < n {
		if h.Ops.Bucket(i) >= threshold {
			i++
			continue
		}
		j := i
		var sum float64
		for j < n && h.Ops.Bucket(j) < threshold {
			sum += h.Ops.Bucket(j)
			j++
		}
		if j-i >= minHours {
			out = append(out, QuietPeriod{StartHour: i, EndHour: j, MeanOps: sum / float64(j-i)})
		}
		i = j
	}
	return out
}

// QuietHoursTotal sums the hours across periods.
func QuietHoursTotal(ps []QuietPeriod) int {
	total := 0
	for _, p := range ps {
		total += p.Hours()
	}
	return total
}
