package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// mkOp builds a read or write op on a file.
func mkOp(t float64, fh string, write bool, off uint64, count uint32, size uint64, eof bool) *core.Op {
	proc := core.ProcRead
	if write {
		proc = core.ProcWrite
	}
	return &core.Op{
		T: t, Replied: true, Proc: proc, FH: core.InternFH(fh),
		Offset: off, Count: count, RCount: count, Size: size, EOF: eof,
	}
}

// seqReadOps builds a fully sequential read of a file.
func seqReadOps(fh string, size uint64, t0 float64) []*core.Op {
	var ops []*core.Op
	t := t0
	for off := uint64(0); off < size; off += 8192 {
		n := uint32(8192)
		if rem := size - off; rem < 8192 {
			n = uint32(rem)
		}
		ops = append(ops, mkOp(t, fh, false, off, n, size, off+uint64(n) >= size))
		t += 0.001
	}
	return ops
}

func TestDetectRunsEntireRead(t *testing.T) {
	ops := seqReadOps("f1", 64*1024, 1.0)
	runs := DetectRuns(ops, DefaultRunConfig(10))
	if len(runs) != 1 {
		t.Fatalf("%d runs", len(runs))
	}
	r := runs[0]
	if r.Kind != RunRead || r.Pattern != PatternEntire {
		t.Fatalf("run: kind=%v pattern=%v", r.Kind, r.Pattern)
	}
	if r.Bytes != 64*1024 {
		t.Fatalf("bytes %d", r.Bytes)
	}
	if r.Metric != 1 || r.MetricK1 != 1 {
		t.Fatalf("metric %v/%v", r.Metric, r.MetricK1)
	}
}

func TestDetectRunsSequentialPartial(t *testing.T) {
	// Sequential but not from 0 and not to EOF.
	var ops []*core.Op
	for i := 0; i < 5; i++ {
		ops = append(ops, mkOp(1.0+float64(i)*0.001, "f", false,
			8192*uint64(i+2), 8192, 1<<20, false))
	}
	runs := DetectRuns(ops, DefaultRunConfig(10))
	if len(runs) != 1 || runs[0].Pattern != PatternSequential {
		t.Fatalf("runs: %+v", runs)
	}
}

func TestDetectRunsRandom(t *testing.T) {
	offsets := []uint64{0, 40 * 8192, 3 * 8192, 90 * 8192, 11 * 8192}
	var ops []*core.Op
	for i, off := range offsets {
		ops = append(ops, mkOp(1.0+float64(i)*0.001, "f", false, off, 8192, 1<<20, false))
	}
	runs := DetectRuns(ops, DefaultRunConfig(10))
	if len(runs) != 1 || runs[0].Pattern != PatternRandom {
		t.Fatalf("runs: %+v", runs)
	}
	if runs[0].Metric > 0.6 {
		t.Fatalf("metric %v for random run", runs[0].Metric)
	}
}

func TestSmallForwardJumpStaysSequential(t *testing.T) {
	// The paper's example: 0k(8k), 8k(8k), 16k(7k), 24k(8k) is
	// sequential despite the missing 1k (counts round to blocks).
	ops := []*core.Op{
		mkOp(1.000, "f", false, 0, 8192, 1<<20, false),
		mkOp(1.001, "f", false, 8192, 8192, 1<<20, false),
		mkOp(1.002, "f", false, 16384, 7168, 1<<20, false),
		mkOp(1.003, "f", false, 24576, 8192, 1<<20, false),
	}
	runs := DetectRuns(ops, DefaultRunConfig(10))
	if len(runs) != 1 || runs[0].Pattern != PatternSequential {
		t.Fatalf("runs: %+v", runs)
	}
	// A 5-block forward jump is fine with k=10 but not with k=1.
	ops = append(ops, mkOp(1.004, "f", false, 8192*9, 8192, 1<<20, false))
	runs = DetectRuns(ops, DefaultRunConfig(10))
	if runs[0].Pattern != PatternSequential {
		t.Fatalf("k=10 jump broke the run: %+v", runs[0])
	}
	cfg := DefaultRunConfig(10)
	cfg.JumpBlocks = 1
	runs = DetectRuns(ops, cfg)
	if runs[0].Pattern != PatternRandom {
		t.Fatalf("k=1 did not break the run: %+v", runs[0])
	}
}

func TestBackwardSeekBreaksSequential(t *testing.T) {
	ops := []*core.Op{
		mkOp(1.000, "f", false, 8192, 8192, 1<<20, false),
		mkOp(1.001, "f", false, 16384, 8192, 1<<20, false),
		mkOp(1.002, "f", false, 0, 8192, 1<<20, false), // back
	}
	runs := DetectRuns(ops, RunConfig{IdleGap: 30, JumpBlocks: 10})
	if len(runs) != 1 || runs[0].Pattern != PatternRandom {
		t.Fatalf("runs: %+v", runs)
	}
	// But the small back-jump still counts toward the k-metric.
	if runs[0].Metric < 0.99 {
		t.Fatalf("metric %v; small back jump should be k-consecutive", runs[0].Metric)
	}
}

func TestRunBreaksOnEOFAndIdle(t *testing.T) {
	var ops []*core.Op
	ops = append(ops, seqReadOps("f", 16384, 1.0)...) // ends with EOF
	ops = append(ops, seqReadOps("f", 16384, 2.0)...) // new run
	// Idle gap: third run starts 100s later without EOF before it.
	ops = append(ops, mkOp(100.0, "f", false, 0, 8192, 16384, false))
	ops = append(ops, mkOp(200.0, "f", false, 8192, 8192, 16384, false))
	runs := DetectRuns(ops, DefaultRunConfig(0))
	if len(runs) != 4 {
		t.Fatalf("%d runs, want 4 (two EOF-terminated, two idle-split)", len(runs))
	}
}

func TestSingletonClassification(t *testing.T) {
	// Partial singleton → sequential; whole-file singleton → entire.
	part := []*core.Op{mkOp(1, "a", true, 8192, 8192, 1<<20, false)}
	whole := []*core.Op{mkOp(1, "b", false, 0, 4096, 4096, true)}
	runs := DetectRuns(append(part, whole...), DefaultRunConfig(10))
	if len(runs) != 2 {
		t.Fatalf("%d runs", len(runs))
	}
	for _, r := range runs {
		switch r.FH.String() {
		case "a":
			if r.Pattern != PatternSequential || r.Kind != RunWrite {
				t.Fatalf("partial singleton: %+v", r)
			}
		case "b":
			if r.Pattern != PatternEntire || r.Kind != RunRead {
				t.Fatalf("whole singleton: %+v", r)
			}
		}
	}
}

func TestReadWriteRun(t *testing.T) {
	ops := []*core.Op{
		mkOp(1.0, "f", false, 0, 8192, 1<<20, false),
		mkOp(1.1, "f", true, 8192, 8192, 1<<20, false),
	}
	runs := DetectRuns(ops, DefaultRunConfig(10))
	if len(runs) != 1 || runs[0].Kind != RunReadWrite {
		t.Fatalf("runs: %+v", runs)
	}
}

func TestSortWindowRepairsReordering(t *testing.T) {
	// A sequential stream with adjacent swaps within 2ms.
	ops := []*core.Op{
		mkOp(1.000, "f", false, 0, 8192, 1<<20, false),
		mkOp(1.001, "f", false, 16384, 8192, 1<<20, false), // swapped pair
		mkOp(1.0015, "f", false, 8192, 8192, 1<<20, false),
		mkOp(1.003, "f", false, 24576, 8192, 1<<20, false),
	}
	// Without sorting: random.
	raw := DetectRuns(ops, RunConfig{IdleGap: 30, JumpBlocks: 1})
	if raw[0].Pattern != PatternRandom {
		t.Fatalf("raw: %+v", raw[0])
	}
	// With a 5ms window: sequential again.
	sorted := DetectRuns(ops, RunConfig{ReorderWindow: 0.005, IdleGap: 30, JumpBlocks: 1})
	if sorted[0].Pattern != PatternEntire && sorted[0].Pattern != PatternSequential {
		t.Fatalf("sorted: %+v", sorted[0])
	}
}

func TestSortWindowDoesNotMaskTrueRandomness(t *testing.T) {
	// Random accesses spaced 1s apart: a 10ms window must not "fix"
	// them.
	rng := rand.New(rand.NewSource(2))
	var ops []*core.Op
	for i := 0; i < 50; i++ {
		ops = append(ops, mkOp(float64(i), "f", false,
			uint64(rng.Intn(1000))*8192, 8192, 100<<20, false))
	}
	runs := DetectRuns(ops, RunConfig{ReorderWindow: 0.010, IdleGap: 30, JumpBlocks: 10})
	for _, r := range runs {
		if len(r.Accesses) > 3 && r.Pattern != PatternRandom {
			t.Fatalf("random stream classified %v", r.Pattern)
		}
	}
}

func TestReorderSweepShape(t *testing.T) {
	// Build a reordered sequential stream: ~10% adjacent swaps with
	// ~1ms skew, requests 2ms apart.
	rng := rand.New(rand.NewSource(3))
	var ops []*core.Op
	tt := 1.0
	for off := uint64(0); off < 4<<20; off += 8192 {
		ops = append(ops, mkOp(tt, "f", false, off, 8192, 4<<20, false))
		tt += 0.002
	}
	for i := 0; i < len(ops)-1; i++ {
		if rng.Float64() < 0.10 {
			ops[i].T, ops[i+1].T = ops[i+1].T, ops[i].T
			ops[i], ops[i+1] = ops[i+1], ops[i]
		}
	}
	pts := ReorderSweep(ops, []float64{0, 1, 5, 10, 50})
	if pts[0].SwappedPct != 0 {
		t.Fatalf("window 0 swapped %v%%", pts[0].SwappedPct)
	}
	// Swaps rise then plateau (the knee).
	if !(pts[2].SwappedPct > pts[1].SwappedPct || pts[1].SwappedPct > 0) {
		t.Fatalf("sweep not rising: %+v", pts)
	}
	last := pts[len(pts)-1].SwappedPct
	prev := pts[len(pts)-2].SwappedPct
	if last-prev > prev/2+1 {
		t.Fatalf("no knee: %+v", pts)
	}
	// At 5ms the sort should capture roughly the injected 10%.
	if pts[2].SwappedPct < 4 || pts[2].SwappedPct > 16 {
		t.Fatalf("5ms window swapped %.1f%%, want ≈10%%", pts[2].SwappedPct)
	}
}

func TestTabulate(t *testing.T) {
	var ops []*core.Op
	ops = append(ops, seqReadOps("r1", 32768, 1)...)
	ops = append(ops, seqReadOps("r2", 32768, 2)...)
	ops = append(ops, mkOp(3, "w1", true, 0, 8192, 8192, false))
	tab := Tabulate(DetectRuns(ops, DefaultRunConfig(10)))
	if tab.TotalRuns != 3 {
		t.Fatalf("runs %d", tab.TotalRuns)
	}
	if tab.ReadPct < 60 || tab.WritePct < 30 {
		t.Fatalf("table: %+v", tab)
	}
	if tab.Read[PatternEntire] != 100 {
		t.Fatalf("read entire%% = %v", tab.Read[PatternEntire])
	}
}

func TestSizeProfile(t *testing.T) {
	var ops []*core.Op
	// 10 KB of bytes from a small file, 4 MB from a big one.
	ops = append(ops, mkOp(1, "small", false, 0, 10240, 10240, true))
	ops = append(ops, seqReadOps("big", 4<<20, 2)...)
	pts := SizeProfile(DetectRuns(ops, DefaultRunConfig(10)))
	if len(pts) == 0 {
		t.Fatal("no profile")
	}
	// At 16 KB the small file's bytes are included: a small share.
	var at16k, at8m float64
	for _, p := range pts {
		if p.SizeCeil == 16*1024 {
			at16k = p.TotalPct
		}
		if p.SizeCeil == 8<<20 {
			at8m = p.TotalPct
		}
	}
	if at16k > 5 || at8m < 99 {
		t.Fatalf("profile: 16k=%.2f%% 8M=%.2f%%", at16k, at8m)
	}
	last := pts[len(pts)-1]
	if last.TotalPct < 99.9 {
		t.Fatalf("cumulative does not reach 100: %v", last.TotalPct)
	}
}

func TestSequentialityProfile(t *testing.T) {
	var ops []*core.Op
	// A long, highly sequential read run (4 MB).
	ops = append(ops, seqReadOps("seqfile", 4<<20, 1)...)
	// A long write run with 40% 20-block jumps: k10 metric ≈ 0.6.
	tt := 1000.0
	off := uint64(0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 512; i++ {
		ops = append(ops, mkOp(tt, "wfile", true, off, 8192, 64<<20, false))
		tt += 0.001
		if rng.Float64() < 0.4 {
			off += 8192 * 20
		} else {
			off += 8192
		}
	}
	runs := DetectRuns(ops, RunConfig{IdleGap: 30, JumpBlocks: 10})
	pts := SequentialityProfile(runs)
	var readAt4M, writeAt4M float64 = -1, -1
	for _, p := range pts {
		if p.BytesCeil == 4<<20 {
			readAt4M = p.ReadK10
			writeAt4M = p.WriteK10
		}
	}
	if readAt4M < 0.99 {
		t.Fatalf("sequential read metric %v", readAt4M)
	}
	if writeAt4M < 0.45 || writeAt4M > 0.75 {
		t.Fatalf("jumpy write metric %v, want ≈0.6", writeAt4M)
	}
	// Cumulative run percentages reach 100.
	if pts[len(pts)-1].CumRunsPct < 99.9 {
		t.Fatalf("cum runs %v", pts[len(pts)-1].CumRunsPct)
	}
}
