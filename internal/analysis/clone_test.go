package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// This file pins the deep-copy contract of every Clone in clone.go: a
// clone and its original never share mutable state. The harness checks
// three properties per type: a clone taken mid-stream equals a fresh
// instance fed the same prefix; feeding the original past the clone
// point leaves the clone untouched; and taking a clone leaves the
// original's final result identical to a never-cloned run.

// cloneable adapts one accumulator type to the shared harness.
type cloneable struct {
	feed  func(*core.Op)
	clone func() cloneable
	fp    func() string
}

// cloneOps is a fixed stream covering the paths the accumulators
// branch on: creates, lookups, reads, writes with wcc sizes, a rename,
// removes, and categorized names (lock, mailbox, temp).
func cloneOps() []*core.Op {
	dir := core.InternFH("d0")
	mk := func(t float64, proc string, mut func(*core.Op)) *core.Op {
		o := &core.Op{T: t, Replied: true, Proc: core.MustProc(proc), Client: 1}
		mut(o)
		return o
	}
	var ops []*core.Op
	for i, name := range []string{"file.lock", "inbox", "a.tmp", "notes.c", "plain"} {
		fh := core.InternFH(fmt.Sprintf("f%d", i))
		t0 := float64(1 + i*9)
		ops = append(ops,
			mk(t0, "create", func(o *core.Op) { o.FH = dir; o.Name = name; o.NewFH = fh }),
			mk(t0+1, "lookup", func(o *core.Op) { o.FH = dir; o.Name = name; o.NewFH = fh }),
			mk(t0+2, "write", func(o *core.Op) {
				o.FH = fh
				o.Offset = 0
				o.Count = 16384
				o.RCount = 16384
				o.PreSize = 0
				o.HasPre = true
				o.Size = 16384
			}),
			mk(t0+3, "read", func(o *core.Op) { o.FH = fh; o.Offset = 0; o.Count = 8192; o.RCount = 8192 }),
		)
	}
	f0 := core.InternFH("f0")
	ops = append(ops,
		mk(50, "rename", func(o *core.Op) {
			o.FH = dir
			o.Name = "plain"
			o.FH2 = dir
			o.Name2 = "renamed"
		}),
		mk(55, "remove", func(o *core.Op) { o.FH = dir; o.Name = "file.lock" }),
		mk(60, "write", func(o *core.Op) {
			o.FH = f0
			o.Offset = 0
			o.Count = 8192
			o.RCount = 8192
			o.PreSize = 16384
			o.HasPre = true
			o.Size = 16384
		}),
		mk(70, "remove", func(o *core.Op) { o.FH = dir; o.Name = "a.tmp" }),
	)
	return ops
}

func summaryCloneable(s *Summary) cloneable {
	return cloneable{
		feed:  s.Add,
		clone: func() cloneable { return summaryCloneable(s.Clone()) },
		fp:    func() string { return fmt.Sprintf("%+v", *s) },
	}
}

func hourlyCloneable(h *HourlySeries) cloneable {
	// Open series grow independently, so pad the shorter ones with
	// zeros instead of indexing past their end.
	at := func(tb *stats.TimeBuckets, i int) float64 {
		if i >= tb.NumBuckets() {
			return 0
		}
		return tb.Bucket(i)
	}
	return cloneable{
		feed:  h.Add,
		clone: func() cloneable { return hourlyCloneable(h.Clone()) },
		fp: func() string {
			var b strings.Builder
			for i := 0; i < h.Ops.NumBuckets(); i++ {
				fmt.Fprintf(&b, "%v/%v/%v/%v/%v\n", at(h.Ops, i), at(h.ReadOps, i),
					at(h.WriteOps, i), at(h.BytesRead, i), at(h.BytesWrite, i))
			}
			return b.String()
		},
	}
}

func accessMapCloneable(m AccessMap) cloneable {
	return cloneable{
		feed:  m.Add,
		clone: func() cloneable { return accessMapCloneable(m.Clone()) },
		fp: func() string {
			fhs := make([]core.FH, 0, len(m))
			for fh := range m {
				fhs = append(fhs, fh)
			}
			sort.Slice(fhs, func(i, j int) bool { return fhs[i] < fhs[j] })
			var b strings.Builder
			for _, fh := range fhs {
				fmt.Fprintf(&b, "%v: %+v\n", fh, m[fh])
			}
			return b.String()
		},
	}
}

func blockLifeCloneable(s *BlockLifeStream) cloneable {
	return cloneable{
		feed:  s.Consume,
		clone: func() cloneable { return blockLifeCloneable(s.Clone()) },
		// Result finalizes, so fingerprint a throwaway clone — which is
		// exactly how cmd/nfsmond serves mid-stream views.
		fp: func() string {
			res := s.Clone().Result()
			return fmt.Sprintf("%d %v %d %v %d %d %v %v", res.Births, res.BirthCause,
				res.Deaths, res.DeathCause, res.EndSurplus,
				res.Lifetimes.N(), res.Lifetimes.Percentile(50), res.Lifetimes.Percentile(90))
		},
	}
}

func peakHourCloneable(p *PeakHourInstances) cloneable {
	return cloneable{
		feed:  p.Add,
		clone: func() cloneable { return peakHourCloneable(p.Clone()) },
		fp:    func() string { return fmt.Sprintf("%+v", p.Clone().Finish()) },
	}
}

func mailboxCloneable(m *MailboxShare) cloneable {
	return cloneable{
		feed:  m.Add,
		clone: func() cloneable { return mailboxCloneable(m.Clone()) },
		fp:    func() string { return fmt.Sprintf("%+v", m.Clone().Finish()) },
	}
}

func namesCloneable(n *NamesStream) cloneable {
	return cloneable{
		feed:  n.Consume,
		clone: func() cloneable { return namesCloneable(n.Clone()) },
		fp: func() string {
			rep := n.Report(100)
			var b strings.Builder
			for _, cs := range rep.PerCategory {
				fmt.Fprintf(&b, "%s %d %d %v %v %d %d\n", cs.Category, cs.Created, cs.Deleted,
					cs.Lifetimes.Percentile(50), cs.Sizes.Percentile(98), cs.ReadOps, cs.WriteOps)
			}
			fmt.Fprintf(&b, "%v %v %v", rep.LockFracOfDeleted, rep.SizeAccuracy, rep.LifeAccuracy)
			return b.String()
		},
	}
}

func hierarchyCloneable(h *Hierarchy) cloneable {
	return cloneable{
		feed:  h.Observe,
		clone: func() cloneable { return hierarchyCloneable(h.Clone()) },
		fp: func() string {
			var b strings.Builder
			fmt.Fprintf(&b, "cov=%v", h.Coverage())
			for i := 0; i < 5; i++ {
				fh := core.InternFH(fmt.Sprintf("f%d", i))
				fmt.Fprintf(&b, " %v:%v", fh, h.Known(fh))
			}
			return b.String()
		},
	}
}

func TestCloneIndependence(t *testing.T) {
	ops := cloneOps()
	cut := len(ops) * 2 / 3
	cases := []struct {
		name string
		mk   func() cloneable
	}{
		{"summary", func() cloneable { return summaryCloneable(NewSummary(1)) }},
		{"hourly-open", func() cloneable { return hourlyCloneable(NewHourlyOpen()) }},
		{"hourly-fixed", func() cloneable { return hourlyCloneable(NewHourly(100)) }},
		{"accessmap", func() cloneable { return accessMapCloneable(make(AccessMap)) }},
		{"blocklife", func() cloneable { return blockLifeCloneable(NewBlockLifeStream(0, 50, 50)) }},
		{"peakhour", func() cloneable { return peakHourCloneable(NewPeakHourInstances(0, 100)) }},
		{"mailbox", func() cloneable { return mailboxCloneable(NewMailboxShare()) }},
		{"names", func() cloneable { return namesCloneable(NewNamesStream()) }},
		{"hierarchy", func() cloneable { return hierarchyCloneable(NewHierarchy()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A clone taken mid-stream equals a fresh run over the prefix.
			full := tc.mk()
			for _, op := range ops[:cut] {
				full.feed(op)
			}
			mid := full.clone()
			midFP := mid.fp()
			prefix := tc.mk()
			for _, op := range ops[:cut] {
				prefix.feed(op)
			}
			if midFP != prefix.fp() {
				t.Fatalf("clone differs from fresh prefix run:\n--- clone ---\n%s\n--- fresh ---\n%s", midFP, prefix.fp())
			}

			// Feeding the original past the clone point cannot move the
			// clone.
			for _, op := range ops[cut:] {
				full.feed(op)
			}
			if got := mid.fp(); got != midFP {
				t.Fatalf("clone mutated by later feeds:\n--- before ---\n%s\n--- after ---\n%s", midFP, got)
			}

			// Feeding the clone cannot move the original, and taking
			// clones leaves the original identical to a never-cloned run.
			snap := full.fp()
			for _, op := range ops[cut:] {
				mid.feed(op)
			}
			if got := full.fp(); got != snap {
				t.Fatalf("original mutated by clone feeds:\n--- before ---\n%s\n--- after ---\n%s", snap, got)
			}
			fresh := tc.mk()
			for _, op := range ops {
				fresh.feed(op)
			}
			if full.fp() != fresh.fp() {
				t.Fatalf("cloned run differs from never-cloned run:\n--- cloned ---\n%s\n--- fresh ---\n%s", full.fp(), fresh.fp())
			}
		})
	}
}

// TestAccessMapCloneCapTrick pins the three-index-slice trick: after a
// clone, appends to the original for an already-shared file must
// reallocate rather than write into the clone's view.
func TestAccessMapCloneCapTrick(t *testing.T) {
	m := make(AccessMap)
	fh := core.InternFH("captrick")
	rd := func(t float64, off uint64) *core.Op {
		return &core.Op{T: t, Replied: true, Proc: core.MustProc("read"),
			FH: fh, Offset: off, Count: 8192, RCount: 8192}
	}
	m.Add(rd(1, 0))
	m.Add(rd(2, 8192))
	cp := m.Clone()
	if len(cp[fh]) != 2 {
		t.Fatalf("clone sees %d accesses, want 2", len(cp[fh]))
	}
	// Append past the clone's capped view; the clone must neither grow
	// nor see mutated elements.
	m.Add(rd(3, 16384))
	if len(cp[fh]) != 2 {
		t.Fatalf("clone grew to %d accesses", len(cp[fh]))
	}
	if len(m[fh]) != 3 {
		t.Fatalf("original has %d accesses, want 3", len(m[fh]))
	}
	if cp[fh][1].T != 2 {
		t.Fatalf("clone element mutated: %+v", cp[fh][1])
	}
}
