package analysis

import (
	"testing"

	"repro/internal/core"
)

func TestSummarize(t *testing.T) {
	ops := []*core.Op{
		{Proc: core.MustProc("read"), Replied: true, RCount: 8192},
		{Proc: core.MustProc("read"), Replied: true, RCount: 8192},
		{Proc: core.MustProc("read"), Replied: true, RCount: 8192},
		{Proc: core.MustProc("write"), Replied: true, RCount: 4096},
		{Proc: core.MustProc("getattr"), Replied: true},
		{Proc: core.MustProc("lookup"), Replied: true},
	}
	s := Summarize(ops, 2)
	if s.TotalOps != 6 || s.ReadOps != 3 || s.WriteOps != 1 || s.MetadataOps != 2 {
		t.Fatalf("summary: %+v", s)
	}
	if s.BytesRead != 3*8192 || s.BytesWritten != 4096 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.ReadWriteByteRatio() != 6 || s.ReadWriteOpRatio() != 3 {
		t.Fatalf("ratios: %v %v", s.ReadWriteByteRatio(), s.ReadWriteOpRatio())
	}
	if s.Daily(6) != 3 {
		t.Fatalf("daily: %v", s.Daily(6))
	}
	if s.MetadataFraction() != 2.0/6 {
		t.Fatalf("meta frac: %v", s.MetadataFraction())
	}
	if s.ProcCounts[core.ProcRead] != 3 {
		t.Fatalf("proc counts: %v", s.ProcCounts)
	}
	if s.String() == "" {
		t.Fatal("empty string render")
	}
}

func TestHourlyAndVariance(t *testing.T) {
	var ops []*core.Op
	// Weekdays 1–5: heavy during 9-18, light at night; reads 3× writes
	// during the day. Weekend left idle.
	day := 86400.0
	for d := 1; d <= 5; d++ {
		for h := 0; h < 24; h++ {
			n := 2
			if h >= 9 && h < 18 {
				n = 55 + (h*7+d*3)%10 // busy, with mild hour-to-hour jitter
			}
			for i := 0; i < n; i++ {
				tt := float64(d)*day + float64(h)*3600 + float64(i)*30
				ops = append(ops, &core.Op{T: tt, Proc: core.MustProc("read"), Replied: true, RCount: 8192})
				if i%3 == 0 {
					ops = append(ops, &core.Op{T: tt + 1, Proc: core.MustProc("write"), Replied: true, RCount: 8192})
				}
			}
		}
	}
	h := Hourly(ops, 7*day)
	if h.Ops.NumBuckets() != 168 {
		t.Fatalf("buckets %d", h.Ops.NumBuckets())
	}
	// Peak-only variance must be far below all-hours variance.
	all := h.VarianceTable(false)
	peak := h.VarianceTable(true)
	var allOps, peakOps VarianceRow
	for i := range all {
		if all[i].Name == "total_ops" {
			allOps, peakOps = all[i], peak[i]
		}
	}
	if peakOps.Mean <= allOps.Mean {
		t.Fatalf("peak mean %v not above all-hours mean %v", peakOps.Mean, allOps.Mean)
	}
	if allOps.RelStddev < 2*peakOps.RelStddev {
		t.Fatalf("variance reduction too small: all=%.2f peak=%.2f",
			allOps.RelStddev, peakOps.RelStddev)
	}
	red := h.VarianceReduction()
	if red["total_ops"] < 2 {
		t.Fatalf("reduction map: %v", red)
	}
	// The ratio series has the right shape: ~3 during peak.
	ratios := h.RWRatios()
	if r := ratios[24+10]; r < 2 || r > 4 {
		t.Fatalf("10am ratio %v", r)
	}
}

func TestCategorize(t *testing.T) {
	cases := map[string]NameCategory{
		"inbox.lock":       CatLock,
		"lock":             CatLock,
		".pinerc":          CatDot,
		".cshrc":           CatDot,
		"pico.000123":      CatComposer,
		"Applet_7_Extern":  CatComposer,
		"#draft":           CatComposer,
		"inbox":            CatMailbox,
		"saved-messages":   CatMailbox,
		"mod01.c":          CatSource,
		"paper.tex":        CatSource,
		"paper.tex~":       CatTemp,
		"mod01.o":          CatTemp,
		"run00001.out":     CatTemp,
		"cache0A1B2C3D.gz": CatOther,
		"":                 CatOther,
	}
	for name, want := range cases {
		if got := Categorize(name); got != want {
			t.Errorf("Categorize(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestAnalyzeNames(t *testing.T) {
	var ops []*core.Op
	// 10 locks: created and deleted within 0.2s, zero length.
	for i := 0; i < 10; i++ {
		t0 := float64(i) * 10
		fh := core.InternFH("lock" + string(rune('a'+i)))
		ops = append(ops,
			&core.Op{T: t0, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"),
				Name: "inbox.lock", NewFH: fh, Size: 0},
			&core.Op{T: t0 + 0.2, Replied: true, Proc: core.MustProc("remove"), FH: core.InternFH("dir"), Name: "inbox.lock"},
		)
	}
	// One composer file, 4 KB, deleted after 30s.
	ops = append(ops,
		&core.Op{T: 200, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"), Name: "pico.000001", NewFH: core.InternFH("comp"), Size: 0},
		&core.Op{T: 201, Replied: true, Proc: core.MustProc("write"), FH: core.InternFH("comp"), Offset: 0, Count: 4096, RCount: 4096, Size: 4096},
		&core.Op{T: 230, Replied: true, Proc: core.MustProc("remove"), FH: core.InternFH("dir"), Name: "pico.000001"},
	)
	// A mailbox that lives on.
	ops = append(ops,
		&core.Op{T: 300, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"), Name: "inbox", NewFH: core.InternFH("mbox"), Size: 0},
		&core.Op{T: 301, Replied: true, Proc: core.MustProc("write"), FH: core.InternFH("mbox"), Offset: 0, Count: 8192, RCount: 8192, Size: 3 << 20},
	)
	rep := AnalyzeNames(ops, 1000)

	locks := rep.PerCategory[CatLock]
	if locks.Created != 10 || locks.Deleted != 10 {
		t.Fatalf("locks: %+v", locks)
	}
	if m := locks.Lifetimes.Median(); m < 0.19 || m > 0.21 {
		t.Fatalf("lock lifetime median %v", m)
	}
	if locks.Sizes.Percentile(99) != 0 {
		t.Fatalf("locks not zero length: %v", locks.Sizes.Percentile(99))
	}
	if rep.CreatedAndDeleted != 11 {
		t.Fatalf("created+deleted %d", rep.CreatedAndDeleted)
	}
	if rep.LockFracOfDeleted < 0.9 {
		t.Fatalf("lock fraction %v, want ~10/11", rep.LockFracOfDeleted)
	}
	comp := rep.PerCategory[CatComposer]
	if comp.Created != 1 || comp.Deleted != 1 {
		t.Fatalf("composer: %+v", comp)
	}
	// Categories predict classes perfectly in this toy set.
	if rep.SizeAccuracy < 0.99 || rep.LifeAccuracy < 0.99 {
		t.Fatalf("accuracy: size=%v life=%v", rep.SizeAccuracy, rep.LifeAccuracy)
	}
}

func TestTopNames(t *testing.T) {
	ops := []*core.Op{
		{Name: "inbox.lock"}, {Name: "inbox.lock"}, {Name: "inbox.lock"},
		{Name: "inbox"}, {Name: "inbox"},
		{Name: ".pinerc"},
	}
	top := TopNames(ops, 2)
	if len(top) != 2 || top[0] != "inbox.lock" || top[1] != "inbox" {
		t.Fatalf("top: %v", top)
	}
}

func TestHierarchyReconstruction(t *testing.T) {
	h := NewHierarchy()
	ops := []*core.Op{
		{Proc: core.MustProc("lookup"), FH: core.InternFH("root"), Name: "home", NewFH: core.InternFH("home"), Replied: true},
		{Proc: core.MustProc("lookup"), FH: core.InternFH("home"), Name: "u1", NewFH: core.InternFH("u1dir"), Replied: true},
		{Proc: core.MustProc("create"), FH: core.InternFH("u1dir"), Name: "inbox", NewFH: core.InternFH("mbox"), Replied: true},
		{Proc: core.MustProc("read"), FH: core.InternFH("mbox"), Replied: true},
	}
	for _, op := range ops {
		h.Observe(op)
	}
	path, ok := h.Path(core.InternFH("mbox"))
	if !ok || path != "[root]/home/u1/inbox" {
		t.Fatalf("path = %q ok=%v", path, ok)
	}
	if h.Edges() != 3 {
		t.Fatalf("edges %d", h.Edges())
	}

	// Rename moves the edge.
	h.Observe(&core.Op{Proc: core.MustProc("rename"), FH: core.InternFH("u1dir"), Name: "inbox",
		FH2: core.InternFH("u1dir"), Name2: "mbox-old", Replied: true})
	path, _ = h.Path(core.InternFH("mbox"))
	if path != "[root]/home/u1/mbox-old" {
		t.Fatalf("after rename: %q", path)
	}
	// Remove drops it.
	h.Observe(&core.Op{Proc: core.MustProc("remove"), FH: core.InternFH("u1dir"), Name: "mbox-old", Replied: true})
	if _, ok := h.Path(core.InternFH("mbox")); ok {
		if p, _ := h.Path(core.InternFH("mbox")); p == "[root]/home/u1/mbox-old" {
			t.Fatal("edge survived remove")
		}
	}
}

// TestHierarchyRebindStaleIndex: after a child re-binds under a new
// edge (hard link or re-lookup following an unobserved rename), acting
// on its old name must not disturb the child's current placement — the
// reverse index must not trust a stale entry.
func TestHierarchyRebindStaleIndex(t *testing.T) {
	h := NewHierarchy()
	look := func(dir, name, child string) {
		h.Observe(&core.Op{Proc: core.ProcLookup, Replied: true,
			FH: core.InternFH(dir), Name: name, NewFH: core.InternFH(child)})
	}
	look("d1", "a", "f-rebind")
	look("d2", "b", "f-rebind") // f re-binds: its current edge is (d2, b)
	// Removing the stale (d1, a) name must leave f placed under d2.
	h.Observe(&core.Op{Proc: core.ProcRemove, Replied: true,
		FH: core.InternFH("d1"), Name: "a"})
	path, ok := h.Path(core.InternFH("f-rebind"))
	if !ok || path != "[d2]/b" {
		t.Fatalf("path after stale remove: %q ok=%v, want [d2]/b", path, ok)
	}
	// Renaming via the stale name must not move f either.
	look("d1", "a", "f-rebind")
	look("d2", "c", "f-rebind")
	h.Observe(&core.Op{Proc: core.ProcRename, Replied: true,
		FH: core.InternFH("d1"), Name: "a",
		FH2: core.InternFH("d3"), Name2: "z"})
	if path, _ := h.Path(core.InternFH("f-rebind")); path != "[d2]/c" {
		t.Fatalf("path after stale rename: %q, want [d2]/c", path)
	}
}

func TestHierarchyCoverageGrows(t *testing.T) {
	// Simulate lookups introducing handles, then repeated access: the
	// post-warmup coverage should be near 1.
	var ops []*core.Op
	for i := 0; i < 50; i++ {
		fh := "file" + string(rune('A'+i%26)) + string(rune('a'+i/26))
		ops = append(ops, &core.Op{T: float64(i), Proc: core.MustProc("lookup"),
			FH: core.InternFH("root"), Name: "f" + fh, NewFH: core.InternFH(fh), Replied: true})
	}
	for i := 0; i < 500; i++ {
		fh := "file" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%2))
		ops = append(ops, &core.Op{T: 50 + float64(i), Proc: core.MustProc("read"), FH: core.InternFH(fh), Replied: true})
	}
	cov := CoverageAfterWarmup(ops, 50)
	if cov < 0.99 {
		t.Fatalf("coverage %v", cov)
	}
}
