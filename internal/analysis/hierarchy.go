package analysis

import (
	"strings"

	"repro/internal/core"
)

// Hierarchy reconstructs the active part of the server's namespace
// on the fly from lookup/create/rename traffic, as §4.1.1 describes:
// after a few minutes of trace, almost every handle's parent is known.
type Hierarchy struct {
	// parent maps a file handle to its (parent handle, name) edge.
	parent map[string]edge
	// known tracks handles seen in any position.
	known map[string]bool

	// Coverage counters: of the ops naming a primary handle, how many
	// had that handle already resolvable to a path.
	resolvable int64
	total      int64
}

type edge struct {
	dir  string
	name string
}

// NewHierarchy returns an empty namespace model.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parent: make(map[string]edge), known: make(map[string]bool)}
}

// Observe feeds one op through the reconstruction, updating edges and
// coverage statistics. Ops must be fed in trace order.
func (h *Hierarchy) Observe(op *core.Op) {
	// Coverage check first: is this op's handle already placeable?
	if op.FH != "" {
		h.total++
		if h.known[op.FH] {
			h.resolvable++
		}
	}
	switch op.Proc {
	case "lookup", "create", "mkdir", "symlink":
		if op.NewFH != "" && op.Name != "" {
			h.parent[op.NewFH] = edge{dir: op.FH, name: op.Name}
			h.known[op.NewFH] = true
			h.known[op.FH] = true
		}
	case "rename":
		// Find the moved handle via the old edge if we have it.
		for fh, e := range h.parent {
			if e.dir == op.FH && e.name == op.Name {
				h.parent[fh] = edge{dir: op.FH2, name: op.Name2}
				break
			}
		}
	case "remove", "rmdir":
		for fh, e := range h.parent {
			if e.dir == op.FH && e.name == op.Name {
				delete(h.parent, fh)
				break
			}
		}
	default:
		if op.FH != "" {
			h.known[op.FH] = true
		}
	}
}

// Path reconstructs the name of a handle from known edges, ending at a
// handle with no known parent (rendered as its hex form). ok is false
// when fh itself is unknown.
func (h *Hierarchy) Path(fh string) (string, bool) {
	if !h.known[fh] {
		return "", false
	}
	var parts []string
	cur := fh
	for depth := 0; depth < 64; depth++ {
		e, ok := h.parent[cur]
		if !ok {
			break
		}
		parts = append([]string{e.name}, parts...)
		cur = e.dir
	}
	return "[" + cur + "]/" + strings.Join(parts, "/"), true
}

// Known reports whether fh has been seen in any position.
func (h *Hierarchy) Known(fh string) bool { return h.known[fh] }

// Coverage reports the fraction of handle-bearing ops whose handle was
// already known when the op arrived.
func (h *Hierarchy) Coverage() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.resolvable) / float64(h.total)
}

// Edges reports the number of known parent edges.
func (h *Hierarchy) Edges() int { return len(h.parent) }

// CoverageAfterWarmup runs the reconstruction over ops, ignoring the
// first warmup seconds, and returns the post-warmup coverage — the
// paper's claim is that this approaches 1 within minutes.
func CoverageAfterWarmup(ops []*core.Op, warmup float64) float64 {
	if len(ops) == 0 {
		return 0
	}
	start := ops[0].T + warmup
	h := NewHierarchy()
	var resolvable, total int64
	for _, op := range ops {
		if op.T >= start && op.FH != "" {
			total++
			if h.known[op.FH] {
				resolvable++
			}
		}
		h.Observe(op)
	}
	if total == 0 {
		return 0
	}
	return float64(resolvable) / float64(total)
}
