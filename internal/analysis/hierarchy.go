package analysis

import (
	"strings"

	"repro/internal/core"
)

// Hierarchy reconstructs the active part of the server's namespace
// on the fly from lookup/create/rename traffic, as §4.1.1 describes:
// after a few minutes of trace, almost every handle's parent is known.
type Hierarchy struct {
	// parent maps a file handle to its (parent handle, name) edge.
	parent map[core.FH]nameBinding
	// byEdge is the reverse index, (dir, name) → most recent child, so
	// renames and removes resolve in O(1) instead of scanning parent.
	// Entries can go stale when a child re-binds under another name;
	// resolve validates against parent before trusting one.
	byEdge map[nameBinding]core.FH
	// known tracks handles seen in any position.
	known map[core.FH]bool

	// Coverage counters: of the ops naming a primary handle, how many
	// had that handle already resolvable to a path.
	resolvable int64
	total      int64
}

// NewHierarchy returns an empty namespace model.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		parent: make(map[core.FH]nameBinding),
		byEdge: make(map[nameBinding]core.FH),
		known:  make(map[core.FH]bool),
	}
}

// Observe feeds one op through the reconstruction, updating edges and
// coverage statistics. Ops must be fed in trace order.
func (h *Hierarchy) Observe(op *core.Op) {
	// Coverage check first: is this op's handle already placeable?
	if op.FH != 0 {
		h.total++
		if h.known[op.FH] {
			h.resolvable++
		}
	}
	switch op.Proc {
	case core.ProcLookup, core.ProcCreate, core.ProcMkdir, core.ProcSymlink:
		if op.NewFH != 0 && op.Name != "" {
			e := nameBinding{dir: op.FH, name: op.Name}
			if old, ok := h.parent[op.NewFH]; ok && old != e && h.byEdge[old] == op.NewFH {
				// The child re-binds under a new edge; drop the index
				// entry for the old one so it cannot act on the child.
				delete(h.byEdge, old)
			}
			h.parent[op.NewFH] = e
			h.byEdge[e] = op.NewFH
			h.known[op.NewFH] = true
			h.known[op.FH] = true
		}
	case core.ProcRename:
		// Move the child currently bound to the old edge, if we know it.
		old := nameBinding{dir: op.FH, name: op.Name}
		if fh, ok := h.resolve(old); ok {
			next := nameBinding{dir: op.FH2, name: op.Name2}
			h.parent[fh] = next
			delete(h.byEdge, old)
			h.byEdge[next] = fh
		}
	case core.ProcRemove, core.ProcRmdir:
		e := nameBinding{dir: op.FH, name: op.Name}
		if fh, ok := h.resolve(e); ok {
			delete(h.parent, fh)
			delete(h.byEdge, e)
		}
	default:
		if op.FH != 0 {
			h.known[op.FH] = true
		}
	}
}

// resolve returns a child whose current parent edge is e. The reverse
// index answers in O(1); a stale entry (the indexed child has since
// re-bound elsewhere) falls back to the scan the index replaces, which
// also repairs the index. ok is false when no child is bound to e.
func (h *Hierarchy) resolve(e nameBinding) (core.FH, bool) {
	if fh, ok := h.byEdge[e]; ok && h.parent[fh] == e {
		return fh, true
	}
	for fh, pe := range h.parent {
		if pe == e {
			h.byEdge[e] = fh
			return fh, true
		}
	}
	delete(h.byEdge, e)
	return 0, false
}

// Path reconstructs the name of a handle from known edges, ending at a
// handle with no known parent (rendered as its hex form through the
// intern table's reverse lookup). ok is false when fh itself is
// unknown.
func (h *Hierarchy) Path(fh core.FH) (string, bool) {
	if !h.known[fh] {
		return "", false
	}
	var parts []string
	cur := fh
	for depth := 0; depth < 64; depth++ {
		e, ok := h.parent[cur]
		if !ok {
			break
		}
		parts = append([]string{e.name}, parts...)
		cur = e.dir
	}
	return "[" + cur.String() + "]/" + strings.Join(parts, "/"), true
}

// Known reports whether fh has been seen in any position.
func (h *Hierarchy) Known(fh core.FH) bool { return h.known[fh] }

// Coverage reports the fraction of handle-bearing ops whose handle was
// already known when the op arrived.
func (h *Hierarchy) Coverage() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.resolvable) / float64(h.total)
}

// Edges reports the number of known parent edges.
func (h *Hierarchy) Edges() int { return len(h.parent) }

// CoverageAfterWarmup runs the reconstruction over ops, ignoring the
// first warmup seconds, and returns the post-warmup coverage — the
// paper's claim is that this approaches 1 within minutes.
func CoverageAfterWarmup(ops []*core.Op, warmup float64) float64 {
	if len(ops) == 0 {
		return 0
	}
	start := ops[0].T + warmup
	h := NewHierarchy()
	var resolvable, total int64
	for _, op := range ops {
		if op.T >= start && op.FH != 0 {
			total++
			if h.known[op.FH] {
				resolvable++
			}
		}
		h.Observe(op)
	}
	if total == 0 {
		return 0
	}
	return float64(resolvable) / float64(total)
}
