package analysis

import (
	"testing"

	"repro/internal/core"
)

// wr builds a successful write op with wcc pre-size.
func wr(t float64, fh string, off uint64, count uint32, preSize, postSize uint64) *core.Op {
	return &core.Op{T: t, Replied: true, Proc: core.MustProc("write"), FH: core.InternFH(fh),
		Offset: off, Count: count, RCount: count,
		PreSize: preSize, HasPre: true, Size: postSize}
}

func TestBlockLifeBirthsByWrite(t *testing.T) {
	ops := []*core.Op{
		wr(1, "f", 0, 16384, 0, 16384), // two fresh blocks
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.Births != 2 || res.BirthCause[BirthWrite] != 2 {
		t.Fatalf("births: %+v", res)
	}
	if res.Deaths != 0 || res.EndSurplus != 2 {
		t.Fatalf("deaths/surplus: %+v", res)
	}
}

func TestBlockLifeOverwriteDeath(t *testing.T) {
	ops := []*core.Op{
		wr(1, "f", 0, 8192, 0, 8192),
		wr(31, "f", 0, 8192, 8192, 8192), // overwrites block 0
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.Births != 2 {
		t.Fatalf("births %d", res.Births)
	}
	if res.Deaths != 1 || res.DeathCause[DeathOverwrite] != 1 {
		t.Fatalf("deaths: %+v", res)
	}
	if got := res.Lifetimes.Median(); got != 30 {
		t.Fatalf("lifetime %v, want 30", got)
	}
	if res.EndSurplus != 1 {
		t.Fatalf("surplus %d", res.EndSurplus)
	}
}

func TestBlockLifeExtensionBirths(t *testing.T) {
	// Write at 64k into an 8k file: blocks 1..7 born by extension,
	// block 8 born by write.
	ops := []*core.Op{
		wr(1, "f", 0, 8192, 0, 8192),
		wr(2, "f", 65536, 8192, 8192, 73728),
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.BirthCause[BirthExtension] != 7 {
		t.Fatalf("extension births %d, want 7", res.BirthCause[BirthExtension])
	}
	if res.BirthCause[BirthWrite] != 2 {
		t.Fatalf("write births %d, want 2", res.BirthCause[BirthWrite])
	}
}

func TestBlockLifeTruncateDeath(t *testing.T) {
	ops := []*core.Op{
		wr(1, "f", 0, 32768, 0, 32768), // 4 blocks
		{T: 10, Replied: true, Proc: core.MustProc("setattr"), FH: core.InternFH("f"),
			SetSize: 8192, HasSet: true, PreSize: 32768, HasPre: true, Size: 8192},
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.DeathCause[DeathTruncate] != 3 {
		t.Fatalf("truncate deaths %d, want 3", res.DeathCause[DeathTruncate])
	}
}

func TestBlockLifeDeleteDeath(t *testing.T) {
	ops := []*core.Op{
		{T: 0.5, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"), Name: "tmp", NewFH: core.InternFH("f"), Size: 0},
		wr(1, "f", 0, 24576, 0, 24576),
		{T: 5, Replied: true, Proc: core.MustProc("remove"), FH: core.InternFH("dir"), Name: "tmp"},
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.DeathCause[DeathDelete] != 3 {
		t.Fatalf("delete deaths %d, want 3 (%+v)", res.DeathCause[DeathDelete], res)
	}
	if res.EndSurplus != 0 {
		t.Fatalf("surplus %d", res.EndSurplus)
	}
}

func TestBlockLifeRenameTracksName(t *testing.T) {
	ops := []*core.Op{
		{T: 0.5, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"), Name: "a", NewFH: core.InternFH("f"), Size: 0},
		wr(1, "f", 0, 8192, 0, 8192),
		{T: 2, Replied: true, Proc: core.MustProc("rename"), FH: core.InternFH("dir"), Name: "a", FH2: core.InternFH("dir2"), Name2: "b"},
		{T: 3, Replied: true, Proc: core.MustProc("remove"), FH: core.InternFH("dir2"), Name: "b"},
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.DeathCause[DeathDelete] != 1 {
		t.Fatalf("rename lost the file: %+v", res)
	}
}

func TestBlockLifePhase2DeathsOnly(t *testing.T) {
	ops := []*core.Op{
		wr(80, "f", 0, 8192, 0, 8192),         // phase 1 birth
		wr(150, "f", 8192, 8192, 8192, 16384), // phase 2: birth NOT counted
		wr(160, "f", 0, 8192, 16384, 16384),   // phase 2 death (life 80 < margin)
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.Births != 1 {
		t.Fatalf("births %d, want 1 (phase 2 births ignored)", res.Births)
	}
	if res.Deaths != 1 {
		t.Fatalf("deaths %d", res.Deaths)
	}
}

func TestBlockLifeMarginDiscardsLongLives(t *testing.T) {
	ops := []*core.Op{
		wr(1, "f", 0, 8192, 0, 8192),
		wr(190, "f", 0, 8192, 8192, 8192), // lives 189s; margin is 100
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.Deaths != 0 {
		t.Fatalf("overlong death counted: %+v", res)
	}
}

func TestBlockLifeWindowOffsets(t *testing.T) {
	// Ops before the window only feed name/size tracking.
	ops := []*core.Op{
		{T: 1, Replied: true, Proc: core.MustProc("create"), FH: core.InternFH("dir"), Name: "x", NewFH: core.InternFH("f"), Size: 0},
		wr(2, "f", 0, 8192, 0, 8192), // before window: no birth
		wr(20, "f", 0, 8192, 8192, 8192),
	}
	res := BlockLife(ops, 10, 50, 50)
	if res.Births != 1 {
		t.Fatalf("births %d, want 1", res.Births)
	}
	// The overwrite death at t=20 kills a block born before the
	// window, which is not tracked — no death.
	if res.Deaths != 0 {
		t.Fatalf("deaths %d", res.Deaths)
	}
}

func TestBlockLifeFailedOpsIgnored(t *testing.T) {
	ops := []*core.Op{
		{T: 1, Replied: true, Status: 13, Proc: core.MustProc("write"), FH: core.InternFH("f"),
			Offset: 0, Count: 8192, RCount: 0},
		{T: 2, Replied: false, Proc: core.MustProc("write"), FH: core.InternFH("f"), Offset: 0, Count: 8192},
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.Births != 0 {
		t.Fatalf("failed/unreplied writes created births: %+v", res)
	}
}

func TestBlockLifePercentHelpers(t *testing.T) {
	ops := []*core.Op{
		wr(1, "f", 0, 8192, 0, 8192),
		wr(2, "f", 0, 8192, 8192, 8192),
	}
	res := BlockLife(ops, 0, 100, 100)
	if res.BirthPct(BirthWrite) != 100 {
		t.Fatalf("birth pct %v", res.BirthPct(BirthWrite))
	}
	if res.DeathPct(DeathOverwrite) != 100 {
		t.Fatalf("death pct %v", res.DeathPct(DeathOverwrite))
	}
	if res.EndSurplusPct() != 50 {
		t.Fatalf("surplus pct %v", res.EndSurplusPct())
	}
}
