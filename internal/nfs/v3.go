package nfs

import (
	"fmt"

	"repro/internal/xdr"
)

// NFSv3 wire codecs (RFC 1813). Encoders write the argument or result
// body that follows the RPC header; decoders parse the same.

func encodeFH3(e *xdr.Encoder, fh FH) { e.PutOpaque(fh) }

func decodeFH3(d *xdr.Decoder) (FH, error) {
	b, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	if len(b) > V3MaxFHSize {
		return nil, fmt.Errorf("%w: fh of %d bytes", ErrDecode, len(b))
	}
	out := make(FH, len(b))
	copy(out, b)
	return out, nil
}

func encodeTime3(e *xdr.Encoder, t Time) {
	e.PutUint32(t.Sec)
	e.PutUint32(t.Nsec)
}

func decodeTime3(d *xdr.Decoder) (Time, error) {
	sec, err := d.Uint32()
	if err != nil {
		return Time{}, err
	}
	nsec, err := d.Uint32()
	if err != nil {
		return Time{}, err
	}
	return Time{Sec: sec, Nsec: nsec}, nil
}

// EncodeFattr3 writes a fattr3 block.
func EncodeFattr3(e *xdr.Encoder, a *Fattr) {
	e.PutUint32(a.Type)
	e.PutUint32(a.Mode)
	e.PutUint32(a.Nlink)
	e.PutUint32(a.UID)
	e.PutUint32(a.GID)
	e.PutUint64(a.Size)
	e.PutUint64(a.Used)
	e.PutUint32(0) // rdev major
	e.PutUint32(0) // rdev minor
	e.PutUint64(a.FSID)
	e.PutUint64(a.FileID)
	encodeTime3(e, a.Atime)
	encodeTime3(e, a.Mtime)
	encodeTime3(e, a.Ctime)
}

// DecodeFattr3 parses a fattr3 block.
func DecodeFattr3(d *xdr.Decoder) (*Fattr, error) {
	var a Fattr
	var err error
	if a.Type, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Mode, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Nlink, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Size, err = d.Uint64(); err != nil {
		return nil, err
	}
	if a.Used, err = d.Uint64(); err != nil {
		return nil, err
	}
	if _, err = d.Uint32(); err != nil { // rdev major
		return nil, err
	}
	if _, err = d.Uint32(); err != nil { // rdev minor
		return nil, err
	}
	if a.FSID, err = d.Uint64(); err != nil {
		return nil, err
	}
	if a.FileID, err = d.Uint64(); err != nil {
		return nil, err
	}
	if a.Atime, err = decodeTime3(d); err != nil {
		return nil, err
	}
	if a.Mtime, err = decodeTime3(d); err != nil {
		return nil, err
	}
	if a.Ctime, err = decodeTime3(d); err != nil {
		return nil, err
	}
	return &a, nil
}

// encodePostOpAttr writes a post_op_attr (optional fattr3).
func encodePostOpAttr(e *xdr.Encoder, a *Fattr) {
	if a == nil {
		e.PutBool(false)
		return
	}
	e.PutBool(true)
	EncodeFattr3(e, a)
}

func decodePostOpAttr(d *xdr.Decoder) (*Fattr, error) {
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	return DecodeFattr3(d)
}

// WccAttr is the pre-operation attribute subset in wcc_data.
type WccAttr struct {
	Size  uint64
	Mtime Time
	Ctime Time
}

// WccData is the weak cache consistency block attached to v3 results
// that modify a file.
type WccData struct {
	Before *WccAttr
	After  *Fattr
}

func encodeWccData(e *xdr.Encoder, w *WccData) {
	if w == nil {
		e.PutBool(false)
		e.PutBool(false)
		return
	}
	if w.Before == nil {
		e.PutBool(false)
	} else {
		e.PutBool(true)
		e.PutUint64(w.Before.Size)
		encodeTime3(e, w.Before.Mtime)
		encodeTime3(e, w.Before.Ctime)
	}
	encodePostOpAttr(e, w.After)
}

func decodeWccData(d *xdr.Decoder) (*WccData, error) {
	var w WccData
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if present {
		var b WccAttr
		if b.Size, err = d.Uint64(); err != nil {
			return nil, err
		}
		if b.Mtime, err = decodeTime3(d); err != nil {
			return nil, err
		}
		if b.Ctime, err = decodeTime3(d); err != nil {
			return nil, err
		}
		w.Before = &b
	}
	if w.After, err = decodePostOpAttr(d); err != nil {
		return nil, err
	}
	return &w, nil
}

func encodeSattr3(e *xdr.Encoder, s *Sattr) {
	putOpt32 := func(v *uint32) {
		if v == nil {
			e.PutBool(false)
		} else {
			e.PutBool(true)
			e.PutUint32(*v)
		}
	}
	putOpt32(s.Mode)
	putOpt32(s.UID)
	putOpt32(s.GID)
	if s.Size == nil {
		e.PutBool(false)
	} else {
		e.PutBool(true)
		e.PutUint64(*s.Size)
	}
	putOptTime := func(t *Time) {
		if t == nil {
			e.PutUint32(0) // DONT_CHANGE
		} else {
			e.PutUint32(2) // SET_TO_CLIENT_TIME
			encodeTime3(e, *t)
		}
	}
	putOptTime(s.Atime)
	putOptTime(s.Mtime)
}

func decodeSattr3(d *xdr.Decoder) (*Sattr, error) {
	var s Sattr
	getOpt32 := func() (*uint32, error) {
		present, err := d.Bool()
		if err != nil || !present {
			return nil, err
		}
		v, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &v, nil
	}
	var err error
	if s.Mode, err = getOpt32(); err != nil {
		return nil, err
	}
	if s.UID, err = getOpt32(); err != nil {
		return nil, err
	}
	if s.GID, err = getOpt32(); err != nil {
		return nil, err
	}
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if present {
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		s.Size = &v
	}
	getOptTime := func() (*Time, error) {
		how, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		switch how {
		case 0: // DONT_CHANGE
			return nil, nil
		case 1: // SET_TO_SERVER_TIME
			return &Time{}, nil
		case 2:
			t, err := decodeTime3(d)
			if err != nil {
				return nil, err
			}
			return &t, nil
		default:
			return nil, fmt.Errorf("%w: time_how %d", ErrDecode, how)
		}
	}
	if s.Atime, err = getOptTime(); err != nil {
		return nil, err
	}
	if s.Mtime, err = getOptTime(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DirOpArgs3 is the (dir handle, name) pair used by LOOKUP, CREATE,
// REMOVE, and friends.
type DirOpArgs3 struct {
	Dir  FH
	Name string
}

func encodeDirOp(e *xdr.Encoder, a *DirOpArgs3) {
	encodeFH3(e, a.Dir)
	e.PutString(a.Name)
}

func decodeDirOp(d *xdr.Decoder) (*DirOpArgs3, error) {
	fh, err := decodeFH3(d)
	if err != nil {
		return nil, err
	}
	name, err := d.String()
	if err != nil {
		return nil, err
	}
	return &DirOpArgs3{Dir: fh, Name: name}, nil
}

// --- Procedure argument structs ---

// GetattrArgs3 is the GETATTR argument.
type GetattrArgs3 struct{ FH FH }

// SetattrArgs3 is the SETATTR argument (guard omitted / guard=false).
type SetattrArgs3 struct {
	FH   FH
	Attr Sattr
}

// LookupArgs3 is the LOOKUP argument.
type LookupArgs3 = DirOpArgs3

// AccessArgs3 is the ACCESS argument.
type AccessArgs3 struct {
	FH     FH
	Access uint32
}

// ReadArgs3 is the READ argument.
type ReadArgs3 struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Write stability levels.
const (
	Unstable = 0
	DataSync = 1
	FileSync = 2
)

// WriteArgs3 is the WRITE argument. Data may be synthetic filler.
type WriteArgs3 struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
}

// CreateArgs3 is the CREATE argument (UNCHECKED/GUARDED mode; the
// simulators use UNCHECKED).
type CreateArgs3 struct {
	Where DirOpArgs3
	Attr  Sattr
}

// MkdirArgs3 is the MKDIR argument.
type MkdirArgs3 struct {
	Where DirOpArgs3
	Attr  Sattr
}

// SymlinkArgs3 is the SYMLINK argument.
type SymlinkArgs3 struct {
	Where  DirOpArgs3
	Attr   Sattr
	Target string
}

// RenameArgs3 is the RENAME argument.
type RenameArgs3 struct {
	From DirOpArgs3
	To   DirOpArgs3
}

// LinkArgs3 is the LINK argument.
type LinkArgs3 struct {
	FH FH
	To DirOpArgs3
}

// ReaddirArgs3 is the READDIR argument (cookieverf zeroed).
type ReaddirArgs3 struct {
	Dir      FH
	Cookie   uint64
	MaxCount uint32
}

// CommitArgs3 is the COMMIT argument.
type CommitArgs3 struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// --- Procedure result structs ---

// GetattrRes3 is the GETATTR result.
type GetattrRes3 struct {
	Status uint32
	Attr   *Fattr // set when Status == OK
}

// SetattrRes3 is the SETATTR result.
type SetattrRes3 struct {
	Status uint32
	Wcc    *WccData
}

// LookupRes3 is the LOOKUP result.
type LookupRes3 struct {
	Status  uint32
	FH      FH     // set when OK
	Attr    *Fattr // post-op attributes of the object
	DirAttr *Fattr // post-op attributes of the directory
}

// AccessRes3 is the ACCESS result.
type AccessRes3 struct {
	Status uint32
	Attr   *Fattr
	Access uint32
}

// ReadRes3 is the READ result.
type ReadRes3 struct {
	Status uint32
	Attr   *Fattr
	Count  uint32
	EOF    bool
	Data   []byte
}

// WriteRes3 is the WRITE result.
type WriteRes3 struct {
	Status    uint32
	Wcc       *WccData
	Count     uint32
	Committed uint32
}

// CreateRes3 is the CREATE/MKDIR/SYMLINK result.
type CreateRes3 struct {
	Status uint32
	FH     FH     // post-op fh, may be nil even on OK
	Attr   *Fattr // post-op attributes
	Wcc    *WccData
}

// RemoveRes3 is the REMOVE/RMDIR result.
type RemoveRes3 struct {
	Status uint32
	Wcc    *WccData
}

// RenameRes3 is the RENAME result.
type RenameRes3 struct {
	Status  uint32
	FromWcc *WccData
	ToWcc   *WccData
}

// ReaddirRes3 is the READDIR result.
type ReaddirRes3 struct {
	Status  uint32
	DirAttr *Fattr
	Entries []DirEntry
	EOF     bool
}

// FsstatRes3 is the FSSTAT result.
type FsstatRes3 struct {
	Status uint32
	Attr   *Fattr
	Tbytes uint64
	Fbytes uint64
	Abytes uint64
}

// CommitRes3 is the COMMIT result.
type CommitRes3 struct {
	Status uint32
	Wcc    *WccData
}

// --- Argument codecs ---

// EncodeArgs3 writes the argument body for proc; args must be the
// matching *Args3 struct (nil for NULL and parameterless procs).
func EncodeArgs3(e *xdr.Encoder, proc uint32, args any) error {
	switch proc {
	case V3Null:
		return nil
	case V3Getattr:
		encodeFH3(e, args.(*GetattrArgs3).FH)
	case V3Setattr:
		a := args.(*SetattrArgs3)
		encodeFH3(e, a.FH)
		encodeSattr3(e, &a.Attr)
		e.PutBool(false) // guard: no ctime check
	case V3Lookup:
		encodeDirOp(e, args.(*LookupArgs3))
	case V3Access:
		a := args.(*AccessArgs3)
		encodeFH3(e, a.FH)
		e.PutUint32(a.Access)
	case V3Readlink:
		encodeFH3(e, args.(*GetattrArgs3).FH)
	case V3Read:
		a := args.(*ReadArgs3)
		encodeFH3(e, a.FH)
		e.PutUint64(a.Offset)
		e.PutUint32(a.Count)
	case V3Write:
		a := args.(*WriteArgs3)
		encodeFH3(e, a.FH)
		e.PutUint64(a.Offset)
		e.PutUint32(a.Count)
		e.PutUint32(a.Stable)
		e.PutOpaque(a.Data)
	case V3Create:
		a := args.(*CreateArgs3)
		encodeDirOp(e, &a.Where)
		e.PutUint32(0) // UNCHECKED
		encodeSattr3(e, &a.Attr)
	case V3Mkdir:
		a := args.(*MkdirArgs3)
		encodeDirOp(e, &a.Where)
		encodeSattr3(e, &a.Attr)
	case V3Symlink:
		a := args.(*SymlinkArgs3)
		encodeDirOp(e, &a.Where)
		encodeSattr3(e, &a.Attr)
		e.PutString(a.Target)
	case V3Remove, V3Rmdir:
		encodeDirOp(e, args.(*DirOpArgs3))
	case V3Rename:
		a := args.(*RenameArgs3)
		encodeDirOp(e, &a.From)
		encodeDirOp(e, &a.To)
	case V3Link:
		a := args.(*LinkArgs3)
		encodeFH3(e, a.FH)
		encodeDirOp(e, &a.To)
	case V3Readdir:
		a := args.(*ReaddirArgs3)
		encodeFH3(e, a.Dir)
		e.PutUint64(a.Cookie)
		e.PutUint64(0) // cookieverf
		e.PutUint32(a.MaxCount)
	case V3Readdirplus:
		a := args.(*ReaddirArgs3)
		encodeFH3(e, a.Dir)
		e.PutUint64(a.Cookie)
		e.PutUint64(0) // cookieverf
		e.PutUint32(a.MaxCount)
		e.PutUint32(a.MaxCount)
	case V3Fsstat, V3Fsinfo, V3Pathconf:
		encodeFH3(e, args.(*GetattrArgs3).FH)
	case V3Commit:
		a := args.(*CommitArgs3)
		encodeFH3(e, a.FH)
		e.PutUint64(a.Offset)
		e.PutUint32(a.Count)
	default:
		return fmt.Errorf("%w: v3 proc %d", ErrBadProc, proc)
	}
	return nil
}

// DecodeArgs3 parses the argument body for proc, returning the matching
// *Args3 struct (nil for NULL).
func DecodeArgs3(proc uint32, body []byte) (any, error) {
	d := xdr.NewDecoder(body)
	switch proc {
	case V3Null:
		return nil, nil
	case V3Getattr, V3Readlink, V3Fsstat, V3Fsinfo, V3Pathconf:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		return &GetattrArgs3{FH: fh}, nil
	case V3Setattr:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr3(d)
		if err != nil {
			return nil, err
		}
		return &SetattrArgs3{FH: fh, Attr: *s}, nil
	case V3Lookup, V3Remove, V3Rmdir:
		return decodeDirOp(d)
	case V3Access:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		acc, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &AccessArgs3{FH: fh, Access: acc}, nil
	case V3Read:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		off, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &ReadArgs3{FH: fh, Offset: off, Count: count}, nil
	case V3Write:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		off, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		stable, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		data, err := d.Opaque()
		if err != nil {
			return nil, err
		}
		return &WriteArgs3{FH: fh, Offset: off, Count: count, Stable: stable, Data: data}, nil
	case V3Create:
		where, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		mode, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		a := &CreateArgs3{Where: *where}
		if mode != 2 { // EXCLUSIVE carries a verf instead of sattr
			s, err := decodeSattr3(d)
			if err != nil {
				return nil, err
			}
			a.Attr = *s
		}
		return a, nil
	case V3Mkdir:
		where, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr3(d)
		if err != nil {
			return nil, err
		}
		return &MkdirArgs3{Where: *where, Attr: *s}, nil
	case V3Symlink:
		where, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr3(d)
		if err != nil {
			return nil, err
		}
		target, err := d.String()
		if err != nil {
			return nil, err
		}
		return &SymlinkArgs3{Where: *where, Attr: *s, Target: target}, nil
	case V3Rename:
		from, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		to, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		return &RenameArgs3{From: *from, To: *to}, nil
	case V3Link:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		to, err := decodeDirOp(d)
		if err != nil {
			return nil, err
		}
		return &LinkArgs3{FH: fh, To: *to}, nil
	case V3Readdir, V3Readdirplus:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		cookie, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		if _, err = d.Uint64(); err != nil { // cookieverf
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		if proc == V3Readdirplus {
			if _, err = d.Uint32(); err != nil { // maxcount
				return nil, err
			}
		}
		return &ReaddirArgs3{Dir: fh, Cookie: cookie, MaxCount: count}, nil
	case V3Commit:
		fh, err := decodeFH3(d)
		if err != nil {
			return nil, err
		}
		off, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &CommitArgs3{FH: fh, Offset: off, Count: count}, nil
	default:
		return nil, fmt.Errorf("%w: v3 proc %d", ErrBadProc, proc)
	}
}

// --- Result codecs ---

// EncodeRes3 writes the result body for proc; res must be the matching
// *Res3 struct (nil for NULL).
func EncodeRes3(e *xdr.Encoder, proc uint32, res any) error {
	switch proc {
	case V3Null:
		return nil
	case V3Getattr:
		r := res.(*GetattrRes3)
		e.PutUint32(r.Status)
		if r.Status == OK {
			EncodeFattr3(e, r.Attr)
		}
	case V3Setattr:
		r := res.(*SetattrRes3)
		e.PutUint32(r.Status)
		encodeWccData(e, r.Wcc)
	case V3Lookup:
		r := res.(*LookupRes3)
		e.PutUint32(r.Status)
		if r.Status == OK {
			encodeFH3(e, r.FH)
			encodePostOpAttr(e, r.Attr)
		}
		encodePostOpAttr(e, r.DirAttr)
	case V3Access:
		r := res.(*AccessRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			e.PutUint32(r.Access)
		}
	case V3Readlink:
		r := res.(*LookupRes3) // reuse: FH unused, Attr + status
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			e.PutString("") // target path not modeled
		}
	case V3Read:
		r := res.(*ReadRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			e.PutUint32(r.Count)
			e.PutBool(r.EOF)
			e.PutOpaque(r.Data)
		}
	case V3Write:
		r := res.(*WriteRes3)
		e.PutUint32(r.Status)
		encodeWccData(e, r.Wcc)
		if r.Status == OK {
			e.PutUint32(r.Count)
			e.PutUint32(r.Committed)
			e.PutUint64(0) // writeverf
		}
	case V3Create, V3Mkdir, V3Symlink, V3Mknod:
		r := res.(*CreateRes3)
		e.PutUint32(r.Status)
		if r.Status == OK {
			if r.FH != nil {
				e.PutBool(true)
				encodeFH3(e, r.FH)
			} else {
				e.PutBool(false)
			}
			encodePostOpAttr(e, r.Attr)
		}
		encodeWccData(e, r.Wcc)
	case V3Remove, V3Rmdir:
		r := res.(*RemoveRes3)
		e.PutUint32(r.Status)
		encodeWccData(e, r.Wcc)
	case V3Rename:
		r := res.(*RenameRes3)
		e.PutUint32(r.Status)
		encodeWccData(e, r.FromWcc)
		encodeWccData(e, r.ToWcc)
	case V3Link:
		r := res.(*RemoveRes3) // status + attr/wcc shape
		e.PutUint32(r.Status)
		encodePostOpAttr(e, nil)
		encodeWccData(e, r.Wcc)
	case V3Readdir, V3Readdirplus:
		r := res.(*ReaddirRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.DirAttr)
		if r.Status == OK {
			e.PutUint64(0) // cookieverf
			for _, ent := range r.Entries {
				e.PutBool(true)
				e.PutUint64(ent.FileID)
				e.PutString(ent.Name)
				e.PutUint64(ent.Cookie)
				if proc == V3Readdirplus {
					encodePostOpAttr(e, nil)
					e.PutBool(false) // no fh3
				}
			}
			e.PutBool(false) // end of list
			e.PutBool(r.EOF)
		}
	case V3Fsstat:
		r := res.(*FsstatRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			e.PutUint64(r.Tbytes)
			e.PutUint64(r.Fbytes)
			e.PutUint64(r.Abytes)
			e.PutUint64(0) // tfiles
			e.PutUint64(0) // ffiles
			e.PutUint64(0) // afiles
			e.PutUint32(0) // invarsec
		}
	case V3Fsinfo:
		r := res.(*GetattrRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			for i := 0; i < 7; i++ {
				e.PutUint32(32768) // rtmax..dtpref
			}
			e.PutUint64(1 << 40) // maxfilesize
			encodeTime3(e, Time{Sec: 0, Nsec: 1})
			e.PutUint32(0x1b) // properties
		}
	case V3Pathconf:
		r := res.(*GetattrRes3)
		e.PutUint32(r.Status)
		encodePostOpAttr(e, r.Attr)
		if r.Status == OK {
			e.PutUint32(32)  // linkmax
			e.PutUint32(255) // name_max
			e.PutBool(true)  // no_trunc
			e.PutBool(false) // chown_restricted
			e.PutBool(true)  // case_insensitive=false? keep shape
			e.PutBool(true)  // case_preserving
		}
	case V3Commit:
		r := res.(*CommitRes3)
		e.PutUint32(r.Status)
		encodeWccData(e, r.Wcc)
		if r.Status == OK {
			e.PutUint64(0) // writeverf
		}
	default:
		return fmt.Errorf("%w: v3 proc %d", ErrBadProc, proc)
	}
	return nil
}

// DecodeRes3 parses the result body for proc.
func DecodeRes3(proc uint32, body []byte) (any, error) {
	d := xdr.NewDecoder(body)
	status := uint32(OK)
	var err error
	if proc != V3Null {
		if status, err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	switch proc {
	case V3Null:
		return nil, nil
	case V3Getattr:
		r := &GetattrRes3{Status: status}
		if status == OK {
			if r.Attr, err = DecodeFattr3(d); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Setattr:
		r := &SetattrRes3{Status: status}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Lookup:
		r := &LookupRes3{Status: status}
		if status == OK {
			if r.FH, err = decodeFH3(d); err != nil {
				return nil, err
			}
			if r.Attr, err = decodePostOpAttr(d); err != nil {
				return nil, err
			}
		}
		if r.DirAttr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Access:
		r := &AccessRes3{Status: status}
		if r.Attr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if status == OK {
			if r.Access, err = d.Uint32(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Readlink:
		r := &LookupRes3{Status: status}
		if r.Attr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if status == OK {
			if _, err = d.String(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Read:
		r := &ReadRes3{Status: status}
		if r.Attr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if status == OK {
			if r.Count, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.EOF, err = d.Bool(); err != nil {
				return nil, err
			}
			if r.Data, err = d.Opaque(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Write:
		r := &WriteRes3{Status: status}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		if status == OK {
			if r.Count, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.Committed, err = d.Uint32(); err != nil {
				return nil, err
			}
			if _, err = d.Uint64(); err != nil { // writeverf
				return nil, err
			}
		}
		return r, nil
	case V3Create, V3Mkdir, V3Symlink, V3Mknod:
		r := &CreateRes3{Status: status}
		if status == OK {
			present, err := d.Bool()
			if err != nil {
				return nil, err
			}
			if present {
				if r.FH, err = decodeFH3(d); err != nil {
					return nil, err
				}
			}
			if r.Attr, err = decodePostOpAttr(d); err != nil {
				return nil, err
			}
		}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Remove, V3Rmdir:
		r := &RemoveRes3{Status: status}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Rename:
		r := &RenameRes3{Status: status}
		if r.FromWcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		if r.ToWcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Link:
		r := &RemoveRes3{Status: status}
		if _, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Readdir, V3Readdirplus:
		r := &ReaddirRes3{Status: status}
		if r.DirAttr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if status == OK {
			if _, err = d.Uint64(); err != nil { // cookieverf
				return nil, err
			}
			for {
				more, err := d.Bool()
				if err != nil {
					return nil, err
				}
				if !more {
					break
				}
				var ent DirEntry
				if ent.FileID, err = d.Uint64(); err != nil {
					return nil, err
				}
				if ent.Name, err = d.String(); err != nil {
					return nil, err
				}
				if ent.Cookie, err = d.Uint64(); err != nil {
					return nil, err
				}
				if proc == V3Readdirplus {
					if _, err = decodePostOpAttr(d); err != nil {
						return nil, err
					}
					fhPresent, err := d.Bool()
					if err != nil {
						return nil, err
					}
					if fhPresent {
						if _, err = decodeFH3(d); err != nil {
							return nil, err
						}
					}
				}
				r.Entries = append(r.Entries, ent)
			}
			if r.EOF, err = d.Bool(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Fsstat:
		r := &FsstatRes3{Status: status}
		if r.Attr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		if status == OK {
			if r.Tbytes, err = d.Uint64(); err != nil {
				return nil, err
			}
			if r.Fbytes, err = d.Uint64(); err != nil {
				return nil, err
			}
			if r.Abytes, err = d.Uint64(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V3Fsinfo, V3Pathconf:
		r := &GetattrRes3{Status: status}
		if r.Attr, err = decodePostOpAttr(d); err != nil {
			return nil, err
		}
		return r, nil
	case V3Commit:
		r := &CommitRes3{Status: status}
		if r.Wcc, err = decodeWccData(d); err != nil {
			return nil, err
		}
		return r, nil
	default:
		return nil, fmt.Errorf("%w: v3 proc %d", ErrBadProc, proc)
	}
}
