package nfs

import (
	"fmt"

	"repro/internal/xdr"
)

// NFSv2 wire codecs (RFC 1094). NFSv2 file handles are a fixed 32 bytes;
// the simulator's 8-byte handles are zero-padded on encode, and decode
// trims the zero padding back off so both protocol versions yield the
// same FH for the same file. Sizes and offsets are 32-bit in v2.

func encodeFH2(e *xdr.Encoder, fh FH) {
	var buf [V2FHSize]byte
	copy(buf[:], fh)
	e.PutFixedOpaque(buf[:])
}

func decodeFH2(d *xdr.Decoder) (FH, error) {
	b, err := d.FixedOpaque(V2FHSize)
	if err != nil {
		return nil, err
	}
	// Trim simulator zero padding: if bytes 8.. are zero, this is an
	// 8-byte simulator handle.
	allZero := true
	for _, c := range b[8:] {
		if c != 0 {
			allZero = false
			break
		}
	}
	n := V2FHSize
	if allZero {
		n = 8
	}
	out := make(FH, n)
	copy(out, b[:n])
	return out, nil
}

func encodeTime2(e *xdr.Encoder, t Time) {
	e.PutUint32(t.Sec)
	e.PutUint32(t.Nsec / 1000) // v2 carries microseconds
}

func decodeTime2(d *xdr.Decoder) (Time, error) {
	sec, err := d.Uint32()
	if err != nil {
		return Time{}, err
	}
	usec, err := d.Uint32()
	if err != nil {
		return Time{}, err
	}
	if usec == 0xFFFFFFFF { // "don't set" marker in sattr
		return Time{Sec: sec, Nsec: 0xFFFFFFFF}, nil
	}
	return Time{Sec: sec, Nsec: usec * 1000}, nil
}

// EncodeFattr2 writes a v2 fattr block, narrowing 64-bit fields.
func EncodeFattr2(e *xdr.Encoder, a *Fattr) {
	e.PutUint32(a.Type)
	e.PutUint32(a.Mode)
	e.PutUint32(a.Nlink)
	e.PutUint32(a.UID)
	e.PutUint32(a.GID)
	e.PutUint32(uint32(a.Size))
	e.PutUint32(8192)                         // blocksize
	e.PutUint32(0)                            // rdev
	e.PutUint32(uint32((a.Used + 511) / 512)) // blocks
	e.PutUint32(uint32(a.FSID))
	e.PutUint32(uint32(a.FileID))
	encodeTime2(e, a.Atime)
	encodeTime2(e, a.Mtime)
	encodeTime2(e, a.Ctime)
}

// DecodeFattr2 parses a v2 fattr block into the version-neutral form.
func DecodeFattr2(d *xdr.Decoder) (*Fattr, error) {
	var a Fattr
	var err error
	if a.Type, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Mode, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Nlink, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	size, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	a.Size = uint64(size)
	if _, err = d.Uint32(); err != nil { // blocksize
		return nil, err
	}
	if _, err = d.Uint32(); err != nil { // rdev
		return nil, err
	}
	blocks, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	a.Used = uint64(blocks) * 512
	fsid, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	a.FSID = uint64(fsid)
	fileid, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	a.FileID = uint64(fileid)
	if a.Atime, err = decodeTime2(d); err != nil {
		return nil, err
	}
	if a.Mtime, err = decodeTime2(d); err != nil {
		return nil, err
	}
	if a.Ctime, err = decodeTime2(d); err != nil {
		return nil, err
	}
	return &a, nil
}

const v2NoValue = 0xFFFFFFFF

func encodeSattr2(e *xdr.Encoder, s *Sattr) {
	put := func(v *uint32) {
		if v == nil {
			e.PutUint32(v2NoValue)
		} else {
			e.PutUint32(*v)
		}
	}
	put(s.Mode)
	put(s.UID)
	put(s.GID)
	if s.Size == nil {
		e.PutUint32(v2NoValue)
	} else {
		e.PutUint32(uint32(*s.Size))
	}
	putTime := func(t *Time) {
		if t == nil {
			e.PutUint32(v2NoValue)
			e.PutUint32(v2NoValue)
		} else {
			encodeTime2(e, *t)
		}
	}
	putTime(s.Atime)
	putTime(s.Mtime)
}

func decodeSattr2(d *xdr.Decoder) (*Sattr, error) {
	var s Sattr
	get := func() (*uint32, error) {
		v, err := d.Uint32()
		if err != nil || v == v2NoValue {
			return nil, err
		}
		return &v, nil
	}
	var err error
	if s.Mode, err = get(); err != nil {
		return nil, err
	}
	if s.UID, err = get(); err != nil {
		return nil, err
	}
	if s.GID, err = get(); err != nil {
		return nil, err
	}
	sz, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if sz != v2NoValue {
		v := uint64(sz)
		s.Size = &v
	}
	getTime := func() (*Time, error) {
		sec, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		usec, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		if sec == v2NoValue && usec == v2NoValue {
			return nil, nil
		}
		return &Time{Sec: sec, Nsec: usec * 1000}, nil
	}
	if s.Atime, err = getTime(); err != nil {
		return nil, err
	}
	if s.Mtime, err = getTime(); err != nil {
		return nil, err
	}
	return &s, nil
}

// --- v2 argument structs (reusing v3 shapes where the fields match) ---

// ReadArgs2 is the v2 READ argument.
type ReadArgs2 struct {
	FH         FH
	Offset     uint32
	Count      uint32
	TotalCount uint32
}

// WriteArgs2 is the v2 WRITE argument.
type WriteArgs2 struct {
	FH     FH
	Offset uint32
	Data   []byte
}

// CreateArgs2 is the v2 CREATE/MKDIR argument.
type CreateArgs2 struct {
	Where DirOpArgs3
	Attr  Sattr
}

// SetattrArgs2 is the v2 SETATTR argument.
type SetattrArgs2 struct {
	FH   FH
	Attr Sattr
}

// ReaddirArgs2 is the v2 READDIR argument.
type ReaddirArgs2 struct {
	Dir    FH
	Cookie uint32
	Count  uint32
}

// AttrStatRes2 is the common v2 result: status plus attributes
// (GETATTR, SETATTR, WRITE).
type AttrStatRes2 struct {
	Status uint32
	Attr   *Fattr
}

// DirOpRes2 is the v2 LOOKUP/CREATE/MKDIR result: status, fh, attrs.
type DirOpRes2 struct {
	Status uint32
	FH     FH
	Attr   *Fattr
}

// ReadRes2 is the v2 READ result.
type ReadRes2 struct {
	Status uint32
	Attr   *Fattr
	Data   []byte
}

// StatusRes2 is the bare-status v2 result (REMOVE, RENAME, etc.).
type StatusRes2 struct {
	Status uint32
}

// ReaddirRes2 is the v2 READDIR result.
type ReaddirRes2 struct {
	Status  uint32
	Entries []DirEntry
	EOF     bool
}

// StatfsRes2 is the v2 STATFS result.
type StatfsRes2 struct {
	Status uint32
	Tsize  uint32
	Bsize  uint32
	Blocks uint32
	Bfree  uint32
	Bavail uint32
}

// EncodeArgs2 writes the v2 argument body for proc.
func EncodeArgs2(e *xdr.Encoder, proc uint32, args any) error {
	switch proc {
	case V2Null, V2Root, V2Writecache:
		return nil
	case V2Getattr, V2Readlink, V2Statfs:
		encodeFH2(e, args.(*GetattrArgs3).FH)
	case V2Setattr:
		a := args.(*SetattrArgs2)
		encodeFH2(e, a.FH)
		encodeSattr2(e, &a.Attr)
	case V2Lookup:
		a := args.(*DirOpArgs3)
		encodeFH2(e, a.Dir)
		e.PutString(a.Name)
	case V2Read:
		a := args.(*ReadArgs2)
		encodeFH2(e, a.FH)
		e.PutUint32(a.Offset)
		e.PutUint32(a.Count)
		e.PutUint32(a.TotalCount)
	case V2Write:
		a := args.(*WriteArgs2)
		encodeFH2(e, a.FH)
		e.PutUint32(0) // beginoffset (unused)
		e.PutUint32(a.Offset)
		e.PutUint32(0) // totalcount (unused)
		e.PutOpaque(a.Data)
	case V2Create, V2Mkdir:
		a := args.(*CreateArgs2)
		encodeFH2(e, a.Where.Dir)
		e.PutString(a.Where.Name)
		encodeSattr2(e, &a.Attr)
	case V2Remove, V2Rmdir:
		a := args.(*DirOpArgs3)
		encodeFH2(e, a.Dir)
		e.PutString(a.Name)
	case V2Rename:
		a := args.(*RenameArgs3)
		encodeFH2(e, a.From.Dir)
		e.PutString(a.From.Name)
		encodeFH2(e, a.To.Dir)
		e.PutString(a.To.Name)
	case V2Link:
		a := args.(*LinkArgs3)
		encodeFH2(e, a.FH)
		encodeFH2(e, a.To.Dir)
		e.PutString(a.To.Name)
	case V2Symlink:
		a := args.(*SymlinkArgs3)
		encodeFH2(e, a.Where.Dir)
		e.PutString(a.Where.Name)
		e.PutString(a.Target)
		encodeSattr2(e, &a.Attr)
	case V2Readdir:
		a := args.(*ReaddirArgs2)
		encodeFH2(e, a.Dir)
		e.PutUint32(a.Cookie)
		e.PutUint32(a.Count)
	default:
		return fmt.Errorf("%w: v2 proc %d", ErrBadProc, proc)
	}
	return nil
}

// DecodeArgs2 parses the v2 argument body for proc.
func DecodeArgs2(proc uint32, body []byte) (any, error) {
	d := xdr.NewDecoder(body)
	switch proc {
	case V2Null, V2Root, V2Writecache:
		return nil, nil
	case V2Getattr, V2Readlink, V2Statfs:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		return &GetattrArgs3{FH: fh}, nil
	case V2Setattr:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr2(d)
		if err != nil {
			return nil, err
		}
		return &SetattrArgs2{FH: fh, Attr: *s}, nil
	case V2Lookup, V2Remove, V2Rmdir:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		return &DirOpArgs3{Dir: fh, Name: name}, nil
	case V2Read:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		off, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		tc, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &ReadArgs2{FH: fh, Offset: off, Count: count, TotalCount: tc}, nil
	case V2Write:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		if _, err = d.Uint32(); err != nil { // beginoffset
			return nil, err
		}
		off, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		if _, err = d.Uint32(); err != nil { // totalcount
			return nil, err
		}
		data, err := d.Opaque()
		if err != nil {
			return nil, err
		}
		return &WriteArgs2{FH: fh, Offset: off, Data: data}, nil
	case V2Create, V2Mkdir:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr2(d)
		if err != nil {
			return nil, err
		}
		return &CreateArgs2{Where: DirOpArgs3{Dir: fh, Name: name}, Attr: *s}, nil
	case V2Rename:
		ffh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		fname, err := d.String()
		if err != nil {
			return nil, err
		}
		tfh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		tname, err := d.String()
		if err != nil {
			return nil, err
		}
		return &RenameArgs3{
			From: DirOpArgs3{Dir: ffh, Name: fname},
			To:   DirOpArgs3{Dir: tfh, Name: tname},
		}, nil
	case V2Link:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		tfh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		tname, err := d.String()
		if err != nil {
			return nil, err
		}
		return &LinkArgs3{FH: fh, To: DirOpArgs3{Dir: tfh, Name: tname}}, nil
	case V2Symlink:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		target, err := d.String()
		if err != nil {
			return nil, err
		}
		s, err := decodeSattr2(d)
		if err != nil {
			return nil, err
		}
		return &SymlinkArgs3{Where: DirOpArgs3{Dir: fh, Name: name}, Attr: *s, Target: target}, nil
	case V2Readdir:
		fh, err := decodeFH2(d)
		if err != nil {
			return nil, err
		}
		cookie, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &ReaddirArgs2{Dir: fh, Cookie: cookie, Count: count}, nil
	default:
		return nil, fmt.Errorf("%w: v2 proc %d", ErrBadProc, proc)
	}
}

// EncodeRes2 writes the v2 result body for proc.
func EncodeRes2(e *xdr.Encoder, proc uint32, res any) error {
	switch proc {
	case V2Null, V2Root, V2Writecache:
		return nil
	case V2Getattr, V2Setattr, V2Write:
		r := res.(*AttrStatRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			EncodeFattr2(e, r.Attr)
		}
	case V2Lookup, V2Create, V2Mkdir:
		r := res.(*DirOpRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			encodeFH2(e, r.FH)
			EncodeFattr2(e, r.Attr)
		}
	case V2Readlink:
		r := res.(*StatusRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			e.PutString("")
		}
	case V2Read:
		r := res.(*ReadRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			EncodeFattr2(e, r.Attr)
			e.PutOpaque(r.Data)
		}
	case V2Remove, V2Rename, V2Link, V2Symlink, V2Rmdir:
		r := res.(*StatusRes2)
		e.PutUint32(r.Status)
	case V2Readdir:
		r := res.(*ReaddirRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			for _, ent := range r.Entries {
				e.PutBool(true)
				e.PutUint32(uint32(ent.FileID))
				e.PutString(ent.Name)
				e.PutUint32(uint32(ent.Cookie))
			}
			e.PutBool(false)
			e.PutBool(r.EOF)
		}
	case V2Statfs:
		r := res.(*StatfsRes2)
		e.PutUint32(r.Status)
		if r.Status == OK {
			e.PutUint32(r.Tsize)
			e.PutUint32(r.Bsize)
			e.PutUint32(r.Blocks)
			e.PutUint32(r.Bfree)
			e.PutUint32(r.Bavail)
		}
	default:
		return fmt.Errorf("%w: v2 proc %d", ErrBadProc, proc)
	}
	return nil
}

// DecodeRes2 parses the v2 result body for proc.
func DecodeRes2(proc uint32, body []byte) (any, error) {
	d := xdr.NewDecoder(body)
	status := uint32(OK)
	var err error
	if proc != V2Null && proc != V2Root && proc != V2Writecache {
		if status, err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	switch proc {
	case V2Null, V2Root, V2Writecache:
		return nil, nil
	case V2Getattr, V2Setattr, V2Write:
		r := &AttrStatRes2{Status: status}
		if status == OK {
			if r.Attr, err = DecodeFattr2(d); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V2Lookup, V2Create, V2Mkdir:
		r := &DirOpRes2{Status: status}
		if status == OK {
			if r.FH, err = decodeFH2(d); err != nil {
				return nil, err
			}
			if r.Attr, err = DecodeFattr2(d); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V2Readlink:
		if status == OK {
			if _, err = d.String(); err != nil {
				return nil, err
			}
		}
		return &StatusRes2{Status: status}, nil
	case V2Read:
		r := &ReadRes2{Status: status}
		if status == OK {
			if r.Attr, err = DecodeFattr2(d); err != nil {
				return nil, err
			}
			if r.Data, err = d.Opaque(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V2Remove, V2Rename, V2Link, V2Symlink, V2Rmdir:
		return &StatusRes2{Status: status}, nil
	case V2Readdir:
		r := &ReaddirRes2{Status: status}
		if status == OK {
			for {
				more, err := d.Bool()
				if err != nil {
					return nil, err
				}
				if !more {
					break
				}
				var ent DirEntry
				id, err := d.Uint32()
				if err != nil {
					return nil, err
				}
				ent.FileID = uint64(id)
				if ent.Name, err = d.String(); err != nil {
					return nil, err
				}
				cookie, err := d.Uint32()
				if err != nil {
					return nil, err
				}
				ent.Cookie = uint64(cookie)
				r.Entries = append(r.Entries, ent)
			}
			if r.EOF, err = d.Bool(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case V2Statfs:
		r := &StatfsRes2{Status: status}
		if status == OK {
			if r.Tsize, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.Bsize, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.Blocks, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.Bfree, err = d.Uint32(); err != nil {
				return nil, err
			}
			if r.Bavail, err = d.Uint32(); err != nil {
				return nil, err
			}
		}
		return r, nil
	default:
		return nil, fmt.Errorf("%w: v2 proc %d", ErrBadProc, proc)
	}
}
