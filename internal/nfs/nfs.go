// Package nfs implements wire codecs for the NFS version 2 (RFC 1094)
// and version 3 (RFC 1813) protocols: file handles, attributes, and the
// argument/result bodies of every procedure.
//
// Two layers are provided. The typed layer (v2.go, v3.go) gives exact
// per-procedure structs with Encode/Decode, used by the client and
// server simulators to produce byte-faithful traffic. The semantic layer
// (semantic.go) decodes either version into a version-neutral Event used
// by the sniffer, which is what the paper's tracer emits: one record per
// call or reply with the fields the analyses need (handle, name, offset,
// count, attributes, status).
package nfs

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// Protocol versions.
const (
	V2 = 2
	V3 = 3
)

// NFSv3 procedure numbers (RFC 1813 §3).
const (
	V3Null        = 0
	V3Getattr     = 1
	V3Setattr     = 2
	V3Lookup      = 3
	V3Access      = 4
	V3Readlink    = 5
	V3Read        = 6
	V3Write       = 7
	V3Create      = 8
	V3Mkdir       = 9
	V3Symlink     = 10
	V3Mknod       = 11
	V3Remove      = 12
	V3Rmdir       = 13
	V3Rename      = 14
	V3Link        = 15
	V3Readdir     = 16
	V3Readdirplus = 17
	V3Fsstat      = 18
	V3Fsinfo      = 19
	V3Pathconf    = 20
	V3Commit      = 21
	V3NumProcs    = 22
)

// NFSv2 procedure numbers (RFC 1094 §2.2).
const (
	V2Null       = 0
	V2Getattr    = 1
	V2Setattr    = 2
	V2Root       = 3
	V2Lookup     = 4
	V2Readlink   = 5
	V2Read       = 6
	V2Writecache = 7
	V2Write      = 8
	V2Create     = 9
	V2Remove     = 10
	V2Rename     = 11
	V2Link       = 12
	V2Symlink    = 13
	V2Mkdir      = 14
	V2Rmdir      = 15
	V2Readdir    = 16
	V2Statfs     = 17
	V2NumProcs   = 18
)

// NFS status codes common to both versions (the subset the simulators
// produce).
const (
	OK             = 0
	ErrPerm        = 1
	ErrNoEnt       = 2
	ErrIO          = 5
	ErrAcces       = 13
	ErrExist       = 17
	ErrNotDir      = 20
	ErrIsDir       = 21
	ErrInval       = 22
	ErrFBig        = 27
	ErrNoSpc       = 28
	ErrRofs        = 30
	ErrNameTooLong = 63
	ErrNotEmpty    = 66
	ErrDQuot       = 69
	ErrStale       = 70
	ErrBadHandle   = 10001
	ErrNotSupp     = 10004
	ErrTooSmall    = 10005
	ErrJukebox     = 10008
)

// File types (ftype3; v2 uses the same values for the types it has).
const (
	TypeReg  = 1
	TypeDir  = 2
	TypeBlk  = 3
	TypeChr  = 4
	TypeLnk  = 5
	TypeSock = 6
	TypeFifo = 7
)

// V3MaxFHSize is the maximum file handle length in NFSv3.
const V3MaxFHSize = 64

// V2FHSize is the fixed file handle length in NFSv2.
const V2FHSize = 32

var (
	// ErrBadProc reports an out-of-range procedure number.
	ErrBadProc = errors.New("nfs: unknown procedure")
	// ErrDecode reports a malformed procedure body.
	ErrDecode = errors.New("nfs: malformed message body")
)

// v3ProcNames are the lower-case procedure names as they appear in
// nfsdump-style trace records.
var v3ProcNames = [V3NumProcs]string{
	"null", "getattr", "setattr", "lookup", "access", "readlink",
	"read", "write", "create", "mkdir", "symlink", "mknod",
	"remove", "rmdir", "rename", "link", "readdir", "readdirplus",
	"fsstat", "fsinfo", "pathconf", "commit",
}

var v2ProcNames = [V2NumProcs]string{
	"null", "getattr", "setattr", "root", "lookup", "readlink",
	"read", "writecache", "write", "create", "remove", "rename",
	"link", "symlink", "mkdir", "rmdir", "readdir", "statfs",
}

// ProcName returns the lower-case name for a procedure of the given
// protocol version, or "proc-N" for unknown numbers.
func ProcName(version, proc uint32) string {
	switch version {
	case V3:
		if proc < V3NumProcs {
			return v3ProcNames[proc]
		}
	case V2:
		if proc < V2NumProcs {
			return v2ProcNames[proc]
		}
	}
	return fmt.Sprintf("proc-%d", proc)
}

// ProcByName returns the v3 procedure number for a name produced by
// ProcName, with ok=false if the name is unknown.
func ProcByName(name string) (proc uint32, ok bool) {
	for i, n := range v3ProcNames {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

// FH is an NFS file handle: opaque bytes assigned by the server. The
// simulators use 8-byte handles (a uint64 inode number); real traces may
// carry up to 64 bytes.
type FH []byte

// String renders the handle as lowercase hex, the form used in trace
// records.
func (fh FH) String() string { return hex.EncodeToString(fh) }

// Equal reports whether two handles are byte-equal.
func (fh FH) Equal(other FH) bool {
	if len(fh) != len(other) {
		return false
	}
	for i := range fh {
		if fh[i] != other[i] {
			return false
		}
	}
	return true
}

// Key returns the handle as a string usable as a map key.
func (fh FH) Key() string { return string(fh) }

// MakeFH builds the simulator's 8-byte handle from a file ID.
func MakeFH(fileid uint64) FH {
	return FH{
		byte(fileid >> 56), byte(fileid >> 48), byte(fileid >> 40), byte(fileid >> 32),
		byte(fileid >> 24), byte(fileid >> 16), byte(fileid >> 8), byte(fileid),
	}
}

// FileID recovers the file ID from a simulator handle; ok is false for
// foreign handle sizes.
func (fh FH) FileID() (uint64, bool) {
	if len(fh) != 8 {
		return 0, false
	}
	var v uint64
	for _, b := range fh {
		v = v<<8 | uint64(b)
	}
	return v, true
}

// Time is the NFS timestamp: seconds and a fractional part whose unit
// depends on the protocol version (nsec in v3, usec in v2). The codecs
// normalize to nanoseconds.
type Time struct {
	Sec  uint32
	Nsec uint32
}

// Seconds returns the timestamp as float seconds.
func (t Time) Seconds() float64 { return float64(t.Sec) + float64(t.Nsec)/1e9 }

// TimeFromSeconds builds a Time from float seconds.
func TimeFromSeconds(s float64) Time {
	sec := uint32(s)
	return Time{Sec: sec, Nsec: uint32((s - float64(sec)) * 1e9)}
}

// Fattr is the version-neutral file attribute block. It carries the v3
// field widths; the v2 codec narrows on encode.
type Fattr struct {
	Type   uint32
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	Used   uint64
	FSID   uint64
	FileID uint64
	Atime  Time
	Mtime  Time
	Ctime  Time
}

// Sattr carries the settable attribute subset for SETATTR/CREATE.
// Each pointer is nil when the field is not being set.
type Sattr struct {
	Mode  *uint32
	UID   *uint32
	GID   *uint32
	Size  *uint64
	Atime *Time
	Mtime *Time
}

// DirEntry is one entry of a READDIR result.
type DirEntry struct {
	FileID uint64
	Name   string
	Cookie uint64
}
