package nfs

// The semantic layer decodes either protocol version into the compact,
// version-neutral view the sniffer records: which object, which name,
// what range. This is the NFS-level content of one nfsdump-style trace
// record.

// CallInfo is the semantic content of an NFS call.
type CallInfo struct {
	Version uint32
	Proc    uint32 // in the numbering of Version
	Name    string // procedure name, v3 vocabulary where shared

	FH     FH     // primary handle (file or directory)
	FName  string // name within FH for directory ops
	FH2    FH     // target directory for RENAME/LINK
	FName2 string // target name for RENAME/LINK

	Offset uint64 // READ/WRITE/COMMIT offset
	Count  uint32 // requested byte count
	Stable uint32 // WRITE stability

	SetSize *uint64 // SETATTR truncation target, if any
}

// ReplyInfo is the semantic content of an NFS reply.
type ReplyInfo struct {
	Version uint32
	Proc    uint32
	Name    string

	Status  uint32
	Attr    *Fattr // attributes of the primary object, when present
	NewFH   FH     // handle returned by LOOKUP/CREATE/MKDIR
	Count   uint32 // bytes moved by READ/WRITE
	EOF     bool   // READ hit end-of-file
	Pre     *WccAttr
	Entries []DirEntry // READDIR contents
}

// ParseCall decodes the argument body of an NFS call into semantic form.
func ParseCall(version, proc uint32, body []byte) (*CallInfo, error) {
	info := &CallInfo{Version: version, Proc: proc, Name: ProcName(version, proc)}
	switch version {
	case V3:
		return parseCall3(info, proc, body)
	case V2:
		return parseCall2(info, proc, body)
	default:
		return nil, ErrBadProc
	}
}

func parseCall3(info *CallInfo, proc uint32, body []byte) (*CallInfo, error) {
	args, err := DecodeArgs3(proc, body)
	if err != nil {
		return nil, err
	}
	switch a := args.(type) {
	case nil:
	case *GetattrArgs3:
		info.FH = a.FH
	case *SetattrArgs3:
		info.FH = a.FH
		info.SetSize = a.Attr.Size
	case *DirOpArgs3:
		info.FH = a.Dir
		info.FName = a.Name
	case *AccessArgs3:
		info.FH = a.FH
	case *ReadArgs3:
		info.FH = a.FH
		info.Offset = a.Offset
		info.Count = a.Count
	case *WriteArgs3:
		info.FH = a.FH
		info.Offset = a.Offset
		info.Count = a.Count
		info.Stable = a.Stable
	case *CreateArgs3:
		info.FH = a.Where.Dir
		info.FName = a.Where.Name
		info.SetSize = a.Attr.Size
	case *MkdirArgs3:
		info.FH = a.Where.Dir
		info.FName = a.Where.Name
	case *SymlinkArgs3:
		info.FH = a.Where.Dir
		info.FName = a.Where.Name
	case *RenameArgs3:
		info.FH = a.From.Dir
		info.FName = a.From.Name
		info.FH2 = a.To.Dir
		info.FName2 = a.To.Name
	case *LinkArgs3:
		info.FH = a.FH
		info.FH2 = a.To.Dir
		info.FName2 = a.To.Name
	case *ReaddirArgs3:
		info.FH = a.Dir
		info.Count = a.MaxCount
	case *CommitArgs3:
		info.FH = a.FH
		info.Offset = a.Offset
		info.Count = a.Count
	}
	return info, nil
}

func parseCall2(info *CallInfo, proc uint32, body []byte) (*CallInfo, error) {
	args, err := DecodeArgs2(proc, body)
	if err != nil {
		return nil, err
	}
	switch a := args.(type) {
	case nil:
	case *GetattrArgs3:
		info.FH = a.FH
	case *SetattrArgs2:
		info.FH = a.FH
		info.SetSize = a.Attr.Size
	case *DirOpArgs3:
		info.FH = a.Dir
		info.FName = a.Name
	case *ReadArgs2:
		info.FH = a.FH
		info.Offset = uint64(a.Offset)
		info.Count = a.Count
	case *WriteArgs2:
		info.FH = a.FH
		info.Offset = uint64(a.Offset)
		info.Count = uint32(len(a.Data))
		info.Stable = FileSync // v2 writes are synchronous
	case *CreateArgs2:
		info.FH = a.Where.Dir
		info.FName = a.Where.Name
		info.SetSize = a.Attr.Size
	case *RenameArgs3:
		info.FH = a.From.Dir
		info.FName = a.From.Name
		info.FH2 = a.To.Dir
		info.FName2 = a.To.Name
	case *LinkArgs3:
		info.FH = a.FH
		info.FH2 = a.To.Dir
		info.FName2 = a.To.Name
	case *SymlinkArgs3:
		info.FH = a.Where.Dir
		info.FName = a.Where.Name
	case *ReaddirArgs2:
		info.FH = a.Dir
		info.Count = a.Count
	}
	return info, nil
}

// ParseReply decodes the result body of an NFS reply into semantic form.
// The caller must supply the procedure from the matched call, since RPC
// replies do not carry it.
func ParseReply(version, proc uint32, body []byte) (*ReplyInfo, error) {
	info := &ReplyInfo{Version: version, Proc: proc, Name: ProcName(version, proc)}
	switch version {
	case V3:
		return parseReply3(info, proc, body)
	case V2:
		return parseReply2(info, proc, body)
	default:
		return nil, ErrBadProc
	}
}

func parseReply3(info *ReplyInfo, proc uint32, body []byte) (*ReplyInfo, error) {
	res, err := DecodeRes3(proc, body)
	if err != nil {
		return nil, err
	}
	switch r := res.(type) {
	case nil:
	case *GetattrRes3:
		info.Status = r.Status
		info.Attr = r.Attr
	case *SetattrRes3:
		info.Status = r.Status
		if r.Wcc != nil {
			info.Attr = r.Wcc.After
			info.Pre = r.Wcc.Before
		}
	case *LookupRes3:
		info.Status = r.Status
		info.NewFH = r.FH
		info.Attr = r.Attr
	case *AccessRes3:
		info.Status = r.Status
		info.Attr = r.Attr
	case *ReadRes3:
		info.Status = r.Status
		info.Attr = r.Attr
		info.Count = r.Count
		info.EOF = r.EOF
	case *WriteRes3:
		info.Status = r.Status
		info.Count = r.Count
		if r.Wcc != nil {
			info.Attr = r.Wcc.After
			info.Pre = r.Wcc.Before
		}
	case *CreateRes3:
		info.Status = r.Status
		info.NewFH = r.FH
		info.Attr = r.Attr
	case *RemoveRes3:
		info.Status = r.Status
		if r.Wcc != nil {
			info.Attr = r.Wcc.After
			info.Pre = r.Wcc.Before
		}
	case *RenameRes3:
		info.Status = r.Status
	case *ReaddirRes3:
		info.Status = r.Status
		info.Attr = r.DirAttr
		info.EOF = r.EOF
		info.Entries = r.Entries
	case *FsstatRes3:
		info.Status = r.Status
		info.Attr = r.Attr
	case *CommitRes3:
		info.Status = r.Status
		if r.Wcc != nil {
			info.Attr = r.Wcc.After
		}
	}
	return info, nil
}

func parseReply2(info *ReplyInfo, proc uint32, body []byte) (*ReplyInfo, error) {
	res, err := DecodeRes2(proc, body)
	if err != nil {
		return nil, err
	}
	switch r := res.(type) {
	case nil:
	case *AttrStatRes2:
		info.Status = r.Status
		info.Attr = r.Attr
		if proc == V2Write && r.Attr != nil {
			// v2 write replies don't carry a count; the attrs confirm
			// the whole request landed, and the sniffer uses the call's
			// count instead. Leave Count zero here.
			info.Count = 0
		}
	case *DirOpRes2:
		info.Status = r.Status
		info.NewFH = r.FH
		info.Attr = r.Attr
	case *ReadRes2:
		info.Status = r.Status
		info.Attr = r.Attr
		info.Count = uint32(len(r.Data))
		if r.Attr != nil {
			info.EOF = uint64(len(r.Data)) == 0 || r.Attr.Size == 0
		}
	case *StatusRes2:
		info.Status = r.Status
	case *ReaddirRes2:
		info.Status = r.Status
		info.EOF = r.EOF
		info.Entries = r.Entries
	case *StatfsRes2:
		info.Status = r.Status
	}
	return info, nil
}

// IsRead reports whether proc moves data from server to client.
func (c *CallInfo) IsRead() bool {
	return (c.Version == V3 && c.Proc == V3Read) || (c.Version == V2 && c.Proc == V2Read)
}

// IsWrite reports whether proc moves data from client to server.
func (c *CallInfo) IsWrite() bool {
	return (c.Version == V3 && c.Proc == V3Write) || (c.Version == V2 && c.Proc == V2Write)
}

// IsMetadata reports whether the call is an attribute/name operation
// rather than a data transfer. The paper's "most NFS calls are for
// metadata" EECS observation counts these.
func (c *CallInfo) IsMetadata() bool {
	return !c.IsRead() && !c.IsWrite()
}
