package nfs

import (
	"testing"

	"repro/internal/xdr"
)

// Codec benchmarks: the sniffer decodes one of these per captured NFS
// message, so these paths bound trace-processing throughput.

func BenchmarkEncodeReadArgs3(b *testing.B) {
	args := &ReadArgs3{FH: MakeFH(7), Offset: 1 << 20, Count: 8192}
	e := xdr.NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		if err := EncodeArgs3(e, V3Read, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReadArgs3(b *testing.B) {
	e := xdr.NewEncoder(64)
	if err := EncodeArgs3(e, V3Read, &ReadArgs3{FH: MakeFH(7), Offset: 1 << 20, Count: 8192}); err != nil {
		b.Fatal(err)
	}
	body := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeArgs3(V3Read, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCallSemantic(b *testing.B) {
	e := xdr.NewEncoder(64)
	if err := EncodeArgs3(e, V3Write, &WriteArgs3{FH: MakeFH(7), Offset: 8192,
		Count: 8192, Stable: Unstable, Data: make([]byte, 8192)}); err != nil {
		b.Fatal(err)
	}
	body := e.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseCall(V3, V3Write, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFattr3RoundTrip(b *testing.B) {
	a := &Fattr{Type: TypeReg, Mode: 0644, Nlink: 1, Size: 2 << 20,
		FileID: 42, Mtime: Time{Sec: 1000}}
	e := xdr.NewEncoder(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		EncodeFattr3(e, a)
		if _, err := DecodeFattr3(xdr.NewDecoder(e.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
