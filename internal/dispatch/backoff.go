package dispatch

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays: exponential growth from Base by
// Factor, capped at Max, with a uniform ±Jitter fraction so a burst of
// failures doesn't re-dispatch in lockstep. The zero value is not
// usable; call NewBackoff.
type Backoff struct {
	// Base is the delay for attempt 0.
	Base time.Duration
	// Max caps the grown delay (before jitter).
	Max time.Duration
	// Factor multiplies the delay per attempt; values below 1 are
	// treated as the default 2.
	Factor float64
	// Jitter is the fraction of the delay used as a ± random spread;
	// 0.2 means the result lands in [0.8d, 1.2d].
	Jitter float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff policy with a deterministic jitter
// source, so tests (and reruns) see a reproducible delay sequence.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	return &Backoff{
		Base:   base,
		Max:    max,
		Factor: 2,
		Jitter: jitter,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the backoff for the given zero-based attempt number.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Base)
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	for i := 0; i < attempt; i++ {
		d *= factor
		if time.Duration(d) >= b.Max {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		// Uniform in [1-j, 1+j].
		d *= 1 + b.Jitter*(2*b.rng.Float64()-1)
		b.mu.Unlock()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
