package dispatch

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Task is one piece of a distributed analysis: which trace files to
// analyze under which spec, and (for chained analyses) the parent
// state to resume from. Files are coordinator-local paths; their bytes
// are streamed to the worker, so workers need no shared filesystem.
type Task struct {
	ID       int
	Spec     json.RawMessage
	Decoders int
	Files    []string
	Parent   []byte
}

// Result is one completed task: the serialized partial state plus the
// provenance the logs and dedup want.
type Result struct {
	TaskID  int
	State   []byte
	Digest  [sha256.Size]byte
	Worker  string
	Attempt int
	Elapsed time.Duration
}

// RunStats counts what the supervision machinery did during one Run —
// the observability surface the smoke tests assert re-dispatch on.
type RunStats struct {
	// Dispatched counts assignments sent to workers, including retries
	// and speculative duplicates.
	Dispatched int
	// Failures counts attempts that ended without a valid result:
	// connection loss, deadline, heartbeat loss, in-band errors,
	// rejected state blobs.
	Failures int
	// Retries counts failed attempts that were re-dispatched.
	Retries int
	// Speculations counts straggler duplicates launched.
	Speculations int
	// Duplicates counts valid results discarded because another
	// attempt won the task first.
	Duplicates int
	// Completed counts tasks that finished with a valid result.
	Completed int
}

// Config tunes the coordinator. The zero value of every field gets a
// sensible default from fillDefaults.
type Config struct {
	// Addrs are the worker endpoints to dial.
	Addrs []string
	// DialTimeout bounds connection establishment and registration.
	DialTimeout time.Duration
	// AssignTimeout is the per-assignment deadline: an attempt running
	// longer is abandoned (its connection closed) and re-dispatched.
	AssignTimeout time.Duration
	// HeartbeatInterval is how often workers are told to heartbeat.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a worker dead when nothing — heartbeat,
	// chunk, or result — arrives for this long during an assignment.
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per task, speculative
	// duplicates included.
	MaxAttempts int
	// MaxWorkerFailures drops a worker after this many consecutive
	// failures (dial errors or failed assignments), so a dead or
	// always-hanging endpoint stops absorbing re-dispatches.
	MaxWorkerFailures int
	// StragglerFactor and StragglerMin set the speculation threshold:
	// a task is a straggler when it has run longer than
	// max(StragglerMin, StragglerFactor × median completed duration).
	StragglerFactor float64
	StragglerMin    time.Duration
	// Backoff paces retries; nil gets the default policy.
	Backoff *Backoff
	// Clock injects time; nil means the real clock.
	Clock Clock
	// Dial overrides connection establishment — the netem fault
	// injection hook. nil uses a plain TCP dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Validate vets a result blob beyond the transport digest; a
	// non-nil error rejects the attempt as if it had failed. nil
	// accepts any blob.
	Validate func(t Task, state []byte) error
	// Logf receives supervision events; nil discards them. It must be
	// safe for concurrent use.
	Logf func(format string, args ...interface{})
}

func (c *Config) fillDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.AssignTimeout <= 0 {
		c.AssignTimeout = 10 * time.Minute
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * c.HeartbeatInterval
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.MaxWorkerFailures <= 0 {
		c.MaxWorkerFailures = 3
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 2
	}
	if c.StragglerMin <= 0 {
		c.StragglerMin = 2 * time.Second
	}
	if c.Backoff == nil {
		c.Backoff = NewBackoff(200*time.Millisecond, 10*time.Second, 0.2, 1)
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.Dial == nil {
		dialTimeout := c.DialTimeout
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: dialTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
}

// taskState is the coordinator's view of one task's lifecycle.
type taskState struct {
	task       Task
	done       bool
	failed     bool // attempts exhausted; caller must fall back
	attempts   int  // dispatches started
	inflight   int
	started    time.Time // most recent dispatch
	speculated bool
	result     *Result
}

// run is one Run invocation's shared state.
type run struct {
	cfg     Config
	tasks   map[int]*taskState
	pending chan int

	mu        sync.Mutex
	remaining int
	durations []time.Duration
	stats     RunStats
	allDone   chan struct{}
}

// errConnDone distinguishes "this connection finished its role" from
// transport failures inside the serve loop.
var errConnDone = errors.New("dispatch: connection done")

// Run dispatches tasks across the configured workers and returns
// every task's winning result. Tasks missing from the result set
// either exhausted MaxAttempts or outlived the worker pool; the
// caller decides whether to fall back to local execution. Run returns
// a non-nil error only when ctx was cancelled.
func Run(ctx context.Context, cfg Config, tasks []Task) ([]Result, RunStats, error) {
	cfg.fillDefaults()
	if len(tasks) == 0 {
		return nil, RunStats{}, nil
	}
	if len(cfg.Addrs) == 0 {
		return nil, RunStats{}, fmt.Errorf("dispatch: no worker addresses")
	}
	r := &run{
		cfg:       cfg,
		tasks:     make(map[int]*taskState, len(tasks)),
		pending:   make(chan int, len(tasks)*(cfg.MaxAttempts+2)),
		remaining: len(tasks),
		allDone:   make(chan struct{}),
	}
	for _, t := range tasks {
		if _, dup := r.tasks[t.ID]; dup {
			return nil, RunStats{}, fmt.Errorf("dispatch: duplicate task id %d", t.ID)
		}
		r.tasks[t.ID] = &taskState{task: t}
	}
	// Deterministic initial order: ascending task ID.
	ids := make([]int, 0, len(tasks))
	for id := range r.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.pending <- id
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var pool sync.WaitGroup
	for _, addr := range cfg.Addrs {
		pool.Add(1)
		go func(addr string) {
			defer pool.Done()
			r.workerLoop(ctx, addr)
		}(addr)
	}
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		r.stragglerMonitor(ctx)
	}()

	poolDead := make(chan struct{})
	go func() {
		pool.Wait()
		close(poolDead)
	}()

	var runErr error
	select {
	case <-r.allDone:
	case <-poolDead:
		r.mu.Lock()
		if r.remaining > 0 {
			r.cfg.Logf("dispatch: worker pool exhausted with %d pieces unfinished", r.remaining)
		}
		r.mu.Unlock()
	case <-ctx.Done():
		runErr = ctx.Err()
	}
	cancel()
	pool.Wait()
	mon.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	results := make([]Result, 0, len(r.tasks))
	for _, id := range ids {
		if st := r.tasks[id]; st.result != nil {
			results = append(results, *st.result)
		}
	}
	return results, r.stats, runErr
}

func (r *run) sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-r.cfg.Clock.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// workerLoop owns one worker endpoint: dial, serve assignments,
// reconnect on failure, give up after MaxWorkerFailures consecutive
// failures.
func (r *run) workerLoop(ctx context.Context, addr string) {
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.allDone:
			return
		default:
		}
		conn, err := r.cfg.Dial(ctx, addr)
		if err != nil {
			fails++
			r.cfg.Logf("dispatch: worker %s: dial failed (%d/%d): %v", addr, fails, r.cfg.MaxWorkerFailures, err)
			if fails >= r.cfg.MaxWorkerFailures {
				r.cfg.Logf("dispatch: worker %s: dropped from pool", addr)
				return
			}
			if !r.sleepCtx(ctx, r.cfg.Backoff.Delay(fails-1)) {
				return
			}
			continue
		}
		err = r.serveConn(ctx, addr, conn, &fails)
		conn.Close()
		if err == errConnDone || ctx.Err() != nil {
			return
		}
		if err != nil {
			fails++
			if fails >= r.cfg.MaxWorkerFailures {
				r.cfg.Logf("dispatch: worker %s: dropped from pool after %d consecutive failures", addr, fails)
				return
			}
			if !r.sleepCtx(ctx, r.cfg.Backoff.Delay(fails-1)) {
				return
			}
		}
	}
}

// frame is one received frame, delivered by the connection's reader
// goroutine.
type frame struct {
	t       byte
	payload []byte
}

// serveConn registers with one worker and feeds it assignments until
// the connection dies, the worker pool's work is done, or ctx cancels.
// A nil or errConnDone return means the connection ended cleanly.
func (r *run) serveConn(ctx context.Context, addr string, conn net.Conn, fails *int) error {
	fr := newFrameRW(conn)
	frames := make(chan frame, 16)
	readErr := make(chan error, 1)
	go func() {
		for {
			t, payload, err := fr.recv()
			if err != nil {
				readErr <- err
				return
			}
			select {
			case frames <- frame{t, payload}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Registration.
	select {
	case f := <-frames:
		if f.t != frameHello {
			return fmt.Errorf("worker %s: expected hello, got frame 0x%02x", addr, f.t)
		}
		var h hello
		if err := json.Unmarshal(f.payload, &h); err != nil {
			return fmt.Errorf("worker %s: bad hello: %w", addr, err)
		}
		if h.Version != ProtocolVersion {
			r.cfg.Logf("dispatch: worker %s: protocol version %d != %d; dropping", addr, h.Version, ProtocolVersion)
			return errConnDone
		}
		r.cfg.Logf("dispatch: worker %s registered (host %s, pid %d)", addr, h.Host, h.PID)
	case err := <-readErr:
		return fmt.Errorf("worker %s: registration: %w", addr, err)
	case <-r.cfg.Clock.After(r.cfg.DialTimeout):
		return fmt.Errorf("worker %s: registration timed out", addr)
	case <-ctx.Done():
		return errConnDone
	}

	for {
		var id int
		select {
		case id = <-r.pending:
		case <-r.allDone:
			fr.send(frameShutdown, nil)
			return errConnDone
		case <-ctx.Done():
			return errConnDone
		}
		st, attempt, ok := r.claim(id)
		if !ok {
			continue
		}
		err := r.runAssignment(ctx, addr, fr, frames, readErr, st, attempt)
		if err != nil {
			r.fail(addr, st, attempt, err)
			return err
		}
		*fails = 0
	}
}

// claim marks one dispatch attempt of task id, refusing tasks already
// won, exhausted, or at their attempt budget.
func (r *run) claim(id int) (*taskState, int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.tasks[id]
	if st == nil || st.done || st.failed || st.attempts >= r.cfg.MaxAttempts {
		return nil, 0, false
	}
	attempt := st.attempts
	st.attempts++
	st.inflight++
	st.started = r.cfg.Clock.Now()
	r.stats.Dispatched++
	return st, attempt, true
}

// runAssignment pushes one assignment to a worker and supervises it to
// a result, an in-band error, or a timeout. In-band analysis errors
// and rejected blobs are handled here (attempt failed, connection
// healthy, nil return… ); transport-level trouble returns an error so
// the caller tears the connection down.
func (r *run) runAssignment(ctx context.Context, addr string, fr *frameRW, frames chan frame, readErr chan error, st *taskState, attempt int) error {
	t := st.task
	files := make([]fileMeta, len(t.Files))
	for i, p := range t.Files {
		size := int64(0)
		if fi, err := os.Stat(p); err == nil {
			size = fi.Size()
		}
		files[i] = fileMeta{Name: filepath.Base(p), Size: size}
	}
	ah := assignHeader{
		ID:          t.ID,
		Attempt:     attempt,
		Spec:        t.Spec,
		Decoders:    t.Decoders,
		HasParent:   len(t.Parent) > 0,
		Files:       files,
		DeadlineMS:  r.cfg.AssignTimeout.Milliseconds(),
		HeartbeatMS: r.cfg.HeartbeatInterval.Milliseconds(),
	}
	r.cfg.Logf("dispatch: worker %s: piece %d attempt %d dispatched (%d files)", addr, t.ID, attempt, len(t.Files))
	if err := fr.sendJSON(frameAssign, ah); err != nil {
		return err
	}
	if len(t.Parent) > 0 {
		if err := fr.sendBlob(t.Parent); err != nil {
			return err
		}
	}
	for _, p := range t.Files {
		if err := sendFileBlob(fr, p); err != nil {
			return err
		}
	}

	deadline := r.cfg.Clock.After(r.cfg.AssignTimeout)
	watchdog := r.cfg.Clock.After(r.cfg.HeartbeatTimeout)
	start := r.cfg.Clock.Now()
	var blob []byte
	collecting := false
	for {
		// Prefer buffered frames over a pending read error: a worker
		// that flushes its result and immediately closes (a drain, say)
		// has the error racing the final frames, and Go's select picks
		// among ready cases at random. The reader goroutine delivers
		// every frame before the error, so draining frames first cannot
		// miss anything.
		var f frame
		gotFrame := true
		select {
		case f = <-frames:
		default:
			gotFrame = false
		}
		if !gotFrame {
			select {
			case f = <-frames:
			case err := <-readErr:
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return fmt.Errorf("connection lost mid-assignment: %w", err)
			case <-deadline:
				return fmt.Errorf("deadline: piece %d attempt %d exceeded %s", t.ID, attempt, r.cfg.AssignTimeout)
			case <-watchdog:
				return fmt.Errorf("heartbeat: worker silent for %s during piece %d", r.cfg.HeartbeatTimeout, t.ID)
			case <-ctx.Done():
				return errConnDone
			}
		}
		watchdog = r.cfg.Clock.After(r.cfg.HeartbeatTimeout)
		switch f.t {
		case frameHeartbeat:
			// Liveness only; payload is advisory progress.
		case frameError:
			var em errorMsg
			if err := json.Unmarshal(f.payload, &em); err != nil {
				return fmt.Errorf("bad error frame: %w", err)
			}
			r.fail(addr, st, attempt, fmt.Errorf("worker reported: %s", em.Msg))
			return nil
		case frameResult:
			var rh resultHeader
			if err := json.Unmarshal(f.payload, &rh); err != nil {
				return fmt.Errorf("bad result header: %w", err)
			}
			if rh.ID != t.ID {
				return fmt.Errorf("result for piece %d while awaiting %d", rh.ID, t.ID)
			}
			collecting = true
			blob = blob[:0]
		case frameChunk:
			if !collecting {
				return fmt.Errorf("chunk outside result blob")
			}
			if int64(len(blob))+int64(len(f.payload)) > maxBlobLen {
				return fmt.Errorf("result blob exceeds limit")
			}
			blob = append(blob, f.payload...)
		case frameBlobEnd:
			if !collecting {
				return fmt.Errorf("blob end outside result blob")
			}
			res := &Result{
				TaskID:  t.ID,
				State:   append([]byte(nil), blob...),
				Digest:  sha256.Sum256(blob),
				Worker:  addr,
				Attempt: attempt,
				Elapsed: r.cfg.Clock.Now().Sub(start),
			}
			if r.cfg.Validate != nil {
				if err := r.cfg.Validate(t, res.State); err != nil {
					r.fail(addr, st, attempt, fmt.Errorf("state rejected: %w", err))
					return nil
				}
			}
			r.complete(addr, st, res)
			return nil
		default:
			return fmt.Errorf("unexpected frame 0x%02x", f.t)
		}
	}
}

// fail records one failed attempt and schedules the retry (after
// backoff) or, when the budget is spent, marks the task permanently
// failed so Run can finish and the caller can fall back.
func (r *run) fail(addr string, st *taskState, attempt int, cause error) {
	r.mu.Lock()
	st.inflight--
	r.stats.Failures++
	if st.done {
		r.mu.Unlock()
		return
	}
	if st.attempts >= r.cfg.MaxAttempts && st.inflight == 0 {
		st.failed = true
		r.decRemainingLocked()
		r.mu.Unlock()
		r.cfg.Logf("dispatch: piece %d: attempt %d failed (%v); %d attempts exhausted, giving up",
			st.task.ID, attempt, cause, r.cfg.MaxAttempts)
		return
	}
	if st.attempts >= r.cfg.MaxAttempts {
		// An attempt budget is spent but a sibling attempt is still
		// running; let it decide the task's fate.
		r.mu.Unlock()
		r.cfg.Logf("dispatch: piece %d: attempt %d failed (%v); awaiting in-flight attempt", st.task.ID, attempt, cause)
		return
	}
	r.stats.Retries++
	r.mu.Unlock()
	delay := r.cfg.Backoff.Delay(attempt)
	r.cfg.Logf("dispatch: worker %s: piece %d attempt %d failed (%v); re-dispatching in %s",
		addr, st.task.ID, attempt, cause, delay)
	go func() {
		r.cfg.Clock.Sleep(delay)
		select {
		case r.pending <- st.task.ID:
		case <-r.allDone:
		}
	}()
}

// complete records a winning result; later valid results for the same
// task are counted and discarded — first valid result wins, duplicates
// detected by state digest.
func (r *run) complete(addr string, st *taskState, res *Result) {
	r.mu.Lock()
	st.inflight--
	if st.done {
		r.stats.Duplicates++
		same := st.result != nil && st.result.Digest == res.Digest
		r.mu.Unlock()
		r.cfg.Logf("dispatch: piece %d: duplicate result from %s discarded (digest %x, identical=%v)",
			st.task.ID, addr, res.Digest[:8], same)
		return
	}
	st.done = true
	st.result = res
	r.stats.Completed++
	r.durations = append(r.durations, res.Elapsed)
	r.decRemainingLocked()
	r.mu.Unlock()
	r.cfg.Logf("dispatch: worker %s: piece %d complete in %s (attempt %d, digest %x)",
		addr, st.task.ID, res.Elapsed.Round(time.Millisecond), res.Attempt, res.Digest[:8])
}

func (r *run) decRemainingLocked() {
	r.remaining--
	if r.remaining == 0 {
		close(r.allDone)
	}
}

// stragglerMonitor launches speculative duplicates of tasks running
// far past the completed median, so one slow machine cannot stall the
// run. One speculation per task; first valid result still wins.
func (r *run) stragglerMonitor(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.allDone:
			return
		case <-r.cfg.Clock.After(r.cfg.HeartbeatInterval):
		}
		now := r.cfg.Clock.Now()
		r.mu.Lock()
		threshold := r.stragglerThresholdLocked()
		if threshold > 0 {
			for _, st := range r.tasks {
				if st.done || st.failed || st.speculated || st.inflight != 1 ||
					st.attempts >= r.cfg.MaxAttempts {
					continue
				}
				elapsed := now.Sub(st.started)
				if elapsed <= threshold {
					continue
				}
				st.speculated = true
				r.stats.Speculations++
				r.cfg.Logf("dispatch: piece %d straggling (%s > %s); speculatively re-dispatching",
					st.task.ID, elapsed.Round(time.Millisecond), threshold.Round(time.Millisecond))
				select {
				case r.pending <- st.task.ID:
				default:
				}
			}
		}
		r.mu.Unlock()
	}
}

// stragglerThresholdLocked computes the speculation threshold from the
// completed-duration median, or 0 when nothing has completed yet.
func (r *run) stragglerThresholdLocked() time.Duration {
	if len(r.durations) == 0 {
		return 0
	}
	ds := append([]time.Duration(nil), r.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	th := time.Duration(r.cfg.StragglerFactor * float64(ds[len(ds)/2]))
	if th < r.cfg.StragglerMin {
		th = r.cfg.StragglerMin
	}
	return th
}

// sendFileBlob streams one file's bytes as a blob without loading it
// whole.
func sendFileBlob(fr *frameRW, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, chunkSize)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			if serr := fr.send(frameChunk, buf[:n]); serr != nil {
				return serr
			}
		}
		if err == io.EOF {
			return fr.send(frameBlobEnd, nil)
		}
		if err != nil {
			return err
		}
	}
}
