package dispatch

import (
	"testing"
	"time"
)

func TestFakeClockAfterFiresOnAdvance(t *testing.T) {
	c := NewFakeClock()
	ch := c.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired before Advance")
	default:
	}
	c.Advance(99 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at its deadline")
	}
}

func TestFakeClockImmediateAfter(t *testing.T) {
	c := NewFakeClock()
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
}

func TestFakeClockSleepBlocksUntilAdvance(t *testing.T) {
	c := NewFakeClock()
	done := make(chan struct{})
	go func() {
		c.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register, then release it.
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned without Advance")
	default:
	}
	c.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestFakeClockWaitersAndNow(t *testing.T) {
	c := NewFakeClock()
	t0 := c.Now()
	c.After(time.Minute)
	c.After(time.Hour)
	if c.Waiters() != 2 {
		t.Fatalf("Waiters() = %d, want 2", c.Waiters())
	}
	c.Advance(time.Minute)
	if c.Waiters() != 1 {
		t.Fatalf("Waiters() after partial advance = %d, want 1", c.Waiters())
	}
	if got := c.Now().Sub(t0); got != time.Minute {
		t.Fatalf("Now advanced by %v, want 1m", got)
	}
}
